// Ablation of the scale-dependent stabilizers (DESIGN.md §6).
//
// Plain Algorithm 1 is tuned for the paper's 10^4-10^5-update regime; this
// harness quantifies what each of the repo's small-scale stabilizers
// contributes by switching them off one at a time and training FEKF on Cu:
//   - process noise (P floor against covariance collapse)
//   - covariance limiting p_max (against wind-up blow-ups)
//   - force-update trust region
//   - Newton-closure clamp on the sqrt(bs) step
// Reported: best and final (E+F) RMSE over the run — divergence shows up
// as a large final value.
#include "bench_common.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Variant {
  const char* name;
  bool process_noise;
  bool p_max;
  bool trust_region;
  bool newton_clamp;  // toggled via qlr handling below
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ablation_stabilizers",
          "ablation: FEKF stability knobs on/off (DESIGN.md §6)");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "8", "FEKF batch size")
      .flag("epochs", "10", "epochs per variant");
  if (!cli.parse(argc, argv)) return 0;

  const Variant variants[] = {
      {"all stabilizers (default)", true, true, true, true},
      {"no process noise", false, true, true, true},
      {"no covariance limit", true, false, true, true},
      {"no trust region", true, true, false, true},
      {"plain Algorithm 1", false, false, false, true},
  };

  Table table({"variant", "best (E+F) RMSE", "final (E+F) RMSE",
               "epochs run"});
  for (const Variant& v : variants) {
    Fixture f = make_fixture(cli.get("system"), cli);
    train::TrainOptions opts;
    opts.batch_size = cli.get_int("batch");
    opts.max_epochs = cli.get_int("epochs");
    opts.eval_max_samples = 12;
    opts.seed = static_cast<u64>(cli.get_int("seed"));
    optim::KalmanConfig kcfg;
    kcfg.blocksize = cli.get_int("blocksize");
    kcfg.process_noise = v.process_noise ? 1e-2 : 0.0;
    kcfg.p_max = v.p_max ? 100.0 : 0.0;
    kcfg.max_step_norm = v.trust_region ? 0.1 : 0.0;
    train::KalmanTrainer trainer(*f.model, kcfg, opts);
    train::TrainResult r = trainer.train(f.train_envs, {});
    f64 best = 1e30;
    for (const auto& rec : r.history) best = std::min(best, rec.train.total());
    table.add_row({v.name, Table::num(best),
                   Table::num(r.final_train.total()),
                   std::to_string(r.history.size())});
    std::printf("  %-28s done\n", v.name);
  }
  table.print();
  std::printf(
      "\nExpected: the default converges; removing stabilizers degrades the "
      "final RMSE or diverges outright — at paper scale these effects are "
      "suppressed by data diversity and update counts (DESIGN.md §6).\n");
  return 0;
}
