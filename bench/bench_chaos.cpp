// Chaos sweep (DESIGN.md §10): what does a degraded cluster cost?
//
// Sweeps message-loss rate x rank count on the elastic virtual cluster and
// reports, per cell, the simulated communication overhead the lossy-link
// simulation adds over the clean alpha-beta cost (drops, corruptions,
// retries, backoff). A final "churn" scenario drives the fault DSL itself
// — rank failure, straggler, join and a seeded probabilistic drop arm in
// one spec — and reports the recovery bill: reshard + catch-up +
// detection seconds from the CommLedger.
//
// All gated quantities are SIMULATED seconds derived from byte counts and
// seeded RNG draws, so for a fixed bench scale they are deterministic and
// ci/check_budgets.py can hold them to tight budgets (the chaos section of
// ci/budgets.json). Wall-clock-contaminated figures (straggler wait) are
// reported but not gated.
//
// Emits a JSON document (stdout, and --json FILE if given) so
// run_benches.sh can archive it as bench_artifacts/chaos.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fault.hpp"
#include "dist/cluster.hpp"
#include "obs/metrics.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Cell {
  std::string name;
  i64 ranks = 0;
  f64 drop_p = 0.0;
  i64 steps = 0;
  f64 comm_seconds = 0.0;
  f64 sim_seconds = 0.0;
  i64 msg_drops = 0;
  i64 msg_corrupts = 0;
  i64 retries = 0;
  f64 retry_seconds = 0.0;
  f64 retry_ratio = 0.0;         ///< retry_seconds / comm_seconds
  f64 drop_overhead_frac = 0.0;  ///< comm vs the clean cell, same ranks
  // Per-step simulated time distribution (dist.step_sim_seconds): the
  // degraded cells show their cost as a fattened tail, not just a mean.
  f64 step_p50_s = 0.0;
  f64 step_p90_s = 0.0;
  f64 step_p99_s = 0.0;
};

/// The churn scenario's ledger summary; recovery_seconds is the
/// deterministic membership bill (reshard + join catch-up + detection).
struct Churn {
  std::string spec;
  i64 ranks = 0;
  i64 surviving_ranks = 0;
  i64 evictions = 0;
  i64 join_events = 0;
  i64 join_bytes = 0;
  f64 recovery_seconds = 0.0;
  f64 reshard_seconds = 0.0;
  f64 join_seconds = 0.0;
  f64 detection_seconds = 0.0;
  f64 straggler_wait_seconds = 0.0;
  f64 heartbeat_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_chaos",
          "Fault-rate x rank-count chaos sweep on the elastic virtual "
          "cluster: lossy-link overhead + DSL churn recovery bill "
          "(JSON output)");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "8", "FEKF global batch size")
      .flag("epochs", "1", "epochs per cell")
      .flag("ranks", "2,4", "rank counts to sweep")
      .flag("drops", "0,0.02,0.05",
            "message-loss probabilities to sweep (first is the clean "
            "reference per rank count)")
      .flag("churn_spec",
            "rank_fail@step=1,straggler@step=2,factor=2.5,"
            "rank_join@step=3,msg_drop@p=0.02,seed=5",
            "fault DSL spec for the churn scenario")
      .flag("json", "", "also write the JSON document to this file");
  if (!cli.parse(argc, argv)) return 0;

  // The per-step simulated-time histogram (dist.step_sim_seconds) only
  // records when metrics are on; the sweep reports its quantiles per cell.
  obs::set_metrics_enabled(true);
  obs::Histogram& step_hist =
      obs::MetricsRegistry::instance().histogram("dist.step_sim_seconds");

  const i64 batch = cli.get_int("batch");
  const i64 epochs = cli.get_int("epochs");
  Fixture fixture = make_fixture(cli.get("system"), cli);
  FEKF_CHECK(static_cast<i64>(fixture.train_envs.size()) >= batch,
             "need --train >= --batch snapshots");

  auto fresh_model = [&]() {
    deepmd::DeepmdModel model(
        model_config_from(cli),
        data::get_system(cli.get("system")).num_types());
    model.set_stats(fixture.model->env_stats(), fixture.model->energy_stats());
    return model;
  };
  auto run_cluster = [&](i64 ranks, f64 drop_p, const std::string& spec) {
    FaultInjector::instance().configure(spec);
    deepmd::DeepmdModel model = fresh_model();
    dist::DistributedConfig dcfg;
    dcfg.ranks = ranks;
    dcfg.options.batch_size = std::max(batch, ranks);
    dcfg.options.max_epochs = epochs;
    dcfg.options.eval_max_samples = 8;
    dcfg.options.seed = static_cast<u64>(cli.get_int("seed"));
    dcfg.kalman.blocksize = cli.get_int("blocksize");
    dcfg.interconnect.loss_prob = drop_p;
    dcfg.interconnect.corrupt_prob = drop_p / 2.0;
    dist::DistributedResult r = dist::train_fekf_distributed(
        model, fixture.train_envs, {}, dcfg);
    FaultInjector::instance().clear();
    return r;
  };

  const std::vector<i64> rank_list = split_int_list(cli.get("ranks"));
  std::vector<f64> drop_list;
  for (const std::string& s : split_list(cli.get("drops"))) {
    drop_list.push_back(std::stod(s));
  }
  FEKF_CHECK(!rank_list.empty() && !drop_list.empty(),
             "--ranks and --drops must be non-empty");

  std::printf("Chaos sweep: %s, batch %lld, %lld epoch(s) per cell\n\n",
              fixture.system.c_str(), static_cast<long long>(batch),
              static_cast<long long>(epochs));

  std::vector<Cell> cells;
  for (const i64 ranks : rank_list) {
    f64 reference_comm = -1.0;
    for (const f64 drop_p : drop_list) {
      step_hist.reset();
      dist::DistributedResult r = run_cluster(ranks, drop_p, "");
      Cell c;
      c.name = "r" + std::to_string(ranks) + "_p" + fmt("%g", drop_p);
      c.ranks = ranks;
      c.drop_p = drop_p;
      c.steps = r.train.steps;
      c.comm_seconds = r.comm.comm_seconds;
      c.sim_seconds = r.simulated_seconds;
      c.msg_drops = r.comm.msg_drops;
      c.msg_corrupts = r.comm.msg_corrupts;
      c.retries = r.comm.retries;
      c.retry_seconds = r.comm.retry_seconds;
      c.retry_ratio =
          c.comm_seconds > 0.0 ? c.retry_seconds / c.comm_seconds : 0.0;
      if (reference_comm < 0.0) reference_comm = c.comm_seconds;
      c.drop_overhead_frac =
          reference_comm > 0.0 ? c.comm_seconds / reference_comm - 1.0 : 0.0;
      c.step_p50_s = step_hist.percentile(0.50);
      c.step_p90_s = step_hist.percentile(0.90);
      c.step_p99_s = step_hist.percentile(0.99);
      cells.push_back(c);
    }
  }

  Churn churn;
  churn.spec = cli.get("churn_spec");
  churn.ranks = rank_list.back();
  {
    dist::DistributedResult r =
        run_cluster(churn.ranks, 0.0, churn.spec);
    churn.surviving_ranks = r.surviving_ranks;
    churn.evictions = r.comm.evictions;
    churn.join_events = r.comm.join_events;
    churn.join_bytes = r.comm.join_bytes;
    churn.reshard_seconds = r.comm.reshard_seconds;
    churn.join_seconds = r.comm.join_seconds;
    churn.detection_seconds = r.comm.detection_seconds;
    churn.straggler_wait_seconds = r.comm.straggler_wait_seconds;
    churn.heartbeat_seconds = r.comm.heartbeat_seconds;
    churn.recovery_seconds = churn.reshard_seconds + churn.join_seconds +
                             churn.detection_seconds;
  }

  Table table({"cell", "ranks", "drop p", "steps", "comm s", "drops",
               "corrupt", "retries", "retry ratio", "overhead",
               "step p50/p90/p99 ms"});
  for (const Cell& c : cells) {
    table.add_row({c.name, std::to_string(c.ranks), fmt("%g", c.drop_p),
                   std::to_string(c.steps), fmt("%.6f", c.comm_seconds),
                   std::to_string(c.msg_drops),
                   std::to_string(c.msg_corrupts), std::to_string(c.retries),
                   fmt("%.4f", c.retry_ratio),
                   fmt("%+.1f%%", 100.0 * c.drop_overhead_frac),
                   fmt("%.3f", 1e3 * c.step_p50_s) + "/" +
                       fmt("%.3f", 1e3 * c.step_p90_s) + "/" +
                       fmt("%.3f", 1e3 * c.step_p99_s)});
  }
  table.print();
  std::printf(
      "\nchurn '%s' on %lld ranks: %lld evicted, %lld joined "
      "(%lld catch-up bytes), recovery %.6f simulated s "
      "(reshard %.6f + join %.6f + detection %.6f), straggler wait %.6f s\n",
      churn.spec.c_str(), static_cast<long long>(churn.ranks),
      static_cast<long long>(churn.evictions),
      static_cast<long long>(churn.join_events),
      static_cast<long long>(churn.join_bytes), churn.recovery_seconds,
      churn.reshard_seconds, churn.join_seconds, churn.detection_seconds,
      churn.straggler_wait_seconds);

  std::string json = "{\n  \"bench\": \"bench_chaos\",\n";
  json += "  \"system\": \"" + fixture.system + "\",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"epochs\": " + std::to_string(epochs) + ",\n";
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json += "    {\"name\": \"" + c.name + "\"" +
            ", \"ranks\": " + std::to_string(c.ranks) +
            ", \"drop_p\": " + fmt("%g", c.drop_p) +
            ", \"steps\": " + std::to_string(c.steps) +
            ", \"comm_seconds\": " + fmt("%.9f", c.comm_seconds) +
            ", \"sim_seconds\": " + fmt("%.6f", c.sim_seconds) +
            ", \"msg_drops\": " + std::to_string(c.msg_drops) +
            ", \"msg_corrupts\": " + std::to_string(c.msg_corrupts) +
            ", \"retries\": " + std::to_string(c.retries) +
            ", \"retry_seconds\": " + fmt("%.9f", c.retry_seconds) +
            ", \"retry_ratio\": " + fmt("%.6f", c.retry_ratio) +
            ", \"drop_overhead_frac\": " + fmt("%.6f", c.drop_overhead_frac) +
            ", \"step_p50_s\": " + fmt("%.9f", c.step_p50_s) +
            ", \"step_p90_s\": " + fmt("%.9f", c.step_p90_s) +
            ", \"step_p99_s\": " + fmt("%.9f", c.step_p99_s) + "}";
    json += i + 1 < cells.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"churn\": {\n";
  json += "    \"spec\": \"" + churn.spec + "\",\n";
  json += "    \"ranks\": " + std::to_string(churn.ranks) + ",\n";
  json += "    \"surviving_ranks\": " + std::to_string(churn.surviving_ranks) +
          ",\n";
  json += "    \"evictions\": " + std::to_string(churn.evictions) + ",\n";
  json += "    \"join_events\": " + std::to_string(churn.join_events) + ",\n";
  json += "    \"join_bytes\": " + std::to_string(churn.join_bytes) + ",\n";
  json += "    \"recovery_seconds\": " + fmt("%.9f", churn.recovery_seconds) +
          ",\n";
  json += "    \"reshard_seconds\": " + fmt("%.9f", churn.reshard_seconds) +
          ",\n";
  json += "    \"join_seconds\": " + fmt("%.9f", churn.join_seconds) + ",\n";
  json += "    \"detection_seconds\": " +
          fmt("%.9f", churn.detection_seconds) + ",\n";
  json += "    \"straggler_wait_seconds\": " +
          fmt("%.9f", churn.straggler_wait_seconds) + ",\n";
  json += "    \"heartbeat_seconds\": " +
          fmt("%.9f", churn.heartbeat_seconds) + "\n";
  json += "  }\n}\n";
  std::printf("\n%s", json.c_str());
  const std::string path = cli.get("json");
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    FEKF_CHECK(f != nullptr, "cannot open --json file " + path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
