// §3.3 / §5.3 analyses — memory footprint and communication volume.
//
// Reproduces three quantitative claims:
//  1. P-block layout and sizes for the paper's 26 551-parameter network
//     with blocksize 10240: blocks {1350, 10240, 9760, 5201} consuming
//     {13.9, 800, 727, 206} MiB in f64 (paper: 13.90 / 800 / 726.76 /
//     214.39 MB with ~100 extra bookkeeping parameters in the last block).
//  2. The fused P-update kernel removes the K K^T materialization: peak
//     optimizer memory drops from P + max-block^2 scratch (the paper's
//     3405 MB model) to P alone (1805 MB model) — the "twice the footprint
//     of max P_i" bound.
//  3. Per-step communication: FEKF allreduces only the reduced gradient
//     (Mem(g) = 0.2 MB for the paper network) and one scalar error; the
//     fusiform Naive-EKF would need its per-sample P replicas synchronized
//     (batch x 1.75 GB) — the §3.3 scaling blocker.
#include "bench_common.hpp"
#include "dist/cluster.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {
constexpr f64 kMiB = 1024.0 * 1024.0;

std::vector<std::pair<std::string, i64>> paper_layout() {
  return {{"e0.w", 25},    {"e0.b", 25},   {"e1.w", 625},  {"e1.b", 25},
          {"e2.w", 625},   {"e2.b", 25},   {"f0.w", 20000}, {"f0.b", 50},
          {"f1.w", 2500},  {"f1.b", 50},   {"f2.w", 2500}, {"f2.b", 50},
          {"f3.w", 50},    {"f3.b", 1}};
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_comm_memory",
          "§3.3/§5.3: P memory accounting and FEKF vs Naive-EKF "
          "communication volumes");
  add_common_flags(cli);
  cli.flag("batch", "32", "batch size for the Naive-EKF comparison")
      .flag("ranks", "1,4,16", "rank ladder for the communication table");
  if (!cli.parse(argc, argv)) return 0;

  // --- 1. Paper-network P layout --------------------------------------
  auto layout = paper_layout();
  auto blocks = optim::split_blocks(layout, 10240);
  std::printf("P block layout for the paper network (26551 params, "
              "blocksize 10240):\n");
  Table tp({"block", "size", "P_i memory (MiB, f64)"});
  i64 total_params = 0;
  for (const auto& b : blocks) {
    tp.add_row({b.name, std::to_string(b.size),
                fmt("%.2f", static_cast<f64>(b.size) * b.size * 8 / kMiB)});
    total_params += b.size;
  }
  tp.print();
  optim::KalmanConfig fused_cfg;  // defaults: fused kernel, cached Pg
  optim::KalmanOptimizer fused(blocks, fused_cfg);
  optim::KalmanConfig unfused_cfg;
  unfused_cfg.fused_p_update = false;
  unfused_cfg.cache_pg = false;
  optim::KalmanOptimizer unfused(blocks, unfused_cfg);
  std::printf(
      "\ntotal P: %.1f MiB; peak with fused P kernel: %.1f MiB; peak with "
      "framework-style K K^T materialization: %.1f MiB (paper: 1805 MB vs "
      "3405 MB)\n",
      static_cast<f64>(fused.p_bytes()) / kMiB,
      static_cast<f64>(fused.peak_bytes()) / kMiB,
      static_cast<f64>(unfused.peak_bytes()) / kMiB);

  // --- 2. Gradient payload and FEKF vs Naive-EKF communication --------
  const i64 grad_bytes = total_params * static_cast<i64>(sizeof(f64));
  const i64 batch = cli.get_int("batch");
  std::printf("\nPer-step communication payloads (paper network):\n");
  std::printf("  Mem(g) = %.2f MB (paper: 0.2 MB)\n",
              static_cast<f64>(grad_bytes) / 1e6);
  // Computed analytically: batch x sum_i n_i^2 x 8 bytes. Instantiating
  // the replicas at paper scale would need ~56 GiB (that is the point).
  i64 p_block_bytes = 0;
  for (const auto& b : blocks) p_block_bytes += b.size * b.size * 8;
  const i64 naive_p_bytes = batch * p_block_bytes;
  std::printf("  Naive-EKF P replicas (batch %lld): %.1f GiB resident, "
              "all of it rank-divergent state\n",
              static_cast<long long>(batch),
              static_cast<f64>(naive_p_bytes) / (kMiB * 1024.0));

  Table tc({"ranks", "FEKF bytes/step (grad+err)", "FEKF allreduce time",
            "Naive-EKF bytes/step (P sync)", "Naive allreduce time"});
  dist::InterconnectModel net;  // paper RoCE figures
  for (const i64 ranks : split_int_list(cli.get("ranks"))) {
    const i64 fekf_bytes =
        dist::InterconnectModel::allreduce_bytes(grad_bytes + 8, ranks);
    const i64 naive_bytes =
        dist::InterconnectModel::allreduce_bytes(naive_p_bytes, ranks);
    tc.add_row({std::to_string(ranks), std::to_string(fekf_bytes),
                fmt("%.1f us", 1e6 * net.allreduce_seconds(grad_bytes + 8,
                                                           ranks)),
                std::to_string(naive_bytes),
                fmt("%.1f ms",
                    1e3 * net.allreduce_seconds(naive_p_bytes, ranks))});
  }
  tc.print();

  // --- 3. Measured: the small bench model, real byte ledger -----------
  std::printf("\nMeasured ledger on the bench-scale model (one epoch, "
              "4 ranks):\n");
  Fixture f = make_fixture("Cu", cli);
  dist::DistributedConfig dcfg;
  dcfg.ranks = 4;
  dcfg.options.batch_size = 8;
  dcfg.options.max_epochs = 1;
  dcfg.options.eval_max_samples = 4;
  dcfg.kalman.blocksize = cli.get_int("blocksize");
  dist::DistributedResult r =
      dist::train_fekf_distributed(*f.model, f.train_envs, {}, dcfg);
  std::printf("  gradient bytes: %lld, error bytes: %lld, P bytes: 0 "
              "(never communicated)\n",
              static_cast<long long>(r.comm.gradient_bytes),
              static_cast<long long>(r.comm.error_bytes));
  std::printf("  => error traffic is %.4f%% of gradient traffic (§5.3: "
              "\"the communication of ABEs can be ignored\")\n",
              100.0 * static_cast<f64>(r.comm.error_bytes) /
                  static_cast<f64>(r.comm.gradient_bytes));
  return 0;
}
