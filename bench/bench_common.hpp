// Shared fixture plumbing for the experiment harnesses (one binary per
// paper table/figure — see DESIGN.md §3 for the index).
//
// Default scales are sized for a single CPU core: smaller network and
// dataset than the paper, same architecture shape. Every harness exposes
// flags to raise the scale toward the paper's (--embed 25 --axis 16
// --fit 50 --blocksize 10240 ...).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "train/trainer.hpp"

namespace fekf::bench {

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<deepmd::DeepmdModel> model;
  std::vector<train::EnvPtr> train_envs;
  std::vector<train::EnvPtr> test_envs;
  std::string system;
};

/// Register the flags shared by all experiment harnesses.
inline void add_common_flags(Cli& cli) {
  cli.flag("train", "56", "training snapshots (split across temperatures)")
      .flag("test", "16", "test snapshots")
      .flag("embed", "12", "embedding width M (paper: 25)")
      .flag("axis", "6", "axis neurons M^< (paper: 16)")
      .flag("fit", "24", "fitting width d (paper: 50)")
      .flag("blocksize", "2048", "EKF covariance blocksize (paper: 10240)")
      .flag("seed", "2024", "dataset / training seed");
}

inline deepmd::ModelConfig model_config_from(const Cli& cli) {
  deepmd::ModelConfig cfg;
  cfg.embed_width = cli.get_int("embed");
  cfg.axis_neurons = cli.get_int("axis");
  cfg.fitting_width = cli.get_int("fit");
  return cfg;
}

/// Build dataset + model (stats fitted, envs prepared) for one system.
/// Each call constructs a FRESH model with identical initialization, so
/// optimizer comparisons start from the same weights.
inline Fixture make_fixture(const std::string& system, const Cli& cli) {
  Fixture f;
  f.system = system;
  const data::SystemSpec& spec = data::get_system(system);
  data::DatasetConfig dcfg;
  const i64 ntemps = static_cast<i64>(spec.temperatures.size());
  dcfg.train_per_temperature =
      std::max<i64>(1, cli.get_int("train") / ntemps);
  dcfg.test_per_temperature = std::max<i64>(1, cli.get_int("test") / ntemps);
  dcfg.seed = static_cast<u64>(cli.get_int("seed"));
  f.dataset = data::build_dataset(spec, dcfg);
  f.model = std::make_unique<deepmd::DeepmdModel>(model_config_from(cli),
                                                  spec.num_types());
  f.model->fit_stats(f.dataset.train);
  f.train_envs = train::prepare_all(*f.model, f.dataset.train);
  f.test_envs = train::prepare_all(*f.model, f.dataset.test);
  return f;
}

/// Parse a comma-separated list flag.
inline std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

inline std::vector<i64> split_int_list(const std::string& csv) {
  std::vector<i64> out;
  for (const std::string& s : split_list(csv)) {
    out.push_back(std::stoll(s));
  }
  return out;
}

inline std::string fmt(const char* format, f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace fekf::bench
