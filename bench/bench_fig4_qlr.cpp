// Figure 4 — effect of the quasi-learning-rate factor on the energy
// convergence of multi-sample FEKF.
//
// The paper's Eq. 2 scales the Kalman weight step by sqrt(bs) and Figure 4
// shows this converging faster than factor 1. This harness trains FEKF
// with factor 1, sqrt(bs), and bs and prints the per-epoch Energy RMSE
// series (the figure's curves).
#include <cmath>

#include "bench_common.hpp"

using namespace fekf;
using namespace fekf::bench;

int main(int argc, char** argv) {
  Cli cli("bench_fig4_qlr",
          "Figure 4: quasi-learning-rate factor vs energy convergence");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "8", "FEKF batch size")
      .flag("epochs", "12", "training epochs");
  if (!cli.parse(argc, argv)) return 0;

  const i64 batch = cli.get_int("batch");
  const i64 epochs = cli.get_int("epochs");
  const f64 factors[] = {1.0, std::sqrt(static_cast<f64>(batch)),
                         static_cast<f64>(batch)};
  const char* labels[] = {"factor 1", "factor sqrt(bs)", "factor bs"};

  std::vector<std::vector<f64>> series;
  for (const f64 factor : factors) {
    Fixture f = make_fixture(cli.get("system"), cli);
    train::TrainOptions opts;
    opts.batch_size = batch;
    opts.max_epochs = epochs;
    opts.eval_max_samples = 16;
    opts.qlr_factor = factor;
    opts.seed = static_cast<u64>(cli.get_int("seed"));
    optim::KalmanConfig kcfg;
    kcfg.blocksize = cli.get_int("blocksize");
    train::KalmanTrainer trainer(*f.model, kcfg, opts);
    train::TrainResult result = trainer.train(f.train_envs, {});
    // Best-so-far envelope: training is stochastic at this scale, and the
    // paper's convergence claim is about how fast each factor reaches a
    // given accuracy.
    std::vector<f64> curve;
    f64 best = 1e30;
    for (const auto& rec : result.history) {
      best = std::min(best, rec.train.total());
      curve.push_back(best);
    }
    series.push_back(curve);
  }

  std::printf("Figure 4 reproduction: best-so-far (E+F) RMSE per epoch, FEKF "
              "batch %lld on %s\n",
              static_cast<long long>(batch), cli.get("system").c_str());
  std::vector<std::string> header = {"epoch"};
  for (const char* l : labels) header.emplace_back(l);
  Table table(header);
  for (i64 e = 0; e < epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& curve : series) {
      row.push_back(e < static_cast<i64>(curve.size())
                        ? Table::num(curve[static_cast<std::size_t>(e)])
                        : "-");
    }
    table.add_row(row);
  }
  table.print();

  // Area-under-envelope summary: lower = faster convergence.
  std::printf("\nmean best-so-far RMSE over the run (lower = faster "
              "convergence):\n");
  for (std::size_t s = 0; s < series.size(); ++s) {
    f64 mean = 0.0;
    for (const f64 v : series[s]) mean += v;
    mean /= static_cast<f64>(series[s].size());
    std::printf("  %-16s %.4f (final %.4f)\n", labels[s], mean,
                series[s].back());
  }
  std::printf(
      "\nPaper shape: the sqrt(bs) factor converges fastest (Figure 4). "
      "NOTE: the sqrt(bs) advantage assumes per-sample measurement "
      "gradients that decorrelate across the batch (so the reduced "
      "gradient shrinks by sqrt(bs) and the factor restores the step "
      "size). At this repo's miniature data scale the per-group force "
      "gradients stay correlated for many epochs, so smaller factors can "
      "win; EXPERIMENTS.md discusses the deviation.\n");
  return 0;
}
