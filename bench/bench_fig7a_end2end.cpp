// Figure 7(a) — end-to-end training wall time of Adam, RLEKF, FEKF, and
// system-optimized FEKF on the catalog systems.
//
// Each optimizer trains until it reaches a per-system target (E+F RMSE,
// anchored on what FEKF achieves within its budget) and the elapsed wall
// time is reported. The paper's shape: Adam slowest by far; FEKF (bs 32)
// beats instance-by-instance RLEKF (avg 11.6x on the A100, where per-update
// kernel-launch overhead dominates RLEKF); kernel-fusion optimizations add
// a further factor (3.25x on GPU; smaller on CPU where a "launch" is a
// function call — see EXPERIMENTS.md).
#include "bench_common.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Timing {
  f64 seconds_to_target = -1.0;  // < 0: not reached
  f64 total_seconds = 0.0;
  i64 epochs = 0;
  f64 best_total = 1e30;
};

Timing summarize(const train::TrainResult& r, f64 target) {
  Timing t;
  t.total_seconds = r.total_seconds;
  t.epochs = static_cast<i64>(r.history.size());
  for (const auto& rec : r.history) {
    t.best_total = std::min(t.best_total, rec.train.total());
    if (t.seconds_to_target < 0 && rec.train.total() <= target) {
      t.seconds_to_target = rec.cumulative_seconds;
    }
  }
  return t;
}

train::TrainResult run_fekf(const std::string& system, const Cli& cli,
                            i64 batch, deepmd::FusionLevel fusion,
                            bool opt3, i64 epochs, f64 target) {
  Fixture f = make_fixture(system, cli);
  f.model->set_fusion(fusion);
  train::TrainOptions opts;
  opts.batch_size = batch;
  opts.max_epochs = epochs;
  opts.eval_max_samples = 12;
  opts.target_total_rmse = target;
  opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::KalmanConfig kcfg = optim::KalmanConfig::for_batch_size(batch);
  kcfg.blocksize = cli.get_int("blocksize");
  kcfg.fused_p_update = opt3;
  kcfg.cache_pg = opt3;
  train::KalmanTrainer trainer(*f.model, kcfg, opts);
  return trainer.train(f.train_envs, {});
}

train::TrainResult run_adam(const std::string& system, const Cli& cli,
                            i64 epochs, f64 target) {
  Fixture f = make_fixture(system, cli);
  train::TrainOptions opts;
  opts.batch_size = 1;
  opts.max_epochs = epochs;
  opts.eval_max_samples = 12;
  opts.target_total_rmse = target;
  opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::AdamConfig acfg;
  acfg.decay_steps =
      std::max<i64>(8, static_cast<i64>(f.train_envs.size()) * epochs / 48);
  train::AdamTrainer trainer(*f.model, acfg, {}, opts);
  return trainer.train(f.train_envs, {});
}

std::string time_cell(const Timing& t) {
  if (t.seconds_to_target >= 0) return fmt("%.1fs", t.seconds_to_target);
  return "> " + fmt("%.1fs", t.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig7a_end2end",
          "Figure 7a: end-to-end wall time of Adam / RLEKF / FEKF / "
          "FEKF-optimized");
  add_common_flags(cli);
  cli.flag("systems", "Cu,Si,NaCl,H2O",
           "comma-separated catalog systems (all eight: Cu,Al,Si,NaCl,Mg,H2O,CuO,HfO2)")
      .flag("batch", "8", "FEKF batch size (paper: 32)")
      .flag("fekf-epochs", "10", "FEKF epoch budget")
      .flag("rlekf-epochs", "4", "RLEKF epoch budget")
      .flag("adam-epochs", "16", "Adam epoch budget")
      .flag("slack", "1.25", "target = slack * FEKF-opt best total RMSE");
  if (!cli.parse(argc, argv)) return 0;

  const i64 batch = cli.get_int("batch");
  Table table({"System", "target RMSE", "Adam bs1", "RLEKF bs1",
               "FEKF bs" + std::to_string(batch),
               "FEKF bs" + std::to_string(batch) + " opt",
               "FEKF/RLEKF speedup", "opt speedup"});

  std::printf("Figure 7a reproduction: wall time to matched accuracy\n");
  for (const std::string& system : split_list(cli.get("systems"))) {
    // Anchor: optimized FEKF defines the common accuracy target.
    train::TrainResult anchor =
        run_fekf(system, cli, batch, deepmd::FusionLevel::kOpt2,
                 /*opt3=*/true, cli.get_int("fekf-epochs"), -1.0);
    Timing anchor_t = summarize(anchor, -1.0);
    const f64 target = cli.get_double("slack") * anchor_t.best_total;

    Timing opt = summarize(anchor, target);
    Timing fekf = summarize(
        run_fekf(system, cli, batch, deepmd::FusionLevel::kBaseline,
                 /*opt3=*/false, cli.get_int("fekf-epochs"), target),
        target);
    Timing rlekf = summarize(
        run_fekf(system, cli, 1, deepmd::FusionLevel::kBaseline,
                 /*opt3=*/false, cli.get_int("rlekf-epochs"), target),
        target);
    Timing adam =
        summarize(run_adam(system, cli, cli.get_int("adam-epochs"), target),
                  target);

    auto speedup = [](const Timing& slow, const Timing& fast) -> std::string {
      const f64 s = slow.seconds_to_target >= 0 ? slow.seconds_to_target
                                                : slow.total_seconds;
      if (fast.seconds_to_target < 0) return "-";
      std::string prefix = slow.seconds_to_target >= 0 ? "" : "> ";
      return prefix +
             fmt("%.2fx", s / std::max(1e-9, fast.seconds_to_target));
    };
    table.add_row({system, Table::num(target), time_cell(adam),
                   time_cell(rlekf), time_cell(fekf), time_cell(opt),
                   speedup(rlekf, fekf), speedup(fekf, opt)});
    std::printf("  %-5s done\n", system.c_str());
  }
  table.print();
  std::printf(
      "\nPaper shape: Adam >> RLEKF > FEKF > FEKF-opt. '>' marks budget-"
      "capped lower bounds. GPU speedup factors are larger than CPU ones "
      "because per-kernel launch overhead dominates instance-by-instance "
      "RLEKF on the A100 (see EXPERIMENTS.md).\n");
  return 0;
}
