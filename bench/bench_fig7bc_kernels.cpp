// Figure 7(b)/(c) — CUDA-kernel launches and iteration time under the
// step-by-step system optimizations.
//
// Configurations (cumulative, as in the paper):
//   baseline  framework-autograd style: per-atom composed descriptor ops,
//             unfused linear/tanh, unfused P update, no Pg caching
//   opt1      hand-written (batched) descriptor-derivative kernels (Fig. 6)
//   opt2      + fused linear / tanh-backward kernels (torch.compile analog)
//   opt3      + custom P-update kernel and Pg reuse in the optimizer
//   fused     + whole-layer linear+tanh, whole-descriptor desc_a/desc_d and
//             whole-step EKF composite launches (DESIGN.md §12)
//
// For each configuration the harness reports (b) the number of primitive-
// kernel launches for one ENERGY update and one FORCE update (the paper's
// two bar groups: 397->174 and 846->281 on the A100), and (c) the
// iteration time split into forward / gradient / KF-update phases, plus the
// arena (Workspace) allocator counters for the measured iterations.
//
// The harness doubles as the CI launch/allocation budget gate: it FAILS
// (FEKF_CHECK) if fusion stops halving the per-step launch count or the
// arena leaves steady state (slab growth or retirement during measured
// iterations), and `--json FILE` emits the per-config numbers that
// ci/check_budgets.py compares against ci/budgets.json.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "deepmd/descriptor_variants.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/variants/variants.hpp"
#include "tensor/workspace.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Config {
  const char* name;
  deepmd::FusionLevel fusion;
  bool opt3;
  bool fused_step;
};

struct Sample {
  i64 energy_kernels = 0;
  i64 force_kernels = 0;
  f64 forward_s = 0.0, gradient_s = 0.0, optimizer_s = 0.0;
  // Same split re-derived from trace spans (cross-check, seconds/iter).
  f64 span_forward_s = 0.0, span_gradient_s = 0.0, span_optimizer_s = 0.0;
  // Arena counters over the measured iterations (zeros when FEKF_ARENA=0).
  i64 arena_peak_scope_bytes = 0;
  i64 arena_allocs_per_iter = 0;
  i64 arena_retired_slabs = 0;
  i64 arena_reserved_bytes = 0;
  i64 arena_reserved_growth = 0;
  std::vector<std::pair<std::string, i64>> top_kernels;

  i64 step_kernels() const { return energy_kernels + 4 * force_kernels; }
};

f64 span_delta(const std::map<std::string, f64>& before,
               const std::map<std::string, f64>& after, const char* name) {
  const auto hit = after.find(name);
  const f64 end = hit == after.end() ? 0.0 : hit->second;
  const auto base = before.find(name);
  return end - (base == before.end() ? 0.0 : base->second);
}

/// The span wraps the AccumTimer scope, so the two attributions must agree
/// (spans carry a few extra clock reads). Phases shorter than 5 ms/iter are
/// exempt: there the absolute gap is scheduling noise, not attribution.
void check_split_agreement(const char* config, const char* phase, f64 timer_s,
                           f64 span_s) {
  if (timer_s < 5e-3) return;
  const f64 rel = std::abs(span_s - timer_s) / timer_s;
  FEKF_CHECK(rel <= 0.05,
             std::string("span-derived fig7c split disagrees with the "
                         "AccumTimer split: config ") +
                 config + " phase " + phase + " timer=" +
                 std::to_string(timer_s) + "s span=" + std::to_string(span_s) +
                 "s (" + std::to_string(100.0 * rel) + "% off)");
}

// ---------------------------------------------------------------------------
// Per-variant kernel-dispatch micro table (DESIGN.md §13, docs/KERNELS.md)
// ---------------------------------------------------------------------------

namespace dp = fekf::dispatch;

struct VariantRow {
  dp::Variant v;
  bool eligible = false;   ///< compiled and supported by this CPU
  bool selected = false;   ///< what the current policy resolves to
  f64 s_per_call = 0.0;    ///< best-of-3 averaged wall time (eligible only)
  f64 speedup = 0.0;       ///< scalar s_per_call / this s_per_call
};

struct DispatchSection {
  std::string kernel;
  std::string shape;
  std::vector<VariantRow> rows;

  f64 best_speedup() const {
    f64 best = 1.0;
    for (const VariantRow& r : rows) {
      if (r.eligible) best = std::max(best, r.speedup);
    }
    return best;
  }
};

/// Times `call(fn)` on the calling thread: repeats are calibrated on the
/// scalar variant (~40 ms), then every variant runs the same repeat count
/// three times and keeps the best pass — the per-variant rows in
/// docs/KERNELS.md and the ci/budgets.json "dispatch" section come from
/// exactly this loop.
template <typename Call>
DispatchSection time_family(const std::string& kernel, std::string shape,
                            Call&& call) {
  auto& reg = dp::Registry::instance();
  const dp::CpuFeatures cpu = reg.cpu_features();
  const dp::Variant selected = reg.selected(kernel);
  DispatchSection section{kernel, std::move(shape), {}};

  const dp::Variant scalar = *reg.find(kernel, "scalar");
  const auto time_once = [&](const dp::Variant& v, i64 repeats) {
    const auto t0 = std::chrono::steady_clock::now();
    for (i64 r = 0; r < repeats; ++r) call(v);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<f64>(t1 - t0).count() /
           static_cast<f64>(repeats);
  };
  // Calibrate on scalar: target ~40 ms per measured pass.
  i64 repeats = 1;
  f64 scalar_probe = time_once(scalar, 1);
  while (scalar_probe * static_cast<f64>(repeats) < 0.04 &&
         repeats < (1 << 20)) {
    repeats *= 2;
  }
  const auto measure = [&](const dp::Variant& v) {
    f64 best = time_once(v, repeats);
    for (int pass = 1; pass < 3; ++pass) {
      best = std::min(best, time_once(v, repeats));
    }
    return best;
  };
  const f64 scalar_s = measure(scalar);
  for (const dp::Variant& v : reg.variants(kernel)) {
    VariantRow row;
    row.v = v;
    row.eligible =
        v.compiled && (v.isa != "avx2+fma" || (cpu.avx2 && cpu.fma));
    row.selected = v.name == selected.name;
    if (row.eligible) {
      row.s_per_call = v.name == "scalar" ? scalar_s : measure(v);
      row.speedup = scalar_s / row.s_per_call;
    }
    section.rows.push_back(row);
  }
  return section;
}

std::vector<DispatchSection> run_dispatch_micro(u64 seed) {
  dp::register_gemm_variants();
  dp::register_tanh_variants();
  dp::register_ekf_variants();
  dp::register_matnt_variants();
  dp::register_desc_variants();
  Rng rng(seed);
  std::vector<DispatchSection> sections;

  {  // gemm: embedding-net layer shape (d = 50 from the paper network).
    const i64 m = 256, k = 50, n = 50;
    const Tensor x = Tensor::randn(m, k, rng);
    const Tensor w = Tensor::randn(k, n, rng);
    const Tensor b = Tensor::randn(1, n, rng);
    Tensor out(m, n);
    sections.push_back(time_family(
        "gemm_f32", "m=256 k=50 n=50", [&](const dp::Variant& v) {
          reinterpret_cast<dp::GemmPanelFn>(v.fn)(
              x.data(), w.data(), b.data(), out.data(), 0, m, k, n);
        }));
  }
  {  // tanh: one activation sweep.
    const i64 count = 1 << 16;
    const Tensor x = Tensor::randn(1, count, rng);
    Tensor y(1, count);
    sections.push_back(time_family(
        "tanh_f32", "count=65536", [&](const dp::Variant& v) {
          reinterpret_cast<dp::TanhChunkFn>(v.fn)(x.data(), y.data(), count);
        }));
  }
  const i64 n = 1024;  // EKF block size (paper blocksize regime)
  std::vector<f64> p(static_cast<std::size_t>(n * n));
  std::vector<f64> g(static_cast<std::size_t>(n));
  std::vector<f64> y(static_cast<std::size_t>(n));
  {
    const Tensor t = Tensor::randn(1, n * n, rng);
    for (i64 i = 0; i < n * n; ++i) p[static_cast<std::size_t>(i)] = t.data()[i];
    const Tensor tg = Tensor::randn(1, n, rng);
    for (i64 i = 0; i < n; ++i) g[static_cast<std::size_t>(i)] = tg.data()[i];
  }
  sections.push_back(time_family(
      "ekf_symv_f64", "n=1024", [&](const dp::Variant& v) {
        reinterpret_cast<dp::SymvPanelFn>(v.fn)(p.data(), g.data(), y.data(),
                                                0, n, n);
      }));
  {  // dot: one reduce chunk (kReduceChunk elements).
    const i64 len = 1 << 15;
    std::vector<f64> a(static_cast<std::size_t>(len)),
        b(static_cast<std::size_t>(len));
    const Tensor ta = Tensor::randn(2, len, rng);
    for (i64 i = 0; i < len; ++i) {
      a[static_cast<std::size_t>(i)] = ta.data()[i];
      b[static_cast<std::size_t>(i)] = ta.data()[len + i];
    }
    volatile f64 sink = 0.0;
    sections.push_back(time_family(
        "ekf_dot_f64", "len=32768", [&](const dp::Variant& v) {
          sink = reinterpret_cast<dp::DotChunkFn>(v.fn)(a.data(), b.data(), 0,
                                                        len);
        }));
    (void)sink;
  }
  sections.push_back(time_family(
      "ekf_rank1_f64", "n=1024", [&](const dp::Variant& v) {
        reinterpret_cast<dp::Rank1PanelFn>(v.fn)(p.data(), g.data(), 0.37,
                                                 1.0 / 0.9987, 0, n, n);
      }));
  {  // NT contraction: the linear-backward gx shape (d = 50 layers).
    const i64 rows = 256, nt_n = 50, nt_q = 50;
    const Tensor a = Tensor::randn(rows, nt_q, rng);
    const Tensor b = Tensor::randn(nt_n, nt_q, rng);
    Tensor out(rows, nt_n);
    sections.push_back(time_family(
        "matnt_f32", "rows=256 n=50 q=50", [&](const dp::Variant& v) {
          reinterpret_cast<dp::MatNtPanelFn>(v.fn)(a.data(), b.data(),
                                                   out.data(), 0, rows, nt_n,
                                                   nt_q);
        }));
  }
  {  // descriptor tail: paper M=25, M^<=16 block.
    const i64 m = 25, m_axis = 16, q = 256;
    const Tensor a = Tensor::randn(m, q, rng);
    Tensor out(m, m_axis);
    sections.push_back(time_family(
        "desc_contract_f32", "m=25 maxis=16 q=256", [&](const dp::Variant& v) {
          reinterpret_cast<dp::DescContractFn>(v.fn)(a.data(), out.data(), m,
                                                     m_axis, q);
        }));
  }
  return sections;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig7bc_kernels",
          "Figure 7b/7c: kernel launches and iteration time per "
          "optimization level");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "8", "FEKF batch size (paper: 64)")
      .flag("iters", "3", "measured iterations per configuration")
      .flag("json", "", "also write a machine-readable summary to this file");
  if (!cli.parse(argc, argv)) return 0;

  const Config configs[] = {
      {"baseline", deepmd::FusionLevel::kBaseline, false, false},
      {"opt1", deepmd::FusionLevel::kOpt1, false, false},
      {"opt2", deepmd::FusionLevel::kOpt2, false, false},
      {"opt3", deepmd::FusionLevel::kOpt2, true, false},
      {"fused", deepmd::FusionLevel::kFused, true, true},
  };
  const i64 batch = cli.get_int("batch");
  const i64 iters = cli.get_int("iters");

  std::vector<Sample> samples;
  // Tracing-overhead A/B on the fused configuration (filled in the loop).
  f64 obs_traced_s = 0.0;
  f64 obs_untraced_s = 0.0;
  for (const Config& config : configs) {
    Fixture f = make_fixture(cli.get("system"), cli);
    f.model->set_fusion(config.fusion);
    train::TrainOptions opts;
    opts.batch_size = batch;
    opts.seed = static_cast<u64>(cli.get_int("seed"));
    optim::KalmanConfig kcfg;
    kcfg.blocksize = cli.get_int("blocksize");
    kcfg.fused_p_update = config.opt3;
    kcfg.cache_pg = config.opt3;
    kcfg.fused_step = config.fused_step;
    train::KalmanTrainer trainer(*f.model, kcfg, opts);

    std::span<const train::EnvPtr> all(f.train_envs);
    auto batch_span = all.subspan(0, static_cast<std::size_t>(batch));
    Rng group_rng(7);
    auto groups =
        train::make_force_groups(f.train_envs.front()->natoms, 4, group_rng);

    // Warm-up iteration (excluded), then measured iterations.
    trainer.energy_update(batch_span);
    trainer.force_update(batch_span, groups[0]);

    // Launch counts are EXACT under concurrency (KernelCounter is atomic
    // and kernels record once per launch, never per worker chunk): the same
    // updates at width 1 and width N must count identically.
    {
      i64 count_1t = 0, count_nt = 0;
      {
        set_num_threads(1);
        KernelCountScope scope;
        trainer.energy_update(batch_span);
        trainer.force_update(batch_span, groups[1]);
        count_1t = scope.count();
      }
      {
        set_num_threads(4);
        KernelCountScope scope;
        trainer.energy_update(batch_span);
        trainer.force_update(batch_span, groups[1]);
        count_nt = scope.count();
      }
      set_num_threads(0);  // restore default width
      FEKF_CHECK(count_1t == count_nt,
                 "kernel-launch counts differ between 1 and 4 threads: " +
                     std::to_string(count_1t) + " vs " +
                     std::to_string(count_nt));
    }
    trainer.forward_timer().reset();
    trainer.gradient_timer().reset();
    trainer.optimizer_timer().reset();

    // The measured loop runs with tracing on, so the same iterations are
    // attributed twice: by the AccumTimers and by the phase spans the
    // trainer opens around the identical scopes. The two must agree.
    auto& recorder = obs::TraceRecorder::instance();
    const bool trace_was_enabled = obs::TraceRecorder::enabled();
    recorder.set_enabled(true);
    const auto spans_before = recorder.span_seconds_by_name();
    KernelCounter::reset();
    const auto launches_before = KernelCounter::breakdown();
    Workspace::reset_stats();
    const WorkspaceStats arena_before = Workspace::stats();

    Sample sample;
    for (i64 it = 0; it < iters; ++it) {
      {
        KernelCountScope scope;
        trainer.energy_update(batch_span);
        sample.energy_kernels += scope.count();
      }
      {
        KernelCountScope scope;
        trainer.force_update(batch_span,
                             groups[static_cast<std::size_t>(it % 4)]);
        sample.force_kernels += scope.count();
      }
    }
    const auto spans_after = recorder.span_seconds_by_name();
    recorder.set_enabled(trace_was_enabled);
    const WorkspaceStats arena_after = Workspace::stats();
    sample.arena_peak_scope_bytes = arena_after.peak_scope_bytes;
    sample.arena_allocs_per_iter =
        (arena_after.allocs - arena_before.allocs) / iters;
    sample.arena_retired_slabs =
        arena_after.retired_slabs - arena_before.retired_slabs;
    sample.arena_reserved_bytes = arena_after.reserved_bytes;
    sample.arena_reserved_growth =
        arena_after.reserved_bytes - arena_before.reserved_bytes;
    // Allocation budget: after the warm-up iterations the arena must be in
    // steady state — the same slabs serve every measured step (no growth)
    // and no tensor escapes its step scope (no retirement).
    if (Workspace::enabled()) {
      FEKF_CHECK(sample.arena_retired_slabs == 0,
                 std::string("arena retired ") +
                     std::to_string(sample.arena_retired_slabs) +
                     " slab(s) during measured iterations (config " +
                     config.name + "): a tensor escaped its step scope");
      FEKF_CHECK(sample.arena_reserved_growth == 0,
                 std::string("arena grew by ") +
                     std::to_string(sample.arena_reserved_growth) +
                     " bytes during measured iterations (config " +
                     config.name + "): warm-up did not reach steady state");
    }
    sample.energy_kernels /= iters;
    sample.force_kernels /= iters;
    sample.forward_s = trainer.forward_timer().total_seconds() / iters;
    sample.gradient_s = trainer.gradient_timer().total_seconds() / iters;
    sample.optimizer_s = trainer.optimizer_timer().total_seconds() / iters;
    const f64 n = static_cast<f64>(iters);
    sample.span_forward_s = span_delta(spans_before, spans_after, "forward") / n;
    sample.span_gradient_s =
        span_delta(spans_before, spans_after, "gradient") / n;
    sample.span_optimizer_s =
        span_delta(spans_before, spans_after, "kf_update") / n;
    check_split_agreement(config.name, "forward", sample.forward_s,
                          sample.span_forward_s);
    check_split_agreement(config.name, "gradient", sample.gradient_s,
                          sample.span_gradient_s);
    check_split_agreement(config.name, "kf_update", sample.optimizer_s,
                          sample.span_optimizer_s);

    // Per-op launch attribution for this config's measured iterations.
    auto launches_after = KernelCounter::breakdown();
    for (const auto& [name, count] : launches_before) {
      launches_after[name] -= count;
    }
    sample.top_kernels.assign(launches_after.begin(), launches_after.end());
    std::erase_if(sample.top_kernels,
                  [](const auto& kv) { return kv.second <= 0; });
    std::sort(sample.top_kernels.begin(), sample.top_kernels.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    // Tracing-overhead A/B (the fused config only — the production step):
    // alternate untraced and traced passes of the same updates so host
    // noise hits both arms equally, keep the best of each. The ratio is
    // the "span recording is always cheap" claim as a number; the "obs"
    // section of ci/budgets.json holds it to 1.05x. Min-of-5 per arm: on
    // a loaded 1-core CI host single passes wobble several percent, and
    // the min is the robust estimator of the noise-free pass.
    if (config.fused_step) {
      constexpr int kReps = 5;
      obs_untraced_s = 1e300;
      obs_traced_s = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        for (const bool traced : {false, true}) {
          recorder.set_enabled(traced);
          const auto t0 = std::chrono::steady_clock::now();
          trainer.energy_update(batch_span);
          trainer.force_update(batch_span, groups[rep % 4]);
          const f64 pass_s =
              std::chrono::duration<f64>(std::chrono::steady_clock::now() -
                                         t0)
                  .count();
          (traced ? obs_traced_s : obs_untraced_s) =
              std::min(traced ? obs_traced_s : obs_untraced_s, pass_s);
        }
      }
      recorder.set_enabled(trace_was_enabled);
    }
    samples.push_back(sample);
    std::printf("  %-8s measured\n", config.name);
  }

  std::printf("\nFigure 7b reproduction: primitive-kernel launches per "
              "update (%s, batch %lld)\n",
              cli.get("system").c_str(), static_cast<long long>(batch));
  Table tb({"config", "energy-update kernels", "force-update kernels",
            "step total (1E + 4F)"});
  for (std::size_t c = 0; c < samples.size(); ++c) {
    const Sample& s = samples[c];
    tb.add_row({configs[c].name, std::to_string(s.energy_kernels),
                std::to_string(s.force_kernels),
                std::to_string(s.step_kernels())});
  }
  tb.print();
  const Sample& baseline = samples.front();
  const Sample& opt3 = samples[3];
  const Sample& fused = samples.back();
  std::printf("kernel reduction baseline -> opt3: %.0f%% (paper: 64%%, "
              "3781 -> 1298)\n",
              100.0 * (1.0 - static_cast<f64>(opt3.step_kernels()) /
                                 static_cast<f64>(baseline.step_kernels())));
  std::printf("kernel reduction baseline -> fused: %.0f%% (%lld -> %lld "
              "launches per step)\n",
              100.0 * (1.0 - static_cast<f64>(fused.step_kernels()) /
                                 static_cast<f64>(baseline.step_kernels())),
              static_cast<long long>(baseline.step_kernels()),
              static_cast<long long>(fused.step_kernels()));

  // Launch budget (CI gate): the fused configuration must keep at least a
  // 2x launch reduction over the framework-style baseline AND strictly
  // improve on opt3 — a regression in either fails the bench loudly.
  FEKF_CHECK(2 * fused.step_kernels() <= baseline.step_kernels(),
             "launch budget violated: fused step issues " +
                 std::to_string(fused.step_kernels()) +
                 " launches, more than half of baseline's " +
                 std::to_string(baseline.step_kernels()));
  FEKF_CHECK(fused.step_kernels() < opt3.step_kernels(),
             "launch budget violated: fused step (" +
                 std::to_string(fused.step_kernels()) +
                 " launches) does not improve on opt3 (" +
                 std::to_string(opt3.step_kernels()) + ")");

  std::printf("\nTop launch contributors per config (launches per measured "
              "iteration, 1E + 1F):\n");
  for (std::size_t c = 0; c < samples.size(); ++c) {
    std::printf("  %-8s", configs[c].name);
    const auto& top = samples[c].top_kernels;
    const std::size_t shown = std::min<std::size_t>(top.size(), 6);
    for (std::size_t k = 0; k < shown; ++k) {
      std::printf("%s %s:%lld", k == 0 ? "" : ",", top[k].first.c_str(),
                  static_cast<long long>(top[k].second / iters));
    }
    if (top.size() > shown) {
      std::printf(", +%zu more", top.size() - shown);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 7c reproduction: iteration time split "
              "(forward / gradient / KF update), seconds per iteration\n");
  Table tc({"config", "forward", "gradient", "KF update", "total",
            "speedup vs baseline"});
  const f64 base_total = samples.front().forward_s +
                         samples.front().gradient_s +
                         samples.front().optimizer_s;
  for (std::size_t c = 0; c < samples.size(); ++c) {
    const Sample& s = samples[c];
    const f64 total = s.forward_s + s.gradient_s + s.optimizer_s;
    tc.add_row({configs[c].name, fmt("%.3f", s.forward_s),
                fmt("%.3f", s.gradient_s), fmt("%.3f", s.optimizer_s),
                fmt("%.3f", total), fmt("%.2fx", base_total / total)});
  }
  tc.print();

  std::printf("\nSpan-derived split cross-check (trace spans over the same "
              "iterations; verified within 5%% of the timers above):\n");
  Table ts({"config", "forward (span)", "gradient (span)", "KF update (span)"});
  for (std::size_t c = 0; c < samples.size(); ++c) {
    const Sample& s = samples[c];
    ts.add_row({configs[c].name, fmt("%.3f", s.span_forward_s),
                fmt("%.3f", s.span_gradient_s),
                fmt("%.3f", s.span_optimizer_s)});
  }
  ts.print();

  if (Workspace::enabled()) {
    std::printf("\nArena (workspace) allocator, measured iterations "
                "(steady state asserted: no growth, no retirement):\n");
    Table ta({"config", "peak scope KiB", "allocs/iter", "reserved KiB",
              "retired slabs"});
    for (std::size_t c = 0; c < samples.size(); ++c) {
      const Sample& s = samples[c];
      ta.add_row({configs[c].name,
                  std::to_string(s.arena_peak_scope_bytes / 1024),
                  std::to_string(s.arena_allocs_per_iter),
                  std::to_string(s.arena_reserved_bytes / 1024),
                  std::to_string(s.arena_retired_slabs)});
    }
    ta.print();
  } else {
    std::printf("\nArena disabled (FEKF_ARENA=0): temporaries on the heap, "
                "allocation budgets not applicable.\n");
  }
  std::printf("\nPaper shape: launches drop sharply at opt1 (fused "
              "descriptor derivatives) and the iteration accelerates "
              "step-by-step (paper total: 3.48x on the A100).\n");

  const f64 traced_over_untraced =
      obs_untraced_s > 0.0 ? obs_traced_s / obs_untraced_s : 0.0;
  std::printf("\nTracing overhead (fused step, best of 5 alternating "
              "passes): untraced %.3fs, traced %.3fs, ratio %.3fx "
              "(budget: obs.max_traced_over_untraced)\n",
              obs_untraced_s, obs_traced_s, traced_over_untraced);

  // Per-variant dispatch micro table (DESIGN.md §13). Rows are keyed
  // "dispatch.<kernel>.<variant>" in ci/budgets.json, and docs/KERNELS.md
  // mirrors this table — ci/check_budgets.py --kernels-doc flags drift.
  const auto dispatch_sections =
      run_dispatch_micro(static_cast<u64>(cli.get_int("seed")));
  const dp::CpuFeatures cpu = dp::Registry::instance().cpu_features();
  const auto requested = dp::Registry::instance().requested();
  std::printf("\nKernel-dispatch variants (backend=%s, cpu: avx2=%d fma=%d); "
              "single-thread body timings, best of 3:\n",
              requested ? dp::level_name(*requested) : "auto", cpu.avx2,
              cpu.fma);
  Table td({"kernel", "shape", "variant", "level", "isa", "exactness",
            "s/call", "speedup", "selected"});
  for (const DispatchSection& sec : dispatch_sections) {
    for (const VariantRow& row : sec.rows) {
      td.add_row({sec.kernel, sec.shape, row.v.name,
                  dp::level_name(row.v.level), row.v.isa,
                  row.v.exactness == dp::Exactness::kBitExact
                      ? "bit_exact"
                      : fmt("tolerance(%.0e)", row.v.tolerance),
                  row.eligible ? fmt("%.3e", row.s_per_call) : "-",
                  row.eligible ? fmt("%.2fx", row.speedup) : "-",
                  row.selected ? "<=" : ""});
    }
  }
  td.print();
  for (const DispatchSection& sec : dispatch_sections) {
    std::printf("  %-18s best variant speedup vs scalar: %.2fx\n",
                sec.kernel.c_str(), sec.best_speedup());
  }

  const std::string json_path = cli.get("json");
  std::string json = "{\n  \"bench\": \"fig7bc_kernels\",\n";
  json += "  \"system\": \"" + cli.get("system") + "\",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"iters\": " + std::to_string(iters) + ",\n";
  json += "  \"threads\": " + std::to_string(num_threads()) + ",\n";
  json += "  \"arena_enabled\": ";
  json += Workspace::enabled() ? "true" : "false";
  json += ",\n  \"configs\": [\n";
  for (std::size_t c = 0; c < samples.size(); ++c) {
    const Sample& s = samples[c];
    json += "    {\"name\": \"" + std::string(configs[c].name) + "\", ";
    json += "\"energy_kernels\": " + std::to_string(s.energy_kernels) + ", ";
    json += "\"force_kernels\": " + std::to_string(s.force_kernels) + ", ";
    json += "\"step_kernels\": " + std::to_string(s.step_kernels()) + ", ";
    json += "\"forward_s\": " + fmt("%.6f", s.forward_s) + ", ";
    json += "\"gradient_s\": " + fmt("%.6f", s.gradient_s) + ", ";
    json += "\"optimizer_s\": " + fmt("%.6f", s.optimizer_s) + ", ";
    json += "\"total_s\": " +
            fmt("%.6f", s.forward_s + s.gradient_s + s.optimizer_s) + ", ";
    json += "\"arena_peak_scope_bytes\": " +
            std::to_string(s.arena_peak_scope_bytes) + ", ";
    json += "\"arena_allocs_per_iter\": " +
            std::to_string(s.arena_allocs_per_iter) + ", ";
    json += "\"arena_reserved_bytes\": " +
            std::to_string(s.arena_reserved_bytes) + ", ";
    json += "\"arena_retired_slabs\": " +
            std::to_string(s.arena_retired_slabs) + "}";
    json += c + 1 < samples.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"obs\": {\"untraced_total_s\": " + fmt("%.6f", obs_untraced_s) +
          ", \"traced_total_s\": " + fmt("%.6f", obs_traced_s) +
          ", \"traced_over_untraced\": " + fmt("%.4f", traced_over_untraced) +
          "},\n";
  json += "  \"dispatch\": {\n";
  json += "    \"backend\": \"" +
          std::string(requested ? dp::level_name(*requested) : "auto") +
          "\",\n";
  json += "    \"cpu_avx2\": " + std::string(cpu.avx2 ? "true" : "false") +
          ",\n";
  json += "    \"cpu_fma\": " + std::string(cpu.fma ? "true" : "false") +
          ",\n    \"kernels\": [\n";
  for (std::size_t s = 0; s < dispatch_sections.size(); ++s) {
    const DispatchSection& sec = dispatch_sections[s];
    json += "      {\"kernel\": \"" + sec.kernel + "\", \"shape\": \"" +
            sec.shape + "\", \"best_speedup\": " +
            fmt("%.3f", sec.best_speedup()) + ", \"variants\": [\n";
    for (std::size_t r = 0; r < sec.rows.size(); ++r) {
      const VariantRow& row = sec.rows[r];
      json += "        {\"name\": \"" + row.v.name + "\", \"level\": \"" +
              dp::level_name(row.v.level) + "\", \"isa\": \"" + row.v.isa +
              "\", \"exactness\": \"" + dp::exactness_name(row.v.exactness) +
              "\", \"tolerance\": " + fmt("%.3e", row.v.tolerance) +
              ", \"eligible\": " + (row.eligible ? "true" : "false") +
              ", \"selected\": " + (row.selected ? "true" : "false") +
              ", \"s_per_call\": " + fmt("%.6e", row.s_per_call) +
              ", \"speedup_vs_scalar\": " + fmt("%.3f", row.speedup) + "}";
      json += r + 1 < sec.rows.size() ? ",\n" : "\n";
    }
    json += "      ]}";
    json += s + 1 < dispatch_sections.size() ? ",\n" : "\n";
  }
  json += "    ]\n  }\n}\n";
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    FEKF_CHECK(f != nullptr, "cannot open --json file " + json_path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nJSON summary written to %s\n", json_path.c_str());
  }
  return 0;
}
