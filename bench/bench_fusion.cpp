// Fused-vs-unfused composite kernels and the arena allocator, head to head
// (DESIGN.md §12). Three fusion sites and the Workspace are measured in
// isolation so a regression is attributable to one kernel, not a whole
// training step:
//
//   linear+tanh   whole-layer forward + one-launch backward vs the
//                 linear_fused/tanh_fused chain (opt2 reference)
//   model step    energy + force prediction at FusionLevel kFused vs kOpt2
//                 (covers desc_a / desc_d / desc_d_grad)
//   EKF step      two-launch ekf_gain_fused + ekf_apply_fused vs the legacy
//                 symv / dot / p_update_fused / axpy sequence
//   arena         the same model step with temporaries drawn from the
//                 Workspace vs operator new
//
// Every comparison asserts (FEKF_CHECK) the fused path's launch budget and
// its bit-identical outputs, so the binary doubles as a CI gate; `--json
// FILE` emits the numbers ci/check_budgets.py compares against
// ci/budgets.json.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "autograd/ops.hpp"
#include "bench_common.hpp"
#include "optim/kalman.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/kernels.hpp"
#include "tensor/workspace.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

namespace op = ag::ops;
using ag::Variable;

f64 now_s() {
  return std::chrono::duration<f64>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(f32)) == 0;
}

struct Result {
  f64 fused_s = 0.0;    ///< seconds per repetition
  f64 unfused_s = 0.0;
  i64 fused_launches = 0;
  i64 unfused_launches = 0;

  f64 speedup() const { return unfused_s > 0.0 ? unfused_s / fused_s : 0.0; }
};

/// Time `fn` over `reps` repetitions and count one repetition's launches.
template <typename Fn>
void measure(Fn&& fn, i64 reps, f64* seconds, i64* launches) {
  fn();  // warm-up (excluded)
  {
    KernelCountScope scope;
    fn();
    *launches = scope.count();
  }
  const f64 t0 = now_s();
  for (i64 r = 0; r < reps; ++r) fn();
  *seconds = (now_s() - t0) / static_cast<f64>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fusion",
          "fused vs unfused composite kernels, plus the arena allocator");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system for the model-step comparison")
      .flag("rows", "512", "linear+tanh micro: batch rows")
      .flag("ekf-n", "256", "EKF micro: covariance block size")
      .flag("reps", "20", "timed repetitions per measurement")
      .flag("json", "", "also write a machine-readable summary to this file");
  if (!cli.parse(argc, argv)) return 0;

  const i64 reps = cli.get_int("reps");
  Table table({"comparison", "fused s/rep", "unfused s/rep", "speedup",
               "fused launches", "unfused launches"});

  // ---- linear+tanh whole-layer fusion ---------------------------------
  Result lin;
  {
    const i64 rows = cli.get_int("rows");
    const i64 in = cli.get_int("embed") * 4;
    const i64 out = cli.get_int("fit") * 4;
    Rng rng(11);
    const Variable x(Tensor::randn(rows, in, rng), true);
    const Variable w(Tensor::randn(in, out, rng), true);
    const Variable b(Tensor::randn(1, out, rng), true);
    const Variable s(Tensor::randn(rows, out, rng));
    const std::vector<Variable> wrt{x, w, b};
    auto run = [&](bool fused) {
      Variable y = fused ? op::linear_tanh_fused(x, w, b)
                         : op::tanh_fused(op::linear_fused(x, w, b));
      auto grads = ag::grad(op::sum_all(op::mul(y, s)), wrt);
      return std::pair<Variable, std::vector<Variable>>(y, std::move(grads));
    };
    measure([&] { (void)run(true); }, reps, &lin.fused_s, &lin.fused_launches);
    measure([&] { (void)run(false); }, reps, &lin.unfused_s,
            &lin.unfused_launches);
    auto rf = run(true);
    auto ru = run(false);
    FEKF_CHECK(bitwise_equal(rf.first.value(), ru.first.value()),
               "fused linear+tanh forward is not bit-identical");
    for (std::size_t i = 0; i < rf.second.size(); ++i) {
      FEKF_CHECK(bitwise_equal(rf.second[i].value(), ru.second[i].value()),
                 "fused linear+tanh gradient " + std::to_string(i) +
                     " is not bit-identical");
    }
    table.add_row({"linear+tanh fwd+bwd", fmt("%.6f", lin.fused_s),
                   fmt("%.6f", lin.unfused_s), fmt("%.2fx", lin.speedup()),
                   std::to_string(lin.fused_launches),
                   std::to_string(lin.unfused_launches)});
  }

  // ---- whole-descriptor fusion at model level -------------------------
  Result model;
  {
    Fixture f = make_fixture(cli.get("system"), cli);
    const train::EnvPtr& env = f.train_envs.front();
    auto run = [&](deepmd::FusionLevel level) {
      f.model->set_fusion(level);
      return f.model->predict(env, /*with_forces=*/true);
    };
    measure([&] { (void)run(deepmd::FusionLevel::kFused); }, reps,
            &model.fused_s, &model.fused_launches);
    measure([&] { (void)run(deepmd::FusionLevel::kOpt2); }, reps,
            &model.unfused_s, &model.unfused_launches);
    auto pf = run(deepmd::FusionLevel::kFused);
    auto pu = run(deepmd::FusionLevel::kOpt2);
    FEKF_CHECK(pf.energy.item() == pu.energy.item(),
               "fused model energy is not bit-identical");
    FEKF_CHECK(bitwise_equal(pf.forces.value(), pu.forces.value()),
               "fused model forces are not bit-identical");
    table.add_row({"model energy+forces", fmt("%.6f", model.fused_s),
                   fmt("%.6f", model.unfused_s), fmt("%.2fx", model.speedup()),
                   std::to_string(model.fused_launches),
                   std::to_string(model.unfused_launches)});
  }

  // ---- fused EKF step -------------------------------------------------
  Result ekf;
  {
    const i64 n = cli.get_int("ekf-n");
    std::vector<optim::BlockSpec> blocks{{0, n, "blk"}};
    optim::KalmanConfig fused_cfg;
    optim::KalmanConfig legacy_cfg;
    legacy_cfg.fused_step = false;
    optim::KalmanOptimizer fused_opt(blocks, fused_cfg);
    optim::KalmanOptimizer legacy_opt(blocks, legacy_cfg);
    Rng rng(13);
    std::vector<f64> g(static_cast<std::size_t>(n));
    for (f64& v : g) v = rng.gaussian() * 0.05;
    std::vector<f64> wf(static_cast<std::size_t>(n), 0.0);
    std::vector<f64> wl(static_cast<std::size_t>(n), 0.0);
    measure([&] { fused_opt.update(g, 0.1, wf); }, reps, &ekf.fused_s,
            &ekf.fused_launches);
    measure([&] { legacy_opt.update(g, 0.1, wl); }, reps, &ekf.unfused_s,
            &ekf.unfused_launches);
    FEKF_CHECK(ekf.fused_launches == 2,
               "fused EKF step issued " + std::to_string(ekf.fused_launches) +
                   " launches per block, budget is 2");
    FEKF_CHECK(ekf.unfused_launches == 4,
               "legacy EKF step issued " +
                   std::to_string(ekf.unfused_launches) +
                   " launches per block, expected 4");
    // Both optimizers saw the identical update sequence: state must match
    // bit for bit (the fused kernels replay the legacy accumulation order).
    FEKF_CHECK(wf == wl, "fused EKF weights diverged from legacy");
    FEKF_CHECK(fused_opt.state().p == legacy_opt.state().p,
               "fused EKF covariance diverged from legacy");
    table.add_row({"EKF block update", fmt("%.6f", ekf.fused_s),
                   fmt("%.6f", ekf.unfused_s), fmt("%.2fx", ekf.speedup()),
                   std::to_string(ekf.fused_launches),
                   std::to_string(ekf.unfused_launches)});
  }

  // ---- fused EKF step per kernel backend ------------------------------
  // Same comparison as above, once per forced FEKF_KERNEL_BACKEND level
  // (DESIGN.md §13). The fused and legacy paths share the dispatched
  // symv/dot/rank1 bodies, so the bit-identity assertion must hold under
  // EVERY backend — tolerance-class variants included — and the per-level
  // rows show what each ladder rung buys on the EKF update.
  std::vector<std::pair<std::string, Result>> ekf_backends;
  {
    const i64 n = cli.get_int("ekf-n");
    auto& reg = dispatch::Registry::instance();
    const auto prior = reg.requested();
    for (dispatch::Level level :
         {dispatch::Level::kScalar, dispatch::Level::kSimd,
          dispatch::Level::kAvx2}) {
      reg.set_backend(level);
      std::vector<optim::BlockSpec> blocks{{0, n, "blk"}};
      optim::KalmanConfig fused_cfg;
      optim::KalmanConfig legacy_cfg;
      legacy_cfg.fused_step = false;
      optim::KalmanOptimizer fused_opt(blocks, fused_cfg);
      optim::KalmanOptimizer legacy_opt(blocks, legacy_cfg);
      Rng rng(13);
      std::vector<f64> g(static_cast<std::size_t>(n));
      for (f64& v : g) v = rng.gaussian() * 0.05;
      std::vector<f64> wf(static_cast<std::size_t>(n), 0.0);
      std::vector<f64> wl(static_cast<std::size_t>(n), 0.0);
      Result r;
      measure([&] { fused_opt.update(g, 0.1, wf); }, reps, &r.fused_s,
              &r.fused_launches);
      measure([&] { legacy_opt.update(g, 0.1, wl); }, reps, &r.unfused_s,
              &r.unfused_launches);
      const char* name = dispatch::level_name(level);
      FEKF_CHECK(wf == wl, std::string("fused EKF weights diverged from "
                                       "legacy under backend ") +
                               name);
      FEKF_CHECK(fused_opt.state().p == legacy_opt.state().p,
                 std::string("fused EKF covariance diverged from legacy "
                             "under backend ") +
                     name);
      table.add_row({std::string("EKF block update [") + name + "]",
                     fmt("%.6f", r.fused_s), fmt("%.6f", r.unfused_s),
                     fmt("%.2fx", r.speedup()),
                     std::to_string(r.fused_launches),
                     std::to_string(r.unfused_launches)});
      ekf_backends.emplace_back(name, r);
    }
    reg.set_backend(prior);
  }

  // ---- arena vs heap --------------------------------------------------
  Result arena;
  i64 arena_allocs = 0, arena_peak_bytes = 0, arena_retired = 0;
  i64 arena_reserved_growth = 0;
  const bool arena_available = Workspace::enabled();
  if (arena_available) {
    Fixture f = make_fixture(cli.get("system"), cli);
    f.model->set_fusion(deepmd::FusionLevel::kFused);
    const train::EnvPtr& env = f.train_envs.front();
    auto step = [&] { (void)f.model->predict(env, /*with_forces=*/true); };
    {
      ArenaScope warm;  // populate slabs before the steady-state window
      step();
    }
    Workspace::reset_stats();
    const i64 reserved_before = Workspace::stats().reserved_bytes;
    measure(
        [&] {
          ArenaScope scope;
          step();
        },
        reps, &arena.fused_s, &arena.fused_launches);
    const WorkspaceStats st = Workspace::stats();
    arena_allocs = st.allocs;
    arena_peak_bytes = st.peak_scope_bytes;
    arena_retired = st.retired_slabs;
    arena_reserved_growth = st.reserved_bytes - reserved_before;
    Workspace::set_enabled(false);
    measure(step, reps, &arena.unfused_s, &arena.unfused_launches);
    Workspace::set_enabled(true);
    // Allocation budget: the arena must actually serve the step and stay in
    // steady state — no slab growth or retirement once warmed up.
    FEKF_CHECK(arena_allocs > 0, "arena served no allocations");
    FEKF_CHECK(arena_retired == 0,
               "arena retired " + std::to_string(arena_retired) +
                   " slab(s): a tensor escaped its step scope");
    FEKF_CHECK(arena_reserved_growth == 0,
               "arena grew by " + std::to_string(arena_reserved_growth) +
                   " bytes after warm-up: steady state violated");
    table.add_row({"model step arena/heap", fmt("%.6f", arena.fused_s),
                   fmt("%.6f", arena.unfused_s),
                   fmt("%.2fx", arena.speedup()),
                   std::to_string(arena.fused_launches),
                   std::to_string(arena.unfused_launches)});
  }

  // Launch budgets: fusion must strictly reduce launches at every site.
  FEKF_CHECK(lin.fused_launches < lin.unfused_launches,
             "linear+tanh fusion does not reduce launches");
  FEKF_CHECK(model.fused_launches < model.unfused_launches,
             "descriptor fusion does not reduce launches");

  std::printf("Fused vs unfused composite kernels (seconds per repetition, "
              "%lld reps; launches per repetition):\n",
              static_cast<long long>(reps));
  table.print();
  if (arena_available) {
    std::printf("\narena steady state: %lld allocs/step served, peak scope "
                "%lld KiB, 0 retired slabs, 0 growth\n",
                static_cast<long long>(arena_allocs / (reps + 2)),
                static_cast<long long>(arena_peak_bytes / 1024));
  } else {
    std::printf("\narena disabled (FEKF_ARENA=0): arena/heap comparison "
                "skipped\n");
  }
  std::printf("\nAll fused outputs verified bit-identical to the unfused "
              "reference; launch budgets asserted (2-launch EKF step, "
              "strict reduction elsewhere).\n");

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto entry = [](const char* name, const Result& r) {
      std::string s = "    {\"name\": \"" + std::string(name) + "\", ";
      s += "\"fused_s\": " + fmt("%.6f", r.fused_s) + ", ";
      s += "\"unfused_s\": " + fmt("%.6f", r.unfused_s) + ", ";
      s += "\"speedup\": " + fmt("%.3f", r.speedup()) + ", ";
      s += "\"fused_launches\": " + std::to_string(r.fused_launches) + ", ";
      s += "\"unfused_launches\": " + std::to_string(r.unfused_launches) +
           "}";
      return s;
    };
    std::string json = "{\n  \"bench\": \"fusion\",\n";
    json += "  \"system\": \"" + cli.get("system") + "\",\n";
    json += "  \"reps\": " + std::to_string(reps) + ",\n";
    json += "  \"threads\": " + std::to_string(num_threads()) + ",\n";
    json += "  \"arena_enabled\": ";
    json += arena_available ? "true" : "false";
    json += ",\n  \"arena_allocs_per_step\": " +
            std::to_string(arena_available ? arena_allocs / (reps + 2) : 0) +
            ",\n";
    json += "  \"arena_peak_scope_bytes\": " +
            std::to_string(arena_peak_bytes) + ",\n";
    json += "  \"comparisons\": [\n";
    json += entry("linear_tanh", lin) + ",\n";
    json += entry("model_step", model) + ",\n";
    json += entry("ekf_block_update", ekf);
    for (const auto& [backend, result] : ekf_backends) {
      json += ",\n" + entry(("ekf_block_update_" + backend).c_str(), result);
    }
    if (arena_available) {
      json += ",\n" + entry("arena_vs_heap", arena);
    }
    json += "\n  ]\n}\n";
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    FEKF_CHECK(out != nullptr, "cannot open --json file " + json_path);
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("JSON summary written to %s\n", json_path.c_str());
  }
  return 0;
}
