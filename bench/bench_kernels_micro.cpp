// Micro-benchmarks (google-benchmark) for the hand-written kernels behind
// the §3.4 optimizations — the ablation data for DESIGN.md's design
// choices:
//   * fused vs unfused P update (opt3 kernel rewrite)
//   * cached vs recomputed P g (opt3 computation reuse)
//   * fused batched descriptor contraction vs per-atom composed primitives
//   * fused vs composed linear / tanh-backward
#include <benchmark/benchmark.h>

#include "autograd/ops.hpp"
#include "core/rng.hpp"
#include "deepmd/bmm.hpp"
#include "tensor/kernels.hpp"

namespace fekf {
namespace {

namespace op = ag::ops;

std::vector<f64> random_vec(i64 n, u64 seed) {
  Rng rng(seed);
  std::vector<f64> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.gaussian();
  return v;
}

void BM_PUpdateFused(benchmark::State& state) {
  const i64 n = state.range(0);
  auto p = random_vec(n * n, 1);
  kernels::symmetrize(p, n);
  auto k = random_vec(n, 2);
  for (auto _ : state) {
    kernels::p_update_fused(p, k, 0.37, 0.98, n);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_PUpdateFused)->Arg(512)->Arg(2048);

void BM_PUpdateUnfused(benchmark::State& state) {
  const i64 n = state.range(0);
  auto p = random_vec(n * n, 3);
  kernels::symmetrize(p, n);
  auto k = random_vec(n, 4);
  std::vector<f64> scratch(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    kernels::p_update_unfused(p, k, 0.37, 0.98, scratch, n);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_PUpdateUnfused)->Arg(512)->Arg(2048);

void BM_SymvPg(benchmark::State& state) {
  // The P g product that opt3 caches: one of these is saved per update.
  const i64 n = state.range(0);
  auto p = random_vec(n * n, 5);
  auto g = random_vec(n, 6);
  std::vector<f64> y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    kernels::symv(p, g, y, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SymvPg)->Arg(512)->Arg(2048);

void BM_DescriptorFusedBmm(benchmark::State& state) {
  // D = A A_<^T over `natoms` blocks via the fused batched kernel.
  const i64 natoms = state.range(0);
  const i64 m = 25, axis = 16, sel = 64;
  Rng rng(7);
  ag::Variable g_mat(Tensor::randn(natoms * sel, m, rng), false);
  ag::Variable r_mat(Tensor::randn(natoms * sel, 4, rng), false);
  for (auto _ : state) {
    ag::Variable a = deepmd::bmm_tn(g_mat, r_mat, sel);
    ag::Variable a_axis = deepmd::block_slice_rows(a, m, 0, axis);
    ag::Variable d = deepmd::bmm_nt(a, a_axis, m, axis);
    benchmark::DoNotOptimize(d.value().data());
  }
}
BENCHMARK(BM_DescriptorFusedBmm)->Arg(32)->Arg(108);

void BM_DescriptorComposedPerAtom(benchmark::State& state) {
  // The same contraction the framework-autograd way: per-atom slices and
  // matmuls (what Figure 7b's baseline bar is made of).
  const i64 natoms = state.range(0);
  const i64 m = 25, axis = 16, sel = 64;
  Rng rng(8);
  ag::Variable g_mat(Tensor::randn(natoms * sel, m, rng), false);
  ag::Variable r_mat(Tensor::randn(natoms * sel, 4, rng), false);
  for (auto _ : state) {
    ag::Variable d;
    for (i64 i = 0; i < natoms; ++i) {
      ag::Variable gi = op::slice_rows(g_mat, i * sel, (i + 1) * sel);
      ag::Variable ri = op::slice_rows(r_mat, i * sel, (i + 1) * sel);
      ag::Variable ai = op::matmul_tn(gi, ri);
      ag::Variable di =
          op::matmul_nt(ai, op::slice_rows(ai, 0, axis));
      ag::Variable row = op::reshape(di, 1, m * axis);
      d = d.defined() ? op::concat_rows(d, row) : row;
    }
    benchmark::DoNotOptimize(d.value().data());
  }
}
BENCHMARK(BM_DescriptorComposedPerAtom)->Arg(32)->Arg(108);

void BM_LinearFused(benchmark::State& state) {
  Rng rng(9);
  ag::Variable x(Tensor::randn(state.range(0), 400, rng), false);
  ag::Variable w(Tensor::randn(400, 50, rng), false);
  ag::Variable b(Tensor::randn(1, 50, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op::linear_fused(x, w, b).value().data());
  }
}
BENCHMARK(BM_LinearFused)->Arg(108);

void BM_LinearComposed(benchmark::State& state) {
  Rng rng(10);
  ag::Variable x(Tensor::randn(state.range(0), 400, rng), false);
  ag::Variable w(Tensor::randn(400, 50, rng), false);
  ag::Variable b(Tensor::randn(1, 50, rng), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op::linear(x, w, b).value().data());
  }
}
BENCHMARK(BM_LinearComposed)->Arg(108);

void BM_TanhBackwardFused(benchmark::State& state) {
  Rng rng(11);
  Tensor g = Tensor::randn(state.range(0), 50, rng);
  Tensor y = Tensor::randn(state.range(0), 50, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::tanh_backward(g, y).data());
  }
}
BENCHMARK(BM_TanhBackwardFused)->Arg(4096);

void BM_TanhBackwardComposed(benchmark::State& state) {
  Rng rng(12);
  Tensor g = Tensor::randn(state.range(0), 50, rng);
  Tensor y = Tensor::randn(state.range(0), 50, rng);
  for (auto _ : state) {
    // g * (1 - y*y) from primitives: mul, neg, add_scalar, mul.
    Tensor y2 = kernels::mul(y, y);
    Tensor one_m = kernels::add_scalar(kernels::neg(y2), 1.0f);
    benchmark::DoNotOptimize(kernels::mul(g, one_m).data());
  }
}
BENCHMARK(BM_TanhBackwardComposed)->Arg(4096);

}  // namespace
}  // namespace fekf

BENCHMARK_MAIN();
