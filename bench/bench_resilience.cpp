// Resilience bench (DESIGN.md §10): what does each fault class cost?
//
// Runs the FEKF trainer (and the virtual cluster for rank failure) under
// every FaultInjector class and reports, per fault, the steps lost to
// rollback, the recovery wall-clock, and the final accuracy next to an
// uninjected baseline — plus the overhead of the sentinel snapshots and of
// periodic checkpointing. Every scenario starts from a fresh,
// identically-initialized model so the accuracy columns are comparable.
//
// Emits a JSON document (stdout, and --json FILE if given) so
// run_benches.sh can archive it as bench_artifacts/resilience.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fault.hpp"
#include "dist/cluster.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Entry {
  std::string scenario;
  i64 steps = 0;
  i64 steps_lost = 0;       ///< batches skipped by sentinel rollback
  i64 fault_events = 0;     ///< FaultLog entries of any kind
  f64 wall_seconds = 0.0;
  f64 recovery_seconds = 0.0;
  f64 checkpoint_seconds = 0.0;
  f64 final_rmse = 0.0;
};

i64 count_rollbacks(const FaultLog& log) {
  i64 n = 0;
  for (const FaultEvent& e : log.events) {
    if (e.action == "rollback_skip_batch") ++n;
  }
  return n;
}

Entry summarize(std::string scenario, const train::TrainResult& r) {
  Entry e;
  e.scenario = std::move(scenario);
  e.steps = r.steps;
  e.steps_lost = count_rollbacks(r.faults);
  e.fault_events = static_cast<i64>(r.faults.events.size());
  e.wall_seconds = r.total_seconds;
  e.recovery_seconds = r.recovery_seconds;
  e.checkpoint_seconds = r.checkpoint_seconds;
  e.final_rmse = r.final_train.total();
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_resilience",
          "Fault-injection cost sweep: steps lost + wall-clock per fault "
          "class, sentinel/checkpoint overhead (JSON output)");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "8", "FEKF batch size")
      .flag("epochs", "3", "epochs per scenario")
      .flag("ranks", "4", "virtual-cluster ranks for the rank_fail scenario")
      .flag("ckpt", "bench_resilience.ckpt",
            "scratch checkpoint path for the checkpointing scenarios")
      .flag("json", "", "also write the JSON document to this file");
  if (!cli.parse(argc, argv)) return 0;

  const i64 batch = cli.get_int("batch");
  const i64 epochs = cli.get_int("epochs");
  Fixture fixture = make_fixture(cli.get("system"), cli);
  FEKF_CHECK(static_cast<i64>(fixture.train_envs.size()) >= batch,
             "need --train >= --batch snapshots");
  const std::string ckpt_path = cli.get("ckpt");

  // Every scenario: fresh model from identical initialization, shared
  // prepared environments (they depend only on the deterministic stats).
  auto fresh_model = [&]() {
    deepmd::DeepmdModel model(
        model_config_from(cli),
        data::get_system(cli.get("system")).num_types());
    model.set_stats(fixture.model->env_stats(), fixture.model->energy_stats());
    return model;
  };
  auto run_fekf = [&](const std::string& fault_spec,
                      bool sentinels, i64 checkpoint_every) {
    FaultInjector::instance().configure(fault_spec);
    deepmd::DeepmdModel model = fresh_model();
    train::TrainOptions opts;
    opts.batch_size = batch;
    opts.max_epochs = epochs;
    opts.eval_max_samples = 16;
    opts.seed = static_cast<u64>(cli.get_int("seed"));
    opts.sentinels = sentinels;
    opts.checkpoint_every = checkpoint_every;
    if (checkpoint_every > 0) opts.checkpoint_path = ckpt_path;
    optim::KalmanConfig kcfg;
    kcfg.blocksize = cli.get_int("blocksize");
    train::KalmanTrainer trainer(model, kcfg, opts);
    train::TrainResult r = trainer.train(fixture.train_envs,
                                         fixture.test_envs);
    FaultInjector::instance().clear();
    return r;
  };

  std::vector<Entry> entries;
  std::printf("Resilience sweep: %s, batch %lld, %lld epochs per scenario\n\n",
              fixture.system.c_str(), static_cast<long long>(batch),
              static_cast<long long>(epochs));

  entries.push_back(summarize("baseline", run_fekf("", true, 0)));
  entries.push_back(
      summarize("sentinels_off", run_fekf("", false, 0)));
  entries.push_back(
      summarize("checkpoint_every_2", run_fekf("", true, 2)));
  entries.push_back(
      summarize("nan_grad", run_fekf("nan_grad@step=2", true, 0)));
  entries.push_back(
      summarize("corrupt_ckpt", run_fekf("corrupt_ckpt", true, 2)));

  // Membership faults run on the virtual cluster; their recovery cost
  // lives in the communication ledger, not the trainer timers.
  auto run_cluster = [&](const std::string& fault_spec) {
    FaultInjector::instance().configure(fault_spec);
    deepmd::DeepmdModel model = fresh_model();
    dist::DistributedConfig dcfg;
    dcfg.ranks = cli.get_int("ranks");
    dcfg.options.batch_size = std::max(batch, dcfg.ranks);
    dcfg.options.max_epochs = epochs;
    dcfg.options.eval_max_samples = 16;
    dcfg.options.seed = static_cast<u64>(cli.get_int("seed"));
    dcfg.kalman.blocksize = cli.get_int("blocksize");
    dist::DistributedResult dr = dist::train_fekf_distributed(
        model, fixture.train_envs, fixture.test_envs, dcfg);
    FaultInjector::instance().clear();
    return dr;
  };
  f64 reshard_seconds = 0.0;
  i64 reshard_bytes = 0;
  i64 surviving_ranks = 0;
  f64 detection_seconds = 0.0;
  {
    dist::DistributedResult dr = run_cluster("rank_fail@step=2");
    Entry e = summarize("rank_fail", dr.train);
    e.wall_seconds = dr.simulated_seconds;
    entries.push_back(e);
    reshard_seconds = dr.comm.reshard_seconds;
    reshard_bytes = dr.comm.reshard_bytes;
    surviving_ranks = dr.surviving_ranks;
    detection_seconds = dr.comm.detection_seconds;
  }
  // An elastic join: the catch-up transfer (weights + covariance shard) is
  // the price of admitting a rank mid-run.
  f64 join_seconds = 0.0;
  i64 join_bytes = 0;
  {
    dist::DistributedResult dr = run_cluster("rank_join@step=2");
    Entry e = summarize("rank_join", dr.train);
    e.wall_seconds = dr.simulated_seconds;
    entries.push_back(e);
    join_seconds = dr.comm.join_seconds;
    join_bytes = dr.comm.join_bytes;
  }
  // A straggler under the bounded-wait policy: the extra simulated wait is
  // the admitted slowdown, capped at straggler_wait_factor x nominal.
  f64 straggler_wait_seconds = 0.0;
  {
    dist::DistributedResult dr = run_cluster("straggler@step=2,factor=4");
    Entry e = summarize("straggler", dr.train);
    e.wall_seconds = dr.simulated_seconds;
    entries.push_back(e);
    straggler_wait_seconds = dr.comm.straggler_wait_seconds;
  }

  const Entry& base = entries.front();
  Table table({"scenario", "steps", "lost", "faults", "wall s", "recovery s",
               "ckpt s", "final RMSE"});
  for (const Entry& e : entries) {
    table.add_row({e.scenario, std::to_string(e.steps),
                   std::to_string(e.steps_lost),
                   std::to_string(e.fault_events), fmt("%.3f", e.wall_seconds),
                   fmt("%.4f", e.recovery_seconds),
                   fmt("%.4f", e.checkpoint_seconds),
                   fmt("%.5f", e.final_rmse)});
  }
  table.print();
  std::printf("\nsentinel snapshot overhead: %+.1f%% wall vs sentinels off\n",
              100.0 * (base.wall_seconds / entries[1].wall_seconds - 1.0));
  std::printf("rank_fail re-shard: %.6f simulated s, %lld bytes, "
              "%lld ranks survived (detection %.6f s)\n",
              reshard_seconds, static_cast<long long>(reshard_bytes),
              static_cast<long long>(surviving_ranks), detection_seconds);
  std::printf("rank_join catch-up: %.6f simulated s, %lld bytes; "
              "straggler bounded wait: %.6f simulated s\n",
              join_seconds, static_cast<long long>(join_bytes),
              straggler_wait_seconds);

  std::string json = "{\n  \"bench\": \"bench_resilience\",\n";
  json += "  \"system\": \"" + fixture.system + "\",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"epochs\": " + std::to_string(epochs) + ",\n";
  json += "  \"sentinel_overhead_frac\": " +
          fmt("%.6f", base.wall_seconds / entries[1].wall_seconds - 1.0) +
          ",\n";
  json += "  \"rank_fail_reshard_seconds\": " + fmt("%.9f", reshard_seconds) +
          ",\n";
  json += "  \"rank_fail_reshard_bytes\": " + std::to_string(reshard_bytes) +
          ",\n";
  json += "  \"rank_fail_surviving_ranks\": " +
          std::to_string(surviving_ranks) + ",\n";
  json += "  \"rank_fail_detection_seconds\": " +
          fmt("%.9f", detection_seconds) + ",\n";
  json += "  \"rank_join_seconds\": " + fmt("%.9f", join_seconds) + ",\n";
  json += "  \"rank_join_bytes\": " + std::to_string(join_bytes) + ",\n";
  json += "  \"straggler_wait_seconds\": " +
          fmt("%.9f", straggler_wait_seconds) + ",\n";
  json += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    json += "    {\"scenario\": \"" + e.scenario + "\"" +
            ", \"steps\": " + std::to_string(e.steps) +
            ", \"steps_lost\": " + std::to_string(e.steps_lost) +
            ", \"fault_events\": " + std::to_string(e.fault_events) +
            ", \"wall_seconds\": " + fmt("%.6f", e.wall_seconds) +
            ", \"recovery_seconds\": " + fmt("%.6f", e.recovery_seconds) +
            ", \"checkpoint_seconds\": " + fmt("%.6f", e.checkpoint_seconds) +
            ", \"final_rmse\": " + fmt("%.6f", e.final_rmse) + "}";
    json += i + 1 < entries.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::printf("\n%s", json.c_str());
  const std::string path = cli.get("json");
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    FEKF_CHECK(f != nullptr, "cannot open --json file " + path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
