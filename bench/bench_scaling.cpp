// Thread-scaling sweep over the Figure-7-style FEKF iteration.
//
// For each width in --threads, runs the paper's training iteration (one
// energy update + four force updates, Cu bs-64 by default) on a FRESH model
// from identical initialization, and reports per-iteration wall time,
// speedup vs the 1-thread entry, the per-iteration kernel-launch count, and
// a weight checksum. Because every kernel is bit-exact across widths
// (DESIGN.md "Threading & determinism"), the harness ASSERTS that launch
// counts and weight checksums are identical at every width — the sweep
// changes wall clock only.
//
// Emits a JSON document (stdout, and --json FILE if given) so run_benches.sh
// can archive machine-readable scaling artifacts; each record carries the
// thread width it ran at.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernel_counter.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct Entry {
  i64 threads = 0;
  f64 seconds_per_iter = 0.0;
  f64 forward_s = 0.0, gradient_s = 0.0, optimizer_s = 0.0;
  i64 kernels_per_iter = 0;
  f64 weight_checksum = 0.0;
};

/// Order-pinned f64 sum of every parameter element (bit-comparable across
/// sweep entries).
f64 weight_checksum(const deepmd::DeepmdModel& model) {
  f64 acc = 0.0;
  for (const ag::Variable& p : model.parameters()) {
    const Tensor& t = p.value();
    for (i64 i = 0; i < t.numel(); ++i) acc += static_cast<f64>(t.data()[i]);
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_scaling",
          "Thread-scaling sweep over the Fig. 7-style FEKF iteration "
          "(deterministic across widths; JSON output)");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("batch", "64", "FEKF batch size (paper Fig. 7: 64)")
      .flag("iters", "3", "measured iterations per width")
      .flag("threads", "1,2,4,8", "comma-separated widths to sweep")
      .flag("json", "", "also write the JSON document to this file");
  if (!cli.parse(argc, argv)) return 0;

  const i64 batch = cli.get_int("batch");
  const i64 iters = cli.get_int("iters");
  const std::vector<i64> widths = split_int_list(cli.get("threads"));
  FEKF_CHECK(!widths.empty(), "empty --threads list");

  // One dataset for the whole sweep; a fresh, identically-initialized model
  // per width. Environments depend only on the (deterministic) statistics,
  // so they are prepared once and shared.
  Fixture fixture = make_fixture(cli.get("system"), cli);
  FEKF_CHECK(static_cast<i64>(fixture.train_envs.size()) >= batch,
             "need --train >= --batch snapshots");
  std::span<const train::EnvPtr> all(fixture.train_envs);
  auto batch_span = all.subspan(0, static_cast<std::size_t>(batch));
  const i64 natoms = fixture.train_envs.front()->natoms;

  std::vector<Entry> entries;
  for (const i64 width : widths) {
    set_num_threads(width);
    deepmd::DeepmdModel model(model_config_from(cli),
                              data::get_system(cli.get("system")).num_types());
    model.set_stats(fixture.model->env_stats(), fixture.model->energy_stats());
    train::TrainOptions opts;
    opts.batch_size = batch;
    opts.seed = static_cast<u64>(cli.get_int("seed"));
    optim::KalmanConfig kcfg;
    kcfg.blocksize = cli.get_int("blocksize");
    train::KalmanTrainer trainer(model, kcfg, opts);
    Rng group_rng(7);
    auto groups = train::make_force_groups(natoms, 4, group_rng);

    // Warm-up iteration (excluded from timing and counting).
    trainer.energy_update(batch_span);
    trainer.force_update(batch_span, groups[0]);
    trainer.forward_timer().reset();
    trainer.gradient_timer().reset();
    trainer.optimizer_timer().reset();

    Entry e;
    e.threads = width;
    Stopwatch watch;
    i64 kernels = 0;
    for (i64 it = 0; it < iters; ++it) {
      KernelCountScope scope;
      trainer.energy_update(batch_span);
      for (const auto& group : groups) trainer.force_update(batch_span, group);
      kernels += scope.count();
    }
    e.seconds_per_iter = watch.seconds() / static_cast<f64>(iters);
    e.kernels_per_iter = kernels / iters;
    e.forward_s = trainer.forward_timer().total_seconds() / iters;
    e.gradient_s = trainer.gradient_timer().total_seconds() / iters;
    e.optimizer_s = trainer.optimizer_timer().total_seconds() / iters;
    e.weight_checksum = weight_checksum(model);
    entries.push_back(e);
    std::printf("  %2lld thread(s): %.3f s/iter, %lld kernels/iter\n",
                static_cast<long long>(width), e.seconds_per_iter,
                static_cast<long long>(e.kernels_per_iter));
  }
  set_num_threads(0);  // restore default width

  // Determinism assertions: identical launch counts and identical final
  // weights at every width (the trajectory is pinned, only time varies).
  for (const Entry& e : entries) {
    FEKF_CHECK(e.kernels_per_iter == entries.front().kernels_per_iter,
               "kernel-launch count diverged across thread widths");
    FEKF_CHECK(e.weight_checksum == entries.front().weight_checksum,
               "weight trajectory diverged across thread widths");
  }

  std::printf("\nThread scaling, %s batch %lld (%lld-step iteration: 1 energy "
              "+ 4 force updates)\n",
              fixture.system.c_str(), static_cast<long long>(batch),
              static_cast<long long>(iters));
  Table table({"threads", "s/iter", "speedup", "forward", "gradient",
               "KF update", "kernels/iter"});
  const f64 base = entries.front().seconds_per_iter;
  for (const Entry& e : entries) {
    table.add_row({std::to_string(e.threads), fmt("%.3f", e.seconds_per_iter),
                   fmt("%.2fx", base / e.seconds_per_iter),
                   fmt("%.3f", e.forward_s), fmt("%.3f", e.gradient_s),
                   fmt("%.3f", e.optimizer_s),
                   std::to_string(e.kernels_per_iter)});
  }
  table.print();
  std::printf("determinism: kernel counts and weight checksums identical at "
              "all widths (checksum %.17g)\n",
              entries.front().weight_checksum);

  // JSON artifact (stdout + optional file).
  std::string json = "{\n  \"bench\": \"bench_scaling\",\n";
  json += "  \"system\": \"" + fixture.system + "\",\n";
  json += "  \"batch\": " + std::to_string(batch) + ",\n";
  json += "  \"iters\": " + std::to_string(iters) + ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    json += "    {\"threads\": " + std::to_string(e.threads) +
            ", \"seconds_per_iter\": " + fmt("%.6f", e.seconds_per_iter) +
            ", \"speedup_vs_1\": " + fmt("%.3f", base / e.seconds_per_iter) +
            ", \"forward_s\": " + fmt("%.6f", e.forward_s) +
            ", \"gradient_s\": " + fmt("%.6f", e.gradient_s) +
            ", \"optimizer_s\": " + fmt("%.6f", e.optimizer_s) +
            ", \"kernels_per_iter\": " + std::to_string(e.kernels_per_iter) +
            "}";
    json += i + 1 < entries.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::printf("\n%s", json.c_str());
  const std::string path = cli.get("json");
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    FEKF_CHECK(f != nullptr, "cannot open --json file " + path);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
