// Serving harness (DESIGN.md §14): what does batched concurrent inference
// buy over one-at-a-time evaluation, and does publishing stay cheap while
// readers hammer the registry?
//
// Four scenarios over one published model:
//
//   serial   — the full request stream evaluated one request at a time
//              through the direct path (the unbatched single-walker
//              baseline every MD loop starts from)
//   batched  — the same stream issued by --walkers concurrent walker
//              threads through a BatchingEvaluator; reports throughput,
//              per-request latency percentiles, and mean batch occupancy
//   publish  — ModelRegistry::publish_copy latency idle vs under
//              --walkers polling readers; the loaded/idle ratio is the
//              "publishing never blocks on readers" claim as a number,
//              and serve.publish_stalls must stay 0
//   mixed    — pinned-to-v1 and serve-latest requests with deadlines in
//              one queue, against a registry that keeps publishing
//
// The gated quantities (ci/budgets.json "serving"): launch_amortization
// (kernel launches per request, serial over batched — the deterministic
// Fig-7(b)-style amortization number, exact on any host), batched_speedup,
// occupancy_mean, publish_stalls, loaded_over_idle, p99 latency. The
// wall-clock ones carry loose TIME-style slack on a contended host; the
// structural ones (launch ratio, stalls = 0, pinned_ok = 1) are exact.
//
// Emits a JSON document (stdout, and --json FILE if given) so
// run_benches.sh can archive it as bench_artifacts/serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/env.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "md/lattice.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batching.hpp"
#include "serve/registry.hpp"
#include "tensor/kernel_counter.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

f64 now_seconds() {
  return std::chrono::duration<f64>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

f64 percentile(std::vector<f64> values, f64 p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<f64>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

struct StreamResult {
  i64 requests = 0;
  f64 total_s = 0.0;
  f64 throughput_rps = 0.0;
  f64 p50_latency_s = 0.0;
  f64 p99_latency_s = 0.0;
  i64 batches = 0;
  f64 occupancy_mean = 0.0;
};

/// Interpolated histogram quantiles for one request-level SLO surface.
struct Slo {
  f64 p50_s = 0.0;
  f64 p90_s = 0.0;
  f64 p99_s = 0.0;
};

std::string json_string_array(const std::vector<std::string>& names) {
  std::string out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out += "\"" + names[i] + "\"";
    if (i + 1 < names.size()) out += ", ";
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_serving",
          "Model-serving harness: batched concurrent inference vs the "
          "unbatched single-walker baseline, publish latency under reader "
          "load, and mixed pin/latest freshness (JSON output)");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("walkers", "64", "concurrent MD-walker threads")
      .flag("requests", "8", "requests per walker")
      .flag("max_batch", "32", "BatchingEvaluator max batch")
      .flag("max_wait_us", "500", "BatchingEvaluator max wait (us)")
      .flag("publishes", "12", "publishes per publish-latency leg")
      .flag("forces", "1", "request forces (0 = energy-only walkers)")
      .flag("walker_cells", "1",
            "walker exploration cell size (NxNxN FCC cells; 0 = serve the "
            "full dataset snapshots instead)")
      .flag("sel", "8",
            "neighbor budget per type for the served model (0 = size from "
            "data like training does)")
      .flag("rcut", "3.0",
            "serving cutoff radius in Å (0 = the training default); "
            "exploration potentials keep it short, see the fixture comment")
      .flag("json", "", "also write the JSON document to this file");
  if (!cli.parse(argc, argv)) return 0;

  // Counters/histograms (occupancy, publish stalls) record only while
  // metrics are on; this bench reads them back in-process.
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::instance();

  const i64 walkers = cli.get_int("walkers");
  const i64 per_walker = cli.get_int("requests");
  const i64 total_requests = walkers * per_walker;

  // Serving fixture. Unlike the training benches this one takes an
  // explicit --sel: online-learning walkers serve COMPACT exploration
  // potentials (DP-GEN style), and sel is what sets the per-request row
  // count (env rows are padded to natoms x sel). With the data-sized sel
  // (~87 for Cu) every request is compute-bound and one core pins the
  // aggregate throughput regardless of batching; with a compact budget
  // the fixed per-pass cost (graph build, kernel launches, backward
  // traversal) rivals the row math, which is the regime batching exists
  // for. fit_stats honours config.sel when set and only sizes from data
  // when it is empty.
  Fixture fixture;
  fixture.system = cli.get("system");
  {
    const data::SystemSpec& spec = data::get_system(fixture.system);
    data::DatasetConfig dcfg;
    const i64 ntemps = static_cast<i64>(spec.temperatures.size());
    dcfg.train_per_temperature =
        std::max<i64>(1, cli.get_int("train") / ntemps);
    dcfg.test_per_temperature =
        std::max<i64>(1, cli.get_int("test") / ntemps);
    dcfg.seed = static_cast<u64>(cli.get_int("seed"));
    fixture.dataset = data::build_dataset(spec, dcfg);
    deepmd::ModelConfig cfg = model_config_from(cli);
    if (cli.get_int("sel") > 0) {
      cfg.sel.assign(static_cast<std::size_t>(spec.num_types()),
                     cli.get_int("sel"));
    }
    // Short serving cutoff for the same reason as the compact sel: the
    // per-request cost of an exploration potential scales with the
    // neighbor volume, and a 3 Å first-shell cutoff is the DP-GEN-style
    // screening regime. The training default (6 Å) stays available via
    // --rcut 0.
    if (cli.get_double("rcut") > 0.0) {
      cfg.rcut = cli.get_double("rcut");
      cfg.rcut_smth = 0.5 * cfg.rcut;
    }
    fixture.model = std::make_unique<deepmd::DeepmdModel>(
        cfg, spec.num_types());
    fixture.model->fit_stats(fixture.dataset.train);
  }

  // Walker exploration cells. Online-learning walkers probe SMALL unit
  // cells (DP-GEN style), which is the launch-bound regime the paper
  // targets: per-request graph/launch overhead rivals the per-atom math,
  // and the batched pass amortizes it. --walker_cells 0 serves the full
  // dataset snapshots instead (the compute-bound regime, where one core
  // pins the aggregate throughput near 1x regardless of batching).
  std::vector<md::Snapshot> snaps;
  const i64 cells = cli.get_int("walker_cells");
  if (cells > 0) {
    const f64 lattice_a = fixture.system == "Cu"   ? 3.615
                          : fixture.system == "Al" ? 4.05
                                                   : 0.0;
    FEKF_CHECK(lattice_a > 0.0,
               "--walker_cells needs a single-type FCC system (Cu or Al); "
               "use --walker_cells 0 for " + fixture.system);
    Rng rng(static_cast<u64>(cli.get_int("seed")));
    const md::Structure st = md::make_fcc(
        lattice_a, static_cast<i32>(cells), static_cast<i32>(cells),
        static_cast<i32>(cells));
    for (i64 i = 0; i < 16; ++i) {
      md::Snapshot snap;
      snap.cell = st.cell;
      snap.types = st.types;
      snap.positions = st.positions;
      for (md::Vec3& p : snap.positions) {  // thermal-scale jitter
        p.x += 0.02 * lattice_a * rng.gaussian();
        p.y += 0.02 * lattice_a * rng.gaussian();
        p.z += 0.02 * lattice_a * rng.gaussian();
      }
      snaps.push_back(std::move(snap));
    }
  } else {
    snaps = fixture.dataset.test;
  }
  FEKF_CHECK(!snaps.empty(), "no walker snapshots");
  const i64 walker_natoms = snaps.front().natoms();

  serve::ModelRegistry registry;
  registry.publish_copy(*fixture.model, /*source_step=*/0);

  std::printf(
      "Serving: %s, %lld-atom walker cells, %lld walkers x %lld requests, "
      "max batch %lld\n\n",
      fixture.system.c_str(), static_cast<long long>(walker_natoms),
      static_cast<long long>(walkers), static_cast<long long>(per_walker),
      static_cast<long long>(cli.get_int("max_batch")));

  auto request_for = [&](i64 walker, i64 k) {
    serve::EvalRequest req;
    req.snapshot = snaps[static_cast<std::size_t>(walker + k) % snaps.size()];
    req.with_forces = cli.get_int("forces") != 0;
    return req;
  };

  // Warm caches/pool once so neither leg pays first-touch costs.
  (void)serve::evaluate_with(*fixture.model, request_for(0, 0));

  // --- serial: the unbatched single-walker baseline -----------------------
  // Both single-threaded legs run inside a KernelCountScope: launches per
  // request is the deterministic amortization quantity (paper Fig. 7(b) —
  // kernel launches per FEKF step), independent of host contention.
  StreamResult serial;
  serial.requests = total_requests;
  i64 serial_launches = 0;
  {
    KernelCountScope launches;
    const f64 t0 = now_seconds();
    for (i64 w = 0; w < walkers; ++w) {
      for (i64 k = 0; k < per_walker; ++k) {
        (void)serve::evaluate_with(*fixture.model, request_for(w, k));
      }
    }
    serial.total_s = now_seconds() - t0;
    serial.throughput_rps =
        static_cast<f64>(serial.requests) / serial.total_s;
    serial_launches = launches.count();
  }

  // --- batched_inline: pure amortization, no queue or threads -------------
  // The same request stream grouped into max_batch-wide shared passes on
  // the main thread. The gap between this row and `serial` is the launch
  // amortization itself; the gap between this row and `batched` is the
  // queueing/wakeup cost of the concurrent server around it.
  StreamResult batched_inline;
  batched_inline.requests = total_requests;
  i64 batched_launches = 0;
  {
    KernelCountScope launches;
    const i64 width = cli.get_int("max_batch");
    std::vector<serve::EvalRequest> group;
    group.reserve(static_cast<std::size_t>(width));
    const f64 t0 = now_seconds();
    for (i64 w = 0; w < walkers; ++w) {
      for (i64 k = 0; k < per_walker; ++k) {
        group.push_back(request_for(w, k));
        if (static_cast<i64>(group.size()) == width) {
          (void)serve::evaluate_batch_with(*fixture.model, group);
          group.clear();
        }
      }
    }
    if (!group.empty()) {
      (void)serve::evaluate_batch_with(*fixture.model, group);
    }
    batched_inline.total_s = now_seconds() - t0;
    batched_inline.throughput_rps =
        static_cast<f64>(batched_inline.requests) / batched_inline.total_s;
    batched_launches = launches.count();
  }
  const f64 serial_launches_per_req =
      static_cast<f64>(serial_launches) / static_cast<f64>(total_requests);
  const f64 batched_launches_per_req =
      static_cast<f64>(batched_launches) / static_cast<f64>(total_requests);
  const f64 launch_amortization =
      batched_launches > 0
          ? static_cast<f64>(serial_launches)
                / static_cast<f64>(batched_launches)
          : 0.0;

  // --- concurrent_direct: 64 walkers, each evaluating unbatched ------------
  // The baseline a batching server actually displaces: every walker thread
  // runs the full model itself. On a small host the in-flight graphs evict
  // each other from cache and contend on the allocator; coalescing into one
  // worker's batched pass removes that thrash.
  StreamResult concurrent_direct;
  concurrent_direct.requests = total_requests;
  {
    std::vector<std::thread> threads;
    const f64 t0 = now_seconds();
    for (i64 w = 0; w < walkers; ++w) {
      threads.emplace_back([&, w] {
        for (i64 k = 0; k < per_walker; ++k) {
          (void)serve::evaluate_with(*fixture.model, request_for(w, k));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    concurrent_direct.total_s = now_seconds() - t0;
    concurrent_direct.throughput_rps =
        static_cast<f64>(concurrent_direct.requests)
        / concurrent_direct.total_s;
  }

  // --- batched: concurrent walkers through the BatchingEvaluator ----------
  StreamResult batched;
  Slo request_latency;
  Slo queue_wait;
  batched.requests = total_requests;
  {
    serve::BatchingConfig bcfg;
    bcfg.max_batch = cli.get_int("max_batch");
    bcfg.max_wait_s = static_cast<f64>(cli.get_int("max_wait_us")) * 1e-6;
    serve::BatchingEvaluator evaluator(registry, bcfg);

    // The request-level SLO histograms must cover exactly this leg: the
    // percentiles below gate ci/budgets.json "obs" budgets, so earlier
    // warm-up traffic may not dilute them.
    metrics.histogram("serve.request_latency_seconds").reset();
    metrics.histogram("serve.queue_wait_seconds").reset();

    const i64 batches_before = metrics.counter("serve.batches").value();
    const f64 occ_count_before =
        static_cast<f64>(metrics.histogram("serve.batch_occupancy").count());
    const f64 occ_sum_before =
        metrics.histogram("serve.batch_occupancy").sum();

    std::vector<std::vector<f64>> latencies(
        static_cast<std::size_t>(walkers));
    std::vector<std::thread> threads;
    const f64 t0 = now_seconds();
    for (i64 w = 0; w < walkers; ++w) {
      threads.emplace_back([&, w] {
        auto& lane = latencies[static_cast<std::size_t>(w)];
        lane.reserve(static_cast<std::size_t>(per_walker));
        for (i64 k = 0; k < per_walker; ++k) {
          const f64 sent = now_seconds();
          (void)evaluator.evaluate(request_for(w, k));
          lane.push_back(now_seconds() - sent);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    batched.total_s = now_seconds() - t0;
    batched.throughput_rps =
        static_cast<f64>(batched.requests) / batched.total_s;
    evaluator.shutdown();

    std::vector<f64> all;
    for (const auto& lane : latencies) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    batched.p50_latency_s = percentile(all, 0.50);
    batched.p99_latency_s = percentile(all, 0.99);
    batched.batches = metrics.counter("serve.batches").value()
                      - batches_before;
    const f64 occ_count =
        static_cast<f64>(metrics.histogram("serve.batch_occupancy").count())
        - occ_count_before;
    const f64 occ_sum =
        metrics.histogram("serve.batch_occupancy").sum() - occ_sum_before;
    batched.occupancy_mean = occ_count > 0.0 ? occ_sum / occ_count : 0.0;

    // Request-level SLOs from the metrics histograms themselves (the same
    // quantiles a live FEKF_TELEMETRY sampler would report), not from the
    // bench's private latency vector: this is the export surface the
    // "obs" budgets gate, so the gate exercises the production path.
    const obs::Histogram& lat =
        metrics.histogram("serve.request_latency_seconds");
    request_latency = {lat.percentile(0.50), lat.percentile(0.90),
                       lat.percentile(0.99)};
    const obs::Histogram& wait =
        metrics.histogram("serve.queue_wait_seconds");
    queue_wait = {wait.percentile(0.50), wait.percentile(0.90),
                  wait.percentile(0.99)};
  }
  // The headline gate: batched vs the unbatched path at the same 64-walker
  // concurrency. serial_ratio (vs one lone unbatched walker) is reported
  // for context — on a one-core host it hovers near 1.0 by construction,
  // since both paths run the same arithmetic through the same core.
  const f64 batched_speedup =
      batched.throughput_rps / concurrent_direct.throughput_rps;
  const f64 serial_ratio = batched.throughput_rps / serial.throughput_rps;

  // --- publish latency, idle vs under reader load -------------------------
  const i64 publishes = cli.get_int("publishes");
  std::vector<f64> idle_publish_s;
  std::vector<f64> loaded_publish_s;
  {
    for (i64 k = 0; k < publishes; ++k) {
      const f64 t0 = now_seconds();
      registry.publish_copy(*fixture.model, 100 + k);
      idle_publish_s.push_back(now_seconds() - t0);
    }
    // Readers poll latest() the way MD loops do — frequently, not in a
    // hot spin (a pure spin on a one-core host would measure the
    // scheduler, not the registry).
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (i64 w = 0; w < walkers; ++w) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          const serve::ModelSnapshot* snap = registry.latest();
          FEKF_CHECK(snap != nullptr && snap->model != nullptr,
                     "torn read under publish load");
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }
    for (i64 k = 0; k < publishes; ++k) {
      const f64 t0 = now_seconds();
      registry.publish_copy(*fixture.model, 200 + k);
      loaded_publish_s.push_back(now_seconds() - t0);
    }
    stop.store(true);
    for (std::thread& t : readers) t.join();
  }
  const f64 p50_idle = percentile(idle_publish_s, 0.50);
  const f64 p50_loaded = percentile(loaded_publish_s, 0.50);
  const f64 loaded_over_idle = p50_idle > 0.0 ? p50_loaded / p50_idle : 0.0;
  const i64 publish_stalls = metrics.counter("serve.publish_stalls").value();

  // --- mixed freshness: pinned + latest + deadlines in one queue ----------
  i64 mixed_requests = 0;
  i64 pinned_wrong_version = 0;
  u64 latest_served = 0;
  {
    serve::BatchingConfig bcfg;
    bcfg.max_batch = cli.get_int("max_batch");
    bcfg.max_wait_s = static_cast<f64>(cli.get_int("max_wait_us")) * 1e-6;
    serve::BatchingEvaluator evaluator(registry, bcfg);
    std::vector<std::future<serve::EvalResult>> pinned;
    std::vector<std::future<serve::EvalResult>> latest;
    for (i64 w = 0; w < walkers; ++w) {
      serve::EvalRequest req = request_for(w, 0);
      req.deadline_s = (w % 2 == 0) ? 300e-6 : -1.0;
      if (w % 2 == 0) {
        req.pin_version = 1;
        pinned.push_back(evaluator.submit(std::move(req)));
      } else {
        latest.push_back(evaluator.submit(std::move(req)));
      }
      ++mixed_requests;
    }
    for (auto& f : pinned) {
      if (f.get().model_version != 1) ++pinned_wrong_version;
    }
    for (auto& f : latest) {
      latest_served = std::max(latest_served, f.get().model_version);
    }
    evaluator.shutdown();
  }

  // --- obs inventory: the observable surface, for the --obs-doc gate ------
  // A short traced leg replays the serving scenario with span recording on
  // and collects every distinct event name that fired; together with the
  // registered metric and env-knob names this is the machine-readable
  // inventory ci/check_budgets.py --obs-doc diffs against
  // docs/OBSERVABILITY.md (same drift contract as --kernels-doc).
  std::vector<std::string> span_names;
  {
    auto& recorder = obs::TraceRecorder::instance();
    const bool was_enabled = obs::TraceRecorder::enabled();
    recorder.clear();
    recorder.set_enabled(true);
    {
      serve::BatchingConfig bcfg;
      bcfg.max_batch = cli.get_int("max_batch");
      bcfg.max_wait_s = static_cast<f64>(cli.get_int("max_wait_us")) * 1e-6;
      serve::BatchingEvaluator evaluator(registry, bcfg);
      for (i64 k = 0; k < 4; ++k) {
        (void)evaluator.evaluate(request_for(0, k));
      }
      evaluator.shutdown();
    }
    (void)serve::evaluate_with(*fixture.model, request_for(0, 0));
    recorder.set_enabled(was_enabled);
    std::set<std::string> unique;
    for (const obs::TraceEvent& e : recorder.snapshot()) {
      unique.insert(e.name);
    }
    recorder.clear();
    span_names.assign(unique.begin(), unique.end());
  }
  std::vector<std::string> metric_names;
  {
    std::set<std::string> unique;
    for (const std::string& n : metrics.counter_names()) unique.insert(n);
    for (const std::string& n : metrics.gauge_names()) unique.insert(n);
    for (const std::string& n : metrics.histogram_names()) unique.insert(n);
    metric_names.assign(unique.begin(), unique.end());
  }
  std::vector<std::string> knob_names;
  for (const env::Knob& knob : env::knobs()) {
    knob_names.emplace_back(knob.name);
  }

  Table table({"scenario", "requests", "total s", "req/s", "p50 ms",
               "p99 ms", "batches", "occupancy"});
  table.add_row({"serial", std::to_string(serial.requests),
                 fmt("%.3f", serial.total_s),
                 fmt("%.1f", serial.throughput_rps), "-", "-", "-", "-"});
  table.add_row({"batched_inline", std::to_string(batched_inline.requests),
                 fmt("%.3f", batched_inline.total_s),
                 fmt("%.1f", batched_inline.throughput_rps), "-", "-", "-",
                 "-"});
  table.add_row({"concurrent_direct",
                 std::to_string(concurrent_direct.requests),
                 fmt("%.3f", concurrent_direct.total_s),
                 fmt("%.1f", concurrent_direct.throughput_rps), "-", "-", "-",
                 "-"});
  table.add_row({"batched", std::to_string(batched.requests),
                 fmt("%.3f", batched.total_s),
                 fmt("%.1f", batched.throughput_rps),
                 fmt("%.2f", 1e3 * batched.p50_latency_s),
                 fmt("%.2f", 1e3 * batched.p99_latency_s),
                 std::to_string(batched.batches),
                 fmt("%.2f", batched.occupancy_mean)});
  table.print();
  std::printf(
      "\nlaunch amortization %.2fx (%.1f -> %.1f kernel launches per "
      "request); batched speedup %.2fx vs unbatched at the same concurrency "
      "(%.2fx vs one lone walker); publish p50 %.1f us idle vs %.1f us under "
      "%lld readers (x%.2f), %lld stalls; mixed: %lld requests, %lld "
      "pinned-version violations, latest served v%llu\n",
      launch_amortization, serial_launches_per_req, batched_launches_per_req,
      batched_speedup, serial_ratio, 1e6 * p50_idle, 1e6 * p50_loaded,
      static_cast<long long>(walkers), loaded_over_idle,
      static_cast<long long>(publish_stalls),
      static_cast<long long>(mixed_requests),
      static_cast<long long>(pinned_wrong_version),
      static_cast<unsigned long long>(latest_served));
  std::printf(
      "request SLOs (histogram quantiles): latency p50/p90/p99 = "
      "%.2f/%.2f/%.2f ms, queue wait p50/p90/p99 = %.2f/%.2f/%.2f ms\n",
      1e3 * request_latency.p50_s, 1e3 * request_latency.p90_s,
      1e3 * request_latency.p99_s, 1e3 * queue_wait.p50_s,
      1e3 * queue_wait.p90_s, 1e3 * queue_wait.p99_s);

  std::string json = "{\n  \"bench\": \"bench_serving\",\n";
  json += "  \"system\": \"" + fixture.system + "\",\n";
  json += "  \"walkers\": " + std::to_string(walkers) + ",\n";
  json += "  \"walker_natoms\": " + std::to_string(walker_natoms) + ",\n";
  json += "  \"requests_per_walker\": " + std::to_string(per_walker) + ",\n";
  json += "  \"max_batch\": " + std::to_string(cli.get_int("max_batch")) +
          ",\n";
  json += "  \"serial\": {\"requests\": " + std::to_string(serial.requests) +
          ", \"total_s\": " + fmt("%.6f", serial.total_s) +
          ", \"throughput_rps\": " + fmt("%.3f", serial.throughput_rps) +
          ", \"kernel_launches\": " + std::to_string(serial_launches) +
          "},\n";
  json += "  \"batched_inline\": {\"requests\": " +
          std::to_string(batched_inline.requests) +
          ", \"total_s\": " + fmt("%.6f", batched_inline.total_s) +
          ", \"throughput_rps\": " +
          fmt("%.3f", batched_inline.throughput_rps) +
          ", \"kernel_launches\": " + std::to_string(batched_launches) +
          "},\n";
  json += "  \"launch_amortization\": " + fmt("%.4f", launch_amortization) +
          ",\n";
  json += "  \"concurrent_direct\": {\"requests\": " +
          std::to_string(concurrent_direct.requests) +
          ", \"total_s\": " + fmt("%.6f", concurrent_direct.total_s) +
          ", \"throughput_rps\": " +
          fmt("%.3f", concurrent_direct.throughput_rps) + "},\n";
  json += "  \"batched\": {\"requests\": " +
          std::to_string(batched.requests) +
          ", \"total_s\": " + fmt("%.6f", batched.total_s) +
          ", \"throughput_rps\": " + fmt("%.3f", batched.throughput_rps) +
          ", \"p50_latency_s\": " + fmt("%.9f", batched.p50_latency_s) +
          ", \"p99_latency_s\": " + fmt("%.9f", batched.p99_latency_s) +
          ", \"batches\": " + std::to_string(batched.batches) +
          ", \"occupancy_mean\": " + fmt("%.3f", batched.occupancy_mean) +
          ",\n    \"request_latency\": {\"p50_s\": " +
          fmt("%.9f", request_latency.p50_s) +
          ", \"p90_s\": " + fmt("%.9f", request_latency.p90_s) +
          ", \"p99_s\": " + fmt("%.9f", request_latency.p99_s) +
          "},\n    \"queue_wait\": {\"p50_s\": " +
          fmt("%.9f", queue_wait.p50_s) +
          ", \"p90_s\": " + fmt("%.9f", queue_wait.p90_s) +
          ", \"p99_s\": " + fmt("%.9f", queue_wait.p99_s) + "}},\n";
  json += "  \"batched_speedup\": " + fmt("%.4f", batched_speedup) + ",\n";
  json += "  \"serial_ratio\": " + fmt("%.4f", serial_ratio) + ",\n";
  json += "  \"publish\": {\"publishes\": " + std::to_string(publishes) +
          ", \"p50_idle_s\": " + fmt("%.9f", p50_idle) +
          ", \"p50_loaded_s\": " + fmt("%.9f", p50_loaded) +
          ", \"loaded_over_idle\": " + fmt("%.4f", loaded_over_idle) +
          ", \"readers\": " + std::to_string(walkers) +
          ", \"publish_stalls\": " + std::to_string(publish_stalls) +
          "},\n";
  json += "  \"mixed\": {\"requests\": " + std::to_string(mixed_requests) +
          ", \"pinned_wrong_version\": " +
          std::to_string(pinned_wrong_version) +
          ", \"latest_served_version\": " + std::to_string(latest_served) +
          "},\n";
  json += "  \"obs\": {\n";
  json += "    \"spans\": " + json_string_array(span_names) + ",\n";
  json += "    \"metrics\": " + json_string_array(metric_names) + ",\n";
  json += "    \"knobs\": " + json_string_array(knob_names) + "\n";
  json += "  }\n}\n";
  std::printf("\n%s", json.c_str());
  if (!cli.get("json").empty()) {
    std::FILE* f = std::fopen(cli.get("json").c_str(), "w");
    FEKF_CHECK(f != nullptr, "cannot open --json file " + cli.get("json"));
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
