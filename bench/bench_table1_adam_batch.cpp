// Table 1 — Adam-based DeePMD convergence under different training batch
// sizes.
//
// The paper shows that growing Adam's mini-batch from 1 to 32 costs
// ~12-25x more epochs to reach the same Energy RMSE (with the default
// sqrt(bs) learning-rate scaling), and 32 -> 64 roughly doubles it again.
// This harness measures epochs-to-target for a batch-size ladder. The
// target is the best Energy RMSE the bs=1 run reaches (times a slack
// factor), exactly like the paper anchors Table 1 on the bs=1 result.
#include "bench_common.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct RunOutcome {
  std::vector<f64> e_rmse_per_epoch;

  f64 best() const {
    f64 b = 1e30;
    for (const f64 v : e_rmse_per_epoch) b = std::min(b, v);
    return b;
  }
  i64 epochs_to(f64 target) const {
    for (std::size_t e = 0; e < e_rmse_per_epoch.size(); ++e) {
      if (e_rmse_per_epoch[e] <= target) return static_cast<i64>(e) + 1;
    }
    return -1;
  }
};

RunOutcome run_adam(const std::string& system, const Cli& cli, i64 batch,
                    i64 max_epochs) {
  Fixture f = make_fixture(system, cli);
  train::TrainOptions opts;
  opts.batch_size = batch;
  opts.max_epochs = max_epochs;
  opts.eval_max_samples = 16;
  opts.eval_forces = false;  // Table 1 tracks Energy RMSE
  opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::AdamConfig acfg;
  acfg.lr_scale = std::sqrt(static_cast<f64>(batch));  // paper's scaling
  // Let the schedule complete within the budget (paper: 0.95 every 5000
  // steps over ~1e5+ steps; here the step count is smaller).
  const i64 steps_per_epoch =
      (static_cast<i64>(f.train_envs.size()) + batch - 1) / batch;
  acfg.decay_steps = std::max<i64>(8, steps_per_epoch * max_epochs / 48);
  train::AdamTrainer trainer(*f.model, acfg, {}, opts);
  train::TrainResult result = trainer.train(f.train_envs, {});
  RunOutcome out;
  for (const auto& rec : result.history) {
    out.e_rmse_per_epoch.push_back(rec.train.energy_rmse);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_table1_adam_batch",
          "Table 1: Adam epochs-to-target vs mini-batch size");
  add_common_flags(cli);
  cli.flag("systems", "Cu", "comma-separated catalog systems")
      .flag("batches", "1,8,16",
            "batch-size ladder (paper: 1,32,64 — use with a larger --train)")
      .flag("epochs1", "16", "epoch budget for the smallest batch")
      .flag("slack", "1.10",
            "target = slack * best bs=1 Energy RMSE");
  if (!cli.parse(argc, argv)) return 0;

  const auto systems = split_list(cli.get("systems"));
  const auto batches = split_int_list(cli.get("batches"));
  FEKF_CHECK(batches.size() >= 2, "need at least two batch sizes");

  std::vector<std::string> header = {"System", "target E-RMSE (eV)"};
  for (const i64 b : batches) header.push_back("bs " + std::to_string(b));
  for (std::size_t i = 1; i < batches.size(); ++i) {
    header.push_back("growth " + std::to_string(batches[i]) + "/" +
                     std::to_string(batches[i - 1]));
  }
  Table table(header);

  std::printf("Table 1 reproduction: Adam epochs to reach the bs=1 Energy "
              "RMSE under larger mini-batches\n");
  for (const std::string& system : systems) {
    // One run per batch size; the bs = batches[0] run anchors the target
    // (the paper fixes the error at the bs=1 converged Energy RMSE). The
    // budget grows with batch size since the epoch count does (the paper
    // observed up to ~25x for bs 32; cap at 40x the anchor budget).
    const i64 epochs1 = cli.get_int("epochs1");
    std::vector<RunOutcome> runs;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      const i64 budget = std::min<i64>(
          epochs1 * 40,
          epochs1 * std::max<i64>(1, 2 * batches[i] / batches[0]));
      runs.push_back(run_adam(system, cli, batches[i], budget));
      std::printf("  %s bs %lld done\n", system.c_str(),
                  static_cast<long long>(batches[i]));
    }
    const f64 target = runs[0].best() * cli.get_double("slack");
    std::vector<i64> epochs(batches.size(), -1);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      epochs[i] = runs[i].epochs_to(target);
    }
    std::vector<std::string> row = {system, Table::num(target)};
    for (const i64 e : epochs) {
      row.push_back(e < 0 ? "-" : std::to_string(e));
    }
    for (std::size_t i = 1; i < batches.size(); ++i) {
      if (epochs[i] < 0 || epochs[i - 1] <= 0) {
        row.push_back("-");
      } else {
        row.push_back(fmt("%.1fx", static_cast<f64>(epochs[i]) /
                                       static_cast<f64>(epochs[i - 1])));
      }
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\nPaper shape: epochs grow steeply with batch size (Cu: 17 -> 327 -> "
      "703 for bs 1/32/64, i.e. 19.2x then 2.1x); '-' = target not reached "
      "within the epoch budget, which is itself the paper's CuO outcome.\n");
  return 0;
}
