// Table 4 — convergence ratio and accuracy of multi-sample FEKF vs
// single-sample Adam on the eight catalog systems.
//
// The paper reports, per system: the epochs Adam bs=1 needs to converge,
// the FEKF-bs-32 / Adam epoch ratio (0.07-0.23), and train/test RMSE for
// both showing no generalization gap. Here both optimizers run to a common
// target (the better of the two final accuracies, with slack) and the
// epoch counts, ratio, and train/test RMSE are tabulated.
#include "bench_common.hpp"

using namespace fekf;
using namespace fekf::bench;

namespace {

struct RunResult {
  train::TrainResult result;
  i64 epochs_to(f64 target) const {
    for (const auto& rec : result.history) {
      if (rec.train.total() <= target) return rec.epoch;
    }
    return -1;
  }
  /// Epoch record with the lowest train total RMSE (training is noisy at
  /// bench scale; the paper reports converged values).
  const train::EpochRecord& best_epoch() const {
    std::size_t best = 0;
    for (std::size_t e = 1; e < result.history.size(); ++e) {
      if (result.history[e].train.total() <
          result.history[best].train.total()) {
        best = e;
      }
    }
    return result.history[best];
  }
  f64 best_total() const { return best_epoch().train.total(); }
};

RunResult run_adam(const std::string& system, const Cli& cli, i64 epochs) {
  Fixture f = make_fixture(system, cli);
  train::TrainOptions opts;
  opts.batch_size = 1;
  opts.max_epochs = epochs;
  opts.eval_max_samples = 16;
  opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::AdamConfig acfg;
  const i64 steps = static_cast<i64>(f.train_envs.size()) * epochs;
  acfg.decay_steps = std::max<i64>(8, steps / 48);
  train::AdamTrainer trainer(*f.model, acfg, {}, opts);
  return RunResult{trainer.train(f.train_envs, f.test_envs)};
}

RunResult run_fekf(const std::string& system, const Cli& cli, i64 batch,
                   i64 epochs) {
  Fixture f = make_fixture(system, cli);
  train::TrainOptions opts;
  opts.batch_size = batch;
  opts.max_epochs = epochs;
  opts.eval_max_samples = 16;
  opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::KalmanConfig kcfg = optim::KalmanConfig::for_batch_size(batch);
  kcfg.blocksize = cli.get_int("blocksize");
  train::KalmanTrainer trainer(*f.model, kcfg, opts);
  return RunResult{trainer.train(f.train_envs, f.test_envs)};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_table4_convergence",
          "Table 4: FEKF-vs-Adam convergence ratio and train/test RMSE");
  add_common_flags(cli);
  cli.flag("systems", "Cu,Al,Si,NaCl,Mg,H2O,CuO,HfO2",
           "comma-separated catalog systems")
      .flag("batch", "8", "FEKF batch size (paper: 32)")
      .flag("adam-epochs", "16", "Adam bs=1 epoch budget")
      .flag("fekf-epochs", "8", "FEKF epoch budget")
      .flag("slack", "1.15", "target = slack * max(best totals)");
  if (!cli.parse(argc, argv)) return 0;

  Table table({"System", "Adam bs1 epochs", "conv. ratio",
               "Adam RMSE train/test", "FEKF RMSE train/test"});
  std::printf("Table 4 reproduction: epochs to matched (E+F) RMSE and "
              "generalization, Adam bs=1 vs FEKF bs=%lld\n",
              static_cast<long long>(cli.get_int("batch")));

  for (const std::string& system : split_list(cli.get("systems"))) {
    RunResult adam = run_adam(system, cli, cli.get_int("adam-epochs"));
    RunResult fekf = run_fekf(system, cli, cli.get_int("batch"),
                              cli.get_int("fekf-epochs"));
    // Common target both runs can reach: the worse of the two best totals.
    const f64 target = cli.get_double("slack") *
                       std::max(adam.best_total(), fekf.best_total());
    const i64 ea = adam.epochs_to(target);
    const i64 ef = fekf.epochs_to(target);
    std::string ratio = "-";
    if (ea > 0 && ef > 0) {
      ratio = fmt("%.3f", static_cast<f64>(ef) / static_cast<f64>(ea));
    }
    const auto rmse_pair = [](const RunResult& r) {
      const train::EpochRecord& rec = r.best_epoch();
      return Table::num(rec.train.total()) + " / " +
             Table::num(rec.test.total());
    };
    table.add_row({system, ea > 0 ? std::to_string(ea) : "-", ratio,
                   rmse_pair(adam), rmse_pair(fekf)});
    std::printf("  %-5s done (target %.4f, Adam %lld ep, FEKF %lld ep)\n",
                system.c_str(), target, static_cast<long long>(ea),
                static_cast<long long>(ef));
  }
  table.print();
  std::printf(
      "\nPaper shape: convergence ratio well below 1 (0.07-0.23 at paper "
      "scale) and train/test RMSE close for FEKF (no generalization gap).\n");
  return 0;
}
