// Table 5 — distributed FEKF on the virtual cluster (Cu system).
//
// The paper scales the Cu training from RLEKF on 1 GPU (26136 s) to FEKF
// with batch 4096 on 16 GPUs (281 s, 93x). This harness reproduces the
// ladder shape on the virtual cluster: each rung's shards execute for real
// on this CPU and the interconnect is modeled (alpha-beta ring allreduce
// at the paper's 25 GB/s RoCE figure). Reported times are SIMULATED
// cluster wall-clock to reach the common accuracy target; the default
// ladder is scaled down from the paper's 32/512/4096 x 1/4/16 GPUs.
#include "bench_common.hpp"
#include "dist/cluster.hpp"

using namespace fekf;
using namespace fekf::bench;

int main(int argc, char** argv) {
  Cli cli("bench_table5_distributed",
          "Table 5: distributed FEKF wall time on the virtual cluster");
  add_common_flags(cli);
  cli.flag("system", "Cu", "catalog system")
      .flag("ladder", "8:1,16:2,32:4",
            "comma list of batch:ranks rungs (paper: 32:1,512:4,4096:16)")
      .flag("rlekf-epochs", "4", "RLEKF baseline epoch budget")
      .flag("fekf-epochs", "10", "FEKF epoch budget per rung")
      .flag("slack", "1.5",
            "accuracy target = slack * RLEKF best total RMSE (the paper's "
            "Table 5 uses 1.5x the baseline accuracy)");
  if (!cli.parse(argc, argv)) return 0;

  // Baseline: RLEKF (FEKF batch 1) on one rank, measured wall time.
  Fixture base = make_fixture(cli.get("system"), cli);
  train::TrainOptions base_opts;
  base_opts.batch_size = 1;
  base_opts.max_epochs = cli.get_int("rlekf-epochs");
  base_opts.eval_max_samples = 12;
  base_opts.seed = static_cast<u64>(cli.get_int("seed"));
  optim::KalmanConfig base_kcfg;
  base_kcfg.blocksize = cli.get_int("blocksize");
  train::KalmanTrainer base_trainer(*base.model, base_kcfg, base_opts);
  train::TrainResult rlekf = base_trainer.train(base.train_envs, {});
  f64 best = 1e30;
  for (const auto& rec : rlekf.history) {
    best = std::min(best, rec.train.total());
  }
  const f64 target = cli.get_double("slack") * best;
  f64 rlekf_seconds = rlekf.total_seconds;
  for (const auto& rec : rlekf.history) {
    if (rec.train.total() <= target) {
      rlekf_seconds = rec.cumulative_seconds;
      break;
    }
  }
  std::printf("RLEKF baseline: best total RMSE %.4f -> target %.4f, "
              "time %.1fs\n",
              best, target, rlekf_seconds);

  Table table({"config (batch x ranks)", "sim. time to target",
               "speedup vs RLEKF", "comm time share",
               "gradient bytes/step", "epochs"});
  table.add_row({"RLEKF 1 x 1", fmt("%.1fs", rlekf_seconds), "1.0x", "0%",
                 "0", std::to_string(rlekf.history.size())});

  for (const std::string& rung : split_list(cli.get("ladder"))) {
    const auto colon = rung.find(':');
    FEKF_CHECK(colon != std::string::npos, "ladder rung must be batch:ranks");
    const i64 batch = std::stoll(rung.substr(0, colon));
    const i64 ranks = std::stoll(rung.substr(colon + 1));

    Fixture f = make_fixture(cli.get("system"), cli);
    dist::DistributedConfig dcfg;
    dcfg.ranks = ranks;
    dcfg.options.batch_size = batch;
    dcfg.options.max_epochs = cli.get_int("fekf-epochs");
    dcfg.options.eval_max_samples = 12;
    dcfg.options.target_total_rmse = target;
    dcfg.options.seed = static_cast<u64>(cli.get_int("seed"));
    dcfg.kalman = optim::KalmanConfig::for_batch_size(batch);
    dcfg.kalman.blocksize = cli.get_int("blocksize");
    dist::DistributedResult r =
        dist::train_fekf_distributed(*f.model, f.train_envs, {}, dcfg);

    const f64 t = r.train.converged ? r.simulated_seconds_to_converge
                                    : r.simulated_seconds;
    const std::string time_str =
        (r.train.converged ? "" : "> ") + fmt("%.1fs", t);
    const std::string speedup =
        (r.train.converged ? "" : "< ") + fmt("%.1fx", rlekf_seconds / t);
    const f64 comm_share =
        r.comm.comm_seconds / std::max(1e-12, r.simulated_seconds);
    table.add_row(
        {"FEKF " + std::to_string(batch) + " x " + std::to_string(ranks),
         time_str, speedup, fmt("%.2f%%", 100.0 * comm_share),
         std::to_string(r.comm.steps > 0
                            ? r.comm.gradient_bytes / r.comm.steps
                            : 0),
         std::to_string(r.train.history.size())});
    std::printf("  rung %s done\n", rung.c_str());
  }
  table.print();
  std::printf(
      "\nPaper shape (Cu): RLEKF 26136s -> FEKF 32x1 54x -> 512x4 72x -> "
      "4096x16 93x; speedups grow but saturate as communication and "
      "large-batch convergence penalties bite. Communication stays "
      "gradient-only: P is never shipped (§3.3).\n");
  return 0;
}
