#!/usr/bin/env python3
"""Perf/launch/allocation budget gate over the bench JSON artifacts.

Consumes the machine-readable documents run_benches.sh (or ci/run_ci.sh)
writes into bench_artifacts/ — `fig7bc_kernels.json` and `fusion.json`,
located via `BENCH_summary.json` or passed directly — and fails (exit 1)
when any metric regresses beyond the thresholds in ci/budgets.json:

  * per-step kernel launches, per configuration (`max_step_kernels`), plus
    the structural requirement that the fused configuration keeps at least
    `min_fused_reduction` x fewer launches than the baseline
  * arena bytes per step (`max_arena_peak_scope_bytes`), skipped when the
    artifact records the arena as disabled (FEKF_ARENA=0)
  * step wall time (`max_total_s`), sized with generous slack because CI
    hosts vary; launch/byte budgets are the tight ones (deterministic for a
    given bench scale)
  * bench_fusion launch budgets per fusion site (`max_fused_launches`)
  * kernel-dispatch variant budgets (the "dispatch" section, DESIGN.md
    §13): every budgeted `<kernel>.<variant>` must still be registered
    (a vanished variant is a regression, not a skip), eligible variants
    must meet `max_s_per_call`, and each kernel named in
    `min_best_speedup` must keep its best-variant-vs-scalar speedup —
    this is what makes the SIMD win a gate, not an anecdote
  * chaos budgets over the bench_chaos artifact (`--chaos`, the "chaos"
    section, DESIGN.md §10): per lossy-link cell the retry-time ratio and
    comm overhead vs the clean cell, and for the churn scenario the
    membership recovery bill (reshard + join catch-up + detection
    seconds). These are SIMULATED seconds derived from byte counts and
    seeded RNG draws — deterministic for a fixed bench scale — so their
    budgets are tight, unlike the wall-clock gates
  * serving budgets over the bench_serving artifact (`--serving`, the
    "serving" section, DESIGN.md §14): the launch-amortization ratio of
    the batched pass (kernel launches per request, serial over batched —
    deterministic for fixed bench flags, so its floor is tight), the
    wall-clock batched speedup / p99 latency / batch occupancy (loose,
    host-dependent), and the structural zeros: publish_stalls and
    pinned-version violations must stay exactly 0, and publish latency
    under reader load stays within max_loaded_over_idle of idle (the
    "publishing is independent of readers" claim as a number)
  * observability budgets (the "obs" section, DESIGN.md §11): the tracing
    tax — traced-over-untraced wall time of the fused training step from
    the fig7bc artifact's A/B passes — must stay under
    `max_traced_over_untraced`, and the request-level serving SLOs
    (interpolated histogram p99 of request latency and queue wait from
    bench_serving) must stay under their `max_*_p99_*` ceilings. The SLOs
    come from the production MetricsRegistry histograms, so the gate also
    proves the export path itself still works

--kernels-doc FILE cross-checks docs/KERNELS.md against the artifact's
dispatch section: every registered variant must appear in the doc's
reference table with the same exactness class and budget key, and the doc
must not list variants the registry no longer has.

--obs-doc FILE cross-checks docs/OBSERVABILITY.md the same way against
the serving artifact's "obs" inventory (span names seen by a traced
serving pass, every registered metric name, every env knob): observed
spans and metrics must each have a row in the doc's tables, and the knob
table must match env::knobs() exactly in both directions.

Re-baselining (after an INTENTIONAL change to kernel granularity, bench
scale, or model defaults): run the benches, eyeball the new numbers, then
  python3 ci/check_budgets.py --rebaseline
which rewrites ci/budgets.json from the current artifacts with the default
slack factors (launches +5%, arena bytes +25%, wall time x4). Commit the
regenerated file together with the change that moved the numbers and say
why in the commit message — the diff IS the perf review.

--self-test proves the gate can fail: it first validates the real
artifacts, then re-runs the checks on a copy with a deliberately injected
launch-count regression (fused step_kernels x3) and exits 0 only if that
regression is caught.
"""

import argparse
import copy
import json
import math
import pathlib
import sys

DEFAULT_SUMMARY = "bench_artifacts/BENCH_summary.json"
DEFAULT_BUDGETS = pathlib.Path(__file__).parent / "budgets.json"

LAUNCH_SLACK = 1.05   # launches are deterministic; tolerate tiny drift
ARENA_SLACK = 1.25    # slab rounding makes byte counts slightly lumpy
TIME_SLACK = 4.0      # CI hosts vary widely; wall time is the loose gate


class Violation(Exception):
    pass


def load_json(path):
    with open(path) as f:
        return json.load(f)


def check_fig7bc(doc, budgets, failures):
    per_config = {c["name"]: c for c in doc["configs"]}
    for name, limits in budgets.get("configs", {}).items():
        actual = per_config.get(name)
        if actual is None:
            failures.append(f"fig7bc: configuration '{name}' missing from "
                            f"artifact (bench and budgets out of sync)")
            continue
        gate(failures, f"fig7bc[{name}].step_kernels",
             actual["step_kernels"], limits.get("max_step_kernels"))
        gate(failures, f"fig7bc[{name}].total_s",
             actual["total_s"], limits.get("max_total_s"))
        if doc.get("arena_enabled"):
            gate(failures, f"fig7bc[{name}].arena_peak_scope_bytes",
                 actual["arena_peak_scope_bytes"],
                 limits.get("max_arena_peak_scope_bytes"))
            gate(failures, f"fig7bc[{name}].arena_retired_slabs",
                 actual["arena_retired_slabs"], 0)
    min_reduction = budgets.get("min_fused_reduction")
    if min_reduction and "baseline" in per_config and "fused" in per_config:
        ratio = (per_config["baseline"]["step_kernels"]
                 / max(1, per_config["fused"]["step_kernels"]))
        if ratio < min_reduction:
            failures.append(
                f"fig7bc: fused launch reduction {ratio:.2f}x is below the "
                f"required {min_reduction}x (baseline "
                f"{per_config['baseline']['step_kernels']} vs fused "
                f"{per_config['fused']['step_kernels']})")


def check_fusion(doc, budgets, failures):
    per_cmp = {c["name"]: c for c in doc["comparisons"]}
    for name, limits in budgets.get("comparisons", {}).items():
        actual = per_cmp.get(name)
        if actual is None:
            # arena_vs_heap is absent when FEKF_ARENA=0; that is not a
            # regression, the arena legs are simply not measurable.
            if name == "arena_vs_heap" and not doc.get("arena_enabled"):
                continue
            failures.append(f"fusion: comparison '{name}' missing from "
                            f"artifact (bench and budgets out of sync)")
            continue
        gate(failures, f"fusion[{name}].fused_launches",
             actual["fused_launches"], limits.get("max_fused_launches"))
        # arena_vs_heap times the allocator under identical kernels, so its
        # two legs launch the same count by design.
        if (name != "arena_vs_heap"
                and actual["fused_launches"] >= actual["unfused_launches"]):
            failures.append(
                f"fusion[{name}]: fused path launches "
                f"{actual['fused_launches']} >= unfused "
                f"{actual['unfused_launches']} — fusion regressed away")


def check_dispatch(doc, budgets, failures):
    if not budgets:
        return
    dispatch = doc.get("dispatch")
    if dispatch is None:
        failures.append("dispatch: budgets define kernel-variant limits but "
                        "the fig7bc artifact has no 'dispatch' section "
                        "(bench predates the dispatch registry?)")
        return
    per_kernel = {k["kernel"]: k for k in dispatch.get("kernels", [])}
    for kernel, limits in budgets.get("kernels", {}).items():
        actual = per_kernel.get(kernel)
        if actual is None:
            failures.append(f"dispatch: kernel '{kernel}' missing from "
                            f"artifact (family unregistered? budgets out of "
                            f"sync)")
            continue
        per_variant = {v["name"]: v for v in actual.get("variants", [])}
        for vname, vlimits in limits.get("variants", {}).items():
            v = per_variant.get(vname)
            if v is None:
                # A budgeted variant that is no longer registered is a
                # regression (someone deleted/renamed it), not a skip.
                failures.append(
                    f"dispatch[{kernel}]: variant '{vname}' missing from "
                    f"artifact — unregistered variant or budgets out of sync")
                continue
            if not v.get("eligible", False):
                # Not eligible on this host (CPU lacks the ISA): the bench
                # does not time it, so there is nothing to gate. The
                # registration itself was still verified above.
                what = f"dispatch[{kernel}.{vname}].s_per_call"
                print(f"  {what:<48} skipped (not eligible on this host)")
                continue
            gate(failures, f"dispatch[{kernel}.{vname}].s_per_call",
                 v["s_per_call"], vlimits.get("max_s_per_call"))
        min_speedup = limits.get("min_best_speedup")
        if min_speedup is not None:
            eligible_nonscalar = any(
                v.get("eligible") and v.get("level") != "scalar"
                for v in actual.get("variants", []))
            if not eligible_nonscalar:
                print(f"  dispatch[{kernel}].best_speedup skipped "
                      f"(no eligible non-scalar variant on this host)")
            else:
                gate_min(failures, f"dispatch[{kernel}].best_speedup",
                         actual.get("best_speedup", 0.0), min_speedup)


def check_chaos(doc, budgets, failures):
    if not budgets:
        return
    if doc is None:
        failures.append("chaos: budgets define chaos limits but no --chaos "
                        "artifact was provided")
        return
    per_cell = {c["name"]: c for c in doc.get("cells", [])}
    for name, limits in budgets.get("cells", {}).items():
        actual = per_cell.get(name)
        if actual is None:
            failures.append(f"chaos: cell '{name}' missing from artifact "
                            f"(bench and budgets out of sync)")
            continue
        gate(failures, f"chaos[{name}].retry_ratio",
             actual["retry_ratio"], limits.get("max_retry_ratio"))
        gate(failures, f"chaos[{name}].drop_overhead_frac",
             actual["drop_overhead_frac"],
             limits.get("max_drop_overhead_frac"))
        # Structural floor: a lossy cell that records zero drops means the
        # chaos sweep silently stopped injecting.
        gate_min(failures, f"chaos[{name}].msg_drops",
                 actual["msg_drops"], limits.get("min_msg_drops"))
    limits = budgets.get("churn", {})
    if limits:
        churn = doc.get("churn")
        if churn is None:
            failures.append("chaos: budgets define churn limits but the "
                            "artifact has no 'churn' section")
            return
        gate(failures, "chaos[churn].recovery_seconds",
             churn["recovery_seconds"], limits.get("max_recovery_seconds"))
        gate_min(failures, "chaos[churn].surviving_ranks",
                 churn["surviving_ranks"], limits.get("min_surviving_ranks"))
        gate_min(failures, "chaos[churn].join_events",
                 churn["join_events"], limits.get("min_join_events"))


def check_serving(doc, budgets, failures):
    if not budgets:
        return
    if doc is None:
        failures.append("serving: budgets define serving limits but no "
                        "--serving artifact was provided")
        return
    # Deterministic amortization floor (the ISSUE's ">= 2x batched over
    # the unbatched single-walker path" in its host-independent form).
    gate_min(failures, "serving.launch_amortization",
             doc["launch_amortization"],
             budgets.get("min_launch_amortization"))
    # Wall-clock quantities: loose floors/ceilings, CI hosts vary.
    gate_min(failures, "serving.batched_speedup",
             doc["batched_speedup"], budgets.get("min_batched_speedup"))
    gate_min(failures, "serving.occupancy_mean",
             doc["batched"]["occupancy_mean"],
             budgets.get("min_occupancy_mean"))
    gate(failures, "serving.p99_latency_s",
         doc["batched"]["p99_latency_s"], budgets.get("max_p99_latency_s"))
    gate(failures, "serving.loaded_over_idle",
         doc["publish"]["loaded_over_idle"],
         budgets.get("max_loaded_over_idle"))
    # Structural exact gates: a reader can never stall a publish, and a
    # pinned request can never be served the wrong snapshot.
    gate(failures, "serving.publish_stalls",
         doc["publish"]["publish_stalls"],
         budgets.get("max_publish_stalls"))
    gate(failures, "serving.pinned_wrong_version",
         doc["mixed"]["pinned_wrong_version"],
         budgets.get("max_pinned_wrong_version"))


def check_obs(fig7bc, serving, budgets, failures):
    if not budgets:
        return
    obs = fig7bc.get("obs")
    if obs is None:
        failures.append("obs: budgets define a tracing-tax limit but the "
                        "fig7bc artifact has no 'obs' section (bench "
                        "predates the traced/untraced A/B passes?)")
    else:
        gate(failures, "obs.traced_over_untraced",
             obs["traced_over_untraced"],
             budgets.get("max_traced_over_untraced"))
    if serving is None:
        if (budgets.get("max_request_p99_latency_s") is not None
                or budgets.get("max_queue_wait_p99_s") is not None):
            failures.append("obs: budgets define serving SLOs but no "
                            "--serving artifact was provided")
        return
    batched = serving.get("batched", {})
    slo = batched.get("request_latency")
    if slo is None:
        failures.append("obs: serving artifact has no "
                        "batched.request_latency section (bench predates "
                        "the histogram SLO export?)")
        return
    gate(failures, "obs.request_latency.p99_s",
         slo["p99_s"], budgets.get("max_request_p99_latency_s"))
    gate(failures, "obs.queue_wait.p99_s",
         batched["queue_wait"]["p99_s"],
         budgets.get("max_queue_wait_p99_s"))


def gate(failures, what, actual, limit):
    if limit is None:
        return
    status = "ok" if actual <= limit else "FAIL"
    print(f"  {what:<48} {float(actual):>14.6g}  "
          f"budget {float(limit):>14.6g}  {status}")
    if actual > limit:
        failures.append(f"{what}: {actual} exceeds budget {limit}")


def gate_min(failures, what, actual, floor):
    if floor is None:
        return
    status = "ok" if actual >= floor else "FAIL"
    print(f"  {what:<48} {float(actual):>14.6g}  "
          f"floor  {float(floor):>14.6g}  {status}")
    if actual < floor:
        failures.append(f"{what}: {actual} is below the required {floor}")


def variant_exactness(v):
    if v.get("exactness") == "bit_exact":
        return "bit_exact"
    return f"tolerance({v.get('tolerance', 0.0):g})"


def check_kernels_doc(doc, doc_path, failures):
    """Cross-check docs/KERNELS.md against the artifact's dispatch section.

    The doc's reference table is machine-diffable by construction: each row
    is `| `kernel` | `variant` | level | isa | exactness | `budget key` |
    speedup |`. Every registered variant must have a row with the matching
    exactness class and the canonical budget key, and the doc must not
    list variants the registry no longer has.
    """
    dispatch = doc.get("dispatch")
    if dispatch is None:
        failures.append(f"kernels-doc: artifact has no 'dispatch' section "
                        f"to diff {doc_path} against")
        return
    registered = {}   # (kernel, variant) -> exactness string
    for k in dispatch.get("kernels", []):
        for v in k.get("variants", []):
            registered[(k["kernel"], v["name"])] = variant_exactness(v)

    documented = {}   # (kernel, variant) -> (exactness, budget_key)
    for line in pathlib.Path(doc_path).read_text().splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 6 or not cells[0].startswith("`"):
            continue   # not a data row of the reference table
        kernel = cells[0].strip("`")
        variant = cells[1].strip("`")
        exactness = cells[4].replace("`", "")
        budget_key = cells[5].strip("`")
        documented[(kernel, variant)] = (exactness, budget_key)

    for key, exactness in sorted(registered.items()):
        kernel, variant = key
        row = documented.get(key)
        if row is None:
            failures.append(f"kernels-doc: registered variant "
                            f"{kernel}.{variant} has no row in {doc_path}")
            continue
        doc_exact, doc_budget_key = row
        if doc_exact != exactness:
            failures.append(
                f"kernels-doc: {kernel}.{variant} documented as "
                f"'{doc_exact}' but registered as '{exactness}'")
        want_key = f"dispatch.{kernel}.{variant}"
        if doc_budget_key not in (want_key, "-"):
            failures.append(
                f"kernels-doc: {kernel}.{variant} budget key "
                f"'{doc_budget_key}' should be '{want_key}' (or '-')")
    for key in sorted(set(documented) - set(registered)):
        failures.append(f"kernels-doc: {doc_path} lists {key[0]}.{key[1]} "
                        f"but it is not registered (stale row)")
    n_ok = len(set(registered) & set(documented))
    print(f"kernels-doc: {n_ok}/{len(registered)} registered variants "
          f"documented in {doc_path}")


def check_obs_doc(serving, doc_path, failures):
    """Cross-check docs/OBSERVABILITY.md against the serving artifact.

    The artifact's "obs" section inventories the observability surface at
    bench time: span names observed by a traced serving pass, every metric
    name in the registry, and every registered env knob. The doc's tables
    (## Spans / ## Metrics / ## Knobs, rows whose first cell is
    backticked) must cover them: observed spans and metrics each need a
    row, and the knob table must equal env::knobs() exactly — a knob row
    for a knob that no longer exists is as stale as a missing one.
    """
    obs = serving.get("obs")
    if obs is None:
        failures.append(f"obs-doc: serving artifact has no 'obs' inventory "
                        f"to diff {doc_path} against")
        return
    documented = {"Spans": set(), "Metrics": set(), "Knobs": set()}
    section = None
    for line in pathlib.Path(doc_path).read_text().splitlines():
        if line.startswith("## "):
            title = line[3:].strip()
            section = title if title in documented else None
            continue
        if section is None:
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) < 2 or not cells[0].startswith("`"):
            continue   # not a data row
        documented[section].add(cells[0].strip("`"))

    for kind, key in (("Spans", "spans"), ("Metrics", "metrics")):
        for name in sorted(set(obs.get(key, [])) - documented[kind]):
            failures.append(f"obs-doc: {kind.lower()[:-1]} '{name}' is "
                            f"emitted but has no row in {doc_path}")
    knobs = set(obs.get("knobs", []))
    for name in sorted(knobs - documented["Knobs"]):
        failures.append(f"obs-doc: knob '{name}' is registered but has no "
                        f"row in {doc_path}")
    for name in sorted(documented["Knobs"] - knobs):
        failures.append(f"obs-doc: {doc_path} lists knob '{name}' but it "
                        f"is not registered (stale row)")
    n_spans = len(set(obs.get("spans", [])) & documented["Spans"])
    n_metrics = len(set(obs.get("metrics", [])) & documented["Metrics"])
    print(f"obs-doc: {n_spans}/{len(obs.get('spans', []))} observed spans, "
          f"{n_metrics}/{len(obs.get('metrics', []))} metrics, "
          f"{len(knobs & documented['Knobs'])}/{len(knobs)} knobs "
          f"documented in {doc_path}")


def run_checks(fig7bc, fusion, budgets, chaos=None, serving=None):
    failures = []
    print("fig7bc_kernels budgets:")
    check_fig7bc(fig7bc, budgets.get("fig7bc_kernels", {}), failures)
    print("fusion budgets:")
    check_fusion(fusion, budgets.get("fusion", {}), failures)
    print("dispatch budgets:")
    check_dispatch(fig7bc, budgets.get("dispatch", {}), failures)
    if chaos is not None or budgets.get("chaos"):
        print("chaos budgets:")
        check_chaos(chaos, budgets.get("chaos", {}), failures)
    if serving is not None or budgets.get("serving"):
        print("serving budgets:")
        check_serving(serving, budgets.get("serving", {}), failures)
    if budgets.get("obs"):
        print("obs budgets:")
        check_obs(fig7bc, serving, budgets.get("obs", {}), failures)
    return failures


def rebaseline(fig7bc, fusion, path, chaos=None, serving=None):
    budgets = {
        "_comment": [
            "Perf/launch/allocation budgets for ci/check_budgets.py.",
            "Regenerated by --rebaseline from the current bench artifacts;",
            "see that script's docstring for when re-baselining is",
            "legitimate and how to justify it in the commit.",
        ],
        "fig7bc_kernels": {
            "min_fused_reduction": 2.0,
            "configs": {
                c["name"]: {
                    "max_step_kernels":
                        math.ceil(c["step_kernels"] * LAUNCH_SLACK),
                    "max_total_s": round(c["total_s"] * TIME_SLACK, 3),
                    "max_arena_peak_scope_bytes":
                        math.ceil(c["arena_peak_scope_bytes"] * ARENA_SLACK),
                } for c in fig7bc["configs"]
            },
        },
        "fusion": {
            "comparisons": {
                c["name"]: {
                    "max_fused_launches":
                        math.ceil(c["fused_launches"] * LAUNCH_SLACK),
                } for c in fusion["comparisons"]
            },
        },
    }
    dispatch = fig7bc.get("dispatch")
    if dispatch is not None:
        kernels = {}
        for k in dispatch.get("kernels", []):
            entry = {
                "variants": {
                    v["name"]: {
                        "max_s_per_call":
                            float(f"{v['s_per_call'] * TIME_SLACK:.3g}"),
                    }
                    for v in k.get("variants", []) if v.get("eligible")
                },
            }
            # The paper-shape acceptance floor: any kernel whose best
            # variant clears 1.5x on this host keeps that requirement, so
            # the SIMD win cannot silently erode (ISSUE: >=1.5x on at least
            # one hot phase, enforced here).
            if k.get("best_speedup", 0.0) >= 1.5:
                entry["min_best_speedup"] = 1.5
            kernels[k["kernel"]] = entry
        budgets["dispatch"] = {"kernels": kernels}
    if chaos is not None:
        # Chaos figures are simulated (deterministic for a fixed bench
        # scale), so they get the tight launch-style slack, not TIME_SLACK.
        cells = {}
        for c in chaos.get("cells", []):
            limits = {
                "max_retry_ratio":
                    float(f"{c['retry_ratio'] * LAUNCH_SLACK:.3g}"),
                "max_drop_overhead_frac":
                    float(f"{c['drop_overhead_frac'] * LAUNCH_SLACK:.3g}"),
            }
            if c.get("drop_p", 0.0) > 0.0 and c.get("msg_drops", 0) > 0:
                limits["min_msg_drops"] = 1
            cells[c["name"]] = limits
        churn = chaos.get("churn", {})
        budgets["chaos"] = {
            "cells": cells,
            "churn": {
                "max_recovery_seconds":
                    float(f"{churn['recovery_seconds'] * LAUNCH_SLACK:.3g}"),
                "min_surviving_ranks": churn["surviving_ranks"],
                "min_join_events": churn["join_events"],
            },
        }
    if serving is not None:
        # Launch amortization is a deterministic launch count ratio, so it
        # gets a modest floor below the measurement; the wall-clock ratios
        # (speedup, occupancy, p99, publish load factor) are host noise and
        # get TIME_SLACK-style headroom. The structural zeros are exact.
        p99 = serving["batched"]["p99_latency_s"] * TIME_SLACK
        loaded = serving["publish"]["loaded_over_idle"] * TIME_SLACK
        budgets["serving"] = {
            "min_launch_amortization":
                float(f"{serving['launch_amortization'] / 1.4:.3g}"),
            "min_batched_speedup": 1.05,
            "min_occupancy_mean":
                float(f"{serving['batched']['occupancy_mean'] / 4.0:.3g}"),
            "max_p99_latency_s": float(f"{p99:.3g}"),
            "max_publish_stalls": 0,
            "max_loaded_over_idle": max(15.0, float(f"{loaded:.3g}")),
            "max_pinned_wrong_version": 0,
        }
    if (fig7bc.get("obs") is not None and serving is not None
            and serving.get("batched", {}).get("request_latency")):
        # The tracing-tax ceiling is a ratio contract (disabled-path ==
        # one relaxed atomic load), not a measurement with host headroom,
        # so it is pinned at 1.05 rather than derived from the sample.
        lat_p99 = serving["batched"]["request_latency"]["p99_s"] * TIME_SLACK
        wait_p99 = serving["batched"]["queue_wait"]["p99_s"] * TIME_SLACK
        budgets["obs"] = {
            "max_traced_over_untraced": 1.05,
            "max_request_p99_latency_s": float(f"{lat_p99:.3g}"),
            "max_queue_wait_p99_s": float(f"{wait_p99:.3g}"),
        }
    with open(path, "w") as f:
        json.dump(budgets, f, indent=2)
        f.write("\n")
    print(f"budgets re-baselined into {path}")


def self_test(fig7bc, fusion, budgets, chaos=None, serving=None):
    clean = run_checks(fig7bc, fusion, budgets, chaos, serving)
    if clean:
        print("self-test: artifacts do not pass the current budgets, cannot "
              "run the injection test:", file=sys.stderr)
        for f in clean:
            print(f"  {f}", file=sys.stderr)
        return 1
    # Inject a launch-count regression: the fused configuration suddenly
    # issues 3x the launches (e.g. someone broke a composite kernel back
    # into primitives). The gate MUST catch this.
    broken = copy.deepcopy(fig7bc)
    for c in broken["configs"]:
        if c["name"] == "fused":
            c["step_kernels"] *= 3
    print("\nself-test: injected 3x fused launch-count regression, "
          "re-checking (failures below are EXPECTED):")
    caught = run_checks(broken, fusion, budgets, chaos, serving)
    if not caught:
        print("self-test: FAILED — the injected regression was not caught",
              file=sys.stderr)
        return 1
    print(f"\nself-test: ok — injected regression caught "
          f"({len(caught)} violation(s), e.g. '{caught[0]}')")
    # Inject a recovery-overhead regression: the churn scenario's membership
    # recovery bill (reshard + catch-up + detection) suddenly costs 10x —
    # e.g. someone broke the reshard accounting or the catch-up transfer
    # started shipping P replicas. The chaos gate MUST catch this loudly.
    if (chaos is not None and budgets.get("chaos", {}).get("churn", {})
            .get("max_recovery_seconds") is not None):
        broken_chaos = copy.deepcopy(chaos)
        broken_chaos["churn"]["recovery_seconds"] *= 10
        print("\nself-test: injected 10x churn recovery-overhead "
              "regression, re-checking (failures below are EXPECTED):")
        caught = run_checks(fig7bc, fusion, budgets, broken_chaos, serving)
        recovery = [f for f in caught if "recovery_seconds" in f]
        if not recovery:
            print("self-test: FAILED — the injected recovery-overhead "
                  "regression was not caught", file=sys.stderr)
            return 1
        print(f"\nself-test: ok — recovery-overhead regression caught "
              f"('{recovery[0]}')")
    # Inject a publish-stall regression: a reader suddenly blocks the
    # publisher (e.g. someone swapped the lock-free snapshot swap for a
    # mutex held across reads, or made publish wait for in-flight
    # evaluations). publish_stalls must be exactly 0, so even one stall
    # MUST fail the serving gate.
    if (serving is not None and budgets.get("serving", {})
            .get("max_publish_stalls") is not None):
        broken_serving = copy.deepcopy(serving)
        broken_serving["publish"]["publish_stalls"] += 7
        print("\nself-test: injected synthetic publish stalls under reader "
              "load, re-checking (failures below are EXPECTED):")
        caught = run_checks(fig7bc, fusion, budgets, chaos, broken_serving)
        stalls = [f for f in caught if "publish_stalls" in f]
        if not stalls:
            print("self-test: FAILED — the injected publish-stall "
                  "regression was not caught", file=sys.stderr)
            return 1
        print(f"\nself-test: ok — publish-stall regression caught "
              f"('{stalls[0]}')")
    # Inject a request-latency SLO regression: the batched pass's p99
    # request latency suddenly reads 100x (e.g. the batching loop grew a
    # sleep, or the queue-wait histogram started double-counting). The obs
    # gate MUST catch the fabricated p99.
    if (serving is not None and budgets.get("obs", {})
            .get("max_request_p99_latency_s") is not None):
        broken_serving = copy.deepcopy(serving)
        broken_serving["batched"]["request_latency"]["p99_s"] *= 100
        print("\nself-test: injected 100x request-latency p99 regression, "
              "re-checking (failures below are EXPECTED):")
        caught = run_checks(fig7bc, fusion, budgets, chaos, broken_serving)
        slo = [f for f in caught if "request_latency" in f]
        if not slo:
            print("self-test: FAILED — the injected p99 SLO regression was "
                  "not caught", file=sys.stderr)
            return 1
        print(f"\nself-test: ok — p99 SLO regression caught ('{slo[0]}')")
    # Inject a missing-variant regression: a budgeted SIMD variant vanishes
    # from the artifact (someone deleted or renamed its registration). The
    # dispatch gate MUST treat that as a failure, not a skip.
    injected = None
    for kernel, limits in budgets.get("dispatch", {}).get(
            "kernels", {}).items():
        for vname in limits.get("variants", {}):
            if vname != "scalar":
                injected = (kernel, vname)
                break
        if injected:
            break
    if injected is None:
        print("self-test: SKIPPED missing-variant injection — budgets "
              "define no non-scalar dispatch variants", file=sys.stderr)
        return 0
    broken = copy.deepcopy(fig7bc)
    for k in broken["dispatch"]["kernels"]:
        if k["kernel"] == injected[0]:
            k["variants"] = [v for v in k["variants"]
                             if v["name"] != injected[1]]
    print(f"\nself-test: removed variant {injected[0]}.{injected[1]} from "
          f"the artifact, re-checking (failures below are EXPECTED):")
    caught = run_checks(broken, fusion, budgets, chaos, serving)
    missing = [f for f in caught if "missing from artifact" in f
               and injected[1] in f]
    if not missing:
        print("self-test: FAILED — the missing-variant regression was not "
              "caught", file=sys.stderr)
        return 1
    print(f"\nself-test: ok — missing variant caught ('{missing[0]}')")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--summary", default=DEFAULT_SUMMARY,
                        help="BENCH_summary.json from run_benches.sh")
    parser.add_argument("--fig7bc", default=None,
                        help="fig7bc_kernels.json (overrides --summary)")
    parser.add_argument("--fusion", default=None,
                        help="fusion.json (overrides --summary)")
    parser.add_argument("--chaos", default=None,
                        help="chaos.json from bench_chaos (optional; "
                             "required when budgets have a chaos section)")
    parser.add_argument("--serving", default=None,
                        help="serving.json from bench_serving (optional; "
                             "required when budgets have a serving section)")
    parser.add_argument("--budgets", default=str(DEFAULT_BUDGETS))
    parser.add_argument("--rebaseline", action="store_true",
                        help="rewrite --budgets from the current artifacts")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected "
                             "launch-count regression, a removed dispatch "
                             "variant, synthetic publish stalls, and a "
                             "fabricated request-latency p99")
    parser.add_argument("--kernels-doc", default=None, metavar="FILE",
                        help="cross-check docs/KERNELS.md rows against the "
                             "artifact's dispatch section")
    parser.add_argument("--obs-doc", default=None, metavar="FILE",
                        help="cross-check docs/OBSERVABILITY.md tables "
                             "against the serving artifact's obs inventory")
    args = parser.parse_args()

    fig7bc_path, fusion_path = args.fig7bc, args.fusion
    if fig7bc_path is None or fusion_path is None:
        summary = load_json(args.summary)
        arts = summary.get("artifacts", {})
        fig7bc_path = fig7bc_path or arts["fig7bc_kernels"]
        fusion_path = fusion_path or arts["fusion"]
        if summary.get("failures", 0):
            print(f"check_budgets: run_benches.sh recorded "
                  f"{summary['failures']} harness failure(s)",
                  file=sys.stderr)
            return 1
    fig7bc = load_json(fig7bc_path)
    fusion = load_json(fusion_path)
    chaos = load_json(args.chaos) if args.chaos else None
    serving = load_json(args.serving) if args.serving else None

    if args.rebaseline:
        rebaseline(fig7bc, fusion, args.budgets, chaos, serving)
        return 0
    budgets = load_json(args.budgets)
    if args.self_test:
        return self_test(fig7bc, fusion, budgets, chaos, serving)
    failures = run_checks(fig7bc, fusion, budgets, chaos, serving)
    if args.kernels_doc:
        check_kernels_doc(fig7bc, args.kernels_doc, failures)
    if args.obs_doc:
        if serving is None:
            failures.append("--obs-doc needs a --serving artifact for the "
                            "obs inventory")
        else:
            check_obs_doc(serving, args.obs_doc, failures)
    if failures:
        print(f"check_budgets: {len(failures)} violation(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_budgets: all budgets satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
