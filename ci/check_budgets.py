#!/usr/bin/env python3
"""Perf/launch/allocation budget gate over the bench JSON artifacts.

Consumes the machine-readable documents run_benches.sh (or ci/run_ci.sh)
writes into bench_artifacts/ — `fig7bc_kernels.json` and `fusion.json`,
located via `BENCH_summary.json` or passed directly — and fails (exit 1)
when any metric regresses beyond the thresholds in ci/budgets.json:

  * per-step kernel launches, per configuration (`max_step_kernels`), plus
    the structural requirement that the fused configuration keeps at least
    `min_fused_reduction` x fewer launches than the baseline
  * arena bytes per step (`max_arena_peak_scope_bytes`), skipped when the
    artifact records the arena as disabled (FEKF_ARENA=0)
  * step wall time (`max_total_s`), sized with generous slack because CI
    hosts vary; launch/byte budgets are the tight ones (deterministic for a
    given bench scale)
  * bench_fusion launch budgets per fusion site (`max_fused_launches`)

Re-baselining (after an INTENTIONAL change to kernel granularity, bench
scale, or model defaults): run the benches, eyeball the new numbers, then
  python3 ci/check_budgets.py --rebaseline
which rewrites ci/budgets.json from the current artifacts with the default
slack factors (launches +5%, arena bytes +25%, wall time x4). Commit the
regenerated file together with the change that moved the numbers and say
why in the commit message — the diff IS the perf review.

--self-test proves the gate can fail: it first validates the real
artifacts, then re-runs the checks on a copy with a deliberately injected
launch-count regression (fused step_kernels x3) and exits 0 only if that
regression is caught.
"""

import argparse
import copy
import json
import math
import pathlib
import sys

DEFAULT_SUMMARY = "bench_artifacts/BENCH_summary.json"
DEFAULT_BUDGETS = pathlib.Path(__file__).parent / "budgets.json"

LAUNCH_SLACK = 1.05   # launches are deterministic; tolerate tiny drift
ARENA_SLACK = 1.25    # slab rounding makes byte counts slightly lumpy
TIME_SLACK = 4.0      # CI hosts vary widely; wall time is the loose gate


class Violation(Exception):
    pass


def load_json(path):
    with open(path) as f:
        return json.load(f)


def check_fig7bc(doc, budgets, failures):
    per_config = {c["name"]: c for c in doc["configs"]}
    for name, limits in budgets.get("configs", {}).items():
        actual = per_config.get(name)
        if actual is None:
            failures.append(f"fig7bc: configuration '{name}' missing from "
                            f"artifact (bench and budgets out of sync)")
            continue
        gate(failures, f"fig7bc[{name}].step_kernels",
             actual["step_kernels"], limits.get("max_step_kernels"))
        gate(failures, f"fig7bc[{name}].total_s",
             actual["total_s"], limits.get("max_total_s"))
        if doc.get("arena_enabled"):
            gate(failures, f"fig7bc[{name}].arena_peak_scope_bytes",
                 actual["arena_peak_scope_bytes"],
                 limits.get("max_arena_peak_scope_bytes"))
            gate(failures, f"fig7bc[{name}].arena_retired_slabs",
                 actual["arena_retired_slabs"], 0)
    min_reduction = budgets.get("min_fused_reduction")
    if min_reduction and "baseline" in per_config and "fused" in per_config:
        ratio = (per_config["baseline"]["step_kernels"]
                 / max(1, per_config["fused"]["step_kernels"]))
        if ratio < min_reduction:
            failures.append(
                f"fig7bc: fused launch reduction {ratio:.2f}x is below the "
                f"required {min_reduction}x (baseline "
                f"{per_config['baseline']['step_kernels']} vs fused "
                f"{per_config['fused']['step_kernels']})")


def check_fusion(doc, budgets, failures):
    per_cmp = {c["name"]: c for c in doc["comparisons"]}
    for name, limits in budgets.get("comparisons", {}).items():
        actual = per_cmp.get(name)
        if actual is None:
            # arena_vs_heap is absent when FEKF_ARENA=0; that is not a
            # regression, the arena legs are simply not measurable.
            if name == "arena_vs_heap" and not doc.get("arena_enabled"):
                continue
            failures.append(f"fusion: comparison '{name}' missing from "
                            f"artifact (bench and budgets out of sync)")
            continue
        gate(failures, f"fusion[{name}].fused_launches",
             actual["fused_launches"], limits.get("max_fused_launches"))
        # arena_vs_heap times the allocator under identical kernels, so its
        # two legs launch the same count by design.
        if (name != "arena_vs_heap"
                and actual["fused_launches"] >= actual["unfused_launches"]):
            failures.append(
                f"fusion[{name}]: fused path launches "
                f"{actual['fused_launches']} >= unfused "
                f"{actual['unfused_launches']} — fusion regressed away")


def gate(failures, what, actual, limit):
    if limit is None:
        return
    status = "ok" if actual <= limit else "FAIL"
    print(f"  {what:<48} {float(actual):>14.6g}  "
          f"budget {float(limit):>14.6g}  {status}")
    if actual > limit:
        failures.append(f"{what}: {actual} exceeds budget {limit}")


def run_checks(fig7bc, fusion, budgets):
    failures = []
    print("fig7bc_kernels budgets:")
    check_fig7bc(fig7bc, budgets.get("fig7bc_kernels", {}), failures)
    print("fusion budgets:")
    check_fusion(fusion, budgets.get("fusion", {}), failures)
    return failures


def rebaseline(fig7bc, fusion, path):
    budgets = {
        "_comment": [
            "Perf/launch/allocation budgets for ci/check_budgets.py.",
            "Regenerated by --rebaseline from the current bench artifacts;",
            "see that script's docstring for when re-baselining is",
            "legitimate and how to justify it in the commit.",
        ],
        "fig7bc_kernels": {
            "min_fused_reduction": 2.0,
            "configs": {
                c["name"]: {
                    "max_step_kernels":
                        math.ceil(c["step_kernels"] * LAUNCH_SLACK),
                    "max_total_s": round(c["total_s"] * TIME_SLACK, 3),
                    "max_arena_peak_scope_bytes":
                        math.ceil(c["arena_peak_scope_bytes"] * ARENA_SLACK),
                } for c in fig7bc["configs"]
            },
        },
        "fusion": {
            "comparisons": {
                c["name"]: {
                    "max_fused_launches":
                        math.ceil(c["fused_launches"] * LAUNCH_SLACK),
                } for c in fusion["comparisons"]
            },
        },
    }
    with open(path, "w") as f:
        json.dump(budgets, f, indent=2)
        f.write("\n")
    print(f"budgets re-baselined into {path}")


def self_test(fig7bc, fusion, budgets):
    clean = run_checks(fig7bc, fusion, budgets)
    if clean:
        print("self-test: artifacts do not pass the current budgets, cannot "
              "run the injection test:", file=sys.stderr)
        for f in clean:
            print(f"  {f}", file=sys.stderr)
        return 1
    # Inject a launch-count regression: the fused configuration suddenly
    # issues 3x the launches (e.g. someone broke a composite kernel back
    # into primitives). The gate MUST catch this.
    broken = copy.deepcopy(fig7bc)
    for c in broken["configs"]:
        if c["name"] == "fused":
            c["step_kernels"] *= 3
    print("\nself-test: injected 3x fused launch-count regression, "
          "re-checking (failures below are EXPECTED):")
    caught = run_checks(broken, fusion, budgets)
    if not caught:
        print("self-test: FAILED — the injected regression was not caught",
              file=sys.stderr)
        return 1
    print(f"\nself-test: ok — injected regression caught "
          f"({len(caught)} violation(s), e.g. '{caught[0]}')")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--summary", default=DEFAULT_SUMMARY,
                        help="BENCH_summary.json from run_benches.sh")
    parser.add_argument("--fig7bc", default=None,
                        help="fig7bc_kernels.json (overrides --summary)")
    parser.add_argument("--fusion", default=None,
                        help="fusion.json (overrides --summary)")
    parser.add_argument("--budgets", default=str(DEFAULT_BUDGETS))
    parser.add_argument("--rebaseline", action="store_true",
                        help="rewrite --budgets from the current artifacts")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected "
                             "launch-count regression")
    args = parser.parse_args()

    fig7bc_path, fusion_path = args.fig7bc, args.fusion
    if fig7bc_path is None or fusion_path is None:
        summary = load_json(args.summary)
        arts = summary.get("artifacts", {})
        fig7bc_path = fig7bc_path or arts["fig7bc_kernels"]
        fusion_path = fusion_path or arts["fusion"]
        if summary.get("failures", 0):
            print(f"check_budgets: run_benches.sh recorded "
                  f"{summary['failures']} harness failure(s)",
                  file=sys.stderr)
            return 1
    fig7bc = load_json(fig7bc_path)
    fusion = load_json(fusion_path)

    if args.rebaseline:
        rebaseline(fig7bc, fusion, args.budgets)
        return 0
    budgets = load_json(args.budgets)
    if args.self_test:
        return self_test(fig7bc, fusion, budgets)
    failures = run_checks(fig7bc, fusion, budgets)
    if failures:
        print(f"check_budgets: {len(failures)} violation(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_budgets: all budgets satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
