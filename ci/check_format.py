#!/usr/bin/env python3
"""Format gate for CI (see .clang-format and ci/run_ci.sh).

Preferred path: if a `clang-format` binary is on PATH, every tracked C++
file is checked with `clang-format --dry-run -Werror` against the repo's
.clang-format; any diff fails the gate.

Fallback path (containers without clang-format): mechanical lints that the
tree is known to satisfy and that clang-format would also enforce —
  * no tab characters in C++ sources
  * no trailing whitespace
  * no carriage returns (CRLF)
  * files end with exactly one newline
The fallback is strictly weaker than clang-format, so a tree that passes
clang-format also passes it; CI runners with clang-format installed get the
full check automatically.

Exit status: 0 clean, 1 violations (each printed as file:line: message).
"""

import argparse
import pathlib
import shutil
import subprocess
import sys

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}
SOURCE_DIRS = ["src", "tests", "bench", "examples"]


def cpp_files(root: pathlib.Path):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CPP_SUFFIXES and path.is_file():
                yield path


def check_with_clang_format(binary: str, files, root: pathlib.Path) -> int:
    failures = 0
    for path in files:
        proc = subprocess.run(
            [binary, "--dry-run", "-Werror", "--style=file", str(path)],
            cwd=root, capture_output=True, text=True)
        if proc.returncode != 0:
            failures += 1
            msg = (proc.stderr or proc.stdout).strip().splitlines()
            print(f"{path.relative_to(root)}: clang-format diff"
                  + (f" ({msg[0]})" if msg else ""))
    return failures


def check_mechanical(files, root: pathlib.Path) -> int:
    failures = 0

    def report(path, line, message):
        nonlocal failures
        failures += 1
        print(f"{path.relative_to(root)}:{line}: {message}")

    for path in files:
        data = path.read_bytes()
        if b"\r" in data:
            report(path, 1, "carriage return (CRLF line ending)")
        if not data.endswith(b"\n"):
            report(path, data.count(b"\n") + 1, "missing final newline")
        elif data.endswith(b"\n\n"):
            report(path, data.count(b"\n"), "trailing blank line at EOF")
        for i, line in enumerate(data.split(b"\n"), start=1):
            if b"\t" in line:
                report(path, i, "tab character")
            if line != line.rstrip():
                report(path, i, "trailing whitespace")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent repo)")
    args = parser.parse_args()
    root = pathlib.Path(args.root or pathlib.Path(__file__).parent.parent)
    files = list(cpp_files(root))
    if not files:
        print("check_format: no C++ sources found", file=sys.stderr)
        return 1

    binary = shutil.which("clang-format")
    if binary:
        print(f"check_format: clang-format at {binary}, "
              f"checking {len(files)} files against .clang-format")
        failures = check_with_clang_format(binary, files, root)
    else:
        print(f"check_format: clang-format not found, mechanical fallback "
              f"over {len(files)} files")
        failures = check_mechanical(files, root)

    if failures:
        print(f"check_format: {failures} violation(s)", file=sys.stderr)
        return 1
    print("check_format: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
