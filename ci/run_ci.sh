#!/bin/bash
# Local mirror of .github/workflows/ci.yml — the workflow invokes THIS
# script (one matrix leg per job), so what CI runs and what `ci/run_ci.sh`
# runs at a developer's desk are the same thing by construction.
#
# Pipeline per leg:
#   1. format gate            ci/check_format.py (.clang-format)
#   2. configure + build      -DFEKF_WERROR=ON (zero-warning budget),
#                             ccache when available
#   3. full ctest             includes the *_mt4, *_traced, *_fault,
#                             *_scalar_backend and test_fusion_noarena
#                             environment re-runs, at every width in
#                             FEKF_CI_WIDTHS, plus a forced-scalar leg
#                             (FEKF_KERNEL_BACKEND=scalar) so the dispatch
#                             fallback path stays tested end to end
#   4. perf/launch budgets    (release legs only) bench_fig7bc_kernels +
#                             bench_fusion + bench_chaos + bench_serving
#                             emit JSON, ci/check_budgets.py
#                             gates it against ci/budgets.json (incl. the
#                             per-variant dispatch, chaos-recovery and
#                             serving budgets), diffs
#                             docs/KERNELS.md against the registry via
#                             --kernels-doc, and the gate's --self-test
#                             proves it can fail
#
# Matrix knobs (the workflow sets these per job; locally the defaults run
# the whole matrix serially):
#   FEKF_CI_BUILD_TYPES  "release sanitize tsan" — sanitize is Debug with
#                        FEKF_SANITIZE=address,undefined; tsan is Debug
#                        with FEKF_SANITIZE=thread, running only the
#                        concurrency-heavy suites (serve/threading/
#                        parallel) where a data race could actually hide
#   FEKF_CI_WIDTHS       "1 4" — FEKF_NUM_THREADS values for ctest
#   FEKF_CI_JOBS         build/ctest parallelism (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${FEKF_CI_JOBS:-$(nproc)}"
BUILD_TYPES="${FEKF_CI_BUILD_TYPES:-release sanitize tsan}"
WIDTHS="${FEKF_CI_WIDTHS:-1 4}"
ARTIFACTS="${FEKF_CI_ARTIFACTS:-ci_artifacts}"
mkdir -p "$ARTIFACTS"

echo "==== [1/4] format gate"
python3 ci/check_format.py

LAUNCHER=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
  ccache --zero-stats >/dev/null 2>&1 || true
fi

for ty in $BUILD_TYPES; do
  case "$ty" in
    release)
      dir=build-ci-release
      cfg="-DCMAKE_BUILD_TYPE=Release"
      ;;
    sanitize)
      dir=build-ci-sanitize
      cfg="-DCMAKE_BUILD_TYPE=Debug -DFEKF_SANITIZE=address,undefined"
      ;;
    tsan)
      dir=build-ci-tsan
      cfg="-DCMAKE_BUILD_TYPE=Debug -DFEKF_SANITIZE=thread"
      ;;
    *)
      echo "unknown build type '$ty' (expected release|sanitize|tsan)" >&2
      exit 2
      ;;
  esac
  echo "==== [2/4] configure + build ($ty, warnings are errors)"
  # shellcheck disable=SC2086  # cfg/LAUNCHER are intentional word lists
  cmake -S . -B "$dir" $cfg -DFEKF_WERROR=ON $LAUNCHER
  cmake --build "$dir" -j"$JOBS"

  if [ "$ty" = tsan ]; then
    # TSan leg: race-check the suites where threads actually contend —
    # the serving registry/evaluator (publish vs lock-free readers, batch
    # coalescing), the thread pool, and the parallel primitives. The full
    # matrix and budgets stay on the other legs; TSan timing is not
    # representative and its full run would dominate the pipeline.
    for width in $WIDTHS; do
      echo "==== [3/4] ctest ($ty, concurrency suites, FEKF_NUM_THREADS=$width)"
      FEKF_NUM_THREADS="$width" \
        ctest --test-dir "$dir" --output-on-failure -j"$JOBS" \
          -R '^(test_serve|test_threading|test_parallel)'
    done
    echo "==== [4/4] budgets skipped for $ty (covered by the release leg)"
    continue
  fi

  for width in $WIDTHS; do
    echo "==== [3/4] ctest ($ty, FEKF_NUM_THREADS=$width)"
    FEKF_NUM_THREADS="$width" \
      ctest --test-dir "$dir" --output-on-failure -j"$JOBS"
  done

  # Forced-scalar leg: the whole suite must pass with every dispatched
  # kernel pinned to its scalar reference (DESIGN.md §13). This keeps the
  # fallback path — the one a CPU without AVX2 actually runs — exercised
  # by more than the dedicated *_scalar_backend re-runs.
  echo "==== [3/4] ctest ($ty, FEKF_KERNEL_BACKEND=scalar)"
  FEKF_KERNEL_BACKEND=scalar \
    ctest --test-dir "$dir" --output-on-failure -j"$JOBS"

  if [ "$ty" = release ]; then
    echo "==== [4/4] perf/launch/allocation budgets ($ty)"
    "./$dir/bench/bench_fig7bc_kernels" \
      --json "$ARTIFACTS/fig7bc_kernels.json"
    "./$dir/bench/bench_fusion" --json "$ARTIFACTS/fusion.json"
    # Default flags on purpose: the chaos budgets gate simulated (hence
    # deterministic) figures baselined at exactly this scale, and the
    # serving launch-amortization floor assumes the default fixture.
    "./$dir/bench/bench_chaos" --json "$ARTIFACTS/chaos.json"
    "./$dir/bench/bench_serving" --json "$ARTIFACTS/serving.json"
    python3 ci/check_budgets.py \
      --fig7bc "$ARTIFACTS/fig7bc_kernels.json" \
      --fusion "$ARTIFACTS/fusion.json" \
      --chaos "$ARTIFACTS/chaos.json" \
      --serving "$ARTIFACTS/serving.json" \
      --kernels-doc docs/KERNELS.md \
      --obs-doc docs/OBSERVABILITY.md
    python3 ci/check_budgets.py \
      --fig7bc "$ARTIFACTS/fig7bc_kernels.json" \
      --fusion "$ARTIFACTS/fusion.json" \
      --chaos "$ARTIFACTS/chaos.json" \
      --serving "$ARTIFACTS/serving.json" --self-test
  else
    echo "==== [4/4] budgets skipped for $ty (sanitizer timing is not "
    echo "     representative; launch budgets are covered by the release leg)"
  fi
done

if command -v ccache >/dev/null 2>&1; then
  ccache --show-stats 2>/dev/null | head -5 || true
fi
echo "==== CI pipeline passed"
