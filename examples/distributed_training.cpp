// Distributed FEKF on the virtual cluster: shard a global mini-batch over
// simulated ranks, reduce gradients with modeled ring allreduce, and watch
// the per-step wall clock drop while the communication stays gradient-only
// (the §3.3 communication-avoidance property).
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "dist/cluster.hpp"

using namespace fekf;

int main(int argc, char** argv) {
  Cli cli("distributed_training",
          "virtual-cluster data-parallel FEKF demo");
  cli.flag("system", "NaCl", "catalog system")
      .flag("train", "48", "training snapshots")
      .flag("batch", "16", "global batch size")
      .flag("epochs", "3", "epochs per configuration")
      .flag("ranks", "1,2,4,8", "rank ladder");
  if (!cli.parse(argc, argv)) return 0;

  const data::SystemSpec& spec = data::get_system(cli.get("system"));
  data::DatasetConfig dcfg;
  dcfg.train_per_temperature = std::max<i64>(
      1, cli.get_int("train") / static_cast<i64>(spec.temperatures.size()));
  dcfg.test_per_temperature = 1;

  deepmd::ModelConfig mcfg;
  mcfg.embed_width = 10;
  mcfg.axis_neurons = 5;
  mcfg.fitting_width = 20;

  Table table({"ranks", "sim. wall time (s)", "compute (s)", "comm (s)",
               "final E-RMSE", "final F-RMSE", "grad MB moved"});

  std::string ranks_csv = cli.get("ranks");
  std::size_t pos = 0;
  while (pos <= ranks_csv.size()) {
    const std::size_t comma = ranks_csv.find(',', pos);
    const std::string tok = ranks_csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? ranks_csv.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    const i64 ranks = std::stoll(tok);

    // Fresh model per configuration so every ladder rung starts identical.
    data::Dataset ds = data::build_dataset(spec, dcfg);
    deepmd::DeepmdModel model(mcfg, spec.num_types());
    model.fit_stats(ds.train);
    auto train_envs = train::prepare_all(model, ds.train);

    dist::DistributedConfig cfg;
    cfg.ranks = ranks;
    cfg.options.batch_size = cli.get_int("batch");
    cfg.options.max_epochs = cli.get_int("epochs");
    cfg.options.eval_max_samples = 12;
    cfg.kalman.blocksize = 2048;
    std::printf("running %lld rank(s)...\n", static_cast<long long>(ranks));
    dist::DistributedResult r =
        dist::train_fekf_distributed(model, train_envs, {}, cfg);

    table.add_row({std::to_string(ranks),
                   Table::num(r.simulated_seconds, 1),
                   Table::num(r.compute_seconds, 1),
                   Table::num(r.comm.comm_seconds, 4),
                   Table::num(r.train.final_train.energy_rmse),
                   Table::num(r.train.final_train.force_rmse),
                   Table::num(static_cast<f64>(r.comm.gradient_bytes) / 1e6,
                              2)});
  }
  table.print();
  std::printf("\nCompute shrinks ~linearly with ranks while the allreduce "
              "stays tiny: FEKF ships only the reduced gradient — the "
              "covariance P is bit-identical on every rank and is never "
              "communicated.\n");
  return 0;
}
