// The full DeePMD workflow: train a model with FEKF (minutes), save it,
// reload it, then drive molecular dynamics with the LEARNED force field and
// compare its energies/forces against the teacher along the trajectory —
// the inference loop the trained model exists for.
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "deepmd/serialize.hpp"
#include "serve/potential.hpp"
#include "md/langevin.hpp"
#include "md/observables.hpp"
#include "train/trainer.hpp"

using namespace fekf;

int main(int argc, char** argv) {
  Cli cli("md_with_model",
          "train -> save -> load -> run MD with the learned force field");
  cli.flag("system", "Cu", "catalog system")
      .flag("train", "60", "training snapshots")
      .flag("epochs", "8", "FEKF epochs")
      .flag("md-steps", "60", "MD steps with the learned potential")
      .flag("temperature", "500", "MD temperature (K)")
      .flag("checkpoint", "/tmp/fekf_model.txt", "checkpoint path");
  if (!cli.parse(argc, argv)) return 0;

  const data::SystemSpec& spec = data::get_system(cli.get("system"));
  data::DatasetConfig dcfg;
  dcfg.train_per_temperature = std::max<i64>(
      1, cli.get_int("train") / static_cast<i64>(spec.temperatures.size()));
  dcfg.test_per_temperature = 1;
  data::Dataset ds = data::build_dataset(spec, dcfg);

  deepmd::ModelConfig mcfg;
  mcfg.embed_width = 12;
  mcfg.axis_neurons = 6;
  mcfg.fitting_width = 24;
  deepmd::DeepmdModel model(mcfg, spec.num_types());
  model.fit_stats(ds.train);
  auto train_envs = train::prepare_all(model, ds.train);

  std::printf("== training on %zu snapshots ==\n", ds.train.size());
  train::TrainOptions opts;
  opts.batch_size = 8;
  opts.max_epochs = cli.get_int("epochs");
  opts.eval_max_samples = 12;
  optim::KalmanConfig kcfg;
  kcfg.blocksize = 2048;
  train::KalmanTrainer trainer(model, kcfg, opts);
  Stopwatch train_watch;
  trainer.train(train_envs, {});
  std::printf("   trained in %.1fs\n", train_watch.seconds());

  // Round-trip through the checkpoint (what a production run would load).
  deepmd::save_model(model, cli.get("checkpoint"));
  deepmd::DeepmdModel loaded = deepmd::load_model(cli.get("checkpoint"));
  std::printf("== checkpoint saved and reloaded: %s ==\n",
              cli.get("checkpoint").c_str());

  // MD with the learned force field.
  Rng rng(11);
  md::Structure st = spec.make_structure(rng);
  auto teacher = spec.make_potential(st);
  serve::ModelPotential learned(loaded);

  md::System sys;
  sys.cell = st.cell;
  sys.positions = st.positions;
  sys.types = st.types;
  for (const i32 t : st.types) {
    sys.masses.push_back(spec.masses[static_cast<std::size_t>(t)]);
  }
  md::LangevinIntegrator integrator(
      learned, {spec.dt_fs, cli.get_double("temperature"), 0.05});
  integrator.initialize_velocities(sys, rng);

  std::printf("== running %lld MD steps at %.0f K with the learned "
              "potential ==\n",
              static_cast<long long>(cli.get_int("md-steps")),
              cli.get_double("temperature"));
  Table table({"step", "T (K)", "E_model (eV)", "E_teacher (eV)",
               "|dE|/atom (meV)", "F-RMSE vs teacher (eV/Å)"});
  md::RdfConfig rdf_cfg;
  rdf_cfg.r_max = 5.0;
  rdf_cfg.bins = 40;
  md::RdfAccumulator rdf_model(rdf_cfg);
  const i64 chunks = 6;
  const i64 steps_per_chunk =
      std::max<i64>(1, cli.get_int("md-steps") / chunks);
  for (i64 c = 1; c <= chunks; ++c) {
    const f64 e_model = integrator.run(sys, steps_per_chunk, rng);
    rdf_model.add_frame(sys.positions, sys.types, sys.cell);
    md::EnergyForces ref =
        md::evaluate(*teacher, sys.positions, sys.types, sys.cell);
    md::EnergyForces ours =
        md::evaluate(learned, sys.positions, sys.types, sys.cell);
    f64 se = 0.0;
    for (std::size_t i = 0; i < ref.forces.size(); ++i) {
      const md::Vec3 d = ours.forces[i] - ref.forces[i];
      se += d.norm2();
    }
    const f64 f_rmse =
        std::sqrt(se / (3.0 * static_cast<f64>(ref.forces.size())));
    table.add_row(
        {std::to_string(c * steps_per_chunk),
         Table::num(md::LangevinIntegrator::kinetic_temperature(sys), 0),
         Table::num(e_model, 2), Table::num(ref.energy, 2),
         Table::num(1000.0 * std::abs(e_model - ref.energy) /
                        static_cast<f64>(sys.natoms()), 1),
         Table::num(f_rmse)});
  }
  table.print();

  // Structural validation: compare the learned trajectory's g(r) against a
  // teacher trajectory sampled under identical conditions.
  md::System ref_sys;
  ref_sys.cell = st.cell;
  ref_sys.positions = st.positions;
  ref_sys.types = st.types;
  ref_sys.masses = sys.masses;
  md::LangevinIntegrator ref_integrator(
      *teacher, {spec.dt_fs, cli.get_double("temperature"), 0.05});
  Rng ref_rng(11);
  ref_integrator.initialize_velocities(ref_sys, ref_rng);
  md::RdfAccumulator rdf_teacher(rdf_cfg);
  for (i64 c = 1; c <= chunks; ++c) {
    ref_integrator.run(ref_sys, steps_per_chunk, ref_rng);
    rdf_teacher.add_frame(ref_sys.positions, ref_sys.types, ref_sys.cell);
  }
  const md::Rdf g_model = rdf_model.finalize();
  const md::Rdf g_teacher = rdf_teacher.finalize();
  std::printf("\nstructural agreement: L2(g_model(r), g_teacher(r)) = %.3f "
              "(0 = identical pair structure)\n",
              md::Rdf::distance(g_model, g_teacher));
  std::printf("\nThe learned force field tracks the teacher along its own "
              "trajectory — training to deployment on one workstation.\n");
  return 0;
}
