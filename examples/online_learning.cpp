// Online-learning loop (Figure 1d): the motivating scenario of the paper.
//
// NNMD development retrains the same model 20-100 times as new ab-initio
// labelled configurations arrive (new temperatures, new phases). This
// example simulates that loop: a DeePMD model is first trained on
// low-temperature copper data, then new higher-temperature batches arrive
// round by round and the model is RETRAINED WARM with FEKF — each
// retraining takes seconds, which is exactly the "training in minutes, a
// step towards online learning" workflow the paper targets.
//
// The serving half of that loop rides along: a RegistryPublisher observer
// publishes immutable weight snapshots into a ModelRegistry as training
// progresses, and after each round the freshly arrived configurations are
// re-evaluated through the BatchingEvaluator — the same versioned,
// request-coalescing path concurrent MD walkers would use (DESIGN.md §14).
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "md/sampler.hpp"
#include "serve/batching.hpp"
#include "serve/registry.hpp"
#include "train/trainer.hpp"

using namespace fekf;

namespace {

std::vector<md::Snapshot> sample_at(const data::SystemSpec& spec,
                                    f64 temperature, i64 count, Rng& rng) {
  md::Structure st = spec.make_structure(rng);
  auto pot = spec.make_potential(st);
  md::SamplerConfig cfg;
  cfg.dt_fs = spec.dt_fs;
  cfg.temperatures = {temperature};
  cfg.equilibration_steps = 60;
  cfg.stride = 4;
  cfg.snapshots_per_temperature = count;
  return md::sample_trajectory(*pot, st, spec.masses, cfg, rng);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("online_learning",
          "Figure 1d retraining loop: warm FEKF retraining as new "
          "temperature data arrives");
  cli.flag("system", "Cu", "catalog system")
      .flag("per-round", "24", "new snapshots per arriving round")
      .flag("epochs", "5", "FEKF epochs per retraining round")
      .flag("batch", "8", "FEKF batch size")
      .flag("ckpt",
            "/tmp/fekf_online." + std::to_string(getpid()) + ".ckpt",
            "full-state training checkpoint written during each round "
            "(empty disables); pid-suffixed so concurrent runs never "
            "clobber each other");
  if (!cli.parse(argc, argv)) return 0;

  const data::SystemSpec& spec = data::get_system(cli.get("system"));
  Rng rng(42);
  const f64 rounds_temps[] = {300, 500, 700, 900};

  deepmd::ModelConfig mcfg;
  mcfg.embed_width = 12;
  mcfg.axis_neurons = 6;
  mcfg.fitting_width = 24;
  deepmd::DeepmdModel model(mcfg, spec.num_types());

  std::vector<md::Snapshot> corpus;
  Table table({"round", "new T (K)", "corpus size", "retrain time (s)",
               "E-RMSE on new T", "F-RMSE on new T"});

  bool first = true;
  optim::KalmanConfig kcfg;
  kcfg.blocksize = 2048;
  std::unique_ptr<train::KalmanTrainer> trainer;

  // The serving side: the trainer publishes immutable snapshots into the
  // registry (every checkpoint and every 16 optimizer steps), and clients
  // consume them through the batching evaluator without ever blocking it.
  serve::ModelRegistry registry;
  std::unique_ptr<serve::RegistryPublisher> publisher;
  std::unique_ptr<serve::BatchingEvaluator> evaluator;

  for (std::size_t round = 0; round < std::size(rounds_temps); ++round) {
    const f64 temperature = rounds_temps[round];
    std::printf("== round %zu: %d new snapshots arrive at %.0f K ==\n",
                round + 1, static_cast<int>(cli.get_int("per-round")),
                temperature);
    auto fresh = sample_at(spec, temperature, cli.get_int("per-round"), rng);

    if (first) {
      // Stats (normalization, energy bias, neighbor budget) are fitted on
      // the first round and kept — the online setting cannot refit them
      // retroactively without invalidating the warm weights.
      model.fit_stats(fresh);
      publisher = std::make_unique<serve::RegistryPublisher>(
          registry, model, /*every_steps=*/16);
      trainer = std::make_unique<train::KalmanTrainer>(
          model, kcfg, [&] {
            train::TrainOptions opts;
            opts.batch_size = cli.get_int("batch");
            opts.max_epochs = cli.get_int("epochs");
            opts.eval_max_samples = 12;
            // An online loop cannot afford to lose a round to a crash or a
            // bad step: periodic full-state checkpoints (resumable
            // bit-exactly via resume_from) + divergence sentinels are on
            // for every retraining (DESIGN.md §10).
            if (!cli.get("ckpt").empty()) {
              opts.checkpoint_every = 8;
              opts.checkpoint_path = cli.get("ckpt");
            }
            opts.observers.push_back(publisher.get());
            return opts;
          }());
      first = false;
    }

    // Accuracy on the NEW temperature before retraining (the coverage gap
    // that triggers the retraining loop).
    auto fresh_envs = train::prepare_all(model, fresh);
    train::Metrics before = train::evaluate(model, fresh_envs, 12, true);
    std::printf("   before retraining: E-RMSE %.3f eV, F-RMSE %.3f eV/A on "
                "the new configurations\n",
                before.energy_rmse, before.force_rmse);

    corpus.insert(corpus.end(), fresh.begin(), fresh.end());
    auto corpus_envs = train::prepare_all(model, corpus);

    Stopwatch watch;
    train::TrainResult result = trainer->train(corpus_envs, {});
    const f64 seconds = watch.seconds();
    for (const FaultEvent& event : result.faults.events) {
      std::printf("   recovered from %s at step %lld (%s)\n",
                  event.kind.c_str(), static_cast<long long>(event.step),
                  event.action.c_str());
    }

    train::Metrics after = train::evaluate(model, fresh_envs, 12, true);

    // Serve the round's new configurations through the batched, versioned
    // path — what a fleet of MD walkers consuming this trainer would hit.
    if (evaluator == nullptr) {
      evaluator = std::make_unique<serve::BatchingEvaluator>(registry);
    }
    std::vector<std::future<serve::EvalResult>> futures;
    for (const md::Snapshot& snap : fresh) {
      serve::EvalRequest request;
      request.snapshot = snap;
      request.with_forces = false;
      futures.push_back(evaluator->submit(request));
    }
    f64 serve_mae = 0.0;
    u64 served_version = 0;
    i64 max_batch = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::EvalResult res = futures[i].get();
      serve_mae += std::abs(res.energy - fresh[i].energy) /
                   static_cast<f64>(fresh[i].natoms());
      served_version = res.model_version;
      max_batch = std::max(max_batch, res.batch_size);
    }
    serve_mae /= static_cast<f64>(futures.size());
    std::printf("   served %zu requests from model v%llu (largest batch "
                "%lld): |dE|/atom %.1f meV\n",
                futures.size(),
                static_cast<unsigned long long>(served_version),
                static_cast<long long>(max_batch), 1000.0 * serve_mae);

    table.add_row({std::to_string(round + 1),
                   Table::num(temperature, 0),
                   std::to_string(corpus.size()), Table::num(seconds, 1),
                   Table::num(after.energy_rmse),
                   Table::num(after.force_rmse)});
  }
  std::printf("\n");
  table.print();
  std::printf("\nEach arrival is absorbed by a warm FEKF retraining in "
              "seconds — the paper's online-learning loop (Fig. 1d).\n");
  return 0;
}
