// Quickstart: generate a small Cu dataset with the teacher potential,
// train a DeePMD model with the FEKF optimizer, and compare against the
// teacher on held-out snapshots.
//
//   ./examples/quickstart [--system Cu] [--train 96] [--epochs 8]
#include <cstdio>

#include "core/cli.hpp"
#include "core/log.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "train/lcurve.hpp"
#include "train/trainer.hpp"

using namespace fekf;

int main(int argc, char** argv) {
  Cli cli("quickstart", "train one DeePMD model with FEKF in seconds");
  cli.flag("system", "Cu", "catalog system (Cu, Al, Si, NaCl, Mg, H2O, CuO, HfO2)")
      .flag("train", "96", "training snapshots (split over the system's temperatures)")
      .flag("test", "24", "test snapshots")
      .flag("epochs", "8", "training epochs")
      .flag("batch", "8", "FEKF mini-batch size")
      .flag("embed", "12", "embedding net width M")
      .flag("axis", "6", "axis neurons M^<")
      .flag("fit", "24", "fitting net width d")
      .flag("verbose", "true", "per-epoch logging")
      .flag("lcurve", "", "optional CSV path for the learning curve");
  if (!cli.parse(argc, argv)) return 0;

  const data::SystemSpec& spec = data::get_system(cli.get("system"));
  const i64 ntemps = static_cast<i64>(spec.temperatures.size());

  std::printf("== %s: sampling teacher trajectories at %lld temperatures ==\n",
              spec.name.c_str(), static_cast<long long>(ntemps));
  data::DatasetConfig dcfg;
  dcfg.train_per_temperature =
      std::max<i64>(1, cli.get_int("train") / ntemps);
  dcfg.test_per_temperature = std::max<i64>(1, cli.get_int("test") / ntemps);
  data::Dataset ds = data::build_dataset(spec, dcfg);
  std::printf("   %zu train / %zu test snapshots, %lld atoms each\n",
              ds.train.size(), ds.test.size(),
              static_cast<long long>(ds.natoms()));

  deepmd::ModelConfig mcfg;
  mcfg.embed_width = cli.get_int("embed");
  mcfg.axis_neurons = cli.get_int("axis");
  mcfg.fitting_width = cli.get_int("fit");
  deepmd::DeepmdModel model(mcfg, spec.num_types());
  model.fit_stats(ds.train);
  std::printf("== model: %lld parameters, sel = [",
              static_cast<long long>(model.num_parameters()));
  for (std::size_t t = 0; t < model.sel().size(); ++t) {
    std::printf("%s%lld", t ? ", " : "",
                static_cast<long long>(model.sel()[t]));
  }
  std::printf("] ==\n");

  auto train_envs = train::prepare_all(model, ds.train);
  auto test_envs = train::prepare_all(model, ds.test);

  train::TrainOptions opts;
  opts.batch_size = cli.get_int("batch");
  opts.max_epochs = cli.get_int("epochs");
  opts.verbose = cli.get_bool("verbose");
  optim::KalmanConfig kcfg = optim::KalmanConfig::for_batch_size(opts.batch_size);
  kcfg.blocksize = 2048;
  train::KalmanTrainer trainer(model, kcfg, opts);

  std::printf("== training with FEKF (batch %lld) ==\n",
              static_cast<long long>(opts.batch_size));
  train::TrainResult result = trainer.train(train_envs, test_envs);

  Table table({"epoch", "train E-RMSE (eV)", "train F-RMSE (eV/A)",
               "test E-RMSE", "test F-RMSE", "time (s)"});
  for (const auto& rec : result.history) {
    table.add_row({std::to_string(rec.epoch), Table::num(rec.train.energy_rmse),
                   Table::num(rec.train.force_rmse),
                   Table::num(rec.test.energy_rmse),
                   Table::num(rec.test.force_rmse),
                   Table::num(rec.cumulative_seconds, 1)});
  }
  table.print();
  std::printf(
      "phase split: forward %.2fs, gradient %.2fs, KF update %.2fs\n",
      result.forward_seconds, result.gradient_seconds,
      result.optimizer_seconds);
  if (!cli.get("lcurve").empty()) {
    train::write_lcurve(result, cli.get("lcurve"));
    std::printf("learning curve written to %s\n", cli.get("lcurve").c_str());
  }
  return 0;
}
