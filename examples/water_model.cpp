// Multi-element training: fit the flexible-water teacher (O and H types,
// bonded + LJ + damped-shifted Coulomb) and inspect the learned model —
// per-type embedding/fitting networks, descriptor normalization statistics,
// and force-prediction quality per element.
#include <cstdio>

#include "core/cli.hpp"
#include "core/table.hpp"
#include "data/dataset.hpp"
#include "train/trainer.hpp"

using namespace fekf;

int main(int argc, char** argv) {
  Cli cli("water_model", "train DeePMD on the two-element water teacher");
  cli.flag("train", "64", "training snapshots")
      .flag("test", "16", "test snapshots")
      .flag("epochs", "8", "FEKF epochs")
      .flag("batch", "8", "FEKF batch size");
  if (!cli.parse(argc, argv)) return 0;

  const data::SystemSpec& spec = data::get_system("H2O");
  data::DatasetConfig dcfg;
  const i64 ntemps = static_cast<i64>(spec.temperatures.size());
  dcfg.train_per_temperature = std::max<i64>(1, cli.get_int("train") / ntemps);
  dcfg.test_per_temperature = std::max<i64>(1, cli.get_int("test") / ntemps);
  std::printf("sampling flexible-water teacher at %lld temperatures...\n",
              static_cast<long long>(ntemps));
  data::Dataset ds = data::build_dataset(spec, dcfg);

  deepmd::ModelConfig mcfg;
  mcfg.embed_width = 10;
  mcfg.axis_neurons = 5;
  mcfg.fitting_width = 20;
  deepmd::DeepmdModel model(mcfg, spec.num_types());
  model.fit_stats(ds.train);

  std::printf("\nmodel structure (%lld parameters):\n",
              static_cast<long long>(model.num_parameters()));
  for (const auto& [name, size] : model.parameter_layout()) {
    std::printf("  %-10s %lld\n", name.c_str(),
                static_cast<long long>(size));
  }
  std::printf("\nenvironment statistics per neighbor type:\n");
  for (i32 t = 0; t < spec.num_types(); ++t) {
    std::printf("  %-2s sel %lld, davg %.4f, dstd_r %.4f, dstd_a %.4f\n",
                spec.elements[static_cast<std::size_t>(t)].c_str(),
                static_cast<long long>(model.sel()[static_cast<std::size_t>(t)]),
                model.env_stats().davg[static_cast<std::size_t>(t)],
                model.env_stats().dstd_r[static_cast<std::size_t>(t)],
                model.env_stats().dstd_a[static_cast<std::size_t>(t)]);
  }

  auto train_envs = train::prepare_all(model, ds.train);
  auto test_envs = train::prepare_all(model, ds.test);

  train::TrainOptions opts;
  opts.batch_size = cli.get_int("batch");
  opts.max_epochs = cli.get_int("epochs");
  opts.eval_max_samples = 12;
  opts.verbose = true;
  optim::KalmanConfig kcfg;
  kcfg.blocksize = 2048;
  train::KalmanTrainer trainer(model, kcfg, opts);
  std::printf("\ntraining with FEKF (batch %lld)...\n",
              static_cast<long long>(opts.batch_size));
  trainer.train(train_envs, test_envs);

  // Per-element force RMSE on the test split (O environments are stiffer
  // than H ones, so per-type errors differ).
  f64 se[2] = {0, 0};
  i64 cnt[2] = {0, 0};
  for (const auto& env : test_envs) {
    auto pred = model.predict(env, /*with_forces=*/true);
    for (i32 t = 0; t < 2; ++t) {
      for (i64 s = env->type_offsets[static_cast<std::size_t>(t)];
           s < env->type_offsets[static_cast<std::size_t>(t) + 1]; ++s) {
        for (int axis = 0; axis < 3; ++axis) {
          const f64 d = static_cast<f64>(pred.forces.value().at(s, axis)) -
                        env->force_label.at(s, axis);
          se[t] += d * d;
          ++cnt[t];
        }
      }
    }
  }
  std::printf("\nper-element force RMSE on the test split:\n");
  Table table({"element", "F-RMSE (eV/Å)", "components"});
  for (i32 t = 0; t < 2; ++t) {
    table.add_row({spec.elements[static_cast<std::size_t>(t)],
                   Table::num(std::sqrt(se[t] / static_cast<f64>(cnt[t]))),
                   std::to_string(cnt[t])});
  }
  table.print();
  return 0;
}
