#!/bin/bash
# Regenerate every paper table/figure into stdout (tee to bench_output.txt).
# Budgets are sized for a single CPU core (~30-40 min total); every harness
# accepts flags to scale toward the paper's configuration (--help).
set -u
run() {
  echo "===================================================================="
  echo "== $*"
  echo "===================================================================="
  "$@" 2>&1
  echo
}
run ./build/bench/bench_comm_memory
run ./build/bench/bench_fig7bc_kernels
run ./build/bench/bench_kernels_micro --benchmark_min_time=0.1
run ./build/bench/bench_fig4_qlr
run ./build/bench/bench_table5_distributed --train 40 --rlekf-epochs 3 --fekf-epochs 8
run ./build/bench/bench_fig7a_end2end --systems Cu --fekf-epochs 8 --rlekf-epochs 3 --adam-epochs 10
run ./build/bench/bench_table1_adam_batch --train 48 --epochs1 10
run ./build/bench/bench_table4_convergence --train 32 --adam-epochs 8 --fekf-epochs 5
run ./build/bench/bench_ablation_stabilizers --train 40 --epochs 6
