#!/bin/bash
# Regenerate every paper table/figure into stdout (tee to bench_output.txt).
# Budgets are sized for a single CPU core (~30-40 min total); every harness
# accepts flags to scale toward the paper's configuration (--help).
#
# Machine-readable artifacts land in bench_artifacts/: every run is recorded
# in index.json together with the thread width it executed at, so scaling
# results stay attributable to a configuration (README "Runtime
# configuration").
set -u
ARTIFACTS=bench_artifacts
mkdir -p "$ARTIFACTS"
: "${FEKF_NUM_THREADS:=$(nproc)}"
export FEKF_NUM_THREADS
INDEX="$ARTIFACTS/index.json"
echo "{" > "$INDEX"
echo "  \"fekf_num_threads\": $FEKF_NUM_THREADS," >> "$INDEX"
echo "  \"hardware_threads\": $(nproc)," >> "$INDEX"
echo "  \"runs\": [" >> "$INDEX"
FIRST=1
run() {
  echo "===================================================================="
  echo "== $* (FEKF_NUM_THREADS=$FEKF_NUM_THREADS)"
  echo "===================================================================="
  "$@" 2>&1
  local status=$?
  [ "$FIRST" = 1 ] && FIRST=0 || echo "    ," >> "$INDEX"
  echo "    {\"cmd\": \"$*\", \"threads\": $FEKF_NUM_THREADS, \"exit\": $status}" >> "$INDEX"
  echo
}
run ./build/bench/bench_comm_memory
# The fig7bc harness runs with the observability layer armed: the Chrome
# trace (load in Perfetto / chrome://tracing) and the metrics dump land
# next to index.json, attributing the measured iterations span by span.
FEKF_TRACE="$ARTIFACTS/fig7bc_trace.json" \
  FEKF_TRACE_KERNELS=1 \
  FEKF_METRICS="$ARTIFACTS/fig7bc_metrics.json" \
  run ./build/bench/bench_fig7bc_kernels
run ./build/bench/bench_kernels_micro --benchmark_min_time=0.1
run ./build/bench/bench_fig4_qlr
run ./build/bench/bench_table5_distributed --train 40 --rlekf-epochs 3 --fekf-epochs 8
run ./build/bench/bench_fig7a_end2end --systems Cu --fekf-epochs 8 --rlekf-epochs 3 --adam-epochs 10
run ./build/bench/bench_table1_adam_batch --train 48 --epochs1 10
run ./build/bench/bench_table4_convergence --train 32 --adam-epochs 8 --fekf-epochs 5
run ./build/bench/bench_ablation_stabilizers --train 40 --epochs 6
run ./build/bench/bench_scaling --train 64 --batch 16 --iters 2 \
  --threads 1,2,4,8 --json "$ARTIFACTS/scaling.json"
# Traced resilience run: checkpoint spans and fault/rollback instants show
# up on the same timeline as the training phases.
FEKF_TRACE="$ARTIFACTS/resilience_trace.json" \
  FEKF_METRICS="$ARTIFACTS/resilience_metrics.json" \
  run ./build/bench/bench_resilience --train 24 --epochs 3 \
  --ckpt "$ARTIFACTS/resilience.ckpt" --json "$ARTIFACTS/resilience.json"
echo "  ]" >> "$INDEX"
echo "}" >> "$INDEX"
echo "artifact index: $INDEX"
