#!/bin/bash
# Regenerate every paper table/figure into stdout (tee to bench_output.txt).
# Budgets are sized for a single CPU core (~30-40 min total); every harness
# accepts flags to scale toward the paper's configuration (--help).
#
# Fail-loudly contract: the script runs EVERY harness (so one regression
# does not hide the others' artifacts) but exits non-zero if any failed,
# with the failures counted in the summary. Machine-readable artifacts land
# in bench_artifacts/: every run is recorded in index.json together with
# the thread width it executed at, and BENCH_summary.json points
# ci/check_budgets.py at the per-bench JSON documents (launch counts, phase
# seconds, arena bytes) it gates against ci/budgets.json.
set -euo pipefail
ARTIFACTS=bench_artifacts
mkdir -p "$ARTIFACTS"
: "${FEKF_NUM_THREADS:=$(nproc)}"
export FEKF_NUM_THREADS
INDEX="$ARTIFACTS/index.json"
SUMMARY="$ARTIFACTS/BENCH_summary.json"
FAILURES=0
echo "{" > "$INDEX"
echo "  \"fekf_num_threads\": $FEKF_NUM_THREADS," >> "$INDEX"
echo "  \"hardware_threads\": $(nproc)," >> "$INDEX"
echo "  \"runs\": [" >> "$INDEX"
FIRST=1
run() {
  echo "===================================================================="
  echo "== $* (FEKF_NUM_THREADS=$FEKF_NUM_THREADS)"
  echo "===================================================================="
  local status=0
  "$@" 2>&1 || status=$?
  if [ "$status" -ne 0 ]; then
    FAILURES=$((FAILURES + 1))
    echo "!! FAILED (exit $status): $*" >&2
  fi
  [ "$FIRST" = 1 ] && FIRST=0 || echo "    ," >> "$INDEX"
  echo "    {\"cmd\": \"$*\", \"threads\": $FEKF_NUM_THREADS, \"exit\": $status}" >> "$INDEX"
  echo
}
run ./build/bench/bench_comm_memory
# The fig7bc harness runs with the observability layer armed: the Chrome
# trace (load in Perfetto / chrome://tracing) and the metrics dump land
# next to index.json, attributing the measured iterations span by span.
# Its JSON summary carries the launch/time/arena numbers the CI budget
# checker gates on.
FEKF_TRACE="$ARTIFACTS/fig7bc_trace.json" \
  FEKF_TRACE_KERNELS=1 \
  FEKF_METRICS="$ARTIFACTS/fig7bc_metrics.json" \
  run ./build/bench/bench_fig7bc_kernels --json "$ARTIFACTS/fig7bc_kernels.json"
run ./build/bench/bench_fusion --json "$ARTIFACTS/fusion.json"
run ./build/bench/bench_kernels_micro --benchmark_min_time=0.1
run ./build/bench/bench_fig4_qlr
run ./build/bench/bench_table5_distributed --train 40 --rlekf-epochs 3 --fekf-epochs 8
run ./build/bench/bench_fig7a_end2end --systems Cu --fekf-epochs 8 --rlekf-epochs 3 --adam-epochs 10
run ./build/bench/bench_table1_adam_batch --train 48 --epochs1 10
run ./build/bench/bench_table4_convergence --train 32 --adam-epochs 8 --fekf-epochs 5
run ./build/bench/bench_ablation_stabilizers --train 40 --epochs 6
run ./build/bench/bench_scaling --train 64 --batch 16 --iters 2 \
  --threads 1,2,4,8 --json "$ARTIFACTS/scaling.json"
# Traced resilience run: checkpoint spans and fault/rollback instants show
# up on the same timeline as the training phases.
FEKF_TRACE="$ARTIFACTS/resilience_trace.json" \
  FEKF_METRICS="$ARTIFACTS/resilience_metrics.json" \
  run ./build/bench/bench_resilience --train 24 --epochs 3 \
  --ckpt "$ARTIFACTS/resilience.ckpt" --json "$ARTIFACTS/resilience.json"
# Chaos sweep at the default scale: the ci/budgets.json chaos section is
# baselined against these exact flags (the gated figures are simulated and
# deterministic, so the scale must match).
run ./build/bench/bench_chaos --json "$ARTIFACTS/chaos.json"
# Serving bench at the default scale: the ci/budgets.json serving section
# gates its launch-amortization ratio (deterministic at this scale), the
# loose wall-clock figures, and the structural zeros (publish stalls,
# pinned-version violations). Spans/metrics land next to the other traces.
FEKF_TRACE="$ARTIFACTS/serving_trace.json" \
  FEKF_METRICS="$ARTIFACTS/serving_metrics.json" \
  run ./build/bench/bench_serving --json "$ARTIFACTS/serving.json"
echo "  ]" >> "$INDEX"
echo "}" >> "$INDEX"
cat > "$SUMMARY" <<EOF
{
  "fekf_num_threads": $FEKF_NUM_THREADS,
  "hardware_threads": $(nproc),
  "failures": $FAILURES,
  "artifacts": {
    "index": "$INDEX",
    "fig7bc_kernels": "$ARTIFACTS/fig7bc_kernels.json",
    "fusion": "$ARTIFACTS/fusion.json",
    "scaling": "$ARTIFACTS/scaling.json",
    "resilience": "$ARTIFACTS/resilience.json",
    "chaos": "$ARTIFACTS/chaos.json",
    "serving": "$ARTIFACTS/serving.json"
  }
}
EOF
echo "artifact index: $INDEX"
echo "budget-checker summary: $SUMMARY"
if [ "$FAILURES" -ne 0 ]; then
  echo "BENCH FAILURES: $FAILURES harness(es) exited non-zero" >&2
  exit 1
fi
