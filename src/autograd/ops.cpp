#include "autograd/ops.hpp"

#include "tensor/kernels.hpp"

namespace fekf::ag::ops {

namespace k = fekf::kernels;

Variable add(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::add(a.value(), b.value()), "add", {a, b},
      [](const Variable& g) -> std::vector<Variable> { return {g, g}; });
}

Variable sub(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::sub(a.value(), b.value()), "sub", {a, b},
      [](const Variable& g) -> std::vector<Variable> { return {g, neg(g)}; });
}

Variable mul(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::mul(a.value(), b.value()), "mul", {a, b},
      [a, b](const Variable& g) -> std::vector<Variable> {
        return {mul(g, b), mul(g, a)};
      });
}

Variable neg(const Variable& a) {
  return Variable::make_op(
      k::neg(a.value()), "neg", {a},
      [](const Variable& g) -> std::vector<Variable> { return {neg(g)}; });
}

Variable scale(const Variable& a, f32 alpha) {
  return Variable::make_op(
      k::scale(a.value(), alpha), "scale", {a},
      [alpha](const Variable& g) -> std::vector<Variable> {
        return {scale(g, alpha)};
      });
}

Variable add_scalar(const Variable& a, f32 alpha) {
  return Variable::make_op(
      k::add_scalar(a.value(), alpha), "add_scalar", {a},
      [](const Variable& g) -> std::vector<Variable> { return {g}; });
}

Variable square(const Variable& a) { return mul(a, a); }

Variable tanh(const Variable& a) {
  return Variable::make_op(
      k::tanh(a.value()), "tanh", {a},
      [a](const Variable& g) -> std::vector<Variable> {
        // Composed backward: recompute y, then g * (1 - y^2). Every step is
        // a primitive launch, as a framework autograd would execute it.
        const Variable y = tanh(a);
        const Variable one_minus = add_scalar(neg(square(y)), 1.0f);
        return {mul(g, one_minus)};
      });
}

namespace {

/// Fused kernel gx = g * (1 - tanh(a)^2) as a differentiable op (used as
/// the backward of tanh_fused; must itself be differentiable for the force
/// loss / EKF force measurement).
Variable tanh_grad_fused(const Variable& g, const Variable& a) {
  Tensor y = k::tanh(a.value());  // folded into the fused launch below
  return Variable::make_op(
      k::tanh_backward(g.value(), y), "tanh_grad_fused", {g, a},
      [g, a](const Variable& gout) -> std::vector<Variable> {
        // d/dg = (1 - y^2) ⊙ gout — exactly the fused kernel again.
        Variable grad_g = tanh_grad_fused(gout, a);
        // d/da = gout ⊙ g ⊙ (-2 y (1 - y^2)), composed from primitives
        // (this path only runs in double-backward).
        const Variable y = tanh(a);
        const Variable one_minus = add_scalar(neg(square(y)), 1.0f);
        Variable grad_a =
            scale(mul(mul(gout, g), mul(y, one_minus)), -2.0f);
        return {grad_g, grad_a};
      });
}

}  // namespace

Variable tanh_fused(const Variable& a) {
  return Variable::make_op(
      k::tanh(a.value()), "tanh", {a},
      [a](const Variable& g) -> std::vector<Variable> {
        return {tanh_grad_fused(g, a)};
      });
}

Variable matmul(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::matmul(a.value(), b.value()), "matmul", {a, b},
      [a, b](const Variable& g) -> std::vector<Variable> {
        return {matmul_nt(g, b), matmul_tn(a, g)};
      });
}

Variable matmul_nt(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::matmul_nt(a.value(), b.value()), "matmul_nt", {a, b},
      [a, b](const Variable& g) -> std::vector<Variable> {
        // out = a b^T; ga = g b, gb = g^T a.
        return {matmul(g, b), matmul_tn(g, a)};
      });
}

Variable matmul_tn(const Variable& a, const Variable& b) {
  return Variable::make_op(
      k::matmul_tn(a.value(), b.value()), "matmul_tn", {a, b},
      [a, b](const Variable& g) -> std::vector<Variable> {
        // out = a^T b; ga = b g^T, gb = a g.
        return {matmul_nt(b, g), matmul(a, g)};
      });
}

Variable transpose(const Variable& a) {
  return Variable::make_op(
      k::transpose(a.value()), "transpose", {a},
      [](const Variable& g) -> std::vector<Variable> {
        return {transpose(g)};
      });
}

Variable linear(const Variable& x, const Variable& w, const Variable& bias) {
  return add_rowvec(matmul(x, w), bias);
}

Variable linear_fused(const Variable& x, const Variable& w,
                      const Variable& bias) {
  return Variable::make_op(
      k::linear_fused(x.value(), w.value(), bias.value()), "linear_fused",
      {x, w, bias},
      [x, w](const Variable& g) -> std::vector<Variable> {
        return {matmul_nt(g, w), matmul_tn(x, g), sum_rows(g)};
      });
}

namespace {

// ---- fused linear+tanh (kFused dense layer) -------------------------------
//
// Forward y = tanh(x w + b) is one launch; the first backward is one launch
// producing (gx, gw, gb) via the fused kernel. Each of those three grads is
// itself a differentiable wrapper op so the force path can differentiate
// through the backward. Writing u = g ⊙ e with e = 1 - y², the outputs are
//   gx = u w^T    gw = x^T u    gb = 1^T u,
// and for an upstream sensitivity gg of one output, the sensitivity routed
// to u is P = gg w (gx), x gg (gw), or gg broadcast over rows (gb). Then
//   dL/dg = P ⊙ e,   v = dL/d(pre) = (-2 P ⊙ g ⊙ y) ⊙ e,
//   dL/dx = v w^T (+ u gg^T for the gw op),
//   dL/dw = x^T v (+ gg^T u for the gx op),   dL/db = 1^T v.
// (DESIGN.md §12 "Kernel fusion & memory arena" carries the derivation.)

enum class LtOutput { kGx, kGw, kGb };

std::vector<Variable> linear_tanh_backward_vars(const Variable& g,
                                                const Variable& x,
                                                const Variable& w,
                                                const Variable& b,
                                                const Tensor& y_t);

/// Zero-launch differentiable handle on the cached forward value: re-emits
/// the linear_tanh node so closures can rebuild e, u, v as graph nodes
/// (correct to any derivative order) without recomputing tanh.
Variable linear_tanh_wrap(const Tensor& y_t, const Variable& x,
                          const Variable& w, const Variable& b) {
  return Variable::make_op(
      y_t, "linear_tanh", {x, w, b},
      [x, w, b, y_t](const Variable& g) -> std::vector<Variable> {
        return linear_tanh_backward_vars(g, x, w, b, y_t);
      });
}

/// Double backward of one wrapper output (see derivation above). Composed
/// from primitives; only runs under create_graph.
std::vector<Variable> linear_tanh_double_backward(
    const Variable& gg, LtOutput which, const Variable& g, const Variable& x,
    const Variable& w, const Variable& b, const Tensor& y_t) {
  const Variable y = linear_tanh_wrap(y_t, x, w, b);
  const Variable e = add_scalar(neg(square(y)), 1.0f);
  Variable p;
  switch (which) {
    case LtOutput::kGx: p = matmul(gg, w); break;
    case LtOutput::kGw: p = matmul(x, gg); break;
    case LtOutput::kGb: p = broadcast_rows(gg, x.rows()); break;
  }
  const Variable v = mul(scale(mul(mul(p, g), y), -2.0f), e);
  Variable dg = mul(p, e);
  Variable dx = matmul_nt(v, w);
  Variable dw = matmul_tn(x, v);
  Variable db = sum_rows(v);
  if (which == LtOutput::kGx) {
    dw = add(dw, matmul_tn(gg, mul(g, e)));  // explicit w term of u w^T
  } else if (which == LtOutput::kGw) {
    dx = add(dx, matmul_nt(mul(g, e), gg));  // explicit x term of x^T u
  }
  return {dg, dx, dw, db};
}

std::vector<Variable> linear_tanh_backward_vars(const Variable& g,
                                                const Variable& x,
                                                const Variable& w,
                                                const Variable& b,
                                                const Tensor& y_t) {
  Tensor gx_t, gw_t, gb_t;
  k::linear_tanh_backward(g.value(), y_t, x.value(), w.value(), gx_t, gw_t,
                          gb_t);
  auto wrap = [&](Tensor value, const char* name, LtOutput which) {
    return Variable::make_op(
        std::move(value), name, {g, x, w, b},
        [g, x, w, b, y_t, which](const Variable& gg) -> std::vector<Variable> {
          return linear_tanh_double_backward(gg, which, g, x, w, b, y_t);
        });
  };
  return {wrap(std::move(gx_t), "linear_tanh_gx", LtOutput::kGx),
          wrap(std::move(gw_t), "linear_tanh_gw", LtOutput::kGw),
          wrap(std::move(gb_t), "linear_tanh_gb", LtOutput::kGb)};
}

}  // namespace

Variable linear_tanh_fused(const Variable& x, const Variable& w,
                           const Variable& bias) {
  return linear_tanh_wrap(k::linear_tanh(x.value(), w.value(), bias.value()),
                          x, w, bias);
}

Variable add_rowvec(const Variable& mat, const Variable& row) {
  return Variable::make_op(
      k::add_rowvec(mat.value(), row.value()), "add_rowvec", {mat, row},
      [](const Variable& g) -> std::vector<Variable> {
        return {g, sum_rows(g)};
      });
}

Variable broadcast_rows(const Variable& row, i64 m) {
  return Variable::make_op(
      k::broadcast_rows(row.value(), m), "broadcast_rows", {row},
      [](const Variable& g) -> std::vector<Variable> {
        return {sum_rows(g)};
      });
}

Variable broadcast_cols(const Variable& col, i64 n) {
  return Variable::make_op(
      k::broadcast_cols(col.value(), n), "broadcast_cols", {col},
      [](const Variable& g) -> std::vector<Variable> {
        return {sum_cols(g)};
      });
}

Variable broadcast_full(const Variable& scalar, i64 m, i64 n) {
  return Variable::make_op(
      k::broadcast_full(scalar.value(), m, n), "broadcast_full", {scalar},
      [](const Variable& g) -> std::vector<Variable> {
        return {sum_all(g)};
      });
}

Variable sum_all(const Variable& a) {
  const i64 m = a.rows(), n = a.cols();
  return Variable::make_op(
      k::sum_all(a.value()), "sum_all", {a},
      [m, n](const Variable& g) -> std::vector<Variable> {
        return {broadcast_full(g, m, n)};
      });
}

Variable mean_all(const Variable& a) {
  return scale(sum_all(a), 1.0f / static_cast<f32>(a.numel()));
}

Variable sum_rows(const Variable& a) {
  const i64 m = a.rows();
  return Variable::make_op(
      k::sum_rows(a.value()), "sum_rows", {a},
      [m](const Variable& g) -> std::vector<Variable> {
        return {broadcast_rows(g, m)};
      });
}

Variable sum_cols(const Variable& a) {
  const i64 n = a.cols();
  return Variable::make_op(
      k::sum_cols(a.value()), "sum_cols", {a},
      [n](const Variable& g) -> std::vector<Variable> {
        return {broadcast_cols(g, n)};
      });
}

Variable slice_cols(const Variable& a, i64 c0, i64 c1) {
  const i64 cols = a.cols();
  return Variable::make_op(
      k::slice_cols(a.value(), c0, c1), "slice_cols", {a},
      [cols, c0](const Variable& g) -> std::vector<Variable> {
        return {pad_cols(g, cols, c0)};
      });
}

Variable pad_cols(const Variable& a, i64 cols, i64 c0) {
  const i64 w = a.cols();
  return Variable::make_op(
      k::pad_cols(a.value(), cols, c0), "pad_cols", {a},
      [c0, w](const Variable& g) -> std::vector<Variable> {
        return {slice_cols(g, c0, c0 + w)};
      });
}

Variable slice_rows(const Variable& a, i64 r0, i64 r1) {
  const i64 rows = a.rows();
  return Variable::make_op(
      k::slice_rows(a.value(), r0, r1), "slice_rows", {a},
      [rows, r0](const Variable& g) -> std::vector<Variable> {
        return {pad_rows(g, rows, r0)};
      });
}

Variable pad_rows(const Variable& a, i64 rows, i64 r0) {
  const i64 h = a.rows();
  return Variable::make_op(
      k::pad_rows(a.value(), rows, r0), "pad_rows", {a},
      [r0, h](const Variable& g) -> std::vector<Variable> {
        return {slice_rows(g, r0, r0 + h)};
      });
}

Variable concat_rows(const Variable& a, const Variable& b) {
  const i64 ma = a.rows(), mb = b.rows();
  return Variable::make_op(
      k::concat_rows(a.value(), b.value()), "concat_rows", {a, b},
      [ma, mb](const Variable& g) -> std::vector<Variable> {
        return {slice_rows(g, 0, ma), slice_rows(g, ma, ma + mb)};
      });
}

Variable reshape(const Variable& a, i64 rows, i64 cols) {
  const i64 ar = a.rows(), ac = a.cols();
  return Variable::make_op(
      a.value().reshaped(rows, cols), "reshape", {a},
      [ar, ac](const Variable& g) -> std::vector<Variable> {
        return {reshape(g, ar, ac)};
      });
}

}  // namespace fekf::ag::ops
