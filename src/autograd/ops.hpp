// Differentiable operations over ag::Variable.
//
// Each op's backward is built from other ops in this header, which is what
// makes create_graph (double backward) work. Two families exist for the
// system-optimization experiments:
//   * primitive-composed ops  — one KernelCounter launch per primitive, the
//     way a framework autograd executes ("baseline" in Fig. 7b/7c);
//   * *_fused ops            — a single hand-written kernel forward and a
//     hand-written fused backward ("opt" configurations).
// Both compute identical values; tests assert that.
#pragma once

#include "autograd/variable.hpp"

namespace fekf::ag::ops {

// ---- elementwise ----------------------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable neg(const Variable& a);
Variable scale(const Variable& a, f32 alpha);
Variable add_scalar(const Variable& a, f32 alpha);
Variable square(const Variable& a);

/// tanh whose backward composes primitives (recomputes tanh on the tape —
/// many small launches, the framework-autograd behaviour).
Variable tanh(const Variable& a);
/// tanh whose backward is the single fused kernel g * (1 - y^2).
Variable tanh_fused(const Variable& a);

// ---- linear algebra -------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);     // a * b
Variable matmul_nt(const Variable& a, const Variable& b);  // a * b^T
Variable matmul_tn(const Variable& a, const Variable& b);  // a^T * b
Variable transpose(const Variable& a);

/// x*W + bias as matmul + add_rowvec (two launches)...
Variable linear(const Variable& x, const Variable& w, const Variable& bias);
/// ...and as one fused kernel.
Variable linear_fused(const Variable& x, const Variable& w,
                      const Variable& bias);

/// tanh(x*W + bias) with ONE kernel launch forward and ONE launch for the
/// whole first backward (gx, gw, gb in a single fused pass) — the kFused
/// dense layer. Values and first gradients are bit-identical to the opt2
/// chain (linear_fused + tanh_fused); the double backward (force path) is
/// composed from primitives and matches within f32 rounding.
Variable linear_tanh_fused(const Variable& x, const Variable& w,
                           const Variable& bias);

// ---- broadcast / reduction ------------------------------------------------
Variable add_rowvec(const Variable& mat, const Variable& row);
Variable broadcast_rows(const Variable& row, i64 m);
Variable broadcast_cols(const Variable& col, i64 n);
Variable broadcast_full(const Variable& scalar, i64 m, i64 n);
Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);
Variable sum_rows(const Variable& a);
Variable sum_cols(const Variable& a);

// ---- shape ----------------------------------------------------------------
Variable slice_cols(const Variable& a, i64 c0, i64 c1);
Variable pad_cols(const Variable& a, i64 cols, i64 c0);
Variable slice_rows(const Variable& a, i64 r0, i64 r1);
Variable pad_rows(const Variable& a, i64 rows, i64 r0);
Variable concat_rows(const Variable& a, const Variable& b);
/// Free view (no kernel launch), like torch .view().
Variable reshape(const Variable& a, i64 rows, i64 cols);

}  // namespace fekf::ag::ops
