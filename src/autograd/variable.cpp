#include "autograd/variable.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "autograd/ops.hpp"

namespace fekf::ag {

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

Variable::Variable(Tensor value, bool requires_grad)
    : impl_(std::make_shared<VarImpl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
}

const Tensor& Variable::value() const {
  FEKF_CHECK(impl_ != nullptr, "value() on undefined Variable");
  return impl_->value;
}

Variable Variable::detach() const {
  FEKF_CHECK(impl_ != nullptr, "detach() on undefined Variable");
  return Variable(impl_->value, /*requires_grad=*/false);
}

const std::shared_ptr<Node>& Variable::node() const {
  static const std::shared_ptr<Node> kNull;
  return impl_ ? impl_->node : kNull;
}

void Variable::set_value(const Tensor& t) {
  FEKF_CHECK(impl_ != nullptr, "set_value() on undefined Variable");
  FEKF_CHECK(impl_->value.same_shape(t), "set_value shape mismatch");
  std::copy_n(t.data(), t.numel(), impl_->value.data());
}

Variable Variable::make_op(Tensor value, std::string op_name,
                           std::vector<Variable> inputs, BackwardFn backward) {
  const bool any_grad =
      t_grad_enabled &&
      std::any_of(inputs.begin(), inputs.end(),
                  [](const Variable& v) { return v.requires_grad(); });
  Variable out(std::move(value), any_grad);
  if (any_grad) {
    auto node = std::make_shared<Node>();
    node->op_name = std::move(op_name);
    node->inputs = std::move(inputs);
    node->backward = std::move(backward);
    out.impl_->node = std::move(node);
  }
  return out;
}

NoGradGuard::NoGradGuard() : previous_(t_grad_enabled) {
  t_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { t_grad_enabled = previous_; }

bool grad_enabled() { return t_grad_enabled; }

std::vector<Variable> grad(const Variable& root,
                           std::span<const Variable> wrt,
                           const Variable& grad_root, bool create_graph) {
  FEKF_CHECK(root.defined(), "grad(): undefined root");
  FEKF_CHECK(root.requires_grad(),
             "grad(): root does not require grad — nothing to differentiate");

  // Topological order of variables reachable from the root (inputs first).
  std::vector<Variable> topo;
  {
    std::unordered_set<const VarImpl*> visited;
    // Iterative post-order DFS to survive deep graphs.
    struct Frame {
      Variable var;
      std::size_t next_input = 0;
    };
    std::vector<Frame> stack;
    stack.push_back({root});
    visited.insert(root.key());
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& node = frame.var.node();
      if (node && frame.next_input < node->inputs.size()) {
        const Variable& input = node->inputs[frame.next_input++];
        if (input.defined() && input.requires_grad() &&
            !visited.count(input.key())) {
          visited.insert(input.key());
          stack.push_back({input});
        }
      } else {
        topo.push_back(frame.var);
        stack.pop_back();
      }
    }
  }

  std::unordered_map<const VarImpl*, Variable> grads;
  {
    Variable seed = grad_root;
    if (!seed.defined()) {
      seed = Variable(Tensor::full(root.rows(), root.cols(), 1.0f));
    }
    FEKF_CHECK(seed.value().same_shape(root.value()),
               "grad_root shape must match root");
    grads[root.key()] = seed;
  }

  // Without create_graph, run accumulation ops outside the tape.
  std::unique_ptr<NoGradGuard> guard;
  if (!create_graph) guard = std::make_unique<NoGradGuard>();

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const Variable& var = *it;
    const auto& node = var.node();
    if (!node) continue;
    auto found = grads.find(var.key());
    if (found == grads.end()) continue;  // unreached branch
    const Variable grad_out = found->second;
    std::vector<Variable> input_grads = node->backward(grad_out);
    FEKF_CHECK(input_grads.size() == node->inputs.size(),
               "op '" + node->op_name + "' backward returned " +
                   std::to_string(input_grads.size()) + " grads for " +
                   std::to_string(node->inputs.size()) + " inputs");
    for (std::size_t i = 0; i < input_grads.size(); ++i) {
      const Variable& input = node->inputs[i];
      Variable& g = input_grads[i];
      if (!g.defined() || !input.defined() || !input.requires_grad()) continue;
      FEKF_CHECK(g.value().same_shape(input.value()),
                 "op '" + node->op_name + "' backward grad #" +
                     std::to_string(i) + " shape " + g.value().shape_str() +
                     " != input shape " + input.value().shape_str());
      auto existing = grads.find(input.key());
      if (existing == grads.end()) {
        grads.emplace(input.key(), g);
      } else {
        existing->second = ops::add(existing->second, g);
      }
    }
  }

  std::vector<Variable> result;
  result.reserve(wrt.size());
  for (const Variable& w : wrt) {
    auto found = grads.find(w.key());
    if (found != grads.end()) {
      result.push_back(found->second);
    } else {
      result.push_back(Variable(Tensor::zeros(w.rows(), w.cols())));
    }
  }
  return result;
}

}  // namespace fekf::ag
