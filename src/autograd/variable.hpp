// Tape-based reverse-mode automatic differentiation with support for
// higher-order derivatives ("double backward").
//
// Why double backward matters here: DeePMD fits *forces*, and a force is
// itself a gradient, F = -dE/dr. Any loss (or EKF measurement) built from F
// must be differentiated w.r.t. the network weights, i.e. we differentiate
// through a backward pass. The engine achieves this the same way PyTorch
// does: each op's backward is expressed as a composition of differentiable
// ops, so running backward with `create_graph = true` produces gradients
// that are themselves graph nodes.
//
// A Variable is a cheap shared handle {Tensor value, optional producer
// Node}. Nodes own their input Variables (keeping the upstream graph alive)
// and a backward closure; outputs never back-reference their node, so the
// graph is an acyclic ownership DAG and frees itself when the root dies.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fekf::ag {

class Variable;

/// Backward closure: grad w.r.t. the node's output -> grads w.r.t. each
/// input (an undefined Variable means "no gradient for this input").
using BackwardFn =
    std::function<std::vector<Variable>(const Variable& grad_out)>;

struct Node {
  std::string op_name;
  std::vector<Variable> inputs;
  BackwardFn backward;
};

struct VarImpl {
  Tensor value;
  bool requires_grad = false;
  std::shared_ptr<Node> node;  // producer; null for leaves
};

class Variable {
 public:
  Variable() = default;

  /// Wrap a tensor as a leaf.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const;
  bool requires_grad() const { return impl_ && impl_->requires_grad; }

  i64 rows() const { return value().rows(); }
  i64 cols() const { return value().cols(); }
  i64 numel() const { return value().numel(); }
  f32 item() const { return value().item(); }

  /// Same value, severed from the graph.
  Variable detach() const;

  /// Identity of the underlying variable (used as a map key in backward).
  const VarImpl* key() const { return impl_.get(); }
  const std::shared_ptr<Node>& node() const;

  /// In-place overwrite of a leaf's data (optimizer weight updates). The
  /// tensor storage is reused so existing graphs are unaffected only if the
  /// caller has already released them — the trainers guarantee this by
  /// stepping between iterations.
  void set_value(const Tensor& t);

  /// Construct an op output. Respects the thread-local NoGradGuard: when
  /// grads are disabled or no input requires grad, the node is dropped and
  /// the result is a constant. This is the single entry point custom ops
  /// (descriptor kernels, apply-Jacobian) use to join the tape.
  static Variable make_op(Tensor value, std::string op_name,
                          std::vector<Variable> inputs, BackwardFn backward);

 private:
  std::shared_ptr<VarImpl> impl_;
};

/// Thread-local switch disabling graph construction (inference /
/// plain-backward accumulation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

bool grad_enabled();

/// Reverse-mode gradient of `root` (any shape; `grad_root` defaults to
/// ones) with respect to each Variable in `wrt`.
///
/// With `create_graph == true` the returned gradients carry their own tape
/// and can be differentiated again (used for forces and the force loss).
/// Variables in `wrt` that the root does not depend on yield zero tensors.
std::vector<Variable> grad(const Variable& root,
                           std::span<const Variable> wrt,
                           const Variable& grad_root = {},
                           bool create_graph = false);

}  // namespace fekf::ag
