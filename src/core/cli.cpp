#include "core/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace fekf {

Cli& Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
  FEKF_CHECK(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{default_value, help, std::nullopt};
  order_.push_back(name);
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    FEKF_CHECK(arg.rfind("--", 0) == 0, "expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      auto it = flags_.find(arg);
      FEKF_CHECK(it != flags_.end(), "unknown flag --" + arg);
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool && (i + 1 >= argc ||
                      std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";  // bare boolean switch
      } else {
        FEKF_CHECK(i + 1 < argc, "missing value for --" + arg);
        value = argv[++i];
      }
    }
    auto it = flags_.find(arg);
    FEKF_CHECK(it != flags_.end(), "unknown flag --" + arg);
    it->second.value = value;
  }
  return true;
}

const Cli::Flag& Cli::find(const std::string& name) const {
  auto it = flags_.find(name);
  FEKF_CHECK(it != flags_.end(), "flag --" + name + " was never registered");
  return it->second;
}

std::string Cli::get(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

i64 Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 10);
  FEKF_CHECK(end && *end == '\0', "--" + name + ": '" + v + "' is not an integer");
  return static_cast<i64>(r);
}

f64 Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const f64 r = std::strtod(v.c_str(), &end);
  FEKF_CHECK(end && *end == '\0', "--" + name + ": '" + v + "' is not a number");
  return r;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  fail("--" + name + ": '" + v + "' is not a boolean");
}

bool Cli::provided(const std::string& name) const {
  return find(name).value.has_value();
}

std::string Cli::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    out += "  --" + name + " (default: " + f.default_value + ")\n      " +
           f.help + "\n";
  }
  return out;
}

}  // namespace fekf
