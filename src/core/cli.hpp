// Tiny command-line flag parser used by the bench harnesses and examples.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
// Unknown flags are an error (catches typos in experiment scripts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace fekf {

class Cli {
 public:
  Cli(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register a flag with a default value and help text. Returns *this so
  /// registrations chain.
  Cli& flag(const std::string& name, const std::string& default_value,
            const std::string& help);

  /// Parse argv. On "--help" prints usage and returns false (caller should
  /// exit 0). Throws Error on unknown flags or missing values.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  i64 get_int(const std::string& name) const;
  f64 get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True if the user supplied the flag explicitly (vs. default).
  bool provided(const std::string& name) const;

  std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace fekf
