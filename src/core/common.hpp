// Core definitions shared by every fekf module: fixed-width aliases,
// the library exception type, and runtime check macros.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace fekf {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using f32 = float;
using f64 = double;

/// Exception thrown by all fekf runtime checks. Carries the failing
/// source location so harnesses can print actionable diagnostics.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 std::source_location loc = std::source_location::current())
      : std::runtime_error(format(what, loc)) {}

 private:
  static std::string format(const std::string& what,
                            const std::source_location& loc) {
    return std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
           ": " + what;
  }
};

/// Observability notification fired by fail() just before it throws
/// (defined in core/fault.cpp). One relaxed atomic load when no hook is
/// installed; the flight recorder uses it to dump its ring on FEKF_CHECK
/// failures. Must never throw — fail() is the throwing path.
void notify_failure(const char* what) noexcept;
using FailureHook = void (*)(const char* what);
void set_failure_hook(FailureHook hook);

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc =
                                  std::source_location::current()) {
  notify_failure(msg.c_str());
  throw Error(msg, loc);
}

}  // namespace fekf

/// Runtime invariant check; active in all build types. Use for conditions
/// that depend on user input or cross-module contracts.
#define FEKF_CHECK(cond, msg)                     \
  do {                                            \
    if (!(cond)) {                                \
      ::fekf::fail(std::string("check failed: " #cond " — ") + (msg)); \
    }                                             \
  } while (0)

/// Cheap internal consistency check; compiled out in NDEBUG hot paths
/// where the condition is on a per-element loop.
#ifdef NDEBUG
#define FEKF_DCHECK(cond, msg) ((void)0)
#else
#define FEKF_DCHECK(cond, msg) FEKF_CHECK(cond, msg)
#endif
