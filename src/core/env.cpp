#include "core/env.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/log.hpp"

// The environ symbol is POSIX but not declared by any standard header.
extern char** environ;

namespace fekf::env {
namespace {

// Documentation order == README table order: core runtime first, then
// observability, then per-subsystem knobs.
constexpr Knob kKnobs[] = {
    {"FEKF_NUM_THREADS",
     "Thread-pool width for all parallel_for/reduce regions "
     "(default: hardware concurrency)"},
    {"FEKF_KERNEL_BACKEND",
     "Force a dispatch backend: scalar|simd|avx2|auto (default auto = "
     "fastest bit-exact variant)"},
    {"FEKF_ARENA",
     "Per-thread arena allocator for steady-state steps; 0|off|false "
     "disables (default on)"},
    {"FEKF_LOG_LEVEL",
     "Log threshold: debug|info|warn|error|off or 0-4 (default info)"},
    {"FEKF_TRACE",
     "Path for a Chrome trace_event JSON; setting it enables span "
     "recording (default off)"},
    {"FEKF_TRACE_KERNELS",
     "Also record per-kernel-launch spans in the trace; 0 disables "
     "(default off; needs FEKF_TRACE)"},
    {"FEKF_METRICS",
     "Path for a metrics-registry JSON dump at exit; setting it enables "
     "counters/histograms (default off)"},
    {"FEKF_FLIGHT",
     "Arm the flight recorder: <path>[,events=<n>] — bounded per-thread "
     "ring dumped as a Chrome trace on faults/crashes (default off)"},
    {"FEKF_TELEMETRY",
     "Live metrics sampler: <path>[,interval=<ms>] appends one JSONL "
     "snapshot per interval (default off; interval 250ms)"},
    {"FEKF_FAULT_SPEC",
     "Fault-injection DSL, e.g. 'nan_grad@step=40 rank_fail@step=60' "
     "(default: no faults)"},
    {"FEKF_SERVE_MAX_BATCH",
     "BatchingEvaluator: max requests coalesced into one model pass "
     "(default 16)"},
    {"FEKF_SERVE_MAX_WAIT_US",
     "BatchingEvaluator: max microseconds a request waits for batch-mates "
     "(default 200)"},
    {"FEKF_SERVE_WORKERS",
     "BatchingEvaluator: number of batch-forming worker threads "
     "(default 1)"},
};

// Variables the CI harness itself exports into test/bench child processes
// (FEKF_CI_BUILD_TYPES, FEKF_CI_WIDTHS, ...). They configure the harness,
// not the library, so the unknown-knob scan must not flag them.
constexpr const char* kIgnoredPrefix = "FEKF_CI_";

bool registered(const char* name) {
  for (const Knob& k : kKnobs) {
    if (std::strcmp(k.name, name) == 0) return true;
  }
  return false;
}

// Edit distance for the "did you mean" suggestion. Names are short (< 25
// chars), so the O(n*m) two-row DP is plenty.
std::size_t edit_distance(const char* a, const char* b) {
  const std::size_t n = std::strlen(a);
  const std::size_t m = std::strlen(b);
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

std::vector<std::string> scan_unknown() {
  std::vector<std::string> unknown;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    const char* eq = std::strchr(entry, '=');
    if (eq == nullptr) continue;
    const std::string name(entry, static_cast<std::size_t>(eq - entry));
    if (name.rfind("FEKF_", 0) != 0) continue;
    if (name.rfind(kIgnoredPrefix, 0) == 0) continue;
    if (!registered(name.c_str())) unknown.push_back(name);
  }
  return unknown;
}

// Warn-once latch. NOT std::call_once: FEKF_WARN itself resolves
// FEKF_LOG_LEVEL through env::get on its first use, so a call_once-based
// latch would deadlock on the re-entrant same-thread lookup. The
// exchange-based latch lets the re-entrant call fall straight through.
std::atomic<bool> g_scanned{false};

}  // namespace

std::span<const Knob> knobs() { return kKnobs; }

void warn_unknown_once() {
  if (g_scanned.exchange(true, std::memory_order_acq_rel)) return;
  // Raw fprintf, not FEKF_WARN: the very first env lookup can be
  // FEKF_LOG_LEVEL from inside the logger's own magic-static
  // initialization, and routing this warning through the logger would
  // re-enter that in-progress initialization.
  for (const std::string& name : scan_unknown()) {
    std::size_t best = SIZE_MAX;
    const char* suggestion = nullptr;
    for (const Knob& k : kKnobs) {
      const std::size_t d = edit_distance(name.c_str(), k.name);
      if (d < best) {
        best = d;
        suggestion = k.name;
      }
    }
    if (suggestion != nullptr && best <= 4) {
      std::fprintf(stderr,
                   "[warn] unknown environment variable %s "
                   "(did you mean %s?)\n",
                   name.c_str(), suggestion);
    } else {
      std::fprintf(stderr,
                   "[warn] unknown environment variable %s "
                   "(not a registered FEKF_* knob)\n",
                   name.c_str());
    }
  }
}

std::span<const std::string> scan_unknown_for_test() {
  static std::vector<std::string> result;
  static std::mutex m;
  std::lock_guard<std::mutex> lock(m);
  result = scan_unknown();
  return result;
}

const char* get(const char* name) {
  FEKF_CHECK(registered(name),
             std::string("env knob '") + name +
                 "' is not registered in src/core/env.cpp");
  warn_unknown_once();
  return std::getenv(name);
}

bool is_set(const char* name) {
  const char* v = get(name);
  return v != nullptr && v[0] != '\0';
}

std::string get_or(const char* name, const std::string& fallback) {
  const char* v = get(name);
  return (v != nullptr && v[0] != '\0') ? std::string(v) : fallback;
}

i64 get_i64(const char* name, i64 fallback) {
  const char* v = get(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') {
    FEKF_WARN << name << "='" << v << "' is not an integer; using "
              << fallback;
    return fallback;
  }
  return static_cast<i64>(parsed);
}

f64 get_f64(const char* name, f64 fallback) {
  const char* v = get(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (errno != 0 || end == v || *end != '\0') {
    FEKF_WARN << name << "='" << v << "' is not a number; using " << fallback;
    return fallback;
  }
  return parsed;
}

bool get_flag(const char* name, bool fallback) {
  const char* v = get(name);
  if (v == nullptr) return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace fekf::env
