// Centralized runtime environment knobs (DESIGN.md §14 "Serving
// architecture", README "Runtime configuration").
//
// Every FEKF_* environment variable the process reads goes through this
// accessor instead of a scattered std::getenv: the knob registry below is
// the single source of truth for what exists (the README env table is
// generated from it by knob_table()), and the first lookup scans the
// process environment for FEKF_*-prefixed variables that are NOT
// registered, warning once per process with the nearest registered name —
// so `FEKF_NUM_THREDS=4` fails loudly instead of silently running at the
// default width.
//
// Typed getters never abort on a malformed value: they warn and return the
// caller's fallback, matching the long-standing contract that an env typo
// must not kill a training run. Looking up a name that is not in the
// registry is a programming error and does abort (FEKF_CHECK) — it means a
// call site forgot to register its knob.
#pragma once

#include <span>
#include <string>

#include "core/common.hpp"

namespace fekf::env {

/// One registered knob (name + one-line summary for docs/tests).
struct Knob {
  const char* name;
  const char* summary;
};

/// Every FEKF_* variable the process honors, in documentation order.
std::span<const Knob> knobs();

/// Raw lookup of a REGISTERED knob. Returns nullptr when unset. Aborts via
/// FEKF_CHECK if `name` is not in knobs() — register new knobs in env.cpp.
/// The first call (any getter) performs the unknown-variable scan.
const char* get(const char* name);

/// True when the variable is set to a non-empty value.
bool is_set(const char* name);

/// String value or `fallback` when unset/empty.
std::string get_or(const char* name, const std::string& fallback);

/// Integer knob: full-token strtoll parse; malformed or out-of-range
/// values warn once per lookup and return `fallback`.
i64 get_i64(const char* name, i64 fallback);

/// Floating knob with the same warn-and-fall-back contract.
f64 get_f64(const char* name, f64 fallback);

/// Boolean knob: unset -> fallback; "0"/"off"/"false" (case-sensitive,
/// matching the historical FEKF_ARENA parsing) -> false; anything else
/// (including empty) -> true.
bool get_flag(const char* name, bool fallback);

/// Scan the environment for FEKF_*-prefixed variables that are not
/// registered (and not FEKF_CI_*, the CI-harness namespace) and warn once
/// per process, suggesting the nearest registered name. Called lazily by
/// the getters; exposed for tests.
void warn_unknown_once();

/// Test hook: re-run the unknown scan regardless of the once-latch,
/// returning the offending names instead of logging.
std::span<const std::string> scan_unknown_for_test();

}  // namespace fekf::env
