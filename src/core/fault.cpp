#include "core/fault.hpp"

#include <cstdio>
#include <cstdlib>

namespace fekf {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNanGrad:
      return "nan_grad";
    case FaultKind::kCorruptCkpt:
      return "corrupt_ckpt";
    case FaultKind::kRankFail:
      return "rank_fail";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("FEKF_FAULT_SPEC")) {
    configure(env);
  }
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Arm& a : arms_) a = Arm{};
}

void FaultInjector::configure(const std::string& spec) {
  clear();
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    i64 at_step = -1;
    const std::size_t at = entry.find('@');
    if (at != std::string::npos) {
      const std::string trigger = entry.substr(at + 1);
      entry.resize(at);
      constexpr const char* kStepPrefix = "step=";
      FEKF_CHECK(trigger.rfind(kStepPrefix, 0) == 0,
                 "fault spec trigger must be 'step=N', got '" + trigger +
                     "'");
      char* endp = nullptr;
      const char* num = trigger.c_str() + 5;
      at_step = static_cast<i64>(std::strtoll(num, &endp, 10));
      FEKF_CHECK(endp != num && *endp == '\0' && at_step >= 0,
                 "bad fault step in '" + trigger + "'");
    }

    int kind = -1;
    for (int k = 0; k < kNumFaultKinds; ++k) {
      if (entry == fault_kind_name(static_cast<FaultKind>(k))) kind = k;
    }
    FEKF_CHECK(kind >= 0, "unknown fault kind '" + entry +
                              "' (want nan_grad|corrupt_ckpt|rank_fail)");
    arms_[kind] = Arm{/*armed=*/true, /*fired=*/false, at_step};
  }
}

bool FaultInjector::fire(FaultKind kind, i64 step) {
  std::lock_guard<std::mutex> lock(mutex_);
  Arm& arm = arms_[static_cast<int>(kind)];
  if (!arm.armed || arm.fired) return false;
  if (arm.at_step >= 0 && step < arm.at_step) return false;
  arm.fired = true;
  return true;
}

bool FaultInjector::armed(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Arm& arm = arms_[static_cast<int>(kind)];
  return arm.armed && !arm.fired;
}

void FaultInjector::corrupt_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' to corrupt it");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  FEKF_CHECK(size > 0, "cannot corrupt empty file '" + path + "'");
  const long target = size / 2;
  std::fseek(f, target, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, target, SEEK_SET);
  std::fputc((c == EOF ? 0 : c) ^ 0x20, f);  // flip a bit, stay printable
  std::fclose(f);
}

}  // namespace fekf
