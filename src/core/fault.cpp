#include "core/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/env.hpp"

namespace fekf {

namespace detail {
std::atomic<FaultHook> g_fault_hook{nullptr};
}  // namespace detail

void set_fault_hook(FaultHook hook) {
  detail::g_fault_hook.store(hook, std::memory_order_relaxed);
}

namespace {
std::atomic<FailureHook> g_failure_hook{nullptr};
}  // namespace

void set_failure_hook(FailureHook hook) {
  g_failure_hook.store(hook, std::memory_order_relaxed);
}

void notify_failure(const char* what) noexcept {
  if (FailureHook hook = g_failure_hook.load(std::memory_order_relaxed)) {
    hook(what);
  }
}

namespace {

constexpr std::string_view kKnownKinds[] = {
    faults::kNanGrad, faults::kCorruptCkpt, faults::kRankFail,
    faults::kRankJoin, faults::kStraggler, faults::kMsgDrop,
    faults::kMsgCorrupt,
};

bool is_known_kind(std::string_view kind) {
  for (const std::string_view k : kKnownKinds) {
    if (k == kind) return true;
  }
  return false;
}

std::string known_kinds_list() {
  std::string out;
  for (const std::string_view k : kKnownKinds) {
    if (!out.empty()) out += '|';
    out += k;
  }
  return out;
}

/// FNV-1a of the kind name: the default seed of a probabilistic arm that
/// carries no seed= qualifier. Stable across runs by construction.
u64 default_seed(std::string_view kind) {
  u64 h = 0xcbf29ce484222325ULL;
  for (const char c : kind) {
    h ^= static_cast<u64>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[noreturn]] void bad_token(const std::string& token, const std::string& why) {
  throw Error("fault spec: " + why + " in token '" + token + "'");
}

i64 parse_i64(const std::string& token, const char* text, char** endp) {
  const i64 v = static_cast<i64>(std::strtoll(text, endp, 10));
  if (*endp == text) bad_token(token, "expected a number");
  return v;
}

f64 parse_f64(const std::string& token, const char* text, char** endp) {
  const f64 v = std::strtod(text, endp);
  if (*endp == text) bad_token(token, "expected a number");
  return v;
}

/// Apply one "key=value" qualifier token to `arm`.
void apply_qualifier(FaultArm& arm, bool& has_seed, const std::string& token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    bad_token(token, "expected 'key=value' qualifier");
  }
  const std::string key = token.substr(0, eq);
  const std::string value = token.substr(eq + 1);
  char* endp = nullptr;
  if (key == "step") {
    arm.at_step = parse_i64(token, value.c_str(), &endp);
    if (arm.at_step < 0) bad_token(token, "step must be >= 0");
    if (*endp == 'x') {
      const char* rep = endp + 1;
      arm.repeat = parse_i64(token, rep, &endp);
      if (arm.repeat < 1) bad_token(token, "repeat count must be >= 1");
    }
    if (*endp != '\0') bad_token(token, "trailing characters after step");
  } else if (key == "p") {
    arm.prob = parse_f64(token, value.c_str(), &endp);
    if (*endp != '\0') bad_token(token, "trailing characters after p");
    if (!(arm.prob >= 0.0 && arm.prob <= 1.0)) {
      bad_token(token, "p must be in [0, 1]");
    }
  } else if (key == "seed") {
    arm.seed = static_cast<u64>(parse_i64(token, value.c_str(), &endp));
    if (*endp != '\0') bad_token(token, "trailing characters after seed");
    has_seed = true;
  } else if (key == "factor") {
    arm.factor = parse_f64(token, value.c_str(), &endp);
    if (*endp != '\0') bad_token(token, "trailing characters after factor");
    if (!(arm.factor > 0.0) || !std::isfinite(arm.factor)) {
      bad_token(token, "factor must be finite and > 0");
    }
  } else if (key == "rank") {
    arm.rank = parse_i64(token, value.c_str(), &endp);
    if (*endp != '\0') bad_token(token, "trailing characters after rank");
    if (arm.rank < 0) bad_token(token, "rank must be >= 0");
  } else {
    bad_token(token, "unknown qualifier '" + key + "=' "
                     "(want step|p|seed|factor|rank)");
  }
}

}  // namespace

std::vector<std::string_view> fault_kind_names() {
  return {std::begin(kKnownKinds), std::end(kKnownKinds)};
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() { configure_from_env(); }

void FaultInjector::configure_from_env() {
  const char* env = env::get("FEKF_FAULT_SPEC");
  configure(env != nullptr ? env : "");
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  arms_.clear();
}

void FaultInjector::configure(const std::string& spec) {
  // Parse into a local registry first so a malformed spec leaves the
  // injector unchanged.
  std::vector<ArmState> parsed;
  std::vector<bool> has_seed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string token = spec.substr(pos, comma - pos);
    const bool last = comma == spec.size();
    pos = comma + 1;
    if (token.empty()) {
      if (last && spec.empty()) break;  // the empty spec disarms everything
      bad_token(token.empty() ? "," : token,
                "empty token (trailing or doubled comma?)");
    }
    const std::size_t at = token.find('@');
    const bool is_qualifier =
        at == std::string::npos && token.find('=') != std::string::npos;
    if (is_qualifier) {
      // "seed=7" continues the arm on its left ("msg_drop@p=0.01,seed=7").
      if (parsed.empty()) {
        bad_token(token, "qualifier with no fault kind before it");
      }
      bool seeded = has_seed.back();
      apply_qualifier(parsed.back().arm, seeded, token);
      has_seed.back() = seeded;
    } else {
      FaultArm arm;
      arm.kind = at == std::string::npos ? token : token.substr(0, at);
      if (!is_known_kind(arm.kind)) {
        bad_token(token, "unknown fault kind '" + arm.kind + "' (want " +
                             known_kinds_list() + ")");
      }
      for (const ArmState& prev : parsed) {
        if (prev.arm.kind == arm.kind) {
          bad_token(token, "duplicate arm for kind '" + arm.kind + "'");
        }
      }
      bool seeded = false;
      if (at != std::string::npos) {
        apply_qualifier(arm, seeded, token.substr(at + 1));
      }
      parsed.push_back(ArmState{std::move(arm), 0, Rng(0)});
      has_seed.push_back(seeded);
    }
    if (last) break;
  }
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    FaultArm& arm = parsed[i].arm;
    if (arm.prob >= 0.0 && arm.repeat > 1) {
      bad_token(arm.kind, "probabilistic arms cannot carry a repeat count");
    }
    if (arm.prob >= 0.0 && !has_seed[i]) arm.seed = default_seed(arm.kind);
    parsed[i].rng.reseed(arm.seed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  arms_ = std::move(parsed);
}

FaultInjector::ArmState* FaultInjector::find(std::string_view kind) {
  for (ArmState& a : arms_) {
    if (a.arm.kind == kind) return &a;
  }
  return nullptr;
}

const FaultInjector::ArmState* FaultInjector::find(
    std::string_view kind) const {
  for (const ArmState& a : arms_) {
    if (a.arm.kind == kind) return &a;
  }
  return nullptr;
}

bool FaultInjector::fire(std::string_view kind, i64 step) {
  return fire_detail(kind, step).has_value();
}

std::optional<FiredFault> FaultInjector::fire_detail(std::string_view kind,
                                                     i64 step) {
  std::lock_guard<std::mutex> lock(mutex_);
  ArmState* a = find(kind);
  if (a == nullptr) return std::nullopt;
  if (a->arm.at_step >= 0 && step < a->arm.at_step) return std::nullopt;
  if (a->arm.prob >= 0.0) {
    // Probabilistic arm: one draw per eligible poll.
    if (a->rng.uniform() >= a->arm.prob) return std::nullopt;
  } else {
    if (a->fired >= a->arm.repeat) return std::nullopt;
  }
  ++a->fired;
  return FiredFault{a->arm.factor, a->arm.rank};
}

bool FaultInjector::armed(std::string_view kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ArmState* a = find(kind);
  if (a == nullptr) return false;
  if (a->arm.prob >= 0.0) return true;
  return a->fired < a->arm.repeat;
}

std::vector<FaultArm> FaultInjector::arms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultArm> out;
  out.reserve(arms_.size());
  for (const ArmState& a : arms_) out.push_back(a.arm);
  return out;
}

void FaultInjector::corrupt_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  FEKF_CHECK(f != nullptr,
             "cannot open '" + path + "' to corrupt it (missing file?)");
  bool seek_ok = std::fseek(f, 0, SEEK_END) == 0;
  const long size = seek_ok ? std::ftell(f) : -1L;
  if (size <= 0) {
    std::fclose(f);
    FEKF_CHECK(size == 0, "cannot size '" + path + "' to corrupt it");
    throw Error("cannot corrupt empty file '" + path + "'");
  }
  // size/2 is always a valid offset (0 for a one-byte file).
  const long target = size / 2;
  seek_ok = std::fseek(f, target, SEEK_SET) == 0;
  const int c = seek_ok ? std::fgetc(f) : EOF;
  if (c == EOF || std::fseek(f, target, SEEK_SET) != 0) {
    std::fclose(f);
    throw Error("cannot read '" + path + "' at byte " +
                std::to_string(target) + " to corrupt it");
  }
  std::fputc(c ^ 0x20, f);  // flip a bit, stay printable
  std::fclose(f);
}

}  // namespace fekf
