// Deterministic fault injection + the fault log carried in training
// results.
//
// The resilience contract (DESIGN.md §10) is only credible if every
// recovery path is exercised by tests, not just claimed. FaultInjector is
// the single switchboard: a spec string — from the FEKF_FAULT_SPEC
// environment variable or configure() — arms one-shot faults that the
// instrumented sites (trainer gradient assembly, checkpoint writer, the
// virtual cluster) poll at deterministic points:
//
//   nan_grad@step=17     poison the measurement gradient at optimizer
//                        step 17 (trainer sentinels must roll back)
//   corrupt_ckpt         flip a byte in the next checkpoint written
//                        (the loader's checksum must reject it)
//   rank_fail@step=30    kill the highest live rank of the virtual
//                        cluster at training step 30 (its shard is
//                        redistributed and the re-shard is charged to the
//                        simulated-time ledger)
//
// Specs are comma-separated ("nan_grad@step=3,rank_fail@step=5"). A fault
// without "@step=N" fires at the first opportunity. Every fault fires at
// most once per configure(), so injected runs are exactly reproducible —
// the recovery-determinism tests rely on it.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"

namespace fekf {

enum class FaultKind : int { kNanGrad = 0, kCorruptCkpt = 1, kRankFail = 2 };
inline constexpr int kNumFaultKinds = 3;

const char* fault_kind_name(FaultKind kind);

/// One recovery (or injection) event, recorded by trainers and the virtual
/// cluster in the order it happened.
struct FaultEvent {
  i64 step = 0;        ///< optimizer / training step the event hit
  std::string kind;    ///< signal: "nan_grad", "nonfinite_loss",
                       ///< "exploding_loss", "worker_exception",
                       ///< "corrupt_ckpt", "rank_fail", ...
  std::string action;  ///< recovery taken: "rollback_skip_batch",
                       ///< "reshard", "injected", ...
  std::string detail;  ///< free text (exception message, signal values)
};

struct FaultLog {
  std::vector<FaultEvent> events;

  void record(i64 step, std::string kind, std::string action,
              std::string detail = {}) {
    events.push_back({step, std::move(kind), std::move(action),
                      std::move(detail)});
  }
  i64 count(std::string_view kind) const {
    i64 n = 0;
    for (const FaultEvent& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
  bool empty() const { return events.empty(); }
};

class FaultInjector {
 public:
  /// Process-wide injector, armed from FEKF_FAULT_SPEC on first use.
  static FaultInjector& instance();

  /// (Re-)arm from a spec string; clears previous arms and fired flags.
  /// Throws Error on a malformed spec.
  void configure(const std::string& spec);
  /// Disarm everything.
  void clear();

  /// Poll point: true exactly once, when `kind` is armed and `step` has
  /// reached its trigger step (always true for step-less arms). Thread-safe.
  bool fire(FaultKind kind, i64 step);

  /// True if `kind` is armed and has not fired yet.
  bool armed(FaultKind kind) const;

  /// Flip one byte in the middle of `path` (the corrupt_ckpt payload).
  static void corrupt_file(const std::string& path);

 private:
  FaultInjector();

  struct Arm {
    bool armed = false;
    bool fired = false;
    i64 at_step = -1;  ///< -1: first opportunity
  };

  mutable std::mutex mutex_;
  Arm arms_[kNumFaultKinds];
};

}  // namespace fekf
