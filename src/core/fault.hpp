// Deterministic fault injection + the fault log carried in training
// results.
//
// The resilience contract (DESIGN.md §10) is only credible if every
// recovery path is exercised by tests, not just claimed. FaultInjector is
// the single switchboard: a spec string — from the FEKF_FAULT_SPEC
// environment variable or configure() — arms faults that the instrumented
// sites (trainer gradient assembly, checkpoint writer, the elastic
// virtual cluster) poll at deterministic points.
//
// Spec grammar (comma-separated arms; qualifiers attach to the arm on
// their left):
//
//   spec  := arm ("," (arm | qual))*
//   arm   := kind | kind "@" qual
//   qual  := key "=" value
//   kind  := nan_grad | corrupt_ckpt | rank_fail | rank_join
//          | straggler | msg_drop | msg_corrupt
//   key   := step | p | seed | factor | rank
//
// so "rank_fail@step=30,rank_join@step=60" arms two faults and
// "msg_drop@p=0.01,seed=7" arms one probabilistic fault with two
// qualifiers. Deterministic arms (`step=N`, or no qualifier = first
// opportunity) fire on the first `repeat` polls whose step has reached N;
// `step=30x3` sets repeat = 3, so the arm fires on three consecutive
// polls. Probabilistic arms (`p=0.01`) fire per poll with probability p,
// drawn from a dedicated xoshiro stream seeded by `seed=` (or a stable
// per-kind default), so injected runs are exactly reproducible — the
// recovery-determinism tests rely on it. `factor=` (straggler slowdown)
// and `rank=` (target rank id) are payload qualifiers the poll site reads
// back via FiredFault.
//
// Fault kinds and their poll sites:
//
//   nan_grad@step=17     poison the measurement gradient at optimizer
//                        step 17 (trainer sentinels must roll back)
//   corrupt_ckpt         flip a byte in the next checkpoint written
//                        (the loader's checksum must reject it)
//   rank_fail@step=30    silence a virtual-cluster rank at step 30; the
//                        heartbeat failure detector evicts it and the
//                        survivors re-shard (dist/cluster.hpp)
//   rank_join@step=60    a new rank joins at step 60 and receives the
//                        weight + covariance catch-up transfer
//   straggler@step=9     slow one rank down (factor=F, default 4x); the
//                        cluster's bounded-wait policy decides wait vs
//                        drop-and-reshard
//   msg_drop@p=0.01      each simulated ring message is dropped with
//                        probability p and retried with backoff
//   msg_corrupt@p=0.01   ditto, but the message arrives corrupted and is
//                        detected + retried
//
// Every configure() resets all fired counts and RNG streams, so a spec
// replays identically run to run. Malformed specs throw a single-line
// Error naming the offending token (tests/test_core.cpp).
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"
#include "core/rng.hpp"

namespace fekf {

/// Canonical fault-kind names (the registry keys). configure() rejects
/// anything else.
namespace faults {
inline constexpr const char* kNanGrad = "nan_grad";
inline constexpr const char* kCorruptCkpt = "corrupt_ckpt";
inline constexpr const char* kRankFail = "rank_fail";
inline constexpr const char* kRankJoin = "rank_join";
inline constexpr const char* kStraggler = "straggler";
inline constexpr const char* kMsgDrop = "msg_drop";
inline constexpr const char* kMsgCorrupt = "msg_corrupt";
}  // namespace faults

/// All kind names configure() accepts, for diagnostics and tests.
std::vector<std::string_view> fault_kind_names();

/// One recovery (or injection) event, recorded by trainers and the virtual
/// cluster in the order it happened.
struct FaultEvent {
  i64 step = 0;        ///< optimizer / training step the event hit
  std::string kind;    ///< signal: "nan_grad", "nonfinite_loss",
                       ///< "rank_fail", "rank_evict", "rank_join",
                       ///< "straggler", "link_degraded", ...
  std::string action;  ///< recovery taken: "rollback_skip_batch",
                       ///< "reshard", "catchup", "injected", ...
  std::string detail;  ///< free text (exception message, signal values)
};

/// Observability hook fired after every FaultLog::record — the flight
/// recorder registers one so divergence rollbacks, injected faults, and
/// cluster membership events each flush a post-mortem trace. One relaxed
/// atomic load per record when no hook is installed. The hook runs on the
/// recording thread and must not throw.
using FaultHook = void (*)(const FaultEvent& event);
void set_fault_hook(FaultHook hook);

namespace detail {
extern std::atomic<FaultHook> g_fault_hook;
inline void notify_fault(const FaultEvent& event) {
  if (FaultHook hook = g_fault_hook.load(std::memory_order_relaxed)) {
    hook(event);
  }
}
}  // namespace detail

struct FaultLog {
  std::vector<FaultEvent> events;

  void record(i64 step, std::string kind, std::string action,
              std::string detail = {}) {
    events.push_back({step, std::move(kind), std::move(action),
                      std::move(detail)});
    ::fekf::detail::notify_fault(events.back());
  }
  i64 count(std::string_view kind) const {
    i64 n = 0;
    for (const FaultEvent& e : events) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
  bool empty() const { return events.empty(); }
};

/// One parsed arm of the fault spec.
struct FaultArm {
  std::string kind;
  i64 at_step = -1;   ///< -1: first opportunity
  i64 repeat = 1;     ///< deterministic arms: consecutive firing polls
  f64 prob = -1.0;    ///< >= 0: probabilistic arm (p= qualifier)
  u64 seed = 0;       ///< probabilistic draw stream
  f64 factor = -1.0;  ///< straggler slowdown; site default when < 0
  i64 rank = -1;      ///< target rank id; site default when < 0
};

/// What a poll site learns when an arm fires (the arm's payload
/// qualifiers, resolved so the site can honor rank= / factor=).
struct FiredFault {
  f64 factor = -1.0;  ///< straggler slowdown; < 0 = site default
  i64 rank = -1;      ///< target rank id; < 0 = site default
};

class FaultInjector {
 public:
  /// Process-wide injector, armed from FEKF_FAULT_SPEC on first use.
  static FaultInjector& instance();

  /// (Re-)arm from a spec string; clears previous arms, fired counts and
  /// probabilistic streams. Throws Error on a malformed spec, naming the
  /// offending token.
  void configure(const std::string& spec);
  /// Re-arm from FEKF_FAULT_SPEC (empty spec when the variable is unset).
  /// Test fixtures use this to restore the ambient environment arms.
  void configure_from_env();
  /// Disarm everything.
  void clear();

  /// Poll point. Deterministic arms: true exactly `repeat` times, on the
  /// first polls whose `step` has reached the trigger step (always
  /// eligible for step-less arms). Probabilistic arms: an independent
  /// seeded draw per poll, true with probability p. Thread-safe; draw
  /// order is the poll order, so single-threaded poll sites stay exactly
  /// reproducible.
  bool fire(std::string_view kind, i64 step);

  /// fire(), plus the arm's payload qualifiers when it fires.
  std::optional<FiredFault> fire_detail(std::string_view kind, i64 step);

  /// True if `kind` is armed and can still fire.
  bool armed(std::string_view kind) const;

  /// Parsed arms, in spec order (diagnostics and tests).
  std::vector<FaultArm> arms() const;

  /// Flip one byte in the middle of `path` (the corrupt_ckpt payload).
  /// Throws Error for a missing or empty file — never indexes past the
  /// end, even for a one-byte file.
  static void corrupt_file(const std::string& path);

 private:
  FaultInjector();

  struct ArmState {
    FaultArm arm;
    i64 fired = 0;
    Rng rng;  ///< probabilistic arms only
  };

  ArmState* find(std::string_view kind);
  const ArmState* find(std::string_view kind) const;

  mutable std::mutex mutex_;
  std::vector<ArmState> arms_;
};

}  // namespace fekf
