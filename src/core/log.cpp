#include "core/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fekf {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  std::fflush(stderr);
}

}  // namespace fekf
