#include "core/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "core/env.hpp"

namespace fekf {

namespace {

std::mutex g_mutex;

std::chrono::steady_clock::time_point log_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

/// FEKF_LOG_LEVEL accepts a level name (case-insensitive: debug, info,
/// warn, error, off) or its integer value 0-4. Malformed values fall back
/// to the default — the logger must never abort a run over an env typo.
int initial_level() {
  const char* env = env::get("FEKF_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") return static_cast<int>(LogLevel::kDebug);
  if (value == "info") return static_cast<int>(LogLevel::kInfo);
  if (value == "warn" || value == "warning") {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (value == "error") return static_cast<int>(LogLevel::kError);
  if (value == "off" || value == "none") {
    return static_cast<int>(LogLevel::kOff);
  }
  if (value.size() == 1 && value[0] >= '0' && value[0] <= '4') {
    return value[0] - '0';
  }
  std::fprintf(stderr,
               "[warn] FEKF_LOG_LEVEL='%s' not recognized "
               "(debug|info|warn|error|off or 0-4); using info\n",
               env);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{initial_level()};
  return level;
}

}  // namespace

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level));
}

LogLevel log_level() { return static_cast<LogLevel>(level_store().load()); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < level_store().load()) return;
  const f64 elapsed = std::chrono::duration<f64>(
                          std::chrono::steady_clock::now() - log_epoch())
                          .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10.3fs][%s] %s\n", elapsed, level_name(level),
               msg.c_str());
  std::fflush(stderr);
}

}  // namespace fekf
