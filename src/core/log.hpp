// Minimal leveled logger. Benchmarks and examples print their primary output
// through the Table facility; the logger is for progress and diagnostics.
#pragma once

#include <sstream>
#include <string>

#include "core/common.hpp"

namespace fekf {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level. Messages below it are dropped. The initial
/// level comes from the FEKF_LOG_LEVEL environment variable (a level name
/// or 0-4; malformed values fall back to info, never abort).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line ("[<elapsed>s][level] message\n") to stderr, thread-safe.
/// The timestamp is steady-clock seconds since process start, so log lines
/// correlate directly with trace-span timestamps (obs/trace.hpp).
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace fekf

#define FEKF_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::fekf::log_level())) { \
  } else                                                     \
    ::fekf::detail::LogStream(level)

#define FEKF_INFO FEKF_LOG(::fekf::LogLevel::kInfo)
#define FEKF_WARN FEKF_LOG(::fekf::LogLevel::kWarn)
#define FEKF_DEBUG FEKF_LOG(::fekf::LogLevel::kDebug)
#define FEKF_ERROR FEKF_LOG(::fekf::LogLevel::kError)
