// Deterministic, fast pseudo-random number generation.
//
// Training reproducibility matters for the convergence experiments (Tables 1
// and 4 compare epoch counts across optimizers), so every stochastic choice
// in the library — MD thermostats, weight init, batch shuffling, force-group
// selection — draws from an explicitly seeded Rng instance. No global state.
#pragma once

#include <array>
#include <cmath>

#include "core/common.hpp"

namespace fekf {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Complete Rng stream state — exposed so checkpoints can round-trip a
/// generator mid-stream (resumed training must draw the exact sequence the
/// uninterrupted run would have). The gaussian pair cache is part of the
/// stream: dropping it would desynchronize the next gaussian() draw.
struct RngState {
  std::array<u64, 4> s{};
  bool have_gauss = false;
  f64 cached_gauss = 0.0;
};

/// xoshiro256** — the workhorse generator. Satisfies the bare minimum of
/// UniformRandomBitGenerator so it can also feed <random> adaptors in tests.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5eedULL) { reseed(seed); }

  void reseed(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    have_gauss_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  u64 operator()() { return next(); }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  f64 uniform() { return static_cast<f64>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  u64 uniform_index(u64 n) {
    FEKF_DCHECK(n > 0, "uniform_index needs n > 0");
    // Lemire's multiply-shift rejection method (unbiased).
    u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    u64 l = static_cast<u64>(m);
    if (l < n) {
      const u64 t = (~n + 1) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  f64 gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    f64 u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const f64 f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    have_gauss_ = true;
    return u * f;
  }

  f64 gaussian(f64 mean, f64 stddev) { return mean + stddev * gaussian(); }

  RngState state() const { return {state_, have_gauss_, cached_gauss_}; }
  void set_state(const RngState& s) {
    state_ = s.s;
    have_gauss_ = s.have_gauss;
    cached_gauss_ = s.cached_gauss;
  }

  /// Derive an independent child stream (for per-rank / per-worker use).
  Rng split() {
    Rng child(0);
    SplitMix64 sm(next() ^ 0xa02bdbf7bb3c0a7ULL);
    for (auto& s : child.state_) s = sm.next();
    return child;
  }

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    const u64 n = static_cast<u64>(c.size());
    for (u64 i = n; i > 1; --i) {
      const u64 j = uniform_index(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
  bool have_gauss_ = false;
  f64 cached_gauss_ = 0.0;
};

}  // namespace fekf
