#include "core/table.hpp"

#include <cmath>
#include <cstdio>

namespace fekf {

void Table::add_row(std::vector<std::string> row) {
  FEKF_CHECK(row.size() == header_.size(),
             "row width " + std::to_string(row.size()) + " != header width " +
                 std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string Table::num(f64 v, int precision) {
  char buf[64];
  if (std::abs(v) >= 1e5 || (v != 0.0 && std::abs(v) < 1e-4)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = emit(header_);
  std::string sep = "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += emit(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace fekf
