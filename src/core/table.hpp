// ASCII table printer. The bench harnesses print the paper's tables/figure
// series through this so EXPERIMENTS.md can quote output verbatim.
#pragma once

#include <string>
#include <vector>

#include "core/common.hpp"

namespace fekf {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Convenience: stringify a mixed row (numbers formatted compactly).
  static std::string num(f64 v, int precision = 4);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  /// Render directly to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fekf
