#include "core/textio.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fekf {

u64 fnv1a64(std::string_view bytes) {
  u64 h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[96];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

void TextWriter::key(std::string_view name) {
  if (!out_.empty() && out_.back() != '\n') out_.push_back('\n');
  out_.append(name);
}

void TextWriter::token(std::string_view t) {
  out_.push_back(' ');
  out_.append(t);
}

void TextWriter::i64v(i64 v) { appendf(out_, " %" PRId64, v); }
void TextWriter::u64v(u64 v) { appendf(out_, " %" PRIu64, v); }
void TextWriter::f64v(f64 v) { appendf(out_, " %a", v); }
void TextWriter::size(std::size_t v) { appendf(out_, " %zu", v); }

void TextWriter::bytes(std::string_view s) {
  appendf(out_, " %zu ", s.size());
  out_.append(s);
}

void TextWriter::end_line() { out_.push_back('\n'); }

TextReader::TextReader(std::string_view text, std::string name)
    : text_(text), name_(std::move(name)) {}

void TextReader::malformed(const std::string& what) const {
  fail(name_ + ":" + std::to_string(line_) + ": " + what);
}

void TextReader::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }
}

bool TextReader::at_end() {
  skip_ws();
  return pos_ >= text_.size();
}

std::string_view TextReader::token() {
  skip_ws();
  if (pos_ >= text_.size()) malformed("unexpected end of file");
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
  return text_.substr(start, pos_ - start);
}

void TextReader::expect(std::string_view expected) {
  const std::string_view got = token();
  if (got != expected) {
    malformed("expected '" + std::string(expected) + "', got '" +
              std::string(got) + "'");
  }
}

namespace {

/// Copy a token into a stack buffer for the strto* family.
struct TokenBuf {
  char buf[80];
  TokenBuf(const TextReader& r, std::string_view t) {
    if (t.size() >= sizeof(buf)) {
      fail(r.name() + ":" + std::to_string(r.line()) +
           ": token too long for a number: '" + std::string(t.substr(0, 16)) +
           "...'");
    }
    std::memcpy(buf, t.data(), t.size());
    buf[t.size()] = '\0';
  }
};

}  // namespace

i64 TextReader::read_i64() {
  const std::string_view t = token();
  TokenBuf tb(*this, t);
  char* endp = nullptr;
  const long long v = std::strtoll(tb.buf, &endp, 10);
  if (endp != tb.buf + t.size() || t.empty()) {
    malformed("expected an integer, got '" + std::string(t) + "'");
  }
  return static_cast<i64>(v);
}

u64 TextReader::read_u64() {
  const std::string_view t = token();
  TokenBuf tb(*this, t);
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(tb.buf, &endp, 10);
  if (endp != tb.buf + t.size() || t.empty() || tb.buf[0] == '-') {
    malformed("expected an unsigned integer, got '" + std::string(t) + "'");
  }
  return static_cast<u64>(v);
}

f64 TextReader::read_f64() {
  const std::string_view t = token();
  TokenBuf tb(*this, t);
  char* endp = nullptr;
  const f64 v = std::strtod(tb.buf, &endp);
  if (endp != tb.buf + t.size() || t.empty()) {
    malformed("expected a (hex) float, got '" + std::string(t) + "'");
  }
  return v;
}

std::string TextReader::read_bytes() {
  const u64 n = read_u64();
  // Exactly one separator byte, then n raw bytes.
  if (pos_ >= text_.size() || text_[pos_] != ' ') {
    malformed("expected ' ' before a length-prefixed string");
  }
  ++pos_;
  if (pos_ + n > text_.size()) {
    malformed("length-prefixed string truncated (wanted " + std::to_string(n) +
              " bytes)");
  }
  std::string out(text_.substr(pos_, n));
  for (const char c : out) {
    if (c == '\n') ++line_;
  }
  pos_ += n;
  return out;
}

void TextReader::read_f64s(std::vector<f64>& out, std::size_t n) {
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = read_f64();
}

void write_checksummed_file(const std::string& path, std::string_view magic,
                            std::string_view body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  FEKF_CHECK(f != nullptr, "cannot open '" + tmp + "' for writing");
  char header[128];
  const int hn =
      std::snprintf(header, sizeof(header), "%.*s %zu %016" PRIx64 "\n",
                    static_cast<int>(magic.size()), magic.data(), body.size(),
                    fnv1a64(body));
  const bool ok =
      std::fwrite(header, 1, static_cast<std::size_t>(hn), f) ==
          static_cast<std::size_t>(hn) &&
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    fekf::fail("short write to '" + tmp + "'");
  }
  FEKF_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot rename '" + tmp + "' to '" + path + "'");
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' for reading");
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string read_checksummed_file(const std::string& path,
                                  std::string_view magic) {
  const std::string text = read_file(path);
  TextReader header(text, path);
  const std::string_view got_magic = header.token();
  if (got_magic != magic) {
    header.malformed("not a '" + std::string(magic) + "' file (found '" +
                     std::string(got_magic.substr(0, 40)) + "')");
  }
  const u64 body_bytes = header.read_u64();
  const std::string_view sum_tok = header.token();
  TokenBuf tb(header, sum_tok);
  char* endp = nullptr;
  const u64 expected_sum = std::strtoull(tb.buf, &endp, 16);
  if (endp != tb.buf + sum_tok.size()) {
    header.malformed("bad checksum token '" + std::string(sum_tok) + "'");
  }
  // Body starts right after the header newline.
  const std::size_t nl = text.find('\n');
  if (nl == std::string::npos) {
    header.malformed("missing body after header");
  }
  const std::string_view body(text.data() + nl + 1, text.size() - nl - 1);
  if (body.size() != body_bytes) {
    header.malformed("body is " + std::to_string(body.size()) +
                     " bytes, header promises " + std::to_string(body_bytes) +
                     " (file truncated?)");
  }
  const u64 got_sum = fnv1a64(body);
  if (got_sum != expected_sum) {
    header.malformed("checksum mismatch (file corrupted)");
  }
  return std::string(body);
}

}  // namespace fekf
