// Line-tracking text (de)serialization used by every on-disk artifact
// (model files, training checkpoints).
//
// The formats are token streams: whitespace-separated keys, integers, and
// hex floats (%a — bit-exact f64 round-trips with no binary-endianness
// concerns). TextWriter assembles the body in memory so callers can
// checksum it before anything touches the filesystem; TextReader parses
// from memory and reports every malformed token as a single-line Error
// naming the source file, the line number, and what was expected — no
// silent partial loads.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"

namespace fekf {

/// FNV-1a 64-bit hash — the checkpoint header checksum. Not
/// collision-resistant against adversaries; plenty to make truncation and
/// bit-flips fail loudly at load.
u64 fnv1a64(std::string_view bytes);

/// Append-only token writer over an in-memory buffer.
class TextWriter {
 public:
  void key(std::string_view name);    ///< starts a new line: "name"
  void token(std::string_view t);     ///< " t"
  void i64v(i64 v);
  void u64v(u64 v);
  void f64v(f64 v);                   ///< hex float (%a)
  void size(std::size_t v);
  /// Length-prefixed raw bytes (" <n> <bytes>") — for strings that may
  /// contain whitespace (fault-event details, layer names).
  void bytes(std::string_view s);
  void end_line();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }
  void reserve(std::size_t n) { out_.reserve(n); }

 private:
  std::string out_;
};

/// Whitespace-tokenizing reader with line tracking and loud diagnostics.
class TextReader {
 public:
  /// `name` labels diagnostics (usually the file path); `text` must outlive
  /// the reader.
  TextReader(std::string_view text, std::string name);

  /// Next whitespace-delimited token; Error at end of input.
  std::string_view token();
  /// Consume one token and check it equals `expected`.
  void expect(std::string_view expected);
  i64 read_i64();
  u64 read_u64();
  f64 read_f64();  ///< hex or decimal float, full-token parse required
  /// Counterpart of TextWriter::bytes.
  std::string read_bytes();
  /// Fill `out` with `n` hex floats after an optional size check.
  void read_f64s(std::vector<f64>& out, std::size_t n);

  bool at_end();
  i64 line() const { return line_; }
  const std::string& name() const { return name_; }

  /// Throw Error("<name>:<line>: <what>").
  [[noreturn]] void malformed(const std::string& what) const;

 private:
  void skip_ws();

  std::string_view text_;
  std::string name_;
  std::size_t pos_ = 0;
  i64 line_ = 1;
};

/// Write `header line + body` to `path` atomically (temp file + rename).
/// The header is "<magic> <body-bytes> <fnv1a64-hex>".
void write_checksummed_file(const std::string& path, std::string_view magic,
                            std::string_view body);

/// Read a file written by write_checksummed_file: verifies the magic, the
/// byte count (truncation) and the checksum (corruption), then returns the
/// body. Every failure is a single-line Error naming `path`.
std::string read_checksummed_file(const std::string& path,
                                  std::string_view magic);

/// Read an entire file (text mode); Error if it cannot be opened.
std::string read_file(const std::string& path);

}  // namespace fekf
