// Wall-clock stopwatch used by the training loops and benchmark harnesses.
#pragma once

#include <chrono>

#include "core/common.hpp"

namespace fekf {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  f64 seconds() const {
    return std::chrono::duration<f64>(clock::now() - start_).count();
  }

  f64 milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations over many start/stop windows.
/// Used to split iteration time into forward / gradient / KF-update parts
/// (Figure 7c).
class AccumTimer {
 public:
  // ScopedTimer holds a reference to its AccumTimer; copying a timer with
  // an open window would fork the running flag, so copies are disallowed.
  AccumTimer() = default;
  AccumTimer(const AccumTimer&) = delete;
  AccumTimer& operator=(const AccumTimer&) = delete;

  void start() { watch_.reset(); running_ = true; }

  /// Closes the current window. A stop() without a matching start() (or a
  /// second stop() on the same window) is a no-op: it must not inflate
  /// total or count.
  void stop() {
    if (running_) {
      total_ += watch_.seconds();
      ++count_;
      running_ = false;
    }
  }

  void reset() { total_ = 0.0; count_ = 0; running_ = false; }

  f64 total_seconds() const { return total_; }
  i64 count() const { return count_; }
  f64 mean_seconds() const { return count_ > 0 ? total_ / static_cast<f64>(count_) : 0.0; }

 private:
  Stopwatch watch_;
  f64 total_ = 0.0;
  i64 count_ = 0;
  bool running_ = false;
};

/// RAII window on an AccumTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(AccumTimer& t) : timer_(t) { timer_.start(); }
  ~ScopedTimer() { timer_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AccumTimer& timer_;
};

}  // namespace fekf
