#include "data/dataset.hpp"

namespace fekf::data {

Dataset build_dataset(const SystemSpec& spec, const DatasetConfig& config) {
  FEKF_CHECK(config.train_per_temperature > 0, "need training snapshots");
  Rng rng(config.seed);
  md::Structure structure = spec.make_structure(rng);
  auto potential = spec.make_potential(structure);

  md::SamplerConfig sampler;
  sampler.dt_fs = spec.dt_fs;
  sampler.temperatures = spec.temperatures;
  sampler.equilibration_steps = config.equilibration_steps;
  sampler.stride = config.stride;
  sampler.snapshots_per_temperature =
      config.train_per_temperature + config.test_per_temperature;

  std::vector<md::Snapshot> all = md::sample_trajectory(
      *potential, structure, spec.masses, sampler, rng);

  // Interleave: within each temperature's block, the trailing snapshots go
  // to the test split (most decorrelated from training ones).
  Dataset ds;
  const i64 per_temp = sampler.snapshots_per_temperature;
  for (std::size_t t = 0; t < spec.temperatures.size(); ++t) {
    const i64 base = static_cast<i64>(t) * per_temp;
    for (i64 s = 0; s < per_temp; ++s) {
      md::Snapshot& snap = all[static_cast<std::size_t>(base + s)];
      if (s < config.train_per_temperature) {
        ds.train.push_back(std::move(snap));
      } else {
        ds.test.push_back(std::move(snap));
      }
    }
  }
  return ds;
}

BatchSampler::BatchSampler(i64 dataset_size, i64 batch_size, u64 seed)
    : batch_size_(batch_size), rng_(seed) {
  FEKF_CHECK(dataset_size > 0, "empty dataset");
  FEKF_CHECK(batch_size > 0, "batch size must be positive");
  order_.resize(static_cast<std::size_t>(dataset_size));
  for (i64 i = 0; i < dataset_size; ++i) {
    order_[static_cast<std::size_t>(i)] = i;
  }
  reshuffle();
}

void BatchSampler::set_state(const State& state) {
  FEKF_CHECK(state.order.size() == order_.size(),
             "sampler state covers " + std::to_string(state.order.size()) +
                 " samples, dataset has " + std::to_string(order_.size()));
  FEKF_CHECK(state.cursor >= 0 &&
                 state.cursor <= static_cast<i64>(order_.size()),
             "sampler cursor " + std::to_string(state.cursor) +
                 " out of range");
  order_ = state.order;
  cursor_ = state.cursor;
  rng_.set_state(state.rng);
}

void BatchSampler::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

bool BatchSampler::next(std::vector<i64>& indices) {
  indices.clear();
  const i64 n = static_cast<i64>(order_.size());
  if (cursor_ >= n) {
    reshuffle();
    return false;
  }
  const i64 end = std::min(cursor_ + batch_size_, n);
  for (i64 i = cursor_; i < end; ++i) {
    indices.push_back(order_[static_cast<std::size_t>(i)]);
  }
  cursor_ = end;
  return true;
}

i64 BatchSampler::batches_per_epoch() const {
  const i64 n = static_cast<i64>(order_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace fekf::data
