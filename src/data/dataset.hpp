// Labelled dataset generation and batching.
//
// A Dataset holds train/test snapshot splits sampled from a system's
// teacher trajectories at the Table 3 temperatures. Sizes are configurable:
// the paper's datasets have 10k–72k snapshots; the default bench scale is
// much smaller (convergence-ratio experiments are scale-stable, DESIGN.md §1).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "data/systems.hpp"
#include "md/sampler.hpp"
#include "md/system.hpp"

namespace fekf::data {

struct DatasetConfig {
  i64 train_per_temperature = 64;
  i64 test_per_temperature = 16;
  i64 equilibration_steps = 100;
  i64 stride = 5;  ///< MD steps between snapshots
  u64 seed = 2024;
};

struct Dataset {
  std::vector<md::Snapshot> train;
  std::vector<md::Snapshot> test;

  i64 natoms() const {
    return train.empty() ? 0 : train.front().natoms();
  }
};

/// Sample a dataset for one catalog system. Train and test snapshots come
/// from the same trajectories, interleaved deterministically so both splits
/// cover every temperature.
Dataset build_dataset(const SystemSpec& spec, const DatasetConfig& config);

/// Shuffled mini-batch index iterator; one pass == one epoch.
class BatchSampler {
 public:
  BatchSampler(i64 dataset_size, i64 batch_size, u64 seed);

  /// Fill `indices` with the next batch. Returns false at epoch end (and
  /// reshuffles for the next epoch). The final batch of an epoch may be
  /// short.
  bool next(std::vector<i64>& indices);

  i64 batches_per_epoch() const;

  /// Full sampler state (epoch permutation, position within it, shuffle
  /// RNG) — round-tripped by training checkpoints so a resumed run visits
  /// the exact batch sequence of the uninterrupted one.
  struct State {
    std::vector<i64> order;
    i64 cursor = 0;
    RngState rng;
  };
  State state() const { return {order_, cursor_, rng_.state()}; }
  void set_state(const State& state);

 private:
  void reshuffle();

  std::vector<i64> order_;
  i64 batch_size_;
  i64 cursor_ = 0;
  Rng rng_;
};

}  // namespace fekf::data
