#include "data/systems.hpp"

#include <map>
#include <numbers>

#include "md/bonded.hpp"
#include "md/coulomb.hpp"
#include "md/eam.hpp"
#include "md/pair.hpp"
#include "md/sw.hpp"

namespace fekf::data {

namespace {

using md::BondedTerms;
using md::BornMayer;
using md::CompositePotential;
using md::LennardJones;
using md::Morse;
using md::Structure;
using md::SuttonChen;
using md::StillingerWeber;
using md::WolfCoulomb;

std::unique_ptr<md::Potential> wrap(std::unique_ptr<md::Potential> p) {
  return p;
}

SystemSpec make_cu() {
  SystemSpec s;
  s.name = "Cu";
  s.elements = {"Cu"};
  s.masses = {63.546};
  s.temperatures = {400, 500, 600, 700, 800};  // Table 3: 400–800 K
  s.dt_fs = 2.0;
  s.paper_snapshots = 72102;
  s.make_structure = [](Rng&) { return md::make_fcc(3.615, 3, 3, 3); };  // 108
  s.make_potential = [](const Structure&) {
    // Sutton–Chen Cu (canonical parameters).
    return wrap(std::make_unique<SuttonChen>(
        SuttonChen::Params{0.012382, 3.615, 39.432, 9.0, 6.0}, 6.0));
  };
  return s;
}

SystemSpec make_al() {
  SystemSpec s;
  s.name = "Al";
  s.elements = {"Al"};
  s.masses = {26.982};
  s.temperatures = {300, 500, 800, 1000};
  s.dt_fs = 2.0;
  s.paper_snapshots = 24457;
  s.make_structure = [](Rng&) { return md::make_fcc(4.05, 2, 2, 2); };  // 32
  s.make_potential = [](const Structure&) {
    // Sutton–Chen Al (canonical parameters).
    return wrap(std::make_unique<SuttonChen>(
        SuttonChen::Params{0.033147, 4.05, 16.399, 7.0, 6.0}, 6.5));
  };
  return s;
}

SystemSpec make_si() {
  SystemSpec s;
  s.name = "Si";
  s.elements = {"Si"};
  s.masses = {28.085};
  s.temperatures = {300, 500, 800};
  s.dt_fs = 3.0;
  s.paper_snapshots = 40000;
  s.make_structure = [](Rng&) { return md::make_diamond(5.43, 2, 2, 2); };  // 64
  s.make_potential = [](const Structure&) {
    return wrap(std::make_unique<StillingerWeber>());
  };
  return s;
}

SystemSpec make_nacl() {
  SystemSpec s;
  s.name = "NaCl";
  s.elements = {"Na", "Cl"};
  s.masses = {22.990, 35.453};
  s.temperatures = {300, 500, 800};
  s.dt_fs = 2.0;
  s.paper_snapshots = 40000;
  s.make_structure = [](Rng&) {
    return md::make_rocksalt(5.64, 2, 2, 2, 0, 1);  // 64 atoms
  };
  s.make_potential = [](const Structure&) {
    // Born–Mayer–Huggins-style short range + damped-shifted Coulomb.
    auto pot = std::make_unique<CompositePotential>();
    auto bm = std::make_unique<BornMayer>(2, 6.0);
    bm->set_pair(0, 1, {1200.0, 0.32, 0.0});
    bm->set_pair(0, 0, {420.0, 0.32, 1.05});
    bm->set_pair(1, 1, {3500.0, 0.32, 72.4});
    pot->add(std::move(bm));
    pot->add(std::make_unique<WolfCoulomb>(std::vector<f64>{1.0, -1.0}, 6.0));
    return wrap(std::move(pot));
  };
  return s;
}

SystemSpec make_mg() {
  SystemSpec s;
  s.name = "Mg";
  s.elements = {"Mg"};
  s.masses = {24.305};
  s.temperatures = {300, 500, 800};
  s.dt_fs = 3.0;
  s.paper_snapshots = 12800;
  s.make_structure = [](Rng&) {
    return md::make_hcp(3.21, 5.21, 3, 1, 3);  // 36 atoms
  };
  s.make_potential = [](const Structure&) {
    // Morse metal teacher (plausible Mg scale: cohesive well ~0.25 eV at
    // the HCP nearest-neighbor distance).
    auto morse = std::make_unique<Morse>(1, 6.5);
    morse->set_pair(0, 0, {0.25, 1.2, 3.19});
    return wrap(std::move(morse));
  };
  return s;
}

SystemSpec make_h2o() {
  SystemSpec s;
  s.name = "H2O";
  s.elements = {"O", "H"};
  s.masses = {15.999, 1.008};
  s.temperatures = {300, 500, 800, 1000};
  s.dt_fs = 0.5;  // flexible bonds need a shorter step than Table 3's 1 fs
  s.paper_snapshots = 28032;
  s.make_structure = [](Rng& rng) {
    return md::make_water_box(3.15, 2, 2, 4, rng);  // 16 molecules, 48 atoms
  };
  s.make_potential = [](const Structure& st) {
    // Flexible SPC-like: harmonic bonds/angles + O-O LJ + DSF Coulomb with
    // intramolecular exclusions.
    const i64 nmol = st.natoms() / 3;
    std::vector<md::Bond> bonds;
    std::vector<md::Angle> angles;
    std::vector<i32> mols(static_cast<std::size_t>(st.natoms()));
    for (i64 m = 0; m < nmol; ++m) {
      const i32 o = static_cast<i32>(3 * m);
      bonds.push_back({o, o + 1, 20.0, 0.9572});
      bonds.push_back({o, o + 2, 20.0, 0.9572});
      angles.push_back(
          {o + 1, o, o + 2, 3.29, 104.52 * std::numbers::pi / 180.0});
      mols[static_cast<std::size_t>(o)] =
          mols[static_cast<std::size_t>(o + 1)] =
              mols[static_cast<std::size_t>(o + 2)] = static_cast<i32>(m);
    }
    auto pot = std::make_unique<CompositePotential>();
    pot->add(std::make_unique<BondedTerms>(std::move(bonds), std::move(angles)));
    auto lj = std::make_unique<LennardJones>(2, 6.0);
    lj->set_pair(0, 0, {0.00674, 3.166});
    lj->set_molecules(mols);
    pot->add(std::move(lj));
    auto coul =
        std::make_unique<WolfCoulomb>(std::vector<f64>{-0.82, 0.41}, 6.0);
    coul->set_molecules(mols);
    pot->add(std::move(coul));
    return wrap(std::move(pot));
  };
  return s;
}

SystemSpec make_cuo() {
  SystemSpec s;
  s.name = "CuO";
  s.elements = {"Cu", "O"};
  s.masses = {63.546, 15.999};
  s.temperatures = {300, 500, 800};
  s.dt_fs = 3.0;
  s.paper_snapshots = 10281;
  s.make_structure = [](Rng&) {
    return md::make_rocksalt(4.26, 2, 2, 2, 0, 1);  // 64 atoms
  };
  s.make_potential = [](const Structure&) {
    auto pot = std::make_unique<CompositePotential>();
    auto morse = std::make_unique<Morse>(2, 6.0);
    morse->set_pair(0, 1, {0.9, 1.8, 2.0});
    morse->set_pair(0, 0, {0.15, 1.3, 2.9});
    morse->set_pair(1, 1, {0.05, 1.5, 3.0});
    pot->add(std::move(morse));
    pot->add(std::make_unique<WolfCoulomb>(std::vector<f64>{1.0, -1.0}, 6.0));
    return wrap(std::move(pot));
  };
  return s;
}

SystemSpec make_hfo2() {
  SystemSpec s;
  s.name = "HfO2";
  s.elements = {"Hf", "O"};
  s.masses = {178.486, 15.999};
  // Table 3 lists "-200–2400"; we span a wide positive range.
  s.temperatures = {100, 800, 1600, 2400};
  s.dt_fs = 1.0;
  s.paper_snapshots = 28577;
  s.make_structure = [](Rng&) {
    return md::make_fluorite(5.08, 2, 2, 2, 0, 1);  // 96 atoms (paper: 98)
  };
  s.make_potential = [](const Structure&) {
    auto pot = std::make_unique<CompositePotential>();
    auto morse = std::make_unique<Morse>(2, 6.0);
    morse->set_pair(0, 1, {1.2, 1.7, 2.2});
    pot->add(std::move(morse));
    auto bm = std::make_unique<BornMayer>(2, 6.0);
    bm->set_pair(1, 1, {1500.0, 0.30, 30.0});
    bm->set_pair(0, 0, {800.0, 0.32, 0.0});
    pot->add(std::move(bm));
    pot->add(std::make_unique<WolfCoulomb>(std::vector<f64>{2.0, -1.0}, 6.0));
    return wrap(std::move(pot));
  };
  return s;
}

std::map<std::string, SystemSpec> build_catalog() {
  std::map<std::string, SystemSpec> m;
  for (SystemSpec s : {make_cu(), make_al(), make_si(), make_nacl(),
                       make_mg(), make_h2o(), make_cuo(), make_hfo2()}) {
    m.emplace(s.name, std::move(s));
  }
  return m;
}

const std::map<std::string, SystemSpec>& catalog() {
  static const std::map<std::string, SystemSpec> m = build_catalog();
  return m;
}

}  // namespace

const std::vector<std::string>& system_names() {
  static const std::vector<std::string> names = {
      "Cu", "Al", "Si", "NaCl", "Mg", "H2O", "CuO", "HfO2"};
  return names;
}

const SystemSpec& get_system(const std::string& name) {
  auto it = catalog().find(name);
  FEKF_CHECK(it != catalog().end(), "unknown system '" + name + "'");
  return it->second;
}

}  // namespace fekf::data
