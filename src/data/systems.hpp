// Catalog of the paper's eight physical systems (Table 3).
//
// Each entry carries the composition, the Table 3 sampling temperatures and
// time step, and factories for the initial structure and the teacher
// potential that substitutes for the paper's DFT labelling (DESIGN.md §1).
// Teacher parameters are physically plausible but synthetic — the
// experiments measure optimizer behaviour, not materials properties.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "md/lattice.hpp"
#include "md/potential.hpp"

namespace fekf::data {

struct SystemSpec {
  std::string name;
  std::vector<std::string> elements;  ///< element symbol per type index
  std::vector<f64> masses;            ///< amu per type
  std::vector<f64> temperatures;      ///< sampling temperatures (K), Table 3
  f64 dt_fs = 1.0;                    ///< MD time step (fs), Table 3
  i64 paper_snapshots = 0;            ///< dataset size reported in Table 3

  std::function<md::Structure(Rng&)> make_structure;
  std::function<std::unique_ptr<md::Potential>(const md::Structure&)>
      make_potential;

  i32 num_types() const { return static_cast<i32>(elements.size()); }
};

/// The eight Table 3 names in paper order:
/// Cu, Al, Si, NaCl, Mg, H2O, CuO, HfO2.
const std::vector<std::string>& system_names();

/// Look up a catalog entry; throws on unknown names.
const SystemSpec& get_system(const std::string& name);

}  // namespace fekf::data
