#include "deepmd/bmm.hpp"

#include <cstring>

#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/variants/variants.hpp"

namespace fekf::deepmd {

using ag::Variable;

// Threading: the batched kernels parallelize over the block (atom/batch)
// dimension — each task owns whole p x s output blocks, so the results are
// bit-exact for any thread width (DESIGN.md "Threading & determinism").

namespace {

dispatch::Dispatched<dispatch::MatNtPanelFn>& matnt_dispatch() {
  static dispatch::Dispatched<dispatch::MatNtPanelFn> d(
      "matnt_f32", &dispatch::register_matnt_variants);
  return d;
}

i64 block_count(const Tensor& t, i64 block, const char* who) {
  FEKF_CHECK(block > 0 && t.rows() % block == 0,
             std::string(who) + ": rows " + std::to_string(t.rows()) +
                 " not divisible by block " + std::to_string(block));
  return t.rows() / block;
}

Tensor bmm_nn_kernel(const Tensor& x, const Tensor& y, i64 p) {
  const i64 nb = block_count(x, p, "bmm_nn");
  const i64 q = x.cols();
  FEKF_CHECK(y.rows() == nb * q, "bmm_nn: y rows mismatch");
  const i64 s = y.cols();
  KernelLaunch launch("bmm_nn");
  Tensor out = Tensor::zeros(nb * p, s);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ py = y.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          const f32* xb = px + b * p * q;
          const f32* yb = py + b * q * s;
          f32* ob = po + b * p * s;
          for (i64 i = 0; i < p; ++i) {
            for (i64 l = 0; l < q; ++l) {
              const f32 xv = xb[i * q + l];
              for (i64 j = 0; j < s; ++j) ob[i * s + j] += xv * yb[l * s + j];
            }
          }
        }
      },
      grain_items(p * q * s));
  return out;
}

Tensor bmm_tn_kernel(const Tensor& x, const Tensor& y, i64 q) {
  const i64 nb = block_count(x, q, "bmm_tn");
  FEKF_CHECK(y.rows() == nb * q, "bmm_tn: y rows mismatch");
  const i64 p = x.cols();
  const i64 s = y.cols();
  KernelLaunch launch("bmm_tn");
  Tensor out = Tensor::zeros(nb * p, s);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ py = y.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          const f32* xb = px + b * q * p;
          const f32* yb = py + b * q * s;
          f32* ob = po + b * p * s;
          for (i64 l = 0; l < q; ++l) {
            const f32* xrow = xb + l * p;
            const f32* yrow = yb + l * s;
            for (i64 i = 0; i < p; ++i) {
              const f32 xv = xrow[i];
              for (i64 j = 0; j < s; ++j) ob[i * s + j] += xv * yrow[j];
            }
          }
        }
      },
      grain_items(p * q * s));
  return out;
}

Tensor bmm_nt_kernel(const Tensor& x, const Tensor& y, i64 p, i64 s) {
  const i64 nb = block_count(x, p, "bmm_nt");
  FEKF_CHECK(y.rows() == nb * s, "bmm_nt: y rows mismatch");
  const i64 q = x.cols();
  FEKF_CHECK(y.cols() == q, "bmm_nt: inner dim mismatch");
  KernelLaunch launch("bmm_nt");
  // Each block is one matnt_f32 panel (out_b = X_b · Y_bᵀ with a
  // per-output f64 chain); the variant body is resolved on the calling
  // thread before the parallel region, per the dispatch contract.
  const dispatch::MatNtPanelFn fn = matnt_dispatch().get();
  Tensor out(nb * p, s);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ py = y.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          fn(px + b * p * q, py + b * s * q, po + b * p * s, 0, p, s, q);
        }
      },
      grain_items(p * q * s));
  return out;
}

Tensor block_slice_kernel(const Tensor& x, i64 block, i64 r0, i64 r1) {
  const i64 nb = block_count(x, block, "block_slice_rows");
  FEKF_CHECK(0 <= r0 && r0 <= r1 && r1 <= block, "block_slice_rows bounds");
  const i64 h = r1 - r0;
  const i64 c = x.cols();
  KernelLaunch launch("block_slice_rows");
  Tensor out(nb * h, c);
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          std::memcpy(out.data() + b * h * c, x.data() + (b * block + r0) * c,
                      static_cast<std::size_t>(h * c) * sizeof(f32));
        }
      },
      grain_items(h * c));
  return out;
}

Tensor block_pad_kernel(const Tensor& x, i64 block, i64 h, i64 r0) {
  const i64 nb = block_count(x, h, "block_pad_rows");
  FEKF_CHECK(r0 >= 0 && r0 + h <= block, "block_pad_rows bounds");
  const i64 c = x.cols();
  KernelLaunch launch("block_pad_rows");
  Tensor out = Tensor::zeros(nb * block, c);
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          std::memcpy(out.data() + (b * block + r0) * c, x.data() + b * h * c,
                      static_cast<std::size_t>(h * c) * sizeof(f32));
        }
      },
      grain_items(h * c));
  return out;
}

}  // namespace

Variable bmm_nn(const Variable& x, const Variable& y, i64 p) {
  const i64 q = x.cols();
  return Variable::make_op(
      bmm_nn_kernel(x.value(), y.value(), p), "bmm_nn", {x, y},
      [x, y, p, q](const Variable& g) -> std::vector<Variable> {
        // out_b = X_b Y_b: gX_b = g_b Y_b^T, gY_b = X_b^T g_b.
        return {bmm_nt(g, y, p, q), bmm_tn(x, g, p)};
      });
}

Variable bmm_tn(const Variable& x, const Variable& y, i64 q) {
  const i64 p = x.cols();
  return Variable::make_op(
      bmm_tn_kernel(x.value(), y.value(), q), "bmm_tn", {x, y},
      [x, y, p, q](const Variable& g) -> std::vector<Variable> {
        // out_b = X_b^T Y_b: gX_b = Y_b g_b^T, gY_b = X_b g_b.
        return {bmm_nt(y, g, q, p), bmm_nn(x, g, q)};
      });
}

Variable bmm_nt(const Variable& x, const Variable& y, i64 p, i64 s) {
  return Variable::make_op(
      bmm_nt_kernel(x.value(), y.value(), p, s), "bmm_nt", {x, y},
      [x, y, p, s](const Variable& g) -> std::vector<Variable> {
        // out_b = X_b Y_b^T: gX_b = g_b Y_b, gY_b = g_b^T X_b.
        (void)s;
        return {bmm_nn(g, y, p), bmm_tn(g, x, p)};
      });
}

Variable block_slice_rows(const Variable& x, i64 block, i64 r0, i64 r1) {
  return Variable::make_op(
      block_slice_kernel(x.value(), block, r0, r1), "block_slice_rows", {x},
      [block, r0, r1](const Variable& g) -> std::vector<Variable> {
        return {block_pad_rows(g, block, r1 - r0, r0)};
      });
}

Variable block_pad_rows(const Variable& x, i64 block, i64 h, i64 r0) {
  return Variable::make_op(
      block_pad_kernel(x.value(), block, h, r0), "block_pad_rows", {x},
      [block, h, r0](const Variable& g) -> std::vector<Variable> {
        return {block_slice_rows(g, block, r0, r0 + h)};
      });
}

}  // namespace fekf::deepmd
