// Fused per-atom (batched-block) matrix ops.
//
// The symmetry-preserving descriptor D_i = G_i^T R_i R_i^T G_i^< is a
// per-atom contraction. A framework autograd executes it as natoms
// separate slice + matmul launches ("a lot of fragmented kernels", §3.4);
// the paper's opt1 replaces this with hand-written batched kernels whose
// derivatives follow Eq. 4 / Fig. 6. These ops are those kernels: each
// call is ONE KernelCounter launch over all atoms, and each backward is
// again composed of bmm_* calls — so the force path (which differentiates
// the backward graph) stays fused to every derivative order.
//
// Block conventions: a tensor of shape (nblocks*p) x q is `nblocks`
// stacked p x q blocks; all ops require an integer block count.
#pragma once

#include "autograd/variable.hpp"

namespace fekf::deepmd {

/// Per-block X_b (p x q) * Y_b (q x s) -> (p x s). `p` is X's block height.
ag::Variable bmm_nn(const ag::Variable& x, const ag::Variable& y, i64 p);

/// Per-block X_b^T (p x q -> q used as block height) : X_b is (q x p),
/// Y_b is (q x s) -> X_b^T Y_b (p x s). `q` is the shared block height.
ag::Variable bmm_tn(const ag::Variable& x, const ag::Variable& y, i64 q);

/// Per-block X_b (p x q) * Y_b^T with Y_b (s x q) -> (p x s).
ag::Variable bmm_nt(const ag::Variable& x, const ag::Variable& y, i64 p,
                    i64 s);

/// Rows [r0, r1) of every block (block height `block`) -> blocks of height
/// r1-r0. One launch; backward is block_pad_rows.
ag::Variable block_slice_rows(const ag::Variable& x, i64 block, i64 r0,
                              i64 r1);

/// Inverse: place blocks of height h into zero blocks of height `block` at
/// offset r0.
ag::Variable block_pad_rows(const ag::Variable& x, i64 block, i64 h, i64 r0);

}  // namespace fekf::deepmd
