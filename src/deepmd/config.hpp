// DeePMD model configuration (paper §4 "Model parameters").
#pragma once

#include <vector>

#include "core/common.hpp"

namespace fekf::deepmd {

/// System-optimization levels of §3.4 / Figure 7:
///  kBaseline — framework-autograd style: per-atom composed descriptor ops,
///              separate matmul/bias/tanh launches.
///  kOpt1     — hand-written (fused batched) kernels for the
///              symmetry-preserving descriptor and its derivatives (Fig. 6).
///  kOpt2     — kOpt1 + fused linear and tanh-backward kernels
///              (torch.compile-style elementwise fusion).
///  kFused    — kOpt2 + whole-layer and whole-descriptor fusion: dense
///              layers run as ONE linear+tanh kernel forward and ONE fused
///              (gx, gw, gb) kernel backward, and the symmetry-preserving
///              descriptor runs as two composite kernels (desc_a, desc_d)
///              with a fused backward (DESIGN.md §12).
/// kOpt3 (optimizer P-update kernel + Pg caching) lives in src/optim and is
/// orthogonal to the model; the analogous fused FEKF step is
/// KalmanConfig::fused_step.
enum class FusionLevel { kBaseline = 0, kOpt1 = 1, kOpt2 = 2, kFused = 3 };

struct ModelConfig {
  f64 rcut = 6.0;       ///< descriptor cutoff (Å)
  f64 rcut_smth = 3.0;  ///< s(r) starts decaying here

  /// Max neighbors per neighbor-type (the env matrix row budget). Leave
  /// empty to size automatically from data (compute_env_stats).
  std::vector<i64> sel;

  i64 embed_width = 25;   ///< M: the paper's [25, 25, 25] embedding net
  i64 axis_neurons = 16;  ///< M^<: paper's "truncation value ... set 16"
  i64 fitting_width = 50; ///< d: paper's [400, 50, 50, 50, 1] fitting net

  FusionLevel fusion = FusionLevel::kOpt2;

  u64 init_seed = 20240302;
};

}  // namespace fekf::deepmd
