// "desc_contract_f32" variants: one atom block of the descriptor tail
// D = A·(A^<)ᵀ in desc_d_kernel (DESIGN.md §13) — m·m_axis f64 inner
// products of length q over f32 data.
//
// Like the EKF reductions, the inner product is a serial f64 chain in the
// scalar reference, so the simd/avx2 variants split it across accumulators
// and are TOLERANCE class: max |variant - scalar| <= tolerance · Σ|terms|
// per output element, asserted in tests/test_dispatch.cpp. The f64
// partials almost always round to the same f32, so the observed error is
// usually exactly zero — the bound covers the last-ulp flips.
#include "deepmd/descriptor_variants.hpp"

#include "tensor/dispatch.hpp"
#include "tensor/variants/variants.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace fekf::dispatch {

namespace {

constexpr f64 kDescTol = 1e-6;  // f32 output: one ulp of mass dominates

/// Reference body — the bmm_nt-ordered loop desc_d_kernel always ran.
void desc_scalar(const f32* ab, f32* ob, i64 m, i64 m_axis, i64 q) {
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < m_axis; ++j) {
      f64 acc = 0.0;
      for (i64 l = 0; l < q; ++l) {
        acc += static_cast<f64>(ab[i * q + l]) * ab[j * q + l];
      }
      ob[i * m_axis + j] = static_cast<f32>(acc);
    }
  }
}

void desc_simd(const f32* ab, f32* ob, i64 m, i64 m_axis, i64 q) {
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < m_axis; ++j) {
      f64 acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (i64 l = 0; l < q; ++l) {
        acc += static_cast<f64>(ab[i * q + l]) * ab[j * q + l];
      }
      ob[i * m_axis + j] = static_cast<f32>(acc);
    }
  }
}

#if defined(__AVX2__) && defined(__FMA__)
/// Two 4-lane f64 accumulators over cvtps_pd-widened f32 loads.
void desc_avx2(const f32* ab, f32* ob, i64 m, i64 m_axis, i64 q) {
  const i64 q8 = q - (q % 8);
  for (i64 i = 0; i < m; ++i) {
    const f32* __restrict__ arow = ab + i * q;
    for (i64 j = 0; j < m_axis; ++j) {
      const f32* __restrict__ brow = ab + j * q;
      __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
      for (i64 l = 0; l < q8; l += 8) {
        a0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(arow + l)),
                             _mm256_cvtps_pd(_mm_loadu_ps(brow + l)), a0);
        a1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(arow + l + 4)),
                             _mm256_cvtps_pd(_mm_loadu_ps(brow + l + 4)), a1);
      }
      const __m256d s = _mm256_add_pd(a0, a1);
      alignas(32) f64 lane[4];
      _mm256_store_pd(lane, s);
      f64 acc = ((lane[0] + lane[1]) + (lane[2] + lane[3]));
      for (i64 l = q8; l < q; ++l) {
        acc += static_cast<f64>(arow[l]) * brow[l];
      }
      ob[i * m_axis + j] = static_cast<f32>(acc);
    }
  }
}
#endif

}  // namespace

void register_desc_variants() {
  static const bool once = [] {
    Registry& r = Registry::instance();
    r.add({"desc_contract_f32", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0,
           reinterpret_cast<void*>(&desc_scalar),
           "reference bmm_nt-ordered f64 inner products"});
    r.add({"desc_contract_f32", "simd", Level::kSimd, "generic", true,
           Exactness::kTolerance, kDescTol, 10,
           reinterpret_cast<void*>(&desc_simd),
           "omp-simd reduction; bound relative to element mass Σ|aᵢ·bᵢ|"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"desc_contract_f32", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kTolerance, kDescTol, 20,
           reinterpret_cast<void*>(&desc_avx2),
           "8-way widened f64 FMA accumulators; bound relative to element "
           "mass"});
#endif
    return true;
  }();
  (void)once;
}

}  // namespace fekf::dispatch
