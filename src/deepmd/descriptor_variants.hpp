// Registration hook for the "desc_contract_f32" dispatch family
// (DESIGN.md §13). Lives in src/deepmd — the tensor-level registry cannot
// name descriptor kernels without inverting the layering — and is invoked
// lazily by the Dispatched<> handle in fused_descriptor.cpp (and by tests
// that enumerate every family).
#pragma once

namespace fekf::dispatch {

void register_desc_variants();

}  // namespace fekf::dispatch
