#include "deepmd/env.hpp"

#include <algorithm>
#include <numeric>

#include "deepmd/smooth.hpp"
#include "md/neighbor.hpp"

namespace fekf::deepmd {

std::shared_ptr<const EnvData> build_env(const md::Snapshot& snapshot,
                                         const EnvStats& stats,
                                         std::span<const i64> sel,
                                         const ModelConfig& config) {
  const i64 n = snapshot.natoms();
  const i32 num_types = static_cast<i32>(sel.size());
  FEKF_CHECK(n > 0, "empty snapshot");
  FEKF_CHECK(stats.davg.size() == sel.size(), "stats/sel type mismatch");

  auto env = std::make_shared<EnvData>();
  env->natoms = n;
  env->num_types = num_types;
  env->sel.assign(sel.begin(), sel.end());

  // Sort atoms by type (stable, so same-type atoms keep their order).
  env->perm.resize(static_cast<std::size_t>(n));
  std::iota(env->perm.begin(), env->perm.end(), 0);
  std::stable_sort(env->perm.begin(), env->perm.end(), [&](i64 a, i64 b) {
    return snapshot.types[static_cast<std::size_t>(a)] <
           snapshot.types[static_cast<std::size_t>(b)];
  });
  std::vector<i64> inverse_perm(static_cast<std::size_t>(n));
  for (i64 s = 0; s < n; ++s) {
    inverse_perm[static_cast<std::size_t>(env->perm[static_cast<std::size_t>(s)])] = s;
  }
  env->type_counts.assign(static_cast<std::size_t>(num_types), 0);
  for (const i32 t : snapshot.types) {
    FEKF_CHECK(t >= 0 && t < num_types, "atom type out of range");
    ++env->type_counts[static_cast<std::size_t>(t)];
  }
  env->type_offsets.assign(static_cast<std::size_t>(num_types) + 1, 0);
  for (i32 t = 0; t < num_types; ++t) {
    env->type_offsets[static_cast<std::size_t>(t) + 1] =
        env->type_offsets[static_cast<std::size_t>(t)] +
        env->type_counts[static_cast<std::size_t>(t)];
  }

  md::NeighborList nl;
  nl.build(snapshot.positions, snapshot.cell, config.rcut);

  env->r_mats.reserve(static_cast<std::size_t>(num_types));
  env->jacobians.resize(static_cast<std::size_t>(num_types));
  for (i32 t = 0; t < num_types; ++t) {
    env->r_mats.push_back(
        Tensor::zeros(n * sel[static_cast<std::size_t>(t)], 4));
  }

  // Padding slots carry the *normalized raw-zero* radial value
  // (0 - davg)/dstd and zero angular entries, exactly as DeePMD-kit pads —
  // the constant encodes "no neighbor here" and lets the descriptor see
  // coordination numbers.
  for (i32 t = 0; t < num_types; ++t) {
    Tensor& rm = env->r_mats[static_cast<std::size_t>(t)];
    const f32 pad = static_cast<f32>(
        (0.0 - stats.davg[static_cast<std::size_t>(t)]) /
        stats.dstd_r[static_cast<std::size_t>(t)]);
    for (i64 row = 0; row < rm.rows(); ++row) rm.at(row, 0) = pad;
  }

  std::vector<i64> filled(static_cast<std::size_t>(num_types));
  for (i64 srt = 0; srt < n; ++srt) {
    const i64 orig = env->perm[static_cast<std::size_t>(srt)];
    std::fill(filled.begin(), filled.end(), 0);
    // Neighbor lists are distance-sorted, so the nearest neighbors of each
    // type claim the slots — truncation (if any) drops the farthest.
    for (const md::Neighbor& nb : nl.of(orig)) {
      const i32 t = snapshot.types[static_cast<std::size_t>(nb.index)];
      i64& cnt = filled[static_cast<std::size_t>(t)];
      if (cnt >= sel[static_cast<std::size_t>(t)]) {
        ++env->truncated_neighbors;
        continue;
      }
      const i64 row = srt * sel[static_cast<std::size_t>(t)] + cnt;
      ++cnt;
      const SmoothValue sv =
          smooth_weight(nb.r, config.rcut_smth, config.rcut);
      const f64 inv_r = 1.0 / nb.r;
      const f64 dd[3] = {nb.d.x, nb.d.y, nb.d.z};
      const f64 dhat[3] = {nb.d.x * inv_r, nb.d.y * inv_r, nb.d.z * inv_r};
      const f64 inv_std_r = 1.0 / stats.dstd_r[static_cast<std::size_t>(t)];
      const f64 inv_std_a = 1.0 / stats.dstd_a[static_cast<std::size_t>(t)];

      Tensor& rm = env->r_mats[static_cast<std::size_t>(t)];
      rm.at(row, 0) = static_cast<f32>(
          (sv.s - stats.davg[static_cast<std::size_t>(t)]) * inv_std_r);
      for (int c = 0; c < 3; ++c) {
        rm.at(row, 1 + c) = static_cast<f32>(sv.s * dhat[c] * inv_std_a);
      }

      SlotJacobian jac;
      jac.row = static_cast<i32>(row);
      jac.center = static_cast<i32>(srt);
      jac.neighbor = static_cast<i32>(
          inverse_perm[static_cast<std::size_t>(nb.index)]);
      // Row 0: d/dr_j [(s - davg)/dstd_r] = (ds/dr) dhat / dstd_r.
      for (int k = 0; k < 3; ++k) {
        jac.j[static_cast<std::size_t>(k)] = sv.ds * dhat[k] * inv_std_r;
      }
      // Rows 1..3: d/dr_j [s d_c / r] / dstd_a
      //   = [ds dhat_k d_c / r + s (delta_ck / r - d_c d_k / r^3)] / dstd_a.
      for (int c = 0; c < 3; ++c) {
        for (int k = 0; k < 3; ++k) {
          const f64 v = sv.ds * dhat[k] * dd[c] * inv_r +
                        sv.s * ((c == k ? inv_r : 0.0) -
                                dd[c] * dd[k] * inv_r * inv_r * inv_r);
          jac.j[static_cast<std::size_t>(3 * (c + 1) + k)] = v * inv_std_a;
        }
      }
      env->jacobians[static_cast<std::size_t>(t)].push_back(jac);
    }
  }

  // Labels are optional: serving/inference snapshots (EvalRequest) carry
  // geometry only, training snapshots carry teacher energy and forces.
  env->energy_label = snapshot.energy;
  env->force_label = Tensor::zeros(n, 3);
  if (static_cast<i64>(snapshot.forces.size()) == n) {
    for (i64 srt = 0; srt < n; ++srt) {
      const i64 orig = env->perm[static_cast<std::size_t>(srt)];
      const md::Vec3& f = snapshot.forces[static_cast<std::size_t>(orig)];
      env->force_label.at(srt, 0) = static_cast<f32>(f.x);
      env->force_label.at(srt, 1) = static_cast<f32>(f.y);
      env->force_label.at(srt, 2) = static_cast<f32>(f.z);
    }
  }
  return env;
}

}  // namespace fekf::deepmd
