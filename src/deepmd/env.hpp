// Environment matrix R~ and its geometric Jacobian.
//
// For each atom i the smooth environment matrix has one row per neighbor
// slot: [s(r), s(r) x/r, s(r) y/r, s(r) z/r], normalized by the dataset's
// davg/dstd and zero-padded to a fixed per-type budget `sel[t]` (§2.1).
// Slots are grouped by neighbor type into one matrix per type, so each
// embedding net processes a single dense block.
//
// The Jacobian dR~row/dr is geometry-only (independent of the network
// weights). It is precomputed here and applied by the differentiable
// jacobian ops (jacobian_ops.hpp) to turn dE/dR~ into forces — the
// hand-implemented force path the paper uses instead of framework autograd.
#pragma once

#include <array>
#include <memory>

#include "deepmd/config.hpp"
#include "deepmd/stats.hpp"
#include "md/system.hpp"
#include "tensor/tensor.hpp"

namespace fekf::deepmd {

struct SlotJacobian {
  i32 row;       ///< row index within the per-type R matrix
  i32 center;    ///< sorted index of the center atom
  i32 neighbor;  ///< sorted index of the neighbor's real atom
  /// d(R~ row)/d(r_neighbor), 4x3 row-major; d/d(r_center) is its negative.
  std::array<f64, 12> j;
};

struct EnvData {
  i64 natoms = 0;
  i32 num_types = 0;
  std::vector<i64> sel;

  /// Atoms are sorted by type; sorted index s corresponds to original atom
  /// perm[s]. type_offsets[t]..type_offsets[t+1] is type t's sorted range.
  std::vector<i64> perm;
  std::vector<i64> type_offsets;
  std::vector<i64> type_counts;

  /// Per neighbor-type normalized environment matrix, (natoms * sel[t]) x 4,
  /// atom-major (sorted order).
  std::vector<Tensor> r_mats;
  /// Per neighbor-type filled-slot Jacobians.
  std::vector<std::vector<SlotJacobian>> jacobians;

  /// Labels in sorted-atom order.
  f64 energy_label = 0.0;
  Tensor force_label;  ///< natoms x 3

  /// Neighbors dropped because a type exceeded its sel budget (should stay
  /// 0 with auto-sized sel; surfaced so callers can warn).
  i64 truncated_neighbors = 0;
};

/// Build the normalized environment matrix + Jacobian for one snapshot.
std::shared_ptr<const EnvData> build_env(const md::Snapshot& snapshot,
                                         const EnvStats& stats,
                                         std::span<const i64> sel,
                                         const ModelConfig& config);

}  // namespace fekf::deepmd
