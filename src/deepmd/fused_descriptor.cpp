#include "deepmd/fused_descriptor.hpp"

#include <cstring>

#include "autograd/ops.hpp"
#include "deepmd/bmm.hpp"
#include "deepmd/descriptor_variants.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/variants/variants.hpp"

namespace fekf::deepmd {

using ag::Variable;
namespace op = ag::ops;

// Threading: both composite kernels parallelize over the atom (block)
// dimension — each task owns whole output blocks, so results are bit-exact
// at any width (DESIGN.md "Threading & determinism"). Bit-exactness against
// the kOpt1 chain is by construction: every accumulator follows the order
// of the kernel it replaces (per-type f32 partials added in type order for
// desc_a, f64 inner products for desc_d, the bmm_nn/bmm_tn orders inside
// desc_d_grad), and padded rows still add a literal +0.0f exactly like the
// op::add-with-zeros it fuses away.

namespace {

Tensor desc_a_kernel(const std::vector<Variable>& g_mats,
                     const std::vector<Variable>& r_mats,
                     const std::vector<i64>& sel, f32 inv_nm) {
  const std::size_t types = g_mats.size();
  FEKF_CHECK(types >= 1 && r_mats.size() == types && sel.size() == types,
             "desc_a: per-type input count mismatch");
  const i64 m = g_mats[0].cols();
  const i64 q = r_mats[0].cols();
  FEKF_CHECK(sel[0] > 0 && g_mats[0].rows() % sel[0] == 0,
             "desc_a: rows not divisible by sel");
  const i64 natoms = g_mats[0].rows() / sel[0];
  i64 work = m * q;  // the final inv_nm scale
  for (std::size_t t = 0; t < types; ++t) {
    FEKF_CHECK(g_mats[t].cols() == m && r_mats[t].cols() == q &&
                   g_mats[t].rows() == natoms * sel[t] &&
                   r_mats[t].rows() == natoms * sel[t],
               "desc_a: type " + std::to_string(t) + " shape mismatch");
    work += sel[t] * m * q;
  }
  KernelLaunch launch("desc_a");
  Tensor out(natoms * m, q);
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, natoms,
      [&](i64 blo, i64 bhi) {
        std::vector<f32> tmp(static_cast<std::size_t>(m * q));
        for (i64 b = blo; b < bhi; ++b) {
          f32* __restrict__ ab = po + b * m * q;
          for (std::size_t t = 0; t < types; ++t) {
            const i64 st = sel[t];
            const f32* __restrict__ gb =
                g_mats[t].value().data() + b * st * m;
            const f32* __restrict__ rb =
                r_mats[t].value().data() + b * st * q;
            std::fill(tmp.begin(), tmp.end(), 0.0f);
            for (i64 l = 0; l < st; ++l) {  // ascending l, as bmm_tn
              const f32* __restrict__ grow = gb + l * m;
              const f32* __restrict__ rrow = rb + l * q;
              for (i64 i = 0; i < m; ++i) {
                const f32 gv = grow[i];
                f32* __restrict__ trow = tmp.data() + i * q;
                for (i64 j = 0; j < q; ++j) trow[j] += gv * rrow[j];
              }
            }
            // Combine per-type partial sums in type order, exactly like
            // the bmm_tn -> op::add chain (t == 0 is the chain's seed).
            if (t == 0) {
              std::memcpy(ab, tmp.data(),
                          static_cast<std::size_t>(m * q) * sizeof(f32));
            } else {
              for (i64 e = 0; e < m * q; ++e) ab[e] += tmp[e];
            }
          }
          for (i64 e = 0; e < m * q; ++e) ab[e] *= inv_nm;  // op::scale
        }
      },
      grain_items(work));
  return out;
}

Tensor desc_d_kernel(const Tensor& a, i64 m, i64 m_axis) {
  FEKF_CHECK(m > 0 && a.rows() % m == 0 && m_axis <= m,
             "desc_d: rows " + std::to_string(a.rows()) +
                 " not divisible by m " + std::to_string(m));
  const i64 nb = a.rows() / m;
  const i64 q = a.cols();
  KernelLaunch launch("desc_d");
  Tensor out(nb * m, m_axis);
  const f32* __restrict__ pa = a.data();
  f32* __restrict__ po = out.data();
  // Per-block body (bmm_nt's f64 inner products) via the dispatch registry;
  // resolved before the parallel region, block partition unchanged.
  static dispatch::Dispatched<dispatch::DescContractFn> dispatched(
      "desc_contract_f32", &dispatch::register_desc_variants);
  const dispatch::DescContractFn fn = dispatched.get();
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        for (i64 b = blo; b < bhi; ++b) {
          fn(pa + b * m * q, po + b * m * m_axis, m, m_axis, q);
        }
      },
      grain_items(m * m_axis * q));
  return out;
}

/// gA = gD·A^< + pad(gD^T·A) in one pass — the whole kOpt1 backward chain
/// (bmm_nn + bmm_tn + block_pad_rows + add) for the descriptor tail.
Tensor desc_d_grad_kernel(const Tensor& gd, const Tensor& a, i64 m,
                          i64 m_axis) {
  FEKF_CHECK(m > 0 && a.rows() % m == 0 && gd.rows() == a.rows() &&
                 gd.cols() == m_axis,
             "desc_d_grad: gd " + gd.shape_str() + " vs a " + a.shape_str());
  const i64 nb = a.rows() / m;
  const i64 q = a.cols();
  KernelLaunch launch("desc_d_grad");
  Tensor out(nb * m, q);
  const f32* __restrict__ pg = gd.data();
  const f32* __restrict__ pa = a.data();
  f32* __restrict__ po = out.data();
  // The two partial products are staged in per-task buffers with loop
  // shapes copied VERBATIM from bmm_nn / bmm_tn (l-outer, accumulate in
  // place): under -ffp-contract the compiler then makes the same
  // multiply-add contraction choices as the unfused kernels, keeping the
  // fused backward bit-identical, not merely ulp-close.
  parallel_for_blocks(
      0, nb,
      [&](i64 blo, i64 bhi) {
        std::vector<f32> t1(static_cast<std::size_t>(m * q));
        std::vector<f32> t2(static_cast<std::size_t>(m_axis * q));
        for (i64 b = blo; b < bhi; ++b) {
          const f32* __restrict__ gb = pg + b * m * m_axis;
          const f32* __restrict__ ab = pa + b * m * q;
          f32* __restrict__ ob = po + b * m * q;
          // t1 = gD · A^<  (bmm_nn's loop order).
          std::fill(t1.begin(), t1.end(), 0.0f);
          for (i64 i = 0; i < m; ++i) {
            for (i64 l = 0; l < m_axis; ++l) {
              const f32 xv = gb[i * m_axis + l];
              for (i64 j = 0; j < q; ++j) {
                t1[static_cast<std::size_t>(i * q + j)] += xv * ab[l * q + j];
              }
            }
          }
          // t2 = gD^T · A  (bmm_tn's loop order; valid rows 0..m_axis).
          std::fill(t2.begin(), t2.end(), 0.0f);
          for (i64 l = 0; l < m; ++l) {
            const f32* xrow = gb + l * m_axis;
            const f32* yrow = ab + l * q;
            for (i64 i = 0; i < m_axis; ++i) {
              const f32 xv = xrow[i];
              for (i64 j = 0; j < q; ++j) {
                t2[static_cast<std::size_t>(i * q + j)] += xv * yrow[j];
              }
            }
          }
          // out = t1 + pad(t2): padded rows still add the literal +0.0f,
          // matching the op::add against block_pad_rows' zeros.
          for (i64 i = 0; i < m; ++i) {
            for (i64 j = 0; j < q; ++j) {
              const f32 pad =
                  i < m_axis ? t2[static_cast<std::size_t>(i * q + j)] : 0.0f;
              ob[i * q + j] = t1[static_cast<std::size_t>(i * q + j)] + pad;
            }
          }
        }
      },
      grain_items(m * q * (m_axis + m)));
  return out;
}

/// Differentiable wrapper over desc_d_grad_kernel; its backward composes
/// bmm ops (see header), so forces differentiate through it to any order.
Variable desc_d_grad(const Variable& gd, const Variable& a, i64 m,
                     i64 m_axis) {
  return Variable::make_op(
      desc_d_grad_kernel(gd.value(), a.value(), m, m_axis), "desc_d_grad",
      {gd, a},
      [gd, a, m, m_axis](const Variable& hh) -> std::vector<Variable> {
        // GA(gD, A) = gD·A^< + pad(gD^T·A) is bilinear; with upstream hh:
        //   d/dgD = hh·(A^<)^T + A·(hh^<)^T
        //   d/dA  = pad(gD^T·hh) + gD·hh^<
        const Variable hl = block_slice_rows(hh, m, 0, m_axis);
        const Variable al = block_slice_rows(a, m, 0, m_axis);
        Variable dgd = op::add(bmm_nt(hh, al, m, m_axis),
                               bmm_nt(a, hl, m, m_axis));
        Variable da = op::add(block_pad_rows(bmm_tn(gd, hh, m), m, m_axis, 0),
                              bmm_nn(gd, hl, m));
        return {dgd, da};
      });
}

}  // namespace

Variable desc_a(const std::vector<Variable>& g_mats,
                const std::vector<Variable>& r_mats,
                const std::vector<i64>& sel, f32 inv_nm) {
  const i64 m = g_mats[0].cols();
  std::vector<Variable> inputs;
  inputs.reserve(g_mats.size() + r_mats.size());
  inputs.insert(inputs.end(), g_mats.begin(), g_mats.end());
  inputs.insert(inputs.end(), r_mats.begin(), r_mats.end());
  return Variable::make_op(
      desc_a_kernel(g_mats, r_mats, sel, inv_nm), "desc_a", std::move(inputs),
      [g_mats, r_mats, sel, inv_nm, m](
          const Variable& g) -> std::vector<Variable> {
        // Same launches the kOpt1 backward issues (scale + 2 bmm per
        // type); composed of bmm ops, hence differentiable to any order.
        const Variable gs = op::scale(g, inv_nm);
        std::vector<Variable> grads;
        grads.reserve(g_mats.size() + r_mats.size());
        for (std::size_t t = 0; t < g_mats.size(); ++t) {
          grads.push_back(bmm_nt(r_mats[t], gs, sel[t], m));
        }
        for (std::size_t t = 0; t < g_mats.size(); ++t) {
          grads.push_back(bmm_nn(g_mats[t], gs, sel[t]));
        }
        return grads;
      });
}

Variable desc_d(const Variable& a, i64 m, i64 m_axis) {
  return Variable::make_op(
      desc_d_kernel(a.value(), m, m_axis), "desc_d", {a},
      [a, m, m_axis](const Variable& g) -> std::vector<Variable> {
        return {desc_d_grad(g, a, m, m_axis)};
      });
}

}  // namespace fekf::deepmd
