// Whole-descriptor fused ops (FusionLevel::kFused).
//
// The symmetry-preserving descriptor D_i = (G_i^T R_i / nm) (A_i^<)^T is
// computed at kOpt1/kOpt2 as a chain of batched kernels (per-type bmm_tn,
// add, scale, block_slice_rows, bmm_nt — T+4 launches for T neighbor
// types). kFused collapses the chain into two composite kernels:
//
//   desc_a : A = (1/nm) Σ_t G_t^T R_t     — one launch over all atoms and
//            types, accumulating per-type partial sums in the same order as
//            the bmm_tn/add/scale chain (bit-identical values).
//   desc_d : D_b = A_b (A_b^<)^T          — one launch; f64 accumulators
//            matching bmm_nt.
//
// desc_d's backward is itself one fused kernel (desc_d_grad, computing
// gA = gD·A^< + pad(gD^T·A) in a single pass), wrapped as a differentiable
// op whose own backward composes bmm_* — so the force path (which
// differentiates the backward graph) works to every order, exactly like
// bmm.hpp. desc_a's backward composes bmm_nt/bmm_nn per type (the same
// launches the kOpt1 backward issues), so the fusion win is concentrated
// where the launch fragmentation lives: the forward chain and the gD→gA
// contraction. DESIGN.md §12 carries the derivation and tolerance notes.
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace fekf::deepmd {

/// A = (1/nm) Σ_t G_t^T R_t over per-atom blocks; one launch. g_mats[t] is
/// (natoms*sel[t]) x M, r_mats[t] is (natoms*sel[t]) x 4; the result is
/// (natoms*M) x 4. Backward composes bmm ops (differentiable to any order).
ag::Variable desc_a(const std::vector<ag::Variable>& g_mats,
                    const std::vector<ag::Variable>& r_mats,
                    const std::vector<i64>& sel, f32 inv_nm);

/// D_b = A_b (A_b^<)^T per atom block (A_b is m x 4, A_b^< its first
/// m_axis rows); one launch forward, ONE fused launch for the whole
/// backward contraction (desc_d_grad), itself differentiable.
ag::Variable desc_d(const ag::Variable& a, i64 m, i64 m_axis);

}  // namespace fekf::deepmd
