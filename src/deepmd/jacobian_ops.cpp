#include "deepmd/jacobian_ops.hpp"

#include "tensor/kernel_counter.hpp"

namespace fekf::deepmd {

using ag::Variable;

namespace {

/// F[neighbor] -= J^T g_row; F[center] += J^T g_row  (signs fold in
/// F = -dE/dr with dE/dr_neighbor = +J^T g_row).
Tensor jacobian_force_kernel(const Tensor& grad_r, const EnvData& env,
                             i32 type) {
  FEKF_CHECK(grad_r.rows() == env.natoms * env.sel[static_cast<std::size_t>(type)] &&
                 grad_r.cols() == 4,
             "jacobian_force: grad_r shape mismatch");
  KernelLaunch launch("jacobian_force");
  Tensor out = Tensor::zeros(env.natoms, 3);
  const f32* __restrict__ pg = grad_r.data();
  f32* __restrict__ po = out.data();
  for (const SlotJacobian& sj : env.jacobians[static_cast<std::size_t>(type)]) {
    const f32* g = pg + static_cast<i64>(sj.row) * 4;
    for (int k = 0; k < 3; ++k) {
      f64 acc = 0.0;
      for (int c = 0; c < 4; ++c) {
        acc += sj.j[static_cast<std::size_t>(3 * c + k)] * g[c];
      }
      po[static_cast<i64>(sj.neighbor) * 3 + k] -= static_cast<f32>(acc);
      po[static_cast<i64>(sj.center) * 3 + k] += static_cast<f32>(acc);
    }
  }
  return out;
}

Tensor jacobian_transpose_kernel(const Tensor& f_cot, const EnvData& env,
                                 i32 type) {
  FEKF_CHECK(f_cot.rows() == env.natoms && f_cot.cols() == 3,
             "jacobian_force_transpose: cotangent shape mismatch");
  KernelLaunch launch("jacobian_force_transpose");
  Tensor out = Tensor::zeros(
      env.natoms * env.sel[static_cast<std::size_t>(type)], 4);
  const f32* __restrict__ pf = f_cot.data();
  f32* __restrict__ po = out.data();
  for (const SlotJacobian& sj : env.jacobians[static_cast<std::size_t>(type)]) {
    const f32* fn = pf + static_cast<i64>(sj.neighbor) * 3;
    const f32* fc = pf + static_cast<i64>(sj.center) * 3;
    f32* g = po + static_cast<i64>(sj.row) * 4;
    for (int c = 0; c < 4; ++c) {
      f64 acc = 0.0;
      for (int k = 0; k < 3; ++k) {
        acc += sj.j[static_cast<std::size_t>(3 * c + k)] *
               (static_cast<f64>(fc[k]) - fn[k]);
      }
      g[c] += static_cast<f32>(acc);
    }
  }
  return out;
}

}  // namespace

Variable jacobian_force(const Variable& grad_r,
                        std::shared_ptr<const EnvData> env, i32 type) {
  return Variable::make_op(
      jacobian_force_kernel(grad_r.value(), *env, type), "jacobian_force",
      {grad_r},
      [env, type](const Variable& g) -> std::vector<Variable> {
        return {jacobian_force_transpose(g, env, type)};
      });
}

Variable jacobian_force_transpose(const Variable& f_cotangent,
                                  std::shared_ptr<const EnvData> env,
                                  i32 type) {
  return Variable::make_op(
      jacobian_transpose_kernel(f_cotangent.value(), *env, type),
      "jacobian_force_transpose", {f_cotangent},
      [env, type](const Variable& g) -> std::vector<Variable> {
        return {jacobian_force(g, env, type)};
      });
}

}  // namespace fekf::deepmd
