// Differentiable application of the environment-matrix Jacobian.
//
// Forces are F = -dE/dr = -J^T (dE/dR~) where J = dR~/dr is pure geometry
// (precomputed in EnvData). jacobian_force applies -J^T as a single fused
// kernel; because the map is linear with constant coefficients, its
// backward is the transposed map (another fused kernel) and the pair is
// mutually differentiable to any order — which is what lets the EKF force
// measurement (and the Adam force loss) be differentiated w.r.t. weights.
#pragma once

#include <memory>

#include "autograd/variable.hpp"
#include "deepmd/env.hpp"

namespace fekf::deepmd {

/// grad_r ((natoms*sel[t]) x 4, the dE/dR~ block of neighbor type t)
/// -> force contribution (natoms x 3, sorted-atom order), including the
/// minus sign of F = -dE/dr.
ag::Variable jacobian_force(const ag::Variable& grad_r,
                            std::shared_ptr<const EnvData> env, i32 type);

/// Transposed map: given a (natoms x 3) cotangent, produce the
/// ((natoms*sel[t]) x 4) cotangent. Exposed for tests; jacobian_force uses
/// it as its backward.
ag::Variable jacobian_force_transpose(const ag::Variable& f_cotangent,
                                      std::shared_ptr<const EnvData> env,
                                      i32 type);

}  // namespace fekf::deepmd
