#include "deepmd/model.hpp"

#include <cstring>

#include "deepmd/bmm.hpp"
#include "deepmd/fused_descriptor.hpp"
#include "deepmd/jacobian_ops.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace fekf::deepmd {

namespace op = ag::ops;
using ag::Variable;

DeepmdModel::DeepmdModel(ModelConfig config, i32 num_types)
    : config_(config), num_types_(num_types) {
  FEKF_CHECK(num_types >= 1, "num_types must be >= 1");
  FEKF_CHECK(config.embed_width >= config.axis_neurons,
             "axis_neurons (M^<) cannot exceed embed_width (M)");
  Rng rng(config.init_seed);
  for (i32 t = 0; t < num_types; ++t) {
    embeddings_.emplace_back(config.embed_width,
                             "embed" + std::to_string(t), rng);
  }
  const i64 descriptor_dim = config.embed_width * config.axis_neurons;
  for (i32 t = 0; t < num_types; ++t) {
    fittings_.emplace_back(descriptor_dim, config.fitting_width,
                           "fit" + std::to_string(t), rng);
  }
}

void DeepmdModel::fit_stats(std::span<const md::Snapshot> train) {
  EnvStats env_stats =
      compute_env_stats(train, num_types_, config_);
  EnergyStats energy_stats = compute_energy_stats(train, num_types_);
  set_stats(std::move(env_stats), std::move(energy_stats));
}

void DeepmdModel::set_stats(EnvStats env_stats, EnergyStats energy_stats) {
  env_stats_ = std::move(env_stats);
  energy_stats_ = std::move(energy_stats);
  sel_ = config_.sel.empty() ? env_stats_.suggested_sel : config_.sel;
  FEKF_CHECK(static_cast<i32>(sel_.size()) == num_types_,
             "sel size must equal num_types");
  stats_ready_ = true;
}

std::shared_ptr<const EnvData> DeepmdModel::prepare(
    const md::Snapshot& snapshot) const {
  FEKF_CHECK(stats_ready_, "call fit_stats() before prepare()");
  return build_env(snapshot, env_stats_, sel_, config_);
}

Variable DeepmdModel::descriptor(const std::vector<Variable>& r_leaves,
                                 const std::vector<Variable>& g_mats,
                                 i64 natoms) const {
  const i64 m = config_.embed_width;
  const i64 m_axis = config_.axis_neurons;
  i64 nm_total = 0;
  for (const i64 s : sel_) nm_total += s;
  const f32 inv_nm = 1.0f / static_cast<f32>(nm_total);

  if (config_.fusion >= FusionLevel::kFused) {
    // Whole-descriptor fusion: one launch for A, one for D (plus one fused
    // launch for the whole gD -> gA backward contraction).
    Variable a = desc_a(g_mats, r_leaves, sel_, inv_nm);
    Variable d_blocks = desc_d(a, m, m_axis);
    return op::reshape(d_blocks, natoms, m * m_axis);
  }

  if (config_.fusion >= FusionLevel::kOpt1) {
    // Fused path: batched kernels over all atoms (one launch each).
    Variable a;
    for (i32 t = 0; t < num_types_; ++t) {
      Variable at = bmm_tn(g_mats[static_cast<std::size_t>(t)],
                           r_leaves[static_cast<std::size_t>(t)],
                           sel_[static_cast<std::size_t>(t)]);
      a = a.defined() ? op::add(a, at) : at;
    }
    a = op::scale(a, inv_nm);
    Variable a_axis = block_slice_rows(a, m, 0, m_axis);
    Variable d_blocks = bmm_nt(a, a_axis, m, m_axis);
    return op::reshape(d_blocks, natoms, m * m_axis);
  }

  // Baseline path: per-atom composed primitives, the fragmented-kernel
  // behaviour of framework autograd that Figure 7(b) quantifies.
  Variable d;
  for (i64 i = 0; i < natoms; ++i) {
    Variable a_i;
    for (i32 t = 0; t < num_types_; ++t) {
      const i64 st = sel_[static_cast<std::size_t>(t)];
      Variable g_i =
          op::slice_rows(g_mats[static_cast<std::size_t>(t)], i * st,
                         (i + 1) * st);
      Variable r_i =
          op::slice_rows(r_leaves[static_cast<std::size_t>(t)], i * st,
                         (i + 1) * st);
      Variable a_t = op::matmul_tn(g_i, r_i);
      a_i = a_i.defined() ? op::add(a_i, a_t) : a_t;
    }
    a_i = op::scale(a_i, inv_nm);
    Variable a_axis = op::slice_rows(a_i, 0, m_axis);
    Variable d_i = op::matmul_nt(a_i, a_axis);  // M x M^<
    Variable d_row = op::reshape(d_i, 1, m * m_axis);
    d = d.defined() ? op::concat_rows(d, d_row) : d_row;
  }
  return d;
}

DeepmdModel::Prediction DeepmdModel::predict(
    const std::shared_ptr<const EnvData>& env, bool with_forces) const {
  FEKF_CHECK(stats_ready_, "call fit_stats() before predict()");
  FEKF_CHECK(env != nullptr, "null env");
  obs::ScopedSpan span("deepmd.predict", "deepmd");
  span.arg("natoms", static_cast<f64>(env->natoms));
  span.arg("with_forces", with_forces ? 1.0 : 0.0);
  const i64 natoms = env->natoms;

  // Environment-matrix leaves (one per neighbor type). They require grad
  // only when forces are needed: dE/dR~ feeds the Jacobian force map.
  std::vector<Variable> r_leaves;
  r_leaves.reserve(static_cast<std::size_t>(num_types_));
  for (i32 t = 0; t < num_types_; ++t) {
    r_leaves.emplace_back(env->r_mats[static_cast<std::size_t>(t)],
                          /*requires_grad=*/with_forces);
  }

  // Embedding nets on the radial column.
  std::vector<Variable> g_mats;
  g_mats.reserve(static_cast<std::size_t>(num_types_));
  for (i32 t = 0; t < num_types_; ++t) {
    Variable s = op::slice_cols(r_leaves[static_cast<std::size_t>(t)], 0, 1);
    g_mats.push_back(embeddings_[static_cast<std::size_t>(t)].forward(
        s, config_.fusion));
  }

  Variable d = descriptor(r_leaves, g_mats, natoms);

  // Per center-type fitting nets over the type-sorted descriptor rows.
  Variable e_norm;
  for (i32 ct = 0; ct < num_types_; ++ct) {
    const i64 begin = env->type_offsets[static_cast<std::size_t>(ct)];
    const i64 end = env->type_offsets[static_cast<std::size_t>(ct) + 1];
    if (begin == end) continue;
    Variable d_ct =
        (begin == 0 && end == natoms) ? d : op::slice_rows(d, begin, end);
    Variable e_ct =
        fittings_[static_cast<std::size_t>(ct)].forward(d_ct, config_.fusion);
    Variable e_sum = op::sum_all(e_ct);
    e_norm = e_norm.defined() ? op::add(e_norm, e_sum) : e_sum;
  }

  f64 bias_total = 0.0;
  for (i32 t = 0; t < num_types_; ++t) {
    bias_total += energy_stats_.bias_per_type[static_cast<std::size_t>(t)] *
                  static_cast<f64>(env->type_counts[static_cast<std::size_t>(t)]);
  }

  Prediction out;
  out.energy = op::add_scalar(e_norm, static_cast<f32>(bias_total));

  if (with_forces) {
    // dE/dR~ with create_graph so the force stays differentiable w.r.t.
    // the weights (needed by the force loss / EKF force measurement).
    auto grad_r = ag::grad(e_norm, r_leaves, /*grad_root=*/{},
                           /*create_graph=*/true);
    Variable f;
    for (i32 t = 0; t < num_types_; ++t) {
      Variable ft = jacobian_force(grad_r[static_cast<std::size_t>(t)], env, t);
      f = f.defined() ? op::add(f, ft) : ft;
    }
    out.forces = f;
  }
  return out;
}

std::vector<DeepmdModel::Prediction> DeepmdModel::predict_batch(
    std::span<const std::shared_ptr<const EnvData>> envs,
    bool with_forces) const {
  FEKF_CHECK(stats_ready_, "call fit_stats() before predict_batch()");
  if (envs.empty()) return {};
  if (envs.size() == 1) return {predict(envs[0], with_forces)};

  const i64 n = static_cast<i64>(envs.size());
  obs::ScopedSpan span("deepmd.predict_batch", "deepmd");
  span.arg("requests", static_cast<f64>(n));

  // Atom order for the whole batch: CENTER-TYPE-major, env-minor — all
  // type-0 atoms (env 0's block, then env 1's, ...), then all type-1
  // atoms, and so on. Each env's slice of a type block is its own
  // type-sorted sub-block, so (a) the per-type fitting input is ONE
  // contiguous row range of the descriptor instead of per-env slices, and
  // (b) an env's rows, visited in ascending type order, reproduce its
  // internal atom order exactly. Everything per-env below is plain
  // memcpy / numeric reduction on values, never autograd ops: the batch
  // graph carries the same node count as a single predict(), which is
  // where the launch amortization comes from.
  const std::size_t nt = static_cast<std::size_t>(num_types_);
  std::vector<i64> ct_atom_base(nt + 1, 0);
  std::vector<std::vector<i64>> env_atom0(
      nt, std::vector<i64>(static_cast<std::size_t>(n), 0));
  for (i32 ct = 0; ct < num_types_; ++ct) {
    i64 acc = ct_atom_base[static_cast<std::size_t>(ct)];
    for (i64 i = 0; i < n; ++i) {
      const auto& env = envs[static_cast<std::size_t>(i)];
      FEKF_CHECK(env != nullptr, "null env in predict_batch");
      FEKF_CHECK(static_cast<i32>(env->r_mats.size()) == num_types_,
                 "env/model num_types mismatch in predict_batch");
      env_atom0[static_cast<std::size_t>(ct)][static_cast<std::size_t>(i)] =
          acc;
      acc += env->type_counts[static_cast<std::size_t>(ct)];
    }
    ct_atom_base[static_cast<std::size_t>(ct) + 1] = acc;
  }
  const i64 total_atoms = ct_atom_base[nt];
  span.arg("natoms", static_cast<f64>(total_atoms));

  // One environment-matrix leaf per neighbor type, sel_t rows per atom in
  // the global atom order. Concatenation is a plain copy outside the
  // graph: the leaves are roots, so no op sees the per-env tensors.
  std::vector<Variable> r_leaves;
  r_leaves.reserve(nt);
  for (i32 t = 0; t < num_types_; ++t) {
    const i64 sel_t = sel_[static_cast<std::size_t>(t)];
    // Uninitialized: the per-(ct, env) copies below cover every atom's
    // rows exactly once (the ct blocks partition the atom range).
    Tensor cat(total_atoms * sel_t, 4);
    for (i32 ct = 0; ct < num_types_; ++ct) {
      for (i64 i = 0; i < n; ++i) {
        const auto& env = envs[static_cast<std::size_t>(i)];
        const i64 a0 = env->type_offsets[static_cast<std::size_t>(ct)];
        const i64 a1 = env->type_offsets[static_cast<std::size_t>(ct) + 1];
        if (a0 == a1) continue;
        std::memcpy(
            cat.data() +
                env_atom0[static_cast<std::size_t>(ct)]
                         [static_cast<std::size_t>(i)] * sel_t * 4,
            env->r_mats[static_cast<std::size_t>(t)].data() + a0 * sel_t * 4,
            static_cast<std::size_t>((a1 - a0) * sel_t * 4) * sizeof(f32));
      }
    }
    r_leaves.emplace_back(std::move(cat), /*requires_grad=*/with_forces);
  }

  // Embeddings / descriptor: predict() verbatim, over the batch rows.
  std::vector<Variable> g_mats;
  g_mats.reserve(nt);
  for (i32 t = 0; t < num_types_; ++t) {
    Variable s = op::slice_cols(r_leaves[static_cast<std::size_t>(t)], 0, 1);
    g_mats.push_back(embeddings_[static_cast<std::size_t>(t)].forward(
        s, config_.fusion));
  }

  Variable d = descriptor(r_leaves, g_mats, total_atoms);

  // Fitting per center type: one contiguous slice of the type-major
  // descriptor — the same per-ct op sequence as predict(), regardless of
  // batch width.
  std::vector<Variable> e_ct_all(nt);
  for (i32 ct = 0; ct < num_types_; ++ct) {
    const i64 begin = ct_atom_base[static_cast<std::size_t>(ct)];
    const i64 end = ct_atom_base[static_cast<std::size_t>(ct) + 1];
    if (begin == end) continue;
    Variable d_ct = (begin == 0 && end == total_atoms)
                        ? d
                        : op::slice_rows(d, begin, end);
    e_ct_all[static_cast<std::size_t>(ct)] =
        fittings_[static_cast<std::size_t>(ct)].forward(d_ct, config_.fusion);
  }

  // Per-env energies, computed numerically from the fitting values with
  // the exact arithmetic predict() performs: sum_all on a cnt-row tensor
  // is parallel_reduce_f64 over [0, cnt) with a fixed chunk length — the
  // partition depends only on the element count, which is this env's own
  // row count in both paths — followed by f32 adds in ascending
  // center-type order and one f32 bias add.
  std::vector<Prediction> out(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const auto& env = envs[static_cast<std::size_t>(i)];
    f32 e_norm = 0.0f;
    bool have = false;
    for (i32 ct = 0; ct < num_types_; ++ct) {
      const i64 cnt = env->type_counts[static_cast<std::size_t>(ct)];
      if (cnt == 0) continue;
      const Tensor& e_ct = e_ct_all[static_cast<std::size_t>(ct)].value();
      const f32* pe =
          e_ct.data() +
          (env_atom0[static_cast<std::size_t>(ct)]
                    [static_cast<std::size_t>(i)] -
           ct_atom_base[static_cast<std::size_t>(ct)]) * e_ct.cols();
      const i64 elems = cnt * e_ct.cols();
      const f64 acc = parallel_reduce_f64(
          0, elems, kReduceChunk, [pe](i64 lo, i64 hi) {
            f64 s = 0.0;
            for (i64 j = lo; j < hi; ++j) s += pe[j];
            return s;
          });
      const f32 e_sum = static_cast<f32>(acc);
      e_norm = have ? e_norm + e_sum : e_sum;
      have = true;
    }
    f64 bias_total = 0.0;
    for (i32 t = 0; t < num_types_; ++t) {
      bias_total +=
          energy_stats_.bias_per_type[static_cast<std::size_t>(t)] *
          static_cast<f64>(env->type_counts[static_cast<std::size_t>(t)]);
    }
    out[static_cast<std::size_t>(i)].energy = Variable(
        Tensor::scalar(e_norm + static_cast<f32>(bias_total)),
        /*requires_grad=*/false);
  }

  if (with_forces) {
    // One backward pass for the whole batch. sum_all + add backward seed
    // every fitting-output row's gradient with exactly 1.0 — the same
    // seeds the per-env chains in predict() produce — and every backward
    // kernel in the chain is row/block-independent, so each env's block
    // of dE/dR~ is bit-identical to its single-env backward.
    Variable e_total;
    for (i32 ct = 0; ct < num_types_; ++ct) {
      const Variable& e_ct = e_ct_all[static_cast<std::size_t>(ct)];
      if (!e_ct.defined()) continue;
      Variable s = op::sum_all(e_ct);
      e_total = e_total.defined() ? op::add(e_total, s) : s;
    }
    auto grad_r = ag::grad(e_total, r_leaves, /*grad_root=*/{},
                           /*create_graph=*/false);
    for (i64 i = 0; i < n; ++i) {
      const auto& env = envs[static_cast<std::size_t>(i)];
      Variable f;
      for (i32 t = 0; t < num_types_; ++t) {
        const i64 sel_t = sel_[static_cast<std::size_t>(t)];
        // Uninitialized: the ct blocks partition [0, natoms), so the
        // copies below write every row.
        Tensor g_env(env->natoms * sel_t, 4);
        for (i32 ct = 0; ct < num_types_; ++ct) {
          const i64 a0 = env->type_offsets[static_cast<std::size_t>(ct)];
          const i64 a1 = env->type_offsets[static_cast<std::size_t>(ct) + 1];
          if (a0 == a1) continue;
          std::memcpy(
              g_env.data() + a0 * sel_t * 4,
              grad_r[static_cast<std::size_t>(t)].value().data() +
                  env_atom0[static_cast<std::size_t>(ct)]
                           [static_cast<std::size_t>(i)] * sel_t * 4,
              static_cast<std::size_t>((a1 - a0) * sel_t * 4) * sizeof(f32));
        }
        Variable ft = jacobian_force(
            Variable(std::move(g_env), /*requires_grad=*/false),
            env, t);
        f = f.defined() ? op::add(f, ft) : ft;
      }
      out[static_cast<std::size_t>(i)].forces = f;
    }
  }
  return out;
}

std::vector<Variable> DeepmdModel::parameters() const {
  std::vector<Variable> params;
  for (const EmbeddingNet& net : embeddings_) {
    for (const LayerParams& layer : net.layers()) {
      params.push_back(layer.weight);
      params.push_back(layer.bias);
    }
  }
  for (const FittingNet& net : fittings_) {
    for (const LayerParams& layer : net.layers()) {
      params.push_back(layer.weight);
      params.push_back(layer.bias);
    }
  }
  return params;
}

std::vector<std::pair<std::string, i64>> DeepmdModel::parameter_layout()
    const {
  std::vector<std::pair<std::string, i64>> layout;
  for (const EmbeddingNet& net : embeddings_) {
    for (const LayerParams& layer : net.layers()) {
      layout.emplace_back(layer.name + ".w", layer.weight.numel());
      layout.emplace_back(layer.name + ".b", layer.bias.numel());
    }
  }
  for (const FittingNet& net : fittings_) {
    for (const LayerParams& layer : net.layers()) {
      layout.emplace_back(layer.name + ".w", layer.weight.numel());
      layout.emplace_back(layer.name + ".b", layer.bias.numel());
    }
  }
  return layout;
}

i64 DeepmdModel::num_parameters() const {
  i64 n = 0;
  for (const auto& [name, size] : parameter_layout()) n += size;
  return n;
}

}  // namespace fekf::deepmd
