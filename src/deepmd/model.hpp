// The DeePMD potential-energy model (paper §2.1, Figure 2).
//
// Pipeline per snapshot:
//   R~ (per neighbor type)  --embedding-->  G
//   A = (1/Nm) sum_t G_t^T R~_t            (per atom, M x 4)
//   D = A A_<^T                            (symmetry-preserving descriptor)
//   D --fitting (per center type)--> atomic energies e_i
//   E = sum_i e_i + bias,   F = -dE/dr via the env-matrix Jacobian.
//
// The descriptor contraction runs in one of two modes (ModelConfig.fusion):
// per-atom composed primitives (framework-autograd baseline) or the fused
// bmm kernels with hand-written derivatives (paper opt1; Fig. 6).
#pragma once

#include <memory>
#include <span>
#include <utility>

#include "deepmd/env.hpp"
#include "deepmd/network.hpp"
#include "deepmd/stats.hpp"

namespace fekf::deepmd {

class DeepmdModel {
 public:
  DeepmdModel(ModelConfig config, i32 num_types);

  /// Compute normalization statistics (and, if config.sel is empty, the
  /// per-type neighbor budget) from training snapshots. Must run before
  /// prepare()/predict().
  void fit_stats(std::span<const md::Snapshot> train);

  /// Inject precomputed statistics (tests, model reload).
  void set_stats(EnvStats env_stats, EnergyStats energy_stats);

  /// Geometry preprocessing; reusable across epochs for a static dataset.
  std::shared_ptr<const EnvData> prepare(const md::Snapshot& snapshot) const;

  struct Prediction {
    ag::Variable energy;  ///< 1x1, eV
    ag::Variable forces;  ///< natoms x 3, eV/Å, sorted-atom order;
                          ///< undefined unless requested
  };

  /// Forward pass; set `with_forces` to also build the differentiable
  /// force graph (costs a create_graph backward pass).
  Prediction predict(const std::shared_ptr<const EnvData>& env,
                     bool with_forces) const;

  /// Batched forward pass over independent environments: one embedding /
  /// descriptor / fitting / backward launch sequence for the whole batch
  /// instead of one per snapshot, amortizing launch overhead exactly the
  /// way the minibatch FEKF amortizes updates (DESIGN.md §14). Atoms are
  /// laid out center-type-major so all per-env work is plain memcpy and
  /// numeric reduction — the graph holds the same node count as a single
  /// predict() regardless of batch width. Results are bit-identical to
  /// predict() on each env under the `auto` kernel policy: every op in
  /// the chain (row-wise gemm, elementwise tanh, per-atom-block
  /// contraction) is row- or block-independent, per-env energies replay
  /// sum_all's fixed-chunk f64 reduction over each env's own element
  /// count, and sum_all/add backward seeds every row gradient with
  /// exactly 1.0 either way. Force gradients may differ in the sign of
  /// zero (disjoint scatter-add contributes -0.0 + 0.0 = +0.0); they
  /// compare equal numerically. Unlike predict(), the returned
  /// Predictions are detached values: energies and forces carry no
  /// autograd graph, so they cannot seed a further backward pass. The
  /// serving path is the intended consumer; training uses predict().
  std::vector<Prediction> predict_batch(
      std::span<const std::shared_ptr<const EnvData>> envs,
      bool with_forces) const;

  /// All trainable leaves in the canonical flattening order (embedding
  /// nets by neighbor type, then fitting nets by center type; weight
  /// before bias within each layer).
  std::vector<ag::Variable> parameters() const;

  /// (name, element count) per parameter leaf, same order as parameters().
  std::vector<std::pair<std::string, i64>> parameter_layout() const;

  i64 num_parameters() const;

  FusionLevel fusion() const { return config_.fusion; }
  void set_fusion(FusionLevel level) { config_.fusion = level; }

  const ModelConfig& config() const { return config_; }
  i32 num_types() const { return num_types_; }
  const EnvStats& env_stats() const { return env_stats_; }
  const EnergyStats& energy_stats() const { return energy_stats_; }
  const std::vector<i64>& sel() const { return sel_; }

 private:
  ag::Variable descriptor(const std::vector<ag::Variable>& r_leaves,
                          const std::vector<ag::Variable>& g_mats,
                          i64 natoms) const;

  ModelConfig config_;
  i32 num_types_;
  std::vector<EmbeddingNet> embeddings_;  ///< one per neighbor type
  std::vector<FittingNet> fittings_;      ///< one per center type
  EnvStats env_stats_;
  EnergyStats energy_stats_;
  std::vector<i64> sel_;
  bool stats_ready_ = false;
};

}  // namespace fekf::deepmd
