#include "deepmd/model_potential.hpp"

namespace fekf::deepmd {

f64 ModelPotential::compute(std::span<const md::Vec3> positions,
                            std::span<const i32> types, const md::Cell& cell,
                            const md::NeighborList& nl,
                            std::span<md::Vec3> forces) const {
  (void)nl;  // the environment matrix builds its own typed neighbor slots
  FEKF_CHECK(positions.size() == types.size() &&
                 positions.size() == forces.size(),
             "array size mismatch");
  md::Snapshot snap;
  snap.cell = cell;
  snap.positions.assign(positions.begin(), positions.end());
  snap.types.assign(types.begin(), types.end());
  snap.forces.assign(positions.size(), md::Vec3{});

  auto env = model_.prepare(snap);
  auto pred = model_.predict(env, /*with_forces=*/true);
  const Tensor& f = pred.forces.value();
  for (i64 sorted = 0; sorted < env->natoms; ++sorted) {
    const i64 orig = env->perm[static_cast<std::size_t>(sorted)];
    forces[static_cast<std::size_t>(orig)] +=
        md::Vec3{f.at(sorted, 0), f.at(sorted, 1), f.at(sorted, 2)};
  }
  return static_cast<f64>(pred.energy.item());
}

}  // namespace fekf::deepmd
