// Adapter: use a trained DeePMD model as an md::Potential, closing the
// loop the paper motivates — train a force field in minutes, then run
// molecular dynamics with it (what DeePMD models exist for).
#pragma once

#include "deepmd/model.hpp"
#include "md/potential.hpp"

namespace fekf::deepmd {

class ModelPotential final : public md::Potential {
 public:
  /// The model must have fitted statistics. Only a reference is held.
  explicit ModelPotential(const DeepmdModel& model) : model_(model) {}

  f64 cutoff() const override { return model_.config().rcut; }

  f64 compute(std::span<const md::Vec3> positions,
              std::span<const i32> types, const md::Cell& cell,
              const md::NeighborList& nl,
              std::span<md::Vec3> forces) const override;

 private:
  const DeepmdModel& model_;
};

}  // namespace fekf::deepmd
