#include "deepmd/network.hpp"

#include <cmath>

namespace fekf::deepmd {

namespace op = ag::ops;

namespace detail {

LayerParams make_layer(i64 fan_in, i64 fan_out, const std::string& name,
                       Rng& rng, f64 weight_scale) {
  LayerParams layer;
  const f64 stddev = weight_scale / std::sqrt(static_cast<f64>(fan_in));
  layer.weight =
      ag::Variable(Tensor::randn(fan_in, fan_out, rng, stddev), true);
  layer.bias = ag::Variable(Tensor::zeros(1, fan_out), true);
  layer.name = name;
  return layer;
}

ag::Variable dense(const ag::Variable& x, const LayerParams& layer,
                   bool activate, FusionLevel fusion) {
  if (activate && fusion >= FusionLevel::kFused) {
    // Whole layer in one launch forward / one launch backward.
    return op::linear_tanh_fused(x, layer.weight, layer.bias);
  }
  const bool fused = fusion >= FusionLevel::kOpt2;
  ag::Variable pre = fused ? op::linear_fused(x, layer.weight, layer.bias)
                           : op::linear(x, layer.weight, layer.bias);
  if (!activate) return pre;
  return fused ? op::tanh_fused(pre) : op::tanh(pre);
}

}  // namespace detail

EmbeddingNet::EmbeddingNet(i64 width, const std::string& name, Rng& rng)
    : width_(width) {
  layers_.push_back(detail::make_layer(1, width, name + ".e0", rng));
  layers_.push_back(detail::make_layer(width, width, name + ".e1", rng));
  layers_.push_back(detail::make_layer(width, width, name + ".e2", rng));
}

ag::Variable EmbeddingNet::forward(const ag::Variable& s,
                                   FusionLevel fusion) const {
  // E0: tanh(s W0 + b0); E1/E2: X + tanh(X W + b) (residual).
  ag::Variable h = detail::dense(s, layers_[0], /*activate=*/true, fusion);
  h = op::add(h, detail::dense(h, layers_[1], true, fusion));
  h = op::add(h, detail::dense(h, layers_[2], true, fusion));
  return h;
}

FittingNet::FittingNet(i64 input, i64 width, const std::string& name,
                       Rng& rng) {
  layers_.push_back(detail::make_layer(input, width, name + ".f0", rng));
  layers_.push_back(detail::make_layer(width, width, name + ".f1", rng));
  layers_.push_back(detail::make_layer(width, width, name + ".f2", rng));
  // Final linear layer initialized small so initial energies start near the
  // dataset bias.
  layers_.push_back(detail::make_layer(width, 1, name + ".f3", rng, 0.1));
}

ag::Variable FittingNet::forward(const ag::Variable& d,
                                 FusionLevel fusion) const {
  ag::Variable h = detail::dense(d, layers_[0], true, fusion);
  h = op::add(h, detail::dense(h, layers_[1], true, fusion));
  h = op::add(h, detail::dense(h, layers_[2], true, fusion));
  return detail::dense(h, layers_[3], /*activate=*/false, fusion);
}

}  // namespace fekf::deepmd
