// DeePMD sub-networks (paper §2.1):
//   EmbeddingNet  G = E2 ∘ E1 ∘ E0 (s):  1 -> M, then two residual M -> M
//                 layers, tanh activations.
//   FittingNet    E_i = F3 ∘ F2 ∘ F1 ∘ F0 (D_i): MM^< -> d, two residual
//                 d -> d layers, final linear d -> 1.
//
// Every layer registers its parameters with names, which is what the EKF
// optimizers use to reproduce the paper's layer-wise gather/split blocking
// (the {1350, 10240, 9760, 5301} layout for the 26 551-parameter network).
#pragma once

#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "core/rng.hpp"
#include "deepmd/config.hpp"

namespace fekf::deepmd {

struct LayerParams {
  ag::Variable weight;  ///< (fan_in x fan_out)
  ag::Variable bias;    ///< (1 x fan_out)
  std::string name;
};

namespace detail {

/// One affine+activation step honoring the fusion level.
ag::Variable dense(const ag::Variable& x, const LayerParams& layer,
                   bool activate, FusionLevel fusion);

LayerParams make_layer(i64 fan_in, i64 fan_out, const std::string& name,
                       Rng& rng, f64 weight_scale = 1.0);

}  // namespace detail

class EmbeddingNet {
 public:
  /// Width M, three layers as in the paper's [25, 25, 25].
  EmbeddingNet(i64 width, const std::string& name, Rng& rng);

  /// (n x 1) radial features -> (n x M).
  ag::Variable forward(const ag::Variable& s, FusionLevel fusion) const;

  std::vector<LayerParams>& layers() { return layers_; }
  const std::vector<LayerParams>& layers() const { return layers_; }
  i64 width() const { return width_; }

 private:
  i64 width_;
  std::vector<LayerParams> layers_;
};

class FittingNet {
 public:
  /// Input MM^<, hidden d, as in the paper's [400, 50, 50, 50, 1].
  FittingNet(i64 input, i64 width, const std::string& name, Rng& rng);

  /// (n x MM^<) descriptors -> (n x 1) atomic energies.
  ag::Variable forward(const ag::Variable& d, FusionLevel fusion) const;

  std::vector<LayerParams>& layers() { return layers_; }
  const std::vector<LayerParams>& layers() const { return layers_; }

 private:
  std::vector<LayerParams> layers_;
};

}  // namespace fekf::deepmd
