#include "deepmd/serialize.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace fekf::deepmd {

namespace {

constexpr const char* kMagic = "fekf-deepmd-model-v1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_vector(std::FILE* f, const char* name,
                  const std::vector<f64>& v) {
  std::fprintf(f, "%s %zu", name, v.size());
  for (const f64 x : v) std::fprintf(f, " %a", x);
  std::fprintf(f, "\n");
}

void write_ivector(std::FILE* f, const char* name,
                   const std::vector<i64>& v) {
  std::fprintf(f, "%s %zu", name, v.size());
  for (const i64 x : v) std::fprintf(f, " %" PRId64, x);
  std::fprintf(f, "\n");
}

std::vector<f64> read_vector(std::FILE* f, const char* name) {
  char key[64];
  std::size_t n = 0;
  FEKF_CHECK(std::fscanf(f, "%63s %zu", key, &n) == 2 &&
                 std::string(key) == name,
             std::string("expected field '") + name + "'");
  std::vector<f64> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    FEKF_CHECK(std::fscanf(f, "%la", &v[i]) == 1, "truncated vector");
  }
  return v;
}

std::vector<i64> read_ivector(std::FILE* f, const char* name) {
  char key[64];
  std::size_t n = 0;
  FEKF_CHECK(std::fscanf(f, "%63s %zu", key, &n) == 2 &&
                 std::string(key) == name,
             std::string("expected field '") + name + "'");
  std::vector<i64> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    FEKF_CHECK(std::fscanf(f, "%" SCNd64, &v[i]) == 1, "truncated vector");
  }
  return v;
}

}  // namespace

void save_model(const DeepmdModel& model, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' for writing");
  const ModelConfig& cfg = model.config();
  std::fprintf(f.get(), "%s\n", kMagic);
  std::fprintf(f.get(),
               "config %d %a %a %" PRId64 " %" PRId64 " %" PRId64 " %d\n",
               model.num_types(), cfg.rcut, cfg.rcut_smth, cfg.embed_width,
               cfg.axis_neurons, cfg.fitting_width,
               static_cast<int>(cfg.fusion));
  write_ivector(f.get(), "sel", model.sel());
  const EnvStats& env = model.env_stats();
  write_vector(f.get(), "davg", env.davg);
  write_vector(f.get(), "dstd_r", env.dstd_r);
  write_vector(f.get(), "dstd_a", env.dstd_a);
  const EnergyStats& es = model.energy_stats();
  write_vector(f.get(), "bias", es.bias_per_type);
  std::fprintf(f.get(), "residual_std %a\n", es.residual_std);

  auto params = model.parameters();
  std::fprintf(f.get(), "params %zu\n", params.size());
  for (const ag::Variable& p : params) {
    std::fprintf(f.get(), "%" PRId64 " %" PRId64, p.value().rows(),
                 p.value().cols());
    const f32* data = p.value().data();
    for (i64 i = 0; i < p.numel(); ++i) {
      std::fprintf(f.get(), " %a", static_cast<f64>(data[i]));
    }
    std::fprintf(f.get(), "\n");
  }
}

DeepmdModel load_model(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' for reading");
  char magic[64];
  FEKF_CHECK(std::fscanf(f.get(), "%63s", magic) == 1 &&
                 std::string(magic) == kMagic,
             "'" + path + "' is not a fekf model file");

  ModelConfig cfg;
  int num_types = 0;
  int fusion = 0;
  char key[64];
  FEKF_CHECK(std::fscanf(f.get(),
                         "%63s %d %la %la %" SCNd64 " %" SCNd64 " %" SCNd64
                         " %d",
                         key, &num_types, &cfg.rcut, &cfg.rcut_smth,
                         &cfg.embed_width, &cfg.axis_neurons,
                         &cfg.fitting_width, &fusion) == 8 &&
                 std::string(key) == "config",
             "bad config line");
  cfg.fusion = static_cast<FusionLevel>(fusion);

  EnvStats env;
  std::vector<i64> sel = read_ivector(f.get(), "sel");
  env.davg = read_vector(f.get(), "davg");
  env.dstd_r = read_vector(f.get(), "dstd_r");
  env.dstd_a = read_vector(f.get(), "dstd_a");
  env.suggested_sel = sel;
  cfg.sel = sel;
  EnergyStats es;
  es.bias_per_type = read_vector(f.get(), "bias");
  f64 residual = 1.0;
  FEKF_CHECK(std::fscanf(f.get(), "%63s %la", key, &residual) == 2 &&
                 std::string(key) == "residual_std",
             "bad residual_std line");
  es.residual_std = residual;

  DeepmdModel model(cfg, num_types);
  model.set_stats(std::move(env), std::move(es));

  std::size_t nparams = 0;
  FEKF_CHECK(std::fscanf(f.get(), "%63s %zu", key, &nparams) == 2 &&
                 std::string(key) == "params",
             "bad params line");
  auto params = model.parameters();
  FEKF_CHECK(nparams == params.size(),
             "parameter count mismatch: file has " + std::to_string(nparams) +
                 ", architecture has " + std::to_string(params.size()));
  for (ag::Variable& p : params) {
    i64 rows = 0, cols = 0;
    FEKF_CHECK(std::fscanf(f.get(), "%" SCNd64 " %" SCNd64, &rows, &cols) ==
                   2,
               "truncated parameter header");
    FEKF_CHECK(rows == p.value().rows() && cols == p.value().cols(),
               "parameter shape mismatch");
    Tensor t(rows, cols);
    for (i64 i = 0; i < t.numel(); ++i) {
      f64 v = 0.0;
      FEKF_CHECK(std::fscanf(f.get(), "%la", &v) == 1,
                 "truncated parameter data");
      t.data()[i] = static_cast<f32>(v);
    }
    p.set_value(t);
  }
  return model;
}

}  // namespace fekf::deepmd
