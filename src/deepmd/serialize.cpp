#include "deepmd/serialize.hpp"

#include <cmath>

namespace fekf::deepmd {

namespace {

constexpr const char* kMagic = "fekf-deepmd-model-v1";

void write_vector(TextWriter& w, const char* name,
                  const std::vector<f64>& v) {
  w.key(name);
  w.size(v.size());
  for (const f64 x : v) w.f64v(x);
}

void write_ivector(TextWriter& w, const char* name,
                   const std::vector<i64>& v) {
  w.key(name);
  w.size(v.size());
  for (const i64 x : v) w.i64v(x);
}

std::vector<f64> read_vector(TextReader& r, const char* name) {
  r.expect(name);
  const u64 n = r.read_u64();
  std::vector<f64> v;
  r.read_f64s(v, static_cast<std::size_t>(n));
  return v;
}

std::vector<i64> read_ivector(TextReader& r, const char* name) {
  r.expect(name);
  const u64 n = r.read_u64();
  std::vector<i64> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.read_i64();
  return v;
}

}  // namespace

void write_model_text(const DeepmdModel& model, TextWriter& w) {
  const ModelConfig& cfg = model.config();
  w.key(kMagic);
  w.key("config");
  w.i64v(model.num_types());
  w.f64v(cfg.rcut);
  w.f64v(cfg.rcut_smth);
  w.i64v(cfg.embed_width);
  w.i64v(cfg.axis_neurons);
  w.i64v(cfg.fitting_width);
  w.i64v(static_cast<i64>(cfg.fusion));
  write_ivector(w, "sel", model.sel());
  const EnvStats& env = model.env_stats();
  write_vector(w, "davg", env.davg);
  write_vector(w, "dstd_r", env.dstd_r);
  write_vector(w, "dstd_a", env.dstd_a);
  const EnergyStats& es = model.energy_stats();
  write_vector(w, "bias", es.bias_per_type);
  w.key("residual_std");
  w.f64v(es.residual_std);

  auto params = model.parameters();
  w.key("params");
  w.size(params.size());
  for (const ag::Variable& p : params) {
    w.key("");
    w.i64v(p.value().rows());
    w.i64v(p.value().cols());
    const f32* data = p.value().data();
    for (i64 i = 0; i < p.numel(); ++i) {
      w.f64v(static_cast<f64>(data[i]));
    }
  }
  w.end_line();
}

DeepmdModel read_model_text(TextReader& r) {
  const std::string_view magic = r.token();
  if (magic != kMagic) {
    r.malformed("not a fekf model (expected magic '" + std::string(kMagic) +
                "', got '" + std::string(magic.substr(0, 40)) + "')");
  }

  r.expect("config");
  ModelConfig cfg;
  const i64 num_types = r.read_i64();
  if (num_types <= 0 || num_types > 1024) {
    r.malformed("implausible num_types " + std::to_string(num_types));
  }
  cfg.rcut = r.read_f64();
  cfg.rcut_smth = r.read_f64();
  cfg.embed_width = r.read_i64();
  cfg.axis_neurons = r.read_i64();
  cfg.fitting_width = r.read_i64();
  const i64 fusion = r.read_i64();
  cfg.fusion = static_cast<FusionLevel>(fusion);

  EnvStats env;
  std::vector<i64> sel = read_ivector(r, "sel");
  env.davg = read_vector(r, "davg");
  env.dstd_r = read_vector(r, "dstd_r");
  env.dstd_a = read_vector(r, "dstd_a");
  env.suggested_sel = sel;
  cfg.sel = sel;
  EnergyStats es;
  es.bias_per_type = read_vector(r, "bias");
  r.expect("residual_std");
  es.residual_std = r.read_f64();

  DeepmdModel model(cfg, static_cast<i32>(num_types));
  model.set_stats(std::move(env), std::move(es));

  r.expect("params");
  const u64 nparams = r.read_u64();
  auto params = model.parameters();
  if (nparams != params.size()) {
    r.malformed("parameter count mismatch: file has " +
                std::to_string(nparams) + " leaves, architecture has " +
                std::to_string(params.size()));
  }
  for (ag::Variable& p : params) {
    const i64 rows = r.read_i64();
    const i64 cols = r.read_i64();
    if (rows != p.value().rows() || cols != p.value().cols()) {
      r.malformed("parameter shape mismatch: file has " +
                  std::to_string(rows) + "x" + std::to_string(cols) +
                  ", architecture expects " +
                  std::to_string(p.value().rows()) + "x" +
                  std::to_string(p.value().cols()));
    }
    Tensor t(rows, cols);
    for (i64 i = 0; i < t.numel(); ++i) {
      t.data()[i] = static_cast<f32>(r.read_f64());
    }
    p.set_value(t);
  }
  return model;
}

void save_model(const DeepmdModel& model, const std::string& path) {
  TextWriter w;
  w.reserve(static_cast<std::size_t>(model.num_parameters()) * 24 + 4096);
  write_model_text(model, w);
  const std::string& body = w.str();
  std::FILE* f = std::fopen(path.c_str(), "w");
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' for writing");
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  FEKF_CHECK(ok, "short write to '" + path + "'");
}

DeepmdModel load_model(const std::string& path) {
  const std::string text = read_file(path);
  TextReader r(text, path);
  return read_model_text(r);
}

DeepmdModel clone_model(const DeepmdModel& model) {
  TextWriter w;
  w.reserve(static_cast<std::size_t>(model.num_parameters()) * 24 + 4096);
  write_model_text(model, w);
  TextReader r(w.str(), "<clone>");
  return read_model_text(r);
}

}  // namespace fekf::deepmd
