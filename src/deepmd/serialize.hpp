// Model checkpointing: save/restore a trained DeePMD model (architecture,
// normalization statistics, energy bias, and weights) to a portable text
// file. Used by the online-learning workflow (warm restarts across
// retraining sessions), by inference tools (md_with_model), and embedded
// verbatim as the model section of full training checkpoints
// (train/checkpoint.hpp).
//
// Format: a line-oriented header followed by one hex-float (%a) per
// parameter — bit-exact round-trips without binary-endianness concerns.
// Every malformed token is rejected with a single-line Error naming the
// file, the line number, and what was expected (core/textio.hpp).
#pragma once

#include <string>

#include "core/textio.hpp"
#include "deepmd/model.hpp"

namespace fekf::deepmd {

/// Write the model to `path`. Throws Error on I/O failure.
void save_model(const DeepmdModel& model, const std::string& path);

/// Reconstruct a model from `path`. The returned model is ready for
/// prepare()/predict() (stats included).
DeepmdModel load_model(const std::string& path);

/// Append the model's serialized form (magic line, config, stats, params)
/// to `writer` — byte-identical to a model file's contents.
void write_model_text(const DeepmdModel& model, TextWriter& writer);

/// Parse a model from `reader`, positioned at the magic token; consumes
/// exactly the tokens write_model_text produced. Malformed input fails
/// loudly with the reader's file/line diagnostics.
DeepmdModel read_model_text(TextReader& reader);

/// Bit-exact deep copy via an in-memory serialize/deserialize round trip
/// (the hex-float format loses nothing). This is how the serving registry
/// decouples a published snapshot from the trainer's live weights.
DeepmdModel clone_model(const DeepmdModel& model);

}  // namespace fekf::deepmd
