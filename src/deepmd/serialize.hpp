// Model checkpointing: save/restore a trained DeePMD model (architecture,
// normalization statistics, energy bias, and weights) to a portable text
// file. Used by the online-learning workflow (warm restarts across
// retraining sessions) and by inference tools (md_with_model).
//
// Format: a line-oriented header followed by one hex-float (%a) per
// parameter — bit-exact round-trips without binary-endianness concerns.
#pragma once

#include <string>

#include "deepmd/model.hpp"

namespace fekf::deepmd {

/// Write the model to `path`. Throws Error on I/O failure.
void save_model(const DeepmdModel& model, const std::string& path);

/// Reconstruct a model from `path`. The returned model is ready for
/// prepare()/predict() (stats included).
DeepmdModel load_model(const std::string& path);

}  // namespace fekf::deepmd
