// DeePMD smooth radial weight s(r): 1/r below rcut_smth, then a quintic
// polynomial decay to exactly 0 at rcut with continuous derivatives (the
// "smooth version" of the neighbor list in §2.1).
#pragma once

#include "core/common.hpp"

namespace fekf::deepmd {

struct SmoothValue {
  f64 s = 0.0;   ///< s(r)
  f64 ds = 0.0;  ///< ds/dr
};

inline SmoothValue smooth_weight(f64 r, f64 rcut_smth, f64 rcut) {
  SmoothValue out;
  if (r >= rcut) return out;
  const f64 inv_r = 1.0 / r;
  if (r < rcut_smth) {
    out.s = inv_r;
    out.ds = -inv_r * inv_r;
    return out;
  }
  const f64 u = (r - rcut_smth) / (rcut - rcut_smth);
  const f64 u2 = u * u;
  const f64 u3 = u2 * u;
  // w(u) = u^3 (-6u^2 + 15u - 10) + 1: w(0)=1, w(1)=0, w'(0)=w'(1)=0.
  const f64 w = u3 * (-6.0 * u2 + 15.0 * u - 10.0) + 1.0;
  const f64 dw_du = -30.0 * u2 * (u2 - 2.0 * u + 1.0);
  const f64 dw_dr = dw_du / (rcut - rcut_smth);
  out.s = inv_r * w;
  out.ds = -inv_r * inv_r * w + inv_r * dw_dr;
  return out;
}

}  // namespace fekf::deepmd
