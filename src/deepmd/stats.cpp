#include "deepmd/stats.hpp"

#include <algorithm>
#include <cmath>

#include "deepmd/smooth.hpp"
#include "md/neighbor.hpp"

namespace fekf::deepmd {

EnvStats compute_env_stats(std::span<const md::Snapshot> snapshots,
                           i32 num_types, const ModelConfig& config,
                           i64 max_snapshots) {
  FEKF_CHECK(!snapshots.empty(), "no snapshots for stats");
  FEKF_CHECK(num_types >= 1, "num_types must be >= 1");
  const i64 use = std::min<i64>(max_snapshots,
                                static_cast<i64>(snapshots.size()));
  const std::size_t nt = static_cast<std::size_t>(num_types);

  // Pass 1: per-type max neighbor counts (defines padding for pass 2).
  std::vector<i64> max_nbrs(nt, 0);
  std::vector<md::NeighborList> lists(static_cast<std::size_t>(use));
  std::vector<i64> counts(nt);
  for (i64 s = 0; s < use; ++s) {
    const md::Snapshot& snap = snapshots[static_cast<std::size_t>(s)];
    lists[static_cast<std::size_t>(s)].build(snap.positions, snap.cell,
                                             config.rcut);
    for (i64 i = 0; i < snap.natoms(); ++i) {
      std::fill(counts.begin(), counts.end(), 0);
      for (const md::Neighbor& nb :
           lists[static_cast<std::size_t>(s)].of(i)) {
        const i32 t = snap.types[static_cast<std::size_t>(nb.index)];
        FEKF_CHECK(t >= 0 && t < num_types, "type out of range");
        ++counts[static_cast<std::size_t>(t)];
      }
      for (std::size_t t = 0; t < nt; ++t) {
        max_nbrs[t] = std::max(max_nbrs[t], counts[t]);
      }
    }
  }

  EnvStats stats;
  stats.suggested_sel.resize(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    // ~15% headroom so unseen configurations rarely overflow the budget.
    stats.suggested_sel[t] = max_nbrs[t] + std::max<i64>(2, max_nbrs[t] / 8);
  }
  const std::vector<i64>& sel =
      config.sel.empty() ? stats.suggested_sel : config.sel;
  FEKF_CHECK(static_cast<i32>(sel.size()) == num_types,
             "sel size must equal num_types");

  // Pass 2: davg/dstd per neighbor type over all slots (padding included:
  // a padded slot contributes s = 0 and zero angular entries).
  std::vector<f64> sum_r(nt, 0.0), sum_r2(nt, 0.0), sum_a2(nt, 0.0);
  std::vector<i64> slots(nt, 0);
  for (i64 s = 0; s < use; ++s) {
    const md::Snapshot& snap = snapshots[static_cast<std::size_t>(s)];
    const md::NeighborList& nl = lists[static_cast<std::size_t>(s)];
    for (i64 i = 0; i < snap.natoms(); ++i) {
      std::fill(counts.begin(), counts.end(), 0);
      for (const md::Neighbor& nb : nl.of(i)) {
        const std::size_t t = static_cast<std::size_t>(
            snap.types[static_cast<std::size_t>(nb.index)]);
        if (counts[t] >= sel[t]) continue;  // over budget: truncated
        ++counts[t];
        const SmoothValue sv =
            smooth_weight(nb.r, config.rcut_smth, config.rcut);
        sum_r[t] += sv.s;
        sum_r2[t] += sv.s * sv.s;
        const f64 inv_r = 1.0 / nb.r;
        const f64 ax = sv.s * nb.d.x * inv_r;
        const f64 ay = sv.s * nb.d.y * inv_r;
        const f64 az = sv.s * nb.d.z * inv_r;
        sum_a2[t] += (ax * ax + ay * ay + az * az) / 3.0;
      }
      for (std::size_t t = 0; t < nt; ++t) slots[t] += sel[t];
    }
  }

  stats.davg.resize(nt);
  stats.dstd_r.resize(nt);
  stats.dstd_a.resize(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    const f64 n = std::max<f64>(1.0, static_cast<f64>(slots[t]));
    const f64 mean = sum_r[t] / n;
    const f64 var_r = std::max(0.0, sum_r2[t] / n - mean * mean);
    const f64 var_a = std::max(0.0, sum_a2[t] / n);
    stats.davg[t] = mean;
    stats.dstd_r[t] = std::max(1e-2, std::sqrt(var_r));
    stats.dstd_a[t] = std::max(1e-2, std::sqrt(var_a));
  }
  return stats;
}

EnergyStats compute_energy_stats(std::span<const md::Snapshot> snapshots,
                                 i32 num_types) {
  FEKF_CHECK(!snapshots.empty(), "no snapshots for energy stats");
  f64 mean_e = 0.0;
  for (const md::Snapshot& s : snapshots) mean_e += s.energy;
  mean_e /= static_cast<f64>(snapshots.size());

  // All paper systems have fixed composition across snapshots, which makes
  // a per-type least squares degenerate; the uniform per-atom split is the
  // minimum-norm solution.
  const f64 natoms = static_cast<f64>(snapshots.front().natoms());
  EnergyStats stats;
  stats.bias_per_type.assign(static_cast<std::size_t>(num_types),
                             mean_e / natoms);
  f64 var = 0.0;
  for (const md::Snapshot& s : snapshots) {
    const f64 r = s.energy - mean_e;
    var += r * r;
  }
  var /= static_cast<f64>(snapshots.size());
  stats.residual_std = std::max(1e-3, std::sqrt(var));
  return stats;
}

}  // namespace fekf::deepmd
