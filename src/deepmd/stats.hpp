// Dataset statistics: environment-matrix normalization (davg/dstd per
// neighbor type, computed over all slots including padding, as DeePMD-kit
// does) and the per-type energy bias removed before fitting.
#pragma once

#include <span>
#include <vector>

#include "deepmd/config.hpp"
#include "md/system.hpp"

namespace fekf::deepmd {

struct EnvStats {
  /// Per neighbor-type statistics of the raw environment matrix.
  std::vector<f64> davg;    ///< mean of the radial column s(r)
  std::vector<f64> dstd_r;  ///< std of the radial column
  std::vector<f64> dstd_a;  ///< std of the angular columns s(r) * d/r

  /// Auto-sized neighbor budget: max per-type neighbor count seen, plus a
  /// small safety margin.
  std::vector<i64> suggested_sel;
};

struct EnergyStats {
  std::vector<f64> bias_per_type;  ///< eV subtracted per atom of each type
  f64 residual_std = 1.0;          ///< std of (E - bias) per structure (eV)
};

/// Scan (a sample of) the snapshots and compute normalization statistics.
/// `num_types` is the element count of the system.
EnvStats compute_env_stats(std::span<const md::Snapshot> snapshots,
                           i32 num_types, const ModelConfig& config,
                           i64 max_snapshots = 32);

EnergyStats compute_energy_stats(std::span<const md::Snapshot> snapshots,
                                 i32 num_types);

}  // namespace fekf::deepmd
