#include "dist/cluster.hpp"

#include <cmath>

#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/observer.hpp"

namespace fekf::dist {

using train::EnvPtr;
using train::Measurement;

void InterconnectModel::validate() const {
  FEKF_CHECK(std::isfinite(bandwidth_gbps) && bandwidth_gbps > 0.0,
             "InterconnectModel.bandwidth_gbps must be finite and > 0 "
             "(got " + std::to_string(bandwidth_gbps) + ")");
  FEKF_CHECK(std::isfinite(latency_s) && latency_s >= 0.0,
             "InterconnectModel.latency_s must be finite and >= 0 (got " +
                 std::to_string(latency_s) + ")");
}

void DistributedConfig::validate() const {
  FEKF_CHECK(ranks >= 1, "DistributedConfig.ranks must be >= 1 (got " +
                             std::to_string(ranks) + ")");
  options.validate();
  kalman.validate();
  interconnect.validate();
}

namespace {

/// Reduce a shard's measurement into flat gradient + ABE, measuring the
/// local compute time.
struct ShardResult {
  std::vector<f64> grad;
  f64 abe = 0.0;
  f64 seconds = 0.0;
};

ShardResult run_shard(deepmd::DeepmdModel& /*model*/, optim::FlatParams& flat,
                      std::span<const EnvPtr> shard,
                      const std::function<Measurement(std::span<const EnvPtr>)>&
                          measure) {
  ShardResult out;
  out.grad.resize(static_cast<std::size_t>(flat.size()));
  Stopwatch watch;
  Measurement m = measure(shard);
  auto params = flat.params();
  auto g = ag::grad(m.m, params);
  flat.gather_grads(g, out.grad);
  out.abe = m.abe;
  out.seconds = watch.seconds();
  return out;
}

}  // namespace

DistributedResult train_fekf_distributed(
    deepmd::DeepmdModel& model, std::span<const EnvPtr> train_envs,
    std::span<const EnvPtr> test_envs, const DistributedConfig& config) {
  config.validate();
  FEKF_CHECK(config.options.batch_size >= config.ranks,
             "global batch must cover all ranks");

  DistributedResult result;
  i64 live_ranks = config.ranks;
  optim::FlatParams flat(model.parameters());
  auto blocks =
      optim::split_blocks(model.parameter_layout(), config.kalman.blocksize);
  optim::KalmanOptimizer kalman(std::move(blocks), config.kalman);
  std::vector<f64> weights(static_cast<std::size_t>(flat.size()));
  std::vector<f64> grad(static_cast<std::size_t>(flat.size()));
  flat.gather(weights);

  const i64 grad_payload = flat.size() * static_cast<i64>(sizeof(f64));
  const i64 natoms = train_envs.front()->natoms;
  Rng group_rng(config.options.seed ^ 0xd1570ULL);
  data::BatchSampler sampler(static_cast<i64>(train_envs.size()),
                             config.options.batch_size, config.options.seed);

  // One reduced update: run every rank's shard for real, take the
  // simulated step time as max(shard) + allreduce + (one) KF update.
  auto reduced_update =
      [&](std::span<const EnvPtr> batch,
          const std::function<Measurement(std::span<const EnvPtr>)>& measure,
          std::optional<f64> step_norm_cap) {
        const i64 bs = static_cast<i64>(batch.size());
        const i64 ranks = live_ranks;
        std::fill(grad.begin(), grad.end(), 0.0);
        f64 abe = 0.0;
        f64 max_shard_seconds = 0.0;
        for (i64 r = 0; r < ranks; ++r) {
          const i64 lo = r * bs / ranks;
          const i64 hi = (r + 1) * bs / ranks;
          if (lo == hi) continue;
          obs::ScopedSpan shard_span("dist.shard", "dist");
          shard_span.arg("rank", static_cast<f64>(r));
          shard_span.arg("samples", static_cast<f64>(hi - lo));
          ShardResult shard = run_shard(
              model, flat, batch.subspan(static_cast<std::size_t>(lo),
                                         static_cast<std::size_t>(hi - lo)),
              measure);
          const f64 shard_weight =
              static_cast<f64>(hi - lo) / static_cast<f64>(bs);
          for (std::size_t i = 0; i < grad.size(); ++i) {
            grad[i] += shard.grad[i] * shard_weight;
          }
          abe += shard.abe * shard_weight;
          max_shard_seconds = std::max(max_shard_seconds, shard.seconds);
        }
        // Ring allreduce of the reduced gradient + the scalar error. P is
        // NOT communicated: every rank applies the identical update below.
        // The collective is simulated, so its span is a near-zero sliver on
        // the real timeline whose args carry the ledger's accounting: the
        // simulated allreduce seconds and the bytes moved.
        const f64 comm_s =
            config.interconnect.allreduce_seconds(grad_payload, ranks) +
            config.interconnect.allreduce_seconds(
                static_cast<i64>(sizeof(f64)), ranks);
        const i64 comm_bytes =
            InterconnectModel::allreduce_bytes(grad_payload, ranks) +
            InterconnectModel::allreduce_bytes(static_cast<i64>(sizeof(f64)),
                                               ranks);
        {
          obs::ScopedSpan comm_span("dist.allreduce", "dist");
          comm_span.arg("sim_seconds", comm_s);
          comm_span.arg("bytes", static_cast<f64>(comm_bytes));
        }
        result.comm.gradient_bytes +=
            InterconnectModel::allreduce_bytes(grad_payload, ranks);
        result.comm.error_bytes += InterconnectModel::allreduce_bytes(
            static_cast<i64>(sizeof(f64)), ranks);
        result.comm.comm_seconds += comm_s;
        ++result.comm.steps;
        if (obs::metrics_enabled()) {
          auto& metrics = obs::MetricsRegistry::instance();
          metrics.counter("dist.allreduce_bytes")
              .inc(comm_bytes);
          metrics.counter("dist.allreduces").inc();
          metrics.gauge("dist.sim_comm_seconds")
              .set(result.comm.comm_seconds);
        }

        Stopwatch kf_watch;
        f64 kf_seconds = 0.0;
        {
          obs::ScopedSpan kf_span("kf_update", "train");
          kalman.update(grad, std::sqrt(static_cast<f64>(bs)) * abe, weights,
                        step_norm_cap, abe);
          flat.scatter(weights);
          kf_seconds = kf_watch.seconds();
        }

        result.compute_seconds += max_shard_seconds + kf_seconds;
        result.simulated_seconds += max_shard_seconds + comm_s + kf_seconds;
      };

  Stopwatch total_watch;
  std::vector<i64> indices;
  std::vector<EnvPtr> batch;
  for (i64 epoch = 1; epoch <= config.options.max_epochs; ++epoch) {
    while (sampler.next(indices)) {
      batch.clear();
      for (const i64 idx : indices) {
        batch.push_back(train_envs[static_cast<std::size_t>(idx)]);
      }
      const i64 step_index = result.train.steps + 1;
      if (FaultInjector::instance().fire(FaultKind::kRankFail, step_index)) {
        // The highest live rank dies. Its batch shard is redistributed
        // across the survivors by the lo/hi split above, and the survivors
        // re-sync the authoritative weights — charged to the simulated
        // clock as one weight-payload allreduce among the survivors.
        FEKF_CHECK(live_ranks > 1,
                   "injected rank failure left no surviving ranks");
        --live_ranks;
        const f64 reshard_s =
            config.interconnect.allreduce_seconds(grad_payload, live_ranks);
        result.comm.reshard_events += 1;
        result.comm.reshard_bytes +=
            InterconnectModel::allreduce_bytes(grad_payload, live_ranks);
        result.comm.reshard_seconds += reshard_s;
        result.simulated_seconds += reshard_s;
        result.train.faults.record(
            step_index, "rank_fail", "reshard",
            "rank " + std::to_string(live_ranks) + " failed; " +
                std::to_string(live_ranks) + " survivors");
        obs::TraceRecorder::instance().instant(
            "fault.rank_fail", "fault", "step",
            static_cast<f64>(step_index), "survivors",
            static_cast<f64>(live_ranks));
        for (train::TrainObserver* observer : config.options.observers) {
          observer->on_fault(result.train.faults.events.back());
        }
      }
      reduced_update(
          batch,
          [&](std::span<const EnvPtr> shard) {
            return train::energy_measurement(model, shard);
          },
          /*step_norm_cap=*/0.0);
      auto groups = train::make_force_groups(
          natoms, config.options.force_updates_per_step, group_rng);
      for (const auto& group : groups) {
        reduced_update(
            batch,
            [&](std::span<const EnvPtr> shard) {
              return train::force_measurement(model, shard, group,
                                              config.options.force_prefactor);
            },
            /*step_norm_cap=*/std::nullopt);
      }
      ++result.train.steps;
    }
    train::EpochRecord record;
    record.epoch = epoch;
    record.cumulative_seconds = result.simulated_seconds;
    record.train = train::evaluate(model, train_envs,
                                   config.options.eval_max_samples,
                                   config.options.eval_forces);
    if (!test_envs.empty()) {
      record.test = train::evaluate(model, test_envs,
                                    config.options.eval_max_samples,
                                    config.options.eval_forces);
    }
    result.train.history.push_back(record);
    for (train::TrainObserver* observer : config.options.observers) {
      observer->on_eval(record);
    }
    if (!result.train.converged && config.options.target_total_rmse > 0.0 &&
        record.train.total() <= config.options.target_total_rmse) {
      result.train.converged = true;
      result.train.epochs_to_converge = epoch;
      result.train.seconds_to_converge = total_watch.seconds();
      result.simulated_seconds_to_converge = result.simulated_seconds;
      break;
    }
  }
  result.train.total_seconds = total_watch.seconds();
  result.surviving_ranks = live_ranks;
  if (!result.train.history.empty()) {
    result.train.final_train = result.train.history.back().train;
    result.train.final_test = result.train.history.back().test;
  }
  return result;
}

}  // namespace fekf::dist
