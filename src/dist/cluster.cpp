#include "dist/cluster.hpp"

#include <cmath>

#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/observer.hpp"

namespace fekf::dist {

using train::EnvPtr;
using train::Measurement;

namespace {

/// Slowdown applied when a straggler arm carries no factor= qualifier.
constexpr f64 kDefaultStragglerFactor = 4.0;

}  // namespace

void InterconnectModel::validate() const {
  FEKF_CHECK(std::isfinite(bandwidth_gbps) && bandwidth_gbps > 0.0,
             "InterconnectModel.bandwidth_gbps must be finite and > 0 "
             "(got " + std::to_string(bandwidth_gbps) + ")");
  FEKF_CHECK(std::isfinite(latency_s) && latency_s >= 0.0,
             "InterconnectModel.latency_s must be finite and >= 0 (got " +
                 std::to_string(latency_s) + ")");
  FEKF_CHECK(std::isfinite(loss_prob) && loss_prob >= 0.0 && loss_prob < 1.0,
             "InterconnectModel.loss_prob must be in [0, 1) (got " +
                 std::to_string(loss_prob) + ")");
  FEKF_CHECK(std::isfinite(corrupt_prob) && corrupt_prob >= 0.0 &&
                 corrupt_prob < 1.0,
             "InterconnectModel.corrupt_prob must be in [0, 1) (got " +
                 std::to_string(corrupt_prob) + ")");
  FEKF_CHECK(max_retries >= 1,
             "InterconnectModel.max_retries must be >= 1 (got " +
                 std::to_string(max_retries) + ")");
  FEKF_CHECK(std::isfinite(retry_backoff_s) && retry_backoff_s >= 0.0,
             "InterconnectModel.retry_backoff_s must be finite and >= 0 "
             "(got " + std::to_string(retry_backoff_s) + ")");
}

void FailureDetectorConfig::validate() const {
  FEKF_CHECK(miss_limit >= 1,
             "FailureDetectorConfig.miss_limit must be >= 1 (got " +
                 std::to_string(miss_limit) + ")");
  FEKF_CHECK(std::isfinite(heartbeat_period_s) && heartbeat_period_s >= 0.0,
             "FailureDetectorConfig.heartbeat_period_s must be finite and "
             ">= 0 (got " + std::to_string(heartbeat_period_s) + ")");
  FEKF_CHECK(heartbeat_bytes >= 0,
             "FailureDetectorConfig.heartbeat_bytes must be >= 0 (got " +
                 std::to_string(heartbeat_bytes) + ")");
}

void DistributedConfig::validate() const {
  FEKF_CHECK(ranks >= 1, "DistributedConfig.ranks must be >= 1 (got " +
                             std::to_string(ranks) + ")");
  options.validate();
  kalman.validate();
  interconnect.validate();
  detector.validate();
  FEKF_CHECK(std::isfinite(straggler_wait_factor) &&
                 straggler_wait_factor >= 1.0,
             "DistributedConfig.straggler_wait_factor must be >= 1 (got " +
                 std::to_string(straggler_wait_factor) + ")");
}

VirtualCluster::VirtualCluster(const DistributedConfig& config,
                               i64 grad_payload_bytes, i64 covariance_bytes)
    : config_(config),
      grad_payload_(grad_payload_bytes),
      covariance_bytes_(covariance_bytes),
      link_rng_(config.options.seed ^ 0x6c1a7eULL) {
  config.validate();
  FEKF_CHECK(grad_payload_bytes >= 0 && covariance_bytes >= 0,
             "VirtualCluster payload sizes must be >= 0");
  members_.reserve(static_cast<std::size_t>(config.ranks));
  for (i64 r = 0; r < config.ranks; ++r) {
    Rank rank;
    rank.id = r;
    members_.push_back(rank);
  }
  next_id_ = config.ranks;
}

i64 VirtualCluster::live_ranks() const {
  i64 live = 0;
  for (const Rank& r : members_) {
    if (r.alive) ++live;
  }
  return live;
}

train::MembershipCheckpoint VirtualCluster::membership() const {
  train::MembershipCheckpoint m;
  m.present = true;
  m.next_id = next_id_;
  m.ranks = members_;
  return m;
}

void VirtualCluster::restore_membership(
    const train::MembershipCheckpoint& m) {
  FEKF_CHECK(m.present, "membership checkpoint carries no member table");
  i64 live = 0;
  i64 max_id = -1;
  for (const Rank& r : m.ranks) {
    FEKF_CHECK(r.id >= 0, "membership checkpoint has a negative rank id");
    FEKF_CHECK(r.slowdown > 0.0,
               "membership checkpoint rank slowdown must be > 0");
    if (r.alive) ++live;
    max_id = std::max(max_id, r.id);
  }
  FEKF_CHECK(live >= 1, "membership checkpoint has no live ranks");
  FEKF_CHECK(m.next_id > max_id,
             "membership checkpoint next_id collides with an existing rank");
  members_ = m.ranks;
  next_id_ = m.next_id;
}

VirtualCluster::Rank* VirtualCluster::find_live(i64 id) {
  for (Rank& r : members_) {
    if (r.alive && r.id == id) return &r;
  }
  return nullptr;
}

VirtualCluster::Rank* VirtualCluster::pick_victim(i64 preferred_id) {
  if (preferred_id >= 0) {
    if (Rank* r = find_live(preferred_id)) return r;
  }
  Rank* victim = nullptr;
  for (Rank& r : members_) {
    if (r.alive && (victim == nullptr || r.id > victim->id)) victim = &r;
  }
  return victim;
}

void VirtualCluster::record(FaultLog& log, i64 step, const char* kind,
                            const char* trace_name, const char* action,
                            std::string detail) {
  log.record(step, kind, action, std::move(detail));
  // trace_name must be a string literal: TraceEvent keeps the pointer.
  obs::TraceRecorder::instance().instant(
      trace_name, "fault", "step", static_cast<f64>(step), "live_ranks",
      static_cast<f64>(live_ranks()));
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::instance()
        .counter("dist.fault." + std::string(kind))
        .inc();
  }
  for (train::TrainObserver* observer : config_.options.observers) {
    observer->on_fault(log.events.back());
  }
}

void VirtualCluster::evict(Rank& rank, i64 step, FaultLog& log,
                           const char* why) {
  FEKF_CHECK(live_ranks() > 1,
             "rank eviction left no surviving ranks (rank " +
                 std::to_string(rank.id) + ", " + why + ")");
  rank.alive = false;
  const i64 survivors = live_ranks();
  // Survivors take over the dead rank's shard and re-sync the
  // authoritative weights: one weight-payload allreduce among them.
  const f64 reshard_s =
      config_.interconnect.allreduce_seconds(grad_payload_, survivors);
  ++ledger_.reshard_events;
  ++ledger_.evictions;
  ledger_.reshard_bytes +=
      InterconnectModel::allreduce_bytes(grad_payload_, survivors);
  ledger_.reshard_seconds += reshard_s;
  record(log, step, "rank_evict", "fault.rank_evict", "reshard",
         "rank " + std::to_string(rank.id) + " evicted (" + why + "); " +
             std::to_string(survivors) + " survivors");
}

f64 VirtualCluster::poll_faults(i64 step, FaultLog& log) {
  const f64 sim_before =
      ledger_.reshard_seconds + ledger_.join_seconds +
      ledger_.heartbeat_seconds;
  auto& injector = FaultInjector::instance();

  // 1. Injected rank failure: the victim stops heartbeating. It is NOT
  // removed here — the failure detector below decides, deterministically,
  // when the silence becomes an eviction.
  if (auto fired = injector.fire_detail(faults::kRankFail, step)) {
    FEKF_CHECK(live_ranks() > 1,
               "injected rank failure left no surviving ranks");
    Rank* victim = pick_victim(fired->rank);
    victim->silent = true;
    record(log, step, "rank_fail", "fault.rank_fail", "silenced",
           "rank " + std::to_string(victim->id) + " stopped heartbeating");
  }

  // 2. Injected straggler: the victim's compute slows down by factor=.
  if (auto fired = injector.fire_detail(faults::kStraggler, step)) {
    Rank* victim = pick_victim(fired->rank);
    FEKF_CHECK(victim != nullptr, "straggler injection with no live ranks");
    victim->slowdown =
        fired->factor > 0.0 ? fired->factor : kDefaultStragglerFactor;
    ++ledger_.straggler_events;
    record(log, step, "straggler", "fault.straggler", "injected",
           "rank " + std::to_string(victim->id) + " slowed " +
               std::to_string(victim->slowdown) + "x");
  }

  // 3. Injected join: a fresh rank is admitted and catches up by receiving
  // the authoritative weights plus its covariance shard, point-to-point.
  if (injector.fire_detail(faults::kRankJoin, step)) {
    Rank joiner;
    joiner.id = next_id_++;
    members_.push_back(joiner);
    const i64 catchup_bytes = grad_payload_ + covariance_bytes_;
    const f64 catchup_s =
        config_.interconnect.message_seconds(catchup_bytes);
    ++ledger_.join_events;
    ledger_.join_bytes += catchup_bytes;
    ledger_.join_seconds += catchup_s;
    record(log, step, "rank_join", "fault.rank_join", "catchup",
           "rank " + std::to_string(members_.back().id) + " joined; caught "
           "up " + std::to_string(catchup_bytes) + " bytes");
  }

  // 4. Straggler policy: under kDropReshard, ranks slower than the bounded
  // wait admits are evicted rather than waited for.
  if (config_.straggler_policy == StragglerPolicy::kDropReshard) {
    for (Rank& r : members_) {
      if (r.alive && r.slowdown > config_.straggler_wait_factor) {
        evict(r, step, log, "straggler beyond bounded wait");
      }
    }
  }

  // 5. Heartbeat failure detector: one evaluation per step boundary; a
  // silent rank accrues one miss per evaluation and is evicted at
  // miss_limit. Eviction branches ONLY on the miss count — the simulated
  // detection latency is reported, never consulted.
  for (Rank& r : members_) {
    if (!r.alive || !r.silent) continue;
    ++r.missed;
    if (r.missed >= config_.detector.miss_limit) {
      ledger_.detection_seconds += static_cast<f64>(r.missed) *
                                   config_.detector.heartbeat_period_s;
      evict(r, step, log, "heartbeat timeout");
    }
  }

  // 6. The step's heartbeat traffic (live ranks report in, overlapped — a
  // single message latency on the simulated clock).
  const i64 live = live_ranks();
  if (live > 1) {
    ledger_.heartbeats += live;
    ledger_.heartbeat_bytes += live * config_.detector.heartbeat_bytes;
    const f64 hb_s =
        config_.interconnect.message_seconds(config_.detector.heartbeat_bytes);
    ledger_.heartbeat_seconds += hb_s;
  }

  const f64 sim_after =
      ledger_.reshard_seconds + ledger_.join_seconds +
      ledger_.heartbeat_seconds;
  return sim_after - sim_before;
}

f64 VirtualCluster::allreduce(i64 payload_bytes, i64 step) {
  const i64 ranks = live_ranks();
  if (ranks <= 1) return 0.0;
  const InterconnectModel& net = config_.interconnect;
  auto& injector = FaultInjector::instance();
  const bool lossy = net.loss_prob > 0.0 || net.corrupt_prob > 0.0 ||
                     injector.armed(faults::kMsgDrop) ||
                     injector.armed(faults::kMsgCorrupt);
  if (!lossy) {
    const f64 s = net.allreduce_seconds(payload_bytes, ranks);
    ledger_.comm_seconds += s;
    return s;
  }

  // Per-message simulation: 2(r-1) hop rounds, r concurrent messages per
  // round; a round lasts as long as its slowest message, including retry
  // backoff. With every draw passing this reduces to the closed-form
  // alpha-beta cost, so arming a zero-probability fault costs nothing.
  const f64 chunk =
      static_cast<f64>(payload_bytes) / static_cast<f64>(ranks);
  const f64 msg_s = net.latency_s + chunk / (net.bandwidth_gbps * 1e9);
  const i64 rounds = 2 * (ranks - 1);
  f64 total = 0.0;
  for (i64 round = 0; round < rounds; ++round) {
    f64 round_s = msg_s;
    for (i64 m = 0; m < ranks; ++m) {
      f64 t = msg_s;
      i64 failures = 0;
      while (true) {
        const bool dropped =
            (net.loss_prob > 0.0 && link_rng_.uniform() < net.loss_prob) ||
            injector.fire(faults::kMsgDrop, step);
        bool corrupted = false;
        if (!dropped) {
          corrupted = (net.corrupt_prob > 0.0 &&
                       link_rng_.uniform() < net.corrupt_prob) ||
                      injector.fire(faults::kMsgCorrupt, step);
        }
        if (!dropped && !corrupted) break;
        if (dropped) {
          ++ledger_.msg_drops;
        } else {
          ++ledger_.msg_corrupts;
        }
        ++failures;
        if (failures > net.max_retries) {
          // Retry budget exhausted: force the message through the slow
          // side channel and flag the sender; the failure detector decides
          // its fate at the next step boundary.
          i64 slot = 0;
          for (Rank& r : members_) {
            if (!r.alive) continue;
            if (slot == m) {
              r.silent = true;
              break;
            }
            ++slot;
          }
          break;
        }
        const f64 backoff =
            net.retry_backoff_s * static_cast<f64>(1LL << (failures - 1));
        t += backoff + msg_s;
        ++ledger_.retries;
        ledger_.retry_seconds += backoff + msg_s;
      }
      round_s = std::max(round_s, t);
    }
    total += round_s;
  }
  ledger_.comm_seconds += total;
  return total;
}

f64 VirtualCluster::compute_seconds(
    const std::vector<f64>& measured_seconds) {
  f64 nominal = 0.0;
  f64 slowed = 0.0;
  std::size_t slot = 0;
  for (const Rank& r : members_) {
    if (!r.alive) continue;
    const f64 t = slot < measured_seconds.size() ? measured_seconds[slot]
                                                 : 0.0;
    nominal = std::max(nominal, t);
    slowed = std::max(slowed, t * r.slowdown);
    ++slot;
  }
  if (slowed <= nominal) return nominal;
  const f64 used =
      std::min(slowed, config_.straggler_wait_factor * nominal);
  ledger_.straggler_wait_seconds += used - nominal;
  return used;
}

namespace {

/// Reduce a shard's measurement into flat gradient + ABE, measuring the
/// local compute time.
struct ShardResult {
  std::vector<f64> grad;
  f64 abe = 0.0;
  f64 seconds = 0.0;
};

ShardResult run_shard(deepmd::DeepmdModel& /*model*/, optim::FlatParams& flat,
                      std::span<const EnvPtr> shard,
                      const std::function<Measurement(std::span<const EnvPtr>)>&
                          measure) {
  ShardResult out;
  out.grad.resize(static_cast<std::size_t>(flat.size()));
  Stopwatch watch;
  Measurement m = measure(shard);
  auto params = flat.params();
  auto g = ag::grad(m.m, params);
  flat.gather_grads(g, out.grad);
  out.abe = m.abe;
  out.seconds = watch.seconds();
  return out;
}

}  // namespace

DistributedResult train_fekf_distributed(
    deepmd::DeepmdModel& model, std::span<const EnvPtr> train_envs,
    std::span<const EnvPtr> test_envs, const DistributedConfig& config) {
  config.validate();
  FEKF_CHECK(config.options.batch_size >= config.ranks,
             "global batch must cover all ranks");
  FEKF_CHECK(!train_envs.empty(), "empty training set");

  DistributedResult result;
  optim::FlatParams flat(model.parameters());
  auto blocks =
      optim::split_blocks(model.parameter_layout(), config.kalman.blocksize);
  optim::KalmanOptimizer kalman(std::move(blocks), config.kalman);
  std::vector<f64> weights(static_cast<std::size_t>(flat.size()));
  std::vector<f64> grad(static_cast<std::size_t>(flat.size()));
  flat.gather(weights);

  const i64 grad_payload = flat.size() * static_cast<i64>(sizeof(f64));
  VirtualCluster cluster(config, grad_payload, kalman.p_bytes());
  const i64 natoms = train_envs.front()->natoms;
  Rng group_rng(config.options.seed ^ 0xd1570ULL);
  data::BatchSampler sampler(static_cast<i64>(train_envs.size()),
                             config.options.batch_size, config.options.seed);

  i64 start_epoch = 1;
  if (!config.options.resume_from.empty()) {
    train::LoadedCheckpoint loaded =
        train::load_checkpoint(config.options.resume_from);
    train::TrainingCheckpoint& ckpt = loaded.state;
    FEKF_CHECK(ckpt.layout == model.parameter_layout(),
               "checkpoint '" + config.options.resume_from +
                   "' does not match the model architecture "
                   "(parameter layout differs)");
    FEKF_CHECK(ckpt.optimizer.kind ==
                   train::OptimizerCheckpoint::Kind::kKalman,
               "checkpoint optimizer state is not a shared-P Kalman filter");
    FEKF_CHECK(ckpt.has_group_rng,
               "checkpoint is missing the force-group RNG stream");
    weights = std::move(ckpt.weights);
    flat.scatter(weights);
    kalman.set_state(ckpt.optimizer.kalman);
    sampler.set_state(ckpt.sampler);
    group_rng.set_state(ckpt.group_rng);
    result.train.steps = ckpt.steps;
    result.train.history = std::move(ckpt.history);
    result.train.faults = std::move(ckpt.faults);
    start_epoch = ckpt.epoch;
    if (ckpt.membership.present) cluster.restore_membership(ckpt.membership);
  }

  i64 current_step = 0;
  std::vector<f64> shard_seconds;

  // One reduced update: run every live rank's shard for real, take the
  // simulated step time as max(shard, straggler-bounded) + allreduce +
  // (one) KF update.
  auto reduced_update =
      [&](std::span<const EnvPtr> batch,
          const std::function<Measurement(std::span<const EnvPtr>)>& measure,
          std::optional<f64> step_norm_cap) {
        const i64 bs = static_cast<i64>(batch.size());
        const i64 ranks = cluster.live_ranks();
        std::fill(grad.begin(), grad.end(), 0.0);
        shard_seconds.assign(static_cast<std::size_t>(ranks), 0.0);
        f64 abe = 0.0;
        for (i64 r = 0; r < ranks; ++r) {
          const i64 lo = r * bs / ranks;
          const i64 hi = (r + 1) * bs / ranks;
          if (lo == hi) continue;
          obs::ScopedSpan shard_span("dist.shard", "dist");
          shard_span.arg("rank", static_cast<f64>(r));
          shard_span.arg("samples", static_cast<f64>(hi - lo));
          ShardResult shard = run_shard(
              model, flat, batch.subspan(static_cast<std::size_t>(lo),
                                         static_cast<std::size_t>(hi - lo)),
              measure);
          const f64 shard_weight =
              static_cast<f64>(hi - lo) / static_cast<f64>(bs);
          for (std::size_t i = 0; i < grad.size(); ++i) {
            grad[i] += shard.grad[i] * shard_weight;
          }
          abe += shard.abe * shard_weight;
          shard_seconds[static_cast<std::size_t>(r)] = shard.seconds;
        }
        const f64 compute_s = cluster.compute_seconds(shard_seconds);
        // Ring allreduce of the reduced gradient + the scalar error. P is
        // NOT communicated: every rank applies the identical update below.
        // The collective is simulated, so its span is a near-zero sliver on
        // the real timeline whose args carry the ledger's accounting: the
        // simulated allreduce seconds and the bytes moved.
        const f64 comm_s =
            cluster.allreduce(grad_payload, current_step) +
            cluster.allreduce(static_cast<i64>(sizeof(f64)), current_step);
        const i64 comm_bytes =
            InterconnectModel::allreduce_bytes(grad_payload, ranks) +
            InterconnectModel::allreduce_bytes(static_cast<i64>(sizeof(f64)),
                                               ranks);
        {
          obs::ScopedSpan comm_span("dist.allreduce", "dist");
          comm_span.arg("sim_seconds", comm_s);
          comm_span.arg("bytes", static_cast<f64>(comm_bytes));
        }
        CommLedger& ledger = cluster.ledger();
        ledger.gradient_bytes +=
            InterconnectModel::allreduce_bytes(grad_payload, ranks);
        ledger.error_bytes += InterconnectModel::allreduce_bytes(
            static_cast<i64>(sizeof(f64)), ranks);
        ++ledger.steps;
        if (obs::metrics_enabled()) {
          auto& metrics = obs::MetricsRegistry::instance();
          metrics.counter("dist.allreduce_bytes")
              .inc(comm_bytes);
          metrics.counter("dist.allreduces").inc();
          metrics.gauge("dist.sim_comm_seconds")
              .set(ledger.comm_seconds);
          // CommLedger mirror, so the telemetry sampler's time-series
          // carries the lossy-link / membership accounting live instead
          // of only in the end-of-run TrainResult.
          metrics.gauge("dist.msg_drops")
              .set(static_cast<f64>(ledger.msg_drops));
          metrics.gauge("dist.msg_corrupts")
              .set(static_cast<f64>(ledger.msg_corrupts));
          metrics.gauge("dist.retries")
              .set(static_cast<f64>(ledger.retries));
          metrics.gauge("dist.retry_seconds").set(ledger.retry_seconds);
          metrics.gauge("dist.reshard_seconds").set(ledger.reshard_seconds);
          metrics.gauge("dist.join_seconds").set(ledger.join_seconds);
          metrics.gauge("dist.detection_seconds")
              .set(ledger.detection_seconds);
          metrics.gauge("dist.straggler_wait_seconds")
              .set(ledger.straggler_wait_seconds);
        }

        Stopwatch kf_watch;
        f64 kf_seconds = 0.0;
        {
          obs::ScopedSpan kf_span("kf_update", "train");
          kalman.update(grad, std::sqrt(static_cast<f64>(bs)) * abe, weights,
                        step_norm_cap, abe);
          flat.scatter(weights);
          kf_seconds = kf_watch.seconds();
        }

        result.compute_seconds += compute_s + kf_seconds;
        result.simulated_seconds += compute_s + comm_s + kf_seconds;
        if (obs::metrics_enabled()) {
          // Per-step distribution (not just the running totals above):
          // bench_chaos reports its p50/p90/p99 per sweep cell, where the
          // straggler and lossy-link arms show up as a fattened tail.
          obs::MetricsRegistry::instance()
              .histogram("dist.step_sim_seconds")
              .record(compute_s + comm_s + kf_seconds);
        }
      };

  Stopwatch total_watch;
  std::vector<i64> indices;
  std::vector<EnvPtr> batch;
  for (i64 epoch = start_epoch; epoch <= config.options.max_epochs; ++epoch) {
    while (sampler.next(indices)) {
      batch.clear();
      for (const i64 idx : indices) {
        batch.push_back(train_envs[static_cast<std::size_t>(idx)]);
      }
      current_step = result.train.steps + 1;
      result.simulated_seconds +=
          cluster.poll_faults(current_step, result.train.faults);
      reduced_update(
          batch,
          [&](std::span<const EnvPtr> shard) {
            return train::energy_measurement(model, shard);
          },
          /*step_norm_cap=*/0.0);
      auto groups = train::make_force_groups(
          natoms, config.options.force_updates_per_step, group_rng);
      for (const auto& group : groups) {
        reduced_update(
            batch,
            [&](std::span<const EnvPtr> shard) {
              return train::force_measurement(model, shard, group,
                                              config.options.force_prefactor);
            },
            /*step_norm_cap=*/std::nullopt);
      }
      ++result.train.steps;
      {
        train::StepEvent step_event;
        step_event.step = result.train.steps;
        step_event.epoch = epoch;
        for (train::TrainObserver* observer : config.options.observers) {
          observer->on_step(step_event);
        }
      }
      if (config.options.checkpoint_every > 0 &&
          result.train.steps % config.options.checkpoint_every == 0) {
        Stopwatch ckpt_watch;
        train::TrainingCheckpoint ckpt;
        ckpt.epoch = epoch;
        ckpt.steps = result.train.steps;
        ckpt.layout = model.parameter_layout();
        ckpt.weights = weights;
        ckpt.optimizer.kind = train::OptimizerCheckpoint::Kind::kKalman;
        ckpt.optimizer.kalman = kalman.state();
        ckpt.sampler = sampler.state();
        ckpt.has_group_rng = true;
        ckpt.group_rng = group_rng.state();
        ckpt.history = result.train.history;
        ckpt.faults = result.train.faults;
        ckpt.membership = cluster.membership();
        train::save_checkpoint(ckpt, model, config.options.checkpoint_path);
        result.train.checkpoint_seconds += ckpt_watch.seconds();
        {
          train::CheckpointEvent ckpt_event;
          ckpt_event.step = result.train.steps;
          ckpt_event.path = config.options.checkpoint_path;
          ckpt_event.seconds = ckpt_watch.seconds();
          for (train::TrainObserver* observer : config.options.observers) {
            observer->on_checkpoint(ckpt_event);
          }
        }
        if (obs::metrics_enabled()) {
          obs::MetricsRegistry::instance()
              .counter("dist.checkpoints")
              .inc();
        }
      }
    }
    train::EpochRecord record;
    record.epoch = epoch;
    record.cumulative_seconds = result.simulated_seconds;
    record.train = train::evaluate(model, train_envs,
                                   config.options.eval_max_samples,
                                   config.options.eval_forces);
    if (!test_envs.empty()) {
      record.test = train::evaluate(model, test_envs,
                                    config.options.eval_max_samples,
                                    config.options.eval_forces);
    }
    result.train.history.push_back(record);
    for (train::TrainObserver* observer : config.options.observers) {
      observer->on_eval(record);
    }
    if (!result.train.converged && config.options.target_total_rmse > 0.0 &&
        record.train.total() <= config.options.target_total_rmse) {
      result.train.converged = true;
      result.train.epochs_to_converge = epoch;
      result.train.seconds_to_converge = total_watch.seconds();
      result.simulated_seconds_to_converge = result.simulated_seconds;
      break;
    }
  }
  result.train.total_seconds = total_watch.seconds();
  result.surviving_ranks = cluster.live_ranks();
  result.membership = cluster.membership();
  result.comm = cluster.ledger();
  if (!result.train.history.empty()) {
    result.train.final_train = result.train.history.back().train;
    result.train.final_test = result.train.history.back().test;
  }
  return result;
}

}  // namespace fekf::dist
