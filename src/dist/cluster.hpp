// Virtual cluster for distributed FEKF training (paper §3.3, Table 5).
//
// The paper trains on up to 16 A100s over 25 GB/s RoCE with Horovod ring
// allreduce. This repo has one CPU core, so the cluster is virtual: every
// rank's shard is executed for real (sequentially) and the SIMULATED
// wall-clock of a step is
//
//     max_r(shard compute) + ring_allreduce(gradient bytes) + KF update,
//
// with the interconnect described by an alpha-beta (latency-bandwidth)
// model defaulting to the paper's RoCE figures. Compute-time ratios between
// optimizers are measured, not modeled — only the network is modeled.
//
// The communication ledger reproduces the §3.3 analysis: FEKF allreduces
// only the reduced gradient (+ one scalar error), never the covariance P,
// because the early reduction keeps every rank's P bit-identical. Naive-EKF
// would have to ship its diverged per-sample P replicas; that volume is
// reported analytically for the comparison bench.
#pragma once

#include "train/trainer.hpp"

namespace fekf::dist {

struct InterconnectModel {
  f64 latency_s = 5e-6;        ///< per-hop message latency
  f64 bandwidth_gbps = 25.0;   ///< GB/s per link (paper: RoCE 25 GB/s)

  /// Reject non-positive bandwidth / negative latency with a clear Error.
  void validate() const;

  /// Ring allreduce: 2 (r-1) hops, each moving bytes/r.
  f64 allreduce_seconds(i64 bytes, i64 ranks) const {
    if (ranks <= 1) return 0.0;
    const f64 hops = 2.0 * static_cast<f64>(ranks - 1);
    const f64 chunk = static_cast<f64>(bytes) / static_cast<f64>(ranks);
    return hops * (latency_s + chunk / (bandwidth_gbps * 1e9));
  }

  /// Allreduce traffic in the paper's accounting: (r - 1) * payload
  /// (§3.3: "the communication of gradients is (#GPUs-1) x Mem(g)").
  static i64 allreduce_bytes(i64 payload, i64 ranks) {
    if (ranks <= 1) return 0;
    return (ranks - 1) * payload;
  }
};

struct CommLedger {
  i64 gradient_bytes = 0;  ///< cumulative allreduced gradient payload
  i64 error_bytes = 0;     ///< cumulative allreduced ABE scalars
  i64 steps = 0;
  f64 comm_seconds = 0.0;  ///< simulated time spent in allreduce
  // Rank-failure recovery (FEKF_FAULT_SPEC=rank_fail@step=N): when a rank
  // dies its shard is redistributed across the survivors, who re-sync the
  // authoritative weight vector — charged to the simulated clock as one
  // weight-payload allreduce among the survivors.
  i64 reshard_events = 0;
  i64 reshard_bytes = 0;
  f64 reshard_seconds = 0.0;
};

struct DistributedConfig {
  i64 ranks = 1;
  train::TrainOptions options;       ///< batch_size = GLOBAL batch
  optim::KalmanConfig kalman;
  InterconnectModel interconnect;

  /// Validates ranks, options, kalman, and interconnect together.
  void validate() const;
};

struct DistributedResult {
  train::TrainResult train;     ///< history with MEASURED local seconds
  f64 simulated_seconds = 0.0;  ///< virtual-cluster wall clock, total
  f64 simulated_seconds_to_converge = -1.0;
  f64 compute_seconds = 0.0;    ///< simulated max-rank compute component
  CommLedger comm;
  i64 surviving_ranks = 0;      ///< ranks still alive when the run ended
};

/// Data-parallel FEKF on the virtual cluster. Each step shards the global
/// batch across ranks, reduces gradients/errors, and applies one shared
/// Kalman update (replicated deterministically on every rank, so it is
/// timed once).
DistributedResult train_fekf_distributed(deepmd::DeepmdModel& model,
                                         std::span<const train::EnvPtr> train_envs,
                                         std::span<const train::EnvPtr> test_envs,
                                         const DistributedConfig& config);

}  // namespace fekf::dist
