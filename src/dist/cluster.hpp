// Elastic virtual cluster for distributed FEKF training (paper §3.3,
// Table 5; ROADMAP item 4's production half).
//
// The paper trains on up to 16 A100s over 25 GB/s RoCE with Horovod ring
// allreduce. This repo has one CPU core, so the cluster is virtual: every
// rank's shard is executed for real (sequentially) and the SIMULATED
// wall-clock of a step is
//
//     max_r(shard compute) + ring_allreduce(gradient bytes) + KF update,
//
// with the interconnect described by an alpha-beta (latency-bandwidth)
// model defaulting to the paper's RoCE figures. Compute-time ratios between
// optimizers are measured, not modeled — only the network is modeled.
//
// The communication ledger reproduces the §3.3 analysis: FEKF allreduces
// only the reduced gradient (+ one scalar error), never the covariance P,
// because the early reduction keeps every rank's P bit-identical. Naive-EKF
// would have to ship its diverged per-sample P replicas; that volume is
// reported analytically for the comparison bench.
//
// Elastic membership (VirtualCluster). The ring is no longer a fixed,
// healthy set: ranks can be silenced (FEKF_FAULT_SPEC=rank_fail), join
// (rank_join, receiving a weight + covariance-shard catch-up transfer),
// straggle (straggler, a per-rank compute slowdown bounded by a wait
// policy), and drop or corrupt ring messages (msg_drop / msg_corrupt,
// retried with exponential backoff). A heartbeat failure detector evicts
// silent ranks after `miss_limit` missed heartbeats; heartbeats are
// evaluated once per training step at the step boundary, so eviction
// decisions depend only on deterministic step counts — never on measured
// wall-clock — and a spec replays identically run to run.
//
// Determinism contract (tests/test_dist_elastic.cpp):
//   - Link faults (msg_drop / msg_corrupt) and a straggler under the
//     kWait policy cost only simulated time. Final weights are
//     BIT-IDENTICAL to the fault-free run.
//   - Membership changes (rank_fail eviction, rank_join, kDropReshard
//     straggler eviction) change the live rank count, hence the shard
//     split and the floating-point reduction — final weights differ from
//     the fault-free run but are bit-identical across two invocations of
//     the same spec.
#pragma once

#include "train/checkpoint.hpp"
#include "train/trainer.hpp"

namespace fekf::dist {

struct InterconnectModel {
  f64 latency_s = 5e-6;        ///< per-hop message latency
  f64 bandwidth_gbps = 25.0;   ///< GB/s per link (paper: RoCE 25 GB/s)

  // Degraded-link model: every simulated ring message is independently
  // dropped / delivered-corrupted with these probabilities (drawn from the
  // cluster's seeded link RNG, so runs stay reproducible), detected by the
  // receiver, and retried with exponential backoff. A message that still
  // fails after max_retries retries is forced through on the side channel
  // and its sender is marked silent for the failure detector to judge.
  f64 loss_prob = 0.0;         ///< P(message dropped), [0, 1)
  f64 corrupt_prob = 0.0;      ///< P(message corrupted in flight), [0, 1)
  i64 max_retries = 3;         ///< retries per message before giving up
  f64 retry_backoff_s = 50e-6; ///< backoff before retry i is 2^(i-1) * this

  /// Reject non-positive bandwidth, negative latency, out-of-range
  /// loss/corruption probabilities and a non-positive retry budget.
  void validate() const;

  /// One point-to-point message of `bytes` (alpha-beta).
  f64 message_seconds(i64 bytes) const {
    return latency_s + static_cast<f64>(bytes) / (bandwidth_gbps * 1e9);
  }

  /// Ring allreduce: 2 (r-1) hops, each moving bytes/r.
  f64 allreduce_seconds(i64 bytes, i64 ranks) const {
    if (ranks <= 1) return 0.0;
    const f64 hops = 2.0 * static_cast<f64>(ranks - 1);
    const f64 chunk = static_cast<f64>(bytes) / static_cast<f64>(ranks);
    return hops * (latency_s + chunk / (bandwidth_gbps * 1e9));
  }

  /// Allreduce traffic in the paper's accounting: (r - 1) * payload
  /// (§3.3: "the communication of gradients is (#GPUs-1) x Mem(g)").
  static i64 allreduce_bytes(i64 payload, i64 ranks) {
    if (ranks <= 1) return 0;
    return (ranks - 1) * payload;
  }
};

/// Heartbeat failure detection. Every live rank heartbeats once per
/// training step; a silent rank accrues one miss per step boundary and is
/// evicted when missed >= miss_limit. miss_limit = 1 reproduces the
/// pre-elastic behavior (silenced at step N, evicted and resharded at step
/// N before any compute). Detection latency is REPORTED in simulated
/// seconds (missed * heartbeat_period_s) but never branched on, which is
/// what keeps eviction deterministic.
struct FailureDetectorConfig {
  i64 miss_limit = 1;          ///< consecutive misses before eviction
  f64 heartbeat_period_s = 1e-3;  ///< simulated heartbeat interval
  i64 heartbeat_bytes = 64;    ///< per-heartbeat wire size

  void validate() const;
};

/// What the cluster does about a straggler whose slowdown exceeds the
/// bounded wait.
enum class StragglerPolicy {
  kWait,         ///< wait, but at most straggler_wait_factor * nominal max
  kDropReshard,  ///< evict ranks slower than the bound and reshard
};

struct CommLedger {
  i64 gradient_bytes = 0;  ///< cumulative allreduced gradient payload
  i64 error_bytes = 0;     ///< cumulative allreduced ABE scalars
  i64 steps = 0;
  f64 comm_seconds = 0.0;  ///< simulated time spent in allreduce
  // Rank-failure recovery: when a rank is evicted its shard is
  // redistributed across the survivors, who re-sync the authoritative
  // weight vector — charged to the simulated clock as one weight-payload
  // allreduce among the survivors.
  i64 reshard_events = 0;
  i64 reshard_bytes = 0;
  f64 reshard_seconds = 0.0;
  // Membership lifecycle: evictions decided by the heartbeat detector (or
  // the kDropReshard straggler policy), and joins with their catch-up
  // transfer (weights + covariance shard, point-to-point to the joiner).
  i64 evictions = 0;
  f64 detection_seconds = 0.0;  ///< simulated heartbeat-detection latency
  i64 join_events = 0;
  i64 join_bytes = 0;
  f64 join_seconds = 0.0;
  // Degraded links: per-message drops/corruptions and the retry traffic
  // they cost (backoff + re-send, the amount allreduce ran over ideal).
  i64 msg_drops = 0;
  i64 msg_corrupts = 0;
  i64 retries = 0;
  f64 retry_seconds = 0.0;
  // Stragglers: injected slowdown events and the extra simulated wait the
  // bounded-wait policy admitted beyond the nominal compute max.
  i64 straggler_events = 0;
  f64 straggler_wait_seconds = 0.0;
  // Heartbeat traffic (the detector's cost of doing business).
  i64 heartbeats = 0;
  i64 heartbeat_bytes = 0;
  f64 heartbeat_seconds = 0.0;
};

struct DistributedConfig {
  i64 ranks = 1;
  train::TrainOptions options;       ///< batch_size = GLOBAL batch
  optim::KalmanConfig kalman;
  InterconnectModel interconnect;
  FailureDetectorConfig detector;
  StragglerPolicy straggler_policy = StragglerPolicy::kWait;
  /// Bounded wait: a step waits for stragglers at most this multiple of
  /// the nominal (un-slowed) compute max. Under kDropReshard, ranks whose
  /// slowdown exceeds it are evicted instead.
  f64 straggler_wait_factor = 3.0;

  /// Validates ranks, options, kalman, interconnect, detector, and the
  /// straggler knobs together.
  void validate() const;
};

struct DistributedResult {
  train::TrainResult train;     ///< history with MEASURED local seconds
  f64 simulated_seconds = 0.0;  ///< virtual-cluster wall clock, total
  f64 simulated_seconds_to_converge = -1.0;
  f64 compute_seconds = 0.0;    ///< simulated max-rank compute component
  CommLedger comm;
  i64 surviving_ranks = 0;      ///< ranks still alive when the run ended
  train::MembershipCheckpoint membership;  ///< final membership table
};

/// Membership lifecycle + degraded-link simulation for the elastic virtual
/// cluster. Owns the member table (stable ids, never reused), the seeded
/// link RNG, and the CommLedger; train_fekf_distributed drives it once per
/// step (poll_faults) and once per collective (allreduce /
/// compute_seconds). The constructor validates the FULL config — including
/// the interconnect and detector knobs — so a bad bandwidth or miss limit
/// is rejected at construction, not at first use.
class VirtualCluster {
 public:
  using Rank = train::MembershipCheckpoint::Rank;

  /// `grad_payload_bytes` is the flat-gradient wire size; `covariance_bytes`
  /// the persistent P footprint — together the joiner's catch-up transfer.
  VirtualCluster(const DistributedConfig& config, i64 grad_payload_bytes,
                 i64 covariance_bytes);

  i64 live_ranks() const;
  const std::vector<Rank>& members() const { return members_; }

  /// Snapshot / restore the membership table (checkpoint resume). Restore
  /// validates the table (at least one live rank, fresh next_id).
  train::MembershipCheckpoint membership() const;
  void restore_membership(const train::MembershipCheckpoint& m);

  /// Step-boundary poll, in deterministic order: injected rank_fail
  /// (silences a rank), straggler (sets a slowdown factor), rank_join
  /// (admits a rank and charges the catch-up transfer), the kDropReshard
  /// straggler policy, the heartbeat detector (evict + reshard), then the
  /// step's heartbeat traffic. Recovery events are appended to `log`,
  /// mirrored to the obs layer, and fanned out to the configured
  /// observers. Returns the simulated seconds charged.
  f64 poll_faults(i64 step, FaultLog& log);

  /// Simulated ring allreduce of `payload_bytes` among the live ranks.
  /// With loss/corruption armed, each of the 2(r-1) hop rounds simulates
  /// its r messages individually (drop/corrupt draws, exponential-backoff
  /// retries); otherwise charges the closed-form alpha-beta cost. Updates
  /// comm_seconds and the link fields of the ledger; returns the seconds.
  f64 allreduce(i64 payload_bytes, i64 step);

  /// Straggler-aware simulated compute time of one collective:
  /// `measured_seconds[slot]` is the real compute time of live slot
  /// `slot`; each is scaled by its rank's slowdown and the bounded-wait
  /// policy caps the result at straggler_wait_factor * nominal max.
  f64 compute_seconds(const std::vector<f64>& measured_seconds);

  CommLedger& ledger() { return ledger_; }
  const CommLedger& ledger() const { return ledger_; }

 private:
  Rank* find_live(i64 id);
  Rank* pick_victim(i64 preferred_id);
  /// Evict `rank` (alive -> false), charge the survivor reshard, log it.
  void evict(Rank& rank, i64 step, FaultLog& log, const char* why);
  /// trace_name must be a string literal (TraceEvent keeps the pointer).
  void record(FaultLog& log, i64 step, const char* kind,
              const char* trace_name, const char* action, std::string detail);

  const DistributedConfig& config_;
  i64 grad_payload_;
  i64 covariance_bytes_;
  std::vector<Rank> members_;
  i64 next_id_ = 0;
  Rng link_rng_;
  CommLedger ledger_;
};

/// Data-parallel FEKF on the virtual cluster. Each step shards the global
/// batch across the LIVE ranks, reduces gradients/errors, and applies one
/// shared Kalman update (replicated deterministically on every rank, so it
/// is timed once). Honors options.checkpoint_every / checkpoint_path /
/// resume_from: distributed checkpoints carry the membership table, so a
/// resumed run continues with the same live set and reproduces the
/// uninterrupted weight trajectory bit-for-bit (the simulated clock and
/// ledger restart at zero and cover only the resumed segment).
DistributedResult train_fekf_distributed(deepmd::DeepmdModel& model,
                                         std::span<const train::EnvPtr> train_envs,
                                         std::span<const train::EnvPtr> test_envs,
                                         const DistributedConfig& config);

}  // namespace fekf::dist
