#include "md/bonded.hpp"

#include <cmath>

namespace fekf::md {

f64 BondedTerms::compute(std::span<const Vec3> positions,
                         std::span<const i32> types, const Cell& cell,
                         const NeighborList& nl,
                         std::span<Vec3> forces) const {
  (void)types;
  (void)nl;
  f64 energy = 0.0;

  for (const Bond& bond : bonds_) {
    const Vec3 d = cell.displacement(positions[static_cast<std::size_t>(bond.a)],
                                     positions[static_cast<std::size_t>(bond.b)]);
    const f64 r = d.norm();
    const f64 dr = r - bond.r0;
    energy += 0.5 * bond.k * dr * dr;
    // dE/dr = k dr; force on a along +d_hat (pulled toward b when dr > 0).
    const Vec3 f = (bond.k * dr / r) * d;
    forces[static_cast<std::size_t>(bond.a)] += f;
    forces[static_cast<std::size_t>(bond.b)] -= f;
  }

  for (const Angle& ang : angles_) {
    const Vec3 da =
        cell.displacement(positions[static_cast<std::size_t>(ang.center)],
                          positions[static_cast<std::size_t>(ang.a)]);
    const Vec3 db =
        cell.displacement(positions[static_cast<std::size_t>(ang.center)],
                          positions[static_cast<std::size_t>(ang.b)]);
    const f64 ra = da.norm();
    const f64 rb = db.norm();
    f64 cosq = da.dot(db) / (ra * rb);
    cosq = std::min(1.0, std::max(-1.0, cosq));
    const f64 theta = std::acos(cosq);
    const f64 dtheta = theta - ang.theta0;
    energy += 0.5 * ang.k * dtheta * dtheta;

    // dE/dcos = k dtheta * dtheta/dcos = -k dtheta / sin(theta).
    const f64 sin_t = std::sqrt(std::max(1e-12, 1.0 - cosq * cosq));
    const f64 de_dcos = -ang.k * dtheta / sin_t;
    const Vec3 dcos_da = db * (1.0 / (ra * rb)) - da * (cosq / (ra * ra));
    const Vec3 dcos_db = da * (1.0 / (ra * rb)) - db * (cosq / (rb * rb));
    const Vec3 fa = -de_dcos * dcos_da;  // force on atom a
    const Vec3 fb = -de_dcos * dcos_db;  // force on atom b
    forces[static_cast<std::size_t>(ang.a)] += fa;
    forces[static_cast<std::size_t>(ang.b)] += fb;
    forces[static_cast<std::size_t>(ang.center)] -= fa + fb;
  }
  return energy;
}

}  // namespace fekf::md
