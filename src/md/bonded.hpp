// Intramolecular bonded terms for the flexible water teacher: harmonic
// bonds and harmonic angles over an explicit topology. Bond partners are
// located by minimum image (molecules are always far smaller than L/2).
#pragma once

#include <vector>

#include "md/potential.hpp"

namespace fekf::md {

struct Bond {
  i32 a, b;
  f64 k;   ///< eV/Å^2
  f64 r0;  ///< Å
};

struct Angle {
  i32 a, center, b;
  f64 k;       ///< eV/rad^2
  f64 theta0;  ///< rad
};

class BondedTerms final : public Potential {
 public:
  BondedTerms(std::vector<Bond> bonds, std::vector<Angle> angles)
      : bonds_(std::move(bonds)), angles_(std::move(angles)) {}

  /// Bonded terms use explicit topology, not the neighbor list.
  f64 cutoff() const override { return 0.0; }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override;

 private:
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
};

}  // namespace fekf::md
