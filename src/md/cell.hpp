// Orthorhombic periodic simulation cell. All eight paper systems are bulk
// supercells, for which an orthorhombic box (diagonal lattice matrix) is
// sufficient; this keeps minimum-image displacement branch-free.
#pragma once

#include "core/common.hpp"
#include "md/vec3.hpp"

namespace fekf::md {

class Cell {
 public:
  Cell() : lengths_{1.0, 1.0, 1.0} {}
  Cell(f64 lx, f64 ly, f64 lz) : lengths_{lx, ly, lz} {
    FEKF_CHECK(lx > 0 && ly > 0 && lz > 0, "cell lengths must be positive");
  }

  const Vec3& lengths() const { return lengths_; }
  f64 volume() const { return lengths_.x * lengths_.y * lengths_.z; }
  f64 min_length() const {
    return std::min(lengths_.x, std::min(lengths_.y, lengths_.z));
  }

  /// Minimum-image displacement r_j - r_i.
  Vec3 displacement(const Vec3& ri, const Vec3& rj) const {
    Vec3 d = rj - ri;
    d.x -= lengths_.x * std::nearbyint(d.x / lengths_.x);
    d.y -= lengths_.y * std::nearbyint(d.y / lengths_.y);
    d.z -= lengths_.z * std::nearbyint(d.z / lengths_.z);
    return d;
  }

  /// Wrap a position into [0, L).
  Vec3 wrap(const Vec3& r) const {
    auto w = [](f64 v, f64 l) {
      f64 f = v - l * std::floor(v / l);
      if (f >= l) f -= l;  // guard against floating rounding at the edge
      return f;
    };
    return {w(r.x, lengths_.x), w(r.y, lengths_.y), w(r.z, lengths_.z)};
  }

 private:
  Vec3 lengths_;
};

}  // namespace fekf::md
