#include "md/coulomb.hpp"

#include <cmath>
#include <numbers>

#include "md/units.hpp"

namespace fekf::md {

namespace {
constexpr f64 kTwoOverSqrtPi = 2.0 * std::numbers::inv_sqrtpi;
}

WolfCoulomb::WolfCoulomb(std::vector<f64> charges_per_type, f64 rcut,
                         f64 alpha)
    : charges_(std::move(charges_per_type)), rcut_(rcut), alpha_(alpha) {
  FEKF_CHECK(rcut > 0 && alpha > 0, "WolfCoulomb: invalid rcut/alpha");
  const f64 arc = alpha_ * rcut_;
  e_shift_ = std::erfc(arc) / rcut_;
  f_shift_ = e_shift_ / rcut_ +
             kTwoOverSqrtPi * alpha_ * std::exp(-arc * arc) / rcut_;
}

f64 WolfCoulomb::compute(std::span<const Vec3> positions,
                         std::span<const i32> types, const Cell& cell,
                         const NeighborList& nl,
                         std::span<Vec3> forces) const {
  (void)cell;
  FEKF_CHECK(positions.size() == types.size() &&
                 positions.size() == forces.size(),
             "array size mismatch");
  const bool use_mols = !mol_ids_.empty();
  const i64 n = static_cast<i64>(positions.size());
  f64 energy = 0.0;
  for (i64 i = 0; i < n; ++i) {
    const i32 ti = types[static_cast<std::size_t>(i)];
    FEKF_DCHECK(ti >= 0 && ti < static_cast<i32>(charges_.size()),
                "type out of range");
    const f64 qi = charges_[static_cast<std::size_t>(ti)];
    if (qi == 0.0) continue;
    Vec3 fi{};
    for (const Neighbor& nb : nl.of(i)) {
      if (nb.r >= rcut_) continue;
      if (use_mols && mol_ids_[static_cast<std::size_t>(i)] ==
                          mol_ids_[static_cast<std::size_t>(nb.index)]) {
        continue;
      }
      const f64 qj =
          charges_[static_cast<std::size_t>(types[static_cast<std::size_t>(nb.index)])];
      if (qj == 0.0) continue;
      const f64 r = nb.r;
      const f64 ar = alpha_ * r;
      const f64 erfc_r = std::erfc(ar) / r;
      // DSF pair energy: qq [erfc(ar)/r - e_shift + f_shift (r - rc)].
      const f64 qq = kCoulomb * qi * qj;
      const f64 e = qq * (erfc_r - e_shift_ + f_shift_ * (r - rcut_));
      // Pair force magnitude along +d: dE/dr.
      const f64 derfc = -(erfc_r / r +
                          kTwoOverSqrtPi * alpha_ * std::exp(-ar * ar) / r);
      const f64 dedr = qq * (derfc + f_shift_);
      energy += 0.5 * e;
      fi += dedr * (nb.d / r);
    }
    forces[static_cast<std::size_t>(i)] += fi;
  }
  return energy;
}

}  // namespace fekf::md
