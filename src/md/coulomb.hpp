// Damped-shifted-force (DSF) Wolf electrostatics.
//
// Periodic Coulomb sums for the ionic teachers (NaCl, CuO, HfO2, water)
// use the Wolf method with Fennell's damped-shifted-force correction: both
// the pair energy and the pair force go smoothly to zero at the cutoff, so
// no Ewald machinery is needed and the finite-difference force property
// tests hold to high accuracy.
#pragma once

#include <vector>

#include "md/potential.hpp"

namespace fekf::md {

class WolfCoulomb final : public Potential {
 public:
  /// `charges_per_type[t]` is the fixed charge (in e) of atom type t.
  WolfCoulomb(std::vector<f64> charges_per_type, f64 rcut, f64 alpha = 0.2);

  f64 cutoff() const override { return rcut_; }

  /// Exclude pairs with equal molecule ids (intramolecular water pairs).
  void set_molecules(std::vector<i32> mol_ids) { mol_ids_ = std::move(mol_ids); }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override;

 private:
  std::vector<f64> charges_;
  f64 rcut_;
  f64 alpha_;
  f64 e_shift_;  ///< erfc(alpha rc)/rc
  f64 f_shift_;  ///< -d/dr [erfc(alpha r)/r] at rc
  std::vector<i32> mol_ids_;
};

}  // namespace fekf::md
