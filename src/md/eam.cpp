#include "md/eam.hpp"

#include <cmath>
#include <vector>

namespace fekf::md {

f64 SuttonChen::compute(std::span<const Vec3> positions,
                        std::span<const i32> types, const Cell& cell,
                        const NeighborList& nl,
                        std::span<Vec3> forces) const {
  (void)cell;
  (void)types;  // single-species teacher
  FEKF_CHECK(positions.size() == forces.size(), "array size mismatch");
  const i64 n = static_cast<i64>(positions.size());
  const f64 r_switch = 0.9 * rcut_;

  // Pass 1: densities rho_i (switched).
  std::vector<f64> rho(static_cast<std::size_t>(n), 0.0);
  for (i64 i = 0; i < n; ++i) {
    f64 acc = 0.0;
    for (const Neighbor& nb : nl.of(i)) {
      if (nb.r >= rcut_) continue;
      f64 dsw = 0.0;
      const f64 sw = switch_fn(nb.r, r_switch, rcut_, dsw);
      acc += std::pow(p_.a / nb.r, p_.m) * sw;
    }
    rho[static_cast<std::size_t>(i)] = acc;
  }

  // Embedding derivative dF/drho = -eps c / (2 sqrt(rho)); regularize the
  // (physically unreachable) rho -> 0 case.
  std::vector<f64> dF(static_cast<std::size_t>(n), 0.0);
  f64 energy = 0.0;
  for (i64 i = 0; i < n; ++i) {
    const f64 r_i = std::max(rho[static_cast<std::size_t>(i)], 1e-12);
    energy += -p_.epsilon * p_.c * std::sqrt(r_i);
    dF[static_cast<std::size_t>(i)] =
        -p_.epsilon * p_.c * 0.5 / std::sqrt(r_i);
  }

  // Pass 2: pair energy and forces. With the full double-counted neighbor
  // list, F_i = sum_nb [ V'(r) + (dF_i + dF_nb) phi'(r) ] * d_hat, where
  // both V and phi carry the switch.
  for (i64 i = 0; i < n; ++i) {
    Vec3 fi{};
    const f64 dFi = dF[static_cast<std::size_t>(i)];
    for (const Neighbor& nb : nl.of(i)) {
      if (nb.r >= rcut_) continue;
      f64 dsw = 0.0;
      const f64 sw = switch_fn(nb.r, r_switch, rcut_, dsw);
      const f64 vr = p_.epsilon * std::pow(p_.a / nb.r, p_.n);
      const f64 dvr = -p_.n * vr / nb.r;
      const f64 phir = std::pow(p_.a / nb.r, p_.m);
      const f64 dphir = -p_.m * phir / nb.r;
      energy += 0.5 * vr * sw;
      const f64 dV = dvr * sw + vr * dsw;
      const f64 dPhi = dphir * sw + phir * dsw;
      const f64 dFj = dF[static_cast<std::size_t>(nb.index)];
      const f64 scal = dV + (dFi + dFj) * dPhi;
      fi += scal * (nb.d / nb.r);
    }
    forces[static_cast<std::size_t>(i)] += fi;
  }
  return energy;
}

}  // namespace fekf::md
