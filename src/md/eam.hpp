// Sutton–Chen embedded-atom potential — the metallic teacher (Cu, Al, Mg).
//
//   E = eps * [ 1/2 sum_ij (a/r_ij)^n  -  c * sum_i sqrt(rho_i) ],
//   rho_i = sum_j (a/r_ij)^m,
//
// with a smootherstep cutoff switch on both the pair and density terms so
// energy and forces are C2 at the cutoff. A genuine many-body teacher: the
// embedding sqrt makes forces depend on the environment, which is exactly
// what the DeePMD descriptor has to learn for the metal systems.
#pragma once

#include "md/potential.hpp"

namespace fekf::md {

class SuttonChen final : public Potential {
 public:
  struct Params {
    f64 epsilon;  ///< energy scale (eV)
    f64 a;        ///< length scale (Å), ~ lattice constant
    f64 c;        ///< embedding strength (dimensionless)
    f64 n;        ///< pair exponent
    f64 m;        ///< density exponent
  };

  SuttonChen(Params p, f64 rcut) : p_(p), rcut_(rcut) {
    FEKF_CHECK(rcut > 0, "cutoff must be positive");
  }

  f64 cutoff() const override { return rcut_; }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override;

 private:
  Params p_;
  f64 rcut_;
};

}  // namespace fekf::md
