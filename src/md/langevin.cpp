#include "md/langevin.hpp"

#include <cmath>

#include "md/units.hpp"

namespace fekf::md {

void LangevinIntegrator::initialize_velocities(System& system,
                                               Rng& rng) const {
  const i64 n = system.natoms();
  FEKF_CHECK(static_cast<i64>(system.masses.size()) == n, "masses size");
  system.velocities.assign(static_cast<std::size_t>(n), Vec3{});
  Vec3 p_total{};
  f64 m_total = 0.0;
  for (i64 i = 0; i < n; ++i) {
    const f64 m = system.masses[static_cast<std::size_t>(i)];
    const f64 s = std::sqrt(kBoltzmann * config_.temperature *
                            kForceToAccel / m);
    Vec3& v = system.velocities[static_cast<std::size_t>(i)];
    v = Vec3{s * rng.gaussian(), s * rng.gaussian(), s * rng.gaussian()};
    p_total += m * v;
    m_total += m;
  }
  const Vec3 v_com = p_total / m_total;
  for (auto& v : system.velocities) v -= v_com;
}

f64 LangevinIntegrator::run(System& system, i64 steps, Rng& rng) const {
  const i64 n = system.natoms();
  FEKF_CHECK(static_cast<i64>(system.velocities.size()) == n,
             "velocities not initialized");
  const f64 dt = config_.dt_fs;
  const f64 half_dt = 0.5 * dt;
  const f64 gamma = config_.friction;
  const f64 c1 = std::exp(-gamma * dt);
  const f64 kT = kBoltzmann * config_.temperature;

  NeighborList nl;
  std::vector<Vec3> forces(static_cast<std::size_t>(n));

  auto eval = [&]() -> f64 {
    nl.build(system.positions, system.cell, potential_.cutoff());
    std::fill(forces.begin(), forces.end(), Vec3{});
    return potential_.compute(system.positions, system.types, system.cell,
                              nl, forces);
  };

  f64 energy = eval();
  for (i64 step = 0; step < steps; ++step) {
    // B: half kick.
    for (i64 i = 0; i < n; ++i) {
      const f64 inv_m =
          kForceToAccel / system.masses[static_cast<std::size_t>(i)];
      system.velocities[static_cast<std::size_t>(i)] +=
          (half_dt * inv_m) * forces[static_cast<std::size_t>(i)];
    }
    // A: half drift.
    for (i64 i = 0; i < n; ++i) {
      system.positions[static_cast<std::size_t>(i)] +=
          half_dt * system.velocities[static_cast<std::size_t>(i)];
    }
    // O: Ornstein–Uhlenbeck velocity refresh.
    if (gamma > 0.0) {
      for (i64 i = 0; i < n; ++i) {
        const f64 m = system.masses[static_cast<std::size_t>(i)];
        const f64 c2 = std::sqrt((1.0 - c1 * c1) * kT * kForceToAccel / m);
        Vec3& v = system.velocities[static_cast<std::size_t>(i)];
        v = c1 * v + Vec3{c2 * rng.gaussian(), c2 * rng.gaussian(),
                          c2 * rng.gaussian()};
      }
    }
    // A: half drift + wrap.
    for (i64 i = 0; i < n; ++i) {
      Vec3& r = system.positions[static_cast<std::size_t>(i)];
      r = system.cell.wrap(r + half_dt *
                                   system.velocities[static_cast<std::size_t>(i)]);
    }
    // Recompute forces, then B: half kick.
    energy = eval();
    for (i64 i = 0; i < n; ++i) {
      const f64 inv_m =
          kForceToAccel / system.masses[static_cast<std::size_t>(i)];
      system.velocities[static_cast<std::size_t>(i)] +=
          (half_dt * inv_m) * forces[static_cast<std::size_t>(i)];
    }
  }
  return energy;
}

f64 LangevinIntegrator::kinetic_energy(const System& system) {
  f64 ke = 0.0;
  for (i64 i = 0; i < system.natoms(); ++i) {
    ke += 0.5 * system.masses[static_cast<std::size_t>(i)] *
          system.velocities[static_cast<std::size_t>(i)].norm2() /
          kForceToAccel;
  }
  return ke;
}

f64 LangevinIntegrator::kinetic_temperature(const System& system) {
  const i64 dof = 3 * system.natoms();
  if (dof == 0) return 0.0;
  return 2.0 * kinetic_energy(system) / (static_cast<f64>(dof) * kBoltzmann);
}

}  // namespace fekf::md
