// BAOAB Langevin integrator (velocity Verlet when friction is zero).
//
// Generates the temperature-mixed configuration ensembles of Table 3: each
// dataset concatenates trajectories thermostatted at the paper's listed
// temperatures, sampled every `stride` steps.
#pragma once

#include "core/rng.hpp"
#include "md/potential.hpp"
#include "md/system.hpp"

namespace fekf::md {

class LangevinIntegrator {
 public:
  struct Config {
    f64 dt_fs = 1.0;        ///< time step (fs)
    f64 temperature = 300;  ///< target temperature (K)
    f64 friction = 0.02;    ///< 1/fs; 0 gives NVE velocity Verlet
  };

  LangevinIntegrator(const Potential& potential, Config config)
      : potential_(potential), config_(config) {
    FEKF_CHECK(config.dt_fs > 0, "dt must be positive");
    FEKF_CHECK(config.friction >= 0, "friction must be non-negative");
  }

  /// Draw Maxwell–Boltzmann velocities at the configured temperature and
  /// remove the center-of-mass drift.
  void initialize_velocities(System& system, Rng& rng) const;

  /// Advance `steps` BAOAB steps. Returns the potential energy after the
  /// final step.
  f64 run(System& system, i64 steps, Rng& rng) const;

  void set_temperature(f64 kelvin) { config_.temperature = kelvin; }

  /// Instantaneous kinetic temperature (K).
  static f64 kinetic_temperature(const System& system);
  /// Kinetic energy (eV).
  static f64 kinetic_energy(const System& system);

 private:
  const Potential& potential_;
  Config config_;
};

}  // namespace fekf::md
