#include "md/lattice.hpp"

#include <cmath>
#include <numbers>
#include <span>

namespace fekf::md {

namespace {

/// Tile `basis` (fractional coordinates within one cell of dims `dims`)
/// over an nx x ny x nz supercell.
Structure tile(const Vec3& dims, std::span<const Vec3> basis,
               std::span<const i32> basis_types, i32 nx, i32 ny, i32 nz) {
  FEKF_CHECK(nx > 0 && ny > 0 && nz > 0, "supercell repeats must be positive");
  Structure s;
  s.cell = Cell(dims.x * nx, dims.y * ny, dims.z * nz);
  const i64 cells = static_cast<i64>(nx) * ny * nz;
  s.positions.reserve(static_cast<std::size_t>(cells * basis.size()));
  s.types.reserve(static_cast<std::size_t>(cells * basis.size()));
  for (i32 ix = 0; ix < nx; ++ix) {
    for (i32 iy = 0; iy < ny; ++iy) {
      for (i32 iz = 0; iz < nz; ++iz) {
        for (std::size_t b = 0; b < basis.size(); ++b) {
          s.positions.push_back(Vec3{(ix + basis[b].x) * dims.x,
                                     (iy + basis[b].y) * dims.y,
                                     (iz + basis[b].z) * dims.z});
          s.types.push_back(basis_types[b]);
        }
      }
    }
  }
  return s;
}

}  // namespace

Structure make_fcc(f64 a, i32 nx, i32 ny, i32 nz, i32 type) {
  const Vec3 basis[] = {{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}};
  const i32 types[] = {type, type, type, type};
  return tile(Vec3{a, a, a}, basis, types, nx, ny, nz);
}

Structure make_bcc(f64 a, i32 nx, i32 ny, i32 nz, i32 type) {
  const Vec3 basis[] = {{0, 0, 0}, {0.5, 0.5, 0.5}};
  const i32 types[] = {type, type};
  return tile(Vec3{a, a, a}, basis, types, nx, ny, nz);
}

Structure make_hcp(f64 a, f64 c, i32 nx, i32 ny, i32 nz, i32 type) {
  const f64 b = a * std::numbers::sqrt3;
  const Vec3 basis[] = {{0, 0, 0},
                        {0.5, 0.5, 0},
                        {0.5, 1.0 / 6.0, 0.5},
                        {0, 2.0 / 3.0, 0.5}};
  const i32 types[] = {type, type, type, type};
  return tile(Vec3{a, b, c}, basis, types, nx, ny, nz);
}

Structure make_diamond(f64 a, i32 nx, i32 ny, i32 nz, i32 type) {
  const Vec3 basis[] = {{0, 0, 0},         {0.5, 0.5, 0},
                        {0.5, 0, 0.5},     {0, 0.5, 0.5},
                        {0.25, 0.25, 0.25}, {0.75, 0.75, 0.25},
                        {0.75, 0.25, 0.75}, {0.25, 0.75, 0.75}};
  const i32 types[] = {type, type, type, type, type, type, type, type};
  return tile(Vec3{a, a, a}, basis, types, nx, ny, nz);
}

Structure make_rocksalt(f64 a, i32 nx, i32 ny, i32 nz, i32 type_a,
                        i32 type_b) {
  const Vec3 basis[] = {{0, 0, 0},     {0.5, 0.5, 0},  {0.5, 0, 0.5},
                        {0, 0.5, 0.5}, {0.5, 0, 0},    {0, 0.5, 0},
                        {0, 0, 0.5},   {0.5, 0.5, 0.5}};
  const i32 types[] = {type_a, type_a, type_a, type_a,
                       type_b, type_b, type_b, type_b};
  return tile(Vec3{a, a, a}, basis, types, nx, ny, nz);
}

Structure make_fluorite(f64 a, i32 nx, i32 ny, i32 nz, i32 type_cation,
                        i32 type_anion) {
  const Vec3 basis[] = {
      {0, 0, 0},          {0.5, 0.5, 0},      {0.5, 0, 0.5},
      {0, 0.5, 0.5},      {0.25, 0.25, 0.25}, {0.75, 0.25, 0.25},
      {0.25, 0.75, 0.25}, {0.25, 0.25, 0.75}, {0.75, 0.75, 0.25},
      {0.75, 0.25, 0.75}, {0.25, 0.75, 0.75}, {0.75, 0.75, 0.75}};
  const i32 types[] = {type_cation, type_cation, type_cation, type_cation,
                       type_anion,  type_anion,  type_anion,  type_anion,
                       type_anion,  type_anion,  type_anion,  type_anion};
  return tile(Vec3{a, a, a}, basis, types, nx, ny, nz);
}

Structure make_water_box(f64 spacing, i32 nx, i32 ny, i32 nz, Rng& rng) {
  FEKF_CHECK(spacing > 2.5, "water molecules need > 2.5 Å spacing");
  Structure s;
  s.cell = Cell(spacing * nx, spacing * ny, spacing * nz);
  constexpr f64 kOH = 0.9572;                    // Å
  constexpr f64 kHalfAngle = 104.52 / 2.0 * std::numbers::pi / 180.0;
  for (i32 ix = 0; ix < nx; ++ix) {
    for (i32 iy = 0; iy < ny; ++iy) {
      for (i32 iz = 0; iz < nz; ++iz) {
        const Vec3 o{(ix + 0.5) * spacing, (iy + 0.5) * spacing,
                     (iz + 0.5) * spacing};
        // Random orthonormal pair (u, v) defining the molecular plane.
        Vec3 u{rng.gaussian(), rng.gaussian(), rng.gaussian()};
        u = u / u.norm();
        Vec3 w{rng.gaussian(), rng.gaussian(), rng.gaussian()};
        Vec3 v = w - u * w.dot(u);
        v = v / v.norm();
        const Vec3 h1 =
            o + kOH * (std::cos(kHalfAngle) * u + std::sin(kHalfAngle) * v);
        const Vec3 h2 =
            o + kOH * (std::cos(kHalfAngle) * u - std::sin(kHalfAngle) * v);
        s.positions.push_back(o);
        s.types.push_back(0);
        s.positions.push_back(s.cell.wrap(h1));
        s.types.push_back(1);
        s.positions.push_back(s.cell.wrap(h2));
        s.types.push_back(1);
      }
    }
  }
  return s;
}

}  // namespace fekf::md
