// Crystal-lattice and molecular-box builders for the eight paper systems
// (Table 3): FCC Cu/Al, HCP Mg, diamond Si, rocksalt NaCl/CuO, fluorite
// HfO2, and a water box.
#pragma once

#include "core/rng.hpp"
#include "md/system.hpp"

namespace fekf::md {

struct Structure {
  Cell cell;
  std::vector<Vec3> positions;
  std::vector<i32> types;

  i64 natoms() const { return static_cast<i64>(positions.size()); }
};

/// FCC supercell: 4 atoms per cubic cell of constant `a`.
Structure make_fcc(f64 a, i32 nx, i32 ny, i32 nz, i32 type = 0);

/// BCC supercell: 2 atoms per cubic cell.
Structure make_bcc(f64 a, i32 nx, i32 ny, i32 nz, i32 type = 0);

/// HCP supercell via the 4-atom orthorhombic cell (a, sqrt(3) a, c).
Structure make_hcp(f64 a, f64 c, i32 nx, i32 ny, i32 nz, i32 type = 0);

/// Diamond cubic supercell: 8 atoms per cell (Si).
Structure make_diamond(f64 a, i32 nx, i32 ny, i32 nz, i32 type = 0);

/// Rocksalt AB supercell: 4 A + 4 B per cubic cell (NaCl, CuO teacher).
Structure make_rocksalt(f64 a, i32 nx, i32 ny, i32 nz, i32 type_a,
                        i32 type_b);

/// Fluorite MO2 supercell: 4 cations + 8 anions per cubic cell (HfO2).
Structure make_fluorite(f64 a, i32 nx, i32 ny, i32 nz, i32 type_cation,
                        i32 type_anion);

/// Water box: molecules on a cubic grid with spacing `spacing`, random
/// orientations. Atom order per molecule is O, H, H (types 0, 1, 1);
/// molecule m owns atoms {3m, 3m+1, 3m+2}.
Structure make_water_box(f64 spacing, i32 nx, i32 ny, i32 nz, Rng& rng);

}  // namespace fekf::md
