#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

namespace fekf::md {

void NeighborList::build(std::span<const Vec3> positions, const Cell& cell,
                         f64 rcut) {
  FEKF_CHECK(rcut > 0.0, "rcut must be positive");
  rcut_ = rcut;
  const i64 n = static_cast<i64>(positions.size());
  lists_.assign(static_cast<std::size_t>(n), {});

  const Vec3 box = cell.lengths();
  const i32 sx = static_cast<i32>(std::ceil(rcut / box.x));
  const i32 sy = static_cast<i32>(std::ceil(rcut / box.y));
  const i32 sz = static_cast<i32>(std::ceil(rcut / box.z));
  const f64 rc2 = rcut * rcut;

  for (i64 i = 0; i < n; ++i) {
    auto& list = lists_[static_cast<std::size_t>(i)];
    const Vec3 ri = positions[static_cast<std::size_t>(i)];
    for (i64 j = 0; j < n; ++j) {
      const Vec3 base = positions[static_cast<std::size_t>(j)] - ri;
      for (i32 ax = -sx; ax <= sx; ++ax) {
        for (i32 ay = -sy; ay <= sy; ++ay) {
          for (i32 az = -sz; az <= sz; ++az) {
            if (i == j && ax == 0 && ay == 0 && az == 0) continue;
            const Vec3 d{base.x + ax * box.x, base.y + ay * box.y,
                         base.z + az * box.z};
            const f64 r2 = d.norm2();
            if (r2 < rc2 && r2 > 1e-12) {
              list.push_back(
                  Neighbor{static_cast<i32>(j), d, std::sqrt(r2)});
            }
          }
        }
      }
    }
    // Deterministic ordering: nearest first (the DeePMD environment matrix
    // sorts neighbors; doing it here makes both consumers reproducible).
    std::sort(list.begin(), list.end(),
              [](const Neighbor& a, const Neighbor& b) { return a.r < b.r; });
  }
}

i64 NeighborList::max_count() const {
  i64 m = 0;
  for (const auto& l : lists_) m = std::max<i64>(m, static_cast<i64>(l.size()));
  return m;
}

}  // namespace fekf::md
