// Periodic-image-aware neighbor list.
//
// The paper's systems are small bulk supercells (32–108 atoms) with DeePMD
// cutoffs (~6 Å) that can exceed half the box length, so a minimum-image
// convention is not enough: an atom may see several periodic images of the
// same neighbor, including images of itself. The list therefore enumerates
// integer lattice shifts out to ceil(rcut / L) in each direction — the same
// ghost-atom semantics LAMMPS / DeePMD-kit use.
//
// Shared by the MD teacher potentials and the DeePMD environment matrix.
#pragma once

#include <span>
#include <vector>

#include "md/cell.hpp"

namespace fekf::md {

struct Neighbor {
  i32 index;  ///< id of the neighbor atom (real atom; may equal the center)
  Vec3 d;     ///< displacement center -> neighbor image
  f64 r;      ///< |d|
};

class NeighborList {
 public:
  /// Build for all atoms within `rcut`. O(N^2 * images); the paper systems
  /// are small enough that this dominates nothing.
  void build(std::span<const Vec3> positions, const Cell& cell, f64 rcut);

  i64 size() const { return static_cast<i64>(lists_.size()); }
  const std::vector<Neighbor>& of(i64 i) const {
    FEKF_DCHECK(i >= 0 && i < size(), "neighbor list index");
    return lists_[static_cast<std::size_t>(i)];
  }

  /// Longest per-atom neighbor count (the DeePMD N_m candidate).
  i64 max_count() const;

  f64 rcut() const { return rcut_; }

 private:
  std::vector<std::vector<Neighbor>> lists_;
  f64 rcut_ = 0.0;
};

}  // namespace fekf::md
