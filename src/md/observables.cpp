#include "md/observables.hpp"

#include <cmath>
#include <numbers>

namespace fekf::md {

RdfAccumulator::RdfAccumulator(RdfConfig config) : config_(config) {
  FEKF_CHECK(config.r_max > 0 && config.bins > 0, "bad RDF config");
  histogram_.assign(static_cast<std::size_t>(config.bins), 0.0);
}

void RdfAccumulator::add_frame(std::span<const Vec3> positions,
                               std::span<const i32> types,
                               const Cell& cell) {
  FEKF_CHECK(positions.size() == types.size(), "array size mismatch");
  NeighborList nl;
  nl.build(positions, cell, config_.r_max);
  const f64 dr = config_.r_max / static_cast<f64>(config_.bins);
  i64 count_a = 0, count_b = 0;
  for (const i32 t : types) {
    if (config_.type_a < 0 || t == config_.type_a) ++count_a;
    if (config_.type_b < 0 || t == config_.type_b) ++count_b;
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const i32 ti = types[i];
    if (config_.type_a >= 0 && ti != config_.type_a) continue;
    for (const Neighbor& nb : nl.of(static_cast<i64>(i))) {
      const i32 tj = types[static_cast<std::size_t>(nb.index)];
      if (config_.type_b >= 0 && tj != config_.type_b) continue;
      const i64 bin = static_cast<i64>(nb.r / dr);
      if (bin >= 0 && bin < config_.bins) {
        histogram_[static_cast<std::size_t>(bin)] += 1.0;
      }
    }
  }
  pair_density_sum_ +=
      static_cast<f64>(count_a) * static_cast<f64>(count_b) / cell.volume();
  ++frames_;
}

Rdf RdfAccumulator::finalize() const {
  FEKF_CHECK(frames_ > 0, "no frames accumulated");
  Rdf out;
  out.frames = frames_;
  const f64 dr = config_.r_max / static_cast<f64>(config_.bins);
  out.r.resize(static_cast<std::size_t>(config_.bins));
  out.g.resize(static_cast<std::size_t>(config_.bins));
  // Normalization: histogram / (frames * 4 pi r^2 dr * pair density).
  const f64 mean_pair_density = pair_density_sum_ / static_cast<f64>(frames_);
  for (i64 b = 0; b < config_.bins; ++b) {
    const f64 r_mid = (static_cast<f64>(b) + 0.5) * dr;
    out.r[static_cast<std::size_t>(b)] = r_mid;
    const f64 shell = 4.0 * std::numbers::pi * r_mid * r_mid * dr;
    out.g[static_cast<std::size_t>(b)] =
        histogram_[static_cast<std::size_t>(b)] /
        (static_cast<f64>(frames_) * shell * mean_pair_density);
  }
  return out;
}

f64 Rdf::distance(const Rdf& a, const Rdf& b) {
  FEKF_CHECK(a.g.size() == b.g.size(), "RDF grids differ");
  f64 se = 0.0;
  for (std::size_t i = 0; i < a.g.size(); ++i) {
    const f64 d = a.g[i] - b.g[i];
    se += d * d;
  }
  return std::sqrt(se / static_cast<f64>(a.g.size()));
}

f64 mean_squared_displacement(std::span<const Vec3> reference,
                              std::span<const Vec3> current,
                              const Cell& cell) {
  FEKF_CHECK(reference.size() == current.size(), "frame size mismatch");
  FEKF_CHECK(!reference.empty(), "empty frames");
  f64 acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    acc += cell.displacement(reference[i], current[i]).norm2();
  }
  return acc / static_cast<f64>(reference.size());
}

}  // namespace fekf::md
