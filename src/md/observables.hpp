// Trajectory observables: radial distribution function and mean-squared
// displacement. Used to validate a learned force field beyond pointwise
// force RMSE — if the model's MD reproduces the teacher's g(r), it captures
// the structure of the liquid/solid, which is the property NNMD exists for.
#pragma once

#include <span>
#include <vector>

#include "md/neighbor.hpp"
#include "md/system.hpp"

namespace fekf::md {

struct RdfConfig {
  f64 r_max = 6.0;
  i64 bins = 60;
  /// Restrict to pairs of these types; -1 means "any" (partial RDFs for
  /// multi-element systems, e.g. O-O in water).
  i32 type_a = -1;
  i32 type_b = -1;
};

struct Rdf {
  std::vector<f64> r;    ///< bin centers (Å)
  std::vector<f64> g;    ///< g(r), normalized to 1 at large r for an ideal gas
  i64 frames = 0;

  /// L2 distance between two RDFs on the same grid (model-vs-teacher
  /// structural agreement metric).
  static f64 distance(const Rdf& a, const Rdf& b);
};

/// Accumulates g(r) over trajectory frames.
class RdfAccumulator {
 public:
  explicit RdfAccumulator(RdfConfig config);

  /// Add one frame.
  void add_frame(std::span<const Vec3> positions, std::span<const i32> types,
                 const Cell& cell);

  /// Normalized RDF over all frames added so far.
  Rdf finalize() const;

 private:
  RdfConfig config_;
  std::vector<f64> histogram_;
  i64 frames_ = 0;
  f64 pair_density_sum_ = 0.0;  ///< per-frame N_a * N_b / V accumulation
};

/// Mean-squared displacement between a reference frame and the current
/// positions (unwrapped displacement via minimum image per step is the
/// caller's job for long runs; adequate for short validation runs).
f64 mean_squared_displacement(std::span<const Vec3> reference,
                              std::span<const Vec3> current,
                              const Cell& cell);

}  // namespace fekf::md
