#include "md/pair.hpp"

namespace fekf::md {

f64 PairPotential::compute(std::span<const Vec3> positions,
                           std::span<const i32> types, const Cell& cell,
                           const NeighborList& nl,
                           std::span<Vec3> forces) const {
  (void)cell;
  FEKF_CHECK(positions.size() == types.size() &&
                 positions.size() == forces.size(),
             "array size mismatch");
  FEKF_CHECK(nl.rcut() >= rcut_ - 1e-12,
             "neighbor list cutoff smaller than potential cutoff");
  const bool use_mols = !mol_ids_.empty();
  if (use_mols) {
    FEKF_CHECK(mol_ids_.size() == positions.size(),
               "molecule id array size mismatch");
  }
  const f64 r_switch = 0.9 * rcut_;
  const i64 n = static_cast<i64>(positions.size());
  f64 energy = 0.0;
  for (i64 i = 0; i < n; ++i) {
    const i32 ti = types[static_cast<std::size_t>(i)];
    Vec3 fi{};
    for (const Neighbor& nb : nl.of(i)) {
      if (nb.r >= rcut_) continue;
      if (use_mols && mol_ids_[static_cast<std::size_t>(i)] ==
                          mol_ids_[static_cast<std::size_t>(nb.index)]) {
        continue;
      }
      const i32 tj = types[static_cast<std::size_t>(nb.index)];
      f64 dphi = 0.0;
      const f64 phi = pair_energy(nb.r, ti, tj, dphi);
      if (phi == 0.0 && dphi == 0.0) continue;
      f64 dsw = 0.0;
      const f64 sw = switch_fn(nb.r, r_switch, rcut_, dsw);
      const f64 e = phi * sw;
      const f64 dedr = dphi * sw + phi * dsw;
      // Full double-counted list: each physical pair appears in both atoms'
      // lists, so halve the energy; the force expression already accounts
      // for both center and neighbor roles (see derivation in DESIGN.md).
      energy += 0.5 * e;
      const Vec3 dir = nb.d / nb.r;
      fi += dedr * dir;
    }
    forces[static_cast<std::size_t>(i)] += fi;
  }
  return energy;
}

// ---- Lennard-Jones ---------------------------------------------------------

LennardJones::LennardJones(i32 num_types, f64 rcut)
    : PairPotential(num_types, rcut),
      params_(static_cast<std::size_t>(num_types) * num_types) {}

void LennardJones::set_pair(i32 ti, i32 tj, Params p) {
  params_[static_cast<std::size_t>(pair_index(ti, tj))] = p;
  params_[static_cast<std::size_t>(pair_index(tj, ti))] = p;
}

f64 LennardJones::pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const {
  const Params& p = params_[static_cast<std::size_t>(pair_index(ti, tj))];
  if (p.epsilon == 0.0) {
    dphi = 0.0;
    return 0.0;
  }
  const f64 sr = p.sigma / r;
  const f64 sr2 = sr * sr;
  const f64 sr6 = sr2 * sr2 * sr2;
  const f64 sr12 = sr6 * sr6;
  dphi = 4.0 * p.epsilon * (-12.0 * sr12 + 6.0 * sr6) / r;
  return 4.0 * p.epsilon * (sr12 - sr6);
}

// ---- Morse ------------------------------------------------------------------

Morse::Morse(i32 num_types, f64 rcut)
    : PairPotential(num_types, rcut),
      params_(static_cast<std::size_t>(num_types) * num_types) {}

void Morse::set_pair(i32 ti, i32 tj, Params p) {
  params_[static_cast<std::size_t>(pair_index(ti, tj))] = p;
  params_[static_cast<std::size_t>(pair_index(tj, ti))] = p;
}

f64 Morse::pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const {
  const Params& p = params_[static_cast<std::size_t>(pair_index(ti, tj))];
  if (p.depth == 0.0) {
    dphi = 0.0;
    return 0.0;
  }
  // E = D ((1-x)^2 - 1) so the well depth is -D at r0 and E -> 0 far away.
  const f64 x = std::exp(-p.alpha * (r - p.r0));
  dphi = 2.0 * p.depth * (1.0 - x) * (p.alpha * x);
  return p.depth * ((1.0 - x) * (1.0 - x) - 1.0);
}

// ---- Born–Mayer -------------------------------------------------------------

BornMayer::BornMayer(i32 num_types, f64 rcut)
    : PairPotential(num_types, rcut),
      params_(static_cast<std::size_t>(num_types) * num_types) {}

void BornMayer::set_pair(i32 ti, i32 tj, Params p) {
  params_[static_cast<std::size_t>(pair_index(ti, tj))] = p;
  params_[static_cast<std::size_t>(pair_index(tj, ti))] = p;
}

f64 BornMayer::pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const {
  const Params& p = params_[static_cast<std::size_t>(pair_index(ti, tj))];
  if (p.a == 0.0 && p.c6 == 0.0) {
    dphi = 0.0;
    return 0.0;
  }
  const f64 rep = p.a * std::exp(-r / p.rho);
  const f64 r6 = r * r * r * r * r * r;
  dphi = -rep / p.rho + 6.0 * p.c6 / (r6 * r);
  return rep - p.c6 / r6;
}

}  // namespace fekf::md
