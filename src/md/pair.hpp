// Simple pair potentials (Lennard-Jones, Morse, Born–Mayer) with per
// type-pair parameter tables, smooth cutoff switching, and optional
// same-molecule exclusions (used by the water teacher, whose intramolecular
// interactions are the bonded terms instead).
#pragma once

#include <vector>

#include "md/potential.hpp"

namespace fekf::md {

/// Common machinery: the neighbor loop with double-count halving and the
/// per-type-pair parameter table. Derived classes implement phi(r).
class PairPotential : public Potential {
 public:
  PairPotential(i32 num_types, f64 rcut)
      : num_types_(num_types), rcut_(rcut) {
    FEKF_CHECK(num_types >= 1, "need at least one type");
    FEKF_CHECK(rcut > 0, "cutoff must be positive");
  }

  f64 cutoff() const override { return rcut_; }

  /// Exclude pairs with equal molecule ids (size 0 disables exclusions).
  void set_molecules(std::vector<i32> mol_ids) { mol_ids_ = std::move(mol_ids); }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override;

 protected:
  /// Pair energy phi(r) for the (ti, tj) pair; writes d(phi)/dr. The switch
  /// function is applied by the caller.
  virtual f64 pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const = 0;

  i64 pair_index(i32 ti, i32 tj) const {
    FEKF_DCHECK(ti >= 0 && ti < num_types_ && tj >= 0 && tj < num_types_,
                "type out of range");
    return static_cast<i64>(ti) * num_types_ + tj;
  }

  i32 num_types_;
  f64 rcut_;
  std::vector<i32> mol_ids_;
};

class LennardJones final : public PairPotential {
 public:
  struct Params {
    f64 epsilon = 0.0;  ///< well depth (eV); 0 disables the pair
    f64 sigma = 1.0;    ///< length scale (Å)
  };

  LennardJones(i32 num_types, f64 rcut);

  /// Symmetric assignment of (ti, tj) and (tj, ti).
  void set_pair(i32 ti, i32 tj, Params p);

 protected:
  f64 pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const override;

 private:
  std::vector<Params> params_;
};

class Morse final : public PairPotential {
 public:
  struct Params {
    f64 depth = 0.0;  ///< D_e (eV); 0 disables the pair
    f64 alpha = 1.0;  ///< width (1/Å)
    f64 r0 = 1.0;     ///< equilibrium distance (Å)
  };

  Morse(i32 num_types, f64 rcut);
  void set_pair(i32 ti, i32 tj, Params p);

 protected:
  f64 pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const override;

 private:
  std::vector<Params> params_;
};

/// Born–Mayer repulsion + dispersion: A exp(-r/rho) - C / r^6 (the
/// short-range part of the NaCl teacher; Coulomb handles the ionic part).
class BornMayer final : public PairPotential {
 public:
  struct Params {
    f64 a = 0.0;    ///< repulsion amplitude (eV); 0 disables
    f64 rho = 0.3;  ///< repulsion decay (Å)
    f64 c6 = 0.0;   ///< dispersion coefficient (eV Å^6)
  };

  BornMayer(i32 num_types, f64 rcut);
  void set_pair(i32 ti, i32 tj, Params p);

 protected:
  f64 pair_energy(f64 r, i32 ti, i32 tj, f64& dphi) const override;

 private:
  std::vector<Params> params_;
};

}  // namespace fekf::md
