// Teacher-potential interface.
//
// These classical potentials replace the paper's ab-initio (DFT) labelling:
// they define a smooth, symmetry-respecting many-body potential-energy
// surface from which training snapshots (energy + per-atom forces) are
// sampled. See DESIGN.md §1 for why this substitution preserves the
// training-dynamics behaviour the paper measures.
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "md/neighbor.hpp"

namespace fekf::md {

class Potential {
 public:
  virtual ~Potential() = default;

  /// Interaction cutoff; callers must build the NeighborList with
  /// rcut >= cutoff() (a composite builds one list at the max).
  virtual f64 cutoff() const = 0;

  /// Accumulate forces into `forces` and return the energy contribution.
  virtual f64 compute(std::span<const Vec3> positions,
                      std::span<const i32> types, const Cell& cell,
                      const NeighborList& nl,
                      std::span<Vec3> forces) const = 0;
};

/// Smootherstep switching from 1 at r1 to 0 at rc (C2-continuous), applied
/// by pair-style potentials so energies and forces vanish smoothly at the
/// cutoff. Returns the switch value; `dsw` receives its derivative.
inline f64 switch_fn(f64 r, f64 r1, f64 rc, f64& dsw) {
  if (r <= r1) {
    dsw = 0.0;
    return 1.0;
  }
  if (r >= rc) {
    dsw = 0.0;
    return 0.0;
  }
  const f64 t = (r - r1) / (rc - r1);
  const f64 t2 = t * t;
  const f64 t3 = t2 * t;
  dsw = (-30.0 * t2 * t2 + 60.0 * t3 - 30.0 * t2) / (rc - r1);
  return 1.0 - t3 * (6.0 * t2 - 15.0 * t + 10.0);
}

/// Sum of component potentials (e.g. Morse + Coulomb for the oxides,
/// bonded + LJ + Coulomb for water).
class CompositePotential final : public Potential {
 public:
  void add(std::unique_ptr<Potential> p) {
    FEKF_CHECK(p != nullptr, "null component");
    cutoff_ = std::max(cutoff_, p->cutoff());
    components_.push_back(std::move(p));
  }

  f64 cutoff() const override { return cutoff_; }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override {
    f64 e = 0.0;
    for (const auto& p : components_) {
      e += p->compute(positions, types, cell, nl, forces);
    }
    return e;
  }

  i64 num_components() const { return static_cast<i64>(components_.size()); }

 private:
  std::vector<std::unique_ptr<Potential>> components_;
  f64 cutoff_ = 0.0;
};

/// Convenience: build the neighbor list and evaluate in one call.
struct EnergyForces {
  f64 energy = 0.0;
  std::vector<Vec3> forces;
};

inline EnergyForces evaluate(const Potential& pot,
                             std::span<const Vec3> positions,
                             std::span<const i32> types, const Cell& cell) {
  NeighborList nl;
  nl.build(positions, cell, pot.cutoff());
  EnergyForces out;
  out.forces.assign(positions.size(), Vec3{});
  out.energy = pot.compute(positions, types, cell, nl, out.forces);
  return out;
}

}  // namespace fekf::md
