#include "md/sampler.hpp"

namespace fekf::md {

std::vector<Snapshot> sample_trajectory(const Potential& potential,
                                        const Structure& initial,
                                        std::span<const f64> mass_per_type,
                                        const SamplerConfig& config,
                                        Rng& rng) {
  FEKF_CHECK(!config.temperatures.empty(), "need at least one temperature");
  FEKF_CHECK(config.stride >= 1, "stride must be >= 1");

  System system;
  system.cell = initial.cell;
  system.positions = initial.positions;
  system.types = initial.types;
  system.masses.reserve(initial.positions.size());
  for (const i32 t : initial.types) {
    FEKF_CHECK(t >= 0 && t < static_cast<i32>(mass_per_type.size()),
               "type without a mass");
    system.masses.push_back(mass_per_type[static_cast<std::size_t>(t)]);
  }

  std::vector<Snapshot> snapshots;
  snapshots.reserve(static_cast<std::size_t>(
      config.snapshots_per_temperature *
      static_cast<i64>(config.temperatures.size())));

  for (const f64 temperature : config.temperatures) {
    LangevinIntegrator integrator(
        potential, LangevinIntegrator::Config{config.dt_fs, temperature,
                                              config.friction});
    integrator.initialize_velocities(system, rng);
    integrator.run(system, config.equilibration_steps, rng);
    for (i64 s = 0; s < config.snapshots_per_temperature; ++s) {
      integrator.run(system, config.stride, rng);
      EnergyForces labels =
          evaluate(potential, system.positions, system.types, system.cell);
      Snapshot snap;
      snap.cell = system.cell;
      snap.positions = system.positions;
      snap.types = system.types;
      snap.energy = labels.energy;
      snap.forces = std::move(labels.forces);
      snapshots.push_back(std::move(snap));
    }
  }
  return snapshots;
}

}  // namespace fekf::md
