// Trajectory sampler: runs thermostatted MD with a teacher potential and
// emits labelled snapshots — the stand-in for the paper's ab-initio
// trajectory data generation ("we fast generate a long sequence of the
// snapshot by a small time step and choose one for every fixed number").
#pragma once

#include "core/rng.hpp"
#include "md/lattice.hpp"
#include "md/langevin.hpp"
#include "md/system.hpp"

namespace fekf::md {

struct SamplerConfig {
  f64 dt_fs = 1.0;
  std::vector<f64> temperatures{300.0};  ///< one sub-trajectory per entry
  i64 equilibration_steps = 100;         ///< discarded steps per temperature
  i64 stride = 5;                        ///< MD steps between snapshots
  i64 snapshots_per_temperature = 100;
  f64 friction = 0.05;                   ///< Langevin friction (1/fs)
};

/// Run the sampler and label every snapshot with the teacher's energy and
/// forces. Deterministic given `rng`'s state.
std::vector<Snapshot> sample_trajectory(const Potential& potential,
                                        const Structure& initial,
                                        std::span<const f64> mass_per_type,
                                        const SamplerConfig& config, Rng& rng);

}  // namespace fekf::md
