#include "md/sw.hpp"

#include <cmath>

namespace fekf::md {

StillingerWeber::StillingerWeber() : p_(Params{}) {}

f64 StillingerWeber::compute(std::span<const Vec3> positions,
                             std::span<const i32> types, const Cell& cell,
                             const NeighborList& nl,
                             std::span<Vec3> forces) const {
  (void)cell;
  (void)types;  // single-species teacher
  FEKF_CHECK(positions.size() == forces.size(), "array size mismatch");
  const i64 n = static_cast<i64>(positions.size());
  const f64 rc = cutoff();
  f64 energy = 0.0;

  // Two-body: E2 = 0.5 sum_i sum_nb phi2(r); F_i += phi2'(r) d_hat.
  for (i64 i = 0; i < n; ++i) {
    Vec3 fi{};
    for (const Neighbor& nb : nl.of(i)) {
      const f64 r = nb.r;
      if (r >= rc - 1e-9) continue;
      const f64 sr = p_.sigma / r;
      const f64 srp = std::pow(sr, p_.p);
      const f64 srq = p_.q == 0.0 ? 1.0 : std::pow(sr, p_.q);
      const f64 tail = std::exp(p_.sigma / (r - rc));
      const f64 poly = p_.big_a * p_.epsilon * (p_.big_b * srp - srq);
      const f64 e2 = poly * tail;
      const f64 dpoly =
          p_.big_a * p_.epsilon *
          (-p_.p * p_.big_b * srp + p_.q * srq) / r;
      const f64 dtail = -p_.sigma / ((r - rc) * (r - rc)) * tail;
      const f64 de2 = dpoly * tail + poly * dtail;
      energy += 0.5 * e2;
      fi += de2 * (nb.d / r);
    }
    forces[static_cast<std::size_t>(i)] += fi;
  }

  // Three-body: for each center i and unordered neighbor pair (j, k),
  //   h = lambda eps (cos - cos0)^2 g(rij) g(rik),  g(r) = exp(gamma sigma/(r - rc)).
  for (i64 i = 0; i < n; ++i) {
    const auto& list = nl.of(i);
    const i64 cnt = static_cast<i64>(list.size());
    for (i64 a = 0; a < cnt; ++a) {
      const Neighbor& nj = list[static_cast<std::size_t>(a)];
      if (nj.r >= rc - 1e-9) continue;
      const f64 gj = std::exp(p_.gamma * p_.sigma / (nj.r - rc));
      const f64 dgj =
          -p_.gamma * p_.sigma / ((nj.r - rc) * (nj.r - rc)) * gj;
      for (i64 b = a + 1; b < cnt; ++b) {
        const Neighbor& nk = list[static_cast<std::size_t>(b)];
        if (nk.r >= rc - 1e-9) continue;
        const f64 gk = std::exp(p_.gamma * p_.sigma / (nk.r - rc));
        const f64 dgk =
            -p_.gamma * p_.sigma / ((nk.r - rc) * (nk.r - rc)) * gk;
        const f64 inv_rj = 1.0 / nj.r;
        const f64 inv_rk = 1.0 / nk.r;
        const f64 cosq = nj.d.dot(nk.d) * inv_rj * inv_rk;
        const f64 dc = cosq - p_.cos_theta0;
        const f64 pref = p_.lambda * p_.epsilon;
        const f64 h = pref * dc * dc * gj * gk;
        energy += h;

        // dh/dcos, dh/drij, dh/drik.
        const f64 dh_dcos = 2.0 * pref * dc * gj * gk;
        const f64 dh_drj = pref * dc * dc * dgj * gk;
        const f64 dh_drk = pref * dc * dc * gj * dgk;

        // dcos/d(d_ij) = d_ik/(rj rk) - cos * d_ij / rj^2 (and j<->k).
        const Vec3 dcos_dj =
            nk.d * (inv_rj * inv_rk) - nj.d * (cosq * inv_rj * inv_rj);
        const Vec3 dcos_dk =
            nj.d * (inv_rj * inv_rk) - nk.d * (cosq * inv_rk * inv_rk);

        const Vec3 gj_vec = dh_dcos * dcos_dj + dh_drj * (nj.d * inv_rj);
        const Vec3 gk_vec = dh_dcos * dcos_dk + dh_drk * (nk.d * inv_rk);

        // d_ij = r_j(image) - r_i: grad wrt r_j is +gj_vec, wrt r_i is
        // -(gj_vec + gk_vec). Force = -grad.
        forces[static_cast<std::size_t>(nj.index)] -= gj_vec;
        forces[static_cast<std::size_t>(nk.index)] -= gk_vec;
        forces[static_cast<std::size_t>(i)] += gj_vec + gk_vec;
      }
    }
  }
  return energy;
}

}  // namespace fekf::md
