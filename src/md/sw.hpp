// Stillinger–Weber potential — the silicon teacher.
//
// Two-body term plus an angular three-body term that penalizes deviation
// from the tetrahedral angle; the canonical Si parameter set is the default.
// Both terms vanish smoothly at a*sigma through their exponential tails, so
// no extra switching is needed.
#pragma once

#include "md/potential.hpp"

namespace fekf::md {

class StillingerWeber final : public Potential {
 public:
  struct Params {
    f64 epsilon = 2.1683;      ///< eV
    f64 sigma = 2.0951;        ///< Å
    f64 a = 1.80;              ///< cutoff multiplier (rc = a * sigma)
    f64 lambda = 21.0;
    f64 gamma = 1.20;
    f64 big_a = 7.049556277;
    f64 big_b = 0.6022245584;
    f64 p = 4.0;
    f64 q = 0.0;
    f64 cos_theta0 = -1.0 / 3.0;
  };

  explicit StillingerWeber(Params p) : p_(p) {}
  /// Canonical Si parameter set.
  StillingerWeber();

  f64 cutoff() const override { return p_.a * p_.sigma; }

  f64 compute(std::span<const Vec3> positions, std::span<const i32> types,
              const Cell& cell, const NeighborList& nl,
              std::span<Vec3> forces) const override;

 private:
  Params p_;
};

}  // namespace fekf::md
