// Dynamical state of a simulated system plus the labelled-snapshot record
// that the data module turns into training sets.
#pragma once

#include <vector>

#include "md/cell.hpp"

namespace fekf::md {

struct System {
  Cell cell;
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  std::vector<i32> types;   ///< element type index per atom
  std::vector<f64> masses;  ///< amu, per atom

  i64 natoms() const { return static_cast<i64>(positions.size()); }
};

/// One labelled configuration: what the paper obtains from a DFT (PWmat)
/// calculation, here produced by a teacher potential.
struct Snapshot {
  Cell cell;
  std::vector<Vec3> positions;
  std::vector<i32> types;
  f64 energy = 0.0;          ///< total potential energy (eV)
  std::vector<Vec3> forces;  ///< eV/Å per atom

  i64 natoms() const { return static_cast<i64>(positions.size()); }
};

}  // namespace fekf::md
