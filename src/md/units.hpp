// Unit system: eV (energy), Å (length), fs (time), amu (mass), Kelvin.
// Velocities are Å/fs; forces eV/Å. Same conventions as DeePMD-kit.
#pragma once

#include "core/common.hpp"

namespace fekf::md {

/// Boltzmann constant in eV/K.
inline constexpr f64 kBoltzmann = 8.617333262e-5;

/// Conversion so that a = F/m comes out in Å/fs^2 when F is eV/Å and m is
/// amu: 1 eV/(Å·amu) = 9.64853...e-3 Å/fs^2.
inline constexpr f64 kForceToAccel = 9.648533212e-3;

/// Coulomb constant e^2/(4 pi eps0) in eV·Å.
inline constexpr f64 kCoulomb = 14.399645;

}  // namespace fekf::md
