// Minimal 3-vector in double precision for the MD substrate.
#pragma once

#include <cmath>

#include "core/common.hpp"

namespace fekf::md {

struct Vec3 {
  f64 x = 0.0, y = 0.0, z = 0.0;

  Vec3() = default;
  Vec3(f64 xx, f64 yy, f64 zz) : x(xx), y(yy), z(zz) {}

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(f64 s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(f64 s) const { return {x / s, y / s, z / s}; }
  Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  Vec3& operator*=(f64 s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  f64 dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  f64 norm2() const { return dot(*this); }
  f64 norm() const { return std::sqrt(norm2()); }
};

inline Vec3 operator*(f64 s, const Vec3& v) { return v * s; }

}  // namespace fekf::md
