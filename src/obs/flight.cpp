#include "obs/flight.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

#include "core/fault.hpp"
#include "obs/metrics.hpp"

namespace fekf::obs {

namespace {

/// Dumps closer together than this are dropped (except forced crash-path
/// dumps): chaos legs record FaultLog events at step rate, and one
/// black box per fault burst is worth more than a thrashing disk. The
/// first dump after arming always fires.
constexpr i64 kMinDumpGapNs = 50'000'000;  // 50 ms

/// Re-entrancy latch: an FEKF_CHECK failing *inside* a dump (e.g. the
/// metrics serializer) must not recurse into another dump.
std::atomic<bool> g_dumping{false};

struct DumpLatch {
  bool acquired;
  DumpLatch() : acquired(!g_dumping.exchange(true)) {}
  ~DumpLatch() {
    if (acquired) g_dumping.store(false);
  }
};

void fault_hook(const FaultEvent& event) {
  FlightRecorder::instance().dump("fault: " + event.kind + " -> " +
                                  event.action);
}

void failure_hook(const char* what) {
  // Runs inside fekf::fail just before the throw; the dump must stay
  // exception-free (it is: dump() reports write errors, never throws).
  FlightRecorder::instance().dump(std::string("check failed: ") + what);
}

}  // namespace

struct FlightRecorder::Impl {
  struct Ring {
    std::mutex mutex;
    std::vector<TraceEvent> slots;  ///< sized lazily to `capacity`
    i64 capacity = FlightRecorder::kDefaultCapacity;
    u64 count = 0;  ///< total appended; slots hold the newest min(count, cap)
  };

  mutable std::mutex registry_mutex;
  std::vector<std::unique_ptr<Ring>> rings;
  std::string path;
  i64 capacity = FlightRecorder::kDefaultCapacity;
  std::atomic<i64> last_dump_ns{-1};
  bool handlers_installed = false;
  std::terminate_handler previous_terminate = nullptr;

  Ring& register_ring() {
    std::lock_guard<std::mutex> lock(registry_mutex);
    rings.push_back(std::make_unique<Ring>());
    rings.back()->capacity = capacity;
    return *rings.back();
  }
};

namespace {

// Fatal-signal dump: restore the previous disposition and re-raise so the
// process still dies with the original signal (core dumps, CI reporting).
// Dumping from a signal handler is not strictly async-signal-safe; it is
// the standard crash-handler trade-off — the process is lost either way,
// and a truncated black box beats none.
struct PreviousSignal {
  int sig;
  void (*handler)(int) = SIG_DFL;
};
PreviousSignal g_previous_signals[] = {
    {SIGSEGV}, {SIGABRT}, {SIGBUS}, {SIGFPE}, {SIGILL}};

void crash_signal_handler(int sig) {
  FlightRecorder::instance().dump("fatal signal " + std::to_string(sig),
                                  /*force=*/true);
  for (const PreviousSignal& p : g_previous_signals) {
    if (p.sig == sig) {
      std::signal(sig, p.handler == SIG_IGN ? SIG_IGN : SIG_DFL);
      break;
    }
  }
  std::raise(sig);
}

void terminate_with_dump() {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.dump("std::terminate", /*force=*/true);
  std::abort();
}

}  // namespace

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked
  return *recorder;
}

void FlightRecorder::arm(const std::string& spec) {
  std::string path = spec;
  i64 capacity = kDefaultCapacity;
  const std::size_t comma = spec.find(',');
  if (comma != std::string::npos) {
    path = spec.substr(0, comma);
    std::string rest = spec.substr(comma + 1);
    while (!rest.empty()) {
      const std::size_t next = rest.find(',');
      const std::string token = rest.substr(0, next);
      rest = next == std::string::npos ? "" : rest.substr(next + 1);
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        throw Error("FEKF_FLIGHT: expected 'key=value' in token '" + token +
                    "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "events") {
        char* end = nullptr;
        const long long parsed = std::strtoll(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || parsed < 1) {
          throw Error("FEKF_FLIGHT: events= wants a positive integer, got '" +
                      value + "'");
        }
        capacity = static_cast<i64>(parsed);
      } else {
        throw Error("FEKF_FLIGHT: unknown qualifier '" + key +
                    "' (supported: events=)");
      }
    }
  }
  if (path.empty()) {
    throw Error("FEKF_FLIGHT: empty dump path");
  }
  arm_path(path, capacity);
}

void FlightRecorder::arm_path(const std::string& path, i64 capacity) {
  FEKF_CHECK(!path.empty(), "flight recorder needs a dump path");
  FEKF_CHECK(capacity >= 1, "flight ring capacity must be >= 1");
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    impl_->path = path;
    impl_->capacity = capacity;
    // Re-arming starts a fresh black box: rings adopt the new capacity on
    // their next append, and drop/dump counters restart from zero.
    for (auto& ring : impl_->rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      ring->slots.clear();
      ring->slots.shrink_to_fit();
      ring->capacity = capacity;
      ring->count = 0;
    }
    if (!impl_->handlers_installed) {
      impl_->handlers_installed = true;
      for (PreviousSignal& p : g_previous_signals) {
        const auto previous = std::signal(p.sig, &crash_signal_handler);
        p.handler = previous == SIG_ERR ? SIG_DFL : previous;
      }
      impl_->previous_terminate = std::set_terminate(&terminate_with_dump);
    }
  }
  dump_count_.store(0, std::memory_order_relaxed);
  impl_->last_dump_ns.store(-1, std::memory_order_relaxed);
  set_fault_hook(&fault_hook);
  set_failure_hook(&failure_hook);
  armed_.store(true, std::memory_order_relaxed);
  TraceRecorder::instance().set_flight_capture(true);
}

void FlightRecorder::disarm() {
  TraceRecorder::instance().set_flight_capture(false);
  armed_.store(false, std::memory_order_relaxed);
  set_fault_hook(nullptr);
  set_failure_hook(nullptr);
}

void FlightRecorder::append(const TraceEvent& event) {
  // The calling thread's ring. The thread_local only caches the pointer —
  // the (leaked) recorder owns the ring, so events recorded by a thread
  // that has since exited survive until the dump.
  thread_local Impl::Ring* local_ring = &impl_->register_ring();
  Impl::Ring& ring = *local_ring;
  std::lock_guard<std::mutex> lock(ring.mutex);
  const std::size_t capacity = static_cast<std::size_t>(ring.capacity);
  if (ring.slots.size() != capacity) {
    // One allocation at the thread's first post-arm event; every later
    // append overwrites in place (the zero-alloc steady state the
    // counting-allocator test pins down).
    ring.slots.assign(capacity, TraceEvent{});
  }
  ring.slots[static_cast<std::size_t>(ring.count % ring.slots.size())] = event;
  ++ring.count;
}

std::vector<TraceEvent> FlightRecorder::ring_snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  std::vector<TraceEvent> out;
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    if (ring->slots.empty()) continue;
    const u64 capacity = static_cast<u64>(ring->slots.size());
    const u64 held = std::min(ring->count, capacity);
    // Oldest-first within the ring: the slot after the newest write.
    const u64 start = ring->count >= capacity ? ring->count % capacity : 0;
    for (u64 i = 0; i < held; ++i) {
      out.push_back(ring->slots[static_cast<std::size_t>(
          (start + i) % capacity)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

u64 FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  u64 total = 0;
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const u64 capacity = static_cast<u64>(ring->slots.size());
    if (capacity > 0 && ring->count > capacity) {
      total += ring->count - capacity;
    }
  }
  return total;
}

u64 FlightRecorder::appended() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  u64 total = 0;
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->count;
  }
  return total;
}

bool FlightRecorder::dump(const std::string& reason, bool force) {
  if (!armed()) return false;
  DumpLatch latch;
  if (!latch.acquired) return false;
  const i64 now = TraceRecorder::now_ns();
  const i64 last = impl_->last_dump_ns.load(std::memory_order_relaxed);
  if (!force && last >= 0 && now - last < kMinDumpGapNs) return false;
  impl_->last_dump_ns.store(now, std::memory_order_relaxed);

  std::string path;
  {
    std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    path = impl_->path;
  }
  if (path.empty()) return false;

  const std::vector<TraceEvent> events = ring_snapshot();
  std::string extra = "\"dumpReason\":";
  detail::append_json_escaped(extra, reason.c_str());
  extra += ",\"flightDropped\":" + std::to_string(dropped());
  std::string metrics = MetricsRegistry::instance().json();
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  extra += ",\"metrics\":" + metrics;

  const std::string json = chrome_trace_json(events, extra);
  // No FEKF_CHECK here: dump() runs inside fail()'s notification hook and
  // from crash handlers — a failing write warns and returns.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[warn] flight dump: cannot open '%s'\n",
                 path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  dump_count_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) {
    MetricsRegistry::instance().counter("obs.flight_dumps").inc();
  }
  return true;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  for (auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->count = 0;
  }
  dump_count_.store(0, std::memory_order_relaxed);
  impl_->last_dump_ns.store(-1, std::memory_order_relaxed);
}

std::string FlightRecorder::path() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  return impl_->path;
}

}  // namespace fekf::obs
