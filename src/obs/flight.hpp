// Flight recorder: always-cheap post-mortem tracing (DESIGN.md §11).
//
// The runs that most need explaining — divergence rollbacks, chaos-leg
// faults, crashes — are exactly the ones a full FEKF_TRACE capture is too
// expensive to leave on for. The flight recorder keeps a bounded
// per-thread ring of the most recent spans/instants (a black box of the
// last N events per thread) and flushes it as a loadable Chrome trace,
// with an embedded metrics snapshot, whenever something goes wrong:
//
//   * every FaultLog::record — divergence sentinels rolling back,
//     injected faults, cluster evictions/joins (core/fault.hpp hook);
//   * every fekf::fail / FEKF_CHECK failure (core/common.hpp hook);
//   * fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) and
//     std::terminate — forced dumps, then the previous handler runs.
//
// Arming: FEKF_FLIGHT=<path>[,events=<n>] (default 8192 events/thread),
// or programmatically via arm()/arm_path(). Arming sets the kFlight bit
// in TraceRecorder's capture mask, so every existing instrumentation site
// feeds the rings with no new code; the disabled-path contract (one
// relaxed load, zero allocation) is unchanged because the sites gate on
// the same single atomic.
//
// Ring semantics: each thread's ring is sized once (one allocation at the
// thread's first event) and then overwrites oldest-first; the number of
// overwritten events is counted exactly and reported as "flightDropped"
// in the dump. Rings are owned by the (leaked) recorder, not the
// thread_local, so spans recorded by an exited pool worker or std::thread
// survive until the dump. Dumps are throttled (min ~50 ms apart) except
// on crash paths, and re-entrant dumps (an FEKF_CHECK failing inside a
// dump) are latched out.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fekf::obs {

class FlightRecorder {
 public:
  static constexpr i64 kDefaultCapacity = 8192;  ///< events per thread

  /// Process-wide recorder (leaked: rings outlive static destruction).
  static FlightRecorder& instance();

  /// Arm from an FEKF_FLIGHT spec: "<path>[,events=<n>]". Throws Error on
  /// a malformed spec.
  void arm(const std::string& spec);
  /// Arm with an explicit dump path and per-thread ring capacity.
  void arm_path(const std::string& path, i64 capacity = kDefaultCapacity);
  /// Stop capturing and unregister the fault/failure hooks. Signal and
  /// terminate handlers stay installed (they no-op while disarmed).
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Append one event to the calling thread's ring (called by
  /// TraceRecorder::record while the kFlight capture bit is set).
  void append(const TraceEvent& event);

  /// Flush the rings + a metrics snapshot to the armed path as a Chrome
  /// trace. Returns false when disarmed, throttled, or re-entered.
  /// `force` skips the throttle (crash paths).
  bool dump(const std::string& reason, bool force = false);

  /// All ring contents, oldest-first across threads (merged by
  /// timestamp) — what a dump would write.
  std::vector<TraceEvent> ring_snapshot() const;

  /// Exact number of ring events overwritten so far, over all threads.
  u64 dropped() const;
  /// Total events appended so far (dropped + retained).
  u64 appended() const;
  /// Completed dumps since arming (tests assert fault paths flushed).
  i64 dump_count() const { return dump_count_.load(std::memory_order_relaxed); }

  /// Drop all ring contents and reset drop/dump counters (rings keep
  /// their capacity; arming state is unchanged).
  void clear();

  /// The armed dump path (empty while disarmed).
  std::string path() const;

 private:
  FlightRecorder();

  std::atomic<bool> armed_{false};
  std::atomic<i64> dump_count_{0};

  struct Impl;
  Impl* impl_;  // never freed
};

}  // namespace fekf::obs
