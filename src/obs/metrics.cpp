#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

namespace fekf::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_number(std::string& out, f64 v) {
  char buf[32];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    // JSON has no inf/nan literals; emit null (empty-histogram min/max).
    std::snprintf(buf, sizeof(buf), "null");
  }
  out += buf;
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram()
    : min_bits_(std::bit_cast<u64>(std::numeric_limits<f64>::infinity())),
      max_bits_(std::bit_cast<u64>(-std::numeric_limits<f64>::infinity())) {}

void Histogram::record(f64 seconds) {
  int index = 0;
  if (seconds > 0.0 && std::isfinite(seconds)) {
    // ilogb(v) = floor(log2 v); samples exactly on a power of two belong
    // to the bucket they bound, hence the exact-power adjustment.
    int e = std::ilogb(seconds);
    if (std::exp2(e) == seconds) --e;
    index = e + 1 - kMinExp;
    if (index < 1) index = 0;
    if (index > kBuckets - 1) index = kBuckets - 1;
  } else if (!std::isfinite(seconds) && seconds > 0.0) {
    index = kBuckets - 1;
  }
  buckets_[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_f64_add(sum_bits_, seconds);
  detail::atomic_f64_min(min_bits_, seconds);
  detail::atomic_f64_max(max_bits_, seconds);
}

f64 Histogram::min() const {
  return std::bit_cast<f64>(min_bits_.load(std::memory_order_relaxed));
}

f64 Histogram::max() const {
  return std::bit_cast<f64>(max_bits_.load(std::memory_order_relaxed));
}

f64 Histogram::mean() const {
  const i64 n = count();
  return n > 0 ? sum() / static_cast<f64>(n) : 0.0;
}

f64 Histogram::bucket_upper_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<f64>::infinity();
  return std::exp2(static_cast<f64>(kMinExp + i));
}

f64 Histogram::percentile(f64 q) const {
  const i64 n = count();
  if (n <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in [1, n]; walk the cumulative bucket counts to find the
  // bucket that holds it, then place the rank linearly inside the
  // bucket's [lower, upper] value range. Log2 buckets make this an upper
  // bound on the true quantile error of one octave; the min/max clamp
  // restores exactness at the tails.
  const f64 rank = q * static_cast<f64>(n);
  i64 cumulative = 0;
  f64 value = max();
  for (int b = 0; b < kBuckets; ++b) {
    const i64 in_bucket = bucket_count(b);
    if (in_bucket == 0) continue;
    if (static_cast<f64>(cumulative + in_bucket) >= rank) {
      if (b == kBuckets - 1) {
        value = max();  // overflow bin has no finite upper bound
      } else {
        const f64 upper = bucket_upper_bound(b);
        const f64 lower = b == 0 ? 0.0 : bucket_upper_bound(b - 1);
        const f64 frac =
            (rank - static_cast<f64>(cumulative)) / static_cast<f64>(in_bucket);
        value = lower + frac * (upper - lower);
      }
      break;
    }
    cumulative += in_bucket;
  }
  return std::min(std::max(value, min()), max());
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(std::bit_cast<u64>(0.0), std::memory_order_relaxed);
  min_bits_.store(std::bit_cast<u64>(std::numeric_limits<f64>::infinity()),
                  std::memory_order_relaxed);
  max_bits_.store(std::bit_cast<u64>(-std::numeric_limits<f64>::infinity()),
                  std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: element addresses are stable across inserts, which is
  // the "hold the reference" contract the hot paths rely on.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->histograms.size());
  for (const auto& [name, hist] : impl_->histograms) names.push_back(name);
  return names;
}

std::string MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : impl_->counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : impl_->gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    append_number(out, gauge->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : impl_->histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(hist->count()) + ", \"sum\": ";
    append_number(out, hist->sum());
    out += ", \"min\": ";
    append_number(out, hist->count() > 0 ? hist->min() : 0.0);
    out += ", \"max\": ";
    append_number(out, hist->count() > 0 ? hist->max() : 0.0);
    out += ", \"mean\": ";
    append_number(out, hist->mean());
    out += ", \"p50\": ";
    append_number(out, hist->percentile(0.50));
    out += ", \"p90\": ";
    append_number(out, hist->percentile(0.90));
    out += ", \"p99\": ";
    append_number(out, hist->percentile(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      // Keep the dump compact: only occupied buckets are listed.
      if (hist->bucket_count(b) == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": ";
      append_number(out, Histogram::bucket_upper_bound(b));
      out += ", \"count\": " + std::to_string(hist->bucket_count(b)) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::compact_json(f64 t_s) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::string out = "{\"t_s\": ";
  append_number(out, t_s);
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : impl_->counters) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": " + std::to_string(counter->value());
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : impl_->gauges) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_number(out, gauge->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : impl_->histograms) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(hist->count()) + ", \"sum\": ";
    append_number(out, hist->sum());
    out += ", \"p50\": ";
    append_number(out, hist->percentile(0.50));
    out += ", \"p90\": ";
    append_number(out, hist->percentile(0.90));
    out += ", \"p99\": ";
    append_number(out, hist->percentile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FEKF_CHECK(f != nullptr, "cannot open metrics file '" + path + "'");
  const std::string body = json();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, counter] : impl_->counters) counter->reset();
  for (auto& [name, gauge] : impl_->gauges) gauge->reset();
  for (auto& [name, hist] : impl_->histograms) hist->reset();
}

}  // namespace fekf::obs
