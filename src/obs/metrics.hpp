// Metrics registry (DESIGN.md §11 "Observability").
//
// Named counters, gauges, and log-scale latency histograms, safe to update
// from any thread-pool worker. Counters are relaxed atomics (exact at any
// thread width — the test suite asserts exactness at width 4); histograms
// bucket on powers of two of seconds so one instrument spans nanosecond
// kernels to multi-second epochs; sums/min/max use CAS loops over bit-cast
// doubles, so they need no C++20 atomic-float support from the toolchain.
//
// Instrument references returned by the registry are stable for the
// process lifetime — hot paths look an instrument up once and keep the
// reference; lookups themselves take a mutex and may allocate.
//
// Recording is gated on metrics_enabled() (set by FEKF_METRICS=<path>,
// which also dumps the registry as JSON at process exit, or
// programmatically); everything is off by default.
#pragma once

#include <atomic>
#include <bit>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace fekf::obs {

/// Global recording gate; FEKF_METRICS enables it at startup.
bool metrics_enabled();
void set_metrics_enabled(bool on);

namespace detail {

/// value <- value + delta on a bit-cast atomic double (portable fetch_add).
inline void atomic_f64_add(std::atomic<u64>& bits, f64 delta) {
  u64 old_bits = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old_bits, std::bit_cast<u64>(std::bit_cast<f64>(old_bits) + delta),
      std::memory_order_relaxed)) {
  }
}

inline void atomic_f64_min(std::atomic<u64>& bits, f64 v) {
  u64 old_bits = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<f64>(old_bits) > v &&
         !bits.compare_exchange_weak(old_bits, std::bit_cast<u64>(v),
                                     std::memory_order_relaxed)) {
  }
}

inline void atomic_f64_max(std::atomic<u64>& bits, f64 v) {
  u64 old_bits = bits.load(std::memory_order_relaxed);
  while (std::bit_cast<f64>(old_bits) < v &&
         !bits.compare_exchange_weak(old_bits, std::bit_cast<u64>(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic integer counter. inc() is one relaxed fetch_add: exact under
/// any interleaving.
class Counter {
 public:
  void inc(i64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  i64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<i64> value_{0};
};

/// Last-written double value (e.g. the current loss EMA).
class Gauge {
 public:
  void set(f64 v) {
    bits_.store(std::bit_cast<u64>(v), std::memory_order_relaxed);
  }
  void add(f64 v) { detail::atomic_f64_add(bits_, v); }
  f64 value() const {
    return std::bit_cast<f64>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<u64> bits_{std::bit_cast<u64>(0.0)};
};

/// Log-scale latency histogram over seconds. Bucket i (1 <= i < kBuckets-1)
/// holds samples with 2^(kMinExp+i-1) < v <= 2^(kMinExp+i); bucket 0 is the
/// underflow bin (v <= 2^kMinExp, including non-positive samples) and the
/// last bucket is the overflow bin. 2^-30 s ≈ 1 ns .. 2^8 s = 256 s covers
/// every duration this codebase produces.
class Histogram {
 public:
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 8;
  static constexpr int kBuckets = kMaxExp - kMinExp + 2;

  void record(f64 seconds);

  i64 count() const { return count_.load(std::memory_order_relaxed); }
  f64 sum() const {
    return std::bit_cast<f64>(sum_bits_.load(std::memory_order_relaxed));
  }
  f64 min() const;  ///< +inf when empty
  f64 max() const;  ///< -inf when empty
  f64 mean() const;
  i64 bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (+inf for the overflow bin).
  static f64 bucket_upper_bound(int i);

  /// Estimated quantile (q in [0, 1]) by linear interpolation inside the
  /// log2 bucket holding the target rank, clamped to the exact observed
  /// [min, max] (so p0/p100 are exact and a single-sample histogram
  /// returns that sample). Overflow-bin ranks return max(); an empty
  /// histogram returns 0.
  f64 percentile(f64 q) const;

  void reset();

 private:
  std::atomic<i64> buckets_[kBuckets] = {};
  std::atomic<i64> count_{0};
  std::atomic<u64> sum_bits_{std::bit_cast<u64>(0.0)};
  std::atomic<u64> min_bits_;
  std::atomic<u64> max_bits_;

 public:
  Histogram();
};

class MetricsRegistry {
 public:
  /// Process-wide registry (leaked: instruments stay valid through static
  /// destruction, when the env-driven exporter reads them).
  static MetricsRegistry& instance();

  /// Find-or-create by name. References are stable forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted instrument names per kind (tests / tooling / the
  /// docs/OBSERVABILITY.md drift gate).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// The whole registry as a JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///    {"count", "sum", "min", "max", "mean", "p50", "p90", "p99",
  ///     "buckets": [{"le", n}...]}}}
  std::string json() const;
  void write_json(const std::string& path) const;

  /// One-line JSON snapshot for the telemetry sampler's JSONL stream:
  /// histograms carry count/sum/p50/p90/p99 instead of raw buckets, and a
  /// leading "t_s" stamps the sample time.
  std::string compact_json(f64 t_s) const;

  /// Zero every instrument (registrations survive).
  void reset();

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

}  // namespace fekf::obs
