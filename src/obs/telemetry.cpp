#include "obs/telemetry.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fekf::obs {

struct TelemetrySampler::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread worker;
  std::FILE* file = nullptr;
  f64 interval_s = TelemetrySampler::kDefaultIntervalS;
  bool running = false;
  bool stopping = false;
  std::atomic<i64> samples{0};

  /// One sample = one flushed line, so the file is consumable mid-run.
  void write_sample() {
    const f64 t_s = static_cast<f64>(TraceRecorder::now_ns()) * 1e-9;
    const std::string line = MetricsRegistry::instance().compact_json(t_s);
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    std::fflush(file);
    samples.fetch_add(1, std::memory_order_relaxed);
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::duration<f64>(interval_s),
                  [&] { return stopping; });
      if (stopping) break;
      write_sample();
    }
  }
};

TelemetrySampler::TelemetrySampler() : impl_(new Impl) {}

TelemetrySampler& TelemetrySampler::instance() {
  static TelemetrySampler* sampler = new TelemetrySampler();  // leaked
  return *sampler;
}

void TelemetrySampler::start(const std::string& path, f64 interval_s) {
  FEKF_CHECK(interval_s > 0.0, "telemetry interval must be > 0");
  std::lock_guard<std::mutex> lock(impl_->mutex);
  FEKF_CHECK(!impl_->running, "telemetry sampler already running");
  impl_->file = std::fopen(path.c_str(), "w");
  FEKF_CHECK(impl_->file != nullptr,
             "cannot open telemetry file '" + path + "'");
  impl_->interval_s = interval_s;
  impl_->stopping = false;
  impl_->samples.store(0, std::memory_order_relaxed);
  set_metrics_enabled(true);
  impl_->running = true;
  impl_->worker = std::thread([this] { impl_->loop(); });
}

void TelemetrySampler::start_from_spec(const std::string& spec) {
  std::string path = spec;
  f64 interval_s = kDefaultIntervalS;
  const std::size_t comma = spec.find(',');
  if (comma != std::string::npos) {
    path = spec.substr(0, comma);
    std::string rest = spec.substr(comma + 1);
    while (!rest.empty()) {
      const std::size_t next = rest.find(',');
      const std::string token = rest.substr(0, next);
      rest = next == std::string::npos ? "" : rest.substr(next + 1);
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        throw Error("FEKF_TELEMETRY: expected 'key=value' in token '" +
                    token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "interval") {
        char* end = nullptr;
        const f64 ms = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0' || !(ms > 0.0)) {
          throw Error(
              "FEKF_TELEMETRY: interval= wants positive milliseconds, "
              "got '" +
              value + "'");
        }
        interval_s = ms * 1e-3;
      } else {
        throw Error("FEKF_TELEMETRY: unknown qualifier '" + key +
                    "' (supported: interval=)");
      }
    }
  }
  if (path.empty()) {
    throw Error("FEKF_TELEMETRY: empty output path");
  }
  start(path, interval_s);
}

void TelemetrySampler::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->running) return;
    impl_->stopping = true;
    worker = std::move(impl_->worker);
  }
  impl_->cv.notify_all();
  worker.join();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->write_sample();  // final state, so short runs never export empty
    std::fclose(impl_->file);
    impl_->file = nullptr;
    impl_->running = false;
  }
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->running;
}

i64 TelemetrySampler::samples() const {
  return impl_->samples.load(std::memory_order_relaxed);
}

}  // namespace fekf::obs
