// Live telemetry export: periodic MetricsRegistry snapshots as JSONL
// (DESIGN.md §11).
//
// FEKF_TRACE/FEKF_METRICS produce one blob at clean process exit — useless
// for watching a live trainer converge or a serving queue back up, and
// absent entirely if the process dies. The telemetry sampler appends one
// compact JSON line per interval to an append-only file:
//
//   {"t_s": 12.5, "counters": {"train.steps": 840, ...},
//    "gauges": {"train.loss_ema": ..., "serve.queue_depth": ..., ...},
//    "histograms": {"serve.request_latency_seconds":
//        {"count": n, "sum": s, "p50": ..., "p90": ..., "p99": ...}, ...}}
//
// so step rate, loss, arena bytes, queue depths, and CommLedger fields
// become greppable time-series (`jq` straight off the file, even while
// the process runs — each line is flushed).
//
// Activation: FEKF_TELEMETRY=<path>[,interval=<ms>] (default 250 ms), or
// start() programmatically. Arming also enables metrics recording. The
// sampler thread is joined — and a final sample appended — by stop(),
// which the obs exit exporter invokes before writing the end-of-run
// blobs; it is safe to call from any state.
#pragma once

#include <string>

#include "core/common.hpp"

namespace fekf::obs {

class TelemetrySampler {
 public:
  static constexpr f64 kDefaultIntervalS = 0.25;

  /// Process-wide sampler (leaked state; the thread is joined by stop()).
  static TelemetrySampler& instance();

  /// Start sampling to `path` every `interval_s` seconds. Enables metrics
  /// recording. Throws if already running or the file cannot be opened.
  void start(const std::string& path, f64 interval_s = kDefaultIntervalS);

  /// Parse "<path>[,interval=<ms>]" (the FEKF_TELEMETRY grammar) and
  /// start. Throws Error on a malformed spec.
  void start_from_spec(const std::string& spec);

  /// Append one final sample, join the sampler thread. Idempotent; no-op
  /// when not running.
  void stop();

  bool running() const;

  /// Samples written since start() (tests poll this to avoid sleeping).
  i64 samples() const;

 private:
  TelemetrySampler();
  struct Impl;
  Impl* impl_;  // never freed
};

}  // namespace fekf::obs
