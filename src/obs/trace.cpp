#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "core/env.hpp"
#include "core/log.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace fekf::obs {

std::atomic<u32> TraceRecorder::capture_{0};
std::atomic<bool> TraceRecorder::kernel_spans_{false};

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void append_json_number(std::string& out, f64 v) {
  // JSON has no NaN/Infinity literals; args carrying a diverged value
  // (e.g. a NaN ABE on a rolled-back step) export as null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

namespace detail {

/// JSON string escaper for names/categories/keys (all repo-controlled
/// literals, but exported files must stay valid for any input).
void append_json_escaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace detail

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::string& extra_json) {
  std::string out;
  out.reserve(events.size() * 120 + extra_json.size() + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":";
    detail::append_json_escaped(out, e.name);
    out += ",\"cat\":";
    detail::append_json_escaped(out, e.cat);
    const bool complete = e.dur_ns >= 0;
    char buf[64];
    if (e.flow != 0) {
      // Flow events bind by id: "s" opens the arrow at the producer's
      // slice, "f" with bp:"e" closes it at the consumer's.
      std::snprintf(buf, sizeof(buf), ",\"ph\":\"%s\",\"id\":%llu",
                    e.flow == 1 ? "s" : "f",
                    static_cast<unsigned long long>(e.flow_id));
      out += buf;
      if (e.flow != 1) out += ",\"bp\":\"e\"";
    } else {
      out += complete ? ",\"ph\":\"X\"" : ",\"ph\":\"i\",\"s\":\"t\"";
    }
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                  static_cast<f64>(e.ts_ns) * 1e-3);
    out += buf;
    if (complete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<f64>(e.dur_ns) * 1e-3);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%d",
                  static_cast<int>(e.tid));
    out += buf;
    if (e.nargs > 0) {
      out += ",\"args\":{";
      for (i32 a = 0; a < e.nargs; ++a) {
        if (a > 0) out += ",";
        detail::append_json_escaped(out, e.arg_keys[a]);
        out += ":";
        append_json_number(out, e.arg_vals[a]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]";
  if (!extra_json.empty()) {
    out += ",";
    out += extra_json;
  }
  out += ",\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

struct TraceRecorder::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  i32 tid = 0;
};

struct TraceRecorder::Impl {
  mutable std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> live;
  std::vector<TraceEvent> retired;
  i32 next_tid = 0;
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {
  trace_epoch();  // pin the time base at recorder construction
}

TraceRecorder& TraceRecorder::instance() {
  // Leaked singleton: pool workers retire their buffers during static
  // destruction, after which the env-driven exporter still reads them —
  // a destructed recorder would turn both into use-after-free.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::set_enabled(bool on) {
  if (on) {
    capture_.fetch_or(kTrace, std::memory_order_relaxed);
  } else {
    capture_.fetch_and(~kTrace, std::memory_order_relaxed);
  }
}

void TraceRecorder::set_flight_capture(bool on) {
  if (on) {
    capture_.fetch_or(kFlight, std::memory_order_relaxed);
  } else {
    capture_.fetch_and(~kFlight, std::memory_order_relaxed);
  }
}

void TraceRecorder::set_kernel_spans(bool on) {
  kernel_spans_.store(on, std::memory_order_relaxed);
}

i64 TraceRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

namespace {

/// Owns the calling thread's buffer registration; retires the buffer's
/// events into the recorder when the thread exits.
struct ThreadBufferOwner {
  TraceRecorder::ThreadBuffer* buffer;
  ThreadBufferOwner() : buffer(&TraceRecorder::instance().register_thread()) {}
  ~ThreadBufferOwner() { TraceRecorder::instance().retire_thread(*buffer); }
};

TraceRecorder::ThreadBuffer& local_buffer() {
  thread_local ThreadBufferOwner owner;
  return *owner.buffer;
}

}  // namespace

TraceRecorder::ThreadBuffer& TraceRecorder::register_thread() {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  impl_->live.push_back(std::make_unique<ThreadBuffer>());
  impl_->live.back()->tid = impl_->next_tid++;
  return *impl_->live.back();
}

void TraceRecorder::retire_thread(ThreadBuffer& buffer) {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  {
    std::lock_guard<std::mutex> buf_lock(buffer.mutex);
    impl_->retired.insert(impl_->retired.end(), buffer.events.begin(),
                          buffer.events.end());
    buffer.events.clear();
  }
  // The ThreadBuffer itself stays in `live` (it keeps its tid); only its
  // events move, so a re-registered id is never reused.
}

void TraceRecorder::record(const TraceEvent& event) {
  const u32 capture = capture_.load(std::memory_order_relaxed);
  if (capture == 0) return;
  ThreadBuffer& buffer = local_buffer();
  TraceEvent copy = event;
  copy.tid = buffer.tid;
  if ((capture & kTrace) != 0) {
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(copy);
  }
  if ((capture & kFlight) != 0) {
    FlightRecorder::instance().append(copy);
  }
}

void TraceRecorder::instant(const char* name, const char* cat) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  record(e);
}

void TraceRecorder::instant(const char* name, const char* cat,
                            const char* key, f64 value) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  e.nargs = 1;
  e.arg_keys[0] = key;
  e.arg_vals[0] = value;
  record(e);
}

void TraceRecorder::instant(const char* name, const char* cat,
                            const char* key0, f64 val0, const char* key1,
                            f64 val1) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  e.nargs = 2;
  e.arg_keys[0] = key0;
  e.arg_vals[0] = val0;
  e.arg_keys[1] = key1;
  e.arg_vals[1] = val1;
  record(e);
}

void TraceRecorder::flow(const char* name, const char* cat, u64 id,
                         bool start) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = now_ns();
  e.flow = start ? 1 : 2;
  e.flow_id = id;
  record(e);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  std::vector<TraceEvent> out = impl_->retired;
  for (const auto& buffer : impl_->live) {
    std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

i64 TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  i64 n = static_cast<i64>(impl_->retired.size());
  for (const auto& buffer : impl_->live) {
    std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    n += static_cast<i64>(buffer->events.size());
  }
  return n;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  impl_->retired.clear();
  for (const auto& buffer : impl_->live) {
    std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::map<std::string, f64> TraceRecorder::span_seconds_by_name() const {
  std::map<std::string, f64> totals;
  for (const TraceEvent& e : snapshot()) {
    if (e.dur_ns >= 0) {
      totals[e.name] += static_cast<f64>(e.dur_ns) * 1e-9;
    }
  }
  return totals;
}

std::string TraceRecorder::chrome_trace_json() const {
  return obs::chrome_trace_json(snapshot());
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  FEKF_CHECK(f != nullptr, "cannot open trace file '" + path + "'");
  const std::string json = chrome_trace_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Environment activation: FEKF_TRACE=<path> enables tracing at startup and
// writes the Chrome trace at process exit; FEKF_METRICS=<path> does the
// same for the metrics registry dump; FEKF_TRACE_KERNELS=1 adds per-kernel
// spans on top of capturing; FEKF_FLIGHT arms the flight recorder and
// FEKF_TELEMETRY starts the JSONL sampler (obs/flight.hpp,
// obs/telemetry.hpp). Construction order is safe because activation
// touches instance() (leaked) before anything records.
//
// The exporter runs from std::atexit over intentionally-leaked state — an
// idempotent latch, never a static destructor — so late pool-worker
// teardown (whose thread_local retirement runs after function-local
// statics are destroyed) and crash-path flight dumps can never race a
// destructed path string. PR 4's workspace registry adopted the same
// immortal pattern for the same reason.
// ---------------------------------------------------------------------------

namespace {

struct ActivationState {
  std::string trace_path;
  std::string metrics_path;
  std::atomic<bool> exported{false};
};

ActivationState* activation_state() {
  static ActivationState* state = new ActivationState();  // leaked
  return state;
}

void fekf_obs_export_at_exit() {
  ActivationState* state = activation_state();
  if (state->exported.exchange(true, std::memory_order_acq_rel)) return;
  // Best-effort export: a failing write must not escape process teardown.
  try {
    TelemetrySampler::instance().stop();  // final sample + join
    if (!state->trace_path.empty()) {
      TraceRecorder::instance().write_chrome_trace(state->trace_path);
    }
    if (!state->metrics_path.empty()) {
      MetricsRegistry::instance().write_json(state->metrics_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[warn] observability export failed: %s\n",
                 e.what());
  }
}

struct EnvActivation {
  EnvActivation() {
    ActivationState* state = activation_state();
    bool want_export = false;
    if (const char* path = env::get("FEKF_TRACE")) {
      if (path[0] != '\0') {
        state->trace_path = path;
        TraceRecorder::instance().set_enabled(true);
        want_export = true;
      }
    }
    if (const char* on = env::get("FEKF_TRACE_KERNELS")) {
      if (on[0] != '\0' && !(on[0] == '0' && on[1] == '\0')) {
        TraceRecorder::instance().set_kernel_spans(true);
      }
    }
    if (const char* path = env::get("FEKF_METRICS")) {
      if (path[0] != '\0') {
        state->metrics_path = path;
        set_metrics_enabled(true);
        want_export = true;
      }
    }
    if (const char* spec = env::get("FEKF_FLIGHT")) {
      if (spec[0] != '\0') {
        FlightRecorder::instance().arm(spec);
      }
    }
    if (const char* spec = env::get("FEKF_TELEMETRY")) {
      if (spec[0] != '\0') {
        TelemetrySampler::instance().start_from_spec(spec);
        want_export = true;  // stop() flushes the final sample
      }
    }
    if (want_export) {
      std::atexit(fekf_obs_export_at_exit);
    }
  }
};

const EnvActivation g_env_activation;

}  // namespace

}  // namespace fekf::obs
