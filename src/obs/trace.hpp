// Structured tracing (DESIGN.md §11 "Observability").
//
// The paper's Figure 7 evidence is *attribution*: which phase of an
// iteration the time goes to (7c) and which kernels the launches go to
// (7b). TraceRecorder collects that attribution as spans — RAII windows
// with steady-clock timestamps, a category, and up to two numeric
// arguments — into thread-local buffers, and exports the Chrome
// `trace_event` JSON format, loadable in chrome://tracing or Perfetto.
//
// Two sinks share the instrumentation sites, selected by a single capture
// bitmask so the disabled-path cost never grows with the sink count:
//  * the trace sink (FEKF_TRACE): unbounded thread-local buffers, full
//    trace written at process exit — PR 3's original behavior;
//  * the flight sink (FEKF_FLIGHT, obs/flight.hpp): bounded per-thread
//    rings holding the last N events, flushed post-mortem by fault and
//    crash handlers.
//
// Cost model (the contract every instrumentation site relies on):
//  * disabled (the default): constructing a ScopedSpan is ONE relaxed
//    atomic load and no allocation — the step hot path stays allocation-
//    free, verified by a counting-operator-new test in tests/test_obs.cpp.
//  * enabled: two steady_clock reads plus one append to a thread-local
//    buffer under an uncontended per-thread mutex (~100 ns/span). Kernel-
//    level spans (one per primitive kernel launch) are an additional
//    opt-in (FEKF_TRACE_KERNELS) on top of capturing because they run at
//    ~100x the frequency of phase spans.
//
// Activation: set FEKF_TRACE=<path> in the environment — tracing is
// enabled at startup and the Chrome trace is written to <path> at process
// exit (via an atexit exporter on intentionally-leaked state, so static
// destruction can never race or dangle it). Benches and tests can also
// drive the recorder programmatically (set_enabled / snapshot /
// write_chrome_trace).
//
// Thread ids are stable: each OS thread is assigned a small dense id the
// first time it records, and keeps it for the life of the process (pool
// workers persist, so phase spans land on the same tracks step after
// step). Buffers of exited threads are retired into the recorder, so no
// event is lost.
#pragma once

#include <map>
#include <string>
#include <vector>

#include <atomic>

#include "core/common.hpp"

namespace fekf::obs {

/// One trace event. `name` and `cat` must be string literals (or otherwise
/// outlive the recorder): events store the pointers, never copies, so the
/// enabled path does not allocate per event either.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  i64 ts_ns = 0;    ///< start, steady-clock ns since the recorder epoch
  i64 dur_ns = -1;  ///< span duration; < 0 marks an instant or flow event
  i32 tid = 0;      ///< dense stable thread id (main thread records first)
  i32 flow = 0;     ///< 0: none, 1: flow start ("s"), 2: flow finish ("f")
  u64 flow_id = 0;  ///< flow binding id (request id for serve.request)
  i32 nargs = 0;
  const char* arg_keys[2] = {nullptr, nullptr};
  f64 arg_vals[2] = {0.0, 0.0};
};

/// Chrome trace_event JSON for an arbitrary event list. `extra_json`, when
/// non-empty, is spliced verbatim as additional top-level members (must be
/// valid `"key":value` JSON text) — the flight recorder embeds the dump
/// reason, drop count, and a metrics snapshot this way.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::string& extra_json = {});

namespace detail {
/// JSON string escaper shared by the trace/flight exporters.
void append_json_escaped(std::string& out, const char* s);
}  // namespace detail

class TraceRecorder {
 public:
  /// Capture-bitmask bits. kTrace routes events to the unbounded trace
  /// buffers; kFlight routes them to the flight recorder's rings.
  static constexpr u32 kTrace = 1u;
  static constexpr u32 kFlight = 2u;

  /// Process-wide recorder. First call pins the time epoch.
  static TraceRecorder& instance();

  /// True when any sink captures — the ONE relaxed load every span site
  /// pays while disabled.
  static bool capturing() {
    return capture_.load(std::memory_order_relaxed) != 0;
  }

  /// True when the trace sink (unbounded buffers / exit export) is on.
  static bool enabled() {
    return (capture_.load(std::memory_order_relaxed) & kTrace) != 0;
  }
  void set_enabled(bool on);

  /// Flight-sink routing (driven by FlightRecorder::arm/disarm).
  static bool flight_enabled() {
    return (capture_.load(std::memory_order_relaxed) & kFlight) != 0;
  }
  void set_flight_capture(bool on);

  /// Kernel-launch spans: only honored while some sink captures.
  static bool kernel_spans_enabled() {
    return kernel_spans_.load(std::memory_order_relaxed) && capturing();
  }
  void set_kernel_spans(bool on);

  /// Steady-clock nanoseconds since the recorder epoch.
  static i64 now_ns();

  /// Append a finished event to the capturing sinks (no-op while
  /// disabled, so late ~ScopedSpan around a set_enabled(false) is safe).
  void record(const TraceEvent& event);

  /// Record an instant event ("i" phase) with optional numeric arguments.
  void instant(const char* name, const char* cat);
  void instant(const char* name, const char* cat, const char* key, f64 value);
  void instant(const char* name, const char* cat, const char* key0, f64 val0,
               const char* key1, f64 val1);

  /// Record a flow event ("s" start / "f" finish with the same id). Flow
  /// events bind to the enclosing slice on their thread, linking e.g. a
  /// request's enqueue span to the batch span that executed it.
  void flow(const char* name, const char* cat, u64 id, bool start);

  /// Copy of every trace-sink event recorded so far (live buffers +
  /// retired threads). Flight-ring contents are NOT included — see
  /// FlightRecorder::ring_snapshot().
  std::vector<TraceEvent> snapshot() const;
  i64 event_count() const;

  /// Drop all trace-sink events (thread ids are kept).
  void clear();

  /// Total seconds of complete spans, grouped by event name — the
  /// span-derived Figure 7(c) phase split used by bench_fig7bc_kernels.
  std::map<std::string, f64> span_seconds_by_name() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  // Internal: thread-buffer registry (used by the thread_local owner).
  struct ThreadBuffer;
  ThreadBuffer& register_thread();
  void retire_thread(ThreadBuffer& buffer);

 private:
  TraceRecorder();

  static std::atomic<u32> capture_;
  static std::atomic<bool> kernel_spans_;

  struct Impl;
  Impl* impl_;  // never freed: outlives static destruction races
};

/// RAII span. Passing a null name constructs an inert span (used by
/// conditional sites such as kernel launches). Arguments attach to the
/// span's "args" object in the export.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "fekf") {
    if (name != nullptr && TraceRecorder::capturing()) {
      active_ = true;
      event_.name = name;
      event_.cat = cat;
      event_.ts_ns = TraceRecorder::now_ns();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      event_.dur_ns = TraceRecorder::now_ns() - event_.ts_ns;
      TraceRecorder::instance().record(event_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a numeric argument (up to two; extras are dropped).
  void arg(const char* key, f64 value) {
    if (active_ && event_.nargs < 2) {
      event_.arg_keys[event_.nargs] = key;
      event_.arg_vals[event_.nargs] = value;
      ++event_.nargs;
    }
  }

  bool active() const { return active_; }

 private:
  TraceEvent event_;
  bool active_ = false;
};

}  // namespace fekf::obs
