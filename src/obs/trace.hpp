// Structured tracing (DESIGN.md §11 "Observability").
//
// The paper's Figure 7 evidence is *attribution*: which phase of an
// iteration the time goes to (7c) and which kernels the launches go to
// (7b). TraceRecorder collects that attribution as spans — RAII windows
// with steady-clock timestamps, a category, and up to two numeric
// arguments — into thread-local buffers, and exports the Chrome
// `trace_event` JSON format, loadable in chrome://tracing or Perfetto.
//
// Cost model (the contract every instrumentation site relies on):
//  * disabled (the default): constructing a ScopedSpan is ONE relaxed
//    atomic load and no allocation — the step hot path stays allocation-
//    free, verified by a counting-operator-new test in tests/test_obs.cpp.
//  * enabled: two steady_clock reads plus one append to a thread-local
//    buffer under an uncontended per-thread mutex (~100 ns/span). Kernel-
//    level spans (one per primitive kernel launch) are an additional
//    opt-in (FEKF_TRACE_KERNELS) on top of tracing because they run at
//    ~100x the frequency of phase spans.
//
// Activation: set FEKF_TRACE=<path> in the environment — tracing is
// enabled at startup and the Chrome trace is written to <path> at process
// exit. Benches and tests can also drive the recorder programmatically
// (set_enabled / snapshot / write_chrome_trace).
//
// Thread ids are stable: each OS thread is assigned a small dense id the
// first time it records, and keeps it for the life of the process (pool
// workers persist, so phase spans land on the same tracks step after
// step). Buffers of exited threads are retired into the recorder, so no
// event is lost.
#pragma once

#include <map>
#include <string>
#include <vector>

#include <atomic>

#include "core/common.hpp"

namespace fekf::obs {

/// One trace event. `name` and `cat` must be string literals (or otherwise
/// outlive the recorder): events store the pointers, never copies, so the
/// enabled path does not allocate per event either.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  i64 ts_ns = 0;    ///< start, steady-clock ns since the recorder epoch
  i64 dur_ns = -1;  ///< span duration; < 0 marks an instant event
  i32 tid = 0;      ///< dense stable thread id (main thread records first)
  i32 nargs = 0;
  const char* arg_keys[2] = {nullptr, nullptr};
  f64 arg_vals[2] = {0.0, 0.0};
};

class TraceRecorder {
 public:
  /// Process-wide recorder. First call pins the time epoch.
  static TraceRecorder& instance();

  /// Fast global gate, read (relaxed) by every span site.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on);

  /// Kernel-launch spans: only honored while tracing is enabled.
  static bool kernel_spans_enabled() {
    return kernel_spans_.load(std::memory_order_relaxed) && enabled();
  }
  void set_kernel_spans(bool on);

  /// Steady-clock nanoseconds since the recorder epoch.
  static i64 now_ns();

  /// Append a finished event to the calling thread's buffer (no-op while
  /// disabled, so late ~ScopedSpan around a set_enabled(false) is safe).
  void record(const TraceEvent& event);

  /// Record an instant event ("i" phase) with optional numeric arguments.
  void instant(const char* name, const char* cat);
  void instant(const char* name, const char* cat, const char* key, f64 value);
  void instant(const char* name, const char* cat, const char* key0, f64 val0,
               const char* key1, f64 val1);

  /// Copy of every event recorded so far (live buffers + retired threads).
  std::vector<TraceEvent> snapshot() const;
  i64 event_count() const;

  /// Drop all recorded events (thread ids are kept).
  void clear();

  /// Total seconds of complete spans, grouped by event name — the
  /// span-derived Figure 7(c) phase split used by bench_fig7bc_kernels.
  std::map<std::string, f64> span_seconds_by_name() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  // Internal: thread-buffer registry (used by the thread_local owner).
  struct ThreadBuffer;
  ThreadBuffer& register_thread();
  void retire_thread(ThreadBuffer& buffer);

 private:
  TraceRecorder();

  static std::atomic<bool> enabled_;
  static std::atomic<bool> kernel_spans_;

  struct Impl;
  Impl* impl_;  // never freed: outlives static destruction races
};

/// RAII span. Passing a null name constructs an inert span (used by
/// conditional sites such as kernel launches). Arguments attach to the
/// span's "args" object in the export.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "fekf") {
    if (name != nullptr && TraceRecorder::enabled()) {
      active_ = true;
      event_.name = name;
      event_.cat = cat;
      event_.ts_ns = TraceRecorder::now_ns();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      event_.dur_ns = TraceRecorder::now_ns() - event_.ts_ns;
      TraceRecorder::instance().record(event_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a numeric argument (up to two; extras are dropped).
  void arg(const char* key, f64 value) {
    if (active_ && event_.nargs < 2) {
      event_.arg_keys[event_.nargs] = key;
      event_.arg_vals[event_.nargs] = value;
      ++event_.nargs;
    }
  }

  bool active() const { return active_; }

 private:
  TraceEvent event_;
  bool active_ = false;
};

}  // namespace fekf::obs
