#include "optim/adam.hpp"

#include <cmath>

namespace fekf::optim {

void AdamConfig::validate() const {
  FEKF_CHECK(std::isfinite(lr) && lr > 0.0,
             "AdamConfig.lr must be positive, got " + std::to_string(lr));
  FEKF_CHECK(beta1 >= 0.0 && beta1 < 1.0,
             "AdamConfig.beta1 must be in [0, 1), got " +
                 std::to_string(beta1));
  FEKF_CHECK(beta2 >= 0.0 && beta2 < 1.0,
             "AdamConfig.beta2 must be in [0, 1), got " +
                 std::to_string(beta2));
  FEKF_CHECK(std::isfinite(eps) && eps > 0.0,
             "AdamConfig.eps must be positive, got " + std::to_string(eps));
  FEKF_CHECK(decay_rate > 0.0 && decay_rate <= 1.0,
             "AdamConfig.decay_rate must be in (0, 1], got " +
                 std::to_string(decay_rate));
  FEKF_CHECK(decay_steps > 0, "AdamConfig.decay_steps must be positive, "
                              "got " + std::to_string(decay_steps));
  FEKF_CHECK(std::isfinite(lr_scale) && lr_scale > 0.0,
             "AdamConfig.lr_scale must be positive, got " +
                 std::to_string(lr_scale));
}

Adam::Adam(i64 size, AdamConfig config) : config_(config) {
  config_.validate();
  FEKF_CHECK(size > 0, "empty parameter vector");
  m_.assign(static_cast<std::size_t>(size), 0.0);
  v_.assign(static_cast<std::size_t>(size), 0.0);
}

void Adam::set_state(const AdamState& state) {
  FEKF_CHECK(state.m.size() == m_.size() && state.v.size() == v_.size(),
             "AdamState sized for " + std::to_string(state.m.size()) +
                 " parameters, optimizer has " + std::to_string(m_.size()));
  FEKF_CHECK(state.t >= 0, "AdamState.t must be >= 0");
  m_ = state.m;
  v_ = state.v;
  t_ = state.t;
}

f64 Adam::current_lr() const {
  const f64 decay = std::pow(
      config_.decay_rate,
      static_cast<f64>(t_ / std::max<i64>(1, config_.decay_steps)));
  return config_.lr * config_.lr_scale * decay;
}

void Adam::step(std::span<const f64> g, std::span<f64> w) {
  FEKF_CHECK(g.size() == m_.size() && w.size() == m_.size(),
             "adam size mismatch");
  ++t_;
  const f64 lr = current_lr();
  const f64 b1t = 1.0 - std::pow(config_.beta1, static_cast<f64>(t_));
  const f64 b2t = 1.0 - std::pow(config_.beta2, static_cast<f64>(t_));
  for (std::size_t i = 0; i < m_.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g[i];
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g[i] * g[i];
    const f64 m_hat = m_[i] / b1t;
    const f64 v_hat = v_[i] / b2t;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.eps);
  }
}

}  // namespace fekf::optim
