#include "optim/adam.hpp"

#include <cmath>

namespace fekf::optim {

Adam::Adam(i64 size, AdamConfig config) : config_(config) {
  FEKF_CHECK(size > 0, "empty parameter vector");
  m_.assign(static_cast<std::size_t>(size), 0.0);
  v_.assign(static_cast<std::size_t>(size), 0.0);
}

f64 Adam::current_lr() const {
  const f64 decay = std::pow(
      config_.decay_rate,
      static_cast<f64>(t_ / std::max<i64>(1, config_.decay_steps)));
  return config_.lr * config_.lr_scale * decay;
}

void Adam::step(std::span<const f64> g, std::span<f64> w) {
  FEKF_CHECK(g.size() == m_.size() && w.size() == m_.size(),
             "adam size mismatch");
  ++t_;
  const f64 lr = current_lr();
  const f64 b1t = 1.0 - std::pow(config_.beta1, static_cast<f64>(t_));
  const f64 b2t = 1.0 - std::pow(config_.beta2, static_cast<f64>(t_));
  for (std::size_t i = 0; i < m_.size(); ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g[i];
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g[i] * g[i];
    const f64 m_hat = m_[i] / b1t;
    const f64 v_hat = v_[i] / b2t;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + config_.eps);
  }
}

}  // namespace fekf::optim
