// Adam on the flattened parameter vector — the paper's baseline optimizer
// with DeePMD's schedule: lr 1e-3 with exponential decay 0.95 every
// `decay_steps` steps (paper §4 uses 5000).
#pragma once

#include <span>
#include <vector>

#include "core/common.hpp"

namespace fekf::optim {

struct AdamConfig {
  f64 lr = 1e-3;
  f64 beta1 = 0.9;
  f64 beta2 = 0.999;
  f64 eps = 1e-8;
  f64 decay_rate = 0.95;
  i64 decay_steps = 5000;
  /// Large-minibatch scaling of the base lr (sqrt scaling is the paper's
  /// Table 1 default: "readjusted by multiplying ... square root of the
  /// minibatch").
  f64 lr_scale = 1.0;

  /// Reject unusable configurations with a clear Error naming the field.
  void validate() const;
};

/// Full optimizer state — the first and second moments plus the step
/// counter the bias correction and lr schedule depend on. Round-tripped by
/// training checkpoints and by the sentinels' rollback snapshots.
struct AdamState {
  std::vector<f64> m;
  std::vector<f64> v;
  i64 t = 0;
};

class Adam {
 public:
  Adam(i64 size, AdamConfig config);

  /// One update: w -= lr_t * m_hat / (sqrt(v_hat) + eps).
  void step(std::span<const f64> g, std::span<f64> w);

  f64 current_lr() const;
  i64 steps() const { return t_; }

  AdamState state() const { return {m_, v_, t_}; }
  void set_state(const AdamState& state);

 private:
  AdamConfig config_;
  std::vector<f64> m_;
  std::vector<f64> v_;
  i64 t_ = 0;
};

}  // namespace fekf::optim
