#include "optim/ekf_blocks.hpp"

namespace fekf::optim {

std::vector<BlockSpec> split_blocks(
    std::span<const std::pair<std::string, i64>> layer_layout,
    i64 blocksize) {
  FEKF_CHECK(blocksize >= 1, "blocksize must be >= 1");
  std::vector<BlockSpec> blocks;
  BlockSpec current;
  i64 offset = 0;

  auto flush = [&]() {
    if (current.size > 0) {
      blocks.push_back(current);
      current = BlockSpec{};
    }
  };

  for (const auto& [name, size] : layer_layout) {
    FEKF_CHECK(size >= 0, "negative layer size");
    if (size > blocksize) {
      // Split: close the running group, then emit blocksize chunks.
      flush();
      i64 remaining = size;
      i64 chunk_offset = offset;
      int chunk_id = 0;
      while (remaining > 0) {
        const i64 chunk = std::min(blocksize, remaining);
        blocks.push_back(BlockSpec{chunk_offset, chunk,
                                   name + "#" + std::to_string(chunk_id)});
        remaining -= chunk;
        chunk_offset += chunk;
        ++chunk_id;
      }
    } else {
      if (current.size + size > blocksize) flush();
      if (current.size == 0) {
        current.offset = offset;
        current.name = name;
      } else {
        current.name += "+" + name;
      }
      current.size += size;
    }
    offset += size;
  }
  flush();
  return blocks;
}

}  // namespace fekf::optim
