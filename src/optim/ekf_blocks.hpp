// Layer-wise block splitting of the error-covariance matrix P.
//
// RLEKF's reorganization strategy (Hu et al., AAAI'23), reused by FEKF:
// walking the network's flattened layer list,
//   * adjacent small layers are GATHERED into one block while the running
//     sum stays <= blocksize;
//   * a layer larger than blocksize is SPLIT into blocksize-sized chunks
//     (last chunk takes the remainder); chunks are closed blocks — later
//     layers never merge into them.
// For the paper's 26 551-parameter network with blocksize 10240 this yields
// {1350, 10240, 9760, 5001} — the embedding block plus the split fitting
// input layer, matching the paper's reported {1350, 10240, 9760, 5301}
// layout (their 26 651-parameter count carries ~100 extra bookkeeping
// variables in the last block).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/common.hpp"

namespace fekf::optim {

struct BlockSpec {
  i64 offset = 0;  ///< start within the flat parameter vector
  i64 size = 0;
  std::string name;
};

std::vector<BlockSpec> split_blocks(
    std::span<const std::pair<std::string, i64>> layer_layout, i64 blocksize);

}  // namespace fekf::optim
