#include "optim/flat_params.hpp"

namespace fekf::optim {

FlatParams::FlatParams(std::vector<ag::Variable> params)
    : params_(std::move(params)) {
  offsets_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    FEKF_CHECK(p.defined(), "undefined parameter leaf");
    offsets_.push_back(total_);
    total_ += p.numel();
  }
}

void FlatParams::gather(std::span<f64> out) const {
  FEKF_CHECK(static_cast<i64>(out.size()) == total_, "gather size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& t = params_[i].value();
    const f32* src = t.data();
    f64* dst = out.data() + offsets_[i];
    for (i64 k = 0; k < t.numel(); ++k) dst[k] = src[k];
  }
}

void FlatParams::scatter(std::span<const f64> values) {
  FEKF_CHECK(static_cast<i64>(values.size()) == total_,
             "scatter size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    Tensor t(p.value().rows(), p.value().cols());
    const f64* src = values.data() + offsets_[i];
    f32* dst = t.data();
    for (i64 k = 0; k < t.numel(); ++k) dst[k] = static_cast<f32>(src[k]);
    p.set_value(t);
  }
}

void FlatParams::gather_grads(std::span<const ag::Variable> grads,
                              std::span<f64> out) const {
  FEKF_CHECK(grads.size() == params_.size(), "gradient list size mismatch");
  FEKF_CHECK(static_cast<i64>(out.size()) == total_,
             "gather_grads size mismatch");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    f64* dst = out.data() + offsets_[i];
    if (!grads[i].defined()) {
      std::fill_n(dst, params_[i].numel(), 0.0);
      continue;
    }
    const Tensor& g = grads[i].value();
    FEKF_CHECK(g.numel() == params_[i].numel(), "gradient shape mismatch");
    const f32* src = g.data();
    for (i64 k = 0; k < g.numel(); ++k) dst[k] = src[k];
  }
}

}  // namespace fekf::optim
