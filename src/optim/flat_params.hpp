// Flattened view over a model's parameter leaves.
//
// Optimizers work on one contiguous f64 vector; this adapter gathers the
// f32 parameter tensors into it and scatters updates back. The flattening
// order is the model's canonical parameter order, which the EKF block
// splitter relies on.
#pragma once

#include <span>
#include <vector>

#include "autograd/variable.hpp"

namespace fekf::optim {

class FlatParams {
 public:
  explicit FlatParams(std::vector<ag::Variable> params);

  i64 size() const { return total_; }
  const std::vector<ag::Variable>& params() const { return params_; }

  /// Copy current parameter values into `out` (size() entries).
  void gather(std::span<f64> out) const;

  /// Write `values` back into the parameter leaves.
  void scatter(std::span<const f64> values);

  /// Flatten a list of gradient Variables (aligned with params()) into
  /// `out`. Missing (undefined) gradients contribute zeros.
  void gather_grads(std::span<const ag::Variable> grads,
                    std::span<f64> out) const;

  /// Offset of parameter leaf `i` within the flat vector.
  i64 offset(std::size_t i) const { return offsets_[i]; }

 private:
  std::vector<ag::Variable> params_;
  std::vector<i64> offsets_;
  i64 total_ = 0;
};

}  // namespace fekf::optim
