#include "optim/kalman.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"

namespace fekf::optim {

namespace {

bool finite(f64 v) { return std::isfinite(v); }

}  // namespace

void KalmanConfig::validate() const {
  FEKF_CHECK(blocksize > 0, "KalmanConfig.blocksize must be positive, got " +
                                std::to_string(blocksize));
  FEKF_CHECK(finite(lambda0) && lambda0 > 0.0 && lambda0 <= 1.0,
             "KalmanConfig.lambda0 must be in (0, 1], got " +
                 std::to_string(lambda0));
  FEKF_CHECK(finite(nu) && nu > 0.0 && nu <= 1.0,
             "KalmanConfig.nu must be in (0, 1], got " + std::to_string(nu));
  FEKF_CHECK(finite(p_init) && p_init > 0.0,
             "KalmanConfig.p_init must be positive and finite, got " +
                 std::to_string(p_init));
  FEKF_CHECK(finite(p_max), "KalmanConfig.p_max must be finite (<= 0 "
                            "disables), got " + std::to_string(p_max));
  FEKF_CHECK(finite(process_noise) && process_noise >= 0.0,
             "KalmanConfig.process_noise must be >= 0 and finite, got " +
                 std::to_string(process_noise));
  FEKF_CHECK(finite(max_step_norm),
             "KalmanConfig.max_step_norm must be finite (<= 0 disables), "
             "got " + std::to_string(max_step_norm));
  FEKF_CHECK(p_max <= 0.0 || p_max >= p_init,
             "KalmanConfig.p_max (" + std::to_string(p_max) +
                 ") must be >= p_init (" + std::to_string(p_init) + ")");
}

KalmanOptimizer::KalmanOptimizer(std::vector<BlockSpec> blocks,
                                 KalmanConfig config)
    : blocks_(std::move(blocks)), config_(config), lambda_(config.lambda0) {
  config_.validate();
  FEKF_CHECK(!blocks_.empty(), "no parameter blocks");
  for (const BlockSpec& b : blocks_) {
    FEKF_CHECK(b.offset == total_, "blocks must tile the parameter vector");
    total_ += b.size;
    max_block_ = std::max(max_block_, b.size);
  }
  p_.resize(blocks_.size());
  reset();
  pg_.resize(static_cast<std::size_t>(max_block_));
  pg2_.resize(static_cast<std::size_t>(max_block_));
  if (!config_.fused_p_update) {
    scratch_.resize(static_cast<std::size_t>(max_block_ * max_block_));
  }
}

void KalmanOptimizer::reset() {
  lambda_ = config_.lambda0;
  last_max_diag_ = config_.p_init;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const i64 n = blocks_[b].size;
    p_[b].assign(static_cast<std::size_t>(n * n), 0.0);
    for (i64 i = 0; i < n; ++i) {
      p_[b][static_cast<std::size_t>(i * n + i)] = config_.p_init;
    }
  }
}

KalmanState KalmanOptimizer::state() const { return {lambda_, p_}; }

void KalmanOptimizer::set_state(const KalmanState& state) {
  FEKF_CHECK(state.p.size() == p_.size(),
             "KalmanState has " + std::to_string(state.p.size()) +
                 " blocks, optimizer has " + std::to_string(p_.size()));
  for (std::size_t b = 0; b < p_.size(); ++b) {
    FEKF_CHECK(state.p[b].size() == p_[b].size(),
               "KalmanState block " + std::to_string(b) + " has " +
                   std::to_string(state.p[b].size()) + " entries, expected " +
                   std::to_string(p_[b].size()));
  }
  lambda_ = state.lambda;
  p_ = state.p;
}

void KalmanOptimizer::recondition() {
  if (!std::isfinite(lambda_) || lambda_ <= 0.0) lambda_ = config_.lambda0;
  f64 max_diag_after = 0.0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const i64 n = blocks_[b].size;
    std::vector<f64>& pb = p_[b];
    bool healthy = true;
    for (const f64 v : pb) {
      if (!std::isfinite(v)) {
        healthy = false;
        break;
      }
    }
    if (!healthy) {
      // The block's covariance is meaningless: restart it at p_init * I.
      pb.assign(static_cast<std::size_t>(n * n), 0.0);
      for (i64 i = 0; i < n; ++i) {
        pb[static_cast<std::size_t>(i * n + i)] = config_.p_init;
      }
      max_diag_after = std::max(max_diag_after, config_.p_init);
      continue;
    }
    f64 max_diag = 0.0;
    for (i64 i = 0; i < n; ++i) {
      max_diag = std::max(max_diag, pb[static_cast<std::size_t>(i * n + i)]);
    }
    if (max_diag > config_.p_init) {
      const f64 scale = config_.p_init / max_diag;
      for (f64& v : pb) v *= scale;
      max_diag = config_.p_init;
    }
    max_diag_after = std::max(max_diag_after, max_diag);
  }
  last_max_diag_ = max_diag_after;
}

void KalmanOptimizer::update(std::span<const f64> g, f64 kscale,
                             std::span<f64> w,
                             std::optional<f64> step_norm_cap, f64 abe) {
  obs::ScopedSpan span("kalman.update", "optim");
  span.arg("blocks", static_cast<f64>(blocks_.size()));
  span.arg("abe", abe);
  const f64 cap = step_norm_cap.value_or(config_.max_step_norm);
  FEKF_CHECK(static_cast<i64>(g.size()) == total_ &&
                 static_cast<i64>(w.size()) == total_,
             "gradient/weight size mismatch");
  if (!config_.fused_p_update &&
      scratch_.size() < static_cast<std::size_t>(max_block_ * max_block_)) {
    scratch_.resize(static_cast<std::size_t>(max_block_ * max_block_));
  }
  // Whole-step fusion needs the cached gain and the single-pass P kernel;
  // the ablation toggles fall back to the legacy four-launch decomposition.
  const bool fused_step =
      config_.fused_step && config_.fused_p_update && config_.cache_pg;
  f64 update_max_diag = 0.0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const i64 n = blocks_[b].size;
    const i64 off = blocks_[b].offset;
    std::span<const f64> gb = g.subspan(static_cast<std::size_t>(off),
                                        static_cast<std::size_t>(n));
    std::span<f64> pb(p_[b]);
    std::span<f64> q(pg_.data(), static_cast<std::size_t>(n));

    f64 gpg;
    if (fused_step) {
      gpg = kernels::ekf_gain_fused(pb, gb, q, n);  // q = P g, one launch
    } else {
      kernels::symv(pb, gb, q, n);  // q = P g
      gpg = kernels::dot(gb, q);
    }
    const f64 a = 1.0 / (lambda_ + gpg);

    // K = a q; the uncached ("framework") path recomputes P g for K the
    // way a naive graph would, costing a second symv (opt3 removes it).
    std::span<f64> k_vec = q;
    if (!config_.cache_pg) {
      std::span<f64> q2(pg2_.data(), static_cast<std::size_t>(n));
      kernels::symv(pb, gb, q2, n);
      k_vec = q2;
    }

    // Step scale for w_b += kscale * K = kscale * a * q, clamped to full
    // Newton closure and clipped to the trust region. Depends only on
    // (q, gpg), so it is resolved before the P update either path takes.
    f64 step_scale = kscale * a;
    if (abe >= 0.0 && gpg > 1e-30) {
      step_scale = std::min(step_scale, abe / gpg);
    }
    if (cap > 0.0) {
      f64 k_norm2 = 0.0;
      for (const f64 v : k_vec) k_norm2 += v * v;
      const f64 step_norm = std::abs(step_scale) * std::sqrt(k_norm2);
      if (step_norm > cap) {
        step_scale *= cap / step_norm;
      }
    }

    f64 max_diag = 0.0;
    if (fused_step) {
      // P update + process noise + weight step + NaN-latching health scan
      // in one launch; bit-exact with the sequence below.
      max_diag = kernels::ekf_apply_fused(
          pb, k_vec, a, lambda_, step_scale,
          w.subspan(static_cast<std::size_t>(off), std::size_t(n)),
          config_.process_noise > 0.0 ? config_.process_noise : 0.0, n);
    } else {
      // P <- (P - a q q^T) / lambda, symmetrized. Note (1/a) K K^T with
      // K = a P g equals a (P g)(P g)^T, so the kernels take q and a.
      if (config_.fused_p_update) {
        kernels::p_update_fused(pb, k_vec, a, lambda_, n);
      } else {
        kernels::p_update_unfused(pb, k_vec, a, lambda_,
                                  std::span<f64>(scratch_), n);
      }

      kernels::axpy(step_scale, k_vec,
                    w.subspan(static_cast<std::size_t>(off),
                              std::size_t(n)));

      // Process-noise floor (see KalmanConfig::process_noise).
      if (config_.process_noise > 0.0) {
        for (i64 i = 0; i < n; ++i) {
          pb[static_cast<std::size_t>(i * n + i)] += config_.process_noise;
        }
      }

      // Covariance limiting (see KalmanConfig::p_max). The diagonal scan
      // doubles as the sentinels' P-health probe, so non-finite entries
      // must latch into max_diag explicitly (std::max would silently drop
      // a NaN).
      for (i64 i = 0; i < n; ++i) {
        const f64 d = pb[static_cast<std::size_t>(i * n + i)];
        if (!std::isfinite(d)) {
          max_diag = d;
          break;
        }
        max_diag = std::max(max_diag, d);
      }
    }
    if (!std::isfinite(max_diag)) {
      update_max_diag = max_diag;
    } else if (std::isfinite(update_max_diag)) {
      update_max_diag = std::max(update_max_diag, max_diag);
    }
    if (config_.p_max > 0.0 && std::isfinite(max_diag) &&
        max_diag > config_.p_max) {
      const f64 scale = config_.p_max / max_diag;
      f64* pd = p_[b].data();
      parallel_for_blocks(
          0, n * n,
          [&](i64 lo, i64 hi) {
            for (i64 i = lo; i < hi; ++i) pd[i] *= scale;
          },
          kGrainWork);
    }
  }
  last_max_diag_ = update_max_diag;
  lambda_ = lambda_ * config_.nu + 1.0 - config_.nu;
}

i64 KalmanOptimizer::p_bytes() const {
  i64 bytes = 0;
  for (const BlockSpec& b : blocks_) {
    bytes += b.size * b.size * static_cast<i64>(sizeof(f64));
  }
  return bytes;
}

i64 KalmanOptimizer::scratch_bytes() const {
  if (config_.fused_p_update) return 0;
  return max_block_ * max_block_ * static_cast<i64>(sizeof(f64));
}

}  // namespace fekf::optim
