// Block-diagonal Extended-Kalman-Filter optimizer state (Algorithm 1).
//
// One KalmanOptimizer instance holds the block-diagonal weights-error
// covariance P = diag(P_1 .. P_L) plus the memory factor lambda, and
// performs the scalar-measurement EKF update per block:
//
//   a   = 1 / (lambda + g^T P g)
//   K   = a P g
//   P  <- (P - (1/a) K K^T) / lambda, symmetrized     (Alg. 1 lines 8-11)
//   lambda <- lambda nu + 1 - nu                      (line 12)
//   w  <- w + kscale * K,  kscale = sqrt(bs) * ABE    (line 13)
//
// Both RLEKF (batch 1, instance-by-instance) and FEKF (reduced gradient /
// error) drive this same state; they differ only in how the trainer builds
// (g, ABE). The opt3 system optimizations are toggles here: the fused
// P-update kernel and the cached-Pg reuse between the `a` and `K` steps.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "optim/ekf_blocks.hpp"

namespace fekf::optim {

struct KalmanConfig {
  i64 blocksize = 10240;
  f64 lambda0 = 0.98;  ///< paper defaults; use 0.90/0.996 for batch > 1024
  f64 nu = 0.9987;
  bool fused_p_update = true;  ///< opt3: hand-written single-pass kernel
  bool cache_pg = true;        ///< opt3: reuse P g between a and K

  /// Whole-step fusion (DESIGN.md §12): run each block's update as TWO
  /// launches — ekf_gain_fused (P g and g^T P g together) and
  /// ekf_apply_fused (rank-1 P update + process noise + weight step +
  /// health scan in one pass) — instead of the four-launch
  /// symv/dot/p_update/axpy sequence. Bit-exact with that sequence.
  /// Effective only when fused_p_update and cache_pg are also set (the
  /// ablation toggles force the legacy decomposition for Fig. 7 rows).
  bool fused_step = true;

  /// Initial covariance diagonal: P starts as p_init * I, and the
  /// divergence-recovery path (recondition()) rescales an unhealthy P back
  /// toward this level. Must be positive and finite.
  f64 p_init = 1.0;

  /// Covariance limiting: the forgetting factor (the 1/lambda in the P
  /// update) inflates P exponentially along directions the scalar
  /// measurements never excite; once a gradient finally points there the
  /// Kalman gain explodes. Classic RLS wind-up — invisible at the paper's
  /// scale (tens of thousands of diverse updates keep all directions
  /// excited) but fatal for short runs. When a block's max diagonal
  /// exceeds p_max the whole block is rescaled (preserves positive
  /// definiteness). <= 0 disables.
  f64 p_max = 100.0;

  /// Additive process noise: P <- P + q I after each update. The paper's
  /// stochastic model (§2.2) includes process noise through the
  /// lambda^{-1/2} weight dynamics; the multiplicative 1/lambda term
  /// vanishes as lambda -> 1, which lets P collapse along the repeatedly
  /// measured (extensive) energy direction while force updates keep
  /// perturbing the weights. A small additive floor keeps the filter
  /// responsive. 0 disables.
  f64 process_noise = 1e-2;

  /// Trust region: per-block weight-step norm cap. Occasional large Kalman
  /// gains (right after a covariance rescale, or when a gradient first
  /// excites an inflated direction) otherwise throw the extensive energy
  /// fit off by tens of eV. <= 0 disables.
  f64 max_step_norm = 0.1;

  /// Paper §3.2 large-batch recommendation.
  static KalmanConfig for_batch_size(i64 batch_size) {
    KalmanConfig cfg;
    if (batch_size > 1024) {
      cfg.lambda0 = 0.90;
      cfg.nu = 0.996;
    }
    return cfg;
  }

  /// Reject unusable configurations with a clear Error naming the field
  /// and the offending value. Called by every optimizer constructor.
  void validate() const;
};

/// Deep copy of the stability-critical optimizer state (RLEKF: "the EKF
/// covariance P is the stability-critical state"). Used both for the
/// in-memory rollback snapshots of the divergence sentinels and for
/// on-disk training checkpoints.
struct KalmanState {
  f64 lambda = 0.0;
  std::vector<std::vector<f64>> p;  ///< per-block dense covariance
};

class KalmanOptimizer {
 public:
  KalmanOptimizer(std::vector<BlockSpec> blocks, KalmanConfig config);

  /// One EKF update over all blocks. `g` is the flattened measurement
  /// gradient (size = total parameter count), `kscale` the weight-step
  /// scale (sqrt(bs) * ABE, already signed if needed); `w` is updated
  /// in place. `step_norm_cap` overrides config().max_step_norm for this
  /// update (energy updates are well-posed scalar Newton steps and run
  /// uncapped; the noisier force updates use the trust region): nullopt
  /// keeps the config value, a value <= 0 disables the cap for this update.
  /// `abe` (when >= 0) enables Newton-closure clamping: the sqrt(bs)
  /// factor in kscale can overshoot the full scalar-measurement closure
  /// when g^T P g is large and batch gradients are sign-correlated (early
  /// training), so the per-block step is clamped to the step that would
  /// exactly close the measurement error abe. Inactive at batch size 1,
  /// where kscale*a <= abe/(g^T P g) always holds.
  void update(std::span<const f64> g, f64 kscale, std::span<f64> w,
              std::optional<f64> step_norm_cap = std::nullopt,
              f64 abe = -1.0);

  f64 lambda() const { return lambda_; }
  void set_lambda(f64 lambda) { lambda_ = lambda; }
  const std::vector<BlockSpec>& blocks() const { return blocks_; }
  i64 total_size() const { return total_; }

  /// Deep-copy / restore the full filter state (lambda + every P block).
  /// set_state validates block shapes against this optimizer's layout.
  KalmanState state() const;
  void set_state(const KalmanState& state);

  /// Largest covariance diagonal seen during the most recent update() —
  /// the sentinel's P-health signal. NaN/Inf here means the filter has
  /// diverged. Costs one diagonal scan per block, which update() performs
  /// anyway for covariance limiting.
  f64 last_max_diag() const { return last_max_diag_; }

  /// Divergence recovery: any block containing a non-finite entry is reset
  /// to p_init * I; any block whose max diagonal exceeds p_init is rescaled
  /// down to it (same positive-definiteness-preserving whole-block rescale
  /// as the p_max limiter). A non-finite lambda resets to lambda0.
  void recondition();

  /// Persistent P storage in bytes (the paper's Section 5.3 accounting).
  i64 p_bytes() const;
  /// Scratch bytes the current configuration needs per update (the
  /// unfused path materializes K K^T for the largest block).
  i64 scratch_bytes() const;
  /// p_bytes + scratch: the peak resident footprint model of §5.3.
  i64 peak_bytes() const { return p_bytes() + scratch_bytes(); }

  /// Reset P to identity and lambda to lambda0.
  void reset();

  KalmanConfig& config() { return config_; }

 private:
  std::vector<BlockSpec> blocks_;
  KalmanConfig config_;
  f64 lambda_;
  f64 last_max_diag_ = 0.0;
  i64 total_ = 0;
  i64 max_block_ = 0;
  std::vector<std::vector<f64>> p_;  ///< per-block dense covariance
  std::vector<f64> pg_;              ///< cached P g (max block size)
  std::vector<f64> pg2_;             ///< second P g for the uncached path
  std::vector<f64> scratch_;         ///< unfused K K^T materialization
};

}  // namespace fekf::optim
