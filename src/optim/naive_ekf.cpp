#include "optim/naive_ekf.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace fekf::optim {

NaiveEkf::NaiveEkf(std::vector<BlockSpec> blocks, KalmanConfig config,
                   i64 slots) {
  FEKF_CHECK(slots >= 1, "need at least one slot");
  replicas_.reserve(static_cast<std::size_t>(slots));
  for (i64 s = 0; s < slots; ++s) {
    replicas_.push_back(std::make_unique<KalmanOptimizer>(blocks, config));
  }
  increment_.assign(
      static_cast<std::size_t>(replicas_.front()->total_size()), 0.0);
}

void NaiveEkf::accumulate(i64 slot, std::span<const f64> g, f64 kscale) {
  FEKF_CHECK(slot >= 0 && slot < slots(), "slot out of range");
  obs::ScopedSpan span("naive_ekf.accumulate", "optim");
  span.arg("slot", static_cast<f64>(slot));
  // Run the slot's Kalman update against a zero weight vector to obtain
  // this sample's increment K * kscale, then fold it into the mean.
  std::vector<f64> delta(increment_.size(), 0.0);
  replicas_[static_cast<std::size_t>(slot)]->update(g, kscale, delta);
  for (std::size_t i = 0; i < increment_.size(); ++i) {
    increment_[i] += delta[i];
  }
  ++accumulated_;
}

void NaiveEkf::commit(std::span<f64> w) {
  obs::ScopedSpan span("naive_ekf.commit", "optim");
  FEKF_CHECK(w.size() == increment_.size(), "weight size mismatch");
  FEKF_CHECK(accumulated_ > 0, "commit without accumulated samples");
  const f64 inv = 1.0 / static_cast<f64>(accumulated_);
  for (std::size_t i = 0; i < increment_.size(); ++i) {
    w[i] += increment_[i] * inv;
    increment_[i] = 0.0;
  }
  accumulated_ = 0;
}

void NaiveEkf::abort_accumulation() {
  std::fill(increment_.begin(), increment_.end(), 0.0);
  accumulated_ = 0;
}

std::vector<KalmanState> NaiveEkf::state() const {
  std::vector<KalmanState> out;
  out.reserve(replicas_.size());
  for (const auto& r : replicas_) out.push_back(r->state());
  return out;
}

void NaiveEkf::set_state(const std::vector<KalmanState>& replicas) {
  FEKF_CHECK(replicas.size() == replicas_.size(),
             "NaiveEkf state has " + std::to_string(replicas.size()) +
                 " replicas, optimizer has " +
                 std::to_string(replicas_.size()));
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    replicas_[s]->set_state(replicas[s]);
  }
  abort_accumulation();
}

f64 NaiveEkf::last_max_diag() const {
  f64 max_diag = 0.0;
  for (const auto& r : replicas_) {
    const f64 d = r->last_max_diag();
    if (!std::isfinite(d)) return d;
    max_diag = std::max(max_diag, d);
  }
  return max_diag;
}

void NaiveEkf::recondition() {
  for (const auto& r : replicas_) r->recondition();
}

i64 NaiveEkf::p_bytes() const {
  return slots() * replicas_.front()->p_bytes();
}

}  // namespace fekf::optim
