// Naive-EKF: the fusiform-shaped ("computing-then-aggregation") multi-sample
// dataflow of Figure 5(a) / Table 2 row 3.
//
// Every sample in the batch carries its own covariance replica P_s and runs
// a full Kalman update; the per-sample weight increments K_s * ABE_s are
// averaged afterwards. This is the theoretically straightforward
// E(K * ABE) batching — and the strawman the paper's FEKF improves on: its
// memory footprint is batch_size copies of P, and in distributed training
// the diverging replicas must be communicated. Both costs are surfaced by
// the accessors below and measured in bench_comm_memory.
#pragma once

#include <memory>

#include "optim/kalman.hpp"

namespace fekf::optim {

class NaiveEkf {
 public:
  /// `slots` = number of concurrent per-sample covariance replicas (the
  /// mini-batch size).
  NaiveEkf(std::vector<BlockSpec> blocks, KalmanConfig config, i64 slots);

  /// Accumulate sample `slot`'s update into the pending mean increment.
  /// `g` is that sample's measurement gradient, `kscale` its ABE.
  void accumulate(i64 slot, std::span<const f64> g, f64 kscale);

  /// Apply the averaged increment of the samples accumulated since the
  /// last commit to `w` and clear the accumulator.
  void commit(std::span<f64> w);

  /// Discard a partially accumulated batch (exception recovery): clears
  /// the pending increment so the next accumulate/commit cycle starts
  /// clean. Replica covariances keep whatever updates already ran; restore
  /// them via set_state for full-step rollback.
  void abort_accumulation();

  /// Deep copy / restore of every replica's covariance state. Only
  /// meaningful at commit boundaries; set_state also clears any pending
  /// accumulation (a restored step starts from a clean accumulator).
  std::vector<KalmanState> state() const;
  void set_state(const std::vector<KalmanState>& replicas);

  /// Largest covariance diagonal across replicas after the most recent
  /// accumulate() — the sentinels' P-health signal.
  f64 last_max_diag() const;

  /// Rescale every replica's unhealthy covariance back toward p_init.
  void recondition();

  i64 slots() const { return static_cast<i64>(replicas_.size()); }

  /// Total P footprint: slots x blockwise P (the §3.3 memory blow-up).
  i64 p_bytes() const;

  /// Bytes of covariance state that would need synchronizing across ranks
  /// per step in a distributed setting (all replicas, since they diverge).
  i64 comm_bytes_per_step() const { return p_bytes(); }

 private:
  std::vector<std::unique_ptr<KalmanOptimizer>> replicas_;
  std::vector<f64> increment_;
  i64 accumulated_ = 0;
};

}  // namespace fekf::optim
