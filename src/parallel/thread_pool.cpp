#include "parallel/thread_pool.hpp"

#include <memory>

#include "core/env.hpp"

namespace fekf {

namespace {

thread_local bool t_in_parallel = false;

i64 default_thread_count() {
  static const i64 cached = [] {
    const i64 n = env::get_i64("FEKF_NUM_THREADS", 0);
    if (n > 0) return n;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<i64>(hw) : i64{1};
  }();
  return cached;
}

/// Runtime width cap; 0 means "use the default".
std::atomic<i64> g_width_cap{0};

}  // namespace

ThreadPool::ThreadPool(i64 threads) {
  if (threads <= 0) threads = default_thread_count();
  // The calling thread always participates in for_range, so spawn one fewer
  // worker than the requested width (a width-1 pool has no workers at all).
  ensure_width(threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ensure_width(i64 threads) {
  const i64 want_workers = threads - 1;
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<i64>(workers_.size()) < want_workers) {
    workers_.emplace_back([this] { worker_loop(); });
    worker_count_.store(static_cast<i64>(workers_.size()),
                        std::memory_order_relaxed);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (size() == 0) {
    packaged();  // no workers: run inline
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::for_range_blocks(i64 begin, i64 end,
                                  const std::function<void(i64, i64)>& fn,
                                  i64 grain, i64 width) {
  if (begin >= end) return;
  FEKF_CHECK(grain >= 1, "grain must be >= 1");
  const i64 n = end - begin;
  i64 w = size() + 1;
  if (width > 0) w = std::min(w, width);
  // Serial fast path: single width, sub-grain range, or a nested region
  // (a worker re-entering for_range runs inline — no deadlock).
  if (w == 1 || n <= grain || t_in_parallel) {
    fn(begin, end);
    return;
  }
  // Dynamic chunking: an atomic cursor hands out fixed-size chunks. Chunk
  // boundaries depend only on (begin, end, grain); which thread runs which
  // chunk does not affect any caller that keeps chunk outputs disjoint.
  struct State {
    std::atomic<i64> cursor;
    std::mutex m;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  state->cursor.store(begin, std::memory_order_relaxed);
  auto body = [state, end, grain, &fn] {
    const bool was_nested = t_in_parallel;
    t_in_parallel = true;
    for (;;) {
      const i64 lo = state->cursor.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      const i64 hi = std::min(lo + grain, end);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->m);
        if (!state->first_error) state->first_error = std::current_exception();
        state->cursor.store(end, std::memory_order_relaxed);  // drain fast
      }
    }
    t_in_parallel = was_nested;
  };
  const i64 nchunks = (n + grain - 1) / grain;
  const i64 helpers = std::min<i64>(w - 1, nchunks - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(helpers));
  for (i64 t = 0; t < helpers; ++t) {
    futures.push_back(submit(body));
  }
  body();  // calling thread participates
  for (auto& f : futures) f.get();  // body() never leaks exceptions
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::for_range(i64 begin, i64 end,
                           const std::function<void(i64)>& fn, i64 grain,
                           i64 width) {
  for_range_blocks(
      begin, end,
      [&fn](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) fn(i);
      },
      grain, width);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

i64 num_threads() {
  const i64 cap = g_width_cap.load(std::memory_order_relaxed);
  return cap > 0 ? cap : default_thread_count();
}

void set_num_threads(i64 n) {
  if (n <= 0) {
    g_width_cap.store(0, std::memory_order_relaxed);
    return;
  }
  g_width_cap.store(n, std::memory_order_relaxed);
  ThreadPool::global().ensure_width(n);
}

bool in_parallel_region() { return t_in_parallel; }

void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn,
                  i64 grain) {
  ThreadPool::global().for_range(begin, end, fn, grain, num_threads());
}

void parallel_for_blocks(i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn, i64 grain) {
  ThreadPool::global().for_range_blocks(begin, end, fn, grain, num_threads());
}

f64 parallel_reduce_f64(i64 begin, i64 end, i64 chunk,
                        const std::function<f64(i64, i64)>& chunk_fn) {
  if (begin >= end) return 0.0;
  FEKF_CHECK(chunk >= 1, "chunk must be >= 1");
  const i64 n = end - begin;
  const i64 nchunks = (n + chunk - 1) / chunk;
  if (nchunks == 1) return chunk_fn(begin, end);
  std::vector<f64> partials(static_cast<std::size_t>(nchunks), 0.0);
  parallel_for_blocks(
      0, nchunks,
      [&](i64 clo, i64 chi) {
        for (i64 c = clo; c < chi; ++c) {
          const i64 lo = begin + c * chunk;
          partials[static_cast<std::size_t>(c)] =
              chunk_fn(lo, std::min(lo + chunk, end));
        }
      },
      1);
  f64 acc = 0.0;  // fixed ascending-chunk combine: width-independent
  for (const f64 p : partials) acc += p;
  return acc;
}

}  // namespace fekf
