#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

namespace fekf {

namespace {
i64 default_thread_count() {
  if (const char* env = std::getenv("FEKF_NUM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<i64>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<i64>(hw) : 1;
}
}  // namespace

ThreadPool::ThreadPool(i64 threads) {
  if (threads <= 0) threads = default_thread_count();
  // The calling thread always participates in for_range, so spawn one fewer
  // worker than the requested width (a width-1 pool has no workers at all).
  const i64 spawned = threads - 1;
  workers_.reserve(static_cast<std::size_t>(spawned));
  for (i64 i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // no workers: run inline
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::for_range(i64 begin, i64 end,
                           const std::function<void(i64)>& fn, i64 grain) {
  if (begin >= end) return;
  FEKF_CHECK(grain >= 1, "grain must be >= 1");
  const i64 n = end - begin;
  const i64 width = size() + 1;  // workers + calling thread
  if (width == 1 || n <= grain) {
    for (i64 i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static chunking with an atomic cursor for load balance.
  auto cursor = std::make_shared<std::atomic<i64>>(begin);
  auto body = [cursor, end, grain, &fn] {
    for (;;) {
      const i64 lo = cursor->fetch_add(grain);
      if (lo >= end) break;
      const i64 hi = std::min(lo + grain, end);
      for (i64 i = lo; i < hi; ++i) fn(i);
    }
  };
  std::vector<std::future<void>> futures;
  const i64 helpers = std::min<i64>(width - 1, (n + grain - 1) / grain - 1);
  futures.reserve(static_cast<std::size_t>(helpers));
  for (i64 t = 0; t < helpers; ++t) {
    futures.push_back(submit(body));
  }
  body();  // calling thread participates
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn,
                  i64 grain) {
  ThreadPool::global().for_range(begin, end, fn, grain);
}

}  // namespace fekf
