// Work-queue thread pool. One process-wide pool (sized from
// hardware_concurrency or FEKF_NUM_THREADS) backs parallel_for; dedicated
// pools can be created for tests and auxiliary work.
//
// Threading model (see DESIGN.md "Threading & determinism"):
//  * parallel_for / parallel_for_blocks dispatch over the GLOBAL pool,
//    capped at num_threads(). set_num_threads() changes the cap at runtime
//    (growing the pool if needed) — the bench_scaling sweep and the
//    determinism tests use it to compare widths inside one process.
//  * Scheduling is dynamic (atomic cursor over fixed-size chunks), so it is
//    only used where the OUTPUT is independent of the chunk-to-thread
//    assignment: disjoint output ranges, or reductions that go through
//    parallel_reduce_f64, whose chunk partition depends only on the range
//    (never on the thread count) and whose partials are combined in
//    ascending chunk order. Both make every kernel bit-exact across widths.
//  * Nested parallel regions run serially: a for_range issued from inside a
//    pool task executes inline on that worker (no deadlock, no
//    oversubscription). Parallelism therefore lives at the outermost level
//    that reaches a region (per-sample measurement assembly when batched,
//    per-row kernel panels otherwise) with identical results either way.
//  * Exceptions thrown by workers are captured, the region drains, and the
//    first exception rethrows on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/common.hpp"

namespace fekf {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1), overridable with
  /// the FEKF_NUM_THREADS environment variable.
  explicit ThreadPool(i64 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  i64 size() const { return worker_count_.load(std::memory_order_relaxed); }

  /// Grow the pool so for_range can span `threads` (workers + caller).
  /// Workers are only ever added, never removed.
  void ensure_width(i64 threads);

  /// Enqueue a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait. The calling
  /// thread participates, so a pool of size 1 still makes progress, and a
  /// nested call from a worker runs serially inline. `width` > 0 caps the
  /// number of participating threads.
  void for_range(i64 begin, i64 end, const std::function<void(i64)>& fn,
                 i64 grain = 1, i64 width = 0);

  /// Block form: fn(lo, hi) receives whole chunks of at most `grain`
  /// indices, amortizing the per-index std::function dispatch — the form
  /// every hot kernel uses. Chunks may execute in any order on any thread;
  /// callers must keep chunk outputs disjoint (or reduce via
  /// parallel_reduce_f64).
  void for_range_blocks(i64 begin, i64 end,
                        const std::function<void(i64, i64)>& fn,
                        i64 grain = 1, i64 width = 0);

  /// Process-wide pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::atomic<i64> worker_count_{0};
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Effective width used by parallel_for: the runtime cap if set, else
/// FEKF_NUM_THREADS, else hardware_concurrency.
i64 num_threads();

/// Cap (n > 0) or restore to the default (n <= 0) the width used by
/// parallel_for, growing the global pool if needed. Thread-safe; intended
/// for benches and tests sweeping widths inside one process.
void set_num_threads(i64 n);

/// True while executing inside a parallel_for/for_range task; nested
/// regions observe it and run serially.
bool in_parallel_region();

/// Convenience wrappers over ThreadPool::global(), capped at num_threads().
void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn,
                  i64 grain = 1);
void parallel_for_blocks(i64 begin, i64 end,
                         const std::function<void(i64, i64)>& fn,
                         i64 grain = 1);

/// Deterministic parallel reduction: partition [begin, end) into fixed
/// chunks of `chunk` indices (a function of the range only — never of the
/// thread count), evaluate chunk_fn(lo, hi) -> f64 partials in parallel,
/// and combine them in ascending chunk order. Bit-exact for any width,
/// including 1; with a single chunk it degenerates to one serial call.
f64 parallel_reduce_f64(i64 begin, i64 end, i64 chunk,
                        const std::function<f64(i64, i64)>& chunk_fn);

// ---------------------------------------------------------------------------
// Grain-size policy for the hot kernels (DESIGN.md "Threading &
// determinism"): a task should carry at least kGrainWork scalar operations,
// and a range whose TOTAL work is below that stays serial (for_range runs
// inline when n <= grain), so unit-test-sized tensors never pay dispatch
// overhead.
// ---------------------------------------------------------------------------

inline constexpr i64 kGrainWork = i64{1} << 14;

/// Fixed chunk length for parallel_reduce_f64 over flat buffers. Ranges at
/// or below one chunk reduce with the same straight-line loop as the serial
/// kernel, so small reductions are bit-identical to the pre-threading code.
inline constexpr i64 kReduceChunk = i64{1} << 15;

/// Items per task such that one task performs ~kGrainWork scalar ops given
/// the per-item cost (e.g. one gemm output row costs k*n madds).
inline constexpr i64 grain_items(i64 work_per_item) {
  return work_per_item >= kGrainWork
             ? 1
             : kGrainWork / (work_per_item < 1 ? 1 : work_per_item);
}

}  // namespace fekf
