// Work-queue thread pool. One process-wide pool (sized from
// hardware_concurrency or FEKF_NUM_THREADS) backs parallel_for; dedicated
// pools can be created for tests and the virtual cluster.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/common.hpp"

namespace fekf {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(i64 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  i64 size() const { return static_cast<i64>(workers_.size()); }

  /// Enqueue a task; the returned future reports completion / exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool and wait. The calling
  /// thread participates, so a pool of size 1 still makes progress and a
  /// nested call from a worker does not deadlock (it runs serially).
  void for_range(i64 begin, i64 end, const std::function<void(i64)>& fn,
                 i64 grain = 1);

  /// Process-wide pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().for_range.
void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn,
                  i64 grain = 1);

}  // namespace fekf
