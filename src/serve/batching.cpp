#include "serve/batching.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "core/env.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fekf::serve {

namespace {
/// Process-wide request ids: dense, never reused, shared by every
/// evaluator instance so a trace mixing two evaluators still has unique
/// flow ids.
std::atomic<u64> g_next_request_id{1};
}  // namespace

BatchingConfig BatchingConfig::from_env() {
  BatchingConfig c;
  c.max_batch =
      std::max<i64>(1, env::get_i64("FEKF_SERVE_MAX_BATCH", c.max_batch));
  c.max_wait_s =
      std::max(0.0, env::get_f64("FEKF_SERVE_MAX_WAIT_US",
                                 c.max_wait_s * 1e6)) *
      1e-6;
  c.workers = std::max<i64>(1, env::get_i64("FEKF_SERVE_WORKERS", c.workers));
  return c;
}

BatchingEvaluator::BatchingEvaluator(const ModelRegistry& registry,
                                     BatchingConfig config)
    : registry_(registry), config_(config) {
  FEKF_CHECK(config_.max_batch >= 1, "max_batch must be >= 1");
  FEKF_CHECK(config_.max_wait_s >= 0.0, "max_wait_s must be >= 0");
  FEKF_CHECK(config_.workers >= 1, "workers must be >= 1");
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (i64 w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchingEvaluator::~BatchingEvaluator() { shutdown(); }

void BatchingEvaluator::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

std::future<EvalResult> BatchingEvaluator::submit(EvalRequest request) {
  // Freshness resolves NOW: serve-latest binds to the newest version at
  // submit time; later publishes do not move an already-queued request.
  const ModelSnapshot* snap = request.pin_version != 0
                                  ? registry_.version(request.pin_version)
                                  : registry_.latest();
  FEKF_CHECK(snap != nullptr,
             request.pin_version != 0
                 ? "pin_version was never published"
                 : "registry has no published model yet");

  const u64 request_id =
      g_next_request_id.fetch_add(1, std::memory_order_relaxed);
  obs::ScopedSpan enqueue_span("serve.enqueue", "serve");
  enqueue_span.arg("rid", static_cast<f64>(request_id));
  enqueue_span.arg("version", static_cast<f64>(snap->version));
  // Flow start inside the enqueue span: the arrow lands on the batch span
  // of whichever worker executes this request.
  obs::TraceRecorder::instance().flow("serve.request", "serve", request_id,
                                      /*start=*/true);

  Pending pending;
  // Geometry preprocessing on the walker's thread, not the worker's.
  pending.env = snap->model->prepare(request.snapshot);
  pending.with_forces = request.with_forces;
  pending.snapshot = snap;
  pending.request_id = request_id;
  pending.submit_seconds = registry_.now_seconds();
  pending.deadline_seconds = request.deadline_s >= 0.0
                                 ? pending.submit_seconds + request.deadline_s
                                 : -1.0;
  std::future<EvalResult> fut = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEKF_CHECK(!stop_, "submit after shutdown");
    queue_.push_back(std::move(pending));
    if (obs::metrics_enabled()) {
      auto& metrics = obs::MetricsRegistry::instance();
      metrics.counter("serve.requests").inc();
      metrics.gauge("serve.queue_depth")
          .set(static_cast<f64>(queue_.size()));
    }
  }
  cv_.notify_one();
  return fut;
}

EvalResult BatchingEvaluator::evaluate(const EvalRequest& request) {
  return submit(request).get();
}

std::vector<BatchingEvaluator::Pending> BatchingEvaluator::next_batch() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stopping and drained

    // The oldest request defines the batch key: its resolved snapshot and
    // force flag. Only key-matching requests may share a predict_batch.
    const ModelSnapshot* snap = queue_.front().snapshot;
    const bool with_forces = queue_.front().with_forces;
    const f64 now = registry_.now_seconds();
    const f64 close_at = queue_.front().submit_seconds + config_.max_wait_s;

    i64 matching = 0;
    bool deadline_hit = false;
    f64 wake_at = close_at;
    for (const Pending& p : queue_) {
      if (p.snapshot == snap && p.with_forces == with_forces &&
          matching < config_.max_batch) {
        ++matching;
      }
      if (p.deadline_seconds >= 0.0) {
        if (p.deadline_seconds <= now) {
          deadline_hit = true;
        } else {
          wake_at = std::min(wake_at, p.deadline_seconds);
        }
      }
    }

    if (stop_ || matching >= config_.max_batch || now >= close_at ||
        deadline_hit) {
      std::vector<Pending> batch;
      batch.reserve(static_cast<std::size_t>(matching));
      for (auto it = queue_.begin();
           it != queue_.end() &&
           batch.size() < static_cast<std::size_t>(config_.max_batch);) {
        if (it->snapshot == snap && it->with_forces == with_forces) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (obs::metrics_enabled()) {
        obs::MetricsRegistry::instance()
            .gauge("serve.queue_depth")
            .set(static_cast<f64>(queue_.size()));
      }
      return batch;
    }

    cv_.wait_for(lock, std::chrono::duration<f64>(wake_at - now));
  }
}

void BatchingEvaluator::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      // The batch-form span covers the whole coalescing window: waiting
      // for the first request plus the max_wait_s gathering time.
      obs::ScopedSpan form_span("serve.batch_form", "serve");
      batch = next_batch();
      form_span.arg("size", static_cast<f64>(batch.size()));
    }
    if (batch.empty()) return;
    const ModelSnapshot* snap = batch.front().snapshot;
    const bool with_forces = batch.front().with_forces;

    obs::ScopedSpan span("serve.batch", "serve");
    span.arg("size", static_cast<f64>(batch.size()));
    span.arg("version", static_cast<f64>(snap->version));
    // Flow finish per member: links each request's enqueue span (where
    // the flow started) to this batch span.
    if (obs::TraceRecorder::capturing()) {
      auto& recorder = obs::TraceRecorder::instance();
      for (const Pending& p : batch) {
        recorder.flow("serve.request", "serve", p.request_id,
                      /*start=*/false);
      }
    }

    std::vector<std::shared_ptr<const deepmd::EnvData>> envs;
    envs.reserve(batch.size());
    for (const Pending& p : batch) envs.push_back(p.env);

    const f64 eval_start = registry_.now_seconds();
    try {
      std::vector<EvalResult> results;
      {
        obs::ScopedSpan execute_span("serve.execute", "serve");
        execute_span.arg("size", static_cast<f64>(batch.size()));
        execute_span.arg("version", static_cast<f64>(snap->version));
        results = evaluate_prepared(*snap->model, envs, with_forces);
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        results[i].model_version = snap->version;
        results[i].request_id = batch[i].request_id;
        results[i].queue_seconds = eval_start - batch[i].submit_seconds;
        batch[i].promise.set_value(std::move(results[i]));
        obs::TraceRecorder::instance().instant(
            "serve.complete", "serve", "rid",
            static_cast<f64>(batch[i].request_id), "latency_s",
            registry_.now_seconds() - batch[i].submit_seconds);
      }
    } catch (...) {
      for (Pending& p : batch) {
        p.promise.set_exception(std::current_exception());
      }
    }

    // First batch served from a never-before-served version closes the
    // publish-to-first-serve window for it.
    u64 prev = max_served_version_.load(std::memory_order_relaxed);
    bool first_serve = snap->version > prev;
    while (snap->version > prev &&
           !max_served_version_.compare_exchange_weak(
               prev, snap->version, std::memory_order_relaxed)) {
      first_serve = snap->version > prev;
    }

    if (obs::metrics_enabled()) {
      auto& metrics = obs::MetricsRegistry::instance();
      metrics.counter("serve.batches").inc();
      metrics.histogram("serve.batch_occupancy")
          .record(static_cast<f64>(batch.size()));
      metrics.histogram("serve.batch_eval_seconds")
          .record(registry_.now_seconds() - eval_start);
      const f64 complete_seconds = registry_.now_seconds();
      for (const Pending& p : batch) {
        metrics.histogram("serve.queue_wait_seconds")
            .record(eval_start - p.submit_seconds);
        // Submit-to-complete: the request-level SLO bench_serving reports
        // as p50/p90/p99 and ci/budgets.json gates ("obs" section).
        metrics.histogram("serve.request_latency_seconds")
            .record(complete_seconds - p.submit_seconds);
      }
      if (first_serve) {
        metrics.histogram("serve.publish_to_first_serve_seconds")
            .record(registry_.now_seconds() - snap->publish_seconds);
      }
    }
  }
}

}  // namespace fekf::serve
