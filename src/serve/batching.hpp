// Request-coalescing evaluator (DESIGN.md §14).
//
// Many MD-walker threads submit EvalRequests concurrently; worker threads
// drain the queue and evaluate same-model-version runs of requests in ONE
// DeepmdModel::predict_batch pass — amortizing per-request launch overhead
// exactly the way the minibatch FEKF amortizes update overhead. Geometry
// preprocessing (prepare(), the per-snapshot neighbor/env build) runs on
// the submitting walker's thread, so the worker's critical path is pure
// model math.
//
// Freshness: a request's model version is resolved at submit time —
// serve-latest requests bind to the registry's newest version THEN, and a
// publish landing while they sit in the queue does not retroactively move
// them (no torn reads, stable batch membership). pin_version requests bind
// to that exact version; a batch only ever contains one version.
//
// Deadlines: a request with deadline_s >= 0 is dispatched no later than
// its deadline even if the batch is under-full; otherwise batches close at
// max_batch requests or max_wait_s after their oldest member, whichever
// comes first.
//
// The arena allocator is never armed here: its reset-at-scope-exit is
// process-global and walker threads allocate concurrently (tensor/
// workspace.hpp). Runs mixing a live trainer with serving should disable
// the arena (Workspace::set_enabled(false)) — see DESIGN.md §14.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/evaluator.hpp"
#include "serve/registry.hpp"

namespace fekf::serve {

struct BatchingConfig {
  i64 max_batch = 16;       ///< FEKF_SERVE_MAX_BATCH
  f64 max_wait_s = 200e-6;  ///< FEKF_SERVE_MAX_WAIT_US
  i64 workers = 1;          ///< FEKF_SERVE_WORKERS

  /// Defaults overridden by the FEKF_SERVE_* env knobs (core/env.hpp).
  static BatchingConfig from_env();
};

class BatchingEvaluator final : public Evaluator {
 public:
  /// The registry must have at least one published version before the
  /// first submit (submitting against an empty registry throws).
  explicit BatchingEvaluator(const ModelRegistry& registry,
                             BatchingConfig config = BatchingConfig::from_env());
  ~BatchingEvaluator() override;
  BatchingEvaluator(const BatchingEvaluator&) = delete;
  BatchingEvaluator& operator=(const BatchingEvaluator&) = delete;

  /// Asynchronous submit: resolves the model version, builds the env on
  /// the calling thread, and enqueues. Throws on unknown pin_version or
  /// empty registry; throws after shutdown().
  std::future<EvalResult> submit(EvalRequest request);

  /// Blocking evaluate == submit(...).get(). Thread-safe.
  EvalResult evaluate(const EvalRequest& request) override;

  /// Stop accepting requests, drain the queue, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Pending {
    std::shared_ptr<const deepmd::EnvData> env;
    bool with_forces = true;
    const ModelSnapshot* snapshot = nullptr;  ///< resolved version
    u64 request_id = 0;                       ///< trace flow id
    f64 submit_seconds = 0.0;                 ///< registry clock
    f64 deadline_seconds = -1.0;              ///< absolute; < 0: none
    std::promise<EvalResult> promise;
  };

  void worker_loop();
  /// Pop the next batch (oldest request's version, up to max_batch
  /// members). Returns empty only when stopping and the queue is dry.
  std::vector<Pending> next_batch();

  const ModelRegistry& registry_;
  BatchingConfig config_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;

  std::atomic<u64> max_served_version_{0};
  std::vector<std::thread> workers_;
};

}  // namespace fekf::serve
