#include "serve/evaluator.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace fekf::serve {

namespace {

f64 now_seconds() {
  return std::chrono::duration<f64>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Convert one Prediction into an EvalResult, scattering the type-sorted
/// force rows back to original atom order through env->perm.
EvalResult to_result(const deepmd::EnvData& env,
                     const deepmd::DeepmdModel::Prediction& pred,
                     bool with_forces) {
  EvalResult out;
  out.energy = static_cast<f64>(pred.energy.item());
  if (with_forces) {
    const Tensor& f = pred.forces.value();
    out.forces.assign(static_cast<std::size_t>(env.natoms), md::Vec3{});
    for (i64 sorted = 0; sorted < env.natoms; ++sorted) {
      const i64 orig = env.perm[static_cast<std::size_t>(sorted)];
      out.forces[static_cast<std::size_t>(orig)] =
          md::Vec3{f.at(sorted, 0), f.at(sorted, 1), f.at(sorted, 2)};
    }
  }
  return out;
}

}  // namespace

EvalResult evaluate_with(const deepmd::DeepmdModel& model,
                         const EvalRequest& request) {
  obs::ScopedSpan span("serve.evaluate", "serve");
  const f64 t0 = now_seconds();
  auto env = model.prepare(request.snapshot);
  auto pred = model.predict(env, request.with_forces);
  EvalResult out = to_result(*env, pred, request.with_forces);
  out.eval_seconds = now_seconds() - t0;
  return out;
}

std::vector<EvalResult> evaluate_prepared(
    const deepmd::DeepmdModel& model,
    std::span<const std::shared_ptr<const deepmd::EnvData>> envs,
    bool with_forces) {
  obs::ScopedSpan span("serve.evaluate_batch", "serve");
  span.arg("requests", static_cast<f64>(envs.size()));
  const f64 t0 = now_seconds();
  auto preds = model.predict_batch(envs, with_forces);
  const f64 elapsed = now_seconds() - t0;
  std::vector<EvalResult> out;
  out.reserve(envs.size());
  for (std::size_t i = 0; i < envs.size(); ++i) {
    EvalResult r = to_result(*envs[i], preds[i], with_forces);
    r.eval_seconds = elapsed;
    r.batch_size = static_cast<i64>(envs.size());
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<EvalResult> evaluate_batch_with(
    const deepmd::DeepmdModel& model, std::span<const EvalRequest> requests) {
  FEKF_CHECK(!requests.empty(), "empty request batch");
  const bool with_forces = requests.front().with_forces;
  std::vector<std::shared_ptr<const deepmd::EnvData>> envs;
  envs.reserve(requests.size());
  for (const EvalRequest& req : requests) {
    FEKF_CHECK(req.with_forces == with_forces,
               "mixed with_forces in one batch");
    envs.push_back(model.prepare(req.snapshot));
  }
  return evaluate_prepared(model, envs, with_forces);
}

}  // namespace fekf::serve
