// The one stable evaluation API (DESIGN.md §14).
//
// Before this header there were three ways to ask a model for energy and
// forces: DeepmdModel::predict on a hand-prepared env, the ModelPotential
// MD adapter, and ad-hoc example code. All of them now funnel through
// EvalRequest/EvalResult value types, so the direct path, the batched
// serving path, and the MD adapter are guaranteed to speak the same
// contract (original-atom-order forces, energy in eV) — and the batched
// path is testably bit-exact against the direct one (test_serve.cpp).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "deepmd/model.hpp"
#include "md/system.hpp"

namespace fekf::serve {

/// One evaluation request. The snapshot's energy/forces fields are inputs
/// to training, not to evaluation — they are ignored here.
struct EvalRequest {
  md::Snapshot snapshot;
  bool with_forces = true;

  /// Freshness: 0 serves the latest published version at submit time;
  /// a non-zero value pins that exact version (it must exist). Only the
  /// registry-backed evaluators interpret this; the direct path always
  /// evaluates the model it wraps.
  u64 pin_version = 0;

  /// Max seconds the request may sit in a batching queue before it is
  /// dispatched even in an under-full batch; < 0 means no deadline.
  f64 deadline_s = -1.0;
};

/// One evaluation result.
struct EvalResult {
  f64 energy = 0.0;             ///< eV
  std::vector<md::Vec3> forces; ///< eV/Å, ORIGINAL atom order; empty
                                ///< unless with_forces was set
  u64 model_version = 0;        ///< registry version served (0: unversioned)
  u64 request_id = 0;           ///< per-process unique id (batching path);
                                ///< also the trace flow id linking the
                                ///< request's enqueue span to its batch
  f64 queue_seconds = 0.0;      ///< time spent queued (batching path)
  f64 eval_seconds = 0.0;       ///< model time of the (possibly shared) pass
  i64 batch_size = 1;           ///< requests coalesced into that pass
};

/// Anything that can answer an EvalRequest: DirectEvaluator (synchronous,
/// unversioned), BatchingEvaluator (batching.hpp), future remote/sharded
/// backends.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Blocking evaluate. Thread-safe for concurrent callers.
  virtual EvalResult evaluate(const EvalRequest& request) = 0;
};

/// The single direct entrypoint: prepare + predict + scatter forces back
/// to original atom order. Everything that used to call predict() for
/// inference goes through here.
EvalResult evaluate_with(const deepmd::DeepmdModel& model,
                         const EvalRequest& request);

/// Batched entrypoint over already-prepared environments (the batching
/// queue prepares each env on its walker's thread). results[i] answers
/// envs[i]; every result's eval_seconds/batch_size describe the shared
/// pass. Bit-exact per request vs evaluate_with under the `auto` kernel
/// policy (see DeepmdModel::predict_batch).
std::vector<EvalResult> evaluate_prepared(
    const deepmd::DeepmdModel& model,
    std::span<const std::shared_ptr<const deepmd::EnvData>> envs,
    bool with_forces);

/// Convenience: prepare + evaluate a batch of requests in one shared pass.
std::vector<EvalResult> evaluate_batch_with(const deepmd::DeepmdModel& model,
                                            std::span<const EvalRequest> requests);

/// Synchronous adapter over a model the caller owns. model_version is
/// always 0 (unversioned); pin_version/deadline_s are ignored.
class DirectEvaluator final : public Evaluator {
 public:
  explicit DirectEvaluator(const deepmd::DeepmdModel& model) : model_(model) {}

  EvalResult evaluate(const EvalRequest& request) override {
    return evaluate_with(model_, request);
  }

 private:
  const deepmd::DeepmdModel& model_;
};

}  // namespace fekf::serve
