#include "serve/potential.hpp"

namespace fekf::serve {

f64 ModelPotential::compute(std::span<const md::Vec3> positions,
                            std::span<const i32> types, const md::Cell& cell,
                            const md::NeighborList& nl,
                            std::span<md::Vec3> forces) const {
  (void)nl;  // the environment matrix builds its own typed neighbor slots
  FEKF_CHECK(positions.size() == types.size() &&
                 positions.size() == forces.size(),
             "array size mismatch");
  EvalRequest request;
  request.snapshot.cell = cell;
  request.snapshot.positions.assign(positions.begin(), positions.end());
  request.snapshot.types.assign(types.begin(), types.end());
  request.snapshot.forces.assign(positions.size(), md::Vec3{});
  request.with_forces = true;

  const EvalResult result = evaluator_->evaluate(request);
  for (std::size_t i = 0; i < forces.size(); ++i) {
    forces[i] += result.forces[i];
  }
  return result.energy;
}

}  // namespace fekf::serve
