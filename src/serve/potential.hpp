// Adapter: drive MD from any serve::Evaluator, closing the loop the paper
// motivates — train a force field in minutes, then run molecular dynamics
// with it. Replaces the old deepmd::ModelPotential, which was one of the
// three divergent evaluation paths the serve API collapses: this one is a
// thin shim over EvalRequest/EvalResult, so MD exercises exactly the code
// path the serving bench and tests gate.
#pragma once

#include <memory>

#include "md/potential.hpp"
#include "serve/evaluator.hpp"

namespace fekf::serve {

class ModelPotential final : public md::Potential {
 public:
  /// Evaluate through `evaluator` (direct or batching; non-owning, must
  /// outlive this object). `rcut` must match the served models' cutoff.
  ModelPotential(Evaluator& evaluator, f64 rcut)
      : evaluator_(&evaluator), rcut_(rcut) {}

  /// Convenience for the common single-model case: wraps `model` (which
  /// must have fitted statistics and outlive this object) in an owned
  /// DirectEvaluator.
  explicit ModelPotential(const deepmd::DeepmdModel& model)
      : owned_(std::make_unique<DirectEvaluator>(model)),
        evaluator_(owned_.get()),
        rcut_(model.config().rcut) {}

  f64 cutoff() const override { return rcut_; }

  f64 compute(std::span<const md::Vec3> positions,
              std::span<const i32> types, const md::Cell& cell,
              const md::NeighborList& nl,
              std::span<md::Vec3> forces) const override;

 private:
  std::unique_ptr<DirectEvaluator> owned_;
  Evaluator* evaluator_;
  f64 rcut_;
};

}  // namespace fekf::serve
