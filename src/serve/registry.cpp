#include "serve/registry.hpp"

#include "deepmd/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fekf::serve {

ModelRegistry::~ModelRegistry() {
  const u64 n = count_.load(std::memory_order_acquire);
  const u64 used = (n + kChunk - 1) / kChunk;
  for (u64 c = 0; c < used; ++c) {
    delete chunks_[c].load(std::memory_order_relaxed);
  }
}

f64 ModelRegistry::now_seconds() const {
  return std::chrono::duration<f64>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

u64 ModelRegistry::publish(std::shared_ptr<const deepmd::DeepmdModel> model,
                           i64 source_step) {
  FEKF_CHECK(model != nullptr, "cannot publish a null model");
  obs::ScopedSpan span("serve.publish", "serve");

  // try_lock first so publisher-vs-publisher contention — the one way a
  // publish can stall, since readers never lock — is observable. The
  // serving CI budget pins this counter at zero for the single-trainer
  // topology.
  if (!publish_mutex_.try_lock()) {
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::instance().counter("serve.publish_stalls").inc();
    }
    publish_mutex_.lock();
  }
  std::lock_guard<std::mutex> lock(publish_mutex_, std::adopt_lock);

  const u64 v = count_.load(std::memory_order_relaxed) + 1;
  const u64 chunk_idx = (v - 1) / kChunk;
  FEKF_CHECK(chunk_idx < kMaxChunks, "registry full (1M versions)");

  if (const ModelSnapshot* first = version(1); first != nullptr) {
    FEKF_CHECK(model->num_types() == first->model->num_types() &&
                   model->sel() == first->model->sel() &&
                   model->config().rcut == first->model->config().rcut,
               "published model is prepare()-incompatible with version 1");
  }

  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  ModelSnapshot& slot = chunk->slots[(v - 1) % kChunk];
  slot.version = v;
  slot.source_step = source_step;
  slot.publish_seconds = now_seconds();
  slot.model = std::move(model);

  // The release store is the publication point: every slot write above
  // happens-before any reader that acquires count_ >= v.
  count_.store(v, std::memory_order_release);

  span.arg("version", static_cast<f64>(v));
  if (obs::metrics_enabled()) {
    auto& metrics = obs::MetricsRegistry::instance();
    metrics.counter("serve.publishes").inc();
    metrics.gauge("serve.latest_version").set(static_cast<f64>(v));
  }
  return v;
}

u64 ModelRegistry::publish_copy(const deepmd::DeepmdModel& model,
                                i64 source_step) {
  const f64 t0 = now_seconds();
  auto clone =
      std::make_shared<const deepmd::DeepmdModel>(deepmd::clone_model(model));
  const u64 v = publish(std::move(clone), source_step);
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::instance()
        .histogram("serve.publish_seconds")
        .record(now_seconds() - t0);
  }
  return v;
}

const ModelSnapshot* ModelRegistry::latest() const {
  const u64 n = count_.load(std::memory_order_acquire);
  return n == 0 ? nullptr : version(n);
}

const ModelSnapshot* ModelRegistry::version(u64 v) const {
  if (v == 0 || v > count_.load(std::memory_order_acquire)) return nullptr;
  const Chunk* chunk = chunks_[(v - 1) / kChunk].load(std::memory_order_acquire);
  return &chunk->slots[(v - 1) % kChunk];
}

}  // namespace fekf::serve
