// Versioned immutable-snapshot model registry (DESIGN.md §14).
//
// The trainer publishes checkpointed weights; MD walkers read them. The
// two sides meet at exactly one seam — a monotonically increasing publish
// counter — designed so that readers are wait-free and publishing cost is
// independent of reader count:
//
//   * Snapshots are immutable. publish_copy() deep-clones the trainer's
//     live weights (on the trainer thread, via the bit-exact serialize
//     round trip), so no published model ever aliases mutable state.
//   * Storage is an append-only chunked array of snapshot slots behind
//     std::atomic<Chunk*> pointers. A slot is fully written BEFORE the
//     publish counter is advanced with release ordering; readers acquire
//     the counter and index the array with plain loads. No reader ever
//     takes a lock, so a flood of readers cannot stall the trainer (the
//     `serving` CI budget holds publish latency flat under load).
//   * Version ids are 1-based and dense: version v lives at slot v-1
//     forever (snapshots are retained for the registry's lifetime, so a
//     pinned reader can hold any historical version with no refcount
//     traffic on the hot path).
//
// The only mutual exclusion is between concurrent publishers (one mutex;
// the expected topology is a single trainer, making contention — counted
// in serve.publish_stalls — structurally zero).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "deepmd/model.hpp"
#include "train/observer.hpp"

namespace fekf::serve {

/// One published, immutable model version.
struct ModelSnapshot {
  u64 version = 0;       ///< 1-based, dense, monotonic
  i64 source_step = -1;  ///< trainer step that produced it (-1: unknown)
  f64 publish_seconds = 0.0;  ///< registry clock at publish time
  std::shared_ptr<const deepmd::DeepmdModel> model;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ~ModelRegistry();
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publish an immutable model the caller promises never to mutate.
  /// Returns the assigned version. All versions must be prepared()-
  /// compatible (same types/sel/cutoff as version 1) so an env built
  /// against any version serves every version; violations throw.
  u64 publish(std::shared_ptr<const deepmd::DeepmdModel> model,
              i64 source_step = -1);

  /// Deep-clone `model` (bit-exact) on the calling thread, then publish
  /// the clone. This is the trainer-facing entrypoint: the trainer's live
  /// weights stay private and mutable.
  u64 publish_copy(const deepmd::DeepmdModel& model, i64 source_step = -1);

  /// Latest snapshot, or nullptr before the first publish. Wait-free.
  const ModelSnapshot* latest() const;

  /// Snapshot for a specific version, or nullptr if never published.
  /// Wait-free; valid for the registry's lifetime.
  const ModelSnapshot* version(u64 v) const;

  /// Latest version id (0 before the first publish). Wait-free.
  u64 latest_version() const { return count_.load(std::memory_order_acquire); }

  /// Seconds on the registry's steady clock (publish_seconds timebase).
  f64 now_seconds() const;

 private:
  static constexpr u64 kChunk = 256;
  static constexpr u64 kMaxChunks = 4096;  ///< 1M versions; publish throws past it
  struct Chunk {
    std::array<ModelSnapshot, kChunk> slots;
  };

  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<u64> count_{0};
  std::mutex publish_mutex_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

/// TrainObserver that republishes the trainer's model into a registry:
/// every checkpoint (the ISSUE's `on_checkpoint` → publish wiring), plus
/// optionally every `every_steps` optimizer steps for checkpoint-free
/// runs. Hooks run on the training thread, so the deep clone it takes is
/// trivially consistent — the trainer is between steps.
class RegistryPublisher final : public train::TrainObserver {
 public:
  RegistryPublisher(ModelRegistry& registry, const deepmd::DeepmdModel& model,
                    i64 every_steps = 0)
      : registry_(registry), model_(model), every_steps_(every_steps) {}

  void on_step(const train::StepEvent& event) override {
    if (every_steps_ > 0 && event.step % every_steps_ == 0 &&
        !event.rolled_back) {
      registry_.publish_copy(model_, event.step);
    }
  }

  void on_checkpoint(const train::CheckpointEvent& event) override {
    registry_.publish_copy(model_, event.step);
  }

 private:
  ModelRegistry& registry_;
  const deepmd::DeepmdModel& model_;
  i64 every_steps_;
};

}  // namespace fekf::serve
