#include "tensor/dispatch.hpp"

#include <algorithm>

#include "core/env.hpp"
#include "core/log.hpp"

namespace fekf::dispatch {

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSimd: return "simd";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

const char* exactness_name(Exactness e) {
  return e == Exactness::kBitExact ? "bit_exact" : "tolerance";
}

const CpuFeatures& detected_cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    // GCC/Clang builtin cpuid probes; safe on any x86 at runtime.
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
#endif
    return f;
  }();
  return features;
}

bool Registry::parse_backend(std::string_view text,
                             std::optional<Level>* out) {
  if (text.empty() || text == "auto") {
    *out = std::nullopt;
    return true;
  }
  for (Level level : {Level::kScalar, Level::kSimd, Level::kAvx2}) {
    if (text == level_name(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

Registry::Registry() : detected_(detected_cpu_features()) {
  if (const char* env = env::get("FEKF_KERNEL_BACKEND")) {
    if (!parse_backend(env, &requested_)) {
      // Unknown names degrade to auto — an env typo must not abort
      // training, and auto is the always-safe bit-exact policy.
      FEKF_WARN << "FEKF_KERNEL_BACKEND='" << env
                << "' is not scalar|simd|avx2|auto; using auto";
      requested_ = std::nullopt;
    }
  }
}

Registry& Registry::instance() {
  // Leaked intentionally: process lifetime. Deliberately does NOT run the
  // family registration hooks here: the hooks call back into instance(),
  // and running them inside this function's static initialization would
  // re-enter the init guard on the same thread (futex deadlock).
  // Registration is the consumers' job — every Dispatched handle runs its
  // family's hook in its constructor, and tests/benches call the hooks
  // explicitly before enumerating the registry.
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::add(Variant v) {
  FEKF_CHECK(!v.kernel.empty() && !v.name.empty() && v.fn != nullptr,
             "dispatch variant registration needs kernel, name and fn");
  FEKF_CHECK((v.exactness == Exactness::kBitExact) == (v.tolerance == 0.0),
             "dispatch variant " + v.kernel + "/" + v.name +
                 ": tolerance must be 0 iff bit_exact");
  std::lock_guard<std::mutex> lock(mutex_);
  for (Variant& existing : variants_) {
    if (existing.kernel == v.kernel && existing.name == v.name) {
      existing = std::move(v);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
  }
  variants_.push_back(std::move(v));
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

bool Registry::eligible(const Variant& v, CpuFeatures features,
                        std::optional<Level> requested) const {
  if (!v.compiled) return false;
  if (v.isa == "avx2+fma" && !(features.avx2 && features.fma)) return false;
  if (requested.has_value()) {
    // Forced ladder level: anything at or below, tolerance included.
    return v.level <= *requested;
  }
  // Auto: fastest BIT-EXACT variant — the default never moves numerics.
  return v.exactness == Exactness::kBitExact;
}

Variant Registry::selected(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const CpuFeatures features = features_override_.value_or(detected_);
  const Variant* best = nullptr;
  for (const Variant& v : variants_) {
    if (v.kernel != kernel) continue;
    if (!eligible(v, features, requested_)) continue;
    if (best == nullptr || v.priority > best->priority ||
        (v.priority == best->priority &&
         static_cast<int>(v.level) > static_cast<int>(best->level))) {
      best = &v;
    }
  }
  FEKF_CHECK(best != nullptr,
             "dispatch: no eligible variant for kernel '" + kernel +
                 "' (scalar must always be registered)");
  return *best;
}

const std::optional<Variant> Registry::find(const std::string& kernel,
                                            const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Variant& v : variants_) {
    if (v.kernel == kernel && v.name == name) return v;
  }
  return std::nullopt;
}

std::vector<std::string> Registry::kernels() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const Variant& v : variants_) {
    if (std::find(names.begin(), names.end(), v.kernel) == names.end()) {
      names.push_back(v.kernel);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<Variant> Registry::variants(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Variant> out;
  for (const Variant& v : variants_) {
    if (v.kernel == kernel) out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Variant& a, const Variant& b) {
    return a.priority < b.priority;
  });
  return out;
}

std::optional<Level> Registry::requested() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requested_;
}

void Registry::set_backend(std::optional<Level> forced) {
  std::lock_guard<std::mutex> lock(mutex_);
  requested_ = forced;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void Registry::set_cpu_features_for_test(
    std::optional<CpuFeatures> features) {
  std::lock_guard<std::mutex> lock(mutex_);
  features_override_ = features;
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

CpuFeatures Registry::cpu_features() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return features_override_.value_or(detected_);
}

}  // namespace fekf::dispatch
