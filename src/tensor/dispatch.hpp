// Runtime kernel-dispatch registry (DESIGN.md §13).
//
// Each hot kernel registers named VARIANTS of its inner body — the scalar
// reference, `#pragma omp simd`-style vectorized bodies, AVX2/FMA
// intrinsics, fixed-shape template specializations — and the registry picks
// one per kernel at startup from CPU feature detection, overridable with
// FEKF_KERNEL_BACKEND (scalar | simd | avx2 | auto) or programmatically via
// set_backend(). In the spirit of MFEM's kernel_dispatch.hpp, except that
// every registration also DECLARES its exactness class against the scalar
// reference:
//
//   bit_exact       the variant reproduces the scalar path bit for bit
//                   (same per-element operation sequence, same accumulation
//                   order, same FMA-contraction shape) — asserted with
//                   memcmp in tests/test_dispatch.cpp
//   tolerance(eps)  the variant reorders a floating-point reduction (multi-
//                   accumulator SIMD dot products, pragma-simd reductions);
//                   every element stays within relative eps of the scalar
//                   result — the bound is asserted, not assumed
//
// Selection policy (the exactness CONTRACT, DESIGN.md §13):
//   * auto (default): the fastest registered variant that is compiled in,
//     supported by this CPU, and bit_exact. The default backend NEVER
//     changes a training trajectory.
//   * forced level L: the fastest variant at level <= L that is compiled
//     in and CPU-supported, tolerance-class variants included. Requesting
//     a level the CPU (or the build) cannot honor falls back gracefully to
//     the best eligible variant below it — never an error.
// The scalar variant is always registered and always eligible, so
// resolution cannot fail.
//
// Variants are width-agnostic: each is a per-panel / per-chunk body invoked
// from the same parallel_for partitions as before, so the §9 determinism
// model (bit-identical results at any thread width) holds PER VARIANT.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"

namespace fekf::dispatch {

/// Backend ladder for FEKF_KERNEL_BACKEND. Ordered: a forced level L makes
/// every variant at level <= L eligible (subject to ISA support).
enum class Level : int { kScalar = 0, kSimd = 1, kAvx2 = 2 };

const char* level_name(Level level);

enum class Exactness { kBitExact, kTolerance };

const char* exactness_name(Exactness e);

/// CPU features relevant to the registered variants, detected once at
/// startup (x86 cpuid via compiler builtins; all-false elsewhere).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// One registered kernel variant. `fn` is the variant body, cast to the
/// kernel family's function-pointer type by the typed accessors in
/// variants.hpp — the kernel name keys the type by convention.
struct Variant {
  std::string kernel;     ///< family name, e.g. "gemm_f32"
  std::string name;       ///< variant name, e.g. "avx2"
  Level level;            ///< ladder position for FEKF_KERNEL_BACKEND
  std::string isa;        ///< "generic" or the ISA requirement ("avx2+fma")
  bool compiled = true;   ///< false when the build lacked the ISA flags
  Exactness exactness = Exactness::kBitExact;
  f64 tolerance = 0.0;    ///< max per-element relative error vs scalar
  int priority = 0;       ///< among eligible variants, highest wins
  void* fn = nullptr;
  std::string note;       ///< one-line contract rationale (docs/KERNELS.md)
};

class Registry {
 public:
  /// The process-wide registry. First call registers the built-in tensor
  /// variant families and reads FEKF_KERNEL_BACKEND.
  static Registry& instance();

  /// Registers a variant. Later registrations of the same (kernel, name)
  /// pair replace the earlier one (test hooks use this).
  void add(Variant v);

  /// The variant the current policy selects for `kernel`. Never fails for
  /// a registered kernel: the scalar variant is always eligible.
  Variant selected(const std::string& kernel) const;

  /// Introspection for tests, benches and the docs drift check.
  const std::optional<Variant> find(const std::string& kernel,
                                    const std::string& name) const;
  std::vector<std::string> kernels() const;
  std::vector<Variant> variants(const std::string& kernel) const;

  /// Current backend request: nullopt = auto (bit-exact-only policy).
  std::optional<Level> requested() const;
  /// Forces the backend level (nullopt restores auto). Bumps the
  /// generation so cached Dispatched handles re-resolve.
  void set_backend(std::optional<Level> forced);

  /// Features used for eligibility. Tests inject a feature set (e.g. a
  /// CPU without AVX2) to exercise the graceful-fallback path; nullopt
  /// restores the detected features. Bumps the generation.
  void set_cpu_features_for_test(std::optional<CpuFeatures> features);
  CpuFeatures cpu_features() const;

  /// Monotonic counter bumped by any selection-relevant change.
  u64 generation() const { return generation_.load(std::memory_order_acquire); }

  /// Parses a FEKF_KERNEL_BACKEND value. "auto"/"" parse to nullopt
  /// (auto); returns false for an unrecognized name.
  static bool parse_backend(std::string_view text, std::optional<Level>* out);

 private:
  Registry();
  bool eligible(const Variant& v, CpuFeatures features,
                std::optional<Level> requested) const;

  mutable std::mutex mutex_;
  std::vector<Variant> variants_;
  std::optional<Level> requested_;
  CpuFeatures detected_;
  std::optional<CpuFeatures> features_override_;
  std::atomic<u64> generation_{1};
};

/// Detected features of the executing CPU (cached).
const CpuFeatures& detected_cpu_features();

/// Typed, cached resolution handle. Constructing one runs the family's
/// registration hook (idempotent); get() re-resolves only when the
/// registry generation moved (backend override, feature injection), so the
/// steady-state cost is one atomic load. Resolution happens on the calling
/// thread BEFORE the kernel enters a parallel region.
template <typename FnPtr>
class Dispatched {
 public:
  Dispatched(const char* kernel, void (*ensure_registered)())
      : kernel_(kernel) {
    ensure_registered();
  }

  FnPtr get() const {
    const u64 gen = Registry::instance().generation();
    if (gen != cached_generation_.load(std::memory_order_acquire)) {
      cached_fn_.store(
          reinterpret_cast<FnPtr>(Registry::instance().selected(kernel_).fn),
          std::memory_order_release);
      cached_generation_.store(gen, std::memory_order_release);
    }
    return cached_fn_.load(std::memory_order_acquire);
  }

 private:
  const char* kernel_;
  mutable std::atomic<u64> cached_generation_{0};
  mutable std::atomic<FnPtr> cached_fn_{nullptr};
};

}  // namespace fekf::dispatch
