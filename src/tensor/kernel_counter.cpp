#include "tensor/kernel_counter.hpp"

namespace fekf {

std::atomic<bool> KernelCounter::enabled_{false};
std::atomic<i64> KernelCounter::total_{0};
std::mutex KernelCounter::mutex_;

std::map<std::string, i64>& KernelCounter::names() {
  static std::map<std::string, i64> m;
  return m;
}

void KernelCounter::record(const char* name) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  ++names()[name];
}

// enable/reset/total use sequentially-consistent accesses: they run on the
// control thread around parallel regions (KernelCountScope), and the seq-cst
// fences order them against the workers' relaxed record() increments.
void KernelCounter::enable(bool on) { enabled_.store(on); }
bool KernelCounter::enabled() { return enabled_.load(); }

void KernelCounter::reset() {
  total_.store(0);
  std::lock_guard<std::mutex> lock(mutex_);
  names().clear();
}

i64 KernelCounter::total() { return total_.load(); }

std::map<std::string, i64> KernelCounter::breakdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  return names();
}

}  // namespace fekf
