// Kernel-launch accounting.
//
// The paper's Figure 7(b) measures the number of CUDA kernels launched per
// training iteration at each optimization level (baseline autograd ->
// hand-written derivatives -> fusion -> optimizer kernels). In this CPU
// reproduction, every primitive tensor kernel reports a "launch" here; fused
// custom kernels report exactly one. The *ratio* between configurations is
// the quantity the experiment reproduces.
//
// Thread safety: record() may be called concurrently from thread-pool
// workers (per-sample measurement assembly runs forward passes in
// parallel). The total is a relaxed atomic and the per-name breakdown is
// mutex-guarded, so counts are EXACT — not approximate — at any thread
// width; bench_fig7bc_kernels asserts 1-thread and N-thread launch counts
// are identical. Kernels record once per launch on the thread that issues
// the kernel, never per worker chunk, so parallelizing a kernel's interior
// does not change its count.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <string>

#include "core/common.hpp"
#include "obs/trace.hpp"

namespace fekf {

class KernelCounter {
 public:
  /// Record one launch of kernel `name`. Cheap when disabled (single
  /// relaxed atomic load).
  static void record(const char* name);

  /// Enable/disable counting and per-name breakdown collection.
  static void enable(bool on);
  static bool enabled();

  static void reset();
  static i64 total();

  /// Per-kernel-name launch counts since the last reset.
  static std::map<std::string, i64> breakdown();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<i64> total_;
  static std::mutex mutex_;
  static std::map<std::string, i64>& names();
};

/// RAII kernel-launch marker placed at the top of every primitive kernel:
/// records one KernelCounter launch AND — when FEKF_TRACE_KERNELS is on
/// top of tracing — opens a "kernel"-category span covering the kernel
/// body, so every counted launch in Figure 7(b) is attributable on the
/// trace timeline. `name` must be a string literal. Disabled cost: the
/// counter's relaxed load plus one relaxed load for the span gate.
class KernelLaunch {
 public:
  explicit KernelLaunch(const char* name)
      : span_(obs::TraceRecorder::kernel_spans_enabled() ? name : nullptr,
              "kernel") {
    KernelCounter::record(name);
  }
  KernelLaunch(const KernelLaunch&) = delete;
  KernelLaunch& operator=(const KernelLaunch&) = delete;

 private:
  obs::ScopedSpan span_;
};

/// RAII: enable counting, reset, and read the delta on destruction.
class KernelCountScope {
 public:
  KernelCountScope() : was_enabled_(KernelCounter::enabled()) {
    KernelCounter::enable(true);
    start_ = KernelCounter::total();
  }
  ~KernelCountScope() { KernelCounter::enable(was_enabled_); }
  KernelCountScope(const KernelCountScope&) = delete;
  KernelCountScope& operator=(const KernelCountScope&) = delete;

  i64 count() const { return KernelCounter::total() - start_; }

 private:
  bool was_enabled_;
  i64 start_ = 0;
};

}  // namespace fekf
