#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/variants/variants.hpp"

// Threading (DESIGN.md "Threading & determinism"): every kernel below
// parallelizes over an output partition whose elements are written by
// exactly one task (row panels, column panels, flat chunks), so results are
// bit-exact for any thread width. Reductions that fold a whole range into
// one scalar go through parallel_reduce_f64, whose fixed chunking pins the
// combine order independently of the width. Grain sizes follow the
// kGrainWork policy: unit-test-sized tensors run serial.
//
// Hot kernels route their inner bodies through the dispatch registry
// (DESIGN.md §13): the handle resolves the selected variant on the calling
// thread BEFORE the parallel region, and the partition/launch structure is
// unchanged — only the per-panel/per-chunk body varies by backend.

namespace fekf::kernels {

namespace {

dispatch::Dispatched<dispatch::GemmPanelFn>& gemm_dispatch() {
  static dispatch::Dispatched<dispatch::GemmPanelFn> d(
      "gemm_f32", &dispatch::register_gemm_variants);
  return d;
}

dispatch::Dispatched<dispatch::TanhChunkFn>& tanh_dispatch() {
  static dispatch::Dispatched<dispatch::TanhChunkFn> d(
      "tanh_f32", &dispatch::register_tanh_variants);
  return d;
}

dispatch::Dispatched<dispatch::MatNtPanelFn>& matnt_dispatch() {
  static dispatch::Dispatched<dispatch::MatNtPanelFn> d(
      "matnt_f32", &dispatch::register_matnt_variants);
  return d;
}

dispatch::Dispatched<dispatch::SymvPanelFn>& symv_dispatch() {
  static dispatch::Dispatched<dispatch::SymvPanelFn> d(
      "ekf_symv_f64", &dispatch::register_ekf_variants);
  return d;
}

dispatch::Dispatched<dispatch::DotChunkFn>& dot_dispatch() {
  static dispatch::Dispatched<dispatch::DotChunkFn> d(
      "ekf_dot_f64", &dispatch::register_ekf_variants);
  return d;
}

dispatch::Dispatched<dispatch::Rank1PanelFn>& rank1_dispatch() {
  static dispatch::Dispatched<dispatch::Rank1PanelFn> d(
      "ekf_rank1_f64", &dispatch::register_ekf_variants);
  return d;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FEKF_CHECK(a.same_shape(b), std::string(op) + ": shape mismatch " +
                                  a.shape_str() + " vs " + b.shape_str());
}

template <typename Fn>
Tensor elementwise2(const Tensor& a, const Tensor& b, const char* name,
                    Fn&& fn) {
  check_same_shape(a, b, name);
  KernelLaunch launch(name);
  Tensor out(a.rows(), a.cols());
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, a.numel(),
      [&](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
      },
      kGrainWork);
  return out;
}

template <typename Fn>
Tensor elementwise1(const Tensor& a, const char* name, Fn&& fn) {
  KernelLaunch launch(name);
  Tensor out(a.rows(), a.cols());
  const f32* pa = a.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, a.numel(),
      [&](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) po[i] = fn(pa[i]);
      },
      kGrainWork);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "add", [](f32 x, f32 y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "sub", [](f32 x, f32 y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "mul", [](f32 x, f32 y) { return x * y; });
}

Tensor neg(const Tensor& a) {
  return elementwise1(a, "neg", [](f32 x) { return -x; });
}

Tensor scale(const Tensor& a, f32 alpha) {
  return elementwise1(a, "scale", [alpha](f32 x) { return alpha * x; });
}

Tensor add_scalar(const Tensor& a, f32 alpha) {
  return elementwise1(a, "add_scalar", [alpha](f32 x) { return x + alpha; });
}

Tensor tanh(const Tensor& a) {
  KernelLaunch launch("tanh");
  const dispatch::TanhChunkFn fn = tanh_dispatch().get();
  Tensor out(a.rows(), a.cols());
  const f32* pa = a.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, a.numel(),
      [&](i64 lo, i64 hi) { fn(pa + lo, po + lo, hi - lo); }, kGrainWork);
  return out;
}

Tensor tanh_backward(const Tensor& grad_y, const Tensor& y) {
  return elementwise2(grad_y, y, "tanh_backward",
                      [](f32 g, f32 t) { return g * (1.0f - t * t); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.rows(), "matmul: inner dims " + a.shape_str() +
                                       " * " + b.shape_str());
  KernelLaunch launch("matmul");
  const dispatch::GemmPanelFn fn = gemm_dispatch().get();
  const i64 m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        // nullptr bias => the variant seeds output rows with zeros.
        fn(pa, pb, nullptr, po, rlo, rhi, k, n);
      },
      grain_items(k * n));
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.rows() == b.rows(), "matmul_tn: inner dims " + a.shape_str() +
                                       "^T * " + b.shape_str());
  KernelLaunch launch("matmul_tn");
  const i64 k = a.rows(), m = a.cols(), n = b.cols();
  Tensor out = Tensor::zeros(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  // Row panels of the output; each panel keeps the cache-friendly l-outer
  // loop, and each out[i][j] still accumulates over ascending l, so the
  // panel split does not change the numerics.
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 l = 0; l < k; ++l) {
          const f32* __restrict__ arow = pa + l * m;
          const f32* __restrict__ brow = pb + l * n;
          for (i64 i = rlo; i < rhi; ++i) {
            const f32 av = arow[i];
            f32* __restrict__ orow = po + i * n;
            for (i64 j = 0; j < n; ++j) orow[j] += av * brow[j];
          }
        }
      },
      grain_items(k * n));
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.cols(), "matmul_nt: inner dims " + a.shape_str() +
                                       " * " + b.shape_str() + "^T");
  KernelLaunch launch("matmul_nt");
  const dispatch::MatNtPanelFn fn = matnt_dispatch().get();
  const i64 m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) { fn(pa, pb, po, rlo, rhi, n, k); },
      grain_items(k * n));
  return out;
}

Tensor transpose(const Tensor& a) {
  KernelLaunch launch("transpose");
  Tensor out(a.cols(), a.rows());
  const f32* pa = a.data();
  f32* po = out.data();
  const i64 m = a.rows(), n = a.cols();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          for (i64 j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
        }
      },
      grain_items(n));
  return out;
}

Tensor add_rowvec(const Tensor& mat, const Tensor& row) {
  FEKF_CHECK(row.rows() == 1 && row.cols() == mat.cols(),
             "add_rowvec: " + mat.shape_str() + " + " + row.shape_str());
  KernelLaunch launch("add_rowvec");
  Tensor out(mat.rows(), mat.cols());
  const f32* pm = mat.data();
  const f32* pr = row.data();
  f32* po = out.data();
  const i64 m = mat.rows(), n = mat.cols();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          for (i64 j = 0; j < n; ++j) po[i * n + j] = pm[i * n + j] + pr[j];
        }
      },
      grain_items(n));
  return out;
}

Tensor broadcast_rows(const Tensor& row, i64 m) {
  FEKF_CHECK(row.rows() == 1, "broadcast_rows expects a 1xn row");
  KernelLaunch launch("broadcast_rows");
  Tensor out(m, row.cols());
  const i64 n = row.cols();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          std::memcpy(out.data() + i * n, row.data(),
                      static_cast<std::size_t>(n) * sizeof(f32));
        }
      },
      grain_items(n));
  return out;
}

Tensor broadcast_cols(const Tensor& col, i64 n) {
  FEKF_CHECK(col.cols() == 1, "broadcast_cols expects an mx1 column");
  KernelLaunch launch("broadcast_cols");
  const i64 m = col.rows();
  Tensor out(m, n);
  const f32* pc = col.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          const f32 v = pc[i];
          for (i64 j = 0; j < n; ++j) po[i * n + j] = v;
        }
      },
      grain_items(n));
  return out;
}

Tensor linear_fused(const Tensor& x, const Tensor& w, const Tensor& bias) {
  FEKF_CHECK(x.cols() == w.rows() && bias.rows() == 1 && bias.cols() == w.cols(),
             "linear_fused: " + x.shape_str() + " * " + w.shape_str() + " + " +
                 bias.shape_str());
  KernelLaunch launch("linear_fused");
  const dispatch::GemmPanelFn fn = gemm_dispatch().get();
  const i64 m = x.rows(), k = x.cols(), n = w.cols();
  Tensor out(m, n);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ pw = w.data();
  const f32* __restrict__ pb = bias.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) { fn(px, pw, pb, po, rlo, rhi, k, n); },
      grain_items(k * n));
  return out;
}

Tensor linear_tanh(const Tensor& x, const Tensor& w, const Tensor& bias) {
  FEKF_CHECK(x.cols() == w.rows() && bias.rows() == 1 && bias.cols() == w.cols(),
             "linear_tanh: " + x.shape_str() + " * " + w.shape_str() + " + " +
                 bias.shape_str());
  KernelLaunch launch("linear_tanh");
  const dispatch::GemmPanelFn gemm_fn = gemm_dispatch().get();
  const dispatch::TanhChunkFn tanh_fn = tanh_dispatch().get();
  const i64 m = x.rows(), k = x.cols(), n = w.cols();
  Tensor out(m, n);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ pw = w.data();
  const f32* __restrict__ pb = bias.data();
  f32* __restrict__ po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        // Same bias-then-ascending-l accumulation as linear_fused, then
        // tanh in place over the panel: per variant, bit-identical to
        // tanh(linear_fused(...)).
        gemm_fn(px, pw, pb, po, rlo, rhi, k, n);
        tanh_fn(po + rlo * n, po + rlo * n, (rhi - rlo) * n);
      },
      grain_items(k * n));
  return out;
}

void linear_tanh_backward(const Tensor& gy, const Tensor& y, const Tensor& x,
                          const Tensor& w, Tensor& gx, Tensor& gw,
                          Tensor& gb) {
  const i64 m = x.rows(), k = x.cols(), n = w.cols();
  FEKF_CHECK(gy.rows() == m && gy.cols() == n && y.same_shape(gy) &&
                 w.rows() == k,
             "linear_tanh_backward: gy " + gy.shape_str() + " y " +
                 y.shape_str() + " x " + x.shape_str() + " w " +
                 w.shape_str());
  KernelLaunch launch("linear_tanh_backward");
  // u = gy * (1 - y^2), the tanh_backward formula; held in kernel-local
  // scratch (arena-allocated inside a step) and consumed by all three
  // grads. Each phase below keeps the partition and accumulation order of
  // its unfused counterpart, so every output is bit-exact against the
  // composed tanh_backward/matmul_nt/matmul_tn/sum_rows chain at any
  // thread width.
  Tensor u(m, n);
  const f32* __restrict__ pg = gy.data();
  const f32* __restrict__ py = y.data();
  f32* __restrict__ pu = u.data();
  parallel_for_blocks(
      0, m * n,
      [&](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) {
          pu[i] = pg[i] * (1.0f - py[i] * py[i]);
        }
      },
      kGrainWork);
  // gx = u w^T (matmul_nt ordering: f64 accumulator, ascending l) via the
  // shared matnt_f32 panel body.
  gx = Tensor(m, k);
  const dispatch::MatNtPanelFn nt_fn = matnt_dispatch().get();
  const f32* __restrict__ pw = w.data();
  f32* __restrict__ pgx = gx.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) { nt_fn(pu, pw, pgx, rlo, rhi, k, n); },
      grain_items(n * k));
  // gw = x^T u (matmul_tn ordering: f32 accumulation over ascending sample
  // rows, output-row panels).
  gw = Tensor::zeros(k, n);
  const f32* __restrict__ px = x.data();
  f32* __restrict__ pgw = gw.data();
  parallel_for_blocks(
      0, k,
      [&](i64 rlo, i64 rhi) {
        for (i64 l = 0; l < m; ++l) {
          const f32* __restrict__ xrow = px + l * k;
          const f32* __restrict__ urow = pu + l * n;
          for (i64 i = rlo; i < rhi; ++i) {
            const f32 xv = xrow[i];
            f32* __restrict__ grow = pgw + i * n;
            for (i64 j = 0; j < n; ++j) grow[j] += xv * urow[j];
          }
        }
      },
      grain_items(m * n));
  // gb = column sums of u (sum_rows ordering: f64 accumulator per column).
  gb = Tensor(1, n);
  f32* __restrict__ pgb = gb.data();
  parallel_for_blocks(
      0, n,
      [&](i64 clo, i64 chi) {
        for (i64 j = clo; j < chi; ++j) {
          f64 acc = 0.0;
          for (i64 i = 0; i < m; ++i) acc += pu[i * n + j];
          pgb[j] = static_cast<f32>(acc);
        }
      },
      grain_items(m));
}

Tensor broadcast_full(const Tensor& scalar, i64 m, i64 n) {
  FEKF_CHECK(scalar.numel() == 1, "broadcast_full expects a scalar");
  KernelLaunch launch("broadcast_full");
  return Tensor::full(m, n, scalar.item());
}

Tensor sum_all(const Tensor& a) {
  KernelLaunch launch("sum_all");
  const f32* pa = a.data();
  const f64 acc = parallel_reduce_f64(0, a.numel(), kReduceChunk,
                                      [pa](i64 lo, i64 hi) {
                                        f64 s = 0.0;
                                        for (i64 i = lo; i < hi; ++i) {
                                          s += pa[i];
                                        }
                                        return s;
                                      });
  return Tensor::scalar(static_cast<f32>(acc));
}

Tensor sum_rows(const Tensor& a) {
  KernelLaunch launch("sum_rows");
  const i64 m = a.rows(), n = a.cols();
  Tensor out(1, n);
  const f32* pa = a.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, n,
      [&](i64 clo, i64 chi) {
        for (i64 j = clo; j < chi; ++j) {
          f64 acc = 0.0;
          for (i64 i = 0; i < m; ++i) acc += pa[i * n + j];
          po[j] = static_cast<f32>(acc);
        }
      },
      grain_items(m));
  return out;
}

Tensor sum_cols(const Tensor& a) {
  KernelLaunch launch("sum_cols");
  const i64 m = a.rows(), n = a.cols();
  Tensor out(m, 1);
  const f32* pa = a.data();
  f32* po = out.data();
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          f64 acc = 0.0;
          for (i64 j = 0; j < n; ++j) acc += pa[i * n + j];
          po[i] = static_cast<f32>(acc);
        }
      },
      grain_items(n));
  return out;
}

Tensor slice_cols(const Tensor& a, i64 c0, i64 c1) {
  FEKF_CHECK(0 <= c0 && c0 <= c1 && c1 <= a.cols(), "slice_cols bounds");
  KernelLaunch launch("slice_cols");
  const i64 m = a.rows(), n = a.cols(), w = c1 - c0;
  Tensor out(m, w);
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          std::memcpy(out.data() + i * w, a.data() + i * n + c0,
                      static_cast<std::size_t>(w) * sizeof(f32));
        }
      },
      grain_items(w));
  return out;
}

Tensor pad_cols(const Tensor& a, i64 cols, i64 c0) {
  FEKF_CHECK(c0 >= 0 && c0 + a.cols() <= cols, "pad_cols bounds");
  KernelLaunch launch("pad_cols");
  const i64 m = a.rows(), w = a.cols();
  Tensor out = Tensor::zeros(m, cols);
  parallel_for_blocks(
      0, m,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          std::memcpy(out.data() + i * cols + c0, a.data() + i * w,
                      static_cast<std::size_t>(w) * sizeof(f32));
        }
      },
      grain_items(cols));
  return out;
}

Tensor slice_rows(const Tensor& a, i64 r0, i64 r1) {
  FEKF_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.rows(), "slice_rows bounds");
  KernelLaunch launch("slice_rows");
  const i64 n = a.cols(), h = r1 - r0;
  Tensor out(h, n);
  std::memcpy(out.data(), a.data() + r0 * n,
              static_cast<std::size_t>(h * n) * sizeof(f32));
  return out;
}

Tensor pad_rows(const Tensor& a, i64 rows, i64 r0) {
  FEKF_CHECK(r0 >= 0 && r0 + a.rows() <= rows, "pad_rows bounds");
  KernelLaunch launch("pad_rows");
  const i64 n = a.cols();
  Tensor out = Tensor::zeros(rows, n);
  std::memcpy(out.data() + r0 * n, a.data(),
              static_cast<std::size_t>(a.rows() * n) * sizeof(f32));
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.cols(), "concat_rows: column mismatch");
  KernelLaunch launch("concat_rows");
  Tensor out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(),
              static_cast<std::size_t>(a.numel()) * sizeof(f32));
  std::memcpy(out.data() + a.numel(), b.data(),
              static_cast<std::size_t>(b.numel()) * sizeof(f32));
  return out;
}

Tensor copy(const Tensor& a) {
  KernelLaunch launch("copy");
  return a.clone();
}

f64 dot_all(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot_all");
  KernelLaunch launch("dot_all");
  const f32* pa = a.data();
  const f32* pb = b.data();
  return parallel_reduce_f64(0, a.numel(), kReduceChunk,
                             [pa, pb](i64 lo, i64 hi) {
                               f64 s = 0.0;
                               for (i64 i = lo; i < hi; ++i) {
                                 s += static_cast<f64>(pa[i]) * pb[i];
                               }
                               return s;
                             });
}

// ---------------------------------------------------------------------------
// f64 EKF kernels
// ---------------------------------------------------------------------------

void symv(std::span<const f64> p, std::span<const f64> g, std::span<f64> y,
          i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(g.size()) == n &&
                 static_cast<i64>(y.size()) == n,
             "symv size mismatch");
  KernelLaunch launch("ekf_symv");
  const dispatch::SymvPanelFn fn = symv_dispatch().get();
  const f64* __restrict__ pp = p.data();
  const f64* __restrict__ pg = g.data();
  f64* __restrict__ py = y.data();
  parallel_for_blocks(
      0, n, [&](i64 rlo, i64 rhi) { fn(pp, pg, py, rlo, rhi, n); },
      grain_items(n));
}

f64 dot(std::span<const f64> a, std::span<const f64> b) {
  FEKF_CHECK(a.size() == b.size(), "dot size mismatch");
  KernelLaunch launch("ekf_dot");
  const dispatch::DotChunkFn fn = dot_dispatch().get();
  const f64* pa = a.data();
  const f64* pb = b.data();
  return parallel_reduce_f64(
      0, static_cast<i64>(a.size()), kReduceChunk,
      [pa, pb, fn](i64 lo, i64 hi) { return fn(pa, pb, lo, hi); });
}

void axpy(f64 alpha, std::span<const f64> x, std::span<f64> y) {
  FEKF_CHECK(x.size() == y.size(), "axpy size mismatch");
  KernelLaunch launch("ekf_axpy");
  const f64* px = x.data();
  f64* py = y.data();
  parallel_for_blocks(
      0, static_cast<i64>(x.size()),
      [&](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) py[i] += alpha * px[i];
      },
      kGrainWork);
}

void p_update_unfused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                      f64 lambda, std::span<f64> scratch, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(k.size()) == n &&
                 static_cast<i64>(scratch.size()) >= n * n,
             "p_update_unfused size mismatch");
  // Launch 1: outer product tmp = k k^T (materialized, like torch.matmul).
  f64* __restrict__ tmp = scratch.data();
  const f64* __restrict__ pk = k.data();
  {
    KernelLaunch launch("ekf_outer");
    parallel_for_blocks(
        0, n,
        [&](i64 rlo, i64 rhi) {
          for (i64 i = rlo; i < rhi; ++i) {
            const f64 ki = pk[i];
            f64* __restrict__ row = tmp + i * n;
            for (i64 j = 0; j < n; ++j) row[j] = ki * pk[j];
          }
        },
        grain_items(n));
  }
  // Launch 2: P = (P - tmp * inv_a) / lambda.
  f64* __restrict__ pp = p.data();
  const f64 inv_lambda = 1.0 / lambda;
  {
    KernelLaunch launch("ekf_sub_scale");
    parallel_for_blocks(
        0, n * n,
        [&](i64 lo, i64 hi) {
          for (i64 i = lo; i < hi; ++i) {
            pp[i] = (pp[i] - inv_a * tmp[i]) * inv_lambda;
          }
        },
        kGrainWork);
  }
  // Launch 3: symmetrize (Algorithm 1, line 11).
  symmetrize(p, n);
}

void p_update_fused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                    f64 lambda, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(k.size()) == n,
             "p_update_fused size mismatch");
  KernelLaunch launch("ekf_p_update_fused");
  const dispatch::Rank1PanelFn fn = rank1_dispatch().get();
  f64* __restrict__ pp = p.data();
  const f64* __restrict__ pk = k.data();
  const f64 inv_lambda = 1.0 / lambda;
  // Row panels over the upper triangle. The task owning row i touches
  // exactly the element pairs {(i,j), (j,i)} for j >= i, and no other task
  // reads or writes them, so the panels are disjoint and the result is
  // independent of the panel-to-thread assignment. The panel body —
  // (P - (1/a) k k^T)/lambda with symmetrization folded in by averaging the
  // (i,j)/(j,i) pair — is the dispatched ekf_rank1_f64 variant, shared with
  // ekf_apply_fused so fused and legacy EKF agree under any backend.
  parallel_for_blocks(
      0, n, [&](i64 rlo, i64 rhi) { fn(pp, pk, inv_a, inv_lambda, rlo, rhi, n); },
      grain_items(n));  // ~n/2 ops per row on average; panels rebalance
}

void symmetrize(std::span<f64> p, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n, "symmetrize size mismatch");
  KernelLaunch launch("ekf_symmetrize");
  f64* __restrict__ pp = p.data();
  // Same pair-ownership argument as p_update_fused: row i owns {(i,j),
  // (j,i)} for j > i.
  parallel_for_blocks(
      0, n,
      [&](i64 rlo, i64 rhi) {
        for (i64 i = rlo; i < rhi; ++i) {
          for (i64 j = i + 1; j < n; ++j) {
            const f64 v = 0.5 * (pp[i * n + j] + pp[j * n + i]);
            pp[i * n + j] = v;
            pp[j * n + i] = v;
          }
        }
      },
      grain_items(n));
}

f64 ekf_gain_fused(std::span<const f64> p, std::span<const f64> g,
                   std::span<f64> y, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(g.size()) == n &&
                 static_cast<i64>(y.size()) == n,
             "ekf_gain_fused size mismatch");
  KernelLaunch launch("ekf_gain_fused");
  const dispatch::SymvPanelFn symv_fn = symv_dispatch().get();
  const dispatch::DotChunkFn dot_fn = dot_dispatch().get();
  const f64* __restrict__ pp = p.data();
  const f64* __restrict__ pg = g.data();
  f64* __restrict__ py = y.data();
  // Pass 1: y = P g, row-partitioned exactly like symv — same dispatched
  // panel body, so the fused path matches symv() under any backend.
  parallel_for_blocks(
      0, n, [&](i64 rlo, i64 rhi) { symv_fn(pp, pg, py, rlo, rhi, n); },
      grain_items(n));
  // Pass 2 (same launch): g^T (P g) with dot()'s fixed-chunk reduction and
  // dot()'s dispatched chunk body, so the scalar is bit-identical to the
  // unfused symv-then-dot sequence per backend.
  return parallel_reduce_f64(
      0, n, kReduceChunk,
      [pg, py, dot_fn](i64 lo, i64 hi) { return dot_fn(pg, py, lo, hi); });
}

f64 ekf_apply_fused(std::span<f64> p, std::span<const f64> k, f64 a,
                    f64 lambda, f64 step_scale, std::span<f64> w,
                    f64 process_noise, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(k.size()) == n &&
                 static_cast<i64>(w.size()) == n,
             "ekf_apply_fused size mismatch");
  KernelLaunch launch("ekf_apply_fused");
  const dispatch::Rank1PanelFn fn = rank1_dispatch().get();
  f64* __restrict__ pp = p.data();
  const f64* __restrict__ pk = k.data();
  f64* __restrict__ pw = w.data();
  const f64 inv_lambda = 1.0 / lambda;
  // Same pair-ownership partition as p_update_fused: the task owning row i
  // touches exactly {(i,j), (j,i) : j >= i}, the diagonal (i,i), and w[i],
  // so panels are disjoint and results are width-independent. Per element
  // the arithmetic replays the unfused sequence verbatim: pair-averaged
  // rank-1 update (the dispatched ekf_rank1_f64 body shared with
  // p_update_fused — running it for the whole panel before the diagonal
  // pass below is legal because no rank-1 element the panel touches is a
  // diagonal of another row), then the additive noise on the diagonal,
  // then the axpy-style weight step.
  parallel_for_blocks(
      0, n,
      [&](i64 rlo, i64 rhi) {
        fn(pp, pk, a, inv_lambda, rlo, rhi, n);
        for (i64 i = rlo; i < rhi; ++i) {
          pp[i * n + i] += process_noise;
          pw[i] += step_scale * pk[i];
        }
      },
      grain_items(n));
  // Serial health scan after the pool join (still this launch), identical
  // to the optimizer's NaN-latching loop: first non-finite diagonal wins.
  f64 max_diag = 0.0;
  for (i64 i = 0; i < n; ++i) {
    const f64 d = pp[i * n + i];
    if (!std::isfinite(d)) return d;
    max_diag = std::max(max_diag, d);
  }
  return max_diag;
}

}  // namespace fekf::kernels
