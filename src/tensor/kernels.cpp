#include "tensor/kernels.hpp"

#include <cmath>
#include <cstring>

#include "tensor/kernel_counter.hpp"

namespace fekf::kernels {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FEKF_CHECK(a.same_shape(b), std::string(op) + ": shape mismatch " +
                                  a.shape_str() + " vs " + b.shape_str());
}

template <typename Fn>
Tensor elementwise2(const Tensor& a, const Tensor& b, const char* name,
                    Fn&& fn) {
  check_same_shape(a, b, name);
  KernelCounter::record(name);
  Tensor out(a.rows(), a.cols());
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* po = out.data();
  const i64 n = a.numel();
  for (i64 i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
  return out;
}

template <typename Fn>
Tensor elementwise1(const Tensor& a, const char* name, Fn&& fn) {
  KernelCounter::record(name);
  Tensor out(a.rows(), a.cols());
  const f32* pa = a.data();
  f32* po = out.data();
  const i64 n = a.numel();
  for (i64 i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "add", [](f32 x, f32 y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "sub", [](f32 x, f32 y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise2(a, b, "mul", [](f32 x, f32 y) { return x * y; });
}

Tensor neg(const Tensor& a) {
  return elementwise1(a, "neg", [](f32 x) { return -x; });
}

Tensor scale(const Tensor& a, f32 alpha) {
  return elementwise1(a, "scale", [alpha](f32 x) { return alpha * x; });
}

Tensor add_scalar(const Tensor& a, f32 alpha) {
  return elementwise1(a, "add_scalar", [alpha](f32 x) { return x + alpha; });
}

Tensor tanh(const Tensor& a) {
  return elementwise1(a, "tanh", [](f32 x) { return std::tanh(x); });
}

Tensor tanh_backward(const Tensor& grad_y, const Tensor& y) {
  return elementwise2(grad_y, y, "tanh_backward",
                      [](f32 g, f32 t) { return g * (1.0f - t * t); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.rows(), "matmul: inner dims " + a.shape_str() +
                                       " * " + b.shape_str());
  KernelCounter::record("matmul");
  const i64 m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out = Tensor::zeros(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  for (i64 i = 0; i < m; ++i) {
    for (i64 l = 0; l < k; ++l) {
      const f32 av = pa[i * k + l];
      const f32* __restrict__ brow = pb + l * n;
      f32* __restrict__ orow = po + i * n;
      for (i64 j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.rows() == b.rows(), "matmul_tn: inner dims " + a.shape_str() +
                                       "^T * " + b.shape_str());
  KernelCounter::record("matmul_tn");
  const i64 k = a.rows(), m = a.cols(), n = b.cols();
  Tensor out = Tensor::zeros(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  for (i64 l = 0; l < k; ++l) {
    const f32* __restrict__ arow = pa + l * m;
    const f32* __restrict__ brow = pb + l * n;
    for (i64 i = 0; i < m; ++i) {
      const f32 av = arow[i];
      f32* __restrict__ orow = po + i * n;
      for (i64 j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.cols(), "matmul_nt: inner dims " + a.shape_str() +
                                       " * " + b.shape_str() + "^T");
  KernelCounter::record("matmul_nt");
  const i64 m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out(m, n);
  const f32* __restrict__ pa = a.data();
  const f32* __restrict__ pb = b.data();
  f32* __restrict__ po = out.data();
  for (i64 i = 0; i < m; ++i) {
    const f32* __restrict__ arow = pa + i * k;
    for (i64 j = 0; j < n; ++j) {
      const f32* __restrict__ brow = pb + j * k;
      f64 acc = 0.0;
      for (i64 l = 0; l < k; ++l) acc += static_cast<f64>(arow[l]) * brow[l];
      po[i * n + j] = static_cast<f32>(acc);
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  KernelCounter::record("transpose");
  Tensor out(a.cols(), a.rows());
  const f32* pa = a.data();
  f32* po = out.data();
  const i64 m = a.rows(), n = a.cols();
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  }
  return out;
}

Tensor add_rowvec(const Tensor& mat, const Tensor& row) {
  FEKF_CHECK(row.rows() == 1 && row.cols() == mat.cols(),
             "add_rowvec: " + mat.shape_str() + " + " + row.shape_str());
  KernelCounter::record("add_rowvec");
  Tensor out(mat.rows(), mat.cols());
  const f32* pm = mat.data();
  const f32* pr = row.data();
  f32* po = out.data();
  const i64 m = mat.rows(), n = mat.cols();
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) po[i * n + j] = pm[i * n + j] + pr[j];
  }
  return out;
}

Tensor broadcast_rows(const Tensor& row, i64 m) {
  FEKF_CHECK(row.rows() == 1, "broadcast_rows expects a 1xn row");
  KernelCounter::record("broadcast_rows");
  Tensor out(m, row.cols());
  const i64 n = row.cols();
  for (i64 i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * n, row.data(),
                static_cast<std::size_t>(n) * sizeof(f32));
  }
  return out;
}

Tensor broadcast_cols(const Tensor& col, i64 n) {
  FEKF_CHECK(col.cols() == 1, "broadcast_cols expects an mx1 column");
  KernelCounter::record("broadcast_cols");
  const i64 m = col.rows();
  Tensor out(m, n);
  const f32* pc = col.data();
  f32* po = out.data();
  for (i64 i = 0; i < m; ++i) {
    const f32 v = pc[i];
    for (i64 j = 0; j < n; ++j) po[i * n + j] = v;
  }
  return out;
}

Tensor linear_fused(const Tensor& x, const Tensor& w, const Tensor& bias) {
  FEKF_CHECK(x.cols() == w.rows() && bias.rows() == 1 && bias.cols() == w.cols(),
             "linear_fused: " + x.shape_str() + " * " + w.shape_str() + " + " +
                 bias.shape_str());
  KernelCounter::record("linear_fused");
  const i64 m = x.rows(), k = x.cols(), n = w.cols();
  Tensor out(m, n);
  const f32* __restrict__ px = x.data();
  const f32* __restrict__ pw = w.data();
  const f32* __restrict__ pb = bias.data();
  f32* __restrict__ po = out.data();
  for (i64 i = 0; i < m; ++i) {
    f32* __restrict__ orow = po + i * n;
    std::memcpy(orow, pb, static_cast<std::size_t>(n) * sizeof(f32));
    const f32* __restrict__ xrow = px + i * k;
    for (i64 l = 0; l < k; ++l) {
      const f32 xv = xrow[l];
      const f32* __restrict__ wrow = pw + l * n;
      for (i64 j = 0; j < n; ++j) orow[j] += xv * wrow[j];
    }
  }
  return out;
}

Tensor broadcast_full(const Tensor& scalar, i64 m, i64 n) {
  FEKF_CHECK(scalar.numel() == 1, "broadcast_full expects a scalar");
  KernelCounter::record("broadcast_full");
  return Tensor::full(m, n, scalar.item());
}

Tensor sum_all(const Tensor& a) {
  KernelCounter::record("sum_all");
  const f32* pa = a.data();
  f64 acc = 0.0;
  const i64 n = a.numel();
  for (i64 i = 0; i < n; ++i) acc += pa[i];
  return Tensor::scalar(static_cast<f32>(acc));
}

Tensor sum_rows(const Tensor& a) {
  KernelCounter::record("sum_rows");
  const i64 m = a.rows(), n = a.cols();
  Tensor out(1, n);
  const f32* pa = a.data();
  for (i64 j = 0; j < n; ++j) {
    f64 acc = 0.0;
    for (i64 i = 0; i < m; ++i) acc += pa[i * n + j];
    out.data()[j] = static_cast<f32>(acc);
  }
  return out;
}

Tensor sum_cols(const Tensor& a) {
  KernelCounter::record("sum_cols");
  const i64 m = a.rows(), n = a.cols();
  Tensor out(m, 1);
  const f32* pa = a.data();
  for (i64 i = 0; i < m; ++i) {
    f64 acc = 0.0;
    for (i64 j = 0; j < n; ++j) acc += pa[i * n + j];
    out.data()[i] = static_cast<f32>(acc);
  }
  return out;
}

Tensor slice_cols(const Tensor& a, i64 c0, i64 c1) {
  FEKF_CHECK(0 <= c0 && c0 <= c1 && c1 <= a.cols(), "slice_cols bounds");
  KernelCounter::record("slice_cols");
  const i64 m = a.rows(), n = a.cols(), w = c1 - c0;
  Tensor out(m, w);
  for (i64 i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * w, a.data() + i * n + c0,
                static_cast<std::size_t>(w) * sizeof(f32));
  }
  return out;
}

Tensor pad_cols(const Tensor& a, i64 cols, i64 c0) {
  FEKF_CHECK(c0 >= 0 && c0 + a.cols() <= cols, "pad_cols bounds");
  KernelCounter::record("pad_cols");
  const i64 m = a.rows(), w = a.cols();
  Tensor out = Tensor::zeros(m, cols);
  for (i64 i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * cols + c0, a.data() + i * w,
                static_cast<std::size_t>(w) * sizeof(f32));
  }
  return out;
}

Tensor slice_rows(const Tensor& a, i64 r0, i64 r1) {
  FEKF_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.rows(), "slice_rows bounds");
  KernelCounter::record("slice_rows");
  const i64 n = a.cols(), h = r1 - r0;
  Tensor out(h, n);
  std::memcpy(out.data(), a.data() + r0 * n,
              static_cast<std::size_t>(h * n) * sizeof(f32));
  return out;
}

Tensor pad_rows(const Tensor& a, i64 rows, i64 r0) {
  FEKF_CHECK(r0 >= 0 && r0 + a.rows() <= rows, "pad_rows bounds");
  KernelCounter::record("pad_rows");
  const i64 n = a.cols();
  Tensor out = Tensor::zeros(rows, n);
  std::memcpy(out.data() + r0 * n, a.data(),
              static_cast<std::size_t>(a.rows() * n) * sizeof(f32));
  return out;
}

Tensor concat_rows(const Tensor& a, const Tensor& b) {
  FEKF_CHECK(a.cols() == b.cols(), "concat_rows: column mismatch");
  KernelCounter::record("concat_rows");
  Tensor out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(),
              static_cast<std::size_t>(a.numel()) * sizeof(f32));
  std::memcpy(out.data() + a.numel(), b.data(),
              static_cast<std::size_t>(b.numel()) * sizeof(f32));
  return out;
}

Tensor copy(const Tensor& a) {
  KernelCounter::record("copy");
  return a.clone();
}

f64 dot_all(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "dot_all");
  KernelCounter::record("dot_all");
  const f32* pa = a.data();
  const f32* pb = b.data();
  f64 acc = 0.0;
  const i64 n = a.numel();
  for (i64 i = 0; i < n; ++i) acc += static_cast<f64>(pa[i]) * pb[i];
  return acc;
}

// ---------------------------------------------------------------------------
// f64 EKF kernels
// ---------------------------------------------------------------------------

void symv(std::span<const f64> p, std::span<const f64> g, std::span<f64> y,
          i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(g.size()) == n &&
                 static_cast<i64>(y.size()) == n,
             "symv size mismatch");
  KernelCounter::record("ekf_symv");
  const f64* __restrict__ pp = p.data();
  const f64* __restrict__ pg = g.data();
  f64* __restrict__ py = y.data();
  for (i64 i = 0; i < n; ++i) {
    const f64* __restrict__ row = pp + i * n;
    f64 acc = 0.0;
    for (i64 j = 0; j < n; ++j) acc += row[j] * pg[j];
    py[i] = acc;
  }
}

f64 dot(std::span<const f64> a, std::span<const f64> b) {
  FEKF_CHECK(a.size() == b.size(), "dot size mismatch");
  KernelCounter::record("ekf_dot");
  f64 acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(f64 alpha, std::span<const f64> x, std::span<f64> y) {
  FEKF_CHECK(x.size() == y.size(), "axpy size mismatch");
  KernelCounter::record("ekf_axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void p_update_unfused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                      f64 lambda, std::span<f64> scratch, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(k.size()) == n &&
                 static_cast<i64>(scratch.size()) >= n * n,
             "p_update_unfused size mismatch");
  // Launch 1: outer product tmp = k k^T (materialized, like torch.matmul).
  KernelCounter::record("ekf_outer");
  f64* __restrict__ tmp = scratch.data();
  const f64* __restrict__ pk = k.data();
  for (i64 i = 0; i < n; ++i) {
    const f64 ki = pk[i];
    f64* __restrict__ row = tmp + i * n;
    for (i64 j = 0; j < n; ++j) row[j] = ki * pk[j];
  }
  // Launch 2: P = (P - tmp * inv_a) / lambda.
  KernelCounter::record("ekf_sub_scale");
  f64* __restrict__ pp = p.data();
  const f64 inv_lambda = 1.0 / lambda;
  for (i64 i = 0; i < n * n; ++i) {
    pp[i] = (pp[i] - inv_a * tmp[i]) * inv_lambda;
  }
  // Launch 3: symmetrize (Algorithm 1, line 11).
  symmetrize(p, n);
}

void p_update_fused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                    f64 lambda, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n &&
                 static_cast<i64>(k.size()) == n,
             "p_update_fused size mismatch");
  KernelCounter::record("ekf_p_update_fused");
  f64* __restrict__ pp = p.data();
  const f64* __restrict__ pk = k.data();
  const f64 inv_lambda = 1.0 / lambda;
  for (i64 i = 0; i < n; ++i) {
    const f64 ki_scaled = inv_a * pk[i];
    for (i64 j = i; j < n; ++j) {
      // (P - (1/a) k k^T)/lambda on the upper triangle; symmetrization is
      // folded in by averaging the (i,j)/(j,i) pair of the current P.
      const f64 pij = 0.5 * (pp[i * n + j] + pp[j * n + i]);
      const f64 v = (pij - ki_scaled * pk[j]) * inv_lambda;
      pp[i * n + j] = v;
      pp[j * n + i] = v;
    }
  }
}

void symmetrize(std::span<f64> p, i64 n) {
  FEKF_CHECK(static_cast<i64>(p.size()) == n * n, "symmetrize size mismatch");
  KernelCounter::record("ekf_symmetrize");
  f64* __restrict__ pp = p.data();
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = i + 1; j < n; ++j) {
      const f64 v = 0.5 * (pp[i * n + j] + pp[j * n + i]);
      pp[i * n + j] = v;
      pp[j * n + i] = v;
    }
  }
}

}  // namespace fekf::kernels
