// Primitive tensor kernels.
//
// Every function here corresponds to one device-kernel launch in the paper's
// GPU implementation and records itself with KernelCounter. The autograd ops
// (src/autograd/ops.*) compose these; the "system optimization" experiments
// (Fig. 7b/7c) compare composed-primitive graphs against the fused custom
// kernels at the bottom of this header and in src/deepmd / src/optim.
//
// f32 kernels operate on Tensor (network values); f64 kernels at the bottom
// operate on raw buffers (EKF covariance state, which the paper keeps in
// 64-bit: its reported P-block sizes, e.g. 10240^2 -> 800 MB, imply 8-byte
// elements).
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace fekf::kernels {

// ---- elementwise ----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor neg(const Tensor& a);
Tensor scale(const Tensor& a, f32 alpha);
Tensor add_scalar(const Tensor& a, f32 alpha);
Tensor tanh(const Tensor& a);
/// Fused tanh backward: gx = gy * (1 - y*y), one launch. The unfused path
/// composes mul/sub/full and costs three launches.
Tensor tanh_backward(const Tensor& grad_y, const Tensor& y);

// ---- linear algebra -------------------------------------------------------
Tensor matmul(const Tensor& a, const Tensor& b);         // a(m,k) * b(k,n)
Tensor matmul_tn(const Tensor& a, const Tensor& b);      // a^T(k,m) * b(k,n)
Tensor matmul_nt(const Tensor& a, const Tensor& b);      // a(m,k) * b^T(n,k)
Tensor transpose(const Tensor& a);

// ---- broadcast ------------------------------------------------------------
/// mat(m,n) + row(1,n), broadcast over rows.
Tensor add_rowvec(const Tensor& mat, const Tensor& row);
/// Replicate row(1,n) into (m,n).
Tensor broadcast_rows(const Tensor& row, i64 m);
/// Replicate col(m,1) into (m,n).
Tensor broadcast_cols(const Tensor& col, i64 n);
/// Replicate scalar(1,1) into (m,n).
Tensor broadcast_full(const Tensor& scalar, i64 m, i64 n);

/// Fused affine layer: x(m,k) * w(k,n) + bias(1,n), one launch (opt2-style
/// kernel fusion; the unfused path is matmul + add_rowvec).
Tensor linear_fused(const Tensor& x, const Tensor& w, const Tensor& bias);

/// Fully fused dense layer: y = tanh(x*w + bias) in ONE launch. Uses the
/// exact accumulation order of linear_fused followed by elementwise tanh,
/// so values are bit-identical to the opt2 two-launch chain.
Tensor linear_tanh(const Tensor& x, const Tensor& w, const Tensor& bias);

/// Fused backward of linear_tanh, ONE launch producing all three grads.
/// Computes u = gy ⊙ (1 - y²) internally, then
///   gx = u w^T    gw = x^T u    gb = 1^T u
/// with the accumulation orders of tanh_backward + matmul_nt + matmul_tn +
/// sum_rows, so each grad is bit-identical to the unfused 4-launch chain.
void linear_tanh_backward(const Tensor& gy, const Tensor& y, const Tensor& x,
                          const Tensor& w, Tensor& gx, Tensor& gw,
                          Tensor& gb);

// ---- reductions (double accumulators) --------------------------------------
Tensor sum_all(const Tensor& a);                         // -> 1x1
Tensor sum_rows(const Tensor& a);                        // (m,n) -> 1xn
Tensor sum_cols(const Tensor& a);                        // (m,n) -> mx1

// ---- shape / layout -------------------------------------------------------
Tensor slice_cols(const Tensor& a, i64 c0, i64 c1);      // columns [c0, c1)
/// Inverse of slice_cols: place a(m, c1-c0) into zeros(m, cols) at c0.
Tensor pad_cols(const Tensor& a, i64 cols, i64 c0);
Tensor slice_rows(const Tensor& a, i64 r0, i64 r1);      // rows [c0, c1)
Tensor pad_rows(const Tensor& a, i64 rows, i64 r0);
Tensor concat_rows(const Tensor& a, const Tensor& b);

// ---- misc -----------------------------------------------------------------
Tensor copy(const Tensor& a);
/// Frobenius inner product <a, b> (one launch, double accumulator).
f64 dot_all(const Tensor& a, const Tensor& b);

// ============================================================================
// f64 optimizer kernels (EKF covariance algebra). P is a dense symmetric
// n x n block stored fully; g, k are length-n vectors.
// ============================================================================

/// y = P * g (symmetric matrix-vector product).
void symv(std::span<const f64> p, std::span<const f64> g, std::span<f64> y,
          i64 n);

/// <a, b>.
f64 dot(std::span<const f64> a, std::span<const f64> b);

/// y += alpha * x.
void axpy(f64 alpha, std::span<const f64> x, std::span<f64> y);

/// Unfused ("framework") P update, as a GEMM-backed graph would do it:
///   tmp = k * k^T            (materializes n^2 scratch — the memory cost
///   P   = (P - tmp / a) / lambda            the paper's opt3 eliminates)
/// `scratch` must have n*n capacity; three kernel launches are recorded.
void p_update_unfused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                      f64 lambda, std::span<f64> scratch, i64 n);

/// Fused hand-written P update (paper §3.4 "optimizer optimization"):
///   P = (P - (1/a) k k^T) / lambda, then symmetrize,
/// computed in one pass over the upper triangle and mirrored — one launch,
/// no scratch. Because k k^T is exactly symmetric, folding the symmetrize
/// step into the same pass is lossless.
void p_update_fused(std::span<f64> p, std::span<const f64> k, f64 inv_a,
                    f64 lambda, i64 n);

/// P = (P + P^T) / 2 (explicit symmetrization used by the unfused path).
void symmetrize(std::span<f64> p, i64 n);

/// Fused FEKF gain precomputation (KalmanConfig::fused_step): y = P g AND
/// the scalar g^T P g in ONE launch, replacing the ekf_symv + ekf_dot pair.
/// Bit-exact with that pair: rows accumulate in symv's ascending order and
/// the scalar uses the same fixed-chunk reduction as dot().
f64 ekf_gain_fused(std::span<const f64> p, std::span<const f64> g,
                   std::span<f64> y, i64 n);

/// Fused FEKF apply (KalmanConfig::fused_step): in ONE launch,
///   P <- sym((P - a k k^T) / lambda) + process_noise * I
///   w <- w + step_scale * k
/// and returns the covariance max-diagonal with the same NaN-latching
/// semantics as the serial health scan (first non-finite entry wins).
/// Replaces ekf_p_update_fused + ekf_axpy plus the optimizer's uncounted
/// process-noise and diagonal-scan loops; per-element arithmetic is
/// identical to that sequence, so the results are bit-exact.
f64 ekf_apply_fused(std::span<f64> p, std::span<const f64> k, f64 a,
                    f64 lambda, f64 step_scale, std::span<f64> w,
                    f64 process_noise, i64 n);

}  // namespace fekf::kernels
