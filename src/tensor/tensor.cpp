#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/workspace.hpp"

namespace fekf {

Tensor::Tensor(i64 rows, i64 cols) : rows_(rows), cols_(cols) {
  FEKF_CHECK(rows >= 0 && cols >= 0, "negative tensor dimension");
  if (numel() > 0) {
    // Inside an armed ArenaScope, storage comes from the calling thread's
    // bump arena (see workspace.hpp); outside, from operator new. Both
    // paths hand back uninitialized memory with identical semantics.
    if (Workspace::armed()) {
      data_ = Workspace::local().allocate(numel());
    } else {
      data_ =
          std::shared_ptr<f32[]>(new f32[static_cast<std::size_t>(numel())]);
    }
  }
}

Tensor Tensor::zeros(i64 rows, i64 cols) {
  Tensor t(rows, cols);
  std::memset(t.data(), 0, static_cast<std::size_t>(t.numel()) * sizeof(f32));
  return t;
}

Tensor Tensor::full(i64 rows, i64 cols, f32 value) {
  Tensor t(rows, cols);
  std::fill_n(t.data(), t.numel(), value);
  return t;
}

Tensor Tensor::from(i64 rows, i64 cols, std::initializer_list<f32> values) {
  FEKF_CHECK(static_cast<i64>(values.size()) == rows * cols,
             "initializer size mismatch");
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::from_vector(i64 rows, i64 cols, const std::vector<f32>& v) {
  FEKF_CHECK(static_cast<i64>(v.size()) == rows * cols,
             "vector size mismatch");
  Tensor t(rows, cols);
  std::copy(v.begin(), v.end(), t.data());
  return t;
}

Tensor Tensor::randn(i64 rows, i64 cols, Rng& rng, f64 stddev) {
  Tensor t(rows, cols);
  f32* p = t.data();
  for (i64 i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<f32>(rng.gaussian(0.0, stddev));
  }
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(rows_, cols_);
  if (numel() > 0) {
    std::memcpy(t.data(), data(),
                static_cast<std::size_t>(numel()) * sizeof(f32));
  }
  return t;
}

Tensor Tensor::reshaped(i64 rows, i64 cols) const {
  FEKF_CHECK(rows * cols == numel(), "reshape must preserve numel: " +
                                         shape_str() + " -> [" +
                                         std::to_string(rows) + ", " +
                                         std::to_string(cols) + "]");
  Tensor t;
  t.data_ = data_;
  t.rows_ = rows;
  t.cols_ = cols;
  return t;
}

}  // namespace fekf
