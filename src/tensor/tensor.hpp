// Dense row-major float32 matrix — the value type flowing through the
// autograd engine and the DeePMD network.
//
// Design choices (deliberate, documented here once):
//  * Rank is always 2. Scalars are 1x1, column vectors n x 1, row vectors
//    1 x n. This keeps every kernel a flat 2D loop and makes shapes easy to
//    reason about in the descriptor algebra (D = G^T R R^T G^<).
//  * A Tensor is a shared handle to its storage (like torch.Tensor);
//    clone() deep-copies. Ops in ops.hpp always allocate fresh outputs, so
//    sharing is safe inside the tape.
//  * float32, matching mixed-precision GPU training; reductions that need
//    extra headroom accumulate in double internally.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/rng.hpp"

namespace fekf {

class Tensor {
 public:
  /// Empty 0x0 tensor (falsey placeholder).
  Tensor() = default;

  /// Uninitialized rows x cols tensor.
  Tensor(i64 rows, i64 cols);

  static Tensor zeros(i64 rows, i64 cols);
  static Tensor full(i64 rows, i64 cols, f32 value);
  static Tensor scalar(f32 value) { return full(1, 1, value); }
  static Tensor from(i64 rows, i64 cols, std::initializer_list<f32> values);
  static Tensor from_vector(i64 rows, i64 cols, const std::vector<f32>& v);

  /// He/Xavier-style normal init used for network weights.
  static Tensor randn(i64 rows, i64 cols, Rng& rng, f64 stddev = 1.0);

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }
  i64 numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  f32* data() { return data_.get(); }
  const f32* data() const { return data_.get(); }

  f32& at(i64 r, i64 c) {
    FEKF_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index");
    return data_.get()[r * cols_ + c];
  }
  f32 at(i64 r, i64 c) const {
    FEKF_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_, "index");
    return data_.get()[r * cols_ + c];
  }

  /// Value of a 1x1 tensor.
  f32 item() const {
    FEKF_CHECK(numel() == 1, "item() on non-scalar tensor");
    return data_.get()[0];
  }

  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  Tensor clone() const;

  /// Shares storage; shape must preserve numel.
  Tensor reshaped(i64 rows, i64 cols) const;

  std::string shape_str() const {
    return "[" + std::to_string(rows_) + ", " + std::to_string(cols_) + "]";
  }

  /// Bytes of the underlying storage.
  i64 bytes() const { return numel() * static_cast<i64>(sizeof(f32)); }

 private:
  std::shared_ptr<f32[]> data_;
  i64 rows_ = 0;
  i64 cols_ = 0;
};

}  // namespace fekf
