// EKF f64 kernel families (DESIGN.md §13):
//
//   "ekf_symv_f64"   row panel of y = P·g        (symv, ekf_gain_fused)
//   "ekf_dot_f64"    one reduce chunk of <a,b>   (dot, ekf_gain_fused)
//   "ekf_rank1_f64"  row panel of the pair-averaged symmetric rank-1
//                    P update                    (p_update_fused,
//                                                 ekf_apply_fused)
//
// symv and dot are LONG SERIAL f64 REDUCTIONS: the scalar chain is bound
// by FP-add latency and the compiler may not reorder it without fast-math,
// so the simd/avx2 variants split the sum across accumulators. That
// reorders the reduction => TOLERANCE class. The bound is relative to the
// reduction mass Σ|aᵢ·bᵢ| (the standard forward-error yardstick — a
// result near zero from cancellation has no meaningful relative bound of
// its own): max |variant - scalar| <= tolerance · Σ|terms|, asserted in
// tests/test_dispatch.cpp.
//
// rank1 is ELEMENTWISE over the row panel (no reduction), so its
// vectorized variants keep the exact per-element expression shape GCC
// emits for the scalar body — t = (coeff·k[i])·k[j] rounded separately,
// fms(Pij+Pji, 0.5, t), ·inv_lambda — and are declared bit_exact,
// memcmp-asserted against the scalar body.
#include <cmath>

#include "tensor/dispatch.hpp"
#include "tensor/variants/variants.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace fekf::dispatch {

namespace {

// Reduction-mass-relative bound for reordered f64 sums: ~2·len·u with
// len <= kReduceChunk = 2^15 gives ~7e-12; 1e-11 leaves headroom without
// masking real bugs (a wrong element shows up at ~1e0 · mass).
constexpr f64 kReduceTol = 1e-11;

// ---- ekf_symv_f64 ---------------------------------------------------------

/// Reference body — the row inner-product loop symv always ran.
void symv_scalar(const f64* p, const f64* g, f64* y, i64 rlo, i64 rhi,
                 i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    const f64* __restrict__ row = p + i * n;
    f64 acc = 0.0;
    for (i64 j = 0; j < n; ++j) acc += row[j] * g[j];
    y[i] = acc;
  }
}

/// omp-simd reduction: the compiler splits acc across lanes => tolerance.
void symv_simd(const f64* p, const f64* g, f64* y, i64 rlo, i64 rhi, i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    const f64* __restrict__ row = p + i * n;
    f64 acc = 0.0;
#pragma omp simd reduction(+ : acc)
    for (i64 j = 0; j < n; ++j) acc += row[j] * g[j];
    y[i] = acc;
  }
}

#if defined(__AVX2__) && defined(__FMA__)
/// Four 4-lane FMA accumulators (16-way) to break the add-latency chain;
/// fixed horizontal combine order keeps the variant deterministic.
void symv_avx2(const f64* p, const f64* g, f64* y, i64 rlo, i64 rhi, i64 n) {
  const i64 n16 = n - (n % 16);
  for (i64 i = rlo; i < rhi; ++i) {
    const f64* __restrict__ row = p + i * n;
    __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
    for (i64 j = 0; j < n16; j += 16) {
      a0 = _mm256_fmadd_pd(_mm256_loadu_pd(row + j),
                           _mm256_loadu_pd(g + j), a0);
      a1 = _mm256_fmadd_pd(_mm256_loadu_pd(row + j + 4),
                           _mm256_loadu_pd(g + j + 4), a1);
      a2 = _mm256_fmadd_pd(_mm256_loadu_pd(row + j + 8),
                           _mm256_loadu_pd(g + j + 8), a2);
      a3 = _mm256_fmadd_pd(_mm256_loadu_pd(row + j + 12),
                           _mm256_loadu_pd(g + j + 12), a3);
    }
    __m256d s = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
    alignas(32) f64 lane[4];
    _mm256_store_pd(lane, s);
    f64 acc = ((lane[0] + lane[1]) + (lane[2] + lane[3]));
    for (i64 j = n16; j < n; ++j) acc += row[j] * g[j];
    y[i] = acc;
  }
}
#endif

// ---- ekf_dot_f64 ----------------------------------------------------------

/// Reference body — one parallel_reduce_f64 chunk of dot().
f64 dot_scalar(const f64* a, const f64* b, i64 lo, i64 hi) {
  f64 acc = 0.0;
  for (i64 l = lo; l < hi; ++l) acc += a[l] * b[l];
  return acc;
}

f64 dot_simd(const f64* a, const f64* b, i64 lo, i64 hi) {
  f64 acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (i64 l = lo; l < hi; ++l) acc += a[l] * b[l];
  return acc;
}

#if defined(__AVX2__) && defined(__FMA__)
f64 dot_avx2(const f64* a, const f64* b, i64 lo, i64 hi) {
  const i64 len = hi - lo;
  const i64 l16 = lo + (len - len % 16);
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
  for (i64 l = lo; l < l16; l += 16) {
    a0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + l), _mm256_loadu_pd(b + l), a0);
    a1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + l + 4),
                         _mm256_loadu_pd(b + l + 4), a1);
    a2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + l + 8),
                         _mm256_loadu_pd(b + l + 8), a2);
    a3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + l + 12),
                         _mm256_loadu_pd(b + l + 12), a3);
  }
  __m256d s = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
  alignas(32) f64 lane[4];
  _mm256_store_pd(lane, s);
  f64 acc = ((lane[0] + lane[1]) + (lane[2] + lane[3]));
  for (i64 l = l16; l < hi; ++l) acc += a[l] * b[l];
  return acc;
}
#endif

// ---- ekf_rank1_f64 --------------------------------------------------------

/// Reference body — the upper-triangle row loop p_update_fused /
/// ekf_apply_fused always ran. Row i owns pairs {(i,j),(j,i) : j >= i}.
void rank1_scalar(f64* p, const f64* k, f64 coeff, f64 inv_lambda, i64 rlo,
                  i64 rhi, i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    const f64 ki_scaled = coeff * k[i];
    f64* __restrict__ prow = p + i * n;
    for (i64 j = i; j < n; ++j) {
      const f64 pij = 0.5 * (prow[j] + p[j * n + i]);
      const f64 v = (pij - ki_scaled * k[j]) * inv_lambda;
      prow[j] = v;
      p[j * n + i] = v;
    }
  }
}

/// omp-simd over the (independent) j elements; same per-element expression
/// and contraction shape as scalar => bit_exact.
void rank1_simd(f64* p, const f64* k, f64 coeff, f64 inv_lambda, i64 rlo,
                i64 rhi, i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    const f64 ki_scaled = coeff * k[i];
    f64* __restrict__ prow = p + i * n;
#pragma omp simd
    for (i64 j = i; j < n; ++j) {
      const f64 pij = 0.5 * (prow[j] + p[j * n + i]);
      const f64 v = (pij - ki_scaled * k[j]) * inv_lambda;
      prow[j] = v;
      p[j * n + i] = v;
    }
  }
}

#if defined(__AVX2__) && defined(__FMA__)
/// 4-lane mirror of the CONTRACTED scalar expression. GCC compiles the
/// scalar body (checked against the generated vfmsub132pd/sd sequence) as
///   t = ki_scaled * k[j]            (separate, rounded multiply)
///   v = fms(prow[j] + col, 0.5, t)  (the 0.5-scale fused with the sub)
///   v *= inv_lambda
/// i.e. it contracts the half-scaling, NOT the k-product. Mirroring that
/// exact shape is what makes this variant bit_exact => memcmp-asserted.
/// Column values load/store through a lane buffer (stride-n access).
void rank1_avx2(f64* p, const f64* k, f64 coeff, f64 inv_lambda, i64 rlo,
                i64 rhi, i64 n) {
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lam = _mm256_set1_pd(inv_lambda);
  for (i64 i = rlo; i < rhi; ++i) {
    const f64 ki_scaled = coeff * k[i];
    const __m256d ks = _mm256_set1_pd(ki_scaled);
    f64* __restrict__ prow = p + i * n;
    const i64 lo = i;
    const i64 j4 = lo + ((n - lo) - (n - lo) % 4);
    for (i64 j = lo; j < j4; j += 4) {
      alignas(32) f64 col[4] = {p[j * n + i], p[(j + 1) * n + i],
                                p[(j + 2) * n + i], p[(j + 3) * n + i]};
      const __m256d t = _mm256_mul_pd(ks, _mm256_loadu_pd(k + j));
      const __m256d s =
          _mm256_add_pd(_mm256_loadu_pd(prow + j), _mm256_load_pd(col));
      const __m256d v = _mm256_mul_pd(_mm256_fmsub_pd(s, half, t), lam);
      _mm256_storeu_pd(prow + j, v);
      alignas(32) f64 out[4];
      _mm256_store_pd(out, v);
      p[j * n + i] = out[0];
      p[(j + 1) * n + i] = out[1];
      p[(j + 2) * n + i] = out[2];
      p[(j + 3) * n + i] = out[3];
    }
    for (i64 j = j4; j < n; ++j) {
      const f64 pij = 0.5 * (prow[j] + p[j * n + i]);
      const f64 v = (pij - ki_scaled * k[j]) * inv_lambda;
      prow[j] = v;
      p[j * n + i] = v;
    }
  }
}
#endif

}  // namespace

void register_ekf_variants() {
  static const bool once = [] {
    Registry& r = Registry::instance();

    r.add({"ekf_symv_f64", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0,
           reinterpret_cast<void*>(&symv_scalar),
           "reference row inner-product loop"});
    r.add({"ekf_symv_f64", "simd", Level::kSimd, "generic", true,
           Exactness::kTolerance, kReduceTol, 10,
           reinterpret_cast<void*>(&symv_simd),
           "omp-simd reduction; bound relative to row mass Σ|P[i,j]·g[j]|"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"ekf_symv_f64", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kTolerance, kReduceTol, 20,
           reinterpret_cast<void*>(&symv_avx2),
           "16-way FMA accumulators; bound relative to row mass"});
#endif

    r.add({"ekf_dot_f64", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0, reinterpret_cast<void*>(&dot_scalar),
           "reference chunk sum (chunk partials combined ascending)"});
    r.add({"ekf_dot_f64", "simd", Level::kSimd, "generic", true,
           Exactness::kTolerance, kReduceTol, 10,
           reinterpret_cast<void*>(&dot_simd),
           "omp-simd reduction; bound relative to chunk mass Σ|aᵢ·bᵢ|"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"ekf_dot_f64", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kTolerance, kReduceTol, 20,
           reinterpret_cast<void*>(&dot_avx2),
           "16-way FMA accumulators; bound relative to chunk mass"});
#endif

    r.add({"ekf_rank1_f64", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0,
           reinterpret_cast<void*>(&rank1_scalar),
           "reference upper-triangle pair-averaged update"});
    r.add({"ekf_rank1_f64", "simd", Level::kSimd, "generic", true,
           Exactness::kBitExact, 0.0, 10,
           reinterpret_cast<void*>(&rank1_simd),
           "omp-simd over independent j elements; expression unchanged"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"ekf_rank1_f64", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kBitExact, 0.0, 20,
           reinterpret_cast<void*>(&rank1_avx2),
           "4-lane mirror of the contracted scalar expression "
           "(mul, add, fmsub-by-0.5, mul)"});
#endif
    return true;
  }();
  (void)once;
}

}  // namespace fekf::dispatch
