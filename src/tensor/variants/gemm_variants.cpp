// "gemm_f32" variants: the row-panel inner body behind matmul,
// linear_fused and linear_tanh (DESIGN.md §13).
//
// Every variant keeps the reference accumulation shape — seed the output
// row (bias or zeros), then accumulate xv * wrow over ASCENDING l — so
// each output element's floating-point chain has the same term order
// across variants. simd and avx2 additionally preserve the CONTRACTION
// (one fused multiply-add per l, as GCC emits for the scalar body) and
// are declared bit_exact, memcmp-asserted in tests/test_dispatch.cpp.
// The fixed-width template is the exception: with the row
// register-resident GCC unfuses the multiply-add for some widths, so it
// declares a tolerance bound instead (see kGemmFixedTol). The assertion
// is the contract — a compiler that contracts differently fails the
// suite loudly rather than drifting silently.
#include <cstring>

#include "tensor/dispatch.hpp"
#include "tensor/variants/variants.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace fekf::dispatch {

namespace {

// Element-mass-relative bound for the fixed-width template: per output
// element, |fixed - scalar| <= tol · Σ_l |x[i,l]·w[l,j]|. Each of the k
// terms differs by at most one extra f32 rounding (unfused mul+add vs the
// scalar body's fmadd), so k·2⁻²⁴ ≈ 3e-6 at k=50; 1e-5 leaves headroom.
constexpr f64 kGemmFixedTol = 1e-5;

inline void seed_row(f32* __restrict__ orow, const f32* __restrict__ bias,
                     i64 n) {
  if (bias != nullptr) {
    std::memcpy(orow, bias, static_cast<std::size_t>(n) * sizeof(f32));
  } else {
    std::memset(orow, 0, static_cast<std::size_t>(n) * sizeof(f32));
  }
}

/// Reference body — the exact loop matmul/linear_fused always ran.
void gemm_scalar(const f32* x, const f32* w, const f32* bias, f32* out,
                 i64 rlo, i64 rhi, i64 k, i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    f32* __restrict__ orow = out + i * n;
    seed_row(orow, bias, n);
    const f32* __restrict__ xrow = x + i * k;
    for (i64 l = 0; l < k; ++l) {
      const f32 xv = xrow[l];
      const f32* __restrict__ wrow = w + l * n;
      for (i64 j = 0; j < n; ++j) orow[j] += xv * wrow[j];
    }
  }
}

/// Same loop with an explicit vectorization grant on the j loop. Each
/// orow[j] keeps its own ascending-l chain, so lane width cannot change
/// any element's value: bit_exact.
void gemm_simd(const f32* x, const f32* w, const f32* bias, f32* out,
               i64 rlo, i64 rhi, i64 k, i64 n) {
  for (i64 i = rlo; i < rhi; ++i) {
    f32* __restrict__ orow = out + i * n;
    seed_row(orow, bias, n);
    const f32* __restrict__ xrow = x + i * k;
    for (i64 l = 0; l < k; ++l) {
      const f32 xv = xrow[l];
      const f32* __restrict__ wrow = w + l * n;
#pragma omp simd
      for (i64 j = 0; j < n; ++j) orow[j] += xv * wrow[j];
    }
  }
}

/// Compile-time column count for the paper-architecture widths: the j loop
/// fully unrolls and the l loop keeps whole output rows in registers.
/// The per-element chain shape matches the scalar body, but with the row
/// register-resident GCC chooses unfused vmul+vadd for some widths where
/// the memory-accumulate scalar body gets vfmadd (observed: N=16, N=1) —
/// one extra rounding per term. Hence TOLERANCE class, bound relative to
/// the element mass Σ_l |x[i,l]·w[l,j]| (k extra roundings at f32 ulp).
template <int N>
void gemm_fixed_n(const f32* __restrict__ x, const f32* __restrict__ w,
                  const f32* bias, f32* __restrict__ out, i64 rlo, i64 rhi,
                  i64 k) {
  for (i64 i = rlo; i < rhi; ++i) {
    f32 acc[N];
    if (bias != nullptr) {
      for (int j = 0; j < N; ++j) acc[j] = bias[j];
    } else {
      for (int j = 0; j < N; ++j) acc[j] = 0.0f;
    }
    const f32* __restrict__ xrow = x + i * k;
    for (i64 l = 0; l < k; ++l) {
      const f32 xv = xrow[l];
      const f32* __restrict__ wrow = w + l * N;
      for (int j = 0; j < N; ++j) acc[j] += xv * wrow[j];
    }
    f32* __restrict__ orow = out + i * N;
    for (int j = 0; j < N; ++j) orow[j] = acc[j];
  }
}

/// Shape-keyed specializations for the paper architecture (M=25, M^<=16,
/// d=50, scalar head). Off-catalog shapes delegate to the scalar body —
/// same numerics, no speedup, documented in docs/KERNELS.md.
void gemm_fixed(const f32* x, const f32* w, const f32* bias, f32* out,
                i64 rlo, i64 rhi, i64 k, i64 n) {
  switch (n) {
    case 25: gemm_fixed_n<25>(x, w, bias, out, rlo, rhi, k); return;
    case 16: gemm_fixed_n<16>(x, w, bias, out, rlo, rhi, k); return;
    case 50: gemm_fixed_n<50>(x, w, bias, out, rlo, rhi, k); return;
    case 1: gemm_fixed_n<1>(x, w, bias, out, rlo, rhi, k); return;
    default: gemm_scalar(x, w, bias, out, rlo, rhi, k, n); return;
  }
}

#if defined(__AVX2__) && defined(__FMA__)
/// Explicit 8-lane FMA over the j loop; ascending-l chain per element and
/// one fused multiply-add per step, matching the contracted scalar body:
/// bit_exact. The tail (n % 8) runs the scalar expression.
void gemm_avx2(const f32* x, const f32* w, const f32* bias, f32* out,
               i64 rlo, i64 rhi, i64 k, i64 n) {
  const i64 n8 = n - (n % 8);
  for (i64 i = rlo; i < rhi; ++i) {
    f32* __restrict__ orow = out + i * n;
    seed_row(orow, bias, n);
    const f32* __restrict__ xrow = x + i * k;
    for (i64 l = 0; l < k; ++l) {
      const __m256 xv = _mm256_set1_ps(xrow[l]);
      const f32* __restrict__ wrow = w + l * n;
      for (i64 j = 0; j < n8; j += 8) {
        const __m256 acc = _mm256_loadu_ps(orow + j);
        _mm256_storeu_ps(orow + j,
                         _mm256_fmadd_ps(xv, _mm256_loadu_ps(wrow + j), acc));
      }
      const f32 xs = xrow[l];
      for (i64 j = n8; j < n; ++j) orow[j] += xs * wrow[j];
    }
  }
}
#endif

}  // namespace

void register_gemm_variants() {
  static const bool once = [] {
    Registry& r = Registry::instance();
    r.add({"gemm_f32", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0, reinterpret_cast<void*>(&gemm_scalar),
           "reference row-panel body (seed, then ascending-l accumulate)"});
    r.add({"gemm_f32", "simd", Level::kSimd, "generic", true,
           Exactness::kBitExact, 0.0, 10,
           reinterpret_cast<void*>(&gemm_simd),
           "omp-simd j loop; per-element chain unchanged"});
    r.add({"gemm_f32", "fixed", Level::kSimd, "generic", true,
           Exactness::kTolerance, kGemmFixedTol, 15,
           reinterpret_cast<void*>(&gemm_fixed),
           "compile-time n for paper widths {25,16,50,1}; off-catalog "
           "shapes delegate to scalar; GCC unfuses some widths => "
           "tolerance relative to element mass Σ|x·w|"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"gemm_f32", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kBitExact, 0.0, 20,
           reinterpret_cast<void*>(&gemm_avx2),
           "8-lane FMA j loop; one fused multiply-add per l, as the "
           "contracted scalar body"});
#endif
    return true;
  }();
  (void)once;
}

}  // namespace fekf::dispatch
