// "matnt_f32" variants: the row-panel inner body behind matmul_nt, the
// gx phase of linear_tanh_backward, and the per-block descriptor
// contraction bmm_nt (DESIGN.md §13).
//
// The family contract is one f64 accumulator per output element over
// ASCENDING l:
//
//   out[i*n + j] = f32( sum_{l<q} f64(a[i*q + l]) * f64(b[j*q + l]) )
//
// Unlike the f32-accumulate gemm family, every term here is EXACT: the
// f64 product of two f32 values fits in 53 mantissa bits (24 + 24 = 48),
// so a fused multiply-add and an unfused multiply-then-add round
// identically at every step, and the only rounding that matters is the
// add chain itself. Any variant that keeps each output's chain in
// ascending l is therefore bit_exact by construction, no matter how many
// outputs it carries per vector register — which is why this family
// vectorizes ACROSS outputs (j lanes) instead of along the reduction.
// Both wide variants first transpose the small b operand into a local
// buffer so the j lanes load contiguously; oversized panels (or n < 4)
// delegate to the scalar body.
#include "tensor/dispatch.hpp"
#include "tensor/variants/variants.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace fekf::dispatch {

namespace {

/// Stack budget for the transposed b panel (16 KiB of f32). The repo's
/// callers stay far below it: bmm_nt blocks are s*q <= a few hundred,
/// matmul_nt/gx panels are at most (network width)^2.
constexpr i64 kTransposeCap = 4096;

/// Reference body — the exact loop matmul_nt/bmm_nt always ran.
void matnt_scalar(const f32* a, const f32* b, f32* out, i64 rlo, i64 rhi,
                  i64 n, i64 q) {
  for (i64 i = rlo; i < rhi; ++i) {
    const f32* __restrict__ arow = a + i * q;
    f32* __restrict__ orow = out + i * n;
    for (i64 j = 0; j < n; ++j) {
      const f32* __restrict__ brow = b + j * q;
      f64 acc = 0.0;
      for (i64 l = 0; l < q; ++l) {
        acc += static_cast<f64>(arow[l]) * brow[l];
      }
      orow[j] = static_cast<f32>(acc);
    }
  }
}

inline void transpose_b(const f32* __restrict__ b, f32* __restrict__ bt,
                        i64 n, i64 q) {
  for (i64 j = 0; j < n; ++j) {
    for (i64 l = 0; l < q; ++l) bt[l * n + j] = b[j * q + l];
  }
}

/// Four independent f64 accumulators per j block, contiguous lane loads
/// from the transposed b. Each acc[t] is its own ascending-l chain and
/// every product is exact, so lane width cannot change any element:
/// bit_exact (GCC turns the acc array into one packed-f64 FMA chain).
void matnt_lanes(const f32* a, const f32* b, f32* out, i64 rlo, i64 rhi,
                 i64 n, i64 q) {
  if (n < 4 || n * q > kTransposeCap) {
    matnt_scalar(a, b, out, rlo, rhi, n, q);
    return;
  }
  f32 bt[kTransposeCap];
  transpose_b(b, bt, n, q);
  const i64 n4 = n - (n % 4);
  for (i64 i = rlo; i < rhi; ++i) {
    const f32* __restrict__ arow = a + i * q;
    f32* __restrict__ orow = out + i * n;
    for (i64 j = 0; j < n4; j += 4) {
      f64 acc[4] = {0.0, 0.0, 0.0, 0.0};
      for (i64 l = 0; l < q; ++l) {
        const f64 av = static_cast<f64>(arow[l]);
        const f32* __restrict__ bl = bt + l * n + j;
        for (int t = 0; t < 4; ++t) acc[t] += av * static_cast<f64>(bl[t]);
      }
      for (int t = 0; t < 4; ++t) orow[j + t] = static_cast<f32>(acc[t]);
    }
    for (i64 j = n4; j < n; ++j) {
      const f32* __restrict__ brow = b + j * q;
      f64 acc = 0.0;
      for (i64 l = 0; l < q; ++l) {
        acc += static_cast<f64>(arow[l]) * brow[l];
      }
      orow[j] = static_cast<f32>(acc);
    }
  }
}

#if defined(__AVX2__) && defined(__FMA__)
/// Explicit packed-f64 FMA over 8 (then 4) j lanes. Same exactness
/// argument as `lanes`: exact products, per-output ascending-l chain,
/// and _mm256_cvtpd_ps rounds to nearest exactly like static_cast<f32>.
void matnt_avx2(const f32* a, const f32* b, f32* out, i64 rlo, i64 rhi,
                i64 n, i64 q) {
  if (n < 4 || n * q > kTransposeCap) {
    matnt_scalar(a, b, out, rlo, rhi, n, q);
    return;
  }
  f32 bt[kTransposeCap];
  transpose_b(b, bt, n, q);
  const i64 n8 = n - (n % 8);
  const i64 n4 = n - (n % 4);
  for (i64 i = rlo; i < rhi; ++i) {
    const f32* __restrict__ arow = a + i * q;
    f32* __restrict__ orow = out + i * n;
    i64 j = 0;
    for (; j < n8; j += 8) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      for (i64 l = 0; l < q; ++l) {
        const __m256d av = _mm256_set1_pd(static_cast<f64>(arow[l]));
        const f32* __restrict__ bl = bt + l * n + j;
        acc0 = _mm256_fmadd_pd(av, _mm256_cvtps_pd(_mm_loadu_ps(bl)), acc0);
        acc1 =
            _mm256_fmadd_pd(av, _mm256_cvtps_pd(_mm_loadu_ps(bl + 4)), acc1);
      }
      _mm_storeu_ps(orow + j, _mm256_cvtpd_ps(acc0));
      _mm_storeu_ps(orow + j + 4, _mm256_cvtpd_ps(acc1));
    }
    for (; j < n4; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (i64 l = 0; l < q; ++l) {
        const __m256d av = _mm256_set1_pd(static_cast<f64>(arow[l]));
        acc = _mm256_fmadd_pd(
            av, _mm256_cvtps_pd(_mm_loadu_ps(bt + l * n + j)), acc);
      }
      _mm_storeu_ps(orow + j, _mm256_cvtpd_ps(acc));
    }
    for (; j < n; ++j) {
      const f32* __restrict__ brow = b + j * q;
      f64 acc = 0.0;
      for (i64 l = 0; l < q; ++l) {
        acc += static_cast<f64>(arow[l]) * brow[l];
      }
      orow[j] = static_cast<f32>(acc);
    }
  }
}
#endif

}  // namespace

void register_matnt_variants() {
  static const bool once = [] {
    Registry& r = Registry::instance();
    r.add({"matnt_f32", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0,
           reinterpret_cast<void*>(&matnt_scalar),
           "reference per-output ascending-l f64 chain"});
    r.add({"matnt_f32", "lanes", Level::kSimd, "generic", true,
           Exactness::kBitExact, 0.0, 10,
           reinterpret_cast<void*>(&matnt_lanes),
           "4 outputs per step from a transposed b panel; exact f64 "
           "products make the chain order the only rounding, so lanes "
           "stay bit_exact"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"matnt_f32", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kBitExact, 0.0, 20,
           reinterpret_cast<void*>(&matnt_avx2),
           "8-lane packed-f64 FMA across outputs; same exact-product "
           "argument as lanes"});
#endif
    return true;
  }();
  (void)once;
}

}  // namespace fekf::dispatch
