// "tanh_f32" variants: the elementwise chunk body behind tanh() and the
// activation half of linear_tanh_fused (DESIGN.md §13).
//
// The scalar reference calls std::tanh per element. Vectorizing tanh means
// replacing libm with a polynomial, which cannot be bit_exact — the avx2
// variant is the one TOLERANCE-class variant whose bound is absolute
// (|tanh| <= 1): max |variant - scalar| <= tolerance, asserted over dense
// and near-zero inputs in tests/test_dispatch.cpp.
//
// The avx2 body evaluates tanh(x) = u / (u + 2) with u = e^{2x} - 1
// computed expm1-style (split 2^n·e^r - 1 = 2^n·(e^r - 1) + (2^n - 1)) so
// the u ≈ 2x regime near zero keeps full relative accuracy instead of
// cancelling in (e^{2x} - 1).
#include <cmath>

#include "tensor/dispatch.hpp"
#include "tensor/variants/variants.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace fekf::dispatch {

namespace {

/// Reference body — std::tanh per element, the loop tanh() always ran.
void tanh_scalar(const f32* x, f32* y, i64 count) {
  for (i64 i = 0; i < count; ++i) y[i] = std::tanh(x[i]);
}

#if defined(__AVX2__) && defined(__FMA__)

constexpr f32 kTanhAvx2Tol = 4e-6f;  // absolute; asserted by test_dispatch

inline __m256 expm1_ps(__m256 z) {
  // z = n*ln2 + r with |r| <= ln2/2; callers clamp so |n| <= 27.
  const __m256 log2e = _mm256_set1_ps(1.44269504f);
  const __m256 ln2_hi = _mm256_set1_ps(0.693359375f);
  const __m256 ln2_lo = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 nf = _mm256_round_ps(
      _mm256_mul_ps(z, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(nf, ln2_hi, z);
  r = _mm256_fnmadd_ps(nf, ln2_lo, r);

  // e^r - 1 = r + r^2 * q(r), q = 1/2 + r/6 + ... + r^5/5040 (Horner/FMA).
  __m256 q = _mm256_set1_ps(1.98412698e-4f);           // 1/5040
  q = _mm256_fmadd_ps(q, r, _mm256_set1_ps(1.38888889e-3f));   // 1/720
  q = _mm256_fmadd_ps(q, r, _mm256_set1_ps(8.33333377e-3f));   // 1/120
  q = _mm256_fmadd_ps(q, r, _mm256_set1_ps(4.16666679e-2f));   // 1/24
  q = _mm256_fmadd_ps(q, r, _mm256_set1_ps(1.66666667e-1f));   // 1/6
  q = _mm256_fmadd_ps(q, r, _mm256_set1_ps(0.5f));
  const __m256 p = _mm256_fmadd_ps(_mm256_mul_ps(r, r), q, r);  // e^r - 1

  // 2^n via exponent-field construction (n is clamped well inside range).
  const __m256i n = _mm256_cvtps_epi32(nf);
  const __m256 two_n = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23));
  const __m256 two_n_m1 = _mm256_sub_ps(two_n, _mm256_set1_ps(1.0f));
  return _mm256_fmadd_ps(two_n, p, two_n_m1);  // 2^n(e^r-1) + (2^n-1)
}

inline __m256 tanh_ps(__m256 x) {
  // |x| >= 9.01 already rounds to ±1 in f32; clamping also bounds n.
  const __m256 hi = _mm256_set1_ps(9.01f);
  const __m256 xc =
      _mm256_max_ps(_mm256_min_ps(x, hi), _mm256_sub_ps(_mm256_setzero_ps(), hi));
  const __m256 u = expm1_ps(_mm256_add_ps(xc, xc));  // e^{2x} - 1
  return _mm256_div_ps(u, _mm256_add_ps(u, _mm256_set1_ps(2.0f)));
}

void tanh_avx2(const f32* x, f32* y, i64 count) {
  const i64 c8 = count - (count % 8);
  for (i64 i = 0; i < c8; i += 8) {
    _mm256_storeu_ps(y + i, tanh_ps(_mm256_loadu_ps(x + i)));
  }
  for (i64 i = c8; i < count; ++i) y[i] = std::tanh(x[i]);
}
#endif

}  // namespace

void register_tanh_variants() {
  static const bool once = [] {
    Registry& r = Registry::instance();
    r.add({"tanh_f32", "scalar", Level::kScalar, "generic", true,
           Exactness::kBitExact, 0.0, 0,
           reinterpret_cast<void*>(&tanh_scalar), "std::tanh per element"});
#if defined(__AVX2__) && defined(__FMA__)
    r.add({"tanh_f32", "avx2", Level::kAvx2, "avx2+fma", true,
           Exactness::kTolerance, static_cast<f64>(kTanhAvx2Tol), 20,
           reinterpret_cast<void*>(&tanh_avx2),
           "8-lane expm1-style polynomial, tanh = u/(u+2); absolute bound "
           "(|tanh| <= 1)"});
#endif
    return true;
  }();
  (void)once;
}

}  // namespace fekf::dispatch
