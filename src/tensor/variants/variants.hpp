// Dispatched kernel-family signatures and their registration hooks
// (DESIGN.md §13). Each family is the INNER BODY of a hot kernel in
// tensor/kernels.cpp: a per-panel or per-chunk function invoked from the
// same parallel_for partitions the kernel always used, so thread-width
// determinism (§9) is a property of the variant body alone.
//
// The name passed to dispatch::Registry keys the function-pointer type by
// convention:
//
//   "gemm_f32"          GemmPanelFn      row panel of out = seed + x·W
//   "tanh_f32"          TanhChunkFn      elementwise tanh over a flat chunk
//   "ekf_symv_f64"      SymvPanelFn      row panel of y = P·g
//   "ekf_dot_f64"       DotChunkFn       partial <a,b> over one reduce chunk
//   "ekf_rank1_f64"     Rank1PanelFn     row panel of the pair-averaged
//                                        symmetric rank-1 P update
//   "matnt_f32"         MatNtPanelFn     row panel of out = a·bᵀ with a
//                                        per-output f64 accumulator
//   "desc_contract_f32" DescContractFn   one block of D = A·(A^<)ᵀ
//                                        (registered by src/deepmd)
#pragma once

#include "core/common.hpp"

namespace fekf::dispatch {

// ---- family signatures ----------------------------------------------------

/// Rows [rlo, rhi) of out(m, n) = seed + x(m, k) · w(k, n), where seed is
/// the broadcast `bias` row (linear layers) or zeros (`bias == nullptr`,
/// plain matmul). Accumulates over ascending l into the output row — the
/// matmul/linear_fused reference order.
using GemmPanelFn = void (*)(const f32* x, const f32* w, const f32* bias,
                             f32* out, i64 rlo, i64 rhi, i64 k, i64 n);

/// y[i] = tanh(x[i]) for i in [0, count). In-place allowed (y == x).
using TanhChunkFn = void (*)(const f32* x, f32* y, i64 count);

/// Rows [rlo, rhi) of y = P·g for symmetric P(n, n): one ascending-j inner
/// product per row.
using SymvPanelFn = void (*)(const f64* p, const f64* g, f64* y, i64 rlo,
                             i64 rhi, i64 n);

/// Partial sum of a[i]*b[i] over [lo, hi) — one parallel_reduce_f64 chunk.
/// Chunk partials are combined by the caller in fixed ascending order.
using DotChunkFn = f64 (*)(const f64* a, const f64* b, i64 lo, i64 hi);

/// Rows [rlo, rhi) of the symmetric rank-1 covariance update: for j >= i,
///   v = (0.5*(P[i,j] + P[j,i]) - (coeff*k[i])*k[j]) * inv_lambda
/// written to both (i,j) and (j,i). The task owning row i touches exactly
/// the pairs {(i,j), (j,i) : j >= i}, so panels stay disjoint (§9).
using Rank1PanelFn = void (*)(f64* p, const f64* k, f64 coeff, f64 inv_lambda,
                              i64 rlo, i64 rhi, i64 n);

/// Rows [rlo, rhi) of out(:, n) = a(:, q) · b(n, q)ᵀ with one f64
/// accumulator per output element over ascending l:
///   out[i*n + j] = f32( Σ_{l<q} f64(a[i*q + l]) · f64(b[j*q + l]) )
/// — the matmul_nt / bmm_nt / linear_tanh_backward-gx reference order.
/// The f64 product of two f32 values is exact, so fused and unfused
/// multiply-adds round identically and any variant keeping each output's
/// ascending-l chain is bit_exact (see nt_variants.cpp).
using MatNtPanelFn = void (*)(const f32* a, const f32* b, f32* out, i64 rlo,
                              i64 rhi, i64 n, i64 q);

/// One atom block of the descriptor tail D = A·(A^<)ᵀ: for i < m,
/// j < m_axis, ob[i, j] = sum_l ab[i, l] * ab[j, l] with an f64
/// accumulator (the bmm_nt reference order).
using DescContractFn = void (*)(const f32* ab, f32* ob, i64 m, i64 m_axis,
                                i64 q);

// ---- registration hooks ---------------------------------------------------
// Idempotent; invoked by the Dispatched<> handles guarding each call site
// (and by Registry::instance() for the tensor-local families).

void register_gemm_variants();
void register_tanh_variants();
void register_ekf_variants();
void register_matnt_variants();

}  // namespace fekf::dispatch
