#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/env.hpp"

namespace fekf {

namespace {

/// Default slab capacity in f32 elements (4 MiB). Oversized requests get a
/// dedicated slab of exactly their (aligned) size.
constexpr i64 kSlabElems = i64{1} << 20;

/// Allocation granularity in elements: 16 f32 = 64 bytes, one cache line,
/// so consecutive tensors in a slab never share a line (matters for the
/// disjoint-output-partition determinism argument — no false sharing).
constexpr i64 kAlignElems = 16;

std::atomic<i64> g_arm_depth{0};

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env::get_flag("FEKF_ARENA", true)};
  return flag;
}

/// Registry of every thread's arena so the scope owner can rewind them all.
/// Registration happens once per thread (thread_local construction) and
/// unregistration once at thread exit, so the lock is cold.
///
/// Both the mutex and the vector are intentionally immortal (heap-allocated,
/// never freed): pool workers are joined by a static destructor, so their
/// thread_local ~Workspace calls can run AFTER ordinary function-local
/// statics here are destroyed — unregistering through a destroyed vector is
/// a use-after-free. A pointer held by a static keeps the allocation
/// reachable, so LeakSanitizer does not flag it.
std::mutex& registry_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<Workspace*>& registry() {
  static std::vector<Workspace*>* r = new std::vector<Workspace*>();
  return *r;
}

}  // namespace

struct Workspace::Slab {
  explicit Slab(i64 cap)
      : mem(new f32[static_cast<std::size_t>(cap)]), capacity(cap) {}
  std::unique_ptr<f32[]> mem;
  i64 capacity;    ///< elements
  i64 offset = 0;  ///< bump cursor, elements
};

Workspace::Workspace() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(this);
}

Workspace::~Workspace() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& r = registry();
  r.erase(std::remove(r.begin(), r.end(), this), r.end());
}

Workspace& Workspace::local() {
  thread_local Workspace ws;
  return ws;
}

bool Workspace::armed() {
  return g_arm_depth.load(std::memory_order_relaxed) > 0 && enabled();
}

bool Workspace::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void Workspace::set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void Workspace::arm() { g_arm_depth.fetch_add(1, std::memory_order_relaxed); }

i64 Workspace::disarm() {
  return g_arm_depth.fetch_sub(1, std::memory_order_relaxed) - 1;
}

std::shared_ptr<f32[]> Workspace::allocate(i64 numel) {
  const i64 want = (numel + kAlignElems - 1) & ~(kAlignElems - 1);
  while (true) {
    if (cursor_ < slabs_.size()) {
      Slab& s = *slabs_[cursor_];
      if (s.capacity - s.offset >= want) break;
      ++cursor_;  // tail waste is reclaimed at the next reset
      continue;
    }
    const i64 cap = std::max(kSlabElems, want);
    slabs_.push_back(std::make_shared<Slab>(cap));
    reserved_bytes_.fetch_add(cap * static_cast<i64>(sizeof(f32)),
                              std::memory_order_relaxed);
  }
  const std::shared_ptr<Slab>& sp = slabs_[cursor_];
  f32* ptr = sp->mem.get() + sp->offset;
  sp->offset += want;
  allocs_.fetch_add(1, std::memory_order_relaxed);
  scope_bytes_.fetch_add(numel * static_cast<i64>(sizeof(f32)),
                         std::memory_order_relaxed);
  // Aliasing constructor: the tensor's handle shares the SLAB's control
  // block, so use_count() below is an exact live-tensor census per slab.
  return std::shared_ptr<f32[]>(sp, ptr);
}

void Workspace::reset() {
  std::vector<std::shared_ptr<Slab>> kept;
  kept.reserve(slabs_.size());
  for (std::shared_ptr<Slab>& sp : slabs_) {
    // use_count() == 1 means only the arena holds the slab: no tensor can
    // regrow the count (copies require an existing holder), so rewinding is
    // safe. Anything else means a tensor escaped the scope: retire the slab
    // — the escapee keeps it alive, and this arena never touches it again.
    if (sp.use_count() == 1) {
      sp->offset = 0;
      kept.push_back(std::move(sp));
    } else {
      retired_.fetch_add(1, std::memory_order_relaxed);
      reserved_bytes_.fetch_sub(sp->capacity * static_cast<i64>(sizeof(f32)),
                                std::memory_order_relaxed);
    }
  }
  slabs_ = std::move(kept);
  cursor_ = 0;
  const i64 sb = scope_bytes_.exchange(0, std::memory_order_relaxed);
  if (sb > 0) {
    last_scope_bytes_.store(sb, std::memory_order_relaxed);
    i64 peak = peak_scope_bytes_.load(std::memory_order_relaxed);
    while (sb > peak && !peak_scope_bytes_.compare_exchange_weak(
                            peak, sb, std::memory_order_relaxed)) {
    }
  }
}

void Workspace::reset_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Workspace* ws : registry()) ws->reset();
}

WorkspaceStats Workspace::stats() {
  WorkspaceStats out;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const Workspace* ws : registry()) {
    out.slabs += static_cast<i64>(ws->slabs_.size());
    out.reserved_bytes += ws->reserved_bytes_.load(std::memory_order_relaxed);
    out.scope_bytes += ws->scope_bytes_.load(std::memory_order_relaxed);
    out.last_scope_bytes +=
        ws->last_scope_bytes_.load(std::memory_order_relaxed);
    out.peak_scope_bytes +=
        ws->peak_scope_bytes_.load(std::memory_order_relaxed);
    out.allocs += ws->allocs_.load(std::memory_order_relaxed);
    out.retired_slabs += ws->retired_.load(std::memory_order_relaxed);
  }
  return out;
}

void Workspace::reset_stats() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Workspace* ws : registry()) {
    ws->last_scope_bytes_.store(0, std::memory_order_relaxed);
    ws->peak_scope_bytes_.store(0, std::memory_order_relaxed);
    ws->allocs_.store(0, std::memory_order_relaxed);
    ws->retired_.store(0, std::memory_order_relaxed);
  }
}

}  // namespace fekf
