// Per-thread bump-pointer arena ("Workspace") for tensor temporaries.
//
// One training step allocates hundreds of short-lived tensors (autograd op
// outputs, kernel scratch) that all die when the measurement graph is
// dropped at the end of the step. The paper's implementation avoids paying
// cudaMalloc for these by drawing them from a reused workspace; this is the
// CPU analog: while a step-scoped ArenaScope is armed, Tensor storage comes
// from the calling thread's Workspace (a chain of large slabs bumped by a
// cursor) instead of operator new, and the scope's destructor rewinds every
// thread's slabs in O(#slabs).
//
// Aliasing rules (DESIGN.md §12 "Kernel fusion & memory arena"):
//  * A tensor's storage shared_ptr aliases its slab's control block, so the
//    slab cannot be rewound or freed while any tensor into it is alive.
//  * reset() rewinds only slabs whose use_count shows no live tensors; a
//    slab that a tensor escaped the scope with is RETIRED instead — dropped
//    from the arena (the escaping tensor keeps it alive) and never reused.
//    Memory handed out by the arena is therefore never aliased by a later
//    step, by construction; tests assert the retired count to catch
//    accidental escapes.
//  * Arming is process-global (a relaxed atomic depth), but each thread
//    allocates from its own Workspace, so the hot path takes no lock. The
//    scope owner must only reset at a quiescent point: every parallel
//    region issued inside the scope has joined (the pool join provides the
//    happens-before edge; see DESIGN.md "Threading & determinism").
//
// FEKF_ARENA=0 (or "off"/"false") disables the arena globally; scopes then
// arm nothing and every tensor falls back to operator new, which is the
// bit-identical reference path (the arena changes where bytes live, never
// what they hold).
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "core/common.hpp"

namespace fekf {

/// Aggregated allocator counters (sums over every thread's arena).
struct WorkspaceStats {
  i64 slabs = 0;            ///< live slabs currently owned by arenas
  i64 reserved_bytes = 0;   ///< total capacity of those slabs
  i64 scope_bytes = 0;      ///< bytes handed out since the last reset
  i64 last_scope_bytes = 0; ///< bytes handed out in the last completed scope
  i64 peak_scope_bytes = 0; ///< max bytes a single scope ever handed out
  i64 allocs = 0;           ///< tensor allocations served from slabs
  i64 retired_slabs = 0;    ///< slabs abandoned because a tensor escaped
};

class Workspace {
 public:
  Workspace();
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bump-allocate storage for `numel` f32 elements. The returned pointer
  /// aliases the owning slab's control block (zero extra heap traffic).
  std::shared_ptr<f32[]> allocate(i64 numel);

  /// Rewind this arena: slabs with no live tensors restart at offset 0;
  /// slabs kept alive by escaped tensors are retired (see header comment).
  void reset();

  /// The calling thread's arena (thread_local, registered for reset_all).
  static Workspace& local();

  /// True when an ArenaScope is active AND the arena is enabled — the gate
  /// the Tensor constructor checks (two relaxed loads).
  static bool armed();

  /// Process-wide enable switch, initialized once from FEKF_ARENA.
  static bool enabled();
  static void set_enabled(bool on);

  /// Rewind every thread's arena. Caller must guarantee quiescence (no
  /// concurrent allocation), which step boundaries do by joining the pool.
  static void reset_all();

  static WorkspaceStats stats();
  static void reset_stats();

 private:
  friend class ArenaScope;
  static void arm();
  /// Returns the new depth so the outermost scope can trigger reset_all.
  static i64 disarm();

  struct Slab;
  std::vector<std::shared_ptr<Slab>> slabs_;
  std::size_t cursor_ = 0;  ///< slabs before cursor_ are full for this scope
  std::atomic<i64> scope_bytes_{0};
  std::atomic<i64> last_scope_bytes_{0};
  std::atomic<i64> peak_scope_bytes_{0};
  std::atomic<i64> allocs_{0};
  std::atomic<i64> retired_{0};
  std::atomic<i64> reserved_bytes_{0};
};

/// RAII step scope: arms the arena for its lifetime and rewinds every
/// thread's slabs when the outermost scope closes. Place it so that every
/// tensor allocated under it (the forward/backward graph, the measurement)
/// is destroyed first — the trainers open one per update, before the
/// measurement variable. Nesting is allowed; only the outermost resets.
class ArenaScope {
 public:
  ArenaScope() { Workspace::arm(); }
  ~ArenaScope() {
    if (Workspace::disarm() == 0 && Workspace::enabled()) {
      Workspace::reset_all();
    }
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

}  // namespace fekf
