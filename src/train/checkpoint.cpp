#include "train/checkpoint.hpp"

#include "obs/trace.hpp"

namespace fekf::train {

namespace {

constexpr const char* kMagic = "fekf-training-checkpoint-v1";

void write_rng(TextWriter& w, const RngState& rng) {
  w.key("rng");
  for (const u64 s : rng.s) w.u64v(s);
  w.i64v(rng.have_gauss ? 1 : 0);
  w.f64v(rng.cached_gauss);
}

RngState read_rng(TextReader& r) {
  r.expect("rng");
  RngState rng;
  for (u64& s : rng.s) s = r.read_u64();
  rng.have_gauss = r.read_i64() != 0;
  rng.cached_gauss = r.read_f64();
  return rng;
}

void write_f64s(TextWriter& w, const char* name,
                const std::vector<f64>& v) {
  w.key(name);
  w.size(v.size());
  for (const f64 x : v) w.f64v(x);
}

std::vector<f64> read_f64s(TextReader& r, const char* name) {
  r.expect(name);
  const u64 n = r.read_u64();
  std::vector<f64> v;
  r.read_f64s(v, static_cast<std::size_t>(n));
  return v;
}

void write_kalman(TextWriter& w, const optim::KalmanState& k) {
  w.key("lambda");
  w.f64v(k.lambda);
  w.key("blocks");
  w.size(k.p.size());
  for (const std::vector<f64>& block : k.p) {
    write_f64s(w, "block", block);
  }
}

optim::KalmanState read_kalman(TextReader& r) {
  optim::KalmanState k;
  r.expect("lambda");
  k.lambda = r.read_f64();
  r.expect("blocks");
  const u64 nblocks = r.read_u64();
  k.p.reserve(static_cast<std::size_t>(nblocks));
  for (u64 b = 0; b < nblocks; ++b) {
    k.p.push_back(read_f64s(r, "block"));
  }
  return k;
}

void write_metrics(TextWriter& w, const Metrics& m) {
  w.f64v(m.energy_rmse);
  w.f64v(m.energy_rmse_per_atom);
  w.f64v(m.force_rmse);
}

Metrics read_metrics(TextReader& r) {
  Metrics m;
  m.energy_rmse = r.read_f64();
  m.energy_rmse_per_atom = r.read_f64();
  m.force_rmse = r.read_f64();
  return m;
}

const char* optimizer_kind_name(OptimizerCheckpoint::Kind kind) {
  switch (kind) {
    case OptimizerCheckpoint::Kind::kNone:
      return "none";
    case OptimizerCheckpoint::Kind::kKalman:
      return "kalman";
    case OptimizerCheckpoint::Kind::kNaiveEkf:
      return "naive_ekf";
    case OptimizerCheckpoint::Kind::kAdam:
      return "adam";
  }
  return "none";
}

}  // namespace

void save_checkpoint(const TrainingCheckpoint& ckpt,
                     const deepmd::DeepmdModel& model,
                     const std::string& path) {
  obs::ScopedSpan span("checkpoint.save", "checkpoint");
  span.arg("step", static_cast<f64>(ckpt.steps));
  TextWriter w;
  // P blocks dominate; reserve roughly one 22-char hex float per entry.
  std::size_t p_entries = ckpt.optimizer.kalman.p.size();
  for (const auto& b : ckpt.optimizer.kalman.p) p_entries += b.size();
  for (const auto& rep : ckpt.optimizer.replicas) {
    for (const auto& b : rep.p) p_entries += b.size();
  }
  w.reserve((p_entries + ckpt.weights.size()) * 24 + (1u << 16));

  w.key("section");
  w.token("counters");
  w.key("epoch");
  w.i64v(ckpt.epoch);
  w.key("steps");
  w.i64v(ckpt.steps);

  w.key("section");
  w.token("model");
  w.end_line();
  write_model_text(model, w);

  w.key("section");
  w.token("layout");
  w.key("layout");
  w.size(ckpt.layout.size());
  for (const auto& [name, size] : ckpt.layout) {
    w.key("leaf");
    w.bytes(name);
    w.i64v(size);
  }

  w.key("section");
  w.token("weights");
  write_f64s(w, "weights", ckpt.weights);

  w.key("section");
  w.token("optimizer");
  w.key("kind");
  w.token(optimizer_kind_name(ckpt.optimizer.kind));
  switch (ckpt.optimizer.kind) {
    case OptimizerCheckpoint::Kind::kNone:
      break;
    case OptimizerCheckpoint::Kind::kKalman:
      write_kalman(w, ckpt.optimizer.kalman);
      break;
    case OptimizerCheckpoint::Kind::kNaiveEkf:
      w.key("replicas");
      w.size(ckpt.optimizer.replicas.size());
      for (const optim::KalmanState& rep : ckpt.optimizer.replicas) {
        write_kalman(w, rep);
      }
      break;
    case OptimizerCheckpoint::Kind::kAdam:
      w.key("t");
      w.i64v(ckpt.optimizer.adam.t);
      write_f64s(w, "m", ckpt.optimizer.adam.m);
      write_f64s(w, "v", ckpt.optimizer.adam.v);
      break;
  }

  w.key("section");
  w.token("sampler");
  w.key("order");
  w.size(ckpt.sampler.order.size());
  for (const i64 i : ckpt.sampler.order) w.i64v(i);
  w.key("cursor");
  w.i64v(ckpt.sampler.cursor);
  write_rng(w, ckpt.sampler.rng);

  w.key("section");
  w.token("group_rng");
  w.key("present");
  w.i64v(ckpt.has_group_rng ? 1 : 0);
  if (ckpt.has_group_rng) write_rng(w, ckpt.group_rng);

  w.key("section");
  w.token("history");
  w.key("history");
  w.size(ckpt.history.size());
  for (const EpochRecord& rec : ckpt.history) {
    w.key("epoch");
    w.i64v(rec.epoch);
    write_metrics(w, rec.train);
    write_metrics(w, rec.test);
    w.f64v(rec.cumulative_seconds);
  }

  w.key("section");
  w.token("faults");
  w.key("faults");
  w.size(ckpt.faults.events.size());
  for (const FaultEvent& e : ckpt.faults.events) {
    w.key("event");
    w.i64v(e.step);
    w.bytes(e.kind);
    w.bytes(e.action);
    w.bytes(e.detail);
  }

  w.key("section");
  w.token("membership");
  w.key("present");
  w.i64v(ckpt.membership.present ? 1 : 0);
  if (ckpt.membership.present) {
    w.key("next_id");
    w.i64v(ckpt.membership.next_id);
    w.key("ranks");
    w.size(ckpt.membership.ranks.size());
    for (const MembershipCheckpoint::Rank& rank : ckpt.membership.ranks) {
      w.key("rank");
      w.i64v(rank.id);
      w.i64v(rank.alive ? 1 : 0);
      w.i64v(rank.silent ? 1 : 0);
      w.f64v(rank.slowdown);
      w.i64v(rank.missed);
    }
  }

  w.key("end");
  w.end_line();

  write_checksummed_file(path, kMagic, w.str());
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  obs::ScopedSpan span("checkpoint.load", "checkpoint");
  const std::string body = read_checksummed_file(path, kMagic);
  TextReader r(body, path);
  TrainingCheckpoint ckpt;

  r.expect("section");
  r.expect("counters");
  r.expect("epoch");
  ckpt.epoch = r.read_i64();
  if (ckpt.epoch < 1) r.malformed("epoch must be >= 1");
  r.expect("steps");
  ckpt.steps = r.read_i64();
  if (ckpt.steps < 0) r.malformed("steps must be >= 0");

  r.expect("section");
  r.expect("model");
  deepmd::DeepmdModel model = deepmd::read_model_text(r);

  r.expect("section");
  r.expect("layout");
  r.expect("layout");
  const u64 nleaves = r.read_u64();
  ckpt.layout.reserve(static_cast<std::size_t>(nleaves));
  i64 layout_total = 0;
  for (u64 i = 0; i < nleaves; ++i) {
    r.expect("leaf");
    std::string name = r.read_bytes();
    const i64 size = r.read_i64();
    if (size <= 0) r.malformed("leaf '" + name + "' has non-positive size");
    layout_total += size;
    ckpt.layout.emplace_back(std::move(name), size);
  }

  r.expect("section");
  r.expect("weights");
  ckpt.weights = read_f64s(r, "weights");
  if (static_cast<i64>(ckpt.weights.size()) != layout_total) {
    r.malformed("weight vector has " + std::to_string(ckpt.weights.size()) +
                " entries, layout sums to " + std::to_string(layout_total));
  }

  r.expect("section");
  r.expect("optimizer");
  r.expect("kind");
  const std::string_view kind = r.token();
  if (kind == "none") {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kNone;
  } else if (kind == "kalman") {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kKalman;
    ckpt.optimizer.kalman = read_kalman(r);
  } else if (kind == "naive_ekf") {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kNaiveEkf;
    r.expect("replicas");
    const u64 nreps = r.read_u64();
    for (u64 i = 0; i < nreps; ++i) {
      ckpt.optimizer.replicas.push_back(read_kalman(r));
    }
  } else if (kind == "adam") {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kAdam;
    r.expect("t");
    ckpt.optimizer.adam.t = r.read_i64();
    ckpt.optimizer.adam.m = read_f64s(r, "m");
    ckpt.optimizer.adam.v = read_f64s(r, "v");
  } else {
    r.malformed("unknown optimizer kind '" + std::string(kind) + "'");
  }

  r.expect("section");
  r.expect("sampler");
  r.expect("order");
  const u64 norder = r.read_u64();
  ckpt.sampler.order.resize(static_cast<std::size_t>(norder));
  for (i64& i : ckpt.sampler.order) i = r.read_i64();
  r.expect("cursor");
  ckpt.sampler.cursor = r.read_i64();
  ckpt.sampler.rng = read_rng(r);

  r.expect("section");
  r.expect("group_rng");
  r.expect("present");
  ckpt.has_group_rng = r.read_i64() != 0;
  if (ckpt.has_group_rng) ckpt.group_rng = read_rng(r);

  r.expect("section");
  r.expect("history");
  r.expect("history");
  const u64 nrecords = r.read_u64();
  for (u64 i = 0; i < nrecords; ++i) {
    EpochRecord rec;
    r.expect("epoch");
    rec.epoch = r.read_i64();
    rec.train = read_metrics(r);
    rec.test = read_metrics(r);
    rec.cumulative_seconds = r.read_f64();
    ckpt.history.push_back(rec);
  }

  r.expect("section");
  r.expect("faults");
  r.expect("faults");
  const u64 nevents = r.read_u64();
  for (u64 i = 0; i < nevents; ++i) {
    FaultEvent e;
    r.expect("event");
    e.step = r.read_i64();
    e.kind = r.read_bytes();
    e.action = r.read_bytes();
    e.detail = r.read_bytes();
    ckpt.faults.events.push_back(std::move(e));
  }

  r.expect("section");
  r.expect("membership");
  r.expect("present");
  ckpt.membership.present = r.read_i64() != 0;
  if (ckpt.membership.present) {
    r.expect("next_id");
    ckpt.membership.next_id = r.read_i64();
    r.expect("ranks");
    const u64 nranks = r.read_u64();
    for (u64 i = 0; i < nranks; ++i) {
      MembershipCheckpoint::Rank rank;
      r.expect("rank");
      rank.id = r.read_i64();
      rank.alive = r.read_i64() != 0;
      rank.silent = r.read_i64() != 0;
      rank.slowdown = r.read_f64();
      if (!(rank.slowdown > 0.0)) r.malformed("rank slowdown must be > 0");
      rank.missed = r.read_i64();
      ckpt.membership.ranks.push_back(rank);
    }
  }

  r.expect("end");

  return LoadedCheckpoint{std::move(ckpt), std::move(model)};
}

}  // namespace fekf::train
