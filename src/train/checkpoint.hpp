// Full-state training checkpoints.
//
// A model file (deepmd/serialize.hpp) warm-restarts *weights*; resuming a
// training run needs everything else the trajectory depends on: the EKF
// covariance blocks (or Adam moments), the f64 flat weight vector that is
// authoritative over the f32 model leaves, the batch-sampler permutation
// and RNG stream, the force-group RNG, and the epoch/step counters. A
// TrainingCheckpoint round-trips all of it bit-exactly (hex floats), so a
// run killed at a checkpoint boundary and resumed reproduces the
// uninterrupted trajectory bit-for-bit — the warm-restart contract the
// online-learning workflow (ALKPU-style active learning) builds on.
//
// On disk: one text file, "fekf-training-checkpoint-v1 <bytes> <fnv64>"
// header followed by the body the header checksums. Truncated or corrupted
// files fail loudly at load (checksum/byte-count mismatch); writes are
// atomic (temp file + rename), so a crash mid-write never destroys the
// previous checkpoint.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "deepmd/serialize.hpp"
#include "optim/adam.hpp"
#include "optim/kalman.hpp"
#include "train/metrics.hpp"

namespace fekf::train {

struct EpochRecord {
  i64 epoch = 0;
  Metrics train;
  Metrics test;
  f64 cumulative_seconds = 0.0;
};

/// Which optimizer the checkpoint carries, and its full state.
struct OptimizerCheckpoint {
  enum class Kind { kNone, kKalman, kNaiveEkf, kAdam };
  Kind kind = Kind::kNone;
  optim::KalmanState kalman;                 ///< kKalman
  std::vector<optim::KalmanState> replicas;  ///< kNaiveEkf
  optim::AdamState adam;                     ///< kAdam
};

/// Elastic virtual-cluster membership (dist/cluster.hpp). Lives here, not
/// in dist, because dist already depends on train; the cluster fills it in
/// when checkpointing so a resumed distributed run continues with the same
/// live set, straggler factors and detector miss counts — resuming with
/// fewer live ranks than the original would silently change the shard
/// split and break the bit-identical-resume contract.
struct MembershipCheckpoint {
  struct Rank {
    i64 id = 0;          ///< stable rank id (never reused after eviction)
    bool alive = true;   ///< participates in sharding + allreduce
    bool silent = false; ///< stopped heartbeating; detector is counting
    f64 slowdown = 1.0;  ///< straggler compute multiplier (1 = nominal)
    i64 missed = 0;      ///< consecutive heartbeats missed so far
  };
  bool present = false;  ///< single-process runs leave this off
  i64 next_id = 0;       ///< id the next joining rank receives
  std::vector<Rank> ranks;
};

struct TrainingCheckpoint {
  i64 epoch = 1;  ///< epoch the run was inside when checkpointed
  i64 steps = 0;  ///< optimizer steps completed so far

  /// Flat-parameter layout (leaf name, element count) — validated against
  /// the resuming model so a checkpoint can never be scattered into a
  /// mismatched architecture.
  std::vector<std::pair<std::string, i64>> layout;
  /// The authoritative f64 weight vector (model f32 leaves are derived
  /// from it by FlatParams::scatter).
  std::vector<f64> weights;

  OptimizerCheckpoint optimizer;
  data::BatchSampler::State sampler;
  bool has_group_rng = false;  ///< Kalman trainers carry the force-group RNG
  RngState group_rng;

  std::vector<EpochRecord> history;  ///< epochs completed before the cut
  FaultLog faults;                   ///< recovery events so far
  MembershipCheckpoint membership;   ///< elastic-cluster runs only
};

/// Serialize checkpoint + model to `path`. Atomic (temp file + rename);
/// the header records body length and FNV-1a checksum.
void save_checkpoint(const TrainingCheckpoint& checkpoint,
                     const deepmd::DeepmdModel& model,
                     const std::string& path);

struct LoadedCheckpoint {
  TrainingCheckpoint state;
  deepmd::DeepmdModel model;
};

/// Load and validate a checkpoint. Every failure — wrong magic, truncated
/// body, checksum mismatch, malformed token — is a single-line Error
/// naming the file, the line, and the expectation.
LoadedCheckpoint load_checkpoint(const std::string& path);

}  // namespace fekf::train
