#include "train/lcurve.hpp"

#include <cstdio>
#include <memory>

#include "train/observer.hpp"

namespace fekf::train {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
}  // namespace

// The writer is the streaming LcurveObserver; a finished history is just
// replayed through the same code path, so live and post-hoc lcurve files
// are byte-identical.
void write_lcurve(const TrainResult& result, const std::string& path) {
  LcurveObserver observer(path);
  for (const EpochRecord& rec : result.history) {
    observer.on_eval(rec);
  }
}

std::vector<EpochRecord> read_lcurve(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r"));
  FEKF_CHECK(f != nullptr, "cannot open '" + path + "' for reading");
  char header[256];
  FEKF_CHECK(std::fgets(header, sizeof(header), f.get()) != nullptr,
             "empty lcurve file");
  std::vector<EpochRecord> records;
  long long epoch = 0;
  f64 seconds = 0, te = 0, tf = 0, ve = 0, vf = 0;
  while (std::fscanf(f.get(), "%lld,%lf,%lf,%lf,%lf,%lf", &epoch, &seconds,
                     &te, &tf, &ve, &vf) == 6) {
    EpochRecord rec;
    rec.epoch = static_cast<i64>(epoch);
    rec.cumulative_seconds = seconds;
    rec.train.energy_rmse = te;
    rec.train.force_rmse = tf;
    rec.test.energy_rmse = ve;
    rec.test.force_rmse = vf;
    records.push_back(rec);
  }
  return records;
}

}  // namespace fekf::train
