// Learning-curve writer — the equivalent of DeePMD-kit's lcurve.out:
// one CSV row per epoch with train/test RMSE and cumulative wall time, so
// runs can be plotted or post-processed (the paper's artifact workflow
// greps epoch_train.dat the same way).
#pragma once

#include <string>

#include "train/trainer.hpp"

namespace fekf::train {

/// Write `history` as CSV:
///   epoch,seconds,train_e_rmse,train_f_rmse,test_e_rmse,test_f_rmse
void write_lcurve(const TrainResult& result, const std::string& path);

/// Parse it back (round-trip for tooling/tests).
std::vector<EpochRecord> read_lcurve(const std::string& path);

}  // namespace fekf::train
