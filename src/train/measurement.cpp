#include "train/measurement.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "parallel/thread_pool.hpp"

namespace fekf::train {

namespace op = ag::ops;

// Threading: per-sample forward passes are independent (each builds its own
// tape subgraph; the shared weight leaves are only read), so they run under
// parallel_for. The scalar measurement and its ABE are then combined in
// batch order on the calling thread, which pins the graph shape and the
// accumulation order — results are bit-exact for any thread width
// (DESIGN.md "Threading & determinism").

Measurement energy_measurement(const deepmd::DeepmdModel& model,
                               std::span<const EnvPtr> batch) {
  FEKF_CHECK(!batch.empty(), "empty batch");
  const f64 natoms = static_cast<f64>(batch.front()->natoms);
  const f64 norm = 1.0 / (static_cast<f64>(batch.size()) * natoms);
  const i64 bs = static_cast<i64>(batch.size());
  std::vector<ag::Variable> terms(static_cast<std::size_t>(bs));
  std::vector<f64> abes(static_cast<std::size_t>(bs), 0.0);
  parallel_for(0, bs, [&](i64 s) {
    const EnvPtr& env = batch[static_cast<std::size_t>(s)];
    auto pred = model.predict(env, /*with_forces=*/false);
    const f64 err = env->energy_label - static_cast<f64>(pred.energy.item());
    const f64 sigma = err >= 0.0 ? 1.0 : -1.0;  // Alg. 1 lines 3-5
    abes[static_cast<std::size_t>(s)] = std::abs(err) * norm;
    terms[static_cast<std::size_t>(s)] =
        op::scale(pred.energy, static_cast<f32>(sigma * norm));
  });
  Measurement out;
  for (i64 s = 0; s < bs; ++s) {
    out.abe += abes[static_cast<std::size_t>(s)];
    const ag::Variable& term = terms[static_cast<std::size_t>(s)];
    out.m = out.m.defined() ? op::add(out.m, term) : term;
  }
  return out;
}

Measurement force_measurement(const deepmd::DeepmdModel& model,
                              std::span<const EnvPtr> batch,
                              std::span<const i64> group,
                              f64 update_prefactor) {
  FEKF_CHECK(!batch.empty(), "empty batch");
  FEKF_CHECK(!group.empty(), "empty force group");
  // Normalization follows the RLEKF/FEKF implementation lineage: the
  // measurement is pf * SUM of sign-flipped components over natoms, while
  // the reported error is pf * MEAN absolute component error over natoms.
  // The deliberate mismatch (error understated by the component count)
  // damps the force step against the extensive total-energy direction —
  // this is the "heuristic" weight update of Algorithm 1 line 13; with a
  // consistent mean/mean scaling the force updates destabilize the energy
  // fit (total energy is natoms-extensive, forces are not).
  const f64 natoms = static_cast<f64>(batch.front()->natoms);
  const f64 bs = static_cast<f64>(batch.size());
  const f64 ncomps = static_cast<f64>(group.size()) * 3.0;
  const f64 grad_norm = update_prefactor / (bs * natoms);
  const f64 abe_norm = update_prefactor / (bs * natoms * ncomps);
  const i64 nb = static_cast<i64>(batch.size());
  std::vector<ag::Variable> terms(static_cast<std::size_t>(nb));
  std::vector<f64> abes(static_cast<std::size_t>(nb), 0.0);
  parallel_for(0, nb, [&](i64 s) {
    const EnvPtr& env = batch[static_cast<std::size_t>(s)];
    auto pred = model.predict(env, /*with_forces=*/true);
    const Tensor& f = pred.forces.value();
    const Tensor& y = env->force_label;
    // Sign-weighted selection mask over the group's components.
    Tensor mask = Tensor::zeros(env->natoms, 3);
    f64 abe = 0.0;
    for (const i64 atom : group) {
      for (int axis = 0; axis < 3; ++axis) {
        const f64 err = static_cast<f64>(y.at(atom, axis)) - f.at(atom, axis);
        const f64 sigma = err >= 0.0 ? 1.0 : -1.0;
        mask.at(atom, axis) = static_cast<f32>(sigma * grad_norm);
        abe += std::abs(err) * abe_norm;
      }
    }
    abes[static_cast<std::size_t>(s)] = abe;
    terms[static_cast<std::size_t>(s)] =
        op::sum_all(op::mul(pred.forces, ag::Variable(mask)));
  });
  Measurement out;
  for (i64 s = 0; s < nb; ++s) {
    out.abe += abes[static_cast<std::size_t>(s)];
    const ag::Variable& term = terms[static_cast<std::size_t>(s)];
    out.m = out.m.defined() ? op::add(out.m, term) : term;
  }
  return out;
}

std::vector<std::vector<i64>> make_force_groups(i64 natoms, i64 ngroups,
                                                Rng& rng) {
  FEKF_CHECK(natoms > 0 && ngroups > 0, "bad group parameters");
  ngroups = std::min(ngroups, natoms);
  std::vector<i64> order(static_cast<std::size_t>(natoms));
  for (i64 i = 0; i < natoms; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  std::vector<std::vector<i64>> groups(static_cast<std::size_t>(ngroups));
  for (i64 i = 0; i < natoms; ++i) {
    groups[static_cast<std::size_t>(i % ngroups)].push_back(
        order[static_cast<std::size_t>(i)]);
  }
  return groups;
}

}  // namespace fekf::train
