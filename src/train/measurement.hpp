// EKF measurement construction (Algorithm 1 lines 3-7).
//
// The Kalman update consumes a SCALAR measurement. Multi-output residuals
// (a batch of energies; a group of force components) are reduced with the
// sign-flip trick: each prediction enters the sum with the sign that makes
// its residual positive, so the summed error equals the mean ABSOLUTE error
// and the gradient is the matching sign-weighted mean — the "early
// reduction" of the funnel dataflow (§3.1, Fig. 3).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "train/metrics.hpp"

namespace fekf::train {

struct Measurement {
  ag::Variable m;  ///< scalar, differentiable w.r.t. the weights
  f64 abe = 0.0;   ///< mean absolute error of the reduced residuals
};

/// Batched energy measurement, normalized per atom and per sample:
///   m = (1/(bs*natoms)) sum_b sigma_b E_hat_b,  abe = mean |dE| / natoms.
Measurement energy_measurement(const deepmd::DeepmdModel& model,
                               std::span<const EnvPtr> batch);

/// Batched force measurement over the atom subset `group` (sorted-order
/// indices): per-component sign flips; the measurement gradient is
/// normalized per atom (pf * sum / natoms) and the error per component AND
/// per atom (pf * mean / natoms) — the RLEKF-lineage heuristic scaling that
/// keeps the extensive energy fit stable (see the .cpp comment).
Measurement force_measurement(const deepmd::DeepmdModel& model,
                              std::span<const EnvPtr> batch,
                              std::span<const i64> group,
                              f64 update_prefactor = 2.0);

/// Random partition of [0, natoms) into `ngroups` near-equal groups (the
/// paper's four force updates per step use one group each).
std::vector<std::vector<i64>> make_force_groups(i64 natoms, i64 ngroups,
                                                Rng& rng);

}  // namespace fekf::train
