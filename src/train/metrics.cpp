#include "train/metrics.hpp"

#include <cmath>

namespace fekf::train {

std::vector<EnvPtr> prepare_all(const deepmd::DeepmdModel& model,
                                std::span<const md::Snapshot> snapshots) {
  std::vector<EnvPtr> envs;
  envs.reserve(snapshots.size());
  for (const md::Snapshot& s : snapshots) {
    envs.push_back(model.prepare(s));
  }
  return envs;
}

Metrics evaluate(const deepmd::DeepmdModel& model,
                 std::span<const EnvPtr> envs, i64 max_samples,
                 bool with_forces) {
  FEKF_CHECK(!envs.empty(), "evaluate on empty set");
  const i64 n = max_samples < 0
                    ? static_cast<i64>(envs.size())
                    : std::min<i64>(max_samples,
                                    static_cast<i64>(envs.size()));
  f64 se_e = 0.0, se_epa = 0.0, se_f = 0.0;
  i64 f_count = 0;
  for (i64 s = 0; s < n; ++s) {
    const EnvPtr& env = envs[static_cast<std::size_t>(s)];
    auto pred = model.predict(env, with_forces);
    const f64 de = static_cast<f64>(pred.energy.item()) - env->energy_label;
    se_e += de * de;
    const f64 dea = de / static_cast<f64>(env->natoms);
    se_epa += dea * dea;
    if (with_forces) {
      const Tensor& f = pred.forces.value();
      const Tensor& y = env->force_label;
      for (i64 i = 0; i < f.numel(); ++i) {
        const f64 d = static_cast<f64>(f.data()[i]) - y.data()[i];
        se_f += d * d;
      }
      f_count += f.numel();
    }
  }
  Metrics m;
  m.energy_rmse = std::sqrt(se_e / static_cast<f64>(n));
  m.energy_rmse_per_atom = std::sqrt(se_epa / static_cast<f64>(n));
  if (f_count > 0) {
    m.force_rmse = std::sqrt(se_f / static_cast<f64>(f_count));
  }
  return m;
}

}  // namespace fekf::train
