// Evaluation metrics: energy RMSE (per structure and per atom, eV) and
// force RMSE (per component, eV/Å) over a set of prepared environments.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "deepmd/model.hpp"

namespace fekf::train {

using EnvPtr = std::shared_ptr<const deepmd::EnvData>;

struct Metrics {
  f64 energy_rmse = 0.0;           ///< per structure (eV)
  f64 energy_rmse_per_atom = 0.0;  ///< per atom (eV)
  f64 force_rmse = 0.0;            ///< per component (eV/Å)

  /// The paper's §5.1 convergence monitor: energy + force RMSE.
  f64 total() const { return energy_rmse + force_rmse; }
};

/// Preprocess snapshots once (geometry does not change between epochs).
std::vector<EnvPtr> prepare_all(const deepmd::DeepmdModel& model,
                                std::span<const md::Snapshot> snapshots);

/// Evaluate on up to `max_samples` environments (-1 = all). Set
/// `with_forces` false to skip the force graph (energy-only metrics).
Metrics evaluate(const deepmd::DeepmdModel& model,
                 std::span<const EnvPtr> envs, i64 max_samples = -1,
                 bool with_forces = true);

}  // namespace fekf::train
