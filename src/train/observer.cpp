#include "train/observer.hpp"

#include <cmath>

namespace fekf::train {

namespace {

/// JSON has no NaN/Infinity literals; a diverged step's loss exports as
/// null (the fault_kind field says why).
std::string json_number(f64 v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.8g", v);
  return buf;
}

/// Minimal JSON string escaper (fault details can carry exception text).
std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// LcurveObserver
// ---------------------------------------------------------------------------

LcurveObserver::LcurveObserver(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  FEKF_CHECK(file_ != nullptr, "cannot open '" + path + "' for writing");
  std::fprintf(file_,
               "epoch,seconds,train_e_rmse,train_f_rmse,test_e_rmse,"
               "test_f_rmse\n");
}

LcurveObserver::~LcurveObserver() {
  if (file_ != nullptr) std::fclose(file_);
}

void LcurveObserver::on_eval(const EpochRecord& record) {
  std::fprintf(file_, "%lld,%.6f,%.8g,%.8g,%.8g,%.8g\n",
               static_cast<long long>(record.epoch),
               record.cumulative_seconds, record.train.energy_rmse,
               record.train.force_rmse, record.test.energy_rmse,
               record.test.force_rmse);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// JsonlMetricsObserver
// ---------------------------------------------------------------------------

JsonlMetricsObserver::JsonlMetricsObserver(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  FEKF_CHECK(file_ != nullptr, "cannot open '" + path + "' for writing");
}

JsonlMetricsObserver::~JsonlMetricsObserver() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlMetricsObserver::on_step(const StepEvent& event) {
  std::fprintf(file_,
               "{\"event\":\"step\",\"step\":%lld,\"epoch\":%lld,"
               "\"loss\":%s,\"grad_norm2\":%s,\"seconds\":%.6f,"
               "\"rolled_back\":%s%s%s}\n",
               static_cast<long long>(event.step),
               static_cast<long long>(event.epoch),
               json_number(event.loss).c_str(),
               json_number(event.grad_norm2).c_str(), event.seconds,
               event.rolled_back ? "true" : "false",
               event.fault_kind.empty() ? "" : ",\"fault_kind\":",
               event.fault_kind.empty()
                   ? ""
                   : json_string(event.fault_kind).c_str());
  std::fflush(file_);
}

void JsonlMetricsObserver::on_eval(const EpochRecord& record) {
  std::fprintf(file_,
               "{\"event\":\"eval\",\"epoch\":%lld,\"seconds\":%.6f,"
               "\"train_e_rmse\":%.8g,\"train_f_rmse\":%.8g,"
               "\"test_e_rmse\":%.8g,\"test_f_rmse\":%.8g}\n",
               static_cast<long long>(record.epoch),
               record.cumulative_seconds, record.train.energy_rmse,
               record.train.force_rmse, record.test.energy_rmse,
               record.test.force_rmse);
  std::fflush(file_);
}

void JsonlMetricsObserver::on_checkpoint(const CheckpointEvent& event) {
  std::fprintf(file_,
               "{\"event\":\"checkpoint\",\"step\":%lld,\"path\":%s,"
               "\"seconds\":%.6f}\n",
               static_cast<long long>(event.step),
               json_string(event.path).c_str(), event.seconds);
  std::fflush(file_);
}

void JsonlMetricsObserver::on_fault(const FaultEvent& event) {
  std::fprintf(file_,
               "{\"event\":\"fault\",\"step\":%lld,\"kind\":%s,"
               "\"action\":%s,\"detail\":%s}\n",
               static_cast<long long>(event.step),
               json_string(event.kind).c_str(),
               json_string(event.action).c_str(),
               json_string(event.detail).c_str());
  std::fflush(file_);
}

}  // namespace fekf::train
