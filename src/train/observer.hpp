// Trainer observer hooks (DESIGN.md §11 "Observability").
//
// The resilient step loop shared by AdamTrainer and KalmanTrainer emits a
// small, stable set of events; observers subscribe to them without the
// trainers knowing what consumes the stream. The lcurve CSV writer and the
// JSONL step-metrics emitter are both ports onto this interface, and
// online-learning integrations (loss dashboards, early-stopping policies,
// sample-selection triggers) attach the same way.
//
// Contract: hooks are invoked synchronously on the training thread, after
// the step/epoch state they describe is fully applied (a rolled-back step
// reports the rollback, never half-applied state). Observers must not
// mutate the trainer; exceptions thrown by a hook propagate and abort the
// run (an observer is part of the run's correctness surface, not a
// best-effort sink). Observer pointers in TrainOptions are non-owning and
// must outlive train().
#pragma once

#include <cstdio>
#include <string>

#include "core/fault.hpp"
#include "train/checkpoint.hpp"

namespace fekf::train {

/// One optimizer step, healthy or rolled back.
struct StepEvent {
  i64 step = 0;   ///< 1-based global optimizer step index
  i64 epoch = 0;  ///< epoch the step ran inside
  f64 loss = 0.0;        ///< summed |ABE| per update, or the Adam loss
  f64 grad_norm2 = 0.0;  ///< squared norm of the gathered gradient(s)
  f64 seconds = 0.0;     ///< wall time of the step (including recovery)
  bool rolled_back = false;  ///< a sentinel tripped and the step was undone
  std::string fault_kind;    ///< sentinel reason when rolled_back
};

/// One full-state checkpoint written to disk.
struct CheckpointEvent {
  i64 step = 0;
  std::string path;
  f64 seconds = 0.0;  ///< time spent serializing + writing
};

class TrainObserver {
 public:
  virtual ~TrainObserver() = default;
  virtual void on_step(const StepEvent&) {}
  virtual void on_eval(const EpochRecord&) {}
  virtual void on_checkpoint(const CheckpointEvent&) {}
  virtual void on_fault(const FaultEvent&) {}
};

/// The lcurve.out port: one CSV row per epoch evaluation, streamed as the
/// run progresses (write_lcurve replays a finished history through it).
class LcurveObserver : public TrainObserver {
 public:
  explicit LcurveObserver(const std::string& path);
  ~LcurveObserver() override;
  LcurveObserver(const LcurveObserver&) = delete;
  LcurveObserver& operator=(const LcurveObserver&) = delete;

  void on_eval(const EpochRecord& record) override;

 private:
  std::FILE* file_;
};

/// Machine-readable run log: one JSON object per line ("step", "eval",
/// "checkpoint", "fault" events), append-only and flushed per line so a
/// killed run keeps everything emitted before the cut.
class JsonlMetricsObserver : public TrainObserver {
 public:
  explicit JsonlMetricsObserver(const std::string& path);
  ~JsonlMetricsObserver() override;
  JsonlMetricsObserver(const JsonlMetricsObserver&) = delete;
  JsonlMetricsObserver& operator=(const JsonlMetricsObserver&) = delete;

  void on_step(const StepEvent& event) override;
  void on_eval(const EpochRecord& record) override;
  void on_checkpoint(const CheckpointEvent& event) override;
  void on_fault(const FaultEvent& event) override;

 private:
  std::FILE* file_;
};

}  // namespace fekf::train
