#include "train/trainer.hpp"

#include <cmath>
#include <limits>

#include "autograd/ops.hpp"
#include "core/log.hpp"
#include "data/dataset.hpp"
#include "parallel/thread_pool.hpp"

namespace fekf::train {

namespace op = ag::ops;

namespace {

/// Shared epoch loop: `run_step(batch_indices)` performs one optimizer
/// step; metrics/convergence bookkeeping is identical for all trainers.
template <typename StepFn>
TrainResult run_epochs(deepmd::DeepmdModel& model,
                       std::span<const EnvPtr> train_envs,
                       std::span<const EnvPtr> test_envs,
                       const TrainOptions& options, StepFn&& run_step) {
  TrainResult result;
  data::BatchSampler sampler(static_cast<i64>(train_envs.size()),
                             options.batch_size, options.seed);
  Stopwatch watch;
  std::vector<i64> indices;
  std::vector<EnvPtr> batch;
  for (i64 epoch = 1; epoch <= options.max_epochs; ++epoch) {
    while (sampler.next(indices)) {
      batch.clear();
      for (const i64 idx : indices) {
        batch.push_back(train_envs[static_cast<std::size_t>(idx)]);
      }
      run_step(std::span<const EnvPtr>(batch));
      ++result.steps;
    }
    EpochRecord record;
    record.epoch = epoch;
    record.cumulative_seconds = watch.seconds();
    record.train = evaluate(model, train_envs, options.eval_max_samples,
                            options.eval_forces);
    if (!test_envs.empty()) {
      record.test = evaluate(model, test_envs, options.eval_max_samples,
                             options.eval_forces);
    }
    if (options.verbose) {
      FEKF_INFO << "epoch " << epoch << " train E-RMSE "
                << record.train.energy_rmse << " F-RMSE "
                << record.train.force_rmse << " (t=" << record.cumulative_seconds
                << "s)";
    }
    result.history.push_back(record);
    if (!result.converged && options.target_total_rmse > 0.0 &&
        record.train.total() <= options.target_total_rmse) {
      result.converged = true;
      result.epochs_to_converge = epoch;
      result.seconds_to_converge = record.cumulative_seconds;
      break;
    }
  }
  result.total_seconds = watch.seconds();
  if (!result.history.empty()) {
    result.final_train = result.history.back().train;
    result.final_test = result.history.back().test;
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdamTrainer
// ---------------------------------------------------------------------------

AdamTrainer::AdamTrainer(deepmd::DeepmdModel& model,
                         optim::AdamConfig adam_config,
                         LossConfig loss_config, TrainOptions options)
    : model_(model),
      flat_(model.parameters()),
      adam_(flat_.size(), adam_config),
      loss_config_(loss_config),
      options_(options),
      lr0_(adam_config.lr * adam_config.lr_scale) {}

ag::Variable AdamTrainer::batch_loss(std::span<const EnvPtr> batch) {
  // DeePMD loss with lr-coupled prefactors:
  //   L = pe (dE/N)^2 + pf/(3N) sum |dF|^2,   p = limit + (start-limit) r,
  // where r = lr(t)/lr(0) decays from 1 to 0.
  const f64 r = adam_.current_lr() / lr0_;
  const f64 pe = loss_config_.pe_limit +
                 (loss_config_.pe_start - loss_config_.pe_limit) * r;
  const f64 pf = loss_config_.pf_limit +
                 (loss_config_.pf_start - loss_config_.pf_limit) * r;
  // Per-sample losses assemble in parallel (independent tape subgraphs) and
  // combine in batch order, so the loss graph is identical at any width.
  const i64 bs = static_cast<i64>(batch.size());
  std::vector<ag::Variable> samples(static_cast<std::size_t>(bs));
  parallel_for(0, bs, [&](i64 s) {
    const EnvPtr& env = batch[static_cast<std::size_t>(s)];
    auto pred = model_.predict(env, /*with_forces=*/true);
    const f64 natoms = static_cast<f64>(env->natoms);
    ag::Variable de = op::add_scalar(
        pred.energy, static_cast<f32>(-env->energy_label));
    ag::Variable loss_e = op::scale(
        op::square(op::scale(de, static_cast<f32>(1.0 / natoms))),
        static_cast<f32>(pe));
    ag::Variable df =
        op::sub(pred.forces, ag::Variable(env->force_label));
    ag::Variable loss_f = op::scale(op::sum_all(op::square(df)),
                                    static_cast<f32>(pf / (3.0 * natoms)));
    samples[static_cast<std::size_t>(s)] = op::add(loss_e, loss_f);
  });
  ag::Variable loss;
  for (i64 s = 0; s < bs; ++s) {
    const ag::Variable& sample = samples[static_cast<std::size_t>(s)];
    loss = loss.defined() ? op::add(loss, sample) : sample;
  }
  return op::scale(loss, 1.0f / static_cast<f32>(batch.size()));
}

TrainResult AdamTrainer::train(std::span<const EnvPtr> train_envs,
                               std::span<const EnvPtr> test_envs) {
  std::vector<f64> weights(static_cast<std::size_t>(flat_.size()));
  std::vector<f64> grads(static_cast<std::size_t>(flat_.size()));
  flat_.gather(weights);
  auto params = flat_.params();
  return run_epochs(
      model_, train_envs, test_envs, options_,
      [&](std::span<const EnvPtr> batch) {
        ag::Variable loss = batch_loss(batch);
        auto g = ag::grad(loss, params);
        flat_.gather_grads(g, grads);
        adam_.step(grads, weights);
        flat_.scatter(weights);
      });
}

// ---------------------------------------------------------------------------
// KalmanTrainer
// ---------------------------------------------------------------------------

KalmanTrainer::KalmanTrainer(deepmd::DeepmdModel& model,
                             optim::KalmanConfig kalman_config,
                             TrainOptions options, EkfMode mode)
    : model_(model),
      flat_(model.parameters()),
      options_(options),
      mode_(mode) {
  auto blocks = optim::split_blocks(model.parameter_layout(),
                                    kalman_config.blocksize);
  if (mode_ == EkfMode::kFekf) {
    kalman_ = std::make_unique<optim::KalmanOptimizer>(std::move(blocks),
                                                       kalman_config);
  } else {
    naive_ = std::make_unique<optim::NaiveEkf>(std::move(blocks),
                                               kalman_config,
                                               options.batch_size);
  }
  weights_.resize(static_cast<std::size_t>(flat_.size()));
  grad_flat_.resize(static_cast<std::size_t>(flat_.size()));
  flat_.gather(weights_);
}

void KalmanTrainer::apply_fekf(const Measurement& measurement,
                               i64 batch_size, f64 step_norm_cap) {
  auto params = flat_.params();
  {
    ScopedTimer timer(t_gradient_);
    auto g = ag::grad(measurement.m, params);
    flat_.gather_grads(g, grad_flat_);
  }
  {
    ScopedTimer timer(t_optimizer_);
    const f64 factor = options_.qlr_factor >= 0.0
                           ? options_.qlr_factor
                           : std::sqrt(static_cast<f64>(batch_size));
    kalman_->update(grad_flat_, factor * measurement.abe, weights_,
                    step_norm_cap, measurement.abe);
    flat_.scatter(weights_);
  }
}

void KalmanTrainer::apply_naive_sample(i64 slot,
                                       const Measurement& measurement) {
  auto params = flat_.params();
  {
    ScopedTimer timer(t_gradient_);
    auto g = ag::grad(measurement.m, params);
    flat_.gather_grads(g, grad_flat_);
  }
  {
    ScopedTimer timer(t_optimizer_);
    naive_->accumulate(slot, grad_flat_, measurement.abe);
  }
}

void KalmanTrainer::energy_update(std::span<const EnvPtr> batch) {
  if (mode_ == EkfMode::kFekf) {
    Measurement m;
    {
      ScopedTimer timer(t_forward_);
      m = energy_measurement(model_, batch);
    }
    // Energy updates are well-posed scalar Newton steps — run uncapped so
    // large transient energy errors close in one or two updates.
    apply_fekf(m, static_cast<i64>(batch.size()), /*step_norm_cap=*/0.0);
    return;
  }
  for (std::size_t s = 0; s < batch.size(); ++s) {
    Measurement m;
    {
      ScopedTimer timer(t_forward_);
      m = energy_measurement(model_, batch.subspan(s, 1));
    }
    apply_naive_sample(static_cast<i64>(s), m);
  }
  ScopedTimer timer(t_optimizer_);
  naive_->commit(weights_);
  flat_.scatter(weights_);
}

void KalmanTrainer::force_update(std::span<const EnvPtr> batch,
                                 std::span<const i64> group) {
  if (mode_ == EkfMode::kFekf) {
    Measurement m;
    {
      ScopedTimer timer(t_forward_);
      m = force_measurement(model_, batch, group, options_.force_prefactor);
    }
    apply_fekf(m, static_cast<i64>(batch.size()),
               std::numeric_limits<f64>::quiet_NaN());
    return;
  }
  for (std::size_t s = 0; s < batch.size(); ++s) {
    Measurement m;
    {
      ScopedTimer timer(t_forward_);
      m = force_measurement(model_, batch.subspan(s, 1), group,
                            options_.force_prefactor);
    }
    apply_naive_sample(static_cast<i64>(s), m);
  }
  ScopedTimer timer(t_optimizer_);
  naive_->commit(weights_);
  flat_.scatter(weights_);
}

TrainResult KalmanTrainer::train(std::span<const EnvPtr> train_envs,
                                 std::span<const EnvPtr> test_envs) {
  FEKF_CHECK(!train_envs.empty(), "empty training set");
  Rng group_rng(options_.seed ^ 0x9e3779b9ULL);
  const i64 natoms = train_envs.front()->natoms;
  TrainResult result = run_epochs(
      model_, train_envs, test_envs, options_,
      [&](std::span<const EnvPtr> batch) {
        energy_update(batch);
        auto groups = make_force_groups(
            natoms, options_.force_updates_per_step, group_rng);
        for (const auto& group : groups) {
          force_update(batch, group);
        }
      });
  result.forward_seconds = t_forward_.total_seconds();
  result.gradient_seconds = t_gradient_.total_seconds();
  result.optimizer_seconds = t_optimizer_.total_seconds();
  return result;
}

}  // namespace fekf::train
