#include "train/trainer.hpp"

#include <cmath>
#include <exception>
#include <functional>
#include <limits>

#include "autograd/ops.hpp"
#include "core/log.hpp"
#include "data/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/workspace.hpp"
#include "train/observer.hpp"

namespace fekf::train {

namespace op = ag::ops;

void TrainOptions::validate() const {
  FEKF_CHECK(batch_size > 0, "TrainOptions.batch_size must be > 0 (got " +
                                 std::to_string(batch_size) + ")");
  FEKF_CHECK(max_epochs > 0, "TrainOptions.max_epochs must be > 0 (got " +
                                 std::to_string(max_epochs) + ")");
  FEKF_CHECK(force_updates_per_step > 0,
             "TrainOptions.force_updates_per_step must be > 0 (got " +
                 std::to_string(force_updates_per_step) + ")");
  FEKF_CHECK(std::isfinite(force_prefactor) && force_prefactor > 0.0,
             "TrainOptions.force_prefactor must be finite and > 0 (got " +
                 std::to_string(force_prefactor) + ")");
  FEKF_CHECK(eval_max_samples != 0,
             "TrainOptions.eval_max_samples must be nonzero "
             "(negative evaluates the whole split)");
  FEKF_CHECK(std::isfinite(qlr_factor),
             "TrainOptions.qlr_factor must be finite "
             "(negative selects sqrt(batch_size))");
  FEKF_CHECK(snapshot_every > 0, "TrainOptions.snapshot_every must be > 0");
  FEKF_CHECK(std::isfinite(sentinel_explode_factor) &&
                 sentinel_explode_factor > 1.0,
             "TrainOptions.sentinel_explode_factor must be finite and > 1");
  FEKF_CHECK(sentinel_warmup_steps >= 0,
             "TrainOptions.sentinel_warmup_steps must be >= 0");
  FEKF_CHECK(checkpoint_every >= 0,
             "TrainOptions.checkpoint_every must be >= 0 (0 disables)");
  FEKF_CHECK(checkpoint_every == 0 || !checkpoint_path.empty(),
             "TrainOptions.checkpoint_every is set but checkpoint_path "
             "is empty");
}

namespace {

/// Per-step health signals a trainer reports back to the resilient loop.
struct StepSignals {
  f64 loss = 0.0;        ///< sum of |ABE| per update, or the Adam loss
  f64 grad_norm2 = 0.0;  ///< squared norm of the gathered gradient(s)
};

/// Trainer-specific operations the shared loop composes. All state they
/// touch (weights, optimizer, RNGs) lives in the trainer.
struct ResilienceHooks {
  std::function<StepSignals(std::span<const EnvPtr>, i64)> run_step;
  std::function<void()> snapshot;
  std::function<void()> rollback;  ///< restore snapshot + recondition
  std::function<f64()> covariance_health;  ///< max P diagonal (0 for Adam)
  std::function<void(TrainingCheckpoint&)> capture;
  std::function<void(const TrainingCheckpoint&)> restore;
};

bool all_finite(const std::vector<f64>& v) {
  for (const f64 x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Shared resilient epoch loop (DESIGN.md §10). One iteration = one
/// guarded optimizer step: run it, check the sentinels, and either accept
/// (advance the loss EMA, refresh the snapshot) or recover (roll back,
/// recondition, log, skip the batch). Worker exceptions funnel into the
/// same recovery path, so a throw mid-step can never leave half-applied
/// trainer state behind. Checkpoints are written only at step boundaries,
/// after the step's state is fully applied.
TrainResult run_resilient_epochs(deepmd::DeepmdModel& model,
                                 std::span<const EnvPtr> train_envs,
                                 std::span<const EnvPtr> test_envs,
                                 const TrainOptions& options,
                                 optim::FlatParams& flat,
                                 std::vector<f64>& weights,
                                 const ResilienceHooks& hooks) {
  options.validate();
  TrainResult result;
  data::BatchSampler sampler(static_cast<i64>(train_envs.size()),
                             options.batch_size, options.seed);
  i64 start_epoch = 1;
  f64 time_offset = 0.0;
  if (!options.resume_from.empty()) {
    LoadedCheckpoint loaded = load_checkpoint(options.resume_from);
    TrainingCheckpoint& ckpt = loaded.state;
    FEKF_CHECK(ckpt.layout == model.parameter_layout(),
               "checkpoint '" + options.resume_from +
                   "' does not match the model architecture "
                   "(parameter layout differs)");
    weights = std::move(ckpt.weights);
    flat.scatter(weights);
    hooks.restore(ckpt);
    sampler.set_state(ckpt.sampler);
    result.history = std::move(ckpt.history);
    result.faults = std::move(ckpt.faults);
    result.steps = ckpt.steps;
    start_epoch = ckpt.epoch;
    if (!result.history.empty()) {
      time_offset = result.history.back().cumulative_seconds;
    }
  }

  Stopwatch watch;
  std::vector<i64> indices;
  std::vector<EnvPtr> batch;
  f64 loss_ema = 0.0;
  i64 healthy_steps = 0;
  if (options.sentinels) hooks.snapshot();
  bool hit_max_steps = false;
  for (i64 epoch = start_epoch; epoch <= options.max_epochs; ++epoch) {
    while (sampler.next(indices)) {
      batch.clear();
      for (const i64 idx : indices) {
        batch.push_back(train_envs[static_cast<std::size_t>(idx)]);
      }
      const i64 step_index = result.steps + 1;
      StepSignals sig;
      std::exception_ptr error;
      Stopwatch step_watch;
      {
        obs::ScopedSpan step_span("step", "train");
        step_span.arg("step", static_cast<f64>(step_index));
        try {
          sig = hooks.run_step(std::span<const EnvPtr>(batch), step_index);
        } catch (...) {
          error = std::current_exception();
        }
      }
      if (error && !options.sentinels) std::rethrow_exception(error);

      std::string reason, detail;
      if (error) {
        reason = "worker_exception";
        try {
          std::rethrow_exception(error);
        } catch (const std::exception& e) {
          detail = e.what();
        } catch (...) {
          detail = "non-standard exception";
        }
      } else if (options.sentinels) {
        if (!std::isfinite(sig.loss) || !std::isfinite(sig.grad_norm2)) {
          reason = "nonfinite_signal";
          detail = "loss=" + std::to_string(sig.loss) +
                   " |g|^2=" + std::to_string(sig.grad_norm2);
        } else if (!all_finite(weights)) {
          reason = "nonfinite_weights";
        } else if (!std::isfinite(hooks.covariance_health())) {
          reason = "nonfinite_covariance";
        } else if (healthy_steps >= options.sentinel_warmup_steps &&
                   loss_ema > 0.0 &&
                   sig.loss > options.sentinel_explode_factor * loss_ema) {
          reason = "exploding_loss";
          detail = "loss=" + std::to_string(sig.loss) +
                   " ema=" + std::to_string(loss_ema);
        }
      }

      if (!reason.empty()) {
        Stopwatch recovery;
        hooks.rollback();
        result.recovery_seconds += recovery.seconds();
        result.faults.record(step_index, reason, "rollback_skip_batch",
                             detail);
        obs::TraceRecorder::instance().instant("fault.rollback", "fault",
                                               "step",
                                               static_cast<f64>(step_index));
        for (TrainObserver* observer : options.observers) {
          observer->on_fault(result.faults.events.back());
        }
        if (options.verbose) {
          FEKF_WARN << "step " << step_index << ": " << reason
                    << " — rolled back to last good state, batch skipped";
        }
      } else if (options.sentinels) {
        loss_ema = healthy_steps == 0
                       ? std::abs(sig.loss)
                       : 0.9 * loss_ema + 0.1 * std::abs(sig.loss);
        ++healthy_steps;
        if (healthy_steps % options.snapshot_every == 0) hooks.snapshot();
      }
      // Skipped batches still count as attempted steps, so fault triggers
      // keyed on the step index stay deterministic across reruns.
      ++result.steps;

      if (obs::metrics_enabled()) {
        auto& metrics = obs::MetricsRegistry::instance();
        metrics.counter("train.steps").inc();
        metrics.histogram("train.step_seconds").record(step_watch.seconds());
        if (!reason.empty()) metrics.counter("train.rollbacks").inc();
        metrics.gauge("train.loss_ema").set(loss_ema);
        metrics.gauge("train.loss").set(sig.loss);
        // Arena occupancy, so the telemetry sampler's time-series shows
        // whether steady-state steps stay allocation-free.
        const WorkspaceStats arena = Workspace::stats();
        metrics.gauge("arena.reserved_bytes")
            .set(static_cast<f64>(arena.reserved_bytes));
        metrics.gauge("arena.peak_scope_bytes")
            .set(static_cast<f64>(arena.peak_scope_bytes));
        metrics.gauge("arena.retired_slabs")
            .set(static_cast<f64>(arena.retired_slabs));
      }
      if (!options.observers.empty()) {
        StepEvent step_event;
        step_event.step = step_index;
        step_event.epoch = epoch;
        step_event.loss = sig.loss;
        step_event.grad_norm2 = sig.grad_norm2;
        step_event.seconds = step_watch.seconds();
        step_event.rolled_back = !reason.empty();
        step_event.fault_kind = reason;
        for (TrainObserver* observer : options.observers) {
          observer->on_step(step_event);
        }
      }

      if (options.checkpoint_every > 0 &&
          result.steps % options.checkpoint_every == 0) {
        Stopwatch ckpt_watch;
        TrainingCheckpoint ckpt;
        ckpt.epoch = epoch;
        ckpt.steps = result.steps;
        ckpt.layout = model.parameter_layout();
        ckpt.weights = weights;
        ckpt.sampler = sampler.state();
        ckpt.history = result.history;
        ckpt.faults = result.faults;
        hooks.capture(ckpt);
        save_checkpoint(ckpt, model, options.checkpoint_path);
        if (FaultInjector::instance().fire(faults::kCorruptCkpt,
                                           result.steps)) {
          FaultInjector::corrupt_file(options.checkpoint_path);
          result.faults.record(result.steps, "corrupt_ckpt",
                               "injected_bit_flip", options.checkpoint_path);
          for (TrainObserver* observer : options.observers) {
            observer->on_fault(result.faults.events.back());
          }
        }
        result.checkpoint_seconds += ckpt_watch.seconds();
        if (obs::metrics_enabled()) {
          auto& metrics = obs::MetricsRegistry::instance();
          metrics.counter("train.checkpoints").inc();
          metrics.histogram("checkpoint.write_seconds")
              .record(ckpt_watch.seconds());
        }
        if (!options.observers.empty()) {
          CheckpointEvent ckpt_event;
          ckpt_event.step = result.steps;
          ckpt_event.path = options.checkpoint_path;
          ckpt_event.seconds = ckpt_watch.seconds();
          for (TrainObserver* observer : options.observers) {
            observer->on_checkpoint(ckpt_event);
          }
        }
      }
      if (options.max_steps > 0 && result.steps >= options.max_steps) {
        hit_max_steps = true;
        break;
      }
    }
    if (hit_max_steps) break;
    EpochRecord record;
    record.epoch = epoch;
    record.cumulative_seconds = time_offset + watch.seconds();
    {
      obs::ScopedSpan eval_span("eval", "train");
      eval_span.arg("epoch", static_cast<f64>(epoch));
      record.train = evaluate(model, train_envs, options.eval_max_samples,
                              options.eval_forces);
      if (!test_envs.empty()) {
        record.test = evaluate(model, test_envs, options.eval_max_samples,
                               options.eval_forces);
      }
    }
    if (options.verbose) {
      FEKF_INFO << "epoch " << epoch << " train E-RMSE "
                << record.train.energy_rmse << " F-RMSE "
                << record.train.force_rmse << " (t=" << record.cumulative_seconds
                << "s)";
    }
    result.history.push_back(record);
    for (TrainObserver* observer : options.observers) {
      observer->on_eval(record);
    }
    if (!result.converged && options.target_total_rmse > 0.0 &&
        record.train.total() <= options.target_total_rmse) {
      result.converged = true;
      result.epochs_to_converge = epoch;
      result.seconds_to_converge = record.cumulative_seconds;
      break;
    }
  }
  result.total_seconds = watch.seconds();
  if (!result.history.empty()) {
    result.final_train = result.history.back().train;
    result.final_test = result.history.back().test;
  }
  return result;
}

f64 squared_norm(const std::vector<f64>& v) {
  f64 norm2 = 0.0;
  for (const f64 x : v) norm2 += x * x;
  return norm2;
}

}  // namespace

// ---------------------------------------------------------------------------
// AdamTrainer
// ---------------------------------------------------------------------------

AdamTrainer::AdamTrainer(deepmd::DeepmdModel& model,
                         optim::AdamConfig adam_config,
                         LossConfig loss_config, TrainOptions options)
    : model_(model),
      flat_(model.parameters()),
      adam_(flat_.size(), adam_config),
      loss_config_(loss_config),
      options_(options),
      lr0_(adam_config.lr * adam_config.lr_scale) {
  options_.validate();
  weights_.resize(static_cast<std::size_t>(flat_.size()));
  grads_.resize(static_cast<std::size_t>(flat_.size()));
  flat_.gather(weights_);
}

ag::Variable AdamTrainer::batch_loss(std::span<const EnvPtr> batch) {
  // DeePMD loss with lr-coupled prefactors:
  //   L = pe (dE/N)^2 + pf/(3N) sum |dF|^2,   p = limit + (start-limit) r,
  // where r = lr(t)/lr(0) decays from 1 to 0.
  const f64 r = adam_.current_lr() / lr0_;
  const f64 pe = loss_config_.pe_limit +
                 (loss_config_.pe_start - loss_config_.pe_limit) * r;
  const f64 pf = loss_config_.pf_limit +
                 (loss_config_.pf_start - loss_config_.pf_limit) * r;
  // Per-sample losses assemble in parallel (independent tape subgraphs) and
  // combine in batch order, so the loss graph is identical at any width.
  const i64 bs = static_cast<i64>(batch.size());
  std::vector<ag::Variable> samples(static_cast<std::size_t>(bs));
  parallel_for(0, bs, [&](i64 s) {
    const EnvPtr& env = batch[static_cast<std::size_t>(s)];
    auto pred = model_.predict(env, /*with_forces=*/true);
    const f64 natoms = static_cast<f64>(env->natoms);
    ag::Variable de = op::add_scalar(
        pred.energy, static_cast<f32>(-env->energy_label));
    ag::Variable loss_e = op::scale(
        op::square(op::scale(de, static_cast<f32>(1.0 / natoms))),
        static_cast<f32>(pe));
    ag::Variable df =
        op::sub(pred.forces, ag::Variable(env->force_label));
    ag::Variable loss_f = op::scale(op::sum_all(op::square(df)),
                                    static_cast<f32>(pf / (3.0 * natoms)));
    samples[static_cast<std::size_t>(s)] = op::add(loss_e, loss_f);
  });
  ag::Variable loss;
  for (i64 s = 0; s < bs; ++s) {
    const ag::Variable& sample = samples[static_cast<std::size_t>(s)];
    loss = loss.defined() ? op::add(loss, sample) : sample;
  }
  return op::scale(loss, 1.0f / static_cast<f32>(batch.size()));
}

TrainResult AdamTrainer::train(std::span<const EnvPtr> train_envs,
                               std::span<const EnvPtr> test_envs) {
  auto params = flat_.params();
  ResilienceHooks hooks;
  hooks.run_step = [&](std::span<const EnvPtr> batch,
                       i64 step_index) -> StepSignals {
    current_step_ = step_index;
    // The loss graph is declared after the scope, so it is destroyed
    // before the arena rewinds (the StepSignals return value is built
    // while `loss` is still alive).
    ArenaScope arena;
    ag::Variable loss;
    {
      obs::ScopedSpan span("forward", "train");
      loss = batch_loss(batch);
    }
    {
      obs::ScopedSpan span("gradient", "train");
      auto g = ag::grad(loss, params);
      flat_.gather_grads(g, grads_);
    }
    if (FaultInjector::instance().fire(faults::kNanGrad, step_index)) {
      grads_[0] = std::numeric_limits<f64>::quiet_NaN();
    }
    const f64 grad_norm2 = squared_norm(grads_);
    {
      obs::ScopedSpan span("adam_update", "train");
      adam_.step(grads_, weights_);
      flat_.scatter(weights_);
    }
    return {static_cast<f64>(loss.item()), grad_norm2};
  };
  hooks.snapshot = [&] {
    snap_weights_ = weights_;
    snap_adam_ = adam_.state();
  };
  hooks.rollback = [&] {
    weights_ = snap_weights_;
    adam_.set_state(snap_adam_);
    flat_.scatter(weights_);
  };
  hooks.covariance_health = [] { return 0.0; };
  hooks.capture = [&](TrainingCheckpoint& ckpt) {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kAdam;
    ckpt.optimizer.adam = adam_.state();
  };
  hooks.restore = [&](const TrainingCheckpoint& ckpt) {
    FEKF_CHECK(ckpt.optimizer.kind == OptimizerCheckpoint::Kind::kAdam,
               "checkpoint optimizer state is not Adam");
    adam_.set_state(ckpt.optimizer.adam);
  };
  return run_resilient_epochs(model_, train_envs, test_envs, options_, flat_,
                              weights_, hooks);
}

// ---------------------------------------------------------------------------
// KalmanTrainer
// ---------------------------------------------------------------------------

KalmanTrainer::KalmanTrainer(deepmd::DeepmdModel& model,
                             optim::KalmanConfig kalman_config,
                             TrainOptions options, EkfMode mode)
    : model_(model),
      flat_(model.parameters()),
      options_(options),
      mode_(mode) {
  options_.validate();
  auto blocks = optim::split_blocks(model.parameter_layout(),
                                    kalman_config.blocksize);
  if (mode_ == EkfMode::kFekf) {
    kalman_ = std::make_unique<optim::KalmanOptimizer>(std::move(blocks),
                                                       kalman_config);
  } else {
    naive_ = std::make_unique<optim::NaiveEkf>(std::move(blocks),
                                               kalman_config,
                                               options.batch_size);
  }
  weights_.resize(static_cast<std::size_t>(flat_.size()));
  grad_flat_.resize(static_cast<std::size_t>(flat_.size()));
  flat_.gather(weights_);
}

void KalmanTrainer::apply_fekf(const Measurement& measurement,
                               i64 batch_size,
                               std::optional<f64> step_norm_cap) {
  auto params = flat_.params();
  {
    obs::ScopedSpan span("gradient", "train");
    ScopedTimer timer(t_gradient_);
    auto g = ag::grad(measurement.m, params);
    flat_.gather_grads(g, grad_flat_);
  }
  if (FaultInjector::instance().fire(faults::kNanGrad, current_step_)) {
    grad_flat_[0] = std::numeric_limits<f64>::quiet_NaN();
  }
  {
    obs::ScopedSpan span("kf_update", "train");
    ScopedTimer timer(t_optimizer_);
    step_loss_ += std::abs(measurement.abe);
    step_grad_norm2_ += squared_norm(grad_flat_);
    const f64 factor = options_.qlr_factor >= 0.0
                           ? options_.qlr_factor
                           : std::sqrt(static_cast<f64>(batch_size));
    kalman_->update(grad_flat_, factor * measurement.abe, weights_,
                    step_norm_cap, measurement.abe);
    flat_.scatter(weights_);
  }
}

void KalmanTrainer::apply_naive_sample(i64 slot,
                                       const Measurement& measurement) {
  auto params = flat_.params();
  {
    obs::ScopedSpan span("gradient", "train");
    ScopedTimer timer(t_gradient_);
    auto g = ag::grad(measurement.m, params);
    flat_.gather_grads(g, grad_flat_);
  }
  if (FaultInjector::instance().fire(faults::kNanGrad, current_step_)) {
    grad_flat_[0] = std::numeric_limits<f64>::quiet_NaN();
  }
  {
    obs::ScopedSpan span("kf_update", "train");
    ScopedTimer timer(t_optimizer_);
    step_loss_ += std::abs(measurement.abe);
    step_grad_norm2_ += squared_norm(grad_flat_);
    naive_->accumulate(slot, grad_flat_, measurement.abe);
  }
}

void KalmanTrainer::energy_update(std::span<const EnvPtr> batch) {
  // Declared before the measurement so the whole forward/backward graph
  // dies before the scope rewinds the arena (workspace.hpp aliasing rules).
  ArenaScope arena;
  if (mode_ == EkfMode::kFekf) {
    Measurement m;
    {
      obs::ScopedSpan span("forward", "train");
      ScopedTimer timer(t_forward_);
      m = energy_measurement(model_, batch);
    }
    // Energy updates are well-posed scalar Newton steps — run uncapped so
    // large transient energy errors close in one or two updates.
    apply_fekf(m, static_cast<i64>(batch.size()), /*step_norm_cap=*/0.0);
    return;
  }
  for (std::size_t s = 0; s < batch.size(); ++s) {
    Measurement m;
    {
      obs::ScopedSpan span("forward", "train");
      ScopedTimer timer(t_forward_);
      m = energy_measurement(model_, batch.subspan(s, 1));
    }
    apply_naive_sample(static_cast<i64>(s), m);
  }
  obs::ScopedSpan span("kf_update", "train");
  ScopedTimer timer(t_optimizer_);
  naive_->commit(weights_);
  flat_.scatter(weights_);
}

void KalmanTrainer::force_update(std::span<const EnvPtr> batch,
                                 std::span<const i64> group) {
  ArenaScope arena;
  if (mode_ == EkfMode::kFekf) {
    Measurement m;
    {
      obs::ScopedSpan span("forward", "train");
      ScopedTimer timer(t_forward_);
      m = force_measurement(model_, batch, group, options_.force_prefactor);
    }
    apply_fekf(m, static_cast<i64>(batch.size()),
               /*step_norm_cap=*/std::nullopt);
    return;
  }
  for (std::size_t s = 0; s < batch.size(); ++s) {
    Measurement m;
    {
      obs::ScopedSpan span("forward", "train");
      ScopedTimer timer(t_forward_);
      m = force_measurement(model_, batch.subspan(s, 1), group,
                            options_.force_prefactor);
    }
    apply_naive_sample(static_cast<i64>(s), m);
  }
  obs::ScopedSpan span("kf_update", "train");
  ScopedTimer timer(t_optimizer_);
  naive_->commit(weights_);
  flat_.scatter(weights_);
}

void KalmanTrainer::snapshot_state() {
  snap_weights_ = weights_;
  if (mode_ == EkfMode::kFekf) {
    snap_kalman_ = kalman_->state();
  } else {
    snap_replicas_ = naive_->state();
  }
}

void KalmanTrainer::rollback_state() {
  weights_ = snap_weights_;
  if (mode_ == EkfMode::kFekf) {
    kalman_->set_state(snap_kalman_);
    kalman_->recondition();
  } else {
    naive_->set_state(snap_replicas_);
    naive_->recondition();
  }
  flat_.scatter(weights_);
}

void KalmanTrainer::capture(TrainingCheckpoint& ckpt) const {
  if (mode_ == EkfMode::kFekf) {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kKalman;
    ckpt.optimizer.kalman = kalman_->state();
  } else {
    ckpt.optimizer.kind = OptimizerCheckpoint::Kind::kNaiveEkf;
    ckpt.optimizer.replicas = naive_->state();
  }
  ckpt.has_group_rng = true;
  ckpt.group_rng = group_rng_.state();
}

void KalmanTrainer::restore(const TrainingCheckpoint& ckpt) {
  if (mode_ == EkfMode::kFekf) {
    FEKF_CHECK(ckpt.optimizer.kind == OptimizerCheckpoint::Kind::kKalman,
               "checkpoint optimizer state is not a shared-P Kalman filter");
    kalman_->set_state(ckpt.optimizer.kalman);
  } else {
    FEKF_CHECK(ckpt.optimizer.kind == OptimizerCheckpoint::Kind::kNaiveEkf,
               "checkpoint optimizer state is not a naive-EKF replica set");
    naive_->set_state(ckpt.optimizer.replicas);
  }
  FEKF_CHECK(ckpt.has_group_rng,
             "checkpoint is missing the force-group RNG stream");
  group_rng_.set_state(ckpt.group_rng);
}

TrainResult KalmanTrainer::train(std::span<const EnvPtr> train_envs,
                                 std::span<const EnvPtr> test_envs) {
  FEKF_CHECK(!train_envs.empty(), "empty training set");
  // Re-seed per train() call so repeated warm restarts on one trainer see
  // identical force-group sequences (restored from the checkpoint instead
  // when resuming).
  group_rng_.reseed(options_.seed ^ 0x9e3779b9ULL);
  const i64 natoms = train_envs.front()->natoms;
  ResilienceHooks hooks;
  hooks.run_step = [&](std::span<const EnvPtr> batch,
                       i64 step_index) -> StepSignals {
    current_step_ = step_index;
    step_loss_ = 0.0;
    step_grad_norm2_ = 0.0;
    energy_update(batch);
    auto groups = make_force_groups(natoms, options_.force_updates_per_step,
                                    group_rng_);
    for (const auto& group : groups) {
      force_update(batch, group);
    }
    return {step_loss_, step_grad_norm2_};
  };
  hooks.snapshot = [&] { snapshot_state(); };
  hooks.rollback = [&] { rollback_state(); };
  hooks.covariance_health = [&] {
    return mode_ == EkfMode::kFekf ? kalman_->last_max_diag()
                                   : naive_->last_max_diag();
  };
  hooks.capture = [&](TrainingCheckpoint& ckpt) { capture(ckpt); };
  hooks.restore = [&](const TrainingCheckpoint& ckpt) { restore(ckpt); };
  TrainResult result = run_resilient_epochs(model_, train_envs, test_envs,
                                            options_, flat_, weights_, hooks);
  result.forward_seconds = t_forward_.total_seconds();
  result.gradient_seconds = t_gradient_.total_seconds();
  result.optimizer_seconds = t_optimizer_.total_seconds();
  return result;
}

}  // namespace fekf::train
