// Training loops.
//
//  * AdamTrainer  — the paper's baseline: DeePMD loss (energy + force terms
//    with the standard prefactor schedule), any mini-batch size, lr scaled
//    by sqrt(bs) as in Table 1.
//  * KalmanTrainer — the EKF family. One step = 1 energy update + 4 force
//    updates (paper §4). Modes:
//      EkfMode::kFekf  — funnel dataflow: gradients/errors reduced across
//                        the batch FIRST, one shared P, sqrt(bs) step
//                        (Algorithm 1). batch_size 1 reproduces RLEKF.
//      EkfMode::kNaive — fusiform dataflow: full per-sample Kalman updates
//                        against per-sample P replicas, increments averaged.
//
// Iteration time is split into the three Figure 7(c) phases: forward
// (prediction + measurement assembly), gradient (backward pass), and
// optimizer (KF algebra / Adam update).
//
// Both trainers share one resilient step loop (DESIGN.md §10): every
// optimizer step is guarded by divergence sentinels (non-finite loss /
// gradient / weights / covariance, loss explosion) and by a try/catch
// around the whole step, so a worker exception or a numerically diverging
// update rolls the trainer back to the last good in-memory snapshot,
// reconditions the covariance, records a FaultLog event, and skips the
// batch — training continues. The loop also writes full-state checkpoints
// (train/checkpoint.hpp) every `checkpoint_every` steps and can resume
// from one bit-exactly via `resume_from`.
#pragma once

#include "core/timer.hpp"
#include "optim/adam.hpp"
#include "optim/flat_params.hpp"
#include "optim/kalman.hpp"
#include "optim/naive_ekf.hpp"
#include "train/checkpoint.hpp"
#include "train/measurement.hpp"

namespace fekf::train {

class TrainObserver;

struct TrainOptions {
  i64 batch_size = 1;
  i64 max_epochs = 20;
  /// Converged when train-subset (energy + force) RMSE <= target; < 0
  /// disables the check and runs max_epochs.
  f64 target_total_rmse = -1.0;
  i64 force_updates_per_step = 4;
  /// EKF force-measurement prefactor. The RLEKF paper uses 2 at its scale
  /// (tens of thousands of update steps); at this repo's bench scale
  /// (hundreds of steps) a hotter prefactor is needed for the force fit to
  /// move — 15 converges on all eight catalog systems (see DESIGN.md §1 on
  /// scale substitutions).
  f64 force_prefactor = 15.0;
  /// Evaluation subset size; < 0 evaluates the whole split.
  i64 eval_max_samples = 32;
  bool eval_forces = true;
  /// Quasi-learning-rate factor multiplying ABE in the weight step
  /// (Eq. 2 / Figure 4). < 0 selects the paper's sqrt(batch_size).
  f64 qlr_factor = -1.0;
  u64 seed = 7;
  bool verbose = false;

  // --- resilience (DESIGN.md §10) ---
  /// Divergence sentinels: per-step health checks with automatic rollback
  /// to the last good snapshot. Disabled, a bad step propagates (worker
  /// exceptions rethrow, non-finite values poison the run).
  bool sentinels = true;
  /// Healthy steps between in-memory snapshots (1 = snapshot every step;
  /// larger trades rollback distance for snapshot overhead).
  i64 snapshot_every = 1;
  /// A step whose loss exceeds this factor times the running loss EMA is
  /// treated as diverging and rolled back.
  f64 sentinel_explode_factor = 1e6;
  /// Healthy steps observed before the explosion sentinel arms.
  i64 sentinel_warmup_steps = 8;
  /// Write a full training checkpoint every N optimizer steps (0 = off;
  /// requires checkpoint_path).
  i64 checkpoint_every = 0;
  std::string checkpoint_path;
  /// Resume from this checkpoint file: restores weights, optimizer state,
  /// sampler/RNG streams, history, and counters. A resumed run reproduces
  /// the uninterrupted trajectory bit-for-bit.
  std::string resume_from;
  /// Stop after this many optimizer steps in total (<= 0 = no limit).
  /// Cuts a run at a checkpoint boundary (kill/resume tests, staged
  /// online-learning rounds).
  i64 max_steps = -1;

  // --- observability (DESIGN.md §11) ---
  /// Non-owning observer hooks (train/observer.hpp), invoked synchronously
  /// by the resilient step loop: on_step after every optimizer step,
  /// on_eval after each epoch evaluation, on_checkpoint after a checkpoint
  /// write, on_fault on every recovery event. Must outlive train().
  std::vector<TrainObserver*> observers;

  /// Reject non-positive sizes / non-finite rates with a clear Error.
  /// Called by both trainers before the first step.
  void validate() const;
};

struct TrainResult {
  std::vector<EpochRecord> history;
  bool converged = false;
  i64 epochs_to_converge = -1;
  f64 seconds_to_converge = -1.0;
  f64 total_seconds = 0.0;
  i64 steps = 0;
  f64 forward_seconds = 0.0;
  f64 gradient_seconds = 0.0;
  f64 optimizer_seconds = 0.0;
  Metrics final_train;
  Metrics final_test;
  /// Every sentinel trip / injected fault the run recovered from.
  FaultLog faults;
  f64 recovery_seconds = 0.0;    ///< spent restoring snapshots
  f64 checkpoint_seconds = 0.0;  ///< spent writing checkpoints
};

class AdamTrainer {
 public:
  struct LossConfig {
    // DeePMD prefactor schedule, interpolated by lr(t)/lr(0).
    f64 pe_start = 0.02, pe_limit = 1.0;
    f64 pf_start = 1000.0, pf_limit = 1.0;
  };

  AdamTrainer(deepmd::DeepmdModel& model, optim::AdamConfig adam_config,
              LossConfig loss_config, TrainOptions options);

  TrainResult train(std::span<const EnvPtr> train_envs,
                    std::span<const EnvPtr> test_envs);

 private:
  ag::Variable batch_loss(std::span<const EnvPtr> batch);

  deepmd::DeepmdModel& model_;
  optim::FlatParams flat_;
  optim::Adam adam_;
  LossConfig loss_config_;
  TrainOptions options_;
  f64 lr0_;
  std::vector<f64> weights_;
  std::vector<f64> grads_;
  i64 current_step_ = 0;
  // Last good state for sentinel rollback.
  std::vector<f64> snap_weights_;
  optim::AdamState snap_adam_;
};

enum class EkfMode { kFekf, kNaive };

class KalmanTrainer {
 public:
  KalmanTrainer(deepmd::DeepmdModel& model, optim::KalmanConfig kalman_config,
                TrainOptions options, EkfMode mode = EkfMode::kFekf);

  TrainResult train(std::span<const EnvPtr> train_envs,
                    std::span<const EnvPtr> test_envs);

  /// Single updates, exposed for the kernel-count / iteration-time
  /// instrumentation benches (Figure 7b/7c).
  void energy_update(std::span<const EnvPtr> batch);
  void force_update(std::span<const EnvPtr> batch,
                    std::span<const i64> group);

  const optim::KalmanOptimizer* kalman() const { return kalman_.get(); }
  const optim::NaiveEkf* naive() const { return naive_.get(); }

  AccumTimer& forward_timer() { return t_forward_; }
  AccumTimer& gradient_timer() { return t_gradient_; }
  AccumTimer& optimizer_timer() { return t_optimizer_; }

 private:
  void apply_fekf(const Measurement& measurement, i64 batch_size,
                  std::optional<f64> step_norm_cap);
  void apply_naive_sample(i64 slot, const Measurement& measurement);
  void snapshot_state();
  void rollback_state();
  void capture(TrainingCheckpoint& ckpt) const;
  void restore(const TrainingCheckpoint& ckpt);

  deepmd::DeepmdModel& model_;
  optim::FlatParams flat_;
  std::unique_ptr<optim::KalmanOptimizer> kalman_;
  std::unique_ptr<optim::NaiveEkf> naive_;
  TrainOptions options_;
  EkfMode mode_;
  std::vector<f64> weights_;
  std::vector<f64> grad_flat_;
  Rng group_rng_;
  i64 current_step_ = 0;
  // Per-step sentinel signals, accumulated across the energy + force
  // updates of one step.
  f64 step_loss_ = 0.0;
  f64 step_grad_norm2_ = 0.0;
  // Last good state for sentinel rollback.
  std::vector<f64> snap_weights_;
  optim::KalmanState snap_kalman_;
  std::vector<optim::KalmanState> snap_replicas_;
  AccumTimer t_forward_, t_gradient_, t_optimizer_;
};

}  // namespace fekf::train
