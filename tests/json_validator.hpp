// Minimal recursive-descent JSON validator shared by the test binaries —
// enough to certify the observability exports (Chrome traces, metrics
// snapshots, JSONL telemetry, flight dumps) are well-formed without
// taking a JSON dependency. Not named test_*.cpp on purpose: the tests/
// CMake glob must not build it as a standalone binary.
#pragma once

#include <cctype>
#include <string>

namespace fekf::testutil {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text)
      : p_(text.c_str()), end_(text.c_str() + text.size()) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }
  bool literal(const char* s) {
    const char* q = p_;
    while (*s != '\0') {
      if (q == end_ || *q != *s) return false;
      ++q, ++s;
    }
    p_ = q;
    return true;
  }
  bool string() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (static_cast<unsigned char>(*p_) < 0x20) return false;
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        const char c = *p_;
        if (c == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
              return false;
          }
        } else if (c != '"' && c != '\\' && c != '/' && c != 'b' &&
                   c != 'f' && c != 'n' && c != 'r' && c != 't') {
          return false;
        }
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* q = p_;
    if (q < end_ && *q == '-') ++q;
    const char* digits = q;
    while (q < end_ && std::isdigit(static_cast<unsigned char>(*q))) ++q;
    if (q == digits) return false;
    if (q < end_ && *q == '.') {
      ++q;
      const char* frac = q;
      while (q < end_ && std::isdigit(static_cast<unsigned char>(*q))) ++q;
      if (q == frac) return false;
    }
    if (q < end_ && (*q == 'e' || *q == 'E')) {
      ++q;
      if (q < end_ && (*q == '+' || *q == '-')) ++q;
      const char* exp = q;
      while (q < end_ && std::isdigit(static_cast<unsigned char>(*q))) ++q;
      if (q == exp) return false;
    }
    p_ = q;
    return true;
  }
  bool value() {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (p_ < end_ && *p_ == '}') return ++p_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      if (!value()) return false;
      skip_ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ == end_ || *p_ != '}') return false;
    ++p_;
    return true;
  }
  bool array() {
    ++p_;  // '['
    skip_ws();
    if (p_ < end_ && *p_ == ']') return ++p_, true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (p_ < end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      break;
    }
    if (p_ == end_ || *p_ != ']') return false;
    ++p_;
    return true;
  }

  const char* p_;
  const char* end_;
};

}  // namespace fekf::testutil
