// Autograd engine tests: analytic vs finite-difference gradients for every
// op, double-backward correctness, fused-vs-composed equivalence, and tape
// lifetime behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "core/rng.hpp"
#include "tensor/kernel_counter.hpp"

namespace fekf::ag {
namespace {

namespace op = ops;

// Central finite difference of scalar_fn w.r.t. entry (r, c) of x.
f64 numeric_grad(const std::function<f64(const Tensor&)>& scalar_fn, Tensor x,
                 i64 r, i64 c, f64 eps = 1e-3) {
  Tensor xp = x.clone();
  Tensor xm = x.clone();
  xp.at(r, c) += static_cast<f32>(eps);
  xm.at(r, c) -= static_cast<f32>(eps);
  return (scalar_fn(xp) - scalar_fn(xm)) / (2.0 * eps);
}

// Checks d(sum(f(x)))/dx against finite differences on every entry.
void check_grad(const std::function<Variable(const Variable&)>& f,
                const Tensor& x0, f64 tol = 5e-2) {
  Variable x(x0.clone(), /*requires_grad=*/true);
  Variable y = op::sum_all(f(x));
  auto grads = grad(y, std::vector<Variable>{x});
  ASSERT_EQ(grads.size(), 1u);
  const Tensor& gx = grads[0].value();
  auto scalar_fn = [&](const Tensor& xt) -> f64 {
    NoGradGuard guard;
    Variable xv(xt.clone(), true);  // requires_grad irrelevant under guard
    return op::sum_all(f(xv)).item();
  };
  for (i64 r = 0; r < x0.rows(); ++r) {
    for (i64 c = 0; c < x0.cols(); ++c) {
      const f64 expected = numeric_grad(scalar_fn, x0, r, c);
      EXPECT_NEAR(gx.at(r, c), expected, tol * (1.0 + std::abs(expected)))
          << "entry (" << r << ", " << c << ")";
    }
  }
}

Tensor random_tensor(i64 r, i64 c, u64 seed, f64 scale = 1.0) {
  Rng rng(seed);
  return Tensor::randn(r, c, rng, scale);
}

TEST(Autograd, AddGrad) {
  Tensor b = random_tensor(3, 4, 2);
  check_grad([&](const Variable& x) { return op::add(x, Variable(b)); },
             random_tensor(3, 4, 1));
}

TEST(Autograd, SubGrad) {
  Tensor b = random_tensor(3, 4, 3);
  check_grad([&](const Variable& x) { return op::sub(Variable(b), x); },
             random_tensor(3, 4, 4));
}

TEST(Autograd, MulGrad) {
  Tensor b = random_tensor(3, 4, 5);
  check_grad([&](const Variable& x) { return op::mul(x, Variable(b)); },
             random_tensor(3, 4, 6));
}

TEST(Autograd, SquareGrad) {
  check_grad([](const Variable& x) { return op::square(x); },
             random_tensor(2, 5, 7));
}

TEST(Autograd, TanhGrad) {
  check_grad([](const Variable& x) { return op::tanh(x); },
             random_tensor(3, 3, 8));
}

TEST(Autograd, TanhFusedGrad) {
  check_grad([](const Variable& x) { return op::tanh_fused(x); },
             random_tensor(3, 3, 8));
}

TEST(Autograd, TanhFusedMatchesComposed) {
  Tensor x0 = random_tensor(4, 4, 9);
  Variable x1(x0.clone(), true);
  Variable x2(x0.clone(), true);
  Variable y1 = op::sum_all(op::square(op::tanh(x1)));
  Variable y2 = op::sum_all(op::square(op::tanh_fused(x2)));
  EXPECT_FLOAT_EQ(y1.item(), y2.item());
  auto g1 = grad(y1, std::vector<Variable>{x1});
  auto g2 = grad(y2, std::vector<Variable>{x2});
  for (i64 i = 0; i < x0.numel(); ++i) {
    EXPECT_NEAR(g1[0].value().data()[i], g2[0].value().data()[i], 1e-6f);
  }
}

TEST(Autograd, MatmulGrad) {
  Tensor b = random_tensor(4, 2, 11);
  check_grad([&](const Variable& x) { return op::matmul(x, Variable(b)); },
             random_tensor(3, 4, 10));
}

TEST(Autograd, MatmulGradRhs) {
  Tensor a = random_tensor(3, 4, 12);
  check_grad([&](const Variable& x) { return op::matmul(Variable(a), x); },
             random_tensor(4, 2, 13));
}

TEST(Autograd, MatmulNtGrad) {
  Tensor b = random_tensor(5, 4, 14);
  check_grad([&](const Variable& x) { return op::matmul_nt(x, Variable(b)); },
             random_tensor(3, 4, 15));
}

TEST(Autograd, MatmulTnGrad) {
  Tensor b = random_tensor(4, 5, 16);
  check_grad([&](const Variable& x) { return op::matmul_tn(x, Variable(b)); },
             random_tensor(4, 3, 17));
}

TEST(Autograd, TransposeGrad) {
  Tensor b = random_tensor(4, 3, 18);
  check_grad(
      [&](const Variable& x) {
        return op::mul(op::transpose(x), Variable(b));
      },
      random_tensor(3, 4, 19));
}

TEST(Autograd, LinearMatchesFused) {
  Tensor x0 = random_tensor(6, 3, 20);
  Tensor w0 = random_tensor(3, 4, 21);
  Tensor b0 = random_tensor(1, 4, 22);
  Variable x1(x0.clone(), true), w1(w0.clone(), true), bb1(b0.clone(), true);
  Variable x2(x0.clone(), true), w2(w0.clone(), true), bb2(b0.clone(), true);
  Variable y1 = op::sum_all(op::tanh(op::linear(x1, w1, bb1)));
  Variable y2 = op::sum_all(op::tanh(op::linear_fused(x2, w2, bb2)));
  EXPECT_NEAR(y1.item(), y2.item(), 1e-5f);
  auto g1 = grad(y1, std::vector<Variable>{x1, w1, bb1});
  auto g2 = grad(y2, std::vector<Variable>{x2, w2, bb2});
  for (std::size_t v = 0; v < g1.size(); ++v) {
    for (i64 i = 0; i < g1[v].numel(); ++i) {
      EXPECT_NEAR(g1[v].value().data()[i], g2[v].value().data()[i], 1e-5f);
    }
  }
}

TEST(Autograd, SliceAndPadGrad) {
  check_grad(
      [](const Variable& x) {
        return op::square(op::slice_cols(x, 1, 3));
      },
      random_tensor(3, 5, 23));
  check_grad(
      [](const Variable& x) { return op::square(op::pad_cols(x, 6, 2)); },
      random_tensor(3, 2, 24));
}

TEST(Autograd, RowSliceConcatGrad) {
  Tensor b = random_tensor(2, 4, 25);
  check_grad(
      [&](const Variable& x) {
        Variable top = op::slice_rows(x, 0, 2);
        Variable cat = op::concat_rows(top, Variable(b));
        return op::square(cat);
      },
      random_tensor(5, 4, 26));
}

TEST(Autograd, ReductionGrads) {
  check_grad([](const Variable& x) { return op::sum_rows(op::square(x)); },
             random_tensor(4, 3, 27));
  check_grad([](const Variable& x) { return op::sum_cols(op::square(x)); },
             random_tensor(4, 3, 28));
  check_grad([](const Variable& x) { return op::mean_all(op::square(x)); },
             random_tensor(4, 3, 29));
}

TEST(Autograd, BroadcastGrads) {
  check_grad(
      [](const Variable& x) { return op::square(op::broadcast_rows(x, 5)); },
      random_tensor(1, 4, 30));
  check_grad(
      [](const Variable& x) { return op::square(op::broadcast_cols(x, 5)); },
      random_tensor(4, 1, 31));
}

TEST(Autograd, ReshapeGrad) {
  check_grad(
      [](const Variable& x) { return op::square(op::reshape(x, 2, 6)); },
      random_tensor(3, 4, 32));
}

// Double backward: d/dx of (dy/dx) for y = sum(tanh(x)^2).
// Analytic: dy/dx = 2 t (1-t^2); d2y/dx2 = 2(1-t^2)(1-3t^2), t = tanh(x).
TEST(Autograd, DoubleBackwardTanh) {
  for (const bool fused : {false, true}) {
    Tensor x0 = random_tensor(3, 3, 33);
    Variable x(x0.clone(), true);
    Variable t = fused ? op::tanh_fused(x) : op::tanh(x);
    Variable y = op::sum_all(op::square(t));
    auto g = grad(y, std::vector<Variable>{x}, {}, /*create_graph=*/true);
    Variable gsum = op::sum_all(g[0]);
    auto gg = grad(gsum, std::vector<Variable>{x});
    for (i64 i = 0; i < x0.numel(); ++i) {
      const f64 tv = std::tanh(static_cast<f64>(x0.data()[i]));
      const f64 expected = 2.0 * (1 - tv * tv) * (1 - 3 * tv * tv);
      EXPECT_NEAR(gg[0].value().data()[i], expected, 1e-4)
          << (fused ? "fused" : "composed") << " i=" << i;
    }
  }
}

// Double backward through matmul: y = sum((x w)^2); g = 2 x w w^T;
// sum(g) differentiated w.r.t. w again.
TEST(Autograd, DoubleBackwardMatmul) {
  Tensor x0 = random_tensor(3, 2, 34);
  Tensor w0 = random_tensor(2, 2, 35);
  Variable x(x0.clone(), false);
  Variable w(w0.clone(), true);
  Variable y = op::sum_all(op::square(op::matmul(x, w)));
  auto g = grad(y, std::vector<Variable>{w}, {}, /*create_graph=*/true);
  Variable gsum = op::sum_all(g[0]);
  auto gg = grad(gsum, std::vector<Variable>{w});
  // Finite difference of gsum(w).
  auto gsum_fn = [&](const Tensor& wt) -> f64 {
    Variable wv(wt.clone(), true);
    Variable yy = op::sum_all(op::square(op::matmul(Variable(x0), wv)));
    auto gv = grad(yy, std::vector<Variable>{wv});
    f64 acc = 0.0;
    for (i64 i = 0; i < gv[0].numel(); ++i) acc += gv[0].value().data()[i];
    return acc;
  };
  for (i64 r = 0; r < 2; ++r) {
    for (i64 c = 0; c < 2; ++c) {
      const f64 expected = numeric_grad(gsum_fn, w0, r, c);
      EXPECT_NEAR(gg[0].value().data()[r * 2 + c], expected,
                  5e-2 * (1.0 + std::abs(expected)));
    }
  }
}

TEST(Autograd, GradOfUnusedInputIsZero) {
  Variable x(random_tensor(2, 2, 36), true);
  Variable unused(random_tensor(3, 3, 37), true);
  Variable y = op::sum_all(op::square(x));
  auto g = grad(y, std::vector<Variable>{x, unused});
  for (i64 i = 0; i < unused.numel(); ++i) {
    EXPECT_EQ(g[1].value().data()[i], 0.0f);
  }
}

TEST(Autograd, SharedSubexpressionAccumulates) {
  // y = sum(x*x + x*x) should give 4x, exercising gradient accumulation
  // when one variable feeds two consumers.
  Tensor x0 = random_tensor(2, 3, 38);
  Variable x(x0.clone(), true);
  Variable sq = op::square(x);
  Variable y = op::sum_all(op::add(sq, sq));
  auto g = grad(y, std::vector<Variable>{x});
  for (i64 i = 0; i < x0.numel(); ++i) {
    EXPECT_NEAR(g[0].value().data()[i], 4.0f * x0.data()[i], 1e-5f);
  }
}

TEST(Autograd, NoGradGuardDisablesTape) {
  Variable x(random_tensor(2, 2, 39), true);
  NoGradGuard guard;
  Variable y = op::square(x);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.node(), nullptr);
}

TEST(Autograd, ConstantsProduceNoNode) {
  Variable a(random_tensor(2, 2, 40), false);
  Variable b(random_tensor(2, 2, 41), false);
  Variable y = op::mul(a, b);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.node(), nullptr);
}

TEST(Autograd, FusedLinearLaunchesFewerKernels) {
  Variable x(random_tensor(8, 4, 42), true);
  Variable w(random_tensor(4, 4, 43), true);
  Variable b(random_tensor(1, 4, 44), true);
  i64 composed = 0, fused = 0;
  {
    KernelCountScope scope;
    (void)op::linear(x, w, b);
    composed = scope.count();
  }
  {
    KernelCountScope scope;
    (void)op::linear_fused(x, w, b);
    fused = scope.count();
  }
  EXPECT_EQ(fused, 1);
  EXPECT_GT(composed, fused);
}

TEST(Autograd, GradRootSeed) {
  // grad with an explicit non-unit seed scales linearly.
  Variable x(random_tensor(2, 2, 45), true);
  Variable y = op::sum_all(op::square(x));
  Variable seed(Tensor::scalar(3.0f));
  auto g1 = grad(y, std::vector<Variable>{x});
  auto g3 = grad(y, std::vector<Variable>{x}, seed);
  for (i64 i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(g3[0].value().data()[i], 3.0f * g1[0].value().data()[i],
                1e-5f);
  }
}

}  // namespace
}  // namespace fekf::ag
