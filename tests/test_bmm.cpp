// Fused batched-block matmul ops: value checks against per-block reference
// matmuls, gradient checks against finite differences, double-backward
// (the descriptor derivative chain of Fig. 6 relies on it), and launch
// accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.hpp"
#include "core/rng.hpp"
#include "deepmd/bmm.hpp"
#include "tensor/kernels.hpp"
#include "tensor/kernel_counter.hpp"

namespace fekf::deepmd {
namespace {

namespace op = ag::ops;

Tensor rand_t(i64 r, i64 c, u64 seed) {
  Rng rng(seed);
  return Tensor::randn(r, c, rng);
}

// Reference: per-block result built from the single-matrix primitives.
Tensor ref_bmm_tn(const Tensor& x, const Tensor& y, i64 q) {
  const i64 nb = x.rows() / q;
  Tensor out;
  for (i64 b = 0; b < nb; ++b) {
    Tensor xb = fekf::kernels::slice_rows(x, b * q, (b + 1) * q);
    Tensor yb = fekf::kernels::slice_rows(y, b * q, (b + 1) * q);
    Tensor ob = fekf::kernels::matmul_tn(xb, yb);
    out = b == 0 ? ob : fekf::kernels::concat_rows(out, ob);
  }
  return out;
}

TEST(Bmm, ValuesMatchPerBlockReference) {
  Tensor x = rand_t(3 * 5, 4, 1);  // 3 blocks of 5x4
  Tensor y = rand_t(3 * 5, 2, 2);
  Tensor fused = bmm_tn(ag::Variable(x), ag::Variable(y), 5).value();
  Tensor ref = ref_bmm_tn(x, y, 5);
  ASSERT_TRUE(fused.same_shape(ref));
  for (i64 i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(fused.data()[i], ref.data()[i], 1e-5);
  }
}

TEST(Bmm, NnAndNtConsistency) {
  // bmm_nn(X, Y) == bmm_nt(X, Y^T-per-block): check via transposed blocks.
  Tensor x = rand_t(2 * 3, 4, 3);  // blocks 3x4
  Tensor y = rand_t(2 * 4, 5, 4);  // blocks 4x5
  Tensor nn = bmm_nn(ag::Variable(x), ag::Variable(y), 3).value();
  // Build Y with transposed blocks: (2*5) x 4.
  Tensor yt(2 * 5, 4);
  for (i64 b = 0; b < 2; ++b) {
    for (i64 i = 0; i < 4; ++i) {
      for (i64 j = 0; j < 5; ++j) {
        yt.at(b * 5 + j, i) = y.at(b * 4 + i, j);
      }
    }
  }
  Tensor nt = bmm_nt(ag::Variable(x), ag::Variable(yt), 3, 5).value();
  for (i64 i = 0; i < nn.numel(); ++i) {
    EXPECT_NEAR(nn.data()[i], nt.data()[i], 1e-5);
  }
}

template <typename Fn>
void check_grad_wrt(const Tensor& x0, Fn&& scalar_of, f64 tol = 5e-2) {
  ag::Variable x(x0.clone(), true);
  ag::Variable y = scalar_of(x);
  auto g = ag::grad(y, std::vector<ag::Variable>{x});
  Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    const i64 idx =
        static_cast<i64>(rng.uniform_index(static_cast<u64>(x0.numel())));
    const f64 eps = 1e-3;
    Tensor xp = x0.clone(), xm = x0.clone();
    xp.data()[idx] += static_cast<f32>(eps);
    xm.data()[idx] -= static_cast<f32>(eps);
    ag::NoGradGuard guard;
    const f64 numeric = (scalar_of(ag::Variable(xp, true)).item() -
                         scalar_of(ag::Variable(xm, true)).item()) /
                        (2 * eps);
    EXPECT_NEAR(g[0].value().data()[idx], numeric,
                tol * (1.0 + std::abs(numeric)));
  }
}

TEST(Bmm, GradientsTn) {
  Tensor y = rand_t(2 * 4, 3, 11);
  check_grad_wrt(rand_t(2 * 4, 5, 10), [&](const ag::Variable& x) {
    return op::sum_all(op::square(bmm_tn(x, ag::Variable(y), 4)));
  });
}

TEST(Bmm, GradientsNn) {
  Tensor y = rand_t(2 * 5, 3, 13);
  check_grad_wrt(rand_t(2 * 4, 5, 12), [&](const ag::Variable& x) {
    return op::sum_all(op::square(bmm_nn(x, ag::Variable(y), 4)));
  });
}

TEST(Bmm, GradientsNt) {
  Tensor y = rand_t(2 * 6, 5, 15);
  check_grad_wrt(rand_t(2 * 4, 5, 14), [&](const ag::Variable& x) {
    return op::sum_all(op::square(bmm_nt(x, ag::Variable(y), 4, 6)));
  });
}

TEST(Bmm, GradientsBlockSlice) {
  check_grad_wrt(rand_t(3 * 6, 4, 16), [&](const ag::Variable& x) {
    return op::sum_all(op::square(block_slice_rows(x, 6, 1, 4)));
  });
  check_grad_wrt(rand_t(3 * 2, 4, 17), [&](const ag::Variable& x) {
    return op::sum_all(op::square(block_pad_rows(x, 6, 2, 3)));
  });
}

TEST(Bmm, DoubleBackwardThroughDescriptorShape) {
  // The descriptor pattern D = A A_<^T with A = G^T R per block, then
  // grad-of-grad w.r.t. G — the exact chain the force loss differentiates.
  const i64 nb = 2, sel = 5, m = 4, axis = 2;
  Tensor g0 = rand_t(nb * sel, m, 18);
  Tensor r0 = rand_t(nb * sel, 4, 19);
  ag::Variable g_var(g0.clone(), true);
  ag::Variable r_var(r0.clone(), true);
  ag::Variable a = bmm_tn(g_var, r_var, sel);
  ag::Variable a_axis = block_slice_rows(a, m, 0, axis);
  ag::Variable d = bmm_nt(a, a_axis, m, axis);
  ag::Variable e = op::sum_all(op::square(d));
  auto grad_r = ag::grad(e, std::vector<ag::Variable>{r_var}, {},
                         /*create_graph=*/true);
  ag::Variable m_sum = op::sum_all(grad_r[0]);
  auto gg = ag::grad(m_sum, std::vector<ag::Variable>{g_var});

  // Finite difference of sum(dE/dR) w.r.t. an entry of G.
  auto msum_of = [&](const Tensor& gt) -> f64 {
    ag::Variable gv(gt.clone(), true);
    ag::Variable rv(r0.clone(), true);
    ag::Variable a2 = bmm_tn(gv, rv, sel);
    ag::Variable d2 = bmm_nt(a2, block_slice_rows(a2, m, 0, axis), m, axis);
    ag::Variable e2 = op::sum_all(op::square(d2));
    auto gr = ag::grad(e2, std::vector<ag::Variable>{rv});
    f64 acc = 0.0;
    for (i64 i = 0; i < gr[0].numel(); ++i) acc += gr[0].value().data()[i];
    return acc;
  };
  Rng rng(20);
  for (int trial = 0; trial < 3; ++trial) {
    const i64 idx =
        static_cast<i64>(rng.uniform_index(static_cast<u64>(g0.numel())));
    const f64 eps = 2e-3;
    Tensor gp = g0.clone(), gm = g0.clone();
    gp.data()[idx] += static_cast<f32>(eps);
    gm.data()[idx] -= static_cast<f32>(eps);
    const f64 numeric = (msum_of(gp) - msum_of(gm)) / (2 * eps);
    EXPECT_NEAR(gg[0].value().data()[idx], numeric,
                8e-2 * (1.0 + std::abs(numeric)));
  }
}

TEST(Bmm, SingleLaunchPerOp) {
  ag::Variable x(rand_t(4 * 3, 2, 21));
  ag::Variable y(rand_t(4 * 3, 5, 22));
  KernelCountScope scope;
  (void)bmm_tn(x, y, 3);
  EXPECT_EQ(scope.count(), 1);
}

TEST(Bmm, RejectsBadBlockHeights) {
  ag::Variable x(rand_t(10, 2, 23));
  ag::Variable y(rand_t(10, 3, 24));
  EXPECT_THROW(bmm_tn(x, y, 3), Error);  // 10 % 3 != 0
  EXPECT_THROW(block_slice_rows(x, 5, 2, 7), Error);
}

}  // namespace
}  // namespace fekf::deepmd
