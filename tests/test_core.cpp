// Core utility tests: RNG statistics and determinism, CLI parsing, table
// rendering, timers, and error checking.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <type_traits>

#include "core/cli.hpp"
#include "core/common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"

namespace fekf {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  f64 sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const f64 u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexIsUnbiased) {
  Rng rng(6);
  const u64 buckets = 7;
  std::vector<int> counts(buckets, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_index(buckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<f64>(c), n / 7.0, 0.08 * n / 7.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(7);
  f64 sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const f64 g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(8);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  Cli cli("prog", "test");
  cli.flag("alpha", "1.5", "a").flag("name", "x", "n").flag("on", "false", "b");
  const char* argv[] = {"prog", "--alpha", "2.5", "--on"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.5);
  EXPECT_EQ(cli.get("name"), "x");
  EXPECT_TRUE(cli.get_bool("on"));
  EXPECT_TRUE(cli.provided("alpha"));
  EXPECT_FALSE(cli.provided("name"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli("prog", "test");
  cli.flag("k", "0", "int");
  const char* argv[] = {"prog", "--k=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("k"), 42);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("prog", "test");
  cli.flag("k", "0", "int");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, BadNumberThrows) {
  Cli cli("prog", "test");
  cli.flag("k", "0", "int");
  const char* argv[] = {"prog", "--k", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("k"), Error);
}

TEST(Table, RendersAligned) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(Table::num(1.23456, 3), "1.235");
  EXPECT_EQ(Table::num(0.0), "0.0000");
  // Very large / tiny values switch to scientific notation.
  EXPECT_NE(Table::num(1.5e8).find("e"), std::string::npos);
}

TEST(Timer, MeasuresElapsed) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.milliseconds(), 15.0);
}

TEST(Timer, AccumulatesWindows) {
  AccumTimer t;
  for (int i = 0; i < 3; ++i) {
    ScopedTimer scope(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(t.count(), 3);
  EXPECT_GE(t.total_seconds(), 0.010);
  EXPECT_NEAR(t.mean_seconds(), t.total_seconds() / 3.0, 1e-12);
}

TEST(Timer, StopWithoutStartIsNoop) {
  AccumTimer t;
  t.stop();  // never started: must not count or accumulate
  EXPECT_EQ(t.count(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);

  t.start();
  t.stop();
  t.stop();  // second stop on a closed window: still one sample
  EXPECT_EQ(t.count(), 1);
}

TEST(Timer, ResetClearsOpenWindow) {
  AccumTimer t;
  t.start();
  t.reset();
  t.stop();  // the window was discarded by reset
  EXPECT_EQ(t.count(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
}

TEST(Timer, AccumTimerIsNotCopyable) {
  static_assert(!std::is_copy_constructible_v<AccumTimer>);
  static_assert(!std::is_copy_assignable_v<AccumTimer>);
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    FEKF_CHECK(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace fekf
