// Data-module tests: the 8-system catalog (Table 3 fidelity + teacher
// stability as a parameterized sweep), dataset splitting, and the batch
// sampler's epoch semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.hpp"
#include "data/systems.hpp"
#include "md/langevin.hpp"
#include "md/neighbor.hpp"
#include "md/units.hpp"

namespace fekf::data {
namespace {

TEST(Systems, CatalogHasEightPaperSystems) {
  const auto& names = system_names();
  ASSERT_EQ(names.size(), 8u);
  const std::vector<std::string> expected = {"Cu",  "Al",  "Si",  "NaCl",
                                             "Mg",  "H2O", "CuO", "HfO2"};
  EXPECT_EQ(names, expected);
  EXPECT_THROW(get_system("Unobtainium"), Error);
}

TEST(Systems, Table3Metadata) {
  // Spot-check the Table 3 columns the catalog encodes.
  EXPECT_EQ(get_system("Cu").paper_snapshots, 72102);
  EXPECT_EQ(get_system("Cu").dt_fs, 2.0);
  EXPECT_EQ(get_system("Mg").paper_snapshots, 12800);
  EXPECT_EQ(get_system("HfO2").paper_snapshots, 28577);
  EXPECT_EQ(get_system("H2O").elements.size(), 2u);
  EXPECT_EQ(get_system("NaCl").temperatures.size(), 3u);
}

TEST(Systems, PaperAtomCounts) {
  Rng rng(1);
  EXPECT_EQ(get_system("Cu").make_structure(rng).natoms(), 108);
  EXPECT_EQ(get_system("Al").make_structure(rng).natoms(), 32);
  EXPECT_EQ(get_system("Mg").make_structure(rng).natoms(), 36);
  EXPECT_EQ(get_system("NaCl").make_structure(rng).natoms(), 64);
  EXPECT_EQ(get_system("H2O").make_structure(rng).natoms(), 48);
  EXPECT_EQ(get_system("CuO").make_structure(rng).natoms(), 64);
  // Si and HfO2 are the two the supercell geometry cannot hit exactly
  // (paper: 72 and 98).
  EXPECT_EQ(get_system("Si").make_structure(rng).natoms(), 64);
  EXPECT_EQ(get_system("HfO2").make_structure(rng).natoms(), 96);
}

// Parameterized teacher-stability sweep: every catalog system must survive
// short MD at its highest listed temperature without atoms fusing or the
// energy diverging.
class TeacherStability : public ::testing::TestWithParam<std::string> {};

TEST_P(TeacherStability, HighTemperatureMdIsSane) {
  const SystemSpec& spec = get_system(GetParam());
  Rng rng(17);
  md::Structure st = spec.make_structure(rng);
  auto pot = spec.make_potential(st);

  md::System sys;
  sys.cell = st.cell;
  sys.positions = st.positions;
  sys.types = st.types;
  for (const i32 t : st.types) {
    sys.masses.push_back(spec.masses[static_cast<std::size_t>(t)]);
  }
  md::LangevinIntegrator integrator(
      *pot, {spec.dt_fs, spec.temperatures.back(), 0.05});
  integrator.initialize_velocities(sys, rng);
  const f64 e0 =
      md::evaluate(*pot, sys.positions, sys.types, sys.cell).energy;
  const f64 e1 = integrator.run(sys, 150, rng);
  EXPECT_TRUE(std::isfinite(e1));
  // Energy scale should not explode (thermal fluctuation, not meltdown).
  EXPECT_LT(std::abs(e1 - e0),
            2.0 * md::kBoltzmann * spec.temperatures.back() * 3.0 *
                    static_cast<f64>(sys.natoms()) +
                0.5 * std::abs(e0) + 50.0);
  // No fused atoms.
  md::NeighborList nl;
  nl.build(sys.positions, sys.cell, 3.0);
  for (i64 i = 0; i < sys.natoms(); ++i) {
    for (const md::Neighbor& nb : nl.of(i)) {
      EXPECT_GT(nb.r, 0.55) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, TeacherStability,
                         ::testing::ValuesIn(system_names()),
                         [](const auto& info) { return info.param; });

TEST(Dataset, SplitCoversAllTemperatures) {
  DatasetConfig cfg;
  cfg.train_per_temperature = 4;
  cfg.test_per_temperature = 2;
  const SystemSpec& spec = get_system("NaCl");
  Dataset ds = build_dataset(spec, cfg);
  EXPECT_EQ(ds.train.size(), 4u * spec.temperatures.size());
  EXPECT_EQ(ds.test.size(), 2u * spec.temperatures.size());
  EXPECT_EQ(ds.natoms(), 64);
  for (const md::Snapshot& s : ds.train) {
    EXPECT_TRUE(std::isfinite(s.energy));
    EXPECT_EQ(s.forces.size(), s.positions.size());
  }
}

TEST(Dataset, DeterministicForSeed) {
  DatasetConfig cfg;
  cfg.train_per_temperature = 3;
  cfg.test_per_temperature = 1;
  cfg.seed = 77;
  Dataset a = build_dataset(get_system("Cu"), cfg);
  Dataset b = build_dataset(get_system("Cu"), cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].energy, b.train[i].energy);
  }
}

TEST(BatchSampler, CoversEpochExactlyOnce) {
  BatchSampler sampler(10, 3, 5);
  std::vector<i64> batch;
  std::multiset<i64> seen;
  int batches = 0;
  while (sampler.next(batch)) {
    seen.insert(batch.begin(), batch.end());
    ++batches;
  }
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  EXPECT_EQ(seen.size(), 10u);
  for (i64 i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatchSampler, ReshufflesBetweenEpochs) {
  BatchSampler sampler(32, 32, 6);
  std::vector<i64> epoch1, epoch2, batch;
  while (sampler.next(batch)) {
    epoch1 = batch;
  }
  while (sampler.next(batch)) {
    epoch2 = batch;
  }
  EXPECT_NE(epoch1, epoch2);  // astronomically unlikely to match
  EXPECT_EQ(sampler.batches_per_epoch(), 1);
}

TEST(BatchSampler, BatchesPerEpochRoundsUp) {
  EXPECT_EQ(BatchSampler(10, 3, 0).batches_per_epoch(), 4);
  EXPECT_EQ(BatchSampler(9, 3, 0).batches_per_epoch(), 3);
  EXPECT_EQ(BatchSampler(1, 8, 0).batches_per_epoch(), 1);
}

}  // namespace
}  // namespace fekf::data
