// DeePMD model tests: descriptor symmetry invariances, analytic forces vs
// finite differences of the predicted energy, equality of the fused (opt1/2)
// and baseline computation paths, double-backward through the force graph
// (the property the EKF force update relies on), and structural checks.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "autograd/ops.hpp"
#include "data/systems.hpp"
#include "deepmd/jacobian_ops.hpp"
#include "deepmd/model.hpp"
#include "md/sampler.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/kernels.hpp"

namespace fekf::deepmd {
namespace {

namespace op = ag::ops;

ModelConfig small_config(FusionLevel fusion = FusionLevel::kOpt2) {
  ModelConfig cfg;
  cfg.rcut = 5.0;
  cfg.rcut_smth = 2.5;
  cfg.embed_width = 8;
  cfg.axis_neurons = 4;
  cfg.fitting_width = 12;
  cfg.fusion = fusion;
  return cfg;
}

std::vector<md::Snapshot> sample_system(const std::string& name, i64 count,
                                        u64 seed) {
  const data::SystemSpec& spec = data::get_system(name);
  Rng rng(seed);
  md::Structure st = spec.make_structure(rng);
  auto pot = spec.make_potential(st);
  md::SamplerConfig cfg;
  cfg.dt_fs = spec.dt_fs;
  cfg.temperatures = {spec.temperatures.front()};
  cfg.equilibration_steps = 20;
  cfg.stride = 3;
  cfg.snapshots_per_temperature = count;
  return md::sample_trajectory(*pot, st, spec.masses, cfg, rng);
}

f64 energy_value(const DeepmdModel& model, const md::Snapshot& snap) {
  ag::NoGradGuard guard;
  auto env = model.prepare(snap);
  return model.predict(env, /*with_forces=*/false).energy.item();
}

TEST(Deepmd, PaperParameterCount) {
  // Paper §4: [25,25,25] embedding + [400,50,50,50,1] fitting = 26 551
  // parameters for a one-element system (the paper quotes 26 651 including
  // bookkeeping variables; the layer algebra gives 26 551).
  ModelConfig cfg;
  DeepmdModel model(cfg, /*num_types=*/1);
  EXPECT_EQ(model.num_parameters(), 26551);
}

TEST(Deepmd, TranslationInvariance) {
  auto snaps = sample_system("Cu", 2, 41);
  DeepmdModel model(small_config(), 1);
  model.fit_stats(snaps);
  md::Snapshot shifted = snaps[0];
  for (auto& p : shifted.positions) {
    p = shifted.cell.wrap(p + md::Vec3{1.3, -0.7, 2.1});
  }
  EXPECT_NEAR(energy_value(model, snaps[0]), energy_value(model, shifted),
              1e-3);
}

TEST(Deepmd, PermutationInvariance) {
  auto snaps = sample_system("NaCl", 2, 42);
  DeepmdModel model(small_config(), 2);
  model.fit_stats(snaps);
  md::Snapshot perm = snaps[0];
  // Swap two same-type atoms and two other-type atoms.
  std::swap(perm.positions[0], perm.positions[3]);
  std::swap(perm.forces[0], perm.forces[3]);
  const i64 n = perm.natoms();
  std::swap(perm.positions[static_cast<std::size_t>(n - 1)],
            perm.positions[static_cast<std::size_t>(n - 4)]);
  std::swap(perm.forces[static_cast<std::size_t>(n - 1)],
            perm.forces[static_cast<std::size_t>(n - 4)]);
  EXPECT_NEAR(energy_value(model, snaps[0]), energy_value(model, perm), 1e-3);
}

TEST(Deepmd, RotationInvariance) {
  // 90-degree rotation about z (keeps the orthorhombic cell orthorhombic
  // for a cubic box): (x, y, z) -> (L - y, x, z).
  auto snaps = sample_system("Cu", 2, 43);
  DeepmdModel model(small_config(), 1);
  model.fit_stats(snaps);
  md::Snapshot rot = snaps[0];
  const f64 l = rot.cell.lengths().x;
  for (auto& p : rot.positions) {
    p = rot.cell.wrap(md::Vec3{l - p.y, p.x, p.z});
  }
  EXPECT_NEAR(energy_value(model, snaps[0]), energy_value(model, rot), 1e-3);
}

TEST(Deepmd, ForcesMatchFiniteDifference) {
  for (const char* system : {"Cu", "NaCl"}) {
    auto snaps = sample_system(system, 2, 44);
    const i32 nt = static_cast<i32>(data::get_system(system).elements.size());
    DeepmdModel model(small_config(), nt);
    model.fit_stats(snaps);
    const md::Snapshot& snap = snaps[0];
    auto env = model.prepare(snap);
    auto pred = model.predict(env, /*with_forces=*/true);
    const Tensor& forces = pred.forces.value();

    Rng rng(45);
    const f64 eps = 2e-3;
    for (int trial = 0; trial < 6; ++trial) {
      const i64 atom = static_cast<i64>(
          rng.uniform_index(static_cast<u64>(snap.natoms())));
      const int axis = static_cast<int>(rng.uniform_index(3));
      md::Snapshot plus = snap, minus = snap;
      auto& cp = plus.positions[static_cast<std::size_t>(atom)];
      auto& cm = minus.positions[static_cast<std::size_t>(atom)];
      (axis == 0 ? cp.x : axis == 1 ? cp.y : cp.z) += eps;
      (axis == 0 ? cm.x : axis == 1 ? cm.y : cm.z) -= eps;
      const f64 numeric =
          -(energy_value(model, plus) - energy_value(model, minus)) /
          (2 * eps);
      // Forces are reported in sorted-atom order.
      i64 sorted = -1;
      for (i64 s = 0; s < snap.natoms(); ++s) {
        if (env->perm[static_cast<std::size_t>(s)] == atom) sorted = s;
      }
      ASSERT_GE(sorted, 0);
      const f64 analytic = forces.at(sorted, axis);
      EXPECT_NEAR(analytic, numeric, 2e-2 * (1.0 + std::abs(numeric)))
          << system << " atom " << atom << " axis " << axis;
    }
  }
}

TEST(Deepmd, FusionLevelsAgree) {
  auto snaps = sample_system("NaCl", 2, 46);
  DeepmdModel baseline(small_config(FusionLevel::kBaseline), 2);
  baseline.fit_stats(snaps);
  DeepmdModel opt1(small_config(FusionLevel::kOpt1), 2);
  opt1.set_stats(baseline.env_stats(), baseline.energy_stats());
  DeepmdModel opt2(small_config(FusionLevel::kOpt2), 2);
  opt2.set_stats(baseline.env_stats(), baseline.energy_stats());

  auto env_b = baseline.prepare(snaps[0]);
  auto env_1 = opt1.prepare(snaps[0]);
  auto env_2 = opt2.prepare(snaps[0]);
  auto pb = baseline.predict(env_b, true);
  auto p1 = opt1.predict(env_1, true);
  auto p2 = opt2.predict(env_2, true);

  EXPECT_NEAR(pb.energy.item(), p1.energy.item(), 1e-3);
  EXPECT_NEAR(pb.energy.item(), p2.energy.item(), 1e-3);
  for (i64 i = 0; i < pb.forces.numel(); ++i) {
    EXPECT_NEAR(pb.forces.value().data()[i], p1.forces.value().data()[i],
                2e-3);
    EXPECT_NEAR(pb.forces.value().data()[i], p2.forces.value().data()[i],
                2e-3);
  }
}

TEST(Deepmd, FusionReducesKernelLaunches) {
  auto snaps = sample_system("Cu", 1, 47);
  DeepmdModel baseline(small_config(FusionLevel::kBaseline), 1);
  baseline.fit_stats(snaps);
  DeepmdModel opt2(small_config(FusionLevel::kOpt2), 1);
  opt2.set_stats(baseline.env_stats(), baseline.energy_stats());

  auto env = baseline.prepare(snaps[0]);
  i64 kb = 0, k2 = 0;
  {
    KernelCountScope scope;
    (void)baseline.predict(env, true);
    kb = scope.count();
  }
  {
    KernelCountScope scope;
    (void)opt2.predict(env, true);
    k2 = scope.count();
  }
  EXPECT_GT(kb, 3 * k2) << "baseline " << kb << " vs fused " << k2;
}

// The EKF force update differentiates a sign-weighted force sum w.r.t. the
// weights — i.e. double backward through the whole model. Validate against
// finite differences of the measurement under weight perturbations.
TEST(Deepmd, ForceMeasurementWeightGradient) {
  for (const FusionLevel fusion :
       {FusionLevel::kBaseline, FusionLevel::kOpt2}) {
    auto snaps = sample_system("Cu", 1, 48);
    DeepmdModel model(small_config(fusion), 1);
    model.fit_stats(snaps);
    auto env = model.prepare(snaps[0]);

    Rng rng(49);
    Tensor weights_t(env->natoms, 3);
    for (i64 i = 0; i < weights_t.numel(); ++i) {
      weights_t.data()[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
    }
    const ag::Variable sign(weights_t);

    auto measurement = [&](bool build_graph) -> ag::Variable {
      auto pred = model.predict(env, /*with_forces=*/true);
      (void)build_graph;
      return op::sum_all(op::mul(pred.forces, sign));
    };

    ag::Variable m = measurement(true);
    auto params = model.parameters();
    auto grads = ag::grad(m, params);

    // Spot-check a few entries of a weight matrix in the embedding and in
    // the fitting net against finite differences.
    const f64 eps = 1e-3;
    for (const std::size_t pi : {std::size_t{0}, params.size() - 2}) {
      ag::Variable& p = params[pi];
      for (int trial = 0; trial < 2; ++trial) {
        const i64 idx = static_cast<i64>(
            rng.uniform_index(static_cast<u64>(p.numel())));
        Tensor original = p.value().clone();
        Tensor bumped = original.clone();
        bumped.data()[idx] += static_cast<f32>(eps);
        p.set_value(bumped);
        const f64 m_plus = measurement(false).item();
        bumped.data()[idx] -= static_cast<f32>(2 * eps);
        p.set_value(bumped);
        const f64 m_minus = measurement(false).item();
        p.set_value(original);
        const f64 numeric = (m_plus - m_minus) / (2 * eps);
        const f64 analytic = grads[pi].value().data()[idx];
        EXPECT_NEAR(analytic, numeric, 0.05 * (1.0 + std::abs(numeric)))
            << "fusion " << static_cast<int>(fusion) << " param " << pi
            << " idx " << idx;
      }
    }
  }
}

TEST(Deepmd, EnvDataStructure) {
  auto snaps = sample_system("NaCl", 1, 50);
  DeepmdModel model(small_config(), 2);
  model.fit_stats(snaps);
  auto env = model.prepare(snaps[0]);
  EXPECT_EQ(env->natoms, snaps[0].natoms());
  EXPECT_EQ(env->truncated_neighbors, 0);  // auto-sel has headroom
  // Atoms sorted by type.
  EXPECT_EQ(env->type_offsets.front(), 0);
  EXPECT_EQ(env->type_offsets.back(), env->natoms);
  EXPECT_EQ(env->type_counts[0] + env->type_counts[1], env->natoms);
  // Jacobian rows reference valid slots.
  for (i32 t = 0; t < 2; ++t) {
    for (const SlotJacobian& sj : env->jacobians[static_cast<std::size_t>(t)]) {
      EXPECT_LT(sj.row, env->r_mats[static_cast<std::size_t>(t)].rows());
      EXPECT_LT(sj.center, env->natoms);
      EXPECT_LT(sj.neighbor, env->natoms);
    }
  }
}

TEST(Deepmd, PaddedSlotsHaveNormalizedZeroRadial) {
  auto snaps = sample_system("Cu", 1, 51);
  ModelConfig cfg = small_config();
  DeepmdModel model(cfg, 1);
  model.fit_stats(snaps);
  auto env = model.prepare(snaps[0]);
  // The last slot of each atom should usually be padding (sel headroom):
  // its radial entry equals (0 - davg)/dstd, angular entries equal 0.
  const f64 expected =
      (0.0 - model.env_stats().davg[0]) / model.env_stats().dstd_r[0];
  const Tensor& r = env->r_mats[0];
  const i64 sel = model.sel()[0];
  i64 padded = 0;
  for (i64 i = 0; i < env->natoms; ++i) {
    const i64 row = i * sel + (sel - 1);
    if (std::abs(r.at(row, 1)) < 1e-12 && std::abs(r.at(row, 2)) < 1e-12) {
      ++padded;
      EXPECT_NEAR(r.at(row, 0), expected, 1e-5);
    }
  }
  EXPECT_GT(padded, 0);
}

TEST(Deepmd, JacobianOpsAreMutualTransposes) {
  // <L g, f> == <g, L^T f> for random g, f.
  auto snaps = sample_system("Cu", 1, 52);
  DeepmdModel model(small_config(), 1);
  model.fit_stats(snaps);
  auto env = model.prepare(snaps[0]);
  Rng rng(53);
  Tensor g = Tensor::randn(env->natoms * model.sel()[0], 4, rng);
  Tensor f = Tensor::randn(env->natoms, 3, rng);
  ag::Variable gv(g), fv(f);
  ag::Variable lg = jacobian_force(gv, env, 0);
  ag::Variable ltf = jacobian_force_transpose(fv, env, 0);
  const f64 lhs = kernels::dot_all(lg.value(), f);
  const f64 rhs = kernels::dot_all(g, ltf.value());
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(lhs)));
}

TEST(Deepmd, StatsSuggestedSelCoversData) {
  auto snaps = sample_system("HfO2", 3, 54);
  ModelConfig cfg = small_config();
  EnvStats stats = compute_env_stats(snaps, 2, cfg);
  ASSERT_EQ(stats.suggested_sel.size(), 2u);
  for (const md::Snapshot& snap : snaps) {
    auto env = build_env(snap, stats, stats.suggested_sel, cfg);
    EXPECT_EQ(env->truncated_neighbors, 0);
  }
}

}  // namespace
}  // namespace fekf::deepmd
