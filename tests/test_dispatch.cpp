// Kernel-dispatch registry and the per-variant exactness contract
// (DESIGN.md §13, docs/KERNELS.md).
//
// The contract these tests enforce: every registered variant DECLARES its
// exactness class, and the declaration is asserted, not assumed —
//   * bit_exact variants must match the scalar reference byte for byte
//     (memcmp), at thread widths 1 and 4;
//   * tolerance variants must stay within their declared bound of the
//     scalar result, measured against the family's error yardstick
//     (absolute for tanh, whose outputs live in [-1, 1]; relative to the
//     reduction mass Σ|terms| for the f64/f32 reductions);
// plus the selection policy: auto picks only bit_exact variants, a forced
// level picks within the ladder, and an unsupported ISA (injected via
// set_cpu_features_for_test) falls back gracefully instead of failing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "deepmd/descriptor_variants.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/dispatch.hpp"
#include "tensor/kernels.hpp"
#include "tensor/variants/variants.hpp"

namespace fekf {
namespace {

namespace dp = dispatch;

/// All seven families; registration hooks are idempotent.
const std::vector<std::string>& all_families() {
  dp::register_gemm_variants();
  dp::register_tanh_variants();
  dp::register_ekf_variants();
  dp::register_matnt_variants();
  dp::register_desc_variants();
  static const std::vector<std::string> families = {
      "gemm_f32",     "tanh_f32",      "ekf_symv_f64",    "ekf_dot_f64",
      "ekf_rank1_f64", "matnt_f32",    "desc_contract_f32"};
  return families;
}

struct BackendGuard {
  ~BackendGuard() {
    dp::Registry::instance().set_backend(std::nullopt);
    dp::Registry::instance().set_cpu_features_for_test(std::nullopt);
  }
};

struct WidthGuard {
  ~WidthGuard() { set_num_threads(0); }
};

std::vector<f32> randn_f32(i64 count, u64 seed) {
  Rng rng(seed);
  Tensor t = Tensor::randn(1, count, rng);
  return std::vector<f32>(t.data(), t.data() + count);
}

std::vector<f64> randn_f64(i64 count, u64 seed) {
  Rng rng(seed);
  Tensor t = Tensor::randn(1, count, rng);
  std::vector<f64> out(static_cast<std::size_t>(count));
  for (i64 i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = t.data()[i];
  return out;
}

template <typename T>
bool bytes_equal(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

// ---------------------------------------------------------------------------
// Registry policy
// ---------------------------------------------------------------------------

TEST(DispatchRegistry, EveryFamilyHasABitExactScalarFallback) {
  auto& reg = dp::Registry::instance();
  for (const std::string& family : all_families()) {
    const auto scalar = reg.find(family, "scalar");
    ASSERT_TRUE(scalar.has_value()) << family;
    EXPECT_EQ(scalar->level, dp::Level::kScalar) << family;
    EXPECT_EQ(scalar->exactness, dp::Exactness::kBitExact) << family;
    EXPECT_EQ(scalar->tolerance, 0.0) << family;
    EXPECT_EQ(scalar->isa, "generic") << family;
    EXPECT_TRUE(scalar->compiled) << family;
    EXPECT_GE(reg.variants(family).size(), 2u)
        << family << ": expected at least one non-scalar variant";
  }
}

TEST(DispatchRegistry, AutoSelectsOnlyBitExactVariants) {
  BackendGuard guard;
  auto& reg = dp::Registry::instance();
  reg.set_backend(std::nullopt);
  for (const std::string& family : all_families()) {
    const dp::Variant v = reg.selected(family);
    EXPECT_EQ(v.exactness, dp::Exactness::kBitExact)
        << family << " selected tolerance-class '" << v.name
        << "' under auto; the default must never move numerics";
  }
}

TEST(DispatchRegistry, ForcedScalarSelectsTheReferenceEverywhere) {
  BackendGuard guard;
  auto& reg = dp::Registry::instance();
  reg.set_backend(dp::Level::kScalar);
  for (const std::string& family : all_families()) {
    EXPECT_EQ(reg.selected(family).name, "scalar") << family;
  }
}

TEST(DispatchRegistry, ForcedLevelNeverSelectsAboveTheLadder) {
  BackendGuard guard;
  auto& reg = dp::Registry::instance();
  for (dp::Level level : {dp::Level::kScalar, dp::Level::kSimd,
                          dp::Level::kAvx2}) {
    reg.set_backend(level);
    for (const std::string& family : all_families()) {
      EXPECT_LE(static_cast<int>(reg.selected(family).level),
                static_cast<int>(level))
          << family << " at forced " << dp::level_name(level);
    }
  }
}

TEST(DispatchRegistry, UnsupportedIsaFallsBackGracefully) {
  BackendGuard guard;
  auto& reg = dp::Registry::instance();
  // A CPU with neither AVX2 nor FMA: every avx2+fma variant is ineligible,
  // and a forced avx2 request degrades to the best remaining variant
  // instead of failing.
  reg.set_cpu_features_for_test(dp::CpuFeatures{false, false});
  reg.set_backend(dp::Level::kAvx2);
  for (const std::string& family : all_families()) {
    const dp::Variant v = reg.selected(family);
    EXPECT_NE(v.isa, "avx2+fma") << family;
  }
  EXPECT_EQ(reg.selected("tanh_f32").name, "scalar");
  EXPECT_EQ(reg.selected("ekf_symv_f64").name, "simd");
}

TEST(DispatchRegistry, ReRegistrationReplacesAndBumpsGeneration) {
  auto& reg = dp::Registry::instance();
  const auto base = reg.find("gemm_f32", "scalar");
  ASSERT_TRUE(base.has_value());
  const u64 gen0 = reg.generation();
  dp::Variant probe = *base;
  probe.kernel = "test_probe_kernel";
  probe.name = "scalar";
  probe.note = "first";
  reg.add(probe);
  EXPECT_GT(reg.generation(), gen0);
  probe.note = "second";
  reg.add(probe);
  const auto found = reg.find("test_probe_kernel", "scalar");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->note, "second");
  ASSERT_EQ(reg.variants("test_probe_kernel").size(), 1u);
  EXPECT_EQ(reg.selected("test_probe_kernel").name, "scalar");
}

TEST(DispatchRegistry, BackendParsing) {
  std::optional<dp::Level> level;
  EXPECT_TRUE(dp::Registry::parse_backend("auto", &level));
  EXPECT_FALSE(level.has_value());
  EXPECT_TRUE(dp::Registry::parse_backend("", &level));
  EXPECT_FALSE(level.has_value());
  EXPECT_TRUE(dp::Registry::parse_backend("scalar", &level));
  EXPECT_EQ(level, dp::Level::kScalar);
  EXPECT_TRUE(dp::Registry::parse_backend("simd", &level));
  EXPECT_EQ(level, dp::Level::kSimd);
  EXPECT_TRUE(dp::Registry::parse_backend("avx2", &level));
  EXPECT_EQ(level, dp::Level::kAvx2);
  EXPECT_FALSE(dp::Registry::parse_backend("sse9", &level));
  EXPECT_FALSE(dp::Registry::parse_backend("AVX2", &level));
}

// ---------------------------------------------------------------------------
// Per-variant exactness sweeps against the scalar reference
// ---------------------------------------------------------------------------

/// Runs `check(variant)` for every registered non-scalar variant of
/// `family` that is compiled in and supported by the real CPU.
template <typename Fn>
void for_each_checked_variant(const std::string& family, Fn&& check) {
  auto& reg = dp::Registry::instance();
  const dp::CpuFeatures features = dp::detected_cpu_features();
  int checked = 0;
  for (const dp::Variant& v : reg.variants(family)) {
    if (v.name == "scalar" || !v.compiled) continue;
    if (v.isa == "avx2+fma" && !(features.avx2 && features.fma)) continue;
    SCOPED_TRACE(family + "/" + v.name);
    check(v);
    ++checked;
  }
  EXPECT_GE(checked, 1) << family << ": no non-scalar variant was checkable";
}

TEST(DispatchExactness, GemmVariantsHoldTheirDeclaredClass) {
  dp::register_gemm_variants();
  const auto scalar =
      reinterpret_cast<dp::GemmPanelFn>(
          dp::Registry::instance().find("gemm_f32", "scalar")->fn);
  // Paper shapes (n = 25/16/50/1 hits the fixed catalog) plus an
  // off-catalog n = 23 (fixed delegates to scalar) and a bias-less run.
  struct Shape { i64 m, k, n; bool bias; };
  const std::vector<Shape> shapes = {
      {9, 13, 25, true}, {7, 25, 16, true},  {5, 16, 50, true},
      {8, 50, 1, true},  {6, 10, 23, true},  {9, 13, 25, false}};
  for (const Shape& s : shapes) {
    SCOPED_TRACE("m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
                 " n=" + std::to_string(s.n));
    const std::vector<f32> x = randn_f32(s.m * s.k, 11);
    const std::vector<f32> w = randn_f32(s.k * s.n, 12);
    const std::vector<f32> b = randn_f32(s.n, 13);
    const f32* bias = s.bias ? b.data() : nullptr;
    std::vector<f32> ref(static_cast<std::size_t>(s.m * s.n));
    scalar(x.data(), w.data(), bias, ref.data(), 0, s.m, s.k, s.n);
    for_each_checked_variant("gemm_f32", [&](const dp::Variant& v) {
      std::vector<f32> out(static_cast<std::size_t>(s.m * s.n), -7.0f);
      reinterpret_cast<dp::GemmPanelFn>(v.fn)(x.data(), w.data(), bias,
                                              out.data(), 0, s.m, s.k, s.n);
      if (v.exactness == dp::Exactness::kBitExact) {
        EXPECT_TRUE(bytes_equal(ref, out));
        return;
      }
      // Tolerance class (the fixed template): per element, relative to
      // the mass of the k accumulated |x·w| terms (+ |bias|).
      ASSERT_GT(v.tolerance, 0.0);
      for (i64 i = 0; i < s.m; ++i) {
        for (i64 j = 0; j < s.n; ++j) {
          f64 mass = bias ? std::abs(static_cast<f64>(bias[j])) : 0.0;
          for (i64 l = 0; l < s.k; ++l) {
            mass += std::abs(static_cast<f64>(x[i * s.k + l]) *
                             w[l * s.n + j]);
          }
          const f64 diff =
              std::abs(static_cast<f64>(out[i * s.n + j]) - ref[i * s.n + j]);
          EXPECT_LE(diff, v.tolerance * mass)
              << "element (" << i << "," << j << ")";
        }
      }
    });
  }
}

TEST(DispatchExactness, TanhVariantsHoldTheirDeclaredBound) {
  dp::register_tanh_variants();
  const auto scalar = reinterpret_cast<dp::TanhChunkFn>(
      dp::Registry::instance().find("tanh_f32", "scalar")->fn);
  // Dense random values plus the regimes a polynomial tanh gets wrong:
  // exact zero, denormal-adjacent, the linear region, and saturation.
  std::vector<f32> x = randn_f32(4096, 21);
  const f32 edges[] = {0.0f,   1e-20f, -1e-20f, 1e-6f, -1e-6f, 0.1f,
                       -0.1f,  1.0f,   -1.0f,   5.0f,  -5.0f,  9.5f,
                       -9.5f,  30.0f,  -30.0f,  88.0f, -88.0f};
  x.insert(x.end(), std::begin(edges), std::end(edges));
  const i64 count = static_cast<i64>(x.size());
  std::vector<f32> ref(x.size());
  scalar(x.data(), ref.data(), count);
  for_each_checked_variant("tanh_f32", [&](const dp::Variant& v) {
    std::vector<f32> out(x.size());
    reinterpret_cast<dp::TanhChunkFn>(v.fn)(x.data(), out.data(), count);
    if (v.exactness == dp::Exactness::kBitExact) {
      EXPECT_TRUE(bytes_equal(ref, out));
      return;
    }
    ASSERT_GT(v.tolerance, 0.0);
    f64 worst = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      worst = std::max(worst, std::abs(static_cast<f64>(out[i]) - ref[i]));
    }
    EXPECT_LE(worst, v.tolerance) << "absolute bound (|tanh| <= 1)";
    // In-place operation is part of the family signature.
    std::vector<f32> inplace = x;
    reinterpret_cast<dp::TanhChunkFn>(v.fn)(inplace.data(), inplace.data(),
                                            count);
    EXPECT_TRUE(bytes_equal(out, inplace));
  });
}

TEST(DispatchExactness, SymvVariantsHoldTheMassRelativeBound) {
  dp::register_ekf_variants();
  const auto scalar = reinterpret_cast<dp::SymvPanelFn>(
      dp::Registry::instance().find("ekf_symv_f64", "scalar")->fn);
  const i64 n = 301;  // odd: exercises every vector tail
  const std::vector<f64> p = randn_f64(n * n, 31);
  const std::vector<f64> g = randn_f64(n, 32);
  std::vector<f64> ref(static_cast<std::size_t>(n));
  scalar(p.data(), g.data(), ref.data(), 0, n, n);
  std::vector<f64> mass(static_cast<std::size_t>(n), 0.0);
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < n; ++j) {
      mass[static_cast<std::size_t>(i)] += std::abs(p[i * n + j] * g[j]);
    }
  }
  for_each_checked_variant("ekf_symv_f64", [&](const dp::Variant& v) {
    ASSERT_EQ(v.exactness, dp::Exactness::kTolerance);
    std::vector<f64> out(static_cast<std::size_t>(n));
    reinterpret_cast<dp::SymvPanelFn>(v.fn)(p.data(), g.data(), out.data(), 0,
                                            n, n);
    for (i64 i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(out[i] - ref[i]),
                v.tolerance * mass[static_cast<std::size_t>(i)])
          << "row " << i;
    }
  });
}

TEST(DispatchExactness, DotVariantsHoldTheMassRelativeBound) {
  dp::register_ekf_variants();
  const auto scalar = reinterpret_cast<dp::DotChunkFn>(
      dp::Registry::instance().find("ekf_dot_f64", "scalar")->fn);
  const i64 count = 10007;  // prime: exercises every vector tail
  const std::vector<f64> a = randn_f64(count, 41);
  const std::vector<f64> b = randn_f64(count, 42);
  const f64 ref = scalar(a.data(), b.data(), 0, count);
  f64 mass = 0.0;
  for (i64 i = 0; i < count; ++i) mass += std::abs(a[i] * b[i]);
  for_each_checked_variant("ekf_dot_f64", [&](const dp::Variant& v) {
    ASSERT_EQ(v.exactness, dp::Exactness::kTolerance);
    const f64 out =
        reinterpret_cast<dp::DotChunkFn>(v.fn)(a.data(), b.data(), 0, count);
    EXPECT_LE(std::abs(out - ref), v.tolerance * mass);
    // Sub-range offsets must agree with the same chunk of the reference.
    const f64 sub = reinterpret_cast<dp::DotChunkFn>(v.fn)(a.data(), b.data(),
                                                           17, 1000);
    EXPECT_LE(std::abs(sub - scalar(a.data(), b.data(), 17, 1000)),
              v.tolerance * mass);
  });
}

TEST(DispatchExactness, Rank1VariantsAreBitExact) {
  dp::register_ekf_variants();
  const auto scalar = reinterpret_cast<dp::Rank1PanelFn>(
      dp::Registry::instance().find("ekf_rank1_f64", "scalar")->fn);
  const i64 n = 67;  // odd: exercises the per-row vector tails
  const std::vector<f64> p0 = randn_f64(n * n, 51);
  const std::vector<f64> k = randn_f64(n, 52);
  const f64 coeff = 0.37, inv_lambda = 1.0 / 0.9987;
  std::vector<f64> ref = p0;
  scalar(ref.data(), k.data(), coeff, inv_lambda, 0, n, n);
  for_each_checked_variant("ekf_rank1_f64", [&](const dp::Variant& v) {
    ASSERT_EQ(v.exactness, dp::Exactness::kBitExact);
    std::vector<f64> out = p0;
    reinterpret_cast<dp::Rank1PanelFn>(v.fn)(out.data(), k.data(), coeff,
                                             inv_lambda, 0, n, n);
    EXPECT_TRUE(bytes_equal(ref, out));
    // Panel split at an arbitrary row must compose to the same matrix.
    std::vector<f64> split = p0;
    reinterpret_cast<dp::Rank1PanelFn>(v.fn)(split.data(), k.data(), coeff,
                                             inv_lambda, 0, 19, n);
    reinterpret_cast<dp::Rank1PanelFn>(v.fn)(split.data(), k.data(), coeff,
                                             inv_lambda, 19, n, n);
    EXPECT_TRUE(bytes_equal(ref, split));
  });
}

TEST(DispatchExactness, MatNtVariantsAreBitExact) {
  dp::register_matnt_variants();
  const auto scalar = reinterpret_cast<dp::MatNtPanelFn>(
      dp::Registry::instance().find("matnt_f32", "scalar")->fn);
  // The shapes the family actually serves: the bmm_nt descriptor block
  // (n=6, q=4: 4-lane main + 2-wide tail), the gx backward panel
  // (n=q=50: 8-lane + 4-lane + 2 tail), a sub-4 n (delegates to scalar),
  // an odd everything, and one past the transpose cap (delegate path).
  struct Shape { i64 m, n, q; };
  const std::vector<Shape> shapes = {
      {12, 6, 4}, {9, 50, 50}, {7, 3, 11}, {5, 13, 7}, {3, 70, 64}};
  for (const Shape& s : shapes) {
    SCOPED_TRACE("m=" + std::to_string(s.m) + " n=" + std::to_string(s.n) +
                 " q=" + std::to_string(s.q));
    const std::vector<f32> a = randn_f32(s.m * s.q, 71);
    const std::vector<f32> b = randn_f32(s.n * s.q, 72);
    std::vector<f32> ref(static_cast<std::size_t>(s.m * s.n));
    scalar(a.data(), b.data(), ref.data(), 0, s.m, s.n, s.q);
    for_each_checked_variant("matnt_f32", [&](const dp::Variant& v) {
      ASSERT_EQ(v.exactness, dp::Exactness::kBitExact);
      std::vector<f32> out(static_cast<std::size_t>(s.m * s.n), -7.0f);
      reinterpret_cast<dp::MatNtPanelFn>(v.fn)(a.data(), b.data(), out.data(),
                                               0, s.m, s.n, s.q);
      EXPECT_TRUE(bytes_equal(ref, out));
      // Panel split at an arbitrary row must compose to the same matrix.
      std::vector<f32> split(static_cast<std::size_t>(s.m * s.n), -7.0f);
      reinterpret_cast<dp::MatNtPanelFn>(v.fn)(a.data(), b.data(),
                                               split.data(), 0, 2, s.n, s.q);
      reinterpret_cast<dp::MatNtPanelFn>(v.fn)(a.data(), b.data(),
                                               split.data(), 2, s.m, s.n,
                                               s.q);
      EXPECT_TRUE(bytes_equal(ref, split));
    });
  }
}

TEST(DispatchExactness, DescContractVariantsHoldTheMassRelativeBound) {
  dp::register_desc_variants();
  const auto scalar = reinterpret_cast<dp::DescContractFn>(
      dp::Registry::instance().find("desc_contract_f32", "scalar")->fn);
  const i64 m = 25, m_axis = 16, q = 83;  // paper M/M^< shapes, odd q
  const std::vector<f32> ab = randn_f32(m * q, 61);
  std::vector<f32> ref(static_cast<std::size_t>(m * m_axis));
  scalar(ab.data(), ref.data(), m, m_axis, q);
  for_each_checked_variant("desc_contract_f32", [&](const dp::Variant& v) {
    ASSERT_EQ(v.exactness, dp::Exactness::kTolerance);
    std::vector<f32> out(static_cast<std::size_t>(m * m_axis));
    reinterpret_cast<dp::DescContractFn>(v.fn)(ab.data(), out.data(), m,
                                               m_axis, q);
    for (i64 i = 0; i < m; ++i) {
      for (i64 j = 0; j < m_axis; ++j) {
        f64 mass = 0.0;
        for (i64 l = 0; l < q; ++l) {
          mass += std::abs(static_cast<f64>(ab[i * q + l]) * ab[j * q + l]);
        }
        EXPECT_LE(std::abs(static_cast<f64>(out[i * m_axis + j]) -
                           ref[i * m_axis + j]),
                  v.tolerance * mass)
            << "element (" << i << "," << j << ")";
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Through the public kernels: width determinism and cross-path identity
// ---------------------------------------------------------------------------

/// One EKF workload stepped through the public kernels; returns every
/// output so callers can compare across widths/backends/paths.
struct EkfRun {
  std::vector<f64> p;
  std::vector<f64> y;
  std::vector<f64> w;
  f64 gain = 0.0;
  f64 health = 0.0;

  bool operator==(const EkfRun& o) const {
    return std::memcmp(p.data(), o.p.data(), p.size() * sizeof(f64)) == 0 &&
           std::memcmp(y.data(), o.y.data(), y.size() * sizeof(f64)) == 0 &&
           std::memcmp(w.data(), o.w.data(), w.size() * sizeof(f64)) == 0 &&
           std::memcmp(&gain, &o.gain, sizeof(f64)) == 0 &&
           std::memcmp(&health, &o.health, sizeof(f64)) == 0;
  }
};

EkfRun run_ekf(bool fused, i64 n) {
  const std::vector<f64> p0 = randn_f64(n * n, 71);
  const std::vector<f64> g = randn_f64(n, 72);
  EkfRun r;
  r.p = p0;
  r.y.assign(static_cast<std::size_t>(n), 0.0);
  r.w = randn_f64(n, 73);
  const f64 lambda = 0.9987, step = 0.01, noise = 1e-8;
  if (fused) {
    r.gain = kernels::ekf_gain_fused(r.p, g, r.y, n);
    r.health = kernels::ekf_apply_fused(r.p, r.y, 1.0 / (lambda + r.gain),
                                        lambda, step, r.w, noise, n);
  } else {
    kernels::symv(r.p, g, r.y, n);
    r.gain = kernels::dot(g, r.y);
    kernels::p_update_fused(r.p, r.y, 1.0 / (lambda + r.gain), lambda, n);
    for (i64 i = 0; i < n; ++i) r.p[i * n + i] += noise;
    kernels::axpy(step, r.y, r.w);
    r.health = 0.0;
    for (i64 i = 0; i < n; ++i) {
      r.health = std::max(r.health, r.p[i * n + i]);
    }
  }
  return r;
}

TEST(DispatchKernels, EveryBackendIsWidthDeterministicAndFusedInvariant) {
  BackendGuard backend_guard;
  WidthGuard width_guard;
  auto& reg = dp::Registry::instance();
  const i64 n = 193;
  for (dp::Level level : {dp::Level::kScalar, dp::Level::kSimd,
                          dp::Level::kAvx2}) {
    SCOPED_TRACE(std::string("backend=") + dp::level_name(level));
    reg.set_backend(level);
    set_num_threads(1);
    const EkfRun fused1 = run_ekf(true, n);
    const EkfRun legacy1 = run_ekf(false, n);
    set_num_threads(4);
    const EkfRun fused4 = run_ekf(true, n);
    const EkfRun legacy4 = run_ekf(false, n);
    // Width determinism per backend (§9 holds per variant)...
    EXPECT_TRUE(fused1 == fused4);
    EXPECT_TRUE(legacy1 == legacy4);
    // ...and fused vs legacy share the same dispatched bodies, so the
    // cross-path identity holds under every backend, tolerance-class
    // variants included. (health is computed differently: fused returns
    // max diag AFTER noise either way — compare the shared outputs.)
    EXPECT_TRUE(std::memcmp(fused1.p.data(), legacy1.p.data(),
                            fused1.p.size() * sizeof(f64)) == 0);
    EXPECT_TRUE(std::memcmp(fused1.w.data(), legacy1.w.data(),
                            fused1.w.size() * sizeof(f64)) == 0);
    EXPECT_TRUE(std::memcmp(&fused1.gain, &legacy1.gain, sizeof(f64)) == 0);
  }
}

TEST(DispatchKernels, ForwardPathMatchesScalarUnderAuto) {
  // The auto policy only ever selects bit_exact variants, so the public
  // f32 forward kernels must agree with forced-scalar byte for byte.
  BackendGuard guard;
  auto& reg = dp::Registry::instance();
  Rng rng(81);
  const Tensor x = Tensor::randn(33, 50, rng);
  const Tensor w = Tensor::randn(50, 25, rng);
  const Tensor b = Tensor::randn(1, 25, rng);
  reg.set_backend(dp::Level::kScalar);
  const Tensor mm_s = kernels::matmul(x, w);
  const Tensor lt_s = kernels::linear_tanh(x, w, b);
  const Tensor th_s = kernels::tanh(x);
  reg.set_backend(std::nullopt);
  const Tensor mm_a = kernels::matmul(x, w);
  const Tensor lt_a = kernels::linear_tanh(x, w, b);
  const Tensor th_a = kernels::tanh(x);
  auto same = [](const Tensor& p, const Tensor& q) {
    return std::memcmp(p.data(), q.data(),
                       static_cast<std::size_t>(p.numel()) * sizeof(f32)) == 0;
  };
  EXPECT_TRUE(same(mm_s, mm_a));
  EXPECT_TRUE(same(lt_s, lt_a));
  EXPECT_TRUE(same(th_s, th_a));
}

}  // namespace
}  // namespace fekf
