// Virtual-cluster tests: interconnect model properties, communication
// ledger accounting (FEKF ships gradients only, never P), and distributed
// training equivalence/scaling behaviour.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "dist/cluster.hpp"

namespace fekf::dist {
namespace {

TEST(Interconnect, SingleRankIsFree) {
  InterconnectModel net;
  EXPECT_EQ(net.allreduce_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(InterconnectModel::allreduce_bytes(1 << 20, 1), 0);
}

TEST(Interconnect, TimeGrowsWithRanksAndBytes) {
  InterconnectModel net;
  const f64 t4 = net.allreduce_seconds(1 << 20, 4);
  const f64 t16 = net.allreduce_seconds(1 << 20, 16);
  EXPECT_GT(t16, t4);
  EXPECT_GT(net.allreduce_seconds(8 << 20, 4), t4);
}

TEST(Interconnect, PaperAccountingOfBytes) {
  // §3.3: (r - 1) * Mem(g).
  EXPECT_EQ(InterconnectModel::allreduce_bytes(1000, 5), 4000);
}

TEST(Interconnect, BandwidthDominatesForLargePayloads) {
  InterconnectModel net;
  net.latency_s = 0.0;
  // 2 (r-1)/r * bytes / BW.
  const i64 bytes = 100 << 20;
  const f64 expected =
      2.0 * 3.0 * (static_cast<f64>(bytes) / 4.0) / (25.0 * 1e9);
  EXPECT_NEAR(net.allreduce_seconds(bytes, 4), expected, 1e-9);
}

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<deepmd::DeepmdModel> model;
  std::vector<train::EnvPtr> train_envs;
};

Fixture make_fixture(i64 per_temp = 8) {
  Fixture f;
  data::DatasetConfig dcfg;
  dcfg.train_per_temperature = per_temp;
  dcfg.test_per_temperature = 1;
  deepmd::ModelConfig mcfg;
  mcfg.rcut = 5.0;
  mcfg.rcut_smth = 2.5;
  mcfg.embed_width = 8;
  mcfg.axis_neurons = 4;
  mcfg.fitting_width = 16;
  const data::SystemSpec& spec = data::get_system("Cu");
  f.dataset = data::build_dataset(spec, dcfg);
  f.model = std::make_unique<deepmd::DeepmdModel>(mcfg, 1);
  f.model->fit_stats(f.dataset.train);
  f.train_envs = train::prepare_all(*f.model, f.dataset.train);
  return f;
}

DistributedConfig base_config(i64 ranks, i64 batch) {
  DistributedConfig cfg;
  cfg.ranks = ranks;
  cfg.options.batch_size = batch;
  cfg.options.max_epochs = 1;
  cfg.options.eval_max_samples = 8;
  cfg.kalman.blocksize = 1024;
  return cfg;
}

TEST(Distributed, LedgerCountsGradientsNotP) {
  Fixture f = make_fixture(6);
  DistributedConfig cfg = base_config(4, 8);
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_GT(result.comm.gradient_bytes, 0);
  EXPECT_GT(result.comm.error_bytes, 0);
  // The per-step gradient payload is (r-1) * N * 8 bytes — and nothing
  // else scales with the covariance size.
  optim::FlatParams flat(f.model->parameters());
  const i64 per_step = 3 * (flat.size() * 8);
  EXPECT_EQ(result.comm.gradient_bytes, result.comm.steps * per_step);
  // 5 measurement reductions per training step (1 energy + 4 force).
  EXPECT_EQ(result.comm.steps, result.train.steps * 5);
}

TEST(Distributed, SingleRankHasNoCommTime) {
  Fixture f = make_fixture(6);
  DistributedConfig cfg = base_config(1, 4);
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_EQ(result.comm.comm_seconds, 0.0);
  EXPECT_EQ(result.comm.gradient_bytes, 0);
  EXPECT_GT(result.simulated_seconds, 0.0);
}

TEST(Distributed, MoreRanksReduceSimulatedComputeTime) {
  // Same global batch split over more ranks -> smaller max-shard compute.
  Fixture f = make_fixture(8);
  DistributedConfig cfg1 = base_config(1, 16);
  DistributedConfig cfg4 = base_config(4, 16);
  // Fresh models so both start identically.
  Fixture f1 = make_fixture(8);
  DistributedResult r1 =
      train_fekf_distributed(*f1.model, f1.train_envs, {}, cfg1);
  Fixture f4 = make_fixture(8);
  DistributedResult r4 =
      train_fekf_distributed(*f4.model, f4.train_envs, {}, cfg4);
  EXPECT_LT(r4.compute_seconds, r1.compute_seconds);
}

TEST(Distributed, TrainingLearns) {
  Fixture f = make_fixture(10);
  DistributedConfig cfg = base_config(4, 8);
  cfg.options.max_epochs = 3;
  train::Metrics before =
      train::evaluate(*f.model, f.train_envs, 8, true);
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_LT(result.train.final_train.force_rmse, before.force_rmse);
  EXPECT_EQ(result.train.history.size(), 3u);
}

TEST(Distributed, ConvergenceRecordsSimulatedTime) {
  Fixture f = make_fixture(6);
  DistributedConfig cfg = base_config(2, 4);
  cfg.options.max_epochs = 5;
  cfg.options.target_total_rmse = 1e9;  // converge immediately
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_TRUE(result.train.converged);
  EXPECT_GT(result.simulated_seconds_to_converge, 0.0);
  EXPECT_LE(result.simulated_seconds_to_converge,
            result.simulated_seconds + 1e-9);
}

}  // namespace
}  // namespace fekf::dist
