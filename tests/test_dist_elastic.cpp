// Elastic virtual-cluster tests (DESIGN.md §10): membership lifecycle
// (join catch-up, heartbeat eviction, miss_limit delay), degraded links
// (drop/corrupt + retry preserving bit-identical weights), stragglers
// (bounded wait vs drop-and-reshard), membership checkpoint/resume, and
// the determinism contract — fault-free vs injected-and-recovered runs
// produce identical weights exactly where the contract promises it.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "core/fault.hpp"
#include "data/dataset.hpp"
#include "dist/cluster.hpp"

namespace fekf::dist {
namespace {

/// Pins the injector to `spec` for the test, restoring the ambient
/// FEKF_FAULT_SPEC arms on scope exit.
struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec = {}) {
    FaultInjector::instance().configure(spec);
  }
  ~InjectorGuard() { FaultInjector::instance().configure_from_env(); }
};

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name + "." +
             std::to_string(static_cast<long long>(::getpid()))) {}
  ~TempFile() { std::remove(path.c_str()); }
};

struct Fixture {
  data::Dataset dataset;
  std::unique_ptr<deepmd::DeepmdModel> model;
  std::vector<train::EnvPtr> train_envs;
};

Fixture make_fixture(i64 per_temp = 2) {
  Fixture f;
  data::DatasetConfig dcfg;
  dcfg.train_per_temperature = per_temp;
  dcfg.test_per_temperature = 1;
  deepmd::ModelConfig mcfg;
  mcfg.rcut = 5.0;
  mcfg.rcut_smth = 2.5;
  mcfg.embed_width = 8;
  mcfg.axis_neurons = 4;
  mcfg.fitting_width = 16;
  const data::SystemSpec& spec = data::get_system("Cu");
  f.dataset = data::build_dataset(spec, dcfg);
  f.model = std::make_unique<deepmd::DeepmdModel>(mcfg, 1);
  f.model->fit_stats(f.dataset.train);
  f.train_envs = train::prepare_all(*f.model, f.dataset.train);
  return f;
}

DistributedConfig base_config(i64 ranks, i64 batch, i64 epochs = 1) {
  DistributedConfig cfg;
  cfg.ranks = ranks;
  cfg.options.batch_size = batch;
  cfg.options.max_epochs = epochs;
  cfg.options.eval_max_samples = 4;
  cfg.kalman.blocksize = 1024;
  return cfg;
}

std::vector<f64> gather_weights(deepmd::DeepmdModel& model) {
  optim::FlatParams flat(model.parameters());
  std::vector<f64> w(static_cast<std::size_t>(flat.size()));
  flat.gather(w);
  return w;
}

i64 event_step(const FaultLog& log, const char* kind) {
  for (const FaultEvent& e : log.events) {
    if (e.kind == kind) return e.step;
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Membership lifecycle
// ---------------------------------------------------------------------------

TEST(Elastic, JoinChargesCatchupTransferToLedger) {
  InjectorGuard guard("rank_join@step=2");
  Fixture f = make_fixture(2);
  DistributedConfig cfg = base_config(2, 2);
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_EQ(result.comm.join_events, 1);
  // The joiner catches up on the authoritative weights PLUS its covariance
  // shard — strictly more than the weight payload alone.
  optim::FlatParams flat(f.model->parameters());
  EXPECT_GT(result.comm.join_bytes, flat.size() * 8);
  EXPECT_GT(result.comm.join_seconds, 0.0);
  EXPECT_EQ(result.train.faults.count("rank_join"), 1);
  EXPECT_EQ(result.surviving_ranks, 3);
  ASSERT_TRUE(result.membership.present);
  EXPECT_EQ(result.membership.ranks.size(), 3u);
  EXPECT_EQ(result.membership.next_id, 3);
  // Heartbeat traffic is accounted once the ring has >1 live rank.
  EXPECT_GT(result.comm.heartbeats, 0);
  EXPECT_GT(result.comm.heartbeat_seconds, 0.0);
}

TEST(Elastic, FailThenJoinIsBitReproducibleAcrossInvocations) {
  // The ISSUE acceptance run: a rank dies at step 30, a fresh one joins at
  // step 60. Membership changes alter the shard split, so the weights
  // differ from a fault-free run — but the documented contract is that two
  // invocations of the same spec reproduce each other bit-for-bit.
  auto run = []() {
    InjectorGuard guard("rank_fail@step=30,rank_join@step=60");
    Fixture f = make_fixture(13);  // 65 envs, batch 2 -> 32 steps/epoch
    DistributedConfig cfg = base_config(2, 2, 2);
    DistributedResult result =
        train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
    EXPECT_GE(result.train.steps, 60);
    EXPECT_EQ(result.train.faults.count("rank_fail"), 1);
    EXPECT_EQ(result.train.faults.count("rank_evict"), 1);
    EXPECT_EQ(result.train.faults.count("rank_join"), 1);
    EXPECT_EQ(event_step(result.train.faults, "rank_fail"), 30);
    EXPECT_EQ(event_step(result.train.faults, "rank_join"), 60);
    EXPECT_EQ(result.comm.evictions, 1);
    EXPECT_EQ(result.comm.join_events, 1);
    EXPECT_EQ(result.surviving_ranks, 2);
    EXPECT_TRUE(std::isfinite(result.train.final_train.energy_rmse));
    return gather_weights(*f.model);
  };
  const std::vector<f64> a = run();
  const std::vector<f64> b = run();
  EXPECT_EQ(a, b);  // bit-exact
}

TEST(Elastic, MissLimitDelaysEvictionDeterministically) {
  InjectorGuard guard("rank_fail@step=2");
  Fixture f = make_fixture(2);
  DistributedConfig cfg = base_config(3, 3, 2);  // 3 steps/epoch, 6 steps
  cfg.detector.miss_limit = 3;
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  // Silenced at step 2; misses accrue at steps 2, 3, 4 -> evicted at 4.
  EXPECT_EQ(event_step(result.train.faults, "rank_fail"), 2);
  EXPECT_EQ(event_step(result.train.faults, "rank_evict"), 4);
  EXPECT_EQ(result.surviving_ranks, 2);
  EXPECT_EQ(result.comm.evictions, 1);
  EXPECT_NEAR(result.comm.detection_seconds,
              3.0 * cfg.detector.heartbeat_period_s, 1e-12);
}

// ---------------------------------------------------------------------------
// Degraded links: simulated-time-only faults preserve weights bit-exactly
// ---------------------------------------------------------------------------

TEST(Elastic, LinkFaultsCostTimeButPreserveWeightsBitExactly) {
  Fixture clean = make_fixture(2);
  DistributedConfig cfg = base_config(3, 3);
  std::vector<f64> clean_weights;
  f64 clean_comm = 0.0;
  {
    InjectorGuard guard;
    DistributedResult result =
        train_fekf_distributed(*clean.model, clean.train_envs, {}, cfg);
    clean_weights = gather_weights(*clean.model);
    clean_comm = result.comm.comm_seconds;
  }
  Fixture faulty = make_fixture(2);
  {
    InjectorGuard guard(
        "msg_drop@p=0.05,seed=11,msg_corrupt@p=0.05,seed=13");
    DistributedResult result =
        train_fekf_distributed(*faulty.model, faulty.train_envs, {}, cfg);
    EXPECT_GT(result.comm.msg_drops, 0);
    EXPECT_GT(result.comm.msg_corrupts, 0);
    EXPECT_GT(result.comm.retries, 0);
    EXPECT_GT(result.comm.retry_seconds, 0.0);
    EXPECT_GT(result.comm.comm_seconds, clean_comm);
    EXPECT_EQ(result.surviving_ranks, 3);  // retries succeeded, no eviction
  }
  // Dropped/corrupted messages are retried, never lost: the gradients and
  // therefore the weights are untouched by link chaos.
  EXPECT_EQ(gather_weights(*faulty.model), clean_weights);
}

TEST(Elastic, SeededMsgDropRunIsBitReproducible) {
  auto run = []() {
    InjectorGuard guard("msg_drop@p=0.01,seed=7");
    Fixture f = make_fixture(4);  // 20 envs, batch 4, ranks 4
    DistributedConfig cfg = base_config(4, 4);
    DistributedResult result =
        train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
    return std::make_pair(gather_weights(*f.model), result.comm);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // identical weights, bit for bit
  EXPECT_EQ(a.second.msg_drops, b.second.msg_drops);
  EXPECT_EQ(a.second.retries, b.second.retries);
  EXPECT_EQ(a.second.retry_seconds, b.second.retry_seconds);
  EXPECT_GT(a.second.msg_drops, 0);
}

// ---------------------------------------------------------------------------
// Stragglers: bounded wait vs drop-and-reshard
// ---------------------------------------------------------------------------

TEST(Elastic, StragglerWaitPolicyCostsTimeOnly) {
  Fixture clean = make_fixture(2);
  DistributedConfig cfg = base_config(3, 3);
  std::vector<f64> clean_weights;
  {
    InjectorGuard guard;
    train_fekf_distributed(*clean.model, clean.train_envs, {}, cfg);
    clean_weights = gather_weights(*clean.model);
  }
  Fixture slow = make_fixture(2);
  {
    InjectorGuard guard("straggler@step=2,factor=8");
    DistributedResult result =
        train_fekf_distributed(*slow.model, slow.train_envs, {}, cfg);
    EXPECT_EQ(result.comm.straggler_events, 1);
    EXPECT_GT(result.comm.straggler_wait_seconds, 0.0);
    EXPECT_EQ(result.surviving_ranks, 3);  // kWait never evicts
    EXPECT_EQ(result.train.faults.count("straggler"), 1);
    EXPECT_EQ(result.train.faults.count("rank_evict"), 0);
  }
  // Waiting costs simulated time only — the update itself is unchanged.
  EXPECT_EQ(gather_weights(*slow.model), clean_weights);
}

TEST(Elastic, StragglerDropPolicyEvictsBeyondBound) {
  InjectorGuard guard("straggler@step=2,factor=8");
  Fixture f = make_fixture(2);
  DistributedConfig cfg = base_config(3, 3);
  cfg.straggler_policy = StragglerPolicy::kDropReshard;
  // factor 8 exceeds the bounded wait (3x nominal): drop and reshard.
  DistributedResult result =
      train_fekf_distributed(*f.model, f.train_envs, {}, cfg);
  EXPECT_EQ(result.train.faults.count("straggler"), 1);
  EXPECT_EQ(result.train.faults.count("rank_evict"), 1);
  EXPECT_EQ(result.comm.evictions, 1);
  EXPECT_EQ(result.surviving_ranks, 2);
  EXPECT_EQ(result.comm.straggler_wait_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(result.train.final_train.energy_rmse));
}

// ---------------------------------------------------------------------------
// Membership survives checkpoint/resume
// ---------------------------------------------------------------------------

TEST(Elastic, MembershipCheckpointResumeReproducesTrajectory) {
  TempFile file("fekf_elastic_resume.ckpt");
  DistributedConfig cfg = base_config(3, 3, 2);  // 4 steps/epoch, 8 steps

  // Reference run: rank 2 dies at step 2; checkpoint cut at step 6.
  Fixture a = make_fixture(2);
  std::vector<f64> reference;
  {
    InjectorGuard guard("rank_fail@step=2");
    DistributedConfig ckpt_cfg = cfg;
    ckpt_cfg.options.checkpoint_every = 6;
    ckpt_cfg.options.checkpoint_path = file.path;
    DistributedResult result =
        train_fekf_distributed(*a.model, a.train_envs, {}, ckpt_cfg);
    EXPECT_EQ(result.surviving_ranks, 2);
    EXPECT_GT(result.train.checkpoint_seconds, 0.0);
    reference = gather_weights(*a.model);
  }

  // The checkpoint carries the membership table: 3 ranks, one dead.
  {
    train::LoadedCheckpoint loaded = train::load_checkpoint(file.path);
    ASSERT_TRUE(loaded.state.membership.present);
    EXPECT_EQ(loaded.state.membership.ranks.size(), 3u);
    EXPECT_EQ(loaded.state.membership.next_id, 3);
    i64 dead = 0;
    for (const auto& rank : loaded.state.membership.ranks) {
      if (!rank.alive) ++dead;
    }
    EXPECT_EQ(dead, 1);
    EXPECT_EQ(loaded.state.steps, 6);
  }

  // Resume on a fresh model: the injected fault already happened before
  // the cut, so the resumed segment runs fault-free and must land on the
  // reference weights bit-for-bit (same 2-rank shard split restored).
  Fixture b = make_fixture(2);
  {
    InjectorGuard guard;
    DistributedConfig resume_cfg = cfg;
    resume_cfg.options.resume_from = file.path;
    DistributedResult result =
        train_fekf_distributed(*b.model, b.train_envs, {}, resume_cfg);
    EXPECT_EQ(result.surviving_ranks, 2);
    EXPECT_EQ(result.train.steps, 8);
  }
  EXPECT_EQ(gather_weights(*b.model), reference);  // bit-exact
}

// ---------------------------------------------------------------------------
// Construction-time validation of the new knobs
// ---------------------------------------------------------------------------

TEST(Elastic, ClusterConstructionValidatesAllKnobs) {
  DistributedConfig good = base_config(2, 2);
  EXPECT_NO_THROW(VirtualCluster(good, 100, 100));

  DistributedConfig bad = good;
  bad.interconnect.loss_prob = 1.0;  // must be < 1
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.interconnect.corrupt_prob = -0.1;
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.interconnect.max_retries = 0;
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.interconnect.retry_backoff_s = -1e-6;
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.detector.miss_limit = 0;
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.detector.heartbeat_bytes = -1;
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.straggler_wait_factor = 0.5;  // must be >= 1
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);

  bad = good;
  bad.interconnect.bandwidth_gbps = 0.0;  // the pre-existing knob, too
  EXPECT_THROW(VirtualCluster(bad, 100, 100), Error);
}

}  // namespace
}  // namespace fekf::dist
