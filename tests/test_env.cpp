// Centralized env-knob accessor tests (core/env.hpp): registry coverage,
// typed parsing with warn-and-fall-back, and the unknown-FEKF_* typo scan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/env.hpp"

namespace fekf::env {
namespace {

bool scan_contains(const std::string& name) {
  for (const std::string& hit : scan_unknown_for_test()) {
    if (hit == name) return true;
  }
  return false;
}

TEST(Env, EveryHistoricalKnobIsRegistered) {
  for (const char* name :
       {"FEKF_NUM_THREADS", "FEKF_KERNEL_BACKEND", "FEKF_ARENA",
        "FEKF_LOG_LEVEL", "FEKF_TRACE", "FEKF_TRACE_KERNELS", "FEKF_METRICS",
        "FEKF_FLIGHT", "FEKF_TELEMETRY", "FEKF_FAULT_SPEC",
        "FEKF_SERVE_MAX_BATCH", "FEKF_SERVE_MAX_WAIT_US",
        "FEKF_SERVE_WORKERS"}) {
    bool found = false;
    for (const Knob& knob : knobs()) {
      if (std::string(knob.name) == name) {
        found = true;
        EXPECT_NE(std::string(knob.summary), "") << name;
      }
    }
    EXPECT_TRUE(found) << name << " missing from env registry";
  }
}

TEST(Env, UnregisteredLookupThrows) {
  EXPECT_THROW(get("FEKF_NO_SUCH_KNOB"), Error);
}

TEST(Env, TypedGettersParseAndFallBack) {
  ::setenv("FEKF_SERVE_MAX_BATCH", "32", 1);
  EXPECT_EQ(get_i64("FEKF_SERVE_MAX_BATCH", 16), 32);
  ::setenv("FEKF_SERVE_MAX_BATCH", "32x", 1);  // trailing junk -> fallback
  EXPECT_EQ(get_i64("FEKF_SERVE_MAX_BATCH", 16), 16);
  ::unsetenv("FEKF_SERVE_MAX_BATCH");
  EXPECT_EQ(get_i64("FEKF_SERVE_MAX_BATCH", 16), 16);

  ::setenv("FEKF_SERVE_MAX_WAIT_US", "250.5", 1);
  EXPECT_EQ(get_f64("FEKF_SERVE_MAX_WAIT_US", 1.0), 250.5);
  ::setenv("FEKF_SERVE_MAX_WAIT_US", "soon", 1);
  EXPECT_EQ(get_f64("FEKF_SERVE_MAX_WAIT_US", 1.0), 1.0);
  ::unsetenv("FEKF_SERVE_MAX_WAIT_US");

  // Flag semantics match the historical FEKF_ARENA parsing: only the
  // exact strings 0/off/false disable.
  for (const char* off : {"0", "off", "false"}) {
    ::setenv("FEKF_ARENA", off, 1);
    EXPECT_FALSE(get_flag("FEKF_ARENA", true)) << off;
  }
  for (const char* on : {"1", "on", "OFF", "False", "yes", ""}) {
    ::setenv("FEKF_ARENA", on, 1);
    EXPECT_TRUE(get_flag("FEKF_ARENA", false)) << on;
  }
  ::unsetenv("FEKF_ARENA");
  EXPECT_TRUE(get_flag("FEKF_ARENA", true));
  EXPECT_FALSE(get_flag("FEKF_ARENA", false));
}

TEST(Env, UnknownScanFlagsTyposButNotHarnessVars) {
  ::setenv("FEKF_NUM_THREDS", "4", 1);    // the motivating typo
  ::setenv("FEKF_CI_SOMETHING", "x", 1);  // CI-harness namespace: ignored
  EXPECT_TRUE(scan_contains("FEKF_NUM_THREDS"));
  EXPECT_FALSE(scan_contains("FEKF_CI_SOMETHING"));
  EXPECT_FALSE(scan_contains("FEKF_NUM_THREADS"));
  ::unsetenv("FEKF_NUM_THREDS");
  ::unsetenv("FEKF_CI_SOMETHING");
  EXPECT_FALSE(scan_contains("FEKF_NUM_THREDS"));
}

}  // namespace
}  // namespace fekf::env
