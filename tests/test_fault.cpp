// Fault-DSL tests (DESIGN.md §10): spec grammar (repeat counts, seeded
// probabilistic arms, payload qualifiers), single-line diagnostics naming
// the offending token for every malformed-spec edge case, and the
// corrupt_file hardening (missing/empty/one-byte files).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/fault.hpp"

namespace fekf {
namespace {

/// Restores the ambient FEKF_FAULT_SPEC arms on scope exit so these tests
/// never leak explicit arms into later suites.
struct Guard {
  ~Guard() { FaultInjector::instance().configure_from_env(); }
};

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name + "." +
             std::to_string(static_cast<long long>(::getpid()))) {}
  ~TempFile() { std::remove(path.c_str()); }
};

void spit(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesArmsAndQualifiers) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure(
      "rank_fail@step=30x3,msg_drop@p=0.01,seed=7,"
      "straggler@step=9,factor=2.5,rank=1");
  const std::vector<FaultArm> arms = inj.arms();
  ASSERT_EQ(arms.size(), 3u);
  EXPECT_EQ(arms[0].kind, "rank_fail");
  EXPECT_EQ(arms[0].at_step, 30);
  EXPECT_EQ(arms[0].repeat, 3);
  EXPECT_EQ(arms[1].kind, "msg_drop");
  EXPECT_DOUBLE_EQ(arms[1].prob, 0.01);
  EXPECT_EQ(arms[1].seed, 7u);
  EXPECT_EQ(arms[2].kind, "straggler");
  EXPECT_EQ(arms[2].at_step, 9);
  EXPECT_DOUBLE_EQ(arms[2].factor, 2.5);
  EXPECT_EQ(arms[2].rank, 1);
}

TEST(FaultSpec, KnownKindListCoversAllSeven) {
  const auto kinds = fault_kind_names();
  ASSERT_EQ(kinds.size(), 7u);
  for (const char* k : {faults::kNanGrad, faults::kCorruptCkpt,
                        faults::kRankFail, faults::kRankJoin,
                        faults::kStraggler, faults::kMsgDrop,
                        faults::kMsgCorrupt}) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), std::string_view(k)),
              kinds.end())
        << k;
  }
}

TEST(FaultSpec, RepeatCountFiresExactlyNTimes) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("rank_fail@step=5x3");
  EXPECT_FALSE(inj.fire(faults::kRankFail, 4));  // not yet eligible
  EXPECT_TRUE(inj.fire(faults::kRankFail, 5));
  EXPECT_TRUE(inj.fire(faults::kRankFail, 5));
  EXPECT_TRUE(inj.fire(faults::kRankFail, 6));
  EXPECT_FALSE(inj.fire(faults::kRankFail, 7));  // budget spent
  EXPECT_FALSE(inj.armed(faults::kRankFail));
}

TEST(FaultSpec, StepLessArmFiresOnFirstPoll) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("corrupt_ckpt");
  EXPECT_TRUE(inj.armed(faults::kCorruptCkpt));
  EXPECT_TRUE(inj.fire(faults::kCorruptCkpt, 1));
  EXPECT_FALSE(inj.fire(faults::kCorruptCkpt, 2));
}

TEST(FaultSpec, ProbabilisticDrawsAreSeededAndReproducible) {
  Guard g;
  auto& inj = FaultInjector::instance();
  auto draw = [&]() {
    inj.configure("msg_drop@p=0.5,seed=42");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(inj.fire(faults::kMsgDrop, 1));
    }
    return fired;
  };
  const std::vector<bool> a = draw();
  const std::vector<bool> b = draw();
  EXPECT_EQ(a, b);  // configure() resets the stream: exact replay
  const auto hits = std::count(a.begin(), a.end(), true);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
  // A different seed gives a different (still reproducible) trajectory.
  inj.configure("msg_drop@p=0.5,seed=43");
  std::vector<bool> c;
  for (int i = 0; i < 64; ++i) c.push_back(inj.fire(faults::kMsgDrop, 1));
  EXPECT_NE(a, c);
}

TEST(FaultSpec, ProbabilisticArmRespectsStepGate) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("msg_drop@p=1,step=4");
  EXPECT_FALSE(inj.fire(faults::kMsgDrop, 3));
  EXPECT_TRUE(inj.fire(faults::kMsgDrop, 4));
  EXPECT_TRUE(inj.fire(faults::kMsgDrop, 5));  // p=1 fires on every poll
}

TEST(FaultSpec, FireDetailCarriesPayloadQualifiers) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("straggler@factor=6,rank=2");
  const auto fired = inj.fire_detail(faults::kStraggler, 1);
  ASSERT_TRUE(fired.has_value());
  EXPECT_DOUBLE_EQ(fired->factor, 6.0);
  EXPECT_EQ(fired->rank, 2);
  // Unset qualifiers come back as sentinel -1 for the site default.
  inj.configure("rank_fail");
  const auto bare = inj.fire_detail(faults::kRankFail, 1);
  ASSERT_TRUE(bare.has_value());
  EXPECT_LT(bare->factor, 0.0);
  EXPECT_EQ(bare->rank, -1);
}

// ---------------------------------------------------------------------------
// Malformed specs: single-line Error naming the offending token
// ---------------------------------------------------------------------------

void expect_bad(const std::string& spec, const std::string& needle) {
  try {
    FaultInjector::instance().configure(spec);
    FAIL() << "spec '" << spec << "' was accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find('\n'), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos)
        << "'" << what << "' does not mention '" << needle << "'";
  }
}

TEST(FaultSpecErrors, EachMalformedSpecNamesTheOffendingToken) {
  Guard g;
  expect_bad("nan_grad,nan_grad", "duplicate arm");
  expect_bad("nan_grad,", "empty token");
  expect_bad(",nan_grad", "empty token");
  expect_bad("nan_grad,,corrupt_ckpt", "empty token");
  expect_bad("typo_kind", "unknown fault kind 'typo_kind'");
  expect_bad("nan_grad@bogus=3", "unknown qualifier 'bogus='");
  expect_bad("seed=7", "qualifier with no fault kind");
  expect_bad("nan_grad@step=3x0", "repeat count must be >= 1");
  expect_bad("nan_grad@step=-1", "step must be >= 0");
  expect_bad("nan_grad@step=", "expected a number");
  expect_bad("nan_grad@step=3q", "trailing characters after step");
  expect_bad("msg_drop@p=1.5", "p must be in [0, 1]");
  expect_bad("msg_drop@p=0.5,step=1x2",
             "probabilistic arms cannot carry a repeat count");
  expect_bad("straggler@factor=0", "factor must be finite and > 0");
  expect_bad("straggler@rank=-2", "rank must be >= 0");
}

TEST(FaultSpecErrors, MalformedSpecLeavesArmsUnchanged) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("nan_grad@step=3");
  EXPECT_THROW(inj.configure("nan_grad,bogus_kind"), Error);
  ASSERT_EQ(inj.arms().size(), 1u);  // previous arms survive the throw
  EXPECT_TRUE(inj.armed(faults::kNanGrad));
}

TEST(FaultSpecErrors, EmptySpecDisarmsEverything) {
  Guard g;
  auto& inj = FaultInjector::instance();
  inj.configure("nan_grad@step=3");
  inj.configure("");
  EXPECT_TRUE(inj.arms().empty());
  EXPECT_FALSE(inj.fire(faults::kNanGrad, 3));
}

// ---------------------------------------------------------------------------
// corrupt_file hardening (missing / empty / one-byte files)
// ---------------------------------------------------------------------------

TEST(CorruptFile, MissingFileThrowsInsteadOfUB) {
  try {
    FaultInjector::corrupt_file("/nonexistent/fekf_no_such_file");
    FAIL() << "missing file was corrupted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("missing file"), std::string::npos)
        << e.what();
  }
}

TEST(CorruptFile, EmptyFileThrowsInsteadOfUB) {
  TempFile file("fekf_corrupt_empty");
  spit(file.path, "");
  try {
    FaultInjector::corrupt_file(file.path);
    FAIL() << "empty file was corrupted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("empty file"), std::string::npos)
        << e.what();
  }
}

TEST(CorruptFile, OneByteFileIsFlippedInPlace) {
  TempFile file("fekf_corrupt_onebyte");
  spit(file.path, "A");
  FaultInjector::corrupt_file(file.path);
  EXPECT_EQ(slurp(file.path), "a");  // 'A' ^ 0x20, size unchanged
}

TEST(CorruptFile, FlipsExactlyTheMiddleByte) {
  TempFile file("fekf_corrupt_middle");
  const std::string original = "0123456789";
  spit(file.path, original);
  FaultInjector::corrupt_file(file.path);
  const std::string corrupted = slurp(file.path);
  ASSERT_EQ(corrupted.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (i == original.size() / 2) {
      EXPECT_EQ(corrupted[i], static_cast<char>(original[i] ^ 0x20));
    } else {
      EXPECT_EQ(corrupted[i], original[i]) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace fekf
