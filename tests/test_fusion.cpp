// Fused-kernel equivalence and arena invariants (DESIGN.md §12).
//
// Tolerance contract: fused FORWARD values and FIRST-ORDER gradients are
// BIT-IDENTICAL to the unfused reference (the fused kernels replay the
// unfused accumulation orders), at thread widths 1 and 4. DOUBLE-BACKWARD
// results are mathematically equal but composed from a different (coarser)
// op sequence, so they agree to f32 roundoff — asserted at 1e-3 relative —
// while remaining bit-identical across thread widths. The fused FEKF step
// is bit-identical to the legacy four-launch sequence in every output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "autograd/ops.hpp"
#include "data/systems.hpp"
#include "deepmd/model.hpp"
#include "md/sampler.hpp"
#include "optim/kalman.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernel_counter.hpp"
#include "tensor/kernels.hpp"
#include "tensor/workspace.hpp"

namespace fekf {
namespace {

namespace op = ag::ops;
using ag::Variable;

struct WidthGuard {
  ~WidthGuard() { set_num_threads(0); }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(f32)) == 0;
}

Tensor random_tensor(i64 rows, i64 cols, u64 seed) {
  Rng rng(seed);
  return Tensor::randn(rows, cols, rng);
}

// ---------------------------------------------------------------------------
// linear+tanh whole-layer fusion
// ---------------------------------------------------------------------------

struct LinearTanhCase {
  Variable x{random_tensor(48, 16, 101), true};
  Variable w{random_tensor(16, 24, 102), true};
  Variable b{random_tensor(1, 24, 103), true};
  Tensor s = random_tensor(48, 24, 104);  ///< non-trivial upstream gradient

  Variable forward(bool fused) const {
    return fused ? op::linear_tanh_fused(x, w, b)
                 : op::tanh_fused(op::linear_fused(x, w, b));
  }
  Variable loss(bool fused) const {
    return op::sum_all(op::mul(forward(fused), Variable(s)));
  }
  std::vector<Variable> wrt() const { return {x, w, b}; }
};

TEST(Fusion, LinearTanhForwardBitExact) {
  WidthGuard guard;
  const LinearTanhCase c;
  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    ag::NoGradGuard no_grad;
    const Tensor fused = c.forward(true).value();
    const Tensor unfused = c.forward(false).value();
    EXPECT_TRUE(bitwise_equal(fused, unfused)) << "width " << width;
  }
}

TEST(Fusion, LinearTanhGradientBitExact) {
  WidthGuard guard;
  const LinearTanhCase c;
  const auto wrt = c.wrt();
  std::vector<Tensor> reference;
  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    auto gf = ag::grad(c.loss(true), wrt);
    auto gu = ag::grad(c.loss(false), wrt);
    for (std::size_t i = 0; i < wrt.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(gf[i].value(), gu[i].value()))
          << "width " << width << " input " << i;
      if (width == 1) {
        reference.push_back(gf[i].value());
      } else {
        EXPECT_TRUE(bitwise_equal(gf[i].value(), reference[i]))
            << "width determinism, input " << i;
      }
    }
  }
}

TEST(Fusion, LinearTanhDoubleBackwardAgrees) {
  WidthGuard guard;
  const LinearTanhCase c;
  const auto wrt = c.wrt();
  const Tensor probe = random_tensor(48, 16, 105);  // contracts gx
  auto second = [&](bool fused) {
    auto g1 = ag::grad(c.loss(fused), wrt, {}, /*create_graph=*/true);
    Variable z = op::sum_all(op::mul(g1[0], Variable(probe)));
    return ag::grad(z, wrt);
  };
  std::vector<Tensor> reference;
  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    auto df = second(true);
    auto du = second(false);
    for (std::size_t i = 0; i < wrt.size(); ++i) {
      // Different-but-equivalent contraction order: f32 roundoff tolerance.
      for (i64 e = 0; e < df[i].numel(); ++e) {
        const f64 a = df[i].value().data()[e];
        const f64 r = du[i].value().data()[e];
        EXPECT_NEAR(a, r, 1e-3 * (1.0 + std::abs(r)))
            << "width " << width << " input " << i << " elem " << e;
      }
      // The fused double-backward itself must stay width-deterministic.
      if (width == 1) {
        reference.push_back(df[i].value());
      } else {
        EXPECT_TRUE(bitwise_equal(df[i].value(), reference[i]))
            << "width determinism, input " << i;
      }
    }
  }
}

TEST(Fusion, LinearTanhLaunchCounts) {
  const LinearTanhCase c;
  KernelCounter::enable(true);
  KernelCounter::reset();
  {
    ag::NoGradGuard no_grad;
    (void)c.forward(true);
  }
  auto bd = KernelCounter::breakdown();
  EXPECT_EQ(bd["linear_tanh"], 1);
  EXPECT_EQ(KernelCounter::total(), 1);  // the WHOLE layer is one launch

  KernelCounter::reset();
  (void)ag::grad(c.loss(true), c.wrt());
  bd = KernelCounter::breakdown();
  // One fused backward launch produces all three gradients.
  EXPECT_EQ(bd["linear_tanh_backward"], 1);
  EXPECT_EQ(bd["matmul_nt"], 0);
  EXPECT_EQ(bd["matmul_tn"], 0);
  EXPECT_EQ(bd["sum_rows"], 0);
  KernelCounter::enable(false);
}

// ---------------------------------------------------------------------------
// Whole-descriptor fusion (desc_a / desc_d) at model level
// ---------------------------------------------------------------------------

deepmd::ModelConfig small_config(deepmd::FusionLevel fusion) {
  deepmd::ModelConfig cfg;
  cfg.rcut = 5.0;
  cfg.rcut_smth = 2.5;
  cfg.embed_width = 8;
  cfg.axis_neurons = 4;
  cfg.fitting_width = 12;
  cfg.fusion = fusion;
  return cfg;
}

std::vector<md::Snapshot> sample_system(const std::string& name, i64 count,
                                        u64 seed) {
  const data::SystemSpec& spec = data::get_system(name);
  Rng rng(seed);
  md::Structure st = spec.make_structure(rng);
  auto pot = spec.make_potential(st);
  md::SamplerConfig cfg;
  cfg.dt_fs = spec.dt_fs;
  cfg.temperatures = {spec.temperatures.front()};
  cfg.equilibration_steps = 20;
  cfg.stride = 3;
  cfg.snapshots_per_temperature = count;
  return md::sample_trajectory(*pot, st, spec.masses, cfg, rng);
}

struct ModelPair {
  deepmd::DeepmdModel fused;
  deepmd::DeepmdModel unfused;
  std::shared_ptr<const deepmd::EnvData> env_f;
  std::shared_ptr<const deepmd::EnvData> env_u;
};

ModelPair make_models(const std::string& system, i32 num_types, u64 seed) {
  auto snaps = sample_system(system, 2, seed);
  ModelPair pair{
      deepmd::DeepmdModel(small_config(deepmd::FusionLevel::kFused),
                          num_types),
      deepmd::DeepmdModel(small_config(deepmd::FusionLevel::kOpt2),
                          num_types),
      nullptr, nullptr};
  pair.fused.fit_stats(snaps);
  pair.unfused.set_stats(pair.fused.env_stats(), pair.fused.energy_stats());
  pair.env_f = pair.fused.prepare(snaps[0]);
  pair.env_u = pair.unfused.prepare(snaps[0]);
  return pair;
}

TEST(Fusion, ModelForwardAndForcesBitExact) {
  WidthGuard guard;
  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    ModelPair pair = make_models("NaCl", 2, 201);
    auto pf = pair.fused.predict(pair.env_f, /*with_forces=*/true);
    auto pu = pair.unfused.predict(pair.env_u, /*with_forces=*/true);
    EXPECT_EQ(pf.energy.item(), pu.energy.item()) << "width " << width;
    EXPECT_TRUE(bitwise_equal(pf.forces.value(), pu.forces.value()))
        << "width " << width;
  }
}

// The EKF force update differentiates the force graph w.r.t. the weights
// (double backward). Fused and unfused compose different second-order op
// sequences, so this is the tolerance-documented comparison.
TEST(Fusion, ModelForceWeightGradientAgrees) {
  WidthGuard guard;
  ModelPair pair = make_models("Cu", 1, 202);
  Rng rng(203);
  Tensor sign_t(pair.env_f->natoms, 3);
  for (i64 i = 0; i < sign_t.numel(); ++i) {
    sign_t.data()[i] = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  }
  const Variable sign(sign_t);
  auto weight_grads = [&](deepmd::DeepmdModel& model,
                          const std::shared_ptr<const deepmd::EnvData>& env) {
    auto pred = model.predict(env, /*with_forces=*/true);
    Variable m = op::sum_all(op::mul(pred.forces, sign));
    return ag::grad(m, model.parameters());
  };
  std::vector<Tensor> width1;
  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    auto gf = weight_grads(pair.fused, pair.env_f);
    auto gu = weight_grads(pair.unfused, pair.env_u);
    ASSERT_EQ(gf.size(), gu.size());
    for (std::size_t p = 0; p < gf.size(); ++p) {
      for (i64 e = 0; e < gf[p].numel(); ++e) {
        const f64 a = gf[p].value().data()[e];
        const f64 r = gu[p].value().data()[e];
        EXPECT_NEAR(a, r, 1e-3 * (1.0 + std::abs(r)))
            << "width " << width << " param " << p << " elem " << e;
      }
      if (width == 1) {
        width1.push_back(gf[p].value());
      } else {
        EXPECT_TRUE(bitwise_equal(gf[p].value(), width1[p]))
            << "width determinism, param " << p;
      }
    }
  }
}

TEST(Fusion, DescriptorLaunchCounts) {
  ModelPair pair = make_models("NaCl", 2, 204);
  KernelCounter::enable(true);
  KernelCounter::reset();
  i64 fused_total = 0;
  {
    KernelCountScope scope;
    (void)pair.fused.predict(pair.env_f, /*with_forces=*/true);
    fused_total = scope.count();
  }
  auto bd = KernelCounter::breakdown();
  // The whole A and D contractions are one launch each; the whole gD -> gA
  // backward is one launch; no unfused descriptor kernels fire.
  EXPECT_EQ(bd["desc_a"], 1);
  EXPECT_EQ(bd["desc_d"], 1);
  EXPECT_EQ(bd["desc_d_grad"], 1);
  EXPECT_EQ(bd["bmm_tn"], 0);
  // 2 types x (3 embedding + 3 activated fitting layers), one launch each.
  EXPECT_EQ(bd["linear_tanh"], 12);
  EXPECT_EQ(bd["linear_tanh_backward"], 12);

  i64 unfused_total = 0;
  {
    KernelCountScope scope;
    (void)pair.unfused.predict(pair.env_u, /*with_forces=*/true);
    unfused_total = scope.count();
  }
  KernelCounter::enable(false);
  EXPECT_LT(fused_total, unfused_total);
}

// ---------------------------------------------------------------------------
// Fused FEKF step
// ---------------------------------------------------------------------------

TEST(Fusion, FekfStepKernelsBitExact) {
  WidthGuard guard;
  const i64 n = 24;
  Rng rng(301);
  std::vector<f64> p0(static_cast<std::size_t>(n * n));
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j <= i; ++j) {
      const f64 v = rng.gaussian() * 0.1 + (i == j ? 1.0 : 0.0);
      p0[static_cast<std::size_t>(i * n + j)] = v;
      p0[static_cast<std::size_t>(j * n + i)] = v;
    }
  }
  std::vector<f64> g(static_cast<std::size_t>(n));
  std::vector<f64> w0(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    g[static_cast<std::size_t>(i)] = rng.gaussian();
    w0[static_cast<std::size_t>(i)] = rng.gaussian();
  }
  const f64 lambda = 0.98, step_scale = 0.37, noise = 1e-2;

  for (const i64 width : {1, 4}) {
    set_num_threads(width);
    // Legacy four-launch sequence.
    std::vector<f64> p_ref = p0, w_ref = w0;
    std::vector<f64> q_ref(static_cast<std::size_t>(n));
    kernels::symv(p_ref, g, q_ref, n);
    const f64 gpg_ref = kernels::dot(std::span<const f64>(g),
                                     std::span<const f64>(q_ref));
    const f64 a = 1.0 / (lambda + gpg_ref);
    kernels::p_update_fused(p_ref, q_ref, a, lambda, n);
    kernels::axpy(step_scale, q_ref, w_ref);
    f64 max_diag_ref = 0.0;
    for (i64 i = 0; i < n; ++i) {
      f64& d = p_ref[static_cast<std::size_t>(i * n + i)];
      d += noise;
      max_diag_ref = std::max(max_diag_ref, d);
    }

    // Fused two-launch step.
    std::vector<f64> p_f = p0, w_f = w0;
    std::vector<f64> q_f(static_cast<std::size_t>(n));
    i64 gain_launches = 0, apply_launches = 0;
    f64 gpg_f = 0.0, max_diag_f = 0.0;
    {
      KernelCountScope scope;
      gpg_f = kernels::ekf_gain_fused(p_f, g, q_f, n);
      gain_launches = scope.count();
    }
    {
      KernelCountScope scope;
      max_diag_f = kernels::ekf_apply_fused(p_f, q_f, a, lambda, step_scale,
                                            w_f, noise, n);
      apply_launches = scope.count();
    }
    EXPECT_EQ(gain_launches, 1);
    EXPECT_EQ(apply_launches, 1);
    EXPECT_EQ(gpg_f, gpg_ref) << "width " << width;
    EXPECT_EQ(max_diag_f, max_diag_ref) << "width " << width;
    EXPECT_EQ(q_f, q_ref) << "width " << width;
    EXPECT_EQ(p_f, p_ref) << "width " << width;
    EXPECT_EQ(w_f, w_ref) << "width " << width;
  }
}

TEST(Fusion, FekfOptimizerFusedMatchesLegacy) {
  const i64 n = 40;
  std::vector<optim::BlockSpec> blocks{{0, n, "blk"}};
  optim::KalmanConfig fused_cfg;  // fused_step defaults on
  optim::KalmanConfig legacy_cfg;
  legacy_cfg.fused_step = false;
  optim::KalmanOptimizer fused(blocks, fused_cfg);
  optim::KalmanOptimizer legacy(blocks, legacy_cfg);

  Rng rng(311);
  std::vector<f64> wf(static_cast<std::size_t>(n), 0.0);
  std::vector<f64> wl(static_cast<std::size_t>(n), 0.0);
  std::vector<f64> g(static_cast<std::size_t>(n));
  for (int step = 0; step < 25; ++step) {
    for (f64& v : g) v = rng.gaussian();
    const f64 kscale = 0.1 + 0.01 * step;
    fused.update(g, kscale, wf, std::nullopt, 0.5);
    legacy.update(g, kscale, wl, std::nullopt, 0.5);
  }
  EXPECT_EQ(wf, wl);
  EXPECT_EQ(fused.last_max_diag(), legacy.last_max_diag());
  EXPECT_EQ(fused.state().p, legacy.state().p);
  EXPECT_EQ(fused.lambda(), legacy.lambda());
}

TEST(Fusion, FekfOptimizerLaunchBudget) {
  const i64 n = 32;
  std::vector<optim::BlockSpec> blocks{{0, n, "blk"}};
  optim::KalmanOptimizer opt(blocks, optim::KalmanConfig{});
  std::vector<f64> w(static_cast<std::size_t>(n), 0.0);
  std::vector<f64> g(static_cast<std::size_t>(n), 0.01);
  KernelCountScope scope;
  opt.update(g, 0.1, w);
  EXPECT_EQ(scope.count(), 2);  // ekf_gain_fused + ekf_apply_fused
}

// ---------------------------------------------------------------------------
// Arena (Workspace) invariants
// ---------------------------------------------------------------------------

/// Force-enable the arena for a test and restore the ambient setting.
struct ArenaEnableGuard {
  bool was = Workspace::enabled();
  ArenaEnableGuard() { Workspace::set_enabled(true); }
  ~ArenaEnableGuard() { Workspace::set_enabled(was); }
};

TEST(Arena, ScopeArmsAndResets) {
  ArenaEnableGuard enable;
  EXPECT_FALSE(Workspace::armed());
  Workspace::reset_stats();
  const i64 before = Workspace::stats().allocs;
  {
    ArenaScope scope;
    EXPECT_TRUE(Workspace::armed());
    Tensor a(64, 64);
    Tensor b(32, 32);
    a.data()[0] = 1.0f;
    b.data()[0] = 2.0f;
    EXPECT_EQ(Workspace::stats().allocs, before + 2);
    EXPECT_GE(Workspace::stats().scope_bytes,
              static_cast<i64>((64 * 64 + 32 * 32) * sizeof(f32)));
  }
  EXPECT_FALSE(Workspace::armed());
  // The completed scope's bytes are recorded; the cursor is rewound.
  EXPECT_GT(Workspace::stats().last_scope_bytes, 0);
  EXPECT_EQ(Workspace::stats().scope_bytes, 0);
}

TEST(Arena, ResetReusesSlabsWithoutGrowth) {
  ArenaEnableGuard enable;
  {
    ArenaScope warm;
    Tensor t(128, 128);
    t.data()[0] = 1.0f;
  }
  Workspace::reset_stats();  // stats cleared; slabs stay resident
  const i64 reserved = Workspace::stats().reserved_bytes;
  const i64 slabs = Workspace::stats().slabs;
  for (int step = 0; step < 5; ++step) {
    ArenaScope scope;
    Tensor t(128, 128);
    t.data()[0] = static_cast<f32>(step);
  }
  // Steady state: same slabs serve every step, nothing retired, no growth.
  EXPECT_EQ(Workspace::stats().reserved_bytes, reserved);
  EXPECT_EQ(Workspace::stats().slabs, slabs);
  EXPECT_EQ(Workspace::stats().retired_slabs, 0);
}

TEST(Arena, EscapedTensorRetiresSlabAndNeverAliases) {
  ArenaEnableGuard enable;
  Workspace::reset_stats();
  Tensor escaped;
  {
    ArenaScope scope;
    escaped = Tensor(16, 16);
    for (i64 i = 0; i < escaped.numel(); ++i) {
      escaped.data()[i] = static_cast<f32>(i);
    }
  }
  // The slab the escapee lives in was retired, not rewound: its memory
  // belongs to the escaped tensor alone now.
  EXPECT_GE(Workspace::stats().retired_slabs, 1);
  {
    ArenaScope scope;
    Tensor clobber(512, 512);
    for (i64 i = 0; i < clobber.numel(); ++i) {
      clobber.data()[i] = -1.0f;
    }
  }
  for (i64 i = 0; i < escaped.numel(); ++i) {
    ASSERT_EQ(escaped.data()[i], static_cast<f32>(i)) << "aliased at " << i;
  }
}

TEST(Arena, DisabledScopeAllocatesFromHeap) {
  const bool was = Workspace::enabled();
  Workspace::set_enabled(false);
  Workspace::reset_stats();
  {
    ArenaScope scope;
    EXPECT_FALSE(Workspace::armed());
    Tensor t(8, 8);
    t.data()[0] = 1.0f;
  }
  EXPECT_EQ(Workspace::stats().allocs, 0);
  Workspace::set_enabled(was);
}

TEST(Arena, ModelPredictInsideArenaMatchesHeap) {
  auto snaps = sample_system("Cu", 1, 401);
  deepmd::DeepmdModel model(small_config(deepmd::FusionLevel::kFused), 1);
  model.fit_stats(snaps);
  auto env = model.prepare(snaps[0]);

  const bool was = Workspace::enabled();
  Workspace::set_enabled(false);
  Tensor heap_forces;
  f64 heap_energy = 0.0;
  {
    auto pred = model.predict(env, /*with_forces=*/true);
    heap_energy = pred.energy.item();
    heap_forces = pred.forces.value().clone();
  }
  Workspace::set_enabled(true);
  Workspace::reset_stats();
  f64 arena_energy = 0.0;
  Tensor arena_forces;
  i64 served = 0;
  {
    ArenaScope scope;
    auto pred = model.predict(env, /*with_forces=*/true);
    arena_energy = pred.energy.item();
    arena_forces = pred.forces.value().clone();
    served = Workspace::stats().allocs;
  }
  Workspace::set_enabled(was);
  EXPECT_GT(served, 0);  // the arena actually carried the step
  // The arena moves bytes, never values.
  EXPECT_EQ(arena_energy, heap_energy);
  EXPECT_TRUE(bitwise_equal(arena_forces, heap_forces));
}

}  // namespace
}  // namespace fekf
